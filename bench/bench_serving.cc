// Serving-throughput gate (docs/serving.md): QPS and tail latency of the
// `deepst serve` core -- bounded queue + cross-client batching workers
// (serve::Server) -- at 1/2/4 workers, against a serial single-caller
// baseline on the same ServingContext. A closed-loop client fleet submits
// beam-search predictions; latency is measured per request at the client
// (submit -> future ready), so queue wait and batching linger are included.
//
// Writes bench_out/BENCH_serving.json; tools/check_perf.sh gates 4 workers
// reaching >= 2x the 1-worker QPS at comparable p99 (skipped below 4 cores,
// where the extra workers have nothing to run on).
//
// A final "server_ingest" scenario (docs/streaming.md) reruns the 4-worker
// fleet against a live SnapshotStore: a concurrent client streams ingest
// batches through the same server while the background aggregator publishes
// swaps (each bumping the transition-memo epoch). Its p99 is the swap-stall
// tail a live deployment pays; tools/check_perf.sh gates it within 1.5x of
// the static 4-worker p99.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baselines/neural_router.h"
#include "bench_common.h"
#include "core/deepst_model.h"
#include "core/serving.h"
#include "eval/world.h"
#include "serve/server.h"
#include "traffic/store.h"
#include "traffic/wal.h"
#include "util/stopwatch.h"

namespace {

using namespace deepst;

bool FastMode() {
  const char* v = std::getenv("DEEPST_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Small dedicated world: serving throughput does not depend on parameter
// quality, so the model stays untrained and construction dominates setup.
eval::World& BenchWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "bench-serving-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

core::DeepSTConfig SmallConfig() {
  core::DeepSTConfig cfg;
  cfg.segment_embedding_dim = 12;
  cfg.gru_hidden = 24;
  cfg.gru_layers = 2;
  cfg.dest_dim = 12;
  cfg.traffic_dim = 8;
  cfg.num_proxies = 8;
  cfg.cnn_channels = 6;
  cfg.mlp_hidden = 24;
  return cfg;
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t ix = static_cast<size_t>(
      std::min(v.size() - 1.0, std::ceil(q * v.size()) - 1.0));
  return v[ix];
}

struct RunStats {
  std::string mode;
  int workers = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t shed = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double batch_fill = 1.0;  // mean requests per executed batch
  int64_t swaps = 0;        // server_ingest: snapshot generations published
  int64_t rows_ingested = 0;  // server_ingest: observation rows made durable
};

// Serial baseline: one caller, one query at a time, no queue in the way.
RunStats RunSerial(core::ServingContext* serving,
                   const std::vector<core::RouteQuery>& queries, int total) {
  RunStats stats;
  stats.mode = "serial";
  stats.workers = 1;
  std::vector<double> lat;
  lat.reserve(total);
  util::Stopwatch wall;
  for (int i = 0; i < total; ++i) {
    util::Stopwatch sw;
    auto result = serving->Predict(queries[i % queries.size()]);
    if (result.ok()) {
      lat.push_back(sw.ElapsedMillis());
      ++stats.completed;
    } else {
      ++stats.failed;
    }
  }
  const double secs = wall.ElapsedSeconds();
  stats.qps = stats.completed / std::max(secs, 1e-9);
  stats.p50_ms = Quantile(lat, 0.50);
  stats.p99_ms = Quantile(lat, 0.99);
  return stats;
}

// Closed-loop fleet: `clients` threads each submit `per_client` predictions
// and wait for each response before sending the next. With `store` set
// (server_ingest mode) one extra closed-loop client streams ingest batches
// through the same server for the whole run -- observations landing inside
// the fleet's query windows, so every published swap changes tensors the
// predicts actually read. Latency is recorded for predicts only.
RunStats RunServer(core::ServingContext* serving,
                   const std::vector<core::RouteQuery>& queries, int workers,
                   int clients, int per_client,
                   traffic::SnapshotStore* store = nullptr) {
  serve::ServeOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 256;  // closed loop: the fleet itself bounds depth
  opts.max_batch = 8;
  opts.batch_window_us = 200;
  serve::Server server(serving, opts);
  server.Start();

  RunStats stats;
  stats.mode = store != nullptr ? "server_ingest" : "server";
  stats.workers = workers;
  std::mutex mu;
  std::vector<double> lat;
  lat.reserve(static_cast<size_t>(clients) * per_client);
  int64_t completed = 0;
  int64_t failed = 0;

  util::Stopwatch wall;
  std::atomic<bool> stop_ingest{false};
  std::thread ingester;
  if (store != nullptr) {
    ingester = std::thread([&] {
      uint64_t seq = 0;
      while (!stop_ingest.load(std::memory_order_relaxed)) {
        core::ServingRequest req;
        req.kind = core::ServingRequest::Kind::kIngest;
        req.observations.reserve(16);
        for (int r = 0; r < 16; ++r, ++seq) {
          const core::RouteQuery& q = queries[seq % queries.size()];
          traffic::SpeedObservation obs;
          obs.pos = q.destination;
          obs.time_s = std::max(0.0, q.start_time_s - 60.0 * (1 + seq % 20));
          obs.speed_mps = 2.0 + static_cast<double>(seq % 9);
          req.observations.push_back(obs);
        }
        (void)server.Submit(std::move(req)).get();
        // Paced swap churn: publish every second acked batch, with a short
        // gap between batches. Fast enough that the fleet crosses several
        // generation boundaries (clone + fold, memo-epoch bump) per run,
        // slow enough that the builder does not saturate a core -- the
        // live cadence the p99 gate is about.
        if (seq % 32 == 0) (void)store->SwapNow();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        core::ServingRequest req;
        req.query = queries[(c * per_client + i) % queries.size()];
        util::Stopwatch sw;
        auto result = server.Submit(std::move(req)).get();
        const double ms = sw.ElapsedMillis();
        std::lock_guard<std::mutex> lock(mu);
        if (result.ok()) {
          lat.push_back(ms);
          ++completed;
        } else {
          ++failed;
        }
      }
    });
  }
  for (auto& t : fleet) t.join();
  const double secs = wall.ElapsedSeconds();
  if (ingester.joinable()) {
    stop_ingest.store(true, std::memory_order_relaxed);
    ingester.join();
  }
  server.Shutdown();
  if (store != nullptr) {
    const traffic::SnapshotStoreStats ss = store->stats();
    stats.swaps = ss.swaps;
    stats.rows_ingested = ss.rows_accepted;
  }

  const serve::MetricsSnapshot snap = server.snapshot();
  stats.completed = completed;
  stats.failed = failed;
  stats.shed = snap.shed_queue_full;
  stats.qps = completed / std::max(secs, 1e-9);
  stats.p50_ms = Quantile(lat, 0.50);
  stats.p99_ms = Quantile(lat, 0.99);
  stats.batch_fill =
      snap.batches > 0
          ? static_cast<double>(snap.batch_requests) / snap.batches
          : 1.0;
  return stats;
}

}  // namespace

int main() {
  const bool fast = FastMode();
  const int clients = fast ? 4 : 8;
  const int per_client = fast ? 6 : 30;

  eval::World& world = BenchWorld();
  core::DeepSTModel model(world.net(),
                          baselines::DeepStConfigOf(SmallConfig()),
                          world.traffic_cache());
  core::ServingContext serving(&model, &world.index());

  std::vector<core::RouteQuery> queries;
  for (const auto* rec : world.split().test) {
    if (rec->trip.route.size() < 3) continue;
    queries.push_back(eval::QueryFor(rec->trip));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no usable test trips\n");
    return 1;
  }

  std::vector<RunStats> rows;
  rows.push_back(RunSerial(&serving, queries, clients * per_client));
  std::fprintf(stderr, "[serving] serial: %.1f qps, p50 %.2f ms, p99 %.2f ms\n",
               rows.back().qps, rows.back().p50_ms, rows.back().p99_ms);
  for (int workers : {1, 2, 4}) {
    rows.push_back(RunServer(&serving, queries, workers, clients, per_client));
    const RunStats& r = rows.back();
    std::fprintf(stderr,
                 "[serving] %d workers: %.1f qps, p50 %.2f ms, p99 %.2f ms, "
                 "batch fill %.2f, shed %lld, failed %lld\n",
                 workers, r.qps, r.p50_ms, r.p99_ms, r.batch_fill,
                 static_cast<long long>(r.shed),
                 static_cast<long long>(r.failed));
    if (r.failed != 0) {
      std::fprintf(stderr, "unexpected failures in healthy run\n");
      return 1;
    }
  }

  // Live-ingest scenario: 4 workers again, but the context serves from a
  // SnapshotStore under concurrent ingest and swap churn (real WAL on disk,
  // background aggregator, memo-epoch bump per publish).
  {
    const std::string wal_path =
        deepst::bench::OutDir() + "/bench_traffic.wal";
    std::remove(wal_path.c_str());
    auto wal = traffic::ObservationWal::Open(
        wal_path, traffic::ObservationWal::Options(), nullptr, nullptr);
    if (!wal.ok()) {
      std::fprintf(stderr, "failed opening bench WAL: %s\n",
                   wal.status().message().c_str());
      return 1;
    }
    // Swaps are driven closed-loop by the ingest client (one per acked
    // batch) rather than on a wall-clock cadence, so even the DEEPST_FAST
    // run crosses many generation boundaries.
    traffic::SnapshotStore store(world.traffic_cache()->Clone(),
                                 std::move(wal).value(), {});
    store.set_on_swap(
        [&model](uint64_t) { model.InvalidateTransitionCache(); });
    core::ServingContext live(&model, &world.index(), {}, &store);
    rows.push_back(RunServer(&live, queries, 4, clients, per_client, &store));
    std::remove(wal_path.c_str());
    const RunStats& r = rows.back();
    std::fprintf(stderr,
                 "[serving] live ingest (4 workers): %.1f qps, p50 %.2f ms, "
                 "p99 %.2f ms, %lld swaps, %lld rows ingested\n",
                 r.qps, r.p50_ms, r.p99_ms, static_cast<long long>(r.swaps),
                 static_cast<long long>(r.rows_ingested));
    if (r.failed != 0) {
      std::fprintf(stderr, "unexpected failures in live-ingest run\n");
      return 1;
    }
    if (r.rows_ingested <= 0) {
      std::fprintf(stderr, "live-ingest run ingested nothing\n");
      return 1;
    }
  }

  const std::string json_path = deepst::bench::OutDir() + "/BENCH_serving.json";
  std::ofstream json(json_path);
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunStats& r = rows[i];
    json << "  {\"mode\": \"" << r.mode << "\", \"workers\": " << r.workers
         << ", \"qps\": " << r.qps << ", \"p50_ms\": " << r.p50_ms
         << ", \"p99_ms\": " << r.p99_ms << ", \"completed\": " << r.completed
         << ", \"shed\": " << r.shed << ", \"batch_fill\": " << r.batch_fill
         << ", \"swaps\": " << r.swaps
         << ", \"rows_ingested\": " << r.rows_ingested << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  if (!json.good()) {
    std::fprintf(stderr, "failed writing %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}
