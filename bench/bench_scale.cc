// Scale gate (docs/formats.md): cold-load wall time and per-process RSS to a
// query-ready city (network + spatial index) at ~10k and ~100k directed
// segments, comparing the v2 streaming-heap path against the v3 mmap
// zero-copy path. Writes bench_out/BENCH_scale.json; tools/check_perf.sh
// gates v3 being >= 5x faster at the 100k scale.
//
// Each cold load runs in a fresh child process (this binary re-exec'd with
// --load-child), so VmRSS reflects exactly one loaded city and no allocator
// or page-cache state leaks between measurements of the two formats.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "roadnet/grid_city.h"
#include "roadnet/io.h"
#include "roadnet/spatial_index.h"
#include "util/stopwatch.h"

namespace {

using deepst::bench::OutDir;

constexpr double kCellSizeM = 250.0;

long ReadVmRssKb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::atol(line.c_str() + 6);
    }
  }
  return -1;
}

// Child mode: load `path` to query-ready, print "<seconds> <rss_kb> <segs>".
int RunLoadChild(const char* path) {
  deepst::util::Stopwatch watch;
  auto city = deepst::roadnet::LoadCity(path, kCellSizeM);
  if (!city.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 city.status().ToString().c_str());
    return 1;
  }
  // Query once so a lazily-built index could not fake readiness.
  const deepst::geo::BoundingBox& b = city.value().net->bounds();
  auto near = city.value().index->Nearest(
      {(b.min.x + b.max.x) / 2.0, (b.min.y + b.max.y) / 2.0});
  (void)near;
  std::printf("%.6f %ld %d\n", watch.ElapsedSeconds(), ReadVmRssKb(),
              city.value().net->num_segments());
  return 0;
}

std::string SelfExe() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    std::fprintf(stderr, "readlink(/proc/self/exe) failed\n");
    std::exit(1);
  }
  buf[n] = '\0';
  return buf;
}

struct LoadSample {
  double load_s = 0.0;
  long rss_kb = 0;
  int segments = 0;
};

// Best-of-`runs` cold load of `path` in child processes. One extra warm-up
// child runs first and is discarded: it pays any one-time page-cache and
// binary-load costs so the measured floor reflects the format, not the
// machine's state. Best-of (not mean) because scheduler noise on a busy
// box only ever adds time.
LoadSample MeasureColdLoad(const std::string& exe, const std::string& path,
                           int runs) {
  LoadSample best;
  best.load_s = 1e30;
  for (int i = -1; i < runs; ++i) {
    const std::string cmd = exe + " --load-child " + path;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
      std::fprintf(stderr, "popen failed for: %s\n", cmd.c_str());
      std::exit(1);
    }
    char buf[256] = {0};
    const char* got = std::fgets(buf, sizeof(buf), pipe);
    const int rc = pclose(pipe);
    LoadSample s;
    if (got == nullptr || rc != 0 ||
        std::sscanf(buf, "%lf %ld %d", &s.load_s, &s.rss_kb, &s.segments) !=
            3) {
      std::fprintf(stderr, "child load failed (rc=%d): %s\n", rc, cmd.c_str());
      std::exit(1);
    }
    if (i >= 0 && s.load_s < best.load_s) best = s;
  }
  return best;
}

struct ScaleRow {
  int segments = 0;
  std::string format;
  double load_s = 0.0;
  long rss_kb = 0;
  double speedup_vs_v2 = 1.0;
};

bool FastMode() {
  const char* v = std::getenv("DEEPST_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--load-child") == 0) {
    return RunLoadChild(argv[2]);
  }

  const std::string exe = SelfExe();
  const std::string out_dir = OutDir();
  const int runs = FastMode() ? 1 : 5;

  // Two chengdu-full scales: the 100k preset and a lattice shrunk to ~10k
  // directed segments. DEEPST_FAST shrinks both so the smoke path stays fast.
  std::vector<std::pair<std::string, deepst::roadnet::ChengduFullConfig>>
      scales;
  {
    deepst::roadnet::ChengduFullConfig small =
        deepst::roadnet::ChengduFullCityConfig();
    small.base.rows = FastMode() ? 24 : 53;
    small.base.cols = small.base.rows;
    scales.emplace_back("10k", small);
    deepst::roadnet::ChengduFullConfig full =
        deepst::roadnet::ChengduFullCityConfig();
    if (FastMode()) {
      full.base.rows = 48;
      full.base.cols = 48;
    }
    scales.emplace_back("100k", full);
  }

  std::vector<ScaleRow> rows;
  for (const auto& [tag, config] : scales) {
    std::fprintf(stderr, "[scale %s] building city...\n", tag.c_str());
    auto net = deepst::roadnet::BuildChengduFull(config);
    deepst::roadnet::SpatialIndex index(*net, kCellSizeM);
    const std::string v2_path = out_dir + "/scale_" + tag + "_v2.bin";
    const std::string v3_path = out_dir + "/scale_" + tag + "_v3.bin";
    auto s2 = deepst::roadnet::SaveRoadNetwork(*net, v2_path);
    auto s3 = deepst::roadnet::SaveRoadNetworkV3(*net, v3_path, &index);
    if (!s2.ok() || !s3.ok()) {
      std::fprintf(stderr, "save failed: %s / %s\n", s2.ToString().c_str(),
                   s3.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[scale %s] %d segments; measuring cold loads\n",
                 tag.c_str(), net->num_segments());
    net.reset();

    const LoadSample v2 = MeasureColdLoad(exe, v2_path, runs);
    const LoadSample v3 = MeasureColdLoad(exe, v3_path, runs);
    rows.push_back({v2.segments, "v2", v2.load_s, v2.rss_kb, 1.0});
    rows.push_back({v3.segments, "v3", v3.load_s, v3.rss_kb,
                    v3.load_s > 0.0 ? v2.load_s / v3.load_s : 0.0});
    std::fprintf(stderr,
                 "[scale %s] v2 %.3fs %ldKB | v3 %.3fs %ldKB | %.1fx\n",
                 tag.c_str(), v2.load_s, v2.rss_kb, v3.load_s, v3.rss_kb,
                 rows.back().speedup_vs_v2);
    std::remove(v2_path.c_str());
    std::remove(v3_path.c_str());
  }

  const std::string json_path = out_dir + "/BENCH_scale.json";
  std::ofstream json(json_path);
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    json << "  {\"segments\": " << r.segments << ", \"format\": \""
         << r.format << "\", \"load_s\": " << r.load_s
         << ", \"rss_kb\": " << r.rss_kb
         << ", \"speedup_vs_v2\": " << r.speedup_vs_v2 << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  if (!json.good()) {
    std::fprintf(stderr, "failed writing %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}
