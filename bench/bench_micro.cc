// Micro-benchmarks of the hot paths, including an empirical check of the
// paper's Section IV-F complexity claim: route prediction and likelihood
// scoring are O(|r|) in the route length.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "baselines/neural_router.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "eval/world.h"
#include "mapmatch/hmm_matcher.h"
#include "nn/backend.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "roadnet/shortest_path.h"
#include "util/stopwatch.h"

namespace deepst {
namespace bench {
namespace {

eval::World& MicroWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.2);
    cfg.name = "micro-world";
    cfg.generator.num_days = 4;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

core::DeepSTModel& MicroModel() {
  static core::DeepSTModel* model = [] {
    core::DeepSTConfig cfg =
        baselines::DeepStCConfigOf(eval::DefaultModelConfig(MicroWorld()));
    return new core::DeepSTModel(MicroWorld().net(), cfg, nullptr);
  }();
  return *model;
}

// -- nn kernels ------------------------------------------------------------------

void BM_GruStep(benchmark::State& state) {
  const int64_t batch = state.range(0);
  util::Rng rng(1);
  nn::StackedGru gru(32, 64, 2, &rng);
  nn::VarPtr x = nn::Constant(nn::Tensor::Uniform({batch, 32}, -1, 1, &rng));
  for (auto _ : state) {
    auto s = gru.InitialState(batch);
    benchmark::DoNotOptimize(gru.Step(x, &s));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GruStep)->Arg(1)->Arg(16)->Arg(64);

void BM_LinearForwardBackward(benchmark::State& state) {
  util::Rng rng(2);
  nn::LinearLayer fc(256, 256, &rng);
  nn::VarPtr x =
      nn::MakeVar(nn::Tensor::Uniform({64, 256}, -1, 1, &rng), true);
  for (auto _ : state) {
    nn::VarPtr loss = nn::ops::Sum(fc.Forward(x));
    nn::Backward(loss);
    x->ZeroGrad();
    benchmark::DoNotOptimize(loss->value()[0]);
  }
}
BENCHMARK(BM_LinearForwardBackward);

// -- backend kernels -------------------------------------------------------------

// GEMM through the backend at the thread count given by the benchmark arg.
// The --threads flag is ignored here on purpose: the sweep sets the backend
// itself so one run covers all counts.
void BM_MatmulKernel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int64_t n = state.range(1);
  const int prev = nn::GetBackendThreads();
  nn::SetBackendThreads(threads);
  util::Rng rng(7);
  const nn::Tensor a = nn::Tensor::Uniform({n, n}, -1, 1, &rng);
  const nn::Tensor b = nn::Tensor::Uniform({n, n}, -1, 1, &rng);
  nn::Tensor c = nn::Tensor::Zeros({n, n});
  for (auto _ : state) {
    nn::kernels::GemmAcc(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  nn::SetBackendThreads(prev);
}
BENCHMARK(BM_MatmulKernel)->ArgsProduct({{1, 2, 4}, {64, 256}});

void BM_Conv2dKernel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int prev = nn::GetBackendThreads();
  nn::SetBackendThreads(threads);
  util::Rng rng(8);
  const nn::Tensor x = nn::Tensor::Uniform({8, 8, 24, 24}, -1, 1, &rng);
  const nn::Tensor w = nn::Tensor::Uniform({16, 8, 3, 3}, -1, 1, &rng);
  nn::Tensor out = nn::Tensor::Zeros({8, 16, 24, 24});
  for (auto _ : state) {
    nn::kernels::Conv2dForward(x, w, /*bias=*/nullptr, /*stride=*/1,
                               /*pad=*/1, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * out.numel());
  nn::SetBackendThreads(prev);
}
BENCHMARK(BM_Conv2dKernel)->Arg(1)->Arg(2)->Arg(4);

// One-shot sweep of the two FLOP-dominant kernels over thread counts,
// exported as bench_out/BENCH_kernels.json (seconds per call and speedup
// over the single-thread run, per kernel and thread count).
void BM_KernelThreadSweep(benchmark::State& state) {
  const int64_t n = eval::FastMode() ? 128 : 256;
  const int reps = eval::FastMode() ? 5 : 10;
  util::Rng rng(9);
  const nn::Tensor a = nn::Tensor::Uniform({n, n}, -1, 1, &rng);
  const nn::Tensor b = nn::Tensor::Uniform({n, n}, -1, 1, &rng);
  nn::Tensor c = nn::Tensor::Zeros({n, n});
  const nn::Tensor x = nn::Tensor::Uniform({8, 8, 24, 24}, -1, 1, &rng);
  const nn::Tensor w = nn::Tensor::Uniform({16, 8, 3, 3}, -1, 1, &rng);
  nn::Tensor out = nn::Tensor::Zeros({8, 16, 24, 24});

  auto time_best = [reps](const std::function<void()>& fn) {
    fn();  // warmup
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      util::Stopwatch watch;
      for (int i = 0; i < reps; ++i) fn();
      best = std::min(best, watch.ElapsedSeconds() / reps);
    }
    return best;
  };

  struct Row {
    const char* kernel;
    int threads;
    double seconds;
  };
  std::vector<Row> rows;
  const int prev = nn::GetBackendThreads();
  for (auto _ : state) {
    rows.clear();
    for (int threads : {1, 2, 4}) {
      nn::SetBackendThreads(threads);
      rows.push_back({"matmul", threads, time_best([&] {
                        nn::kernels::GemmAcc(a.data(), b.data(), c.data(), n,
                                             n, n);
                      })});
      rows.push_back({"conv2d", threads, time_best([&] {
                        nn::kernels::Conv2dForward(x, w, nullptr, 1, 1, &out);
                      })});
    }
  }
  nn::SetBackendThreads(prev);

  auto baseline = [&rows](const char* kernel) {
    for (const Row& r : rows) {
      if (r.threads == 1 && std::string(kernel) == r.kernel) return r.seconds;
    }
    return 0.0;
  };
  std::ofstream json(OutDir() + "/BENCH_kernels.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "  {\"kernel\": \"" << r.kernel << "\", \"threads\": " << r.threads
         << ", \"seconds_per_call\": " << r.seconds
         << ", \"speedup_vs_1\": " << baseline(r.kernel) / r.seconds << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  for (const Row& r : rows) {
    state.counters[std::string(r.kernel) + "_t" + std::to_string(r.threads) +
                   "_speedup"] = baseline(r.kernel) / r.seconds;
  }
}
BENCHMARK(BM_KernelThreadSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

// -- roadnet ---------------------------------------------------------------------

void BM_Dijkstra(benchmark::State& state) {
  auto& world = MicroWorld();
  const auto cost = roadnet::FreeFlowTimeCost(world.net());
  util::Rng rng(3);
  for (auto _ : state) {
    const auto src = static_cast<roadnet::SegmentId>(rng.UniformInt(
        static_cast<uint64_t>(world.net().num_segments())));
    benchmark::DoNotOptimize(
        roadnet::ShortestPathTree(world.net(), src, cost));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_SpatialIndexNearest(benchmark::State& state) {
  auto& world = MicroWorld();
  util::Rng rng(4);
  const auto& box = world.net().bounds();
  for (auto _ : state) {
    geo::Point p{rng.Uniform(box.min.x, box.max.x),
                 rng.Uniform(box.min.y, box.max.y)};
    benchmark::DoNotOptimize(world.index().Nearest(p));
  }
}
BENCHMARK(BM_SpatialIndexNearest);

// -- mapmatch --------------------------------------------------------------------

void BM_HmmMatch(benchmark::State& state) {
  auto& world = MicroWorld();
  mapmatch::HmmMapMatcher matcher(world.net(), world.index());
  const auto& gps = world.records().front().gps;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(gps));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(gps.size()));
}
BENCHMARK(BM_HmmMatch);

// -- DeepST prediction/scoring: O(|r|) (paper IV-F) --------------------------------

// A route of the requested length: the prefix of the longest shortest path
// rooted at segment 0 (paths in an 11x11 grid reach ~20+ segments).
traj::Route SyntheticRoute(int target_len) {
  auto& world = MicroWorld();
  const auto cost = roadnet::LengthCost(world.net());
  const auto dist = roadnet::ShortestPathTree(world.net(), 0, cost);
  roadnet::SegmentId far = 0;
  for (roadnet::SegmentId s = 0; s < world.net().num_segments(); ++s) {
    if (std::isfinite(dist[static_cast<size_t>(s)]) &&
        dist[static_cast<size_t>(s)] > dist[static_cast<size_t>(far)]) {
      far = s;
    }
  }
  traj::Route route =
      roadnet::ShortestPath(world.net(), 0, far, cost).value().path;
  if (static_cast<int>(route.size()) > target_len) {
    route.resize(static_cast<size_t>(target_len));
  }
  return route;
}

// Scores a synthetic straight-line route of the requested length; time per
// iteration should grow linearly with the length argument.
void BM_ScoreRouteByLength(benchmark::State& state) {
  auto& world = MicroWorld();
  auto& model = MicroModel();
  traj::Route route = SyntheticRoute(static_cast<int>(state.range(0)));
  util::Rng rng(5);
  core::RouteQuery query;
  query.origin = route.front();
  query.destination = world.net().SegmentEnd(route.back());
  core::PredictionContext ctx = model.MakeContext(query, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScoreRoute(ctx, route));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(route.size()));
  state.counters["route_len"] =
      static_cast<double>(route.size());
}
BENCHMARK(BM_ScoreRouteByLength)->Arg(5)->Arg(10)->Arg(19);

void BM_PredictRoute(benchmark::State& state) {
  auto& world = MicroWorld();
  auto& model = MicroModel();
  util::Rng rng(6);
  const auto* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictRoute(query, &rng));
  }
}
BENCHMARK(BM_PredictRoute);

void BM_PredictRouteBeam(benchmark::State& state) {
  auto& world = MicroWorld();
  auto& model = MicroModel();
  util::Rng rng(6);
  const auto* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  core::PredictionContext ctx = model.MakeContext(query, &rng);
  for (auto _ : state) {
    util::Rng step_rng(7);
    benchmark::DoNotOptimize(
        model.PredictRouteBeam(ctx, query.origin, &step_rng));
  }
}
BENCHMARK(BM_PredictRouteBeam);

// Batched candidate-set scoring (the route-ranking / recovery hot path):
// one padded batch through the engine vs `batch` sequential ScoreRoute
// calls' worth of work.
void BM_ScoreRoutesBatched(benchmark::State& state) {
  auto& model = MicroModel();
  const int batch = static_cast<int>(state.range(0));
  const traj::Route route = SyntheticRoute(19);
  std::vector<traj::Route> candidates;
  for (int i = 0; i < batch; ++i) {
    candidates.emplace_back(route.begin(),
                            route.end() - (i % 4));  // mixed lengths
  }
  util::Rng rng(5);
  core::RouteQuery query;
  query.origin = route.front();
  query.destination = MicroWorld().net().SegmentEnd(route.back());
  core::PredictionContext ctx = model.MakeContext(query, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScoreRoutes(ctx, candidates));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScoreRoutesBatched)->Arg(1)->Arg(8)->Arg(32);

// One-shot sweep comparing the autodiff graph path against the graph-free
// engine on the two prediction-time workloads, over backend thread counts.
// Exported as bench_out/BENCH_inference.json; tools/check_perf.sh asserts
// the single-thread fast-path speedups from it.
void BM_InferenceSweep(benchmark::State& state) {
  auto& world = MicroWorld();
  core::DeepSTConfig fast_cfg =
      baselines::DeepStCConfigOf(eval::DefaultModelConfig(world));
  core::DeepSTConfig graph_cfg = fast_cfg;
  graph_cfg.graph_inference = true;
  // Same config seed, so both models hold identical weights.
  core::DeepSTModel fast_model(world.net(), fast_cfg, nullptr);
  core::DeepSTModel graph_model(world.net(), graph_cfg, nullptr);

  const traj::Route route = SyntheticRoute(19);
  core::RouteQuery score_query;
  score_query.origin = route.front();
  score_query.destination = world.net().SegmentEnd(route.back());
  core::RouteQuery pred_query = eval::QueryFor(world.split().test.front()->trip);
  util::Rng rng_f(5), rng_g(5);
  core::PredictionContext score_ctx_f = fast_model.MakeContext(score_query, &rng_f);
  core::PredictionContext score_ctx_g = graph_model.MakeContext(score_query, &rng_g);
  core::PredictionContext pred_ctx_f = fast_model.MakeContext(pred_query, &rng_f);
  core::PredictionContext pred_ctx_g = graph_model.MakeContext(pred_query, &rng_g);

  const int reps = eval::FastMode() ? 10 : 30;
  auto time_best = [reps](const std::function<void()>& fn) {
    fn();  // warmup
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      util::Stopwatch watch;
      for (int i = 0; i < reps; ++i) fn();
      best = std::min(best, watch.ElapsedSeconds() / reps);
    }
    return best;
  };

  struct Row {
    const char* engine;
    const char* workload;
    int threads;
    double seconds;
  };
  std::vector<Row> rows;
  const int prev = nn::GetBackendThreads();
  for (auto _ : state) {
    rows.clear();
    for (int threads : {1, 2, 4}) {
      nn::SetBackendThreads(threads);
      struct Engine {
        const char* name;
        core::DeepSTModel* model;
        core::PredictionContext* score_ctx;
        core::PredictionContext* pred_ctx;
      };
      const Engine engines[2] = {
          {"graph", &graph_model, &score_ctx_g, &pred_ctx_g},
          {"fast", &fast_model, &score_ctx_f, &pred_ctx_f}};
      for (const Engine& e : engines) {
        rows.push_back({e.name, "score_route_len19", threads, time_best([&] {
                          benchmark::DoNotOptimize(
                              e.model->ScoreRoute(*e.score_ctx, route));
                        })});
        rows.push_back({e.name, "predict_route", threads, time_best([&] {
                          util::Rng r(7);
                          benchmark::DoNotOptimize(e.model->PredictRouteBeam(
                              *e.pred_ctx, pred_query.origin, &r));
                        })});
      }
    }
  }
  nn::SetBackendThreads(prev);

  // Cross-engine agreement on the timed workloads (also parity-tested at
  // 1e-5 in tests/inference_test.cc; recorded here for the bench artifact).
  const double score_diff =
      std::abs(fast_model.ScoreRoute(score_ctx_f, route) -
               graph_model.ScoreRoute(score_ctx_g, route));

  auto seconds_of = [&rows](const char* engine, const char* workload,
                            int threads) {
    for (const Row& r : rows) {
      if (std::string(engine) == r.engine &&
          std::string(workload) == r.workload && r.threads == threads) {
        return r.seconds;
      }
    }
    return 0.0;
  };
  std::ofstream json(OutDir() + "/BENCH_inference.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "  {\"engine\": \"" << r.engine << "\", \"workload\": \""
         << r.workload << "\", \"threads\": " << r.threads
         << ", \"seconds_per_call\": " << r.seconds << ", \"speedup_vs_graph\": "
         << seconds_of("graph", r.workload, r.threads) / r.seconds
         << ", \"speedup_vs_1\": "
         << seconds_of(r.engine, r.workload, 1) / r.seconds
         << ", \"score_abs_diff\": " << score_diff << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  for (const Row& r : rows) {
    if (std::string(r.engine) != "fast") continue;
    state.counters[std::string(r.workload) + "_t" + std::to_string(r.threads) +
                   "_speedup"] =
        seconds_of("graph", r.workload, r.threads) / r.seconds;
  }
}
BENCHMARK(BM_InferenceSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

// One-shot sweep of the training engine: the legacy single-graph tape
// ("serial", one batch = one autodiff graph) against data-parallel
// micro-sharding (docs/training-perf.md) on 1, 2 and 4 backend threads.
// Exported as bench_out/BENCH_training.json; tools/check_perf.sh gates the
// single-thread sharding overhead everywhere and the 4-thread epoch speedup
// on machines that actually have >= 4 cores. Sharded runs must train
// bitwise identical parameters for every thread count (the
// `bitwise_identical_params` field records the cross-thread comparison).
void BM_TrainingSweep(benchmark::State& state) {
  auto& world = MicroWorld();
  const core::DeepSTConfig mcfg =
      baselines::DeepStConfigOf(eval::DefaultModelConfig(world));
  const int epochs = eval::FastMode() ? 2 : 3;

  struct Run {
    double epoch_seconds = std::numeric_limits<double>::infinity();
    double transitions_per_sec = 0.0;
    std::vector<std::vector<float>> params;
  };
  // Fresh model per run (same config seed, so every run starts from the
  // same initialization). Epoch time is the best epoch's batch-loop
  // wall-clock, reconstructed from the trainer's throughput stats so
  // validation-free Fit overhead stays out of the measurement.
  auto train = [&](int shard_size, int threads) {
    core::DeepSTModel model(world.net(), mcfg, world.traffic_cache());
    core::TrainerConfig tcfg;
    tcfg.max_epochs = epochs;
    tcfg.patience = 100;
    tcfg.verbose = false;
    tcfg.num_threads = threads;
    tcfg.micro_shard_size = shard_size;
    core::Trainer trainer(&model, tcfg);
    auto result = trainer.Fit(world.split().train, {});
    Run run;
    for (const auto& e : result.epochs) {
      if (e.transitions_per_sec <= 0.0) continue;
      const double sec =
          static_cast<double>(e.transitions) / e.transitions_per_sec;
      if (sec < run.epoch_seconds) {
        run.epoch_seconds = sec;
        run.transitions_per_sec = e.transitions_per_sec;
      }
    }
    for (const auto& p : model.Parameters()) {
      const nn::Tensor& v = p.var->value();
      run.params.emplace_back(v.data(), v.data() + v.numel());
    }
    return run;
  };

  struct Row {
    const char* mode;
    int threads;
    Run run;
  };
  std::vector<Row> rows;
  for (auto _ : state) {
    rows.clear();
    rows.push_back({"serial", 1, train(/*shard_size=*/0, /*threads=*/1)});
    for (int threads : {1, 2, 4}) {
      rows.push_back({"sharded", threads, train(/*shard_size=*/16, threads)});
    }
  }

  // The determinism contract, measured on the artifact itself: every
  // sharded run trains the same parameters bit for bit.
  bool bitwise = true;
  const Row* sharded1 = nullptr;
  for (const Row& r : rows) {
    if (std::string(r.mode) != "sharded") continue;
    if (sharded1 == nullptr) {
      sharded1 = &r;
      continue;
    }
    for (size_t p = 0; p < sharded1->run.params.size() && bitwise; ++p) {
      bitwise = r.run.params[p].size() == sharded1->run.params[p].size() &&
                std::memcmp(r.run.params[p].data(),
                            sharded1->run.params[p].data(),
                            r.run.params[p].size() * sizeof(float)) == 0;
    }
  }

  const double serial_seconds = rows.front().run.epoch_seconds;
  std::ofstream json(OutDir() + "/BENCH_training.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "  {\"mode\": \"" << r.mode << "\", \"threads\": " << r.threads
         << ", \"epoch_seconds\": " << r.run.epoch_seconds
         << ", \"transitions_per_sec\": " << r.run.transitions_per_sec
         << ", \"speedup_vs_serial\": "
         << serial_seconds / r.run.epoch_seconds
         << ", \"bitwise_identical_params\": " << (bitwise ? "true" : "false")
         << ", \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  for (const Row& r : rows) {
    state.counters[std::string(r.mode) + "_t" + std::to_string(r.threads) +
                   "_speedup"] = serial_seconds / r.run.epoch_seconds;
  }
  state.counters["bitwise_identical_params"] = bitwise ? 1.0 : 0.0;
}
BENCHMARK(BM_TrainingSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
