// Micro-benchmarks of the hot paths, including an empirical check of the
// paper's Section IV-F complexity claim: route prediction and likelihood
// scoring are O(|r|) in the route length.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "baselines/neural_router.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "eval/world.h"
#include "mapmatch/hmm_matcher.h"
#include "nn/backend.h"
#include "nn/infer/forward.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "roadnet/shortest_path.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace deepst {
namespace bench {
namespace {

eval::World& MicroWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.2);
    cfg.name = "micro-world";
    cfg.generator.num_days = 4;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

core::DeepSTModel& MicroModel() {
  static core::DeepSTModel* model = [] {
    core::DeepSTConfig cfg =
        baselines::DeepStCConfigOf(eval::DefaultModelConfig(MicroWorld()));
    return new core::DeepSTModel(MicroWorld().net(), cfg, nullptr);
  }();
  return *model;
}

// -- nn kernels ------------------------------------------------------------------

void BM_GruStep(benchmark::State& state) {
  const int64_t batch = state.range(0);
  util::Rng rng(1);
  nn::StackedGru gru(32, 64, 2, &rng);
  nn::VarPtr x = nn::Constant(nn::Tensor::Uniform({batch, 32}, -1, 1, &rng));
  for (auto _ : state) {
    auto s = gru.InitialState(batch);
    benchmark::DoNotOptimize(gru.Step(x, &s));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GruStep)->Arg(1)->Arg(16)->Arg(64);

void BM_LinearForwardBackward(benchmark::State& state) {
  util::Rng rng(2);
  nn::LinearLayer fc(256, 256, &rng);
  nn::VarPtr x =
      nn::MakeVar(nn::Tensor::Uniform({64, 256}, -1, 1, &rng), true);
  for (auto _ : state) {
    nn::VarPtr loss = nn::ops::Sum(fc.Forward(x));
    nn::Backward(loss);
    x->ZeroGrad();
    benchmark::DoNotOptimize(loss->value()[0]);
  }
}
BENCHMARK(BM_LinearForwardBackward);

// -- backend kernels -------------------------------------------------------------

// GEMM through the backend at the thread count given by the benchmark arg.
// The --threads flag is ignored here on purpose: the sweep sets the backend
// itself so one run covers all counts.
void BM_MatmulKernel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int64_t n = state.range(1);
  const int prev = nn::GetBackendThreads();
  nn::SetBackendThreads(threads);
  util::Rng rng(7);
  const nn::Tensor a = nn::Tensor::Uniform({n, n}, -1, 1, &rng);
  const nn::Tensor b = nn::Tensor::Uniform({n, n}, -1, 1, &rng);
  nn::Tensor c = nn::Tensor::Zeros({n, n});
  for (auto _ : state) {
    nn::kernels::GemmAcc(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  nn::SetBackendThreads(prev);
}
BENCHMARK(BM_MatmulKernel)->ArgsProduct({{1, 2, 4}, {64, 256}});

void BM_Conv2dKernel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int prev = nn::GetBackendThreads();
  nn::SetBackendThreads(threads);
  util::Rng rng(8);
  const nn::Tensor x = nn::Tensor::Uniform({8, 8, 24, 24}, -1, 1, &rng);
  const nn::Tensor w = nn::Tensor::Uniform({16, 8, 3, 3}, -1, 1, &rng);
  nn::Tensor out = nn::Tensor::Zeros({8, 16, 24, 24});
  for (auto _ : state) {
    nn::kernels::Conv2dForward(x, w, /*bias=*/nullptr, /*stride=*/1,
                               /*pad=*/1, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * out.numel());
  nn::SetBackendThreads(prev);
}
BENCHMARK(BM_Conv2dKernel)->Arg(1)->Arg(2)->Arg(4);

// One-shot sweep of the two FLOP-dominant kernels over thread counts,
// exported as bench_out/BENCH_kernels.json (seconds per call and speedup
// over the single-thread run, per kernel and thread count).
void BM_KernelThreadSweep(benchmark::State& state) {
  const int64_t n = eval::FastMode() ? 128 : 256;
  const int reps = eval::FastMode() ? 5 : 10;
  util::Rng rng(9);
  const nn::Tensor a = nn::Tensor::Uniform({n, n}, -1, 1, &rng);
  const nn::Tensor b = nn::Tensor::Uniform({n, n}, -1, 1, &rng);
  nn::Tensor c = nn::Tensor::Zeros({n, n});
  const nn::Tensor x = nn::Tensor::Uniform({8, 8, 24, 24}, -1, 1, &rng);
  const nn::Tensor w = nn::Tensor::Uniform({16, 8, 3, 3}, -1, 1, &rng);
  nn::Tensor out = nn::Tensor::Zeros({8, 16, 24, 24});

  auto time_best = [reps](const std::function<void()>& fn) {
    fn();  // warmup
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      util::Stopwatch watch;
      for (int i = 0; i < reps; ++i) fn();
      best = std::min(best, watch.ElapsedSeconds() / reps);
    }
    return best;
  };

  struct Row {
    const char* kernel;
    int threads;
    double seconds;
  };
  std::vector<Row> rows;
  const int prev = nn::GetBackendThreads();
  for (auto _ : state) {
    rows.clear();
    for (int threads : {1, 2, 4}) {
      nn::SetBackendThreads(threads);
      rows.push_back({"matmul", threads, time_best([&] {
                        nn::kernels::GemmAcc(a.data(), b.data(), c.data(), n,
                                             n, n);
                      })});
      rows.push_back({"conv2d", threads, time_best([&] {
                        nn::kernels::Conv2dForward(x, w, nullptr, 1, 1, &out);
                      })});
    }
  }
  nn::SetBackendThreads(prev);

  auto baseline = [&rows](const char* kernel) {
    for (const Row& r : rows) {
      if (r.threads == 1 && std::string(kernel) == r.kernel) return r.seconds;
    }
    return 0.0;
  };
  std::ofstream json(OutDir() + "/BENCH_kernels.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "  {\"kernel\": \"" << r.kernel << "\", \"threads\": " << r.threads
         << ", \"seconds_per_call\": " << r.seconds
         << ", \"speedup_vs_1\": " << baseline(r.kernel) / r.seconds << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  for (const Row& r : rows) {
    state.counters[std::string(r.kernel) + "_t" + std::to_string(r.threads) +
                   "_speedup"] = baseline(r.kernel) / r.seconds;
  }
}
BENCHMARK(BM_KernelThreadSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

// -- roadnet ---------------------------------------------------------------------

void BM_Dijkstra(benchmark::State& state) {
  auto& world = MicroWorld();
  const auto cost = roadnet::FreeFlowTimeCost(world.net());
  util::Rng rng(3);
  for (auto _ : state) {
    const auto src = static_cast<roadnet::SegmentId>(rng.UniformInt(
        static_cast<uint64_t>(world.net().num_segments())));
    benchmark::DoNotOptimize(
        roadnet::ShortestPathTree(world.net(), src, cost));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_SpatialIndexNearest(benchmark::State& state) {
  auto& world = MicroWorld();
  util::Rng rng(4);
  const auto& box = world.net().bounds();
  for (auto _ : state) {
    geo::Point p{rng.Uniform(box.min.x, box.max.x),
                 rng.Uniform(box.min.y, box.max.y)};
    benchmark::DoNotOptimize(world.index().Nearest(p));
  }
}
BENCHMARK(BM_SpatialIndexNearest);

// -- mapmatch --------------------------------------------------------------------

void BM_HmmMatch(benchmark::State& state) {
  auto& world = MicroWorld();
  mapmatch::HmmMapMatcher matcher(world.net(), world.index());
  const auto& gps = world.records().front().gps;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(gps));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(gps.size()));
}
BENCHMARK(BM_HmmMatch);

// -- DeepST prediction/scoring: O(|r|) (paper IV-F) --------------------------------

// A route of the requested length: the prefix of the longest shortest path
// rooted at segment 0 (paths in an 11x11 grid reach ~20+ segments).
traj::Route SyntheticRoute(int target_len) {
  auto& world = MicroWorld();
  const auto cost = roadnet::LengthCost(world.net());
  const auto dist = roadnet::ShortestPathTree(world.net(), 0, cost);
  roadnet::SegmentId far = 0;
  for (roadnet::SegmentId s = 0; s < world.net().num_segments(); ++s) {
    if (std::isfinite(dist[static_cast<size_t>(s)]) &&
        dist[static_cast<size_t>(s)] > dist[static_cast<size_t>(far)]) {
      far = s;
    }
  }
  traj::Route route =
      roadnet::ShortestPath(world.net(), 0, far, cost).value().path;
  if (static_cast<int>(route.size()) > target_len) {
    route.resize(static_cast<size_t>(target_len));
  }
  return route;
}

// Scores a synthetic straight-line route of the requested length; time per
// iteration should grow linearly with the length argument.
void BM_ScoreRouteByLength(benchmark::State& state) {
  auto& world = MicroWorld();
  auto& model = MicroModel();
  traj::Route route = SyntheticRoute(static_cast<int>(state.range(0)));
  util::Rng rng(5);
  core::RouteQuery query;
  query.origin = route.front();
  query.destination = world.net().SegmentEnd(route.back());
  core::PredictionContext ctx = model.MakeContext(query, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScoreRoute(ctx, route));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(route.size()));
  state.counters["route_len"] =
      static_cast<double>(route.size());
}
BENCHMARK(BM_ScoreRouteByLength)->Arg(5)->Arg(10)->Arg(19);

void BM_PredictRoute(benchmark::State& state) {
  auto& world = MicroWorld();
  auto& model = MicroModel();
  util::Rng rng(6);
  const auto* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictRoute(query, &rng));
  }
}
BENCHMARK(BM_PredictRoute);

void BM_PredictRouteBeam(benchmark::State& state) {
  auto& world = MicroWorld();
  auto& model = MicroModel();
  util::Rng rng(6);
  const auto* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  core::PredictionContext ctx = model.MakeContext(query, &rng);
  for (auto _ : state) {
    util::Rng step_rng(7);
    benchmark::DoNotOptimize(
        model.PredictRouteBeam(ctx, query.origin, &step_rng));
  }
}
BENCHMARK(BM_PredictRouteBeam);

// Batched candidate-set scoring (the route-ranking / recovery hot path):
// one padded batch through the engine vs `batch` sequential ScoreRoute
// calls' worth of work.
void BM_ScoreRoutesBatched(benchmark::State& state) {
  auto& model = MicroModel();
  const int batch = static_cast<int>(state.range(0));
  const traj::Route route = SyntheticRoute(19);
  std::vector<traj::Route> candidates;
  for (int i = 0; i < batch; ++i) {
    candidates.emplace_back(route.begin(),
                            route.end() - (i % 4));  // mixed lengths
  }
  util::Rng rng(5);
  core::RouteQuery query;
  query.origin = route.front();
  query.destination = MicroWorld().net().SegmentEnd(route.back());
  core::PredictionContext ctx = model.MakeContext(query, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScoreRoutes(ctx, candidates));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScoreRoutesBatched)->Arg(1)->Arg(8)->Arg(32);

// One-shot sweep comparing the autodiff graph path against the graph-free
// engine on the two prediction-time workloads, over backend thread counts.
// Exported as bench_out/BENCH_inference.json; tools/check_perf.sh asserts
// the single-thread fast-path speedups from it.
void BM_InferenceSweep(benchmark::State& state) {
  auto& world = MicroWorld();
  core::DeepSTConfig fast_cfg =
      baselines::DeepStCConfigOf(eval::DefaultModelConfig(world));
  core::DeepSTConfig graph_cfg = fast_cfg;
  graph_cfg.graph_inference = true;
  // Same config seed, so both models hold identical weights.
  core::DeepSTModel fast_model(world.net(), fast_cfg, nullptr);
  core::DeepSTModel graph_model(world.net(), graph_cfg, nullptr);

  const traj::Route route = SyntheticRoute(19);
  core::RouteQuery score_query;
  score_query.origin = route.front();
  score_query.destination = world.net().SegmentEnd(route.back());
  core::RouteQuery pred_query = eval::QueryFor(world.split().test.front()->trip);
  util::Rng rng_f(5), rng_g(5);
  core::PredictionContext score_ctx_f = fast_model.MakeContext(score_query, &rng_f);
  core::PredictionContext score_ctx_g = graph_model.MakeContext(score_query, &rng_g);
  core::PredictionContext pred_ctx_f = fast_model.MakeContext(pred_query, &rng_f);
  core::PredictionContext pred_ctx_g = graph_model.MakeContext(pred_query, &rng_g);

  const int reps = eval::FastMode() ? 10 : 30;
  auto time_best = [reps](const std::function<void()>& fn) {
    fn();  // warmup
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      util::Stopwatch watch;
      for (int i = 0; i < reps; ++i) fn();
      best = std::min(best, watch.ElapsedSeconds() / reps);
    }
    return best;
  };

  struct Row {
    const char* engine;
    const char* workload;
    int threads;
    double seconds;
  };
  std::vector<Row> rows;
  const int prev = nn::GetBackendThreads();
  for (auto _ : state) {
    rows.clear();
    for (int threads : {1, 2, 4}) {
      nn::SetBackendThreads(threads);
      struct Engine {
        const char* name;
        core::DeepSTModel* model;
        core::PredictionContext* score_ctx;
        core::PredictionContext* pred_ctx;
      };
      const Engine engines[2] = {
          {"graph", &graph_model, &score_ctx_g, &pred_ctx_g},
          {"fast", &fast_model, &score_ctx_f, &pred_ctx_f}};
      for (const Engine& e : engines) {
        rows.push_back({e.name, "score_route_len19", threads, time_best([&] {
                          benchmark::DoNotOptimize(
                              e.model->ScoreRoute(*e.score_ctx, route));
                        })});
        rows.push_back({e.name, "predict_route", threads, time_best([&] {
                          util::Rng r(7);
                          benchmark::DoNotOptimize(e.model->PredictRouteBeam(
                              *e.pred_ctx, pred_query.origin, &r));
                        })});
      }
    }
  }
  nn::SetBackendThreads(prev);

  // Cross-engine agreement on the timed workloads (also parity-tested at
  // 1e-5 in tests/inference_test.cc; recorded here for the bench artifact).
  const double score_diff =
      std::abs(fast_model.ScoreRoute(score_ctx_f, route) -
               graph_model.ScoreRoute(score_ctx_g, route));

  auto seconds_of = [&rows](const char* engine, const char* workload,
                            int threads) {
    for (const Row& r : rows) {
      if (std::string(engine) == r.engine &&
          std::string(workload) == r.workload && r.threads == threads) {
        return r.seconds;
      }
    }
    return 0.0;
  };
  std::ofstream json(OutDir() + "/BENCH_inference.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "  {\"engine\": \"" << r.engine << "\", \"workload\": \""
         << r.workload << "\", \"threads\": " << r.threads
         << ", \"seconds_per_call\": " << r.seconds << ", \"speedup_vs_graph\": "
         << seconds_of("graph", r.workload, r.threads) / r.seconds
         << ", \"speedup_vs_1\": "
         << seconds_of(r.engine, r.workload, 1) / r.seconds
         << ", \"score_abs_diff\": " << score_diff << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  for (const Row& r : rows) {
    if (std::string(r.engine) != "fast") continue;
    state.counters[std::string(r.workload) + "_t" + std::to_string(r.threads) +
                   "_speedup"] =
        seconds_of("graph", r.workload, r.threads) / r.seconds;
  }
}
BENCHMARK(BM_InferenceSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

// One-shot sweep of the quantized inference kernels and the transition memo
// (fast path round two, docs/inference.md). Measures, single-threaded:
//   - raw GEMV ns/op per packed precision (double / bf16 / int8);
//   - the steady-state beam-prediction workload (8 hot queries replayed)
//     per precision with memoization off and on, plus the memo hit rate;
//   - accuracy parity of bf16/int8 against double on a briefly-trained
//     model: teacher-forced top-1 next-segment agreement and the mean
//     per-transition log-likelihood delta.
// Exported as bench_out/BENCH_quant.json; tools/check_perf.sh gates the
// memoized speedup (>= 2x on AVX2 hardware) and the accuracy floors.
void BM_QuantSweep(benchmark::State& state) {
  auto& world = MicroWorld();
  const int reps = eval::FastMode() ? 10 : 30;
  auto time_best = [reps](const std::function<void()>& fn) {
    fn();  // warmup (also brings the memo to steady state)
    double best = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 3; ++round) {
      util::Stopwatch watch;
      for (int i = 0; i < reps; ++i) fn();
      best = std::min(best, watch.ElapsedSeconds() / reps);
    }
    return best;
  };

  // Teacher: train briefly so the weights (and thus the accuracy-parity
  // numbers) are meaningful rather than random-init noise.
  const core::DeepSTConfig base_cfg =
      baselines::DeepStCConfigOf(eval::DefaultModelConfig(world));
  std::vector<nn::NamedTensor> trained;
  {
    core::DeepSTModel teacher(world.net(), base_cfg, nullptr);
    core::TrainerConfig tcfg;
    tcfg.max_epochs = eval::FastMode() ? 1 : 2;
    tcfg.patience = 100;
    tcfg.verbose = false;
    core::Trainer trainer(&teacher, tcfg);
    (void)trainer.Fit(world.split().train, {});
    trained = nn::SnapshotParameters(teacher);
  }

  struct Variant {
    const char* name;
    nn::infer::Precision precision;
    bool memo;
  };
  const Variant variants[] = {
      {"double_nomemo", nn::infer::Precision::kDouble, false},
      {"double_memo", nn::infer::Precision::kDouble, true},
      {"bf16_nomemo", nn::infer::Precision::kBf16, false},
      {"bf16_memo", nn::infer::Precision::kBf16, true},
      {"int8_nomemo", nn::infer::Precision::kInt8, false},
      {"int8_memo", nn::infer::Precision::kInt8, true},
  };

  // The hot-query beam workload: 8 test trips replayed to steady state, the
  // serving pattern the memo targets. Accuracy uses longer teacher-forced
  // test routes.
  std::vector<core::RouteQuery> queries;
  std::vector<const traj::TripRecord*> acc_trips;
  for (const auto* rec : world.split().test) {
    if (rec->trip.route.size() < 2) continue;
    if (queries.size() < 8) queries.push_back(eval::QueryFor(rec->trip));
    if (rec->trip.route.size() >= 6 && acc_trips.size() < 24) {
      acc_trips.push_back(rec);
    }
  }

  struct Row {
    std::string variant;
    double seconds = 0.0;
    double hit_rate = 0.0;        // steady-state memo hit rate (memo rows)
    double top1_agreement = 1.0;  // vs the double baseline
    double ce_delta = 0.0;        // mean |log-lik delta| per transition
  };
  std::vector<Row> rows;

  // Raw GEMV micro rows at representative step shapes (4 beam rows through
  // [3H, H]): ns/op per packed precision, one warm kernel in isolation.
  {
    const int64_t m = 4, k = 64, n = 3 * 64;
    util::Rng rng(11);
    const nn::Tensor w = nn::Tensor::Uniform({n, k}, -1, 1, &rng);
    const nn::Tensor b = nn::Tensor::Uniform({n}, -1, 1, &rng);
    std::vector<double> x(static_cast<size_t>(m * k));
    for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
    std::vector<float> out(static_cast<size_t>(m * n));
    const int gemv_reps = eval::FastMode() ? 2000 : 20000;
    for (const Variant& v : variants) {
      if (v.memo) continue;
      const auto packed =
          nn::infer::PackedMatrix::Pack(w.data(), n, k, k, v.precision);
      util::Stopwatch watch;
      for (int i = 0; i < gemv_reps; ++i) {
        nn::infer::GemvForward(x.data(), k, packed, b.data(), nullptr,
                               out.data(), m, n);
        benchmark::DoNotOptimize(out.data());
      }
      Row row;
      row.variant = std::string("gemv_") +
                    nn::infer::PrecisionName(v.precision);
      row.seconds = watch.ElapsedSeconds() / gemv_reps;
      rows.push_back(row);
    }
  }

  const int prev = nn::GetBackendThreads();
  nn::SetBackendThreads(1);
  std::vector<std::vector<int>> base_slots;  // double-precision teacher slots
  std::vector<double> base_scores;
  int64_t base_transitions = 0;
  for (auto _ : state) {
    for (const Variant& v : variants) {
      core::DeepSTConfig cfg = base_cfg;
      cfg.infer_precision = v.precision;
      cfg.memo_cache_capacity = v.memo ? 16384 : 0;
      core::DeepSTModel model(world.net(), cfg, nullptr);
      DEEPST_CHECK(nn::ApplyNamedTensors(&model, trained).ok());
      util::Rng crng(5);
      std::vector<core::PredictionContext> ctxs;
      for (const core::RouteQuery& q : queries) {
        ctxs.push_back(model.MakeContext(q, &crng));
      }
      Row row;
      row.variant = v.name;
      row.seconds = time_best([&] {
        for (size_t q = 0; q < queries.size(); ++q) {
          util::Rng r(7);
          benchmark::DoNotOptimize(
              model.PredictRouteBeam(ctxs[q], queries[q].origin, &r));
        }
      });
      if (v.memo) {
        // Steady-state hit rate: one more replay round on the warm cache.
        const auto before = model.transition_memo_stats();
        for (size_t q = 0; q < queries.size(); ++q) {
          util::Rng r(7);
          benchmark::DoNotOptimize(
              model.PredictRouteBeam(ctxs[q], queries[q].origin, &r));
        }
        const auto after = model.transition_memo_stats();
        const int64_t lookups = after.lookups - before.lookups;
        row.hit_rate = lookups > 0
                           ? static_cast<double>(after.hits - before.hits) /
                                 static_cast<double>(lookups)
                           : 0.0;
      }
      // Accuracy parity vs the double baseline (kernel-only: memoization is
      // bitwise, TopSlotsAlongRoute runs uncached).
      if (v.precision == nn::infer::Precision::kDouble && !v.memo) {
        base_slots.clear();
        base_scores.clear();
        base_transitions = 0;
        for (const auto* rec : acc_trips) {
          core::PredictionContext ctx =
              model.MakeContext(eval::QueryFor(rec->trip), &crng);
          base_slots.push_back(
              model.TopSlotsAlongRoute(ctx, rec->trip.route));
          base_scores.push_back(model.ScoreRoute(ctx, rec->trip.route));
          base_transitions +=
              static_cast<int64_t>(rec->trip.route.size()) - 1;
        }
      } else {
        int64_t agree = 0, total = 0;
        double score_delta = 0.0;
        for (size_t t = 0; t < acc_trips.size(); ++t) {
          const auto* rec = acc_trips[t];
          core::PredictionContext ctx =
              model.MakeContext(eval::QueryFor(rec->trip), &crng);
          const std::vector<int> slots =
              model.TopSlotsAlongRoute(ctx, rec->trip.route);
          for (size_t i = 0; i < slots.size(); ++i) {
            agree += slots[i] == base_slots[t][i] ? 1 : 0;
          }
          total += static_cast<int64_t>(slots.size());
          score_delta += std::abs(model.ScoreRoute(ctx, rec->trip.route) -
                                  base_scores[t]);
        }
        row.top1_agreement =
            total > 0 ? static_cast<double>(agree) /
                            static_cast<double>(total)
                      : 1.0;
        row.ce_delta = base_transitions > 0
                           ? score_delta /
                                 static_cast<double>(base_transitions)
                           : 0.0;
      }
      rows.push_back(row);
    }
  }
  nn::SetBackendThreads(prev);

  auto seconds_of = [&rows](const std::string& variant) {
    for (const Row& r : rows) {
      if (r.variant == variant) return r.seconds;
    }
    return 0.0;
  };
  std::ofstream json(OutDir() + "/BENCH_quant.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const bool gemv = r.variant.rfind("gemv_", 0) == 0;
    const double baseline =
        gemv ? seconds_of("gemv_double") : seconds_of("double_nomemo");
    json << "  {\"variant\": \"" << r.variant << "\", \"workload\": \""
         << (gemv ? "gemv_m4_k64_n192" : "predict_beam_x8")
         << "\", \"ns_per_op\": " << r.seconds * 1e9
         << ", \"speedup_vs_double\": "
         << (r.seconds > 0.0 ? baseline / r.seconds : 0.0)
         << ", \"steady_hit_rate\": " << r.hit_rate
         << ", \"top1_agreement\": " << r.top1_agreement
         << ", \"ce_delta_per_transition\": " << r.ce_delta << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  for (const Row& r : rows) {
    if (r.variant.rfind("gemv_", 0) == 0) continue;
    state.counters[r.variant + "_speedup"] =
        seconds_of("double_nomemo") / r.seconds;
  }
}
BENCHMARK(BM_QuantSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

// One-shot sweep of the register-blocked GEMM path (fast path round three):
//   - kernel micro rows: blocked (panel-packed) vs chunk GEMV at batched
//     beam shapes, per precision, with a bitwise-equality cross-check (the
//     blocking must only reorder work across output elements, never within
//     one, so blocked == chunk bit for bit at every precision);
//   - the memo-cold batched beam workload: 16 queries x beam 4 through
//     PredictRoutesBeamMulti on a serve-size model (H = 128), with
//     config.gemm_blocking off (the round-two baseline schedule) vs on,
//     plus a bitwise route comparison.
// Exported as bench_out/BENCH_gemm.json; tools/check_perf.sh gates the
// bitwise fields everywhere and the >= 1.5x batched-beam double speedup on
// AVX2 hardware.
void BM_GemmSweep(benchmark::State& state) {
  auto& world = MicroWorld();

  struct Row {
    std::string variant;
    std::string workload;
    double seconds = 0.0;
    double baseline_seconds = 0.0;  // unblocked counterpart
    bool bitwise_equal = true;
  };
  std::vector<Row> rows;

  // Kernel micro: a serve-size step shape ([3H, H] with H = 128) across
  // batch sizes spanning partial tiles, one warm band sweep, and the
  // reduced precisions at the batched beam shape.
  {
    const int64_t k = 128, n = 3 * 128;
    util::Rng rng(21);
    const nn::Tensor w = nn::Tensor::Uniform({n, k}, -1, 1, &rng);
    const nn::Tensor b = nn::Tensor::Uniform({n}, -1, 1, &rng);
    const int reps = eval::FastMode() ? 500 : 5000;
    struct Shape {
      nn::infer::Precision precision;
      int64_t m;
    };
    const Shape shapes[] = {
        {nn::infer::Precision::kDouble, 4},
        {nn::infer::Precision::kDouble, 16},
        {nn::infer::Precision::kDouble, 33},
        {nn::infer::Precision::kBf16, 16},
        {nn::infer::Precision::kInt8, 16},
    };
    for (const Shape& s : shapes) {
      std::vector<double> x(static_cast<size_t>(s.m * k));
      for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
      const auto chunk =
          nn::infer::PackedMatrix::Pack(w.data(), n, k, k, s.precision);
      auto blocked =
          nn::infer::PackedMatrix::Pack(w.data(), n, k, k, s.precision);
      blocked.BuildPanels();
      std::vector<float> out_chunk(static_cast<size_t>(s.m * n));
      std::vector<float> out_blocked(out_chunk.size());
      auto time_gemv = [&](const nn::infer::PackedMatrix& p, float* out) {
        nn::infer::GemvForward(x.data(), k, p, b.data(), nullptr, out, s.m,
                               n);  // warmup
        util::Stopwatch watch;
        for (int i = 0; i < reps; ++i) {
          nn::infer::GemvForward(x.data(), k, p, b.data(), nullptr, out,
                                 s.m, n);
          benchmark::DoNotOptimize(out);
        }
        return watch.ElapsedSeconds() / reps;
      };
      Row row;
      row.variant = std::string("gemm_") +
                    nn::infer::PrecisionName(s.precision) + "_m" +
                    std::to_string(s.m);
      row.workload = "gemv_k128_n384";
      row.baseline_seconds = time_gemv(chunk, out_chunk.data());
      row.seconds = time_gemv(blocked, out_blocked.data());
      row.bitwise_equal =
          std::memcmp(out_chunk.data(), out_blocked.data(),
                      out_chunk.size() * sizeof(float)) == 0;
      rows.push_back(row);
    }
  }

  // Memo-cold batched beam: the workload the blocking targets. Same seed ->
  // identical weights across variants, MAP beam -> no rng draws, so the
  // blocked run must reproduce the baseline routes bitwise.
  {
    const int reps = eval::FastMode() ? 3 : 8;
    core::DeepSTConfig cfg =
        baselines::DeepStCConfigOf(eval::DefaultModelConfig(world));
    cfg.gru_hidden = 256;  // the paper's full hidden size: GEMV dominates
    cfg.max_route_steps = 24;
    cfg.memo_cache_capacity = 0;  // memo-cold: every step hits the kernels
    std::vector<core::RouteQuery> queries;
    for (const auto* rec : world.split().test) {
      if (rec->trip.route.size() < 2) continue;
      queries.push_back(eval::QueryFor(rec->trip));
      if (queries.size() == 16) break;
    }
    const int prev = nn::GetBackendThreads();
    nn::SetBackendThreads(1);
    std::vector<traj::Route> baseline_routes;
    Row row;
    row.variant = "beam_multi_double";
    row.workload = "beam16x4_h256_memo_cold";
    for (const bool blocking : {false, true}) {
      cfg.gemm_blocking = blocking;
      core::DeepSTModel model(world.net(), cfg, nullptr);
      util::Rng crng(5);
      std::vector<core::PredictionContext> ctxs;
      for (const core::RouteQuery& q : queries) {
        ctxs.push_back(model.MakeContext(q, &crng));
      }
      std::vector<core::PredictItem> items(queries.size());
      auto run = [&] {
        for (size_t i = 0; i < items.size(); ++i) {
          items[i] = core::PredictItem{};
          items[i].ctx = &ctxs[i];
          items[i].origin = queries[i].origin;
        }
        model.PredictRoutesBeamMulti(&items);
      };
      run();  // warmup (scratch growth)
      double best = std::numeric_limits<double>::infinity();
      for (int round = 0; round < 3; ++round) {
        util::Stopwatch watch;
        for (int i = 0; i < reps; ++i) run();
        best = std::min(best, watch.ElapsedSeconds() / reps);
      }
      if (!blocking) {
        row.baseline_seconds = best;
        for (const auto& item : items) baseline_routes.push_back(item.route);
      } else {
        row.seconds = best;
        for (size_t i = 0; i < items.size(); ++i) {
          if (items[i].route != baseline_routes[i]) row.bitwise_equal = false;
        }
      }
    }
    nn::SetBackendThreads(prev);
    rows.push_back(row);
  }

  std::ofstream json(OutDir() + "/BENCH_gemm.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup =
        r.seconds > 0.0 ? r.baseline_seconds / r.seconds : 0.0;
    json << "  {\"variant\": \"" << r.variant << "\", \"workload\": \""
         << r.workload << "\", \"ns_per_op\": " << r.seconds * 1e9
         << ", \"baseline_ns_per_op\": " << r.baseline_seconds * 1e9
         << ", \"speedup_vs_unblocked\": " << speedup
         << ", \"bitwise_equal\": " << (r.bitwise_equal ? "true" : "false")
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    state.counters[r.variant + "_speedup"] = speedup;
  }
  json << "]\n";
  for (auto _ : state) {
  }
}
BENCHMARK(BM_GemmSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

// One-shot sweep of the training engine: the legacy single-graph tape
// ("serial", one batch = one autodiff graph) against data-parallel
// micro-sharding (docs/training-perf.md) on 1, 2 and 4 backend threads.
// Exported as bench_out/BENCH_training.json; tools/check_perf.sh gates the
// single-thread sharding overhead everywhere and the 4-thread epoch speedup
// on machines that actually have >= 4 cores. Sharded runs must train
// bitwise identical parameters for every thread count (the
// `bitwise_identical_params` field records the cross-thread comparison).
void BM_TrainingSweep(benchmark::State& state) {
  auto& world = MicroWorld();
  const core::DeepSTConfig mcfg =
      baselines::DeepStConfigOf(eval::DefaultModelConfig(world));
  const int epochs = eval::FastMode() ? 2 : 3;

  struct Run {
    double epoch_seconds = std::numeric_limits<double>::infinity();
    double transitions_per_sec = 0.0;
    std::vector<std::vector<float>> params;
  };
  // Fresh model per run (same config seed, so every run starts from the
  // same initialization). Epoch time is the best epoch's batch-loop
  // wall-clock, reconstructed from the trainer's throughput stats so
  // validation-free Fit overhead stays out of the measurement.
  auto train = [&](int shard_size, int threads) {
    core::DeepSTModel model(world.net(), mcfg, world.traffic_cache());
    core::TrainerConfig tcfg;
    tcfg.max_epochs = epochs;
    tcfg.patience = 100;
    tcfg.verbose = false;
    tcfg.num_threads = threads;
    tcfg.micro_shard_size = shard_size;
    core::Trainer trainer(&model, tcfg);
    auto result = trainer.Fit(world.split().train, {});
    Run run;
    for (const auto& e : result.epochs) {
      if (e.transitions_per_sec <= 0.0) continue;
      const double sec =
          static_cast<double>(e.transitions) / e.transitions_per_sec;
      if (sec < run.epoch_seconds) {
        run.epoch_seconds = sec;
        run.transitions_per_sec = e.transitions_per_sec;
      }
    }
    for (const auto& p : model.Parameters()) {
      const nn::Tensor& v = p.var->value();
      run.params.emplace_back(v.data(), v.data() + v.numel());
    }
    return run;
  };

  struct Row {
    const char* mode;
    int threads;
    Run run;
  };
  std::vector<Row> rows;
  for (auto _ : state) {
    rows.clear();
    rows.push_back({"serial", 1, train(/*shard_size=*/0, /*threads=*/1)});
    for (int threads : {1, 2, 4}) {
      rows.push_back({"sharded", threads, train(/*shard_size=*/16, threads)});
    }
  }

  // The determinism contract, measured on the artifact itself: every
  // sharded run trains the same parameters bit for bit.
  bool bitwise = true;
  const Row* sharded1 = nullptr;
  for (const Row& r : rows) {
    if (std::string(r.mode) != "sharded") continue;
    if (sharded1 == nullptr) {
      sharded1 = &r;
      continue;
    }
    for (size_t p = 0; p < sharded1->run.params.size() && bitwise; ++p) {
      bitwise = r.run.params[p].size() == sharded1->run.params[p].size() &&
                std::memcmp(r.run.params[p].data(),
                            sharded1->run.params[p].data(),
                            r.run.params[p].size() * sizeof(float)) == 0;
    }
  }

  const double serial_seconds = rows.front().run.epoch_seconds;
  std::ofstream json(OutDir() + "/BENCH_training.json");
  json << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "  {\"mode\": \"" << r.mode << "\", \"threads\": " << r.threads
         << ", \"epoch_seconds\": " << r.run.epoch_seconds
         << ", \"transitions_per_sec\": " << r.run.transitions_per_sec
         << ", \"speedup_vs_serial\": "
         << serial_seconds / r.run.epoch_seconds
         << ", \"bitwise_identical_params\": " << (bitwise ? "true" : "false")
         << ", \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "]\n";
  for (const Row& r : rows) {
    state.counters[std::string(r.mode) + "_t" + std::to_string(r.threads) +
                   "_speedup"] = serial_seconds / r.run.epoch_seconds;
  }
  state.counters["bitwise_identical_params"] = bitwise ? 1.0 : 0.0;
}
BENCHMARK(BM_TrainingSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
