// Micro-benchmarks of the hot paths, including an empirical check of the
// paper's Section IV-F complexity claim: route prediction and likelihood
// scoring are O(|r|) in the route length.
#include <benchmark/benchmark.h>

#include <cmath>

#include "baselines/neural_router.h"
#include "eval/world.h"
#include "mapmatch/hmm_matcher.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "roadnet/shortest_path.h"

namespace deepst {
namespace bench {
namespace {

eval::World& MicroWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.2);
    cfg.name = "micro-world";
    cfg.generator.num_days = 4;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

core::DeepSTModel& MicroModel() {
  static core::DeepSTModel* model = [] {
    core::DeepSTConfig cfg =
        baselines::DeepStCConfigOf(eval::DefaultModelConfig(MicroWorld()));
    return new core::DeepSTModel(MicroWorld().net(), cfg, nullptr);
  }();
  return *model;
}

// -- nn kernels ------------------------------------------------------------------

void BM_GruStep(benchmark::State& state) {
  const int64_t batch = state.range(0);
  util::Rng rng(1);
  nn::StackedGru gru(32, 64, 2, &rng);
  nn::VarPtr x = nn::Constant(nn::Tensor::Uniform({batch, 32}, -1, 1, &rng));
  for (auto _ : state) {
    auto s = gru.InitialState(batch);
    benchmark::DoNotOptimize(gru.Step(x, &s));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GruStep)->Arg(1)->Arg(16)->Arg(64);

void BM_LinearForwardBackward(benchmark::State& state) {
  util::Rng rng(2);
  nn::LinearLayer fc(256, 256, &rng);
  nn::VarPtr x =
      nn::MakeVar(nn::Tensor::Uniform({64, 256}, -1, 1, &rng), true);
  for (auto _ : state) {
    nn::VarPtr loss = nn::ops::Sum(fc.Forward(x));
    nn::Backward(loss);
    x->ZeroGrad();
    benchmark::DoNotOptimize(loss->value()[0]);
  }
}
BENCHMARK(BM_LinearForwardBackward);

// -- roadnet ---------------------------------------------------------------------

void BM_Dijkstra(benchmark::State& state) {
  auto& world = MicroWorld();
  const auto cost = roadnet::FreeFlowTimeCost(world.net());
  util::Rng rng(3);
  for (auto _ : state) {
    const auto src = static_cast<roadnet::SegmentId>(rng.UniformInt(
        static_cast<uint64_t>(world.net().num_segments())));
    benchmark::DoNotOptimize(
        roadnet::ShortestPathTree(world.net(), src, cost));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_SpatialIndexNearest(benchmark::State& state) {
  auto& world = MicroWorld();
  util::Rng rng(4);
  const auto& box = world.net().bounds();
  for (auto _ : state) {
    geo::Point p{rng.Uniform(box.min.x, box.max.x),
                 rng.Uniform(box.min.y, box.max.y)};
    benchmark::DoNotOptimize(world.index().Nearest(p));
  }
}
BENCHMARK(BM_SpatialIndexNearest);

// -- mapmatch --------------------------------------------------------------------

void BM_HmmMatch(benchmark::State& state) {
  auto& world = MicroWorld();
  mapmatch::HmmMapMatcher matcher(world.net(), world.index());
  const auto& gps = world.records().front().gps;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Match(gps));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(gps.size()));
}
BENCHMARK(BM_HmmMatch);

// -- DeepST prediction/scoring: O(|r|) (paper IV-F) --------------------------------

// Scores a synthetic straight-line route of the requested length; time per
// iteration should grow linearly with the length argument.
void BM_ScoreRouteByLength(benchmark::State& state) {
  auto& world = MicroWorld();
  auto& model = MicroModel();
  const int target_len = static_cast<int>(state.range(0));
  // A route of the requested length: the prefix of the longest shortest
  // path rooted at segment 0 (paths in an 11x11 grid reach ~20+ segments).
  const auto cost = roadnet::LengthCost(world.net());
  const auto dist = roadnet::ShortestPathTree(world.net(), 0, cost);
  roadnet::SegmentId far = 0;
  for (roadnet::SegmentId s = 0; s < world.net().num_segments(); ++s) {
    if (std::isfinite(dist[static_cast<size_t>(s)]) &&
        dist[static_cast<size_t>(s)] > dist[static_cast<size_t>(far)]) {
      far = s;
    }
  }
  traj::Route route =
      roadnet::ShortestPath(world.net(), 0, far, cost).value().path;
  if (static_cast<int>(route.size()) > target_len) {
    route.resize(static_cast<size_t>(target_len));
  }
  util::Rng rng(5);
  core::RouteQuery query;
  query.origin = route.front();
  query.destination = world.net().SegmentEnd(route.back());
  core::PredictionContext ctx = model.MakeContext(query, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScoreRoute(ctx, route));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(route.size()));
  state.counters["route_len"] =
      static_cast<double>(route.size());
}
BENCHMARK(BM_ScoreRouteByLength)->Arg(5)->Arg(10)->Arg(19);

void BM_PredictRoute(benchmark::State& state) {
  auto& world = MicroWorld();
  auto& model = MicroModel();
  util::Rng rng(6);
  const auto* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictRoute(query, &rng));
  }
}
BENCHMARK(BM_PredictRoute);

}  // namespace
}  // namespace bench
}  // namespace deepst

BENCHMARK_MAIN();
