// Reproduces Figure 7: route prediction accuracy of every method versus
// travel distance buckets, per city. Reuses the checkpoints trained by
// bench_table4_overall when available.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table.h"

namespace deepst {
namespace bench {
namespace {

void RunCity(eval::World* world, const std::string& tag) {
  MethodSuite suite = BuildMethodSuite(world, tag);
  auto results = EvaluateSuite(*world, &suite, MaxEvalTrips());
  std::vector<std::string> header = {"Method"};
  for (const char* label : eval::kDistanceBucketLabels) {
    header.push_back(label);
  }
  util::Table table(std::move(header));
  // Bucket occupancy row first.
  std::vector<std::string> counts_row = {"#trips"};
  for (int c : results.front().eval.bucket_counts) {
    counts_row.push_back(std::to_string(c));
  }
  table.AddRow(std::move(counts_row));
  for (const auto& r : results) {
    std::vector<std::string> row = {r.name};
    for (double acc : r.eval.bucket_accuracy) {
      row.push_back(acc < 0 ? "-" : util::FormatDouble(acc, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print("Figure 7 (" + world->config().name +
              "): accuracy vs travel distance (km)");
  (void)table.WriteCsv(OutDir() + "/fig7_" + world->config().name + ".csv");
}

void BM_Fig7Distance(benchmark::State& state) {
  for (auto _ : state) {
    RunCity(&ChengduWorld(), "chengdu");
    RunCity(&HarbinWorld(), "harbin");
  }
}
BENCHMARK(BM_Fig7Distance)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
