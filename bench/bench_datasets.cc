// Reproduces the paper's dataset description artifacts:
//   Table III  -- trip statistics (min/max/mean distance and #segments),
//   Figure 5   -- spatial distribution of GPS points (coarse grid counts),
//   Figure 6   -- distributions of travel distance and #segments.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "traj/dataset.h"
#include "util/string_util.h"
#include "util/table.h"

namespace deepst {
namespace bench {
namespace {

void PrintCityArtifacts(const eval::World& world) {
  const auto& net = world.net();
  const auto& records = world.records();

  // -- Table III ---------------------------------------------------------------
  traj::TripStatistics stats = traj::ComputeStatistics(net, records);
  util::Table table({"Measure", "min", "max", "mean"});
  table.AddRow({"Distance (km)", util::FormatDouble(stats.min_distance_km, 1),
                util::FormatDouble(stats.max_distance_km, 1),
                util::FormatDouble(stats.mean_distance_km, 1)});
  table.AddRow({"#road segments", std::to_string(stats.min_segments),
                std::to_string(stats.max_segments),
                util::FormatDouble(stats.mean_segments, 1)});
  table.Print("Table III (" + world.config().name + ", " +
              std::to_string(net.num_segments()) + " segments, " +
              std::to_string(stats.num_trips) + " trips)");

  // -- Figure 6 ----------------------------------------------------------------
  const auto dist = traj::TravelDistancesKm(net, records);
  const auto segs = traj::SegmentCounts(records);
  const double max_km = stats.max_distance_km + 0.1;
  util::Table fig6({"bucket", "#trips(distance)", "#trips(#segments)"});
  const int bins = 10;
  auto dist_hist = traj::Histogram(dist, 0.0, max_km, bins);
  auto seg_hist = traj::Histogram(
      segs, 0.0, static_cast<double>(stats.max_segments + 1), bins);
  for (int b = 0; b < bins; ++b) {
    fig6.AddRow({util::StrFormat("%d/%d", b + 1, bins),
                 std::to_string(dist_hist[static_cast<size_t>(b)]),
                 std::to_string(seg_hist[static_cast<size_t>(b)])});
  }
  fig6.Print("Figure 6 (" + world.config().name +
             "): travel distance / #segments histograms");
  (void)fig6.WriteCsv(OutDir() + "/fig6_" + world.config().name + ".csv");

  // -- Figure 5 ----------------------------------------------------------------
  const int rows = 8, cols = 8;
  auto occupancy = traj::SpatialOccupancy(net, records, rows, cols);
  int max_count = 1;
  for (int c : occupancy) max_count = std::max(max_count, c);
  std::printf("\n== Figure 5 (%s): GPS point density (darker = denser) ==\n",
              world.config().name.c_str());
  const char* shades = " .:-=+*#%@";
  for (int r = rows - 1; r >= 0; --r) {
    for (int c = 0; c < cols; ++c) {
      const int count = occupancy[static_cast<size_t>(r * cols + c)];
      const int shade = static_cast<int>(
          9.0 * count / static_cast<double>(max_count));
      std::printf("%c%c", shades[shade], shades[shade]);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void BM_DatasetArtifacts(benchmark::State& state) {
  for (auto _ : state) {
    PrintCityArtifacts(ChengduWorld());
    PrintCityArtifacts(HarbinWorld());
  }
}
BENCHMARK(BM_DatasetArtifacts)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
