// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's own tables): slot masking at training, the literal
// length-scaled destination loss of Eq. 7, beam width at prediction, the
// sampled Bernoulli stop rule, and the deterministic traffic latent.
#include <benchmark/benchmark.h>

#include "baselines/markov2.h"
#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace deepst {
namespace bench {
namespace {

eval::EvalResult EvalModel(eval::World* world, core::DeepSTModel* model) {
  util::Rng rng(555);
  return eval::EvaluatePrediction(
      *world,
      [&](const core::RouteQuery& q) { return model->PredictRoute(q, &rng); },
      MaxEvalTrips());
}

void BM_Ablations(benchmark::State& state) {
  for (auto _ : state) {
    eval::World& world = ChengduWorld();
    util::Table table({"Variant", "recall@n", "accuracy"});

    const core::DeepSTConfig base =
        baselines::DeepStConfigOf(BaseModelConfig(world));

    // Baseline DeepST (shares the table4 checkpoint).
    auto deepst = TrainOrLoad(&world, "chengdu-deepst", base);
    auto base_eval = EvalModel(&world, deepst.get());
    table.AddRow("DeepST (default)",
                 {base_eval.recall_at_n, base_eval.accuracy}, 3);

    {  // Train-time slot masking (paper trains unmasked).
      core::DeepSTConfig cfg = base;
      cfg.mask_invalid_slots = true;
      auto m = TrainOrLoad(&world, "chengdu-deepst-masked", cfg);
      auto e = EvalModel(&world, m.get());
      table.AddRow("+ mask invalid slots", {e.recall_at_n, e.accuracy}, 3);
    }
    {  // Unscaled destination loss (Eq. 7 literally scales it by n-1).
      core::DeepSTConfig cfg = base;
      cfg.dest_loss_length_scaled = false;
      auto m = TrainOrLoad(&world, "chengdu-deepst-unscaled", cfg);
      auto e = EvalModel(&world, m.get());
      table.AddRow("- length-scaled dest loss",
                   {e.recall_at_n, e.accuracy}, 3);
    }
    {  // Deterministic traffic latent during training.
      core::DeepSTConfig cfg = base;
      cfg.deterministic_traffic_latent = true;
      auto m = TrainOrLoad(&world, "chengdu-deepst-dettraffic", cfg);
      auto e = EvalModel(&world, m.get());
      table.AddRow("deterministic traffic latent",
                   {e.recall_at_n, e.accuracy}, 3);
    }
    {  // Greedy decoding (beam width 1) on the default checkpoint.
      core::DeepSTConfig cfg = base;
      cfg.beam_width = 1;
      auto m = TrainOrLoad(&world, "chengdu-deepst", cfg);
      auto e = EvalModel(&world, m.get());
      table.AddRow("greedy decoding (beam=1)",
                   {e.recall_at_n, e.accuracy}, 3);
    }
    {  // The paper's sampled Bernoulli stop f_s = 1/(1+d_km).
      core::DeepSTConfig cfg = base;
      cfg.sample_stop = true;
      cfg.beam_width = 1;  // sampled stop pairs with sampled generation
      auto m = TrainOrLoad(&world, "chengdu-deepst", cfg);
      auto e = EvalModel(&world, m.get());
      table.AddRow("sampled Bernoulli stop",
                   {e.recall_at_n, e.accuracy}, 3);
    }
    {  // Scheduled sampling (paper future work on accumulated errors).
      core::DeepSTConfig cfg = base;
      cfg.scheduled_sampling_prob = 0.25f;
      auto m = TrainOrLoad(&world, "chengdu-deepst-schedsamp", cfg);
      auto e = EvalModel(&world, m.get());
      table.AddRow("scheduled sampling p=0.25",
                   {e.recall_at_n, e.accuracy}, 3);
    }
    {  // Second-order Markov (InferTra-style higher-order chain).
      baselines::SecondOrderMarkovRouter mm2(world.net(), base);
      mm2.Train(world.split().train);
      util::Rng rng(555);
      auto e = eval::EvaluatePrediction(
          world,
          [&](const core::RouteQuery& q) {
            return mm2.PredictRoute(q, &rng);
          },
          MaxEvalTrips());
      table.AddRow("2nd-order Markov (MM2)",
                   {e.recall_at_n, e.accuracy}, 3);
    }

    table.Print("Ablations (chengdu-mini)");
    (void)table.WriteCsv(OutDir() + "/ablations.csv");
  }
}
BENCHMARK(BM_Ablations)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
