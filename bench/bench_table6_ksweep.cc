// Reproduces Table VI: sensitivity of DeepST to the number of destination
// proxies K on the Harbin-like dataset. The paper's shape: performance
// improves up to an intermediate K, then degrades when proxies get too many
// trips' statistical strength spread too thin.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace deepst {
namespace bench {
namespace {

void BM_Table6KSweep(benchmark::State& state) {
  for (auto _ : state) {
    eval::World& world = HarbinWorld();
    // Scaled analogue of the paper's {500,1000,...,3000} sweep; our
    // harbin-mini has ~800 segments vs the paper's 12497.
    // The sweep must extend below the effective number of destination
    // regions (harbin-mini has 8 hubs + uniform background) to expose the
    // paper's too-few-proxies regime, and well above it for the
    // too-many-proxies regime.
    std::vector<int> ks =
        eval::FastMode()
            ? std::vector<int>{4, 64}
            : std::vector<int>{2, 4, 8, 32, 64, 128, 256};
    util::Table table({"K", "recall@n", "accuracy"});
    util::Rng rng(31337);
    for (int k : ks) {
      core::DeepSTConfig cfg =
          baselines::DeepStConfigOf(BaseModelConfig(world));
      cfg.num_proxies = k;
      auto model =
          TrainOrLoad(&world, "harbin-deepst-k" + std::to_string(k), cfg);
      auto result = eval::EvaluatePrediction(
          world,
          [&](const core::RouteQuery& q) {
            return model->PredictRoute(q, &rng);
          },
          MaxEvalTrips());
      table.AddRow(std::to_string(k),
                   {result.recall_at_n, result.accuracy}, 3);
    }
    table.Print("Table VI: impact of K destination proxies (" +
                world.config().name + ")");
    (void)table.WriteCsv(OutDir() + "/table6.csv");
  }
}
BENCHMARK(BM_Table6KSweep)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
