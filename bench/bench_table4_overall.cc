// Reproduces Table IV: overall recall@n / accuracy of DeepST, DeepST-C,
// CSSRNN, RNN, MMI and WSP on both cities, plus the Section V-B
// "effectiveness of K-destination proxies" comparison (DeepST-C vs CSSRNN).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace deepst {
namespace bench {
namespace {

void RunCity(eval::World* world, const std::string& tag,
             util::Table* table) {
  MethodSuite suite = BuildMethodSuite(world, tag);
  auto results = EvaluateSuite(*world, &suite, MaxEvalTrips());
  for (const auto& r : results) {
    table->AddRow({world->config().name, r.name,
                   util::FormatDouble(r.eval.recall_at_n, 3),
                   util::FormatDouble(r.eval.accuracy, 3),
                   std::to_string(r.eval.num_trips)});
  }
}

void BM_Table4Overall(benchmark::State& state) {
  for (auto _ : state) {
    util::Table table({"City", "Method", "recall@n", "accuracy", "#test"});
    RunCity(&ChengduWorld(), "chengdu", &table);
    RunCity(&HarbinWorld(), "harbin", &table);
    table.Print("Table IV: overall performance");
    (void)table.WriteCsv(OutDir() + "/table4.csv");
  }
}
BENCHMARK(BM_Table4Overall)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
