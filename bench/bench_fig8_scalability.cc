// Reproduces Figure 8: DeepST training time versus training set size. The
// paper's observation is linear scaling; we train a fixed number of epochs
// on growing subsets and report seconds/epoch.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/trainer.h"
#include "util/string_util.h"
#include "util/table.h"

namespace deepst {
namespace bench {
namespace {

void BM_Fig8Scalability(benchmark::State& state) {
  for (auto _ : state) {
    eval::World& world = HarbinWorld();
    const auto& train = world.split().train;
    const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0};
    util::Table table(
        {"#train trips", "seconds/epoch", "total seconds", "ratio"});
    double first_rate = 0.0;
    for (double frac : fractions) {
      const size_t n = static_cast<size_t>(frac * train.size());
      std::vector<const traj::TripRecord*> subset(train.begin(),
                                                  train.begin() + n);
      core::DeepSTConfig cfg =
          baselines::DeepStConfigOf(BaseModelConfig(world));
      core::DeepSTModel model(world.net(), cfg, world.traffic_cache());
      core::TrainerConfig tcfg = BenchTrainerConfig();
      tcfg.max_epochs = eval::FastMode() ? 1 : 3;
      tcfg.patience = tcfg.max_epochs + 1;  // no early stop: fixed epochs
      core::Trainer trainer(&model, tcfg);
      core::TrainResult result = trainer.Fit(subset, {});
      double per_epoch = 0.0;
      for (const auto& e : result.epochs) per_epoch += e.seconds;
      per_epoch /= static_cast<double>(result.epochs.size());
      if (first_rate == 0.0) first_rate = per_epoch / frac;
      table.AddRow({std::to_string(n), util::FormatDouble(per_epoch, 2),
                    util::FormatDouble(result.total_seconds, 2),
                    // ratio ~ 1.0 everywhere indicates linear scaling.
                    util::FormatDouble(per_epoch / (first_rate * frac), 2)});
    }
    table.Print("Figure 8: training time vs training data size (" +
                world.config().name + ")");
    (void)table.WriteCsv(OutDir() + "/fig8.csv");
  }
}
BENCHMARK(BM_Fig8Scalability)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
