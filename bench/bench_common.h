#ifndef DEEPST_BENCH_BENCH_COMMON_H_
#define DEEPST_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/mmi.h"
#include "baselines/neural_router.h"
#include "baselines/wsp.h"
#include "eval/world.h"

namespace deepst {
namespace bench {

// Shared experiment plumbing for the paper-reproduction benches. Worlds are
// built once per process; trained models are checkpointed under
// DEEPST_CACHE_DIR (default "deepst_cache/") so the figure benches can reuse
// the table benches' training runs across binaries.

// Process-wide world singletons (scaled by DEEPST_FAST).
eval::World& ChengduWorld();
eval::World& HarbinWorld();

// Shared base model / trainer configuration for a world (K scales with the
// network size as in the paper's per-city K).
core::DeepSTConfig BaseModelConfig(const eval::World& world);
core::TrainerConfig BenchTrainerConfig();

// Trains the model config on the world's training split, or loads it from
// the cache when a checkpoint with matching shapes exists. `tag` names the
// checkpoint (e.g. "chengdu-deepst").
std::unique_ptr<core::DeepSTModel> TrainOrLoad(
    eval::World* world, const std::string& tag,
    const core::DeepSTConfig& config, core::TrainResult* result = nullptr);

// The paper's four neural methods for a world, trained or loaded.
struct MethodSuite {
  std::unique_ptr<core::DeepSTModel> deepst;
  std::unique_ptr<core::DeepSTModel> deepst_c;
  std::unique_ptr<core::DeepSTModel> cssrnn;
  std::unique_ptr<core::DeepSTModel> rnn;
  std::unique_ptr<baselines::MarkovRouter> mmi;
  std::unique_ptr<baselines::WspRouter> wsp;
};
MethodSuite BuildMethodSuite(eval::World* world, const std::string& city_tag);

// Evaluates every method of a suite over the test split.
struct MethodResult {
  std::string name;
  eval::EvalResult eval;
};
std::vector<MethodResult> EvaluateSuite(const eval::World& world,
                                        MethodSuite* suite, int max_trips);

// Max test trips per evaluation (shrunk by DEEPST_FAST).
int MaxEvalTrips();

// Output directory for CSV exports ("bench_out/", created on demand).
std::string OutDir();

// Consumes a `--threads=N` / `--threads N` argument (removing it from argv,
// since google-benchmark rejects flags it does not know) and installs an
// N-thread nn backend. Without the flag the backend is left serial.
void InitBackendFromArgs(int* argc, char** argv);

}  // namespace bench
}  // namespace deepst

// BENCHMARK_MAIN() plus the --threads flag. The translation unit must
// include <benchmark/benchmark.h> before using it.
#define DEEPST_BENCHMARK_MAIN()                                             \
  int main(int argc, char** argv) {                                         \
    ::deepst::bench::InitBackendFromArgs(&argc, argv);                      \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    ::benchmark::RunSpecifiedBenchmarks();                                  \
    ::benchmark::Shutdown();                                                \
    return 0;                                                               \
  }                                                                         \
  static_assert(true, "require a trailing semicolon")

#endif  // DEEPST_BENCH_BENCH_COMMON_H_
