#ifndef DEEPST_BENCH_BENCH_COMMON_H_
#define DEEPST_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/mmi.h"
#include "baselines/neural_router.h"
#include "baselines/wsp.h"
#include "eval/world.h"

namespace deepst {
namespace bench {

// Shared experiment plumbing for the paper-reproduction benches. Worlds are
// built once per process; trained models are checkpointed under
// DEEPST_CACHE_DIR (default "deepst_cache/") so the figure benches can reuse
// the table benches' training runs across binaries.

// Process-wide world singletons (scaled by DEEPST_FAST).
eval::World& ChengduWorld();
eval::World& HarbinWorld();

// Shared base model / trainer configuration for a world (K scales with the
// network size as in the paper's per-city K).
core::DeepSTConfig BaseModelConfig(const eval::World& world);
core::TrainerConfig BenchTrainerConfig();

// Trains the model config on the world's training split, or loads it from
// the cache when a checkpoint with matching shapes exists. `tag` names the
// checkpoint (e.g. "chengdu-deepst").
std::unique_ptr<core::DeepSTModel> TrainOrLoad(
    eval::World* world, const std::string& tag,
    const core::DeepSTConfig& config, core::TrainResult* result = nullptr);

// The paper's four neural methods for a world, trained or loaded.
struct MethodSuite {
  std::unique_ptr<core::DeepSTModel> deepst;
  std::unique_ptr<core::DeepSTModel> deepst_c;
  std::unique_ptr<core::DeepSTModel> cssrnn;
  std::unique_ptr<core::DeepSTModel> rnn;
  std::unique_ptr<baselines::MarkovRouter> mmi;
  std::unique_ptr<baselines::WspRouter> wsp;
};
MethodSuite BuildMethodSuite(eval::World* world, const std::string& city_tag);

// Evaluates every method of a suite over the test split.
struct MethodResult {
  std::string name;
  eval::EvalResult eval;
};
std::vector<MethodResult> EvaluateSuite(const eval::World& world,
                                        MethodSuite* suite, int max_trips);

// Max test trips per evaluation (shrunk by DEEPST_FAST).
int MaxEvalTrips();

// Output directory for CSV exports ("bench_out/", created on demand).
std::string OutDir();

}  // namespace bench
}  // namespace deepst

#endif  // DEEPST_BENCH_BENCH_COMMON_H_
