#include "bench/bench_common.h"

#include <sys/stat.h>

#include <cstdlib>
#include <string>

#include "nn/backend.h"
#include "nn/serialize.h"
#include "util/logging.h"

namespace deepst {
namespace bench {
namespace {

double WorldScale() { return eval::FastMode() ? 0.25 : 1.0; }

std::string CacheDir() {
  const char* dir = std::getenv("DEEPST_CACHE_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : "deepst_cache";
  ::mkdir(path.c_str(), 0755);
  return path;
}

}  // namespace

eval::World& ChengduWorld() {
  static eval::World* world =
      new eval::World(eval::ChengduMiniWorld(WorldScale()));
  return *world;
}

eval::World& HarbinWorld() {
  static eval::World* world =
      new eval::World(eval::HarbinMiniWorld(WorldScale()));
  return *world;
}

core::DeepSTConfig BaseModelConfig(const eval::World& world) {
  core::DeepSTConfig cfg = eval::DefaultModelConfig(world);
  // K scales with the network, as the paper sets K per city (500 for
  // Chengdu's 3185 segments, 1000 for Harbin's 12497): about one proxy per
  // 6 segments.
  cfg.num_proxies = std::max(16, world.net().num_segments() / 6);
  return cfg;
}

core::TrainerConfig BenchTrainerConfig() {
  core::TrainerConfig cfg = eval::DefaultTrainerConfig();
  cfg.verbose = false;
  return cfg;
}

std::unique_ptr<core::DeepSTModel> TrainOrLoad(
    eval::World* world, const std::string& tag,
    const core::DeepSTConfig& config, core::TrainResult* result) {
  const std::string path = CacheDir() + "/" + tag + ".bin";
  auto model = std::make_unique<core::DeepSTModel>(world->net(), config,
                                                   world->traffic_cache());
  util::Status loaded = nn::LoadParameters(model.get(), path);
  if (loaded.ok()) {
    DEEPST_LOG(Info) << "loaded cached model " << tag;
    if (result != nullptr) *result = core::TrainResult{};
    return model;
  }
  DEEPST_LOG(Info) << "training " << tag << " ("
                   << model->NumParams() << " params)";
  core::Trainer trainer(model.get(), BenchTrainerConfig());
  core::TrainResult r =
      trainer.Fit(world->split().train, world->split().validation);
  DEEPST_LOG(Info) << tag << " trained in " << r.total_seconds << "s ("
                   << r.epochs.size() << " epochs)";
  if (result != nullptr) *result = r;
  util::Status saved = nn::SaveParameters(*model, path);
  if (!saved.ok()) {
    DEEPST_LOG(Warning) << "cannot cache " << tag << ": "
                        << saved.ToString();
  }
  return model;
}

MethodSuite BuildMethodSuite(eval::World* world,
                             const std::string& city_tag) {
  MethodSuite suite;
  const core::DeepSTConfig base = BaseModelConfig(*world);
  suite.deepst = TrainOrLoad(world, city_tag + "-deepst",
                             baselines::DeepStConfigOf(base));
  suite.deepst_c = TrainOrLoad(world, city_tag + "-deepst_c",
                               baselines::DeepStCConfigOf(base));
  suite.cssrnn = TrainOrLoad(world, city_tag + "-cssrnn",
                             baselines::CssrnnConfigOf(base));
  suite.rnn =
      TrainOrLoad(world, city_tag + "-rnn", baselines::RnnConfigOf(base));
  suite.mmi = std::make_unique<baselines::MarkovRouter>(world->net(), base);
  suite.mmi->Train(world->split().train);
  suite.wsp = std::make_unique<baselines::WspRouter>(
      world->net(), world->index(), world->segment_stats());
  return suite;
}

std::vector<MethodResult> EvaluateSuite(const eval::World& world,
                                        MethodSuite* suite, int max_trips) {
  // Test trips fan out over the nn backend; every predictor below is
  // read-only during prediction, and each trip draws from its own rng
  // stream, so the scores match the sequential evaluation for every thread
  // count.
  const uint64_t kEvalSeed = 4242;
  auto eval_model = [&](core::DeepSTModel* model) {
    return eval::EvaluatePredictionParallel(
        world,
        [model](const core::RouteQuery& q, util::Rng* rng) {
          return model->PredictRoute(q, rng);
        },
        max_trips, kEvalSeed);
  };
  std::vector<MethodResult> results;
  results.push_back({"DeepST", eval_model(suite->deepst.get())});
  results.push_back({"DeepST-C", eval_model(suite->deepst_c.get())});
  results.push_back({"CSSRNN", eval_model(suite->cssrnn.get())});
  results.push_back({"RNN", eval_model(suite->rnn.get())});
  results.push_back(
      {"MMI", eval::EvaluatePredictionParallel(
                  world,
                  [&](const core::RouteQuery& q, util::Rng* rng) {
                    return suite->mmi->PredictRoute(q, rng);
                  },
                  max_trips, kEvalSeed)});
  results.push_back(
      {"WSP", eval::EvaluatePredictionParallel(
                  world,
                  [&](const core::RouteQuery& q, util::Rng* rng) {
                    return suite->wsp->PredictRoute(q, rng);
                  },
                  max_trips, kEvalSeed)});
  return results;
}

int MaxEvalTrips() { return eval::FastMode() ? 60 : 1000; }

void InitBackendFromArgs(int* argc, char** argv) {
  int threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
      continue;
    }
    if (arg == "--threads" && i + 1 < *argc) {
      threads = std::atoi(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (threads > 0) {
    nn::SetBackendThreads(threads);
    DEEPST_LOG(Info) << "nn backend: " << nn::GetBackend()->name() << " ("
                     << nn::GetBackendThreads() << " threads)";
  }
}

std::string OutDir() {
  std::string path = "bench_out";
  ::mkdir(path.c_str(), 0755);
  return path;
}

}  // namespace bench
}  // namespace deepst
