// Reproduces Table V: route recovery accuracy of STRS (Markov spatial
// module) versus STRS+ (DeepST spatial module) as the trajectory sampling
// interval grows from 1 to 9 minutes, with the relative improvement row
// delta(%). Reuses the cached DeepST checkpoints.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench/bench_common.h"
#include "recovery/strs.h"
#include "util/string_util.h"
#include "util/table.h"

namespace deepst {
namespace bench {
namespace {

struct RecoveryRow {
  std::vector<double> strs;
  std::vector<double> strs_plus;
};

RecoveryRow RunCity(eval::World* world, const std::string& tag,
                    const std::vector<int>& rates_min, int max_trajs) {
  const core::DeepSTConfig base = BaseModelConfig(*world);
  auto deepst = TrainOrLoad(world, tag + "-deepst",
                            baselines::DeepStConfigOf(base));
  auto mmi = std::make_unique<baselines::MarkovRouter>(world->net(), base);
  mmi->Train(world->split().train);

  recovery::MarkovSpatialScorer markov_scorer(mmi.get());
  recovery::DeepStSpatialScorer deepst_scorer(deepst.get());
  recovery::StrsConfig strs_cfg;
  if (const char* w = std::getenv("DEEPST_SPATIAL_WEIGHT")) {
    strs_cfg.spatial_weight = std::atof(w);
  }
  recovery::StrsRecovery strs(world->net(), world->index(),
                              world->segment_stats(), &markov_scorer,
                              strs_cfg);
  recovery::StrsRecovery strs_plus(world->net(), world->index(),
                                   world->segment_stats(), &deepst_scorer,
                                   strs_cfg);

  RecoveryRow row;
  util::Rng rng(777);
  for (int rate : rates_min) {
    eval::MetricAccumulator acc_strs, acc_plus;
    int used = 0;
    for (const auto* rec : world->split().test) {
      if (used >= max_trajs) break;
      if (rec->gps.size() < 3) continue;
      auto sparse = traj::DownsampleByInterval(rec->gps, rate * 60.0);
      if (sparse.size() < 2) continue;
      ++used;
      auto r1 = strs.RecoverTrajectory(sparse, rec->trip.destination,
                                       rec->trip.start_time_s, &rng);
      auto r2 = strs_plus.RecoverTrajectory(sparse, rec->trip.destination,
                                            rec->trip.start_time_s, &rng);
      if (r1.ok()) acc_strs.Add(rec->trip.route, r1.value());
      if (r2.ok()) acc_plus.Add(rec->trip.route, r2.value());
    }
    row.strs.push_back(acc_strs.mean_accuracy());
    row.strs_plus.push_back(acc_plus.mean_accuracy());
  }
  return row;
}

void BM_Table5Recovery(benchmark::State& state) {
  const std::vector<int> rates = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const int max_trajs = eval::FastMode() ? 30 : 250;
  for (auto _ : state) {
    for (auto* world : {&ChengduWorld(), &HarbinWorld()}) {
      const std::string tag =
          world == &ChengduWorld() ? "chengdu" : "harbin";
      RecoveryRow row = RunCity(world, tag, rates, max_trajs);
      std::vector<std::string> header = {"Method"};
      for (int r : rates) header.push_back(std::to_string(r));
      util::Table table(std::move(header));
      table.AddRow("STRS", row.strs, 2);
      table.AddRow("STRS+", row.strs_plus, 2);
      std::vector<double> delta;
      for (size_t i = 0; i < rates.size(); ++i) {
        const double base = std::max(row.strs[i], 1e-9);
        delta.push_back(100.0 * (row.strs_plus[i] - row.strs[i]) / base);
      }
      table.AddRow("delta(%)", delta, 2);
      table.Print("Table V (" + world->config().name +
                  "): recovery accuracy vs sampling rate (mins)");
      (void)table.WriteCsv(OutDir() + "/table5_" + world->config().name +
                           ".csv");
    }
  }
}
BENCHMARK(BM_Table5Recovery)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace deepst

DEEPST_BENCHMARK_MAIN();
