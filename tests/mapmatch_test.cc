#include "mapmatch/hmm_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "roadnet/grid_city.h"
#include "traj/generator.h"

namespace deepst {
namespace mapmatch {
namespace {

struct World {
  std::unique_ptr<roadnet::RoadNetwork> net;
  std::unique_ptr<roadnet::SpatialIndex> index;
  std::unique_ptr<traffic::CongestionField> field;
  std::unique_ptr<traj::TripGenerator> gen;
};

World MakeWorld() {
  World w;
  roadnet::GridCityConfig city;
  city.rows = 8;
  city.cols = 8;
  city.seed = 99;
  w.net = roadnet::BuildGridCity(city);
  w.index = std::make_unique<roadnet::SpatialIndex>(*w.net);
  w.field = std::make_unique<traffic::CongestionField>(
      *w.net, traffic::CongestionConfig{});
  traj::GeneratorConfig cfg;
  cfg.seed = 4;
  w.gen = std::make_unique<traj::TripGenerator>(*w.net, *w.field, cfg);
  return w;
}

// Fraction of ground-truth segments recovered (set intersection).
double SegmentRecall(const traj::Route& truth, const traj::Route& matched) {
  std::set<roadnet::SegmentId> t(truth.begin(), truth.end());
  std::set<roadnet::SegmentId> m(matched.begin(), matched.end());
  int common = 0;
  for (auto s : t) {
    if (m.count(s)) ++common;
  }
  return static_cast<double>(common) / static_cast<double>(t.size());
}

TEST(HmmMatcherTest, EmptyTrajectoryRejected) {
  World w = MakeWorld();
  HmmMapMatcher matcher(*w.net, *w.index);
  auto result = matcher.Match({});
  EXPECT_FALSE(result.ok());
}

TEST(HmmMatcherTest, SinglePointMatchesNearestSegment) {
  World w = MakeWorld();
  HmmMapMatcher matcher(*w.net, *w.index);
  const geo::Point mid = w.net->SegmentMidpoint(10);
  auto result = matcher.Match({{mid, 0.0, 5.0}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().route.size(), 1u);
  // The matched segment must pass through `mid` (could be the twin).
  const auto s = result.value().route[0];
  EXPECT_LT(w.net->ProjectToSegment(mid, s).distance, 1.0);
}

TEST(HmmMatcherTest, RecoversDenseTrajectories) {
  World w = MakeWorld();
  HmmMapMatcher matcher(*w.net, *w.index);
  util::Rng rng(17);
  double recall_sum = 0.0;
  int matched_count = 0;
  for (int i = 0; i < 15; ++i) {
    auto rec = w.gen->GenerateTrip(0, &rng);
    if (rec.trip.route.empty()) continue;
    auto result = matcher.Match(rec.gps);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(w.net->ValidateRoute(result.value().route).ok());
    recall_sum += SegmentRecall(rec.trip.route, result.value().route);
    ++matched_count;
  }
  ASSERT_GT(matched_count, 8);
  // Dense (15 s) sampling with 12 m noise: the paper reports ~99% accuracy
  // at 30 s; we ask for a solid-but-looser bar on the mini world.
  EXPECT_GT(recall_sum / matched_count, 0.85);
}

TEST(HmmMatcherTest, MatchedRouteIsConnected) {
  World w = MakeWorld();
  HmmMapMatcher matcher(*w.net, *w.index);
  util::Rng rng(29);
  auto rec = w.gen->GenerateTrip(1, &rng);
  ASSERT_FALSE(rec.trip.route.empty());
  // Downsample to make stitching non-trivial.
  auto sparse = traj::DownsampleByInterval(rec.gps, 90.0);
  auto result = matcher.Match(sparse);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(w.net->ValidateRoute(result.value().route).ok());
  EXPECT_EQ(result.value().point_segments.size(), sparse.size());
}

TEST(HmmMatcherTest, NoisyPointsStillMatch) {
  World w = MakeWorld();
  MatcherConfig cfg;
  cfg.sigma_gps_m = 40.0;
  cfg.candidate_radius_m = 200.0;
  HmmMapMatcher matcher(*w.net, *w.index, cfg);
  util::Rng rng(31);
  auto rec = w.gen->GenerateTrip(0, &rng);
  ASSERT_FALSE(rec.trip.route.empty());
  // Add extra noise on top.
  traj::GpsTrajectory noisy = rec.gps;
  for (auto& p : noisy) {
    p.pos = p.pos + geo::Point{rng.Gaussian(0, 30.0), rng.Gaussian(0, 30.0)};
  }
  auto result = matcher.Match(noisy);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(SegmentRecall(rec.trip.route, result.value().route), 0.5);
}

}  // namespace
}  // namespace mapmatch
}  // namespace deepst
