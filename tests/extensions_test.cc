// Tests for the extension features beyond the paper's core: the
// second-order Markov baseline, route ranking (popular routes), and
// scheduled sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/markov2.h"
#include "baselines/mmi.h"
#include "baselines/neural_router.h"
#include "core/route_ranking.h"
#include "eval/world.h"

namespace deepst {
namespace {

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "extensions-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

TEST(SecondOrderMarkovTest, ProbsNormalizedPerContext) {
  auto& world = TestWorld();
  baselines::SecondOrderMarkovRouter mm2(world.net(), core::DeepSTConfig{});
  mm2.Train(world.split().train);
  // Pick an observed context from a training route.
  const auto& route = world.split().train.front()->trip.route;
  ASSERT_GE(route.size(), 3u);
  double total = 0.0;
  for (auto nxt : world.net().OutSegments(route[1])) {
    total += mm2.TransitionProb(route[0], route[1], nxt);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // First-step fallback (no prev) also normalized.
  total = 0.0;
  for (auto nxt : world.net().OutSegments(route[0])) {
    total += mm2.TransitionProb(roadnet::kInvalidSegment, route[0], nxt);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SecondOrderMarkovTest, SecondOrderSharpensObservedContext) {
  auto& world = TestWorld();
  baselines::SecondOrderMarkovRouter mm2(world.net(), core::DeepSTConfig{});
  baselines::MarkovRouter mm1(world.net(), core::DeepSTConfig{});
  mm2.Train(world.split().train);
  mm1.Train(world.split().train);
  // On average over training transitions, the 2nd-order model should assign
  // roughly at least as much probability to the realized next segment; a
  // small slack absorbs add-one smoothing noise on sparse contexts.
  double ll2 = 0.0, ll1 = 0.0;
  int n = 0;
  for (const auto* rec : world.split().train) {
    const auto& r = rec->trip.route;
    for (size_t i = 1; i + 1 < r.size(); ++i) {
      ll2 += std::log(mm2.TransitionProb(r[i - 1], r[i], r[i + 1]));
      ll1 += std::log(mm1.TransitionProb(r[i], r[i + 1]));
      ++n;
    }
  }
  ASSERT_GT(n, 50);
  EXPECT_GE(ll2 / n, ll1 / n - 0.05);
}

TEST(SecondOrderMarkovTest, PredictAndScore) {
  auto& world = TestWorld();
  baselines::SecondOrderMarkovRouter mm2(world.net(), core::DeepSTConfig{});
  mm2.Train(world.split().train);
  util::Rng rng(2);
  const auto* rec = world.split().test.front();
  auto route = mm2.PredictRoute(eval::QueryFor(rec->trip), &rng);
  EXPECT_TRUE(world.net().ValidateRoute(route).ok());
  const double s =
      mm2.ScoreRoute(eval::QueryFor(rec->trip), rec->trip.route, &rng);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_LT(s, 0.0);
}

TEST(RouteRankingTest, RanksCandidatesSortedAndNormalized) {
  auto& world = TestWorld();
  core::DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.num_proxies = 8;
  cfg.use_traffic = false;
  core::DeepSTModel model(world.net(), cfg, nullptr);
  util::Rng rng(3);
  const auto* rec = world.split().test.front();
  auto ranked = core::RankCandidateRoutes(&model, world.index(),
                                          eval::QueryFor(rec->trip), 5, &rng);
  ASSERT_GE(ranked.size(), 1u);
  double prob_sum = 0.0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_TRUE(world.net().ValidateRoute(ranked[i].route).ok());
    EXPECT_EQ(ranked[i].route.front(), rec->trip.origin_segment());
    if (i > 0) {
      EXPECT_GE(ranked[i - 1].log_likelihood, ranked[i].log_likelihood);
    }
    prob_sum += ranked[i].probability;
  }
  EXPECT_NEAR(prob_sum, 1.0, 1e-6);
}

TEST(RouteRankingTest, ExplicitCandidateSet) {
  auto& world = TestWorld();
  core::DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.num_proxies = 8;
  cfg.use_traffic = false;
  core::DeepSTModel model(world.net(), cfg, nullptr);
  util::Rng rng(4);
  const auto* rec = world.split().test.front();
  // The true route and a truncated variant.
  traj::Route half(rec->trip.route.begin(),
                   rec->trip.route.begin() +
                       static_cast<long>(rec->trip.route.size() / 2 + 1));
  auto ranked = core::RankRoutes(&model, eval::QueryFor(rec->trip),
                                 {rec->trip.route, half}, &rng);
  ASSERT_EQ(ranked.size(), 2u);
  // Shorter prefix accumulates fewer negative log terms -> ranks first in
  // raw likelihood. (This is exactly why recovery combines it with the
  // temporal term.)
  EXPECT_LE(ranked[0].route.size(), ranked[1].route.size());
}

TEST(ScheduledSamplingTest, LossFiniteAndTrains) {
  auto& world = TestWorld();
  core::DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.num_proxies = 8;
  cfg.use_traffic = false;
  cfg.scheduled_sampling_prob = 0.3f;
  core::DeepSTModel model(world.net(), cfg, nullptr);
  core::TrainerConfig tcfg;
  tcfg.max_epochs = 3;
  tcfg.verbose = false;
  core::Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, {});
  ASSERT_GE(result.epochs.size(), 2u);
  EXPECT_TRUE(std::isfinite(result.epochs.back().train_loss));
  EXPECT_LT(result.epochs.back().train_route_ce,
            result.epochs.front().train_route_ce + 0.1);
}

TEST(ScheduledSamplingTest, EvalModeUnaffected) {
  // With training=false the substitution must not kick in: losses for
  // prob=0 and prob=0.9 models with identical weights coincide.
  auto& world = TestWorld();
  core::DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.num_proxies = 8;
  cfg.use_traffic = false;
  cfg.seed = 77;
  core::DeepSTModel a(world.net(), cfg, nullptr);
  cfg.scheduled_sampling_prob = 0.9f;
  core::DeepSTModel b(world.net(), cfg, nullptr);  // same seed -> same init
  std::vector<const traj::Trip*> batch;
  for (const auto* rec : world.split().train) {
    if (batch.size() >= 8) break;
    batch.push_back(&rec->trip);
  }
  util::Rng r1(5), r2(5);
  core::LossStats sa, sb;
  a.Loss(batch, &r1, &sa, /*training=*/false);
  b.Loss(batch, &r2, &sb, /*training=*/false);
  EXPECT_DOUBLE_EQ(sa.route_ce, sb.route_ce);
}

}  // namespace
}  // namespace deepst
