#include "core/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/neural_router.h"
#include "eval/world.h"
#include "traj/segment_stats.h"

namespace deepst {
namespace core {
namespace {

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "trainer-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

DeepSTConfig TinyConfig() {
  DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.dest_dim = 8;
  cfg.num_proxies = 8;
  cfg.mlp_hidden = 16;
  cfg.use_traffic = false;
  return cfg;
}

TEST(TrainerTest, EpochStatsPopulated) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig tcfg;
  tcfg.max_epochs = 2;
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  ASSERT_EQ(result.epochs.size(), 2u);
  for (const auto& e : result.epochs) {
    EXPECT_GT(e.train_loss, -1e6);
    EXPECT_GT(e.train_route_ce, 0.0);
    EXPECT_GT(e.val_route_ce, 0.0);
    EXPECT_GT(e.seconds, 0.0);
  }
  EXPECT_GE(result.total_seconds,
            result.epochs[0].seconds + result.epochs[1].seconds - 0.5);
}

TEST(TrainerTest, EarlyStoppingTriggers) {
  // With patience 1 and a huge learning rate the validation CE cannot keep
  // improving for many epochs; training must stop before max_epochs.
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig tcfg;
  tcfg.max_epochs = 30;
  tcfg.patience = 1;
  tcfg.learning_rate = 0.5f;  // destabilizes on purpose
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  EXPECT_LT(result.epochs.size(), 30u);
}

TEST(TrainerTest, BestEpochTracksValidation) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig tcfg;
  tcfg.max_epochs = 4;
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  ASSERT_FALSE(result.epochs.empty());
  EXPECT_GE(result.best_epoch, 0);
  EXPECT_LT(result.best_epoch, static_cast<int>(result.epochs.size()));
  // best_epoch's validation CE is the minimum seen.
  double best = 1e18;
  for (const auto& e : result.epochs) best = std::min(best, e.val_route_ce);
  EXPECT_NEAR(result.epochs[static_cast<size_t>(result.best_epoch)]
                  .val_route_ce,
              best, 1e-9);
}

TEST(TrainerTest, FitRestoresBestEpochWeights) {
  // Regression: Fit used to return with the *last* epoch's weights even when
  // an earlier epoch won on validation (early stopping runs `patience`
  // epochs past the optimum by construction). The model must come back at
  // the best epoch: its post-Fit validation CE equals the recorded best
  // epoch's, not the final epoch's.
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig tcfg;
  tcfg.max_epochs = 12;
  tcfg.patience = 2;
  tcfg.learning_rate = 0.05f;  // overshoots, so late epochs get worse
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  ASSERT_FALSE(result.epochs.empty());
  const double post_fit_ce = trainer.EvaluateRouteCe(world.split().validation);
  const auto& best = result.epochs[static_cast<size_t>(result.best_epoch)];
  EXPECT_DOUBLE_EQ(post_fit_ce, best.val_route_ce);
}

TEST(TrainerTest, EvaluateRouteCeDeterministic) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig tcfg;
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  const double a = trainer.EvaluateRouteCe(world.split().validation);
  const double b = trainer.EvaluateRouteCe(world.split().validation);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(trainer.EvaluateRouteCe({}), 0.0);
}

TEST(TrainerTest, AllTripsTooShortYieldsEmptyFit) {
  // Single-segment routes carry no transition, so every batch candidate is
  // filtered out and Fit must return cleanly instead of dividing by zero.
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig tcfg;
  tcfg.max_epochs = 3;
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  traj::TripRecord rec;
  rec.trip.route = {0};
  rec.trip.destination = world.net().SegmentEnd(0);
  std::vector<const traj::TripRecord*> data = {&rec, &rec, &rec};
  auto result = trainer.Fit(data, {});
  EXPECT_TRUE(result.epochs.empty());
  EXPECT_EQ(result.best_epoch, 0);
  EXPECT_DOUBLE_EQ(trainer.EvaluateRouteCe(data), 0.0);
}

TEST(TrainerTest, BatchSizeLargerThanDataset) {
  // One epoch with a batch size exceeding the dataset: exactly one batch
  // containing every eligible trip, finite stats.
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig tcfg;
  tcfg.max_epochs = 1;
  tcfg.batch_size = 1000000;
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  ASSERT_EQ(result.epochs.size(), 1u);
  EXPECT_TRUE(std::isfinite(result.epochs[0].train_loss));
  EXPECT_GT(result.epochs[0].train_route_ce, 0.0);
  EXPECT_GT(result.epochs[0].val_route_ce, 0.0);
}

TEST(SegmentStatsTest, ObservedAndFallback) {
  auto& world = TestWorld();
  const auto& stats = world.segment_stats();
  EXPECT_GT(stats.num_observed_segments(), 10);
  int observed = 0;
  for (roadnet::SegmentId s = 0; s < world.net().num_segments(); ++s) {
    EXPECT_GT(stats.MeanTime(s), 0.0);
    EXPECT_GT(stats.TimeVariance(s), 0.0);
    if (stats.stats(s).num_observations > 0) {
      ++observed;
      EXPECT_GT(stats.stats(s).mean_speed_mps, 0.0);
      // Observed mean speed cannot exceed 1.1x the speed limit (simulator
      // jitter bound).
      EXPECT_LE(stats.stats(s).mean_speed_mps,
                world.net().segment(s).speed_limit_mps * 1.15);
    } else {
      // Fallback equals free flow.
      EXPECT_DOUBLE_EQ(stats.MeanTime(s), world.net().FreeFlowTime(s));
    }
  }
  EXPECT_EQ(observed, stats.num_observed_segments());
}

TEST(SegmentStatsTest, RouteAggregatesAreSums) {
  auto& world = TestWorld();
  const auto& stats = world.segment_stats();
  const auto& route = world.split().test.front()->trip.route;
  double mean = 0.0, var = 0.0;
  for (auto s : route) {
    mean += stats.MeanTime(s);
    var += stats.TimeVariance(s);
  }
  EXPECT_DOUBLE_EQ(stats.RouteMeanTime(route), mean);
  EXPECT_DOUBLE_EQ(stats.RouteTimeVariance(route), var);
}

TEST(CheckDeathTest, ShapeMismatchAborts) {
  nn::Tensor a = nn::Tensor::Zeros({2, 2});
  nn::Tensor b = nn::Tensor::Zeros({3});
  EXPECT_DEATH(a.AddInPlace(b), "DEEPST_CHECK failed");
}

}  // namespace
}  // namespace core
}  // namespace deepst
