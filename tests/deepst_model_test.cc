#include "core/deepst_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "eval/world.h"
#include "nn/serialize.h"

namespace deepst {
namespace core {
namespace {

// A tiny world shared by the model tests (built once; gtest environments
// would be overkill).
eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

DeepSTConfig SmallConfig() {
  DeepSTConfig cfg;
  cfg.segment_embedding_dim = 12;
  cfg.gru_hidden = 24;
  cfg.gru_layers = 2;
  cfg.dest_dim = 12;
  cfg.traffic_dim = 8;
  cfg.num_proxies = 8;
  cfg.cnn_channels = 6;
  cfg.mlp_hidden = 24;
  return cfg;
}

std::vector<const traj::Trip*> FirstTrips(int n) {
  std::vector<const traj::Trip*> out;
  for (const auto* rec : TestWorld().split().train) {
    if (static_cast<int>(out.size()) >= n) break;
    if (rec->trip.route.size() >= 2) out.push_back(&rec->trip);
  }
  return out;
}

TEST(DestinationProxyTest, NormalizationCentersCoordinates) {
  util::Rng rng(1);
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({1000, 2000});
  DestinationProxyModel proxy(4, 8, box, 16, &rng);
  nn::Tensor x = proxy.NormalizeDestinations({{500, 1000}, {0, 0}});
  EXPECT_NEAR(x.at(0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(x.at(0, 1), 0.0f, 1e-6);
  EXPECT_NEAR(x.at(1, 0), -0.5f, 1e-6);
  EXPECT_NEAR(x.at(1, 1), -1.0f, 1e-6);
}

TEST(DestinationProxyTest, ModePiIsOneHot) {
  util::Rng rng(2);
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({100, 100});
  DestinationProxyModel proxy(6, 8, box, 16, &rng);
  nn::Tensor x = proxy.NormalizeDestinations({{10, 20}, {90, 80}});
  nn::VarPtr logits = proxy.EncodeLogits(x);
  nn::VarPtr pi = proxy.ModePi(logits);
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    int ones = 0;
    for (int64_t c = 0; c < 6; ++c) {
      sum += pi->value().at(r, c);
      if (pi->value().at(r, c) == 1.0f) ++ones;
    }
    EXPECT_DOUBLE_EQ(sum, 1.0);
    EXPECT_EQ(ones, 1);
  }
  EXPECT_FALSE(pi->requires_grad());
}

TEST(DestinationProxyTest, ProxyCentersRoundTrip) {
  util::Rng rng(3);
  geo::BoundingBox box;
  box.Extend({-500, -500});
  box.Extend({1500, 2500});
  DestinationProxyModel proxy(5, 8, box, 16, &rng);
  auto centers = proxy.ProxyCentersWorld();
  ASSERT_EQ(centers.size(), 5u);
  // Normalization is isotropic: world coords lie within center +- 0.9*scale,
  // scale = max(width, height)/2 = 1500.
  const geo::Point center{500, 1000};
  for (const auto& c : centers) {
    EXPECT_LE(std::fabs(c.x - center.x), 0.9 * 1500.0 + 1.0);
    EXPECT_LE(std::fabs(c.y - center.y), 0.9 * 1500.0 + 1.0);
  }
}

TEST(DestinationProxyTest, AllocateProxyDeterministic) {
  util::Rng rng(4);
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({100, 100});
  DestinationProxyModel proxy(6, 8, box, 16, &rng);
  const int a = proxy.AllocateProxy({25, 25});
  EXPECT_EQ(a, proxy.AllocateProxy({25, 25}));
  EXPECT_GE(a, 0);
  EXPECT_LT(a, 6);
}

TEST(TrafficEncoderTest, PosteriorShapes) {
  util::Rng rng(5);
  TrafficEncoder encoder(12, 10, 6, 8, 16, &rng);
  nn::Tensor t1 = nn::Tensor::Zeros({2, 12, 10});
  nn::Tensor t2 = nn::Tensor::Full({2, 12, 10}, 0.5f);
  auto post = encoder.Encode({&t1, &t2}, /*training=*/true);
  EXPECT_EQ(post.mu->value().dim(0), 2);
  EXPECT_EQ(post.mu->value().dim(1), 8);
  EXPECT_TRUE(post.mu->value().AllFinite());
  EXPECT_TRUE(post.logvar->value().AllFinite());
  // Different inputs -> different posteriors.
  float diff = 0.0f;
  for (int64_t i = 0; i < 8; ++i) {
    diff += std::fabs(post.mu->value().at(0, i) - post.mu->value().at(1, i));
  }
  EXPECT_GT(diff, 1e-5f);
}

TEST(DeepSTModelTest, LossFiniteAndBackwardable) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), SmallConfig(), world.traffic_cache());
  util::Rng rng(6);
  auto batch = FirstTrips(8);
  ASSERT_GE(batch.size(), 4u);
  LossStats stats;
  nn::VarPtr loss = model.Loss(batch, &rng, &stats);
  EXPECT_TRUE(std::isfinite(stats.total));
  EXPECT_GT(stats.route_ce, 0.0);
  EXPECT_GT(stats.num_transitions, 0);
  EXPECT_GE(stats.kl_traffic, -1e-4);
  EXPECT_GE(stats.kl_proxy, -1e-4);
  nn::Backward(loss);
  // Every parameter group receives gradient somewhere.
  double grad_norm = 0.0;
  for (const auto& p : model.Parameters()) {
    if (p.var->has_grad()) {
      grad_norm += p.var->grad().MaxAbs();
    }
  }
  EXPECT_GT(grad_norm, 0.0);
}

TEST(DeepSTModelTest, InitialLossNearUniform) {
  // Before training, route CE per transition should be near log(out-degree).
  auto& world = TestWorld();
  DeepSTModel model(world.net(), SmallConfig(), world.traffic_cache());
  util::Rng rng(7);
  auto batch = FirstTrips(16);
  LossStats stats;
  model.Loss(batch, &rng, &stats);
  const double per_step = stats.route_ce * static_cast<double>(batch.size()) /
                          stats.num_transitions;
  EXPECT_GT(per_step, 0.4);
  EXPECT_LT(per_step, std::log(world.net().MaxOutDegree()) + 1.0);
}

TEST(DeepSTModelTest, TrainingReducesLoss) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), SmallConfig(), world.traffic_cache());
  TrainerConfig tcfg;
  tcfg.max_epochs = 3;
  tcfg.batch_size = 32;
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  ASSERT_GE(result.epochs.size(), 2u);
  EXPECT_LT(result.epochs.back().train_route_ce,
            result.epochs.front().train_route_ce);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(DeepSTModelTest, PredictRouteValidAndStartsAtOrigin) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), SmallConfig(), world.traffic_cache());
  util::Rng rng(8);
  const auto* rec = world.split().test.front();
  RouteQuery query = eval::QueryFor(rec->trip);
  traj::Route route = model.PredictRoute(query, &rng);
  EXPECT_EQ(route.front(), query.origin);
  EXPECT_TRUE(world.net().ValidateRoute(route).ok());
  EXPECT_LE(static_cast<int>(route.size()),
            model.config().max_route_steps + 1);
}

TEST(DeepSTModelTest, MapPredictionDeterministic) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), SmallConfig(), world.traffic_cache());
  util::Rng rng1(9), rng2(10);
  const auto* rec = world.split().test.front();
  RouteQuery query = eval::QueryFor(rec->trip);
  EXPECT_EQ(model.PredictRoute(query, &rng1),
            model.PredictRoute(query, &rng2));
}

TEST(DeepSTModelTest, ScoreRouteMatchesPredictionOrdering) {
  auto& world = TestWorld();
  DeepSTConfig cfg = SmallConfig();
  DeepSTModel model(world.net(), cfg, world.traffic_cache());
  // Train briefly so scores are informative.
  TrainerConfig tcfg;
  tcfg.max_epochs = 2;
  tcfg.verbose = false;
  Trainer trainer(&model, tcfg);
  trainer.Fit(world.split().train, {});
  util::Rng rng(11);
  const auto* rec = world.split().test.front();
  RouteQuery query = eval::QueryFor(rec->trip);
  PredictionContext ctx = model.MakeContext(query, &rng);
  const double truth_score = model.ScoreRoute(ctx, rec->trip.route);
  EXPECT_TRUE(std::isfinite(truth_score));
  EXPECT_LT(truth_score, 0.0);
  // A disconnected "route" scores -inf.
  traj::Route bad = {rec->trip.route.front(), rec->trip.route.front()};
  if (!world.net().AreConsecutive(bad[0], bad[1])) {
    EXPECT_TRUE(std::isinf(model.ScoreRoute(ctx, bad)));
  }
  // Single-segment route scores 0 (empty product).
  EXPECT_DOUBLE_EQ(model.ScoreRoute(ctx, {rec->trip.route.front()}), 0.0);
}

TEST(DeepSTModelTest, AblationConfigsConstruct) {
  auto& world = TestWorld();
  DeepSTConfig base = SmallConfig();
  // DeepST-C: no traffic encoder, no cache needed.
  DeepSTConfig no_traffic = base;
  no_traffic.use_traffic = false;
  DeepSTModel deepst_c(world.net(), no_traffic, nullptr);
  // CSSRNN.
  DeepSTConfig cssrnn = no_traffic;
  cssrnn.destination_mode = DestinationMode::kFinalSegment;
  DeepSTModel cssrnn_model(world.net(), cssrnn, nullptr);
  // RNN.
  DeepSTConfig rnn = no_traffic;
  rnn.destination_mode = DestinationMode::kNone;
  DeepSTModel rnn_model(world.net(), rnn, nullptr);
  // Param counts shrink as components are removed.
  DeepSTModel full(world.net(), base, world.traffic_cache());
  EXPECT_GT(full.NumParams(), deepst_c.NumParams());
  EXPECT_GT(deepst_c.NumParams(), rnn_model.NumParams());
  // Each can compute a loss.
  util::Rng rng(12);
  auto batch = FirstTrips(4);
  EXPECT_TRUE(std::isfinite(deepst_c.Loss(batch, &rng)->value()[0]));
  EXPECT_TRUE(std::isfinite(cssrnn_model.Loss(batch, &rng)->value()[0]));
  EXPECT_TRUE(std::isfinite(rnn_model.Loss(batch, &rng)->value()[0]));
}

TEST(DeepSTModelTest, MaskInvalidSlotsOptionWorks) {
  auto& world = TestWorld();
  DeepSTConfig cfg = SmallConfig();
  cfg.mask_invalid_slots = true;
  cfg.use_traffic = false;
  DeepSTModel model(world.net(), cfg, nullptr);
  util::Rng rng(13);
  auto batch = FirstTrips(4);
  LossStats stats;
  model.Loss(batch, &rng, &stats);
  EXPECT_TRUE(std::isfinite(stats.total));
}

TEST(DeepSTModelTest, SerializationRoundTripPreservesPredictions) {
  auto& world = TestWorld();
  DeepSTConfig cfg = SmallConfig();
  DeepSTModel a(world.net(), cfg, world.traffic_cache());
  const std::string path = testing::TempDir() + "/deepst_model_rt.bin";
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());
  cfg.seed = 999;  // different init
  DeepSTModel b(world.net(), cfg, world.traffic_cache());
  ASSERT_TRUE(nn::LoadParameters(&b, path).ok());
  util::Rng rng1(14), rng2(14);
  const auto* rec = world.split().test.front();
  RouteQuery query = eval::QueryFor(rec->trip);
  EXPECT_EQ(a.PredictRoute(query, &rng1), b.PredictRoute(query, &rng2));
  std::remove(path.c_str());
}

TEST(ShouldStopTest, DeterministicThreshold) {
  auto& world = TestWorld();
  DeepSTConfig cfg;
  cfg.sample_stop = false;
  cfg.stop_distance_m = 100.0;
  util::Rng rng(15);
  const roadnet::SegmentId s = 0;
  const geo::Point on_segment = world.net().SegmentMidpoint(s);
  EXPECT_TRUE(ShouldStop(world.net(), on_segment, s, cfg, &rng));
  const geo::Point far = on_segment + geo::Point{5000.0, 5000.0};
  EXPECT_FALSE(ShouldStop(world.net(), far, s, cfg, &rng));
}

TEST(ShouldStopTest, SampledBernoulliRate) {
  auto& world = TestWorld();
  DeepSTConfig cfg;
  cfg.sample_stop = true;
  util::Rng rng(16);
  const roadnet::SegmentId s = 0;
  // Destination 1 km from the segment -> f_s = 0.5.
  geo::Point dest = world.net().SegmentMidpoint(s);
  const double d0 = world.net().ProjectToSegment(dest, s).distance;
  dest = dest + geo::Point{0.0, 1000.0 + d0};
  int stops = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (ShouldStop(world.net(), dest, s, cfg, &rng)) ++stops;
  }
  const double rate = stops / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.5, 0.06);
}

void ExpectSameParameters(const DeepSTModel& a, const DeepSTModel& b) {
  const auto pa = nn::SnapshotParameters(a);
  const auto pb = nn::SnapshotParameters(b);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].first, pb[i].first);
    ASSERT_TRUE(pa[i].second.SameShape(pb[i].second)) << pa[i].first;
    for (int64_t j = 0; j < pa[i].second.numel(); ++j) {
      ASSERT_EQ(pa[i].second.data()[j], pb[i].second.data()[j])
          << pa[i].first << "[" << j << "]";
    }
  }
}

TEST(DeepSTModelLoadTest, LoadFromParamsMatchesConstructThenApply) {
  eval::World& world = TestWorld();
  DeepSTModel donor(world.net(), SmallConfig(), world.traffic_cache());
  const auto params = nn::SnapshotParameters(donor);
  // The factory skips random initialization (nn::ScopedDeferInit) and then
  // applies the snapshot; the result must be bitwise equal to the donor.
  auto loaded = DeepSTModel::LoadFromParams(world.net(), SmallConfig(),
                                            world.traffic_cache(), params);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameParameters(donor, *loaded.value());
}

TEST(DeepSTModelLoadTest, LoadFromFileMatchesSavedModel) {
  eval::World& world = TestWorld();
  DeepSTModel donor(world.net(), SmallConfig(), world.traffic_cache());
  const std::string path = testing::TempDir() + "/deepst_model_load.bin";
  ASSERT_TRUE(nn::SaveParameters(donor, path).ok());
  auto loaded = DeepSTModel::LoadFromFile(world.net(), SmallConfig(),
                                          world.traffic_cache(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameParameters(donor, *loaded.value());
}

TEST(DeepSTModelLoadTest, LoadFromParamsRejectsShapeMismatch) {
  eval::World& world = TestWorld();
  DeepSTModel donor(world.net(), SmallConfig(), world.traffic_cache());
  auto params = nn::SnapshotParameters(donor);
  ASSERT_FALSE(params.empty());
  params[0].second = nn::Tensor({1, 1});
  auto loaded = DeepSTModel::LoadFromParams(world.net(), SmallConfig(),
                                            world.traffic_cache(), params);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace core
}  // namespace deepst
