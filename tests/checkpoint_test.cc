// Crash-safety subsystem tests: checkpoint format integrity (truncation /
// bit-flip corpus), latest/prev rotation and fallback, bitwise resume
// determinism, and the divergence guard's rollback + learning-rate backoff.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/trainer.h"
#include "eval/world.h"
#include "nn/serialize.h"

namespace deepst {
namespace core {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A unique fresh directory per test case (gtest TempDir is shared).
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/deepst_" + name;
  std::remove((dir + "/ckpt_latest.bin").c_str());
  std::remove((dir + "/ckpt_prev.bin").c_str());
  std::remove((dir + "/ckpt_best.bin").c_str());
  return dir;
}

struct ToyModule : nn::Module {
  ToyModule() {
    util::Rng rng(42);
    AddParameter("w", nn::Tensor::Uniform({4, 3}, -1.0f, 1.0f, &rng));
    AddParameter("b", nn::Tensor::Uniform({3}, -1.0f, 1.0f, &rng));
    AddParameter("deep/u", nn::Tensor::Uniform({2, 2, 2}, -1.0f, 1.0f, &rng));
    running = nn::Tensor::Uniform({3}, 0.0f, 1.0f, &rng);
    AddBuffer("bn/running", &running);
  }
  nn::Tensor running;
};

TrainingCheckpoint MakeToyCheckpoint(const ToyModule& module) {
  TrainingCheckpoint ckpt;
  ckpt.next_epoch = 7;
  ckpt.best_epoch = 5;
  ckpt.best_val = 0.125;
  ckpt.since_best = 2;
  ckpt.retries_used = 1;
  util::Rng rng(99);
  (void)rng.Gaussian();  // populate the cached half
  ckpt.rng = rng.GetState();
  for (int e = 0; e < 7; ++e) {
    EpochStats es;
    es.epoch = e;
    es.train_loss = 10.0 - e;
    es.train_route_ce = 2.0 - 0.1 * e;
    es.val_route_ce = 2.1 - 0.1 * e;
    es.seconds = 0.5;
    ckpt.history.push_back(es);
  }
  nn::Adam adam(module.Parameters(), 1e-3f);
  ckpt.optimizer = adam.ExportState();
  ckpt.optimizer.step = 31;
  ckpt.params = nn::SnapshotParameters(module);
  ckpt.best_params = nn::SnapshotParameters(module);
  ckpt.buffers = nn::SnapshotBuffers(module);
  ckpt.best_buffers = nn::SnapshotBuffers(module);
  return ckpt;
}

void ExpectSameTensors(const std::vector<nn::NamedTensor>& a,
                       const std::vector<nn::NamedTensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    ASSERT_TRUE(a[i].second.SameShape(b[i].second));
    for (int64_t j = 0; j < a[i].second.numel(); ++j) {
      EXPECT_EQ(a[i].second[j], b[i].second[j]) << a[i].first << "[" << j
                                                << "]";
    }
  }
}

TEST(TrainingCheckpointTest, SaveLoadRoundTrip) {
  ToyModule module;
  const TrainingCheckpoint ckpt = MakeToyCheckpoint(module);
  const std::string path = testing::TempDir() + "/deepst_ckpt_rt.bin";
  ASSERT_TRUE(SaveTrainingCheckpoint(ckpt, path).ok());

  auto loaded = LoadTrainingCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TrainingCheckpoint& got = loaded.value();
  EXPECT_EQ(got.next_epoch, ckpt.next_epoch);
  EXPECT_EQ(got.best_epoch, ckpt.best_epoch);
  EXPECT_DOUBLE_EQ(got.best_val, ckpt.best_val);
  EXPECT_EQ(got.since_best, ckpt.since_best);
  EXPECT_EQ(got.retries_used, ckpt.retries_used);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got.rng.s[i], ckpt.rng.s[i]);
  EXPECT_EQ(got.rng.has_cached_gaussian, ckpt.rng.has_cached_gaussian);
  EXPECT_DOUBLE_EQ(got.rng.cached_gaussian, ckpt.rng.cached_gaussian);
  ASSERT_EQ(got.history.size(), ckpt.history.size());
  for (size_t i = 0; i < got.history.size(); ++i) {
    EXPECT_EQ(got.history[i].epoch, ckpt.history[i].epoch);
    EXPECT_DOUBLE_EQ(got.history[i].train_loss, ckpt.history[i].train_loss);
    EXPECT_DOUBLE_EQ(got.history[i].val_route_ce,
                     ckpt.history[i].val_route_ce);
  }
  EXPECT_EQ(got.optimizer.kind, "adam");
  EXPECT_EQ(got.optimizer.step, 31);
  EXPECT_EQ(got.optimizer.slots.size(), ckpt.optimizer.slots.size());
  ExpectSameTensors(got.params, ckpt.params);
  ExpectSameTensors(got.best_params, ckpt.best_params);
  ExpectSameTensors(got.buffers, ckpt.buffers);
  ExpectSameTensors(got.best_buffers, ckpt.best_buffers);
}

TEST(TrainingCheckpointTest, BuffersRestoreIntoModule) {
  ToyModule source;
  const TrainingCheckpoint ckpt = MakeToyCheckpoint(source);

  ToyModule target;
  for (int64_t j = 0; j < target.running.numel(); ++j) target.running[j] = -5;
  ASSERT_TRUE(nn::ApplyNamedBuffers(&target, ckpt.buffers).ok());
  for (int64_t j = 0; j < target.running.numel(); ++j) {
    EXPECT_EQ(target.running[j], source.running[j]);
  }

  // An empty list is a no-op (checkpoints from buffer-less models), but a
  // present-yet-mismatched one is rejected.
  EXPECT_TRUE(nn::ApplyNamedBuffers(&target, {}).ok());
  std::vector<nn::NamedTensor> wrong_name = {
      {"bn/other", nn::Tensor::Zeros({3})}};
  EXPECT_FALSE(nn::ApplyNamedBuffers(&target, wrong_name).ok());
  std::vector<nn::NamedTensor> wrong_shape = {
      {"bn/running", nn::Tensor::Zeros({4})}};
  EXPECT_FALSE(nn::ApplyNamedBuffers(&target, wrong_shape).ok());
}

TEST(TrainingCheckpointTest, RestoredOptimizerStateImports) {
  ToyModule module;
  const TrainingCheckpoint ckpt = MakeToyCheckpoint(module);
  const std::string path = testing::TempDir() + "/deepst_ckpt_opt.bin";
  ASSERT_TRUE(SaveTrainingCheckpoint(ckpt, path).ok());
  auto loaded = LoadTrainingCheckpoint(path);
  ASSERT_TRUE(loaded.ok());

  nn::Adam adam(module.Parameters(), 5e-2f);
  ASSERT_TRUE(adam.ImportState(loaded.value().optimizer).ok());

  // Kind and shape mismatches are rejected, not silently accepted.
  nn::Sgd sgd(module.Parameters(), 1e-2f);
  EXPECT_FALSE(sgd.ImportState(loaded.value().optimizer).ok());
  nn::OptimizerState bad = loaded.value().optimizer;
  bad.slots.pop_back();
  EXPECT_FALSE(adam.ImportState(bad).ok());
}

TEST(TrainingCheckpointTest, MissingFileIsNotFound) {
  auto loaded = LoadTrainingCheckpoint(testing::TempDir() +
                                       "/deepst_no_such_ckpt.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kNotFound);
}

// Every truncation and every single-bit flip of a checkpoint must be
// rejected with a clean error -- the CRC footer (or a bounds check) catches
// them all; none may crash or return a half-parsed checkpoint.
TEST(TrainingCheckpointTest, CorruptionCorpus) {
  ToyModule module;
  const std::string path = testing::TempDir() + "/deepst_ckpt_corpus.bin";
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeToyCheckpoint(module), path).ok());
  const std::string clean = ReadFile(path);
  ASSERT_GT(clean.size(), 16u);

  const std::string victim = testing::TempDir() + "/deepst_ckpt_victim.bin";
  for (size_t len = 0; len < clean.size(); ++len) {
    WriteFile(victim, clean.substr(0, len));
    auto loaded = LoadTrainingCheckpoint(victim);
    EXPECT_FALSE(loaded.ok()) << "truncation at byte " << len;
  }
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::string flipped = clean;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x01);
    WriteFile(victim, flipped);
    auto loaded = LoadTrainingCheckpoint(victim);
    EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << byte;
  }
}

// The raw parameter-file reader has no CRC, so a bit flip in the float
// payload is not detectable -- but no corruption may ever crash it, and any
// truncation must surface as an error.
TEST(SerializeHardeningTest, ParameterFileCorpus) {
  ToyModule module;
  const std::string path = testing::TempDir() + "/deepst_params_corpus.bin";
  ASSERT_TRUE(nn::SaveParameters(module, path).ok());
  const std::string clean = ReadFile(path);

  const std::string victim = testing::TempDir() + "/deepst_params_victim.bin";
  for (size_t len = 0; len < clean.size(); ++len) {
    WriteFile(victim, clean.substr(0, len));
    ToyModule target;
    EXPECT_FALSE(nn::LoadParameters(&target, victim).ok())
        << "truncation at byte " << len;
  }
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::string flipped = clean;
    // Flip a high bit: length/dim fields become huge, floats become
    // garbage; either way the loader must return, not crash or allocate
    // unboundedly.
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x80);
    WriteFile(victim, flipped);
    ToyModule target;
    (void)nn::LoadParameters(&target, victim);  // must not crash
  }
}

TEST(SerializeHardeningTest, RejectsOversizeFields) {
  // Hand-build a header claiming a multi-exabyte tensor: count 1, name "w",
  // ndim 2, dims that overflow int64 when multiplied.
  std::ostringstream out(std::ios::binary);
  const uint32_t magic = 0xDEE59701;
  out.write(reinterpret_cast<const char*>(&magic), 4);
  auto w64 = [&](uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), 8);
  };
  w64(1);          // count
  w64(1);          // name_len
  out.write("w", 1);
  w64(2);          // ndim
  w64(uint64_t{1} << 40);
  w64(uint64_t{1} << 40);
  const std::string path = testing::TempDir() + "/deepst_params_huge.bin";
  WriteFile(path, std::move(out).str());
  ToyModule target;
  auto s = nn::LoadParameters(&target, path);
  EXPECT_FALSE(s.ok());
}

TEST(CheckpointManagerTest, RotationKeepsPreviousCheckpoint) {
  ToyModule module;
  CheckpointManager mgr(FreshDir("rotate"));
  ASSERT_TRUE(mgr.dir_status().ok());

  TrainingCheckpoint first = MakeToyCheckpoint(module);
  first.next_epoch = 1;
  TrainingCheckpoint second = MakeToyCheckpoint(module);
  second.next_epoch = 2;
  ASSERT_TRUE(mgr.WriteLatest(first).ok());
  ASSERT_TRUE(mgr.WriteLatest(second).ok());

  auto latest = LoadTrainingCheckpoint(mgr.LatestPath());
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().next_epoch, 2);
  auto prev = LoadTrainingCheckpoint(mgr.PrevPath());
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(prev.value().next_epoch, 1);
}

TEST(CheckpointManagerTest, CorruptLatestFallsBackToPrev) {
  ToyModule module;
  CheckpointManager mgr(FreshDir("fallback"));
  TrainingCheckpoint first = MakeToyCheckpoint(module);
  first.next_epoch = 1;
  TrainingCheckpoint second = MakeToyCheckpoint(module);
  second.next_epoch = 2;
  ASSERT_TRUE(mgr.WriteLatest(first).ok());
  ASSERT_TRUE(mgr.WriteLatest(second).ok());

  // Truncate latest mid-file, as a crash during a non-atomic write would.
  const std::string bytes = ReadFile(mgr.LatestPath());
  WriteFile(mgr.LatestPath(), bytes.substr(0, bytes.size() / 2));

  std::string used;
  auto loaded = mgr.LoadLatestGood(&used);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(used, mgr.PrevPath());
  EXPECT_EQ(loaded.value().next_epoch, 1);

  // With both gone, a clean NotFound.
  std::remove(mgr.LatestPath().c_str());
  std::remove(mgr.PrevPath().c_str());
  auto none = mgr.LoadLatestGood();
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), util::Status::Code::kNotFound);
}

// ---------------------------------------------------------------------------
// End-to-end trainer integration: resume determinism + divergence guard.

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "checkpoint-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

DeepSTConfig TinyConfig() {
  DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.dest_dim = 8;
  cfg.num_proxies = 8;
  cfg.mlp_hidden = 16;
  cfg.use_traffic = false;
  return cfg;
}

TrainerConfig BaseTrainerConfig() {
  TrainerConfig tcfg;
  tcfg.verbose = false;
  tcfg.patience = 100;  // determinism tests must not stop early
  return tcfg;
}

// The traffic variant adds the CNN posterior encoder, whose batch-norm
// layers carry running statistics outside the parameter list. Those buffers
// feed eval-mode validation CE (and through it early stopping), so resume
// determinism must cover them too.
DeepSTConfig TinyTrafficConfig() {
  DeepSTConfig cfg = TinyConfig();
  cfg.use_traffic = true;
  return cfg;
}

void ExpectSameModelParams(const DeepSTModel& a, const DeepSTModel& b) {
  const auto pa = nn::SnapshotParameters(a);
  const auto pb = nn::SnapshotParameters(b);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].first, pb[i].first);
    for (int64_t j = 0; j < pa[i].second.numel(); ++j) {
      ASSERT_EQ(pa[i].second[j], pb[i].second[j])
          << pa[i].first << "[" << j << "]";
    }
  }
  const auto ba = nn::SnapshotBuffers(a);
  const auto bb = nn::SnapshotBuffers(b);
  ASSERT_EQ(ba.size(), bb.size());
  for (size_t i = 0; i < ba.size(); ++i) {
    ASSERT_EQ(ba[i].first, bb[i].first);
    for (int64_t j = 0; j < ba[i].second.numel(); ++j) {
      ASSERT_EQ(ba[i].second[j], bb[i].second[j])
          << ba[i].first << "[" << j << "]";
    }
  }
}

TEST(TrainerCheckpointTest, ResumeIsBitwiseIdenticalToUninterrupted) {
  auto& world = TestWorld();

  // Reference: 6 epochs in one go, no checkpointing.
  DeepSTModel ref_model(world.net(), TinyTrafficConfig(),
                        world.traffic_cache());
  TrainerConfig ref_cfg = BaseTrainerConfig();
  ref_cfg.max_epochs = 6;
  Trainer ref_trainer(&ref_model, ref_cfg);
  auto ref = ref_trainer.Fit(world.split().train, world.split().validation);
  ASSERT_EQ(ref.epochs.size(), 6u);
  ASSERT_FALSE(ref_model.Buffers().empty())
      << "traffic variant should register batch-norm buffers";

  // Interrupted: 3 epochs with checkpoints, then a fresh model + trainer
  // resumes to 6 (as a new process would after a kill).
  const std::string dir = FreshDir("resume");
  DeepSTModel half_model(world.net(), TinyTrafficConfig(),
                         world.traffic_cache());
  TrainerConfig half_cfg = BaseTrainerConfig();
  half_cfg.max_epochs = 3;
  half_cfg.checkpoint_dir = dir;
  half_cfg.checkpoint_every = 1;
  Trainer half_trainer(&half_model, half_cfg);
  auto half = half_trainer.Fit(world.split().train,
                               world.split().validation);
  ASSERT_EQ(half.epochs.size(), 3u);

  DeepSTModel resumed_model(world.net(), TinyTrafficConfig(),
                            world.traffic_cache());
  TrainerConfig resume_cfg = BaseTrainerConfig();
  resume_cfg.max_epochs = 6;
  resume_cfg.checkpoint_dir = dir;
  resume_cfg.resume = true;
  Trainer resume_trainer(&resumed_model, resume_cfg);
  auto resumed = resume_trainer.Fit(world.split().train,
                                    world.split().validation);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_EQ(resumed.start_epoch, 3);

  // Whole-run history matches the uninterrupted reference bit for bit.
  ASSERT_EQ(resumed.epochs.size(), ref.epochs.size());
  for (size_t i = 0; i < ref.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed.epochs[i].train_loss, ref.epochs[i].train_loss)
        << "epoch " << i;
    EXPECT_DOUBLE_EQ(resumed.epochs[i].train_route_ce,
                     ref.epochs[i].train_route_ce) << "epoch " << i;
    EXPECT_DOUBLE_EQ(resumed.epochs[i].val_route_ce,
                     ref.epochs[i].val_route_ce) << "epoch " << i;
  }
  EXPECT_EQ(resumed.best_epoch, ref.best_epoch);
  ExpectSameModelParams(resumed_model, ref_model);
}

// SIGTERM-style graceful stop (TrainerConfig.stop_requested, wired to
// util/shutdown.h by `deepst train`): the partially trained epoch is rolled
// back to the last epoch boundary, a final checkpoint is flushed, and a
// later resume is bitwise identical to a run that was never interrupted --
// the stop changed *when* training happened, not *what* it computed.
TEST(TrainerCheckpointTest, GracefulStopRollsBackFlushesAndResumesBitwise) {
  auto& world = TestWorld();

  // Small batches so every epoch spans several minibatches -- the stop must
  // land mid-epoch for the rollback path to be exercised at all.
  TrainerConfig shared_cfg = BaseTrainerConfig();
  shared_cfg.batch_size = 8;

  // Reference: 4 epochs straight through, no interruptions.
  DeepSTModel ref_model(world.net(), TinyConfig(), nullptr);
  TrainerConfig ref_cfg = shared_cfg;
  ref_cfg.max_epochs = 4;
  Trainer ref_trainer(&ref_model, ref_cfg);
  auto ref = ref_trainer.Fit(world.split().train, world.split().validation);
  ASSERT_EQ(ref.epochs.size(), 4u);

  // Phase 1: two clean epochs with checkpoints.
  const std::string dir = FreshDir("graceful_stop");
  DeepSTModel stop_model(world.net(), TinyConfig(), nullptr);
  TrainerConfig phase1_cfg = shared_cfg;
  phase1_cfg.max_epochs = 2;
  phase1_cfg.checkpoint_dir = dir;
  Trainer phase1(&stop_model, phase1_cfg);
  ASSERT_EQ(phase1.Fit(world.split().train, world.split().validation)
                .epochs.size(),
            2u);

  // Phase 2: resume toward 4 epochs, but the stop flag trips after the
  // first minibatch -- mid-epoch, so the rollback path actually runs.
  DeepSTModel mid_model(world.net(), TinyConfig(), nullptr);
  TrainerConfig stop_cfg = shared_cfg;
  stop_cfg.max_epochs = 4;
  stop_cfg.checkpoint_dir = dir;
  stop_cfg.resume = true;
  std::atomic<int> polls{0};
  stop_cfg.stop_requested = [&polls] { return ++polls > 1; };
  Trainer stopped(&mid_model, stop_cfg);
  auto interrupted = stopped.Fit(world.split().train,
                                 world.split().validation);
  ASSERT_TRUE(interrupted.status.ok()) << interrupted.status.ToString();
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.epochs.size(), 2u);  // nothing new completed
  // The flushed checkpoint is intact and sits exactly at the epoch-2
  // boundary (the partial batch was rolled back, not persisted).
  CheckpointManager manager(dir);
  auto flushed = manager.LoadLatestGood();
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_EQ(flushed.value().next_epoch, 2);

  // Phase 3: resume again without the stop flag and finish.
  DeepSTModel resumed_model(world.net(), TinyConfig(), nullptr);
  TrainerConfig resume_cfg = shared_cfg;
  resume_cfg.max_epochs = 4;
  resume_cfg.checkpoint_dir = dir;
  resume_cfg.resume = true;
  Trainer resume_trainer(&resumed_model, resume_cfg);
  auto resumed = resume_trainer.Fit(world.split().train,
                                    world.split().validation);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.start_epoch, 2);
  ASSERT_EQ(resumed.epochs.size(), ref.epochs.size());
  for (size_t i = 0; i < ref.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed.epochs[i].train_loss, ref.epochs[i].train_loss)
        << "epoch " << i;
    EXPECT_DOUBLE_EQ(resumed.epochs[i].val_route_ce,
                     ref.epochs[i].val_route_ce) << "epoch " << i;
  }
  ExpectSameModelParams(resumed_model, ref_model);
}

TEST(TrainerCheckpointTest, ResumeWithCorruptLatestUsesPrev) {
  auto& world = TestWorld();
  const std::string dir = FreshDir("resume_corrupt");

  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig cfg = BaseTrainerConfig();
  cfg.max_epochs = 3;
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 1;
  Trainer trainer(&model, cfg);
  (void)trainer.Fit(world.split().train, world.split().validation);

  // Simulate a torn write of the newest checkpoint.
  CheckpointManager mgr(dir);
  const std::string bytes = ReadFile(mgr.LatestPath());
  WriteFile(mgr.LatestPath(), bytes.substr(0, bytes.size() - 7));

  DeepSTModel resumed(world.net(), TinyConfig(), nullptr);
  TrainerConfig rcfg = BaseTrainerConfig();
  rcfg.max_epochs = 4;
  rcfg.checkpoint_dir = dir;
  rcfg.resume = true;
  Trainer rtrainer(&resumed, rcfg);
  auto result = rtrainer.Fit(world.split().train, world.split().validation);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // prev holds the epoch-2 boundary, so the resumed run starts at epoch 2.
  EXPECT_EQ(result.start_epoch, 2);
  EXPECT_EQ(result.epochs.size(), 4u);
}

TEST(TrainerCheckpointTest, NanLossRollsBackAndCompletes) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig cfg = BaseTrainerConfig();
  cfg.max_epochs = 4;
  int injections = 0;
  cfg.divergence_loss_hook = [&](int epoch, int retries, double loss) {
    if (epoch == 2 && retries == 0) {
      ++injections;
      return std::numeric_limits<double>::quiet_NaN();
    }
    return loss;
  };
  Trainer trainer(&model, cfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  EXPECT_EQ(injections, 1);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_EQ(result.epochs.size(), 4u);
  for (const auto& e : result.epochs) {
    EXPECT_TRUE(std::isfinite(e.train_loss));
  }
  for (const auto& p : model.Parameters()) {
    ASSERT_TRUE(p.var->value().AllFinite()) << p.name;
  }
}

TEST(TrainerCheckpointTest, PersistentDivergenceFailsGracefully) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  const auto initial = nn::SnapshotParameters(model);
  TrainerConfig cfg = BaseTrainerConfig();
  cfg.max_epochs = 4;
  cfg.divergence_max_retries = 2;
  cfg.divergence_loss_hook = [](int, int, double) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  Trainer trainer(&model, cfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), util::Status::Code::kInternal);
  EXPECT_TRUE(result.epochs.empty());
  // The model is left at the last good boundary -- here the initial
  // weights -- not at whatever the diverged epoch produced.
  const auto final_params = nn::SnapshotParameters(model);
  ASSERT_EQ(final_params.size(), initial.size());
  for (size_t i = 0; i < initial.size(); ++i) {
    for (int64_t j = 0; j < initial[i].second.numel(); ++j) {
      ASSERT_EQ(final_params[i].second[j], initial[i].second[j]);
    }
  }
}

TEST(TrainerCheckpointTest, SpikeTriggersLrBackoff) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), TinyConfig(), nullptr);
  TrainerConfig cfg = BaseTrainerConfig();
  cfg.max_epochs = 3;
  int rollbacks_seen = 0;
  cfg.divergence_loss_hook = [&](int epoch, int retries, double loss) {
    if (epoch == 1 && retries == 0) return loss + 1e9;  // absurd spike
    if (retries > 0) ++rollbacks_seen;
    return loss;
  };
  Trainer trainer(&model, cfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.epochs.size(), 3u);
  EXPECT_GT(rollbacks_seen, 0);
}

}  // namespace
}  // namespace core
}  // namespace deepst
