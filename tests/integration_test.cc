// End-to-end pipeline test: build a world, train DeepST and the ablation
// ladder, and verify the qualitative ordering the paper reports in Table IV
// (destination information helps a lot; the full model beats the
// destination-blind baselines). Uses a small-but-real world, so this is the
// slowest test in the suite.
#include <gtest/gtest.h>

#include "baselines/mmi.h"
#include "baselines/neural_router.h"
#include "baselines/wsp.h"
#include "eval/world.h"
#include "recovery/strs.h"

namespace deepst {
namespace {

struct Pipeline {
  std::unique_ptr<eval::World> world;
  std::unique_ptr<core::DeepSTModel> deepst;
  std::unique_ptr<core::DeepSTModel> rnn;
  eval::EvalResult deepst_result;
  eval::EvalResult rnn_result;
  eval::EvalResult mmi_result;
  eval::EvalResult wsp_result;
};

Pipeline& SharedPipeline() {
  static Pipeline* p = [] {
    auto* pipe = new Pipeline();
    eval::WorldConfig cfg = eval::ChengduMiniWorld(1.0);
    cfg.name = "integration-world";
    cfg.city.rows = 8;
    cfg.city.cols = 8;
    cfg.generator.num_days = 16;
    cfg.generator.trips_per_day = 160;
    cfg.generator.max_route_m = 7000.0;
    cfg.train_days = 13;
    cfg.val_days = 1;
    pipe->world = std::make_unique<eval::World>(cfg);
    eval::World& world = *pipe->world;

    core::DeepSTConfig base;
    base.segment_embedding_dim = 16;
    base.gru_hidden = 32;
    base.gru_layers = 2;
    base.dest_dim = 16;
    base.traffic_dim = 8;
    base.num_proxies = 32;
    base.cnn_channels = 8;
    base.mlp_hidden = 32;

    core::TrainerConfig tcfg;
    tcfg.max_epochs = 20;
    tcfg.patience = 6;
    tcfg.verbose = false;

    pipe->deepst = eval::TrainModel(
        &world, baselines::DeepStConfigOf(base), tcfg);
    pipe->rnn =
        eval::TrainModel(&world, baselines::RnnConfigOf(base), tcfg);

    baselines::MarkovRouter mmi(world.net(), base);
    mmi.Train(world.split().train);
    baselines::WspRouter wsp(world.net(), world.index(),
                             world.segment_stats());

    const int kMaxTrips = 120;
    util::Rng rng(7);
    pipe->deepst_result = eval::EvaluatePrediction(
        world,
        [&](const core::RouteQuery& q) {
          return pipe->deepst->PredictRoute(q, &rng);
        },
        kMaxTrips);
    pipe->rnn_result = eval::EvaluatePrediction(
        world,
        [&](const core::RouteQuery& q) {
          return pipe->rnn->PredictRoute(q, &rng);
        },
        kMaxTrips);
    pipe->mmi_result = eval::EvaluatePrediction(
        world,
        [&](const core::RouteQuery& q) { return mmi.PredictRoute(q, &rng); },
        kMaxTrips);
    pipe->wsp_result = eval::EvaluatePrediction(
        world,
        [&](const core::RouteQuery& q) { return wsp.PredictRoute(q, &rng); },
        kMaxTrips);
    return pipe;
  }();
  return *p;
}

TEST(IntegrationTest, AllMethodsProduceMetrics) {
  Pipeline& p = SharedPipeline();
  for (const auto* r :
       {&p.deepst_result, &p.rnn_result, &p.mmi_result, &p.wsp_result}) {
    EXPECT_GT(r->num_trips, 50);
    EXPECT_GE(r->recall_at_n, 0.0);
    EXPECT_LE(r->recall_at_n, 1.0);
    EXPECT_GE(r->accuracy, 0.0);
    EXPECT_LE(r->accuracy, 1.0);
  }
}

TEST(IntegrationTest, DeepStLearnsSomething) {
  Pipeline& p = SharedPipeline();
  // Must clearly beat random-walk territory on this small world.
  EXPECT_GT(p.deepst_result.recall_at_n, 0.35);
  EXPECT_GT(p.deepst_result.accuracy, 0.3);
}

TEST(IntegrationTest, DestinationAwarenessBeatsBlindBaselines) {
  // Paper Table IV ordering: DeepST > RNN > MMI. On this deliberately small
  // 8x8 test city the destination-blind RNN profits disproportionately from
  // the shared stop rule (an unguided walk often stumbles onto a nearby
  // destination), so the margin over RNN is thinner than on the bench
  // cities -- we assert the ordering strictly on accuracy, within noise on
  // recall (with both models restored to their best-validation epoch the
  // recall gap here sits inside the +-1pp sampling noise of 120 test
  // trips), plus a solid margin over MMI on both.
  Pipeline& p = SharedPipeline();
  EXPECT_GT(p.deepst_result.accuracy, p.rnn_result.accuracy);
  EXPECT_GT(p.deepst_result.accuracy, p.mmi_result.accuracy + 0.08);
  EXPECT_GT(p.deepst_result.recall_at_n, p.rnn_result.recall_at_n - 0.01);
  EXPECT_GT(p.deepst_result.recall_at_n, p.mmi_result.recall_at_n + 0.05);
}

TEST(IntegrationTest, DeepStCompetitiveWithWsp) {
  // WSP is structurally strong on the synthetic substrate (drivers are
  // noisy cost minimizers; see EXPERIMENTS.md) and the small test city
  // favors it further; DeepST must stay within striking distance. On the
  // full bench cities the gap is ~3-5pp.
  Pipeline& p = SharedPipeline();
  EXPECT_GT(p.deepst_result.accuracy, p.wsp_result.accuracy - 0.12);
}

TEST(IntegrationTest, StrsPlusRecoversRoutes) {
  Pipeline& p = SharedPipeline();
  eval::World& world = *p.world;
  recovery::DeepStSpatialScorer scorer(p.deepst.get());
  recovery::StrsRecovery strs_plus(world.net(), world.index(),
                                   world.segment_stats(), &scorer);
  util::Rng rng(11);
  eval::MetricAccumulator acc;
  for (size_t i = 0; i < world.split().test.size() && acc.count < 20; ++i) {
    const auto* rec = world.split().test[i];
    auto sparse = traj::DownsampleByInterval(rec->gps, 120.0);
    if (sparse.size() < 2) continue;
    auto recovered = strs_plus.RecoverTrajectory(
        sparse, rec->trip.destination, rec->trip.start_time_s, &rng);
    if (!recovered.ok()) continue;
    acc.Add(rec->trip.route, recovered.value());
  }
  ASSERT_GE(acc.count, 10);
  EXPECT_GT(acc.mean_accuracy(), 0.6);
}

}  // namespace
}  // namespace deepst
