#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace deepst {
namespace nn {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({4}, 2.5f);
  EXPECT_EQ(t[3], 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t[0], -1.0f);
}

TEST(TensorTest, FromVectorRowMajor) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, At4Layout) {
  Tensor t = Tensor::Zeros({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  // flat index = ((1*3+2)*4+3)*5+4 = 119
  EXPECT_EQ(t[119], 7.0f);
}

TEST(TensorTest, ReshapeKeepsData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_EQ(r.numel(), 6);
}

TEST(TensorTest, AddInPlaceAndScale) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a[2], 33.0f);
  a.ScaleInPlace(0.5f);
  EXPECT_EQ(a[0], 5.5f);
}

TEST(TensorTest, SumMeanMaxAbs) {
  Tensor t = Tensor::FromVector({4}, {1, -5, 2, 2});
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(t.Mean(), 0.0);
  EXPECT_EQ(t.MaxAbs(), 5.0f);
}

TEST(TensorTest, ArgMaxFirstOfTies) {
  Tensor t = Tensor::FromVector({5}, {0, 3, 1, 3, 2});
  EXPECT_EQ(t.ArgMax(), 1);
}

TEST(TensorTest, AllFinite) {
  Tensor t = Tensor::FromVector({2}, {1, 2});
  EXPECT_TRUE(t.AllFinite());
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.AllFinite());
  t[1] = std::nanf("");
  EXPECT_FALSE(t.AllFinite());
}

TEST(TensorTest, UniformRespectsBounds) {
  util::Rng rng(3);
  Tensor t = Tensor::Uniform({1000}, -0.5f, 0.5f, &rng);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -0.5f);
    EXPECT_LT(t[i], 0.5f);
  }
}

TEST(TensorTest, GaussianMoments) {
  util::Rng rng(5);
  Tensor t = Tensor::Gaussian({20000}, 1.0f, 2.0f, &rng);
  EXPECT_NEAR(t.Mean(), 1.0, 0.05);
}

TEST(SoftmaxRowsTest, RowsSumToOne) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = SoftmaxRows(logits);
  for (int64_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(r, c), 0.0f);
      s += p.at(r, c);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
  // Monotone in logits.
  EXPECT_LT(p.at(0, 0), p.at(0, 2));
}

TEST(SoftmaxRowsTest, StableForLargeLogits) {
  Tensor logits = Tensor::FromVector({1, 2}, {1000.0f, 999.0f});
  Tensor p = SoftmaxRows(logits);
  EXPECT_TRUE(p.AllFinite());
  EXPECT_NEAR(p.at(0, 0), 1.0 / (1.0 + std::exp(-1.0)), 1e-5);
}

TEST(LogSoftmaxRowsTest, MatchesLogOfSoftmax) {
  Tensor logits = Tensor::FromVector({1, 4}, {0.3f, -1.2f, 2.0f, 0.0f});
  Tensor p = SoftmaxRows(logits);
  Tensor lp = LogSoftmaxRows(logits);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(lp.at(0, c), std::log(p.at(0, c)), 1e-5);
  }
}

TEST(ScopedDeferInitTest, SkipsRandomDrawsAndLeavesRngUntouched) {
  util::Rng rng(7);
  {
    ScopedDeferInit guard;
    EXPECT_TRUE(ScopedDeferInit::active());
    Tensor g = Tensor::Gaussian({3, 4}, 0.0f, 0.1f, &rng);
    Tensor u = Tensor::Uniform({2, 5}, -1.0f, 1.0f, &rng);
    for (int64_t i = 0; i < g.numel(); ++i) EXPECT_EQ(g.data()[i], 0.0f);
    for (int64_t i = 0; i < u.numel(); ++i) EXPECT_EQ(u.data()[i], 0.0f);
  }
  EXPECT_FALSE(ScopedDeferInit::active());
  // The deferred factories must not have advanced the stream: the next draw
  // matches a fresh generator with the same seed.
  util::Rng fresh(7);
  EXPECT_EQ(rng.Uniform(), fresh.Uniform());
  // Outside the guard the factories draw again.
  Tensor g = Tensor::Gaussian({64}, 0.0f, 0.1f, &rng);
  bool any_nonzero = false;
  for (int64_t i = 0; i < g.numel(); ++i) any_nonzero |= g.data()[i] != 0.0f;
  EXPECT_TRUE(any_nonzero);
}

TEST(ScopedDeferInitTest, NestsAndRestores) {
  {
    ScopedDeferInit outer;
    {
      ScopedDeferInit inner;
      EXPECT_TRUE(ScopedDeferInit::active());
    }
    EXPECT_TRUE(ScopedDeferInit::active());
  }
  EXPECT_FALSE(ScopedDeferInit::active());
}

}  // namespace
}  // namespace nn
}  // namespace deepst
