// Analytic spot-checks of individual ops' forward values and gradients.
// Exhaustive finite-difference verification lives in gradcheck_test.cc.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv_ops.h"
#include "nn/ops.h"
#include "nn/variable.h"

namespace deepst {
namespace nn {
namespace {

namespace o = ops;

VarPtr Param(std::vector<int64_t> shape, const std::vector<float>& v) {
  return MakeVar(Tensor::FromVector(std::move(shape), v),
                 /*requires_grad=*/true);
}

TEST(AutodiffTest, AddBackwardBothParents) {
  VarPtr a = Param({2}, {1, 2});
  VarPtr b = Param({2}, {3, 4});
  VarPtr s = o::Sum(o::Add(a, b));
  EXPECT_FLOAT_EQ(s->value()[0], 10.0f);
  Backward(s);
  EXPECT_FLOAT_EQ(a->grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b->grad()[1], 1.0f);
}

TEST(AutodiffTest, AddRowBroadcast) {
  VarPtr a = Param({2, 2}, {1, 2, 3, 4});
  VarPtr b = Param({2}, {10, 20});
  VarPtr out = o::Add(a, b);
  EXPECT_FLOAT_EQ(out->value().at(1, 1), 24.0f);
  Backward(o::Sum(out));
  EXPECT_FLOAT_EQ(b->grad()[0], 2.0f);  // summed over rows
  EXPECT_FLOAT_EQ(b->grad()[1], 2.0f);
}

TEST(AutodiffTest, MulGradIsOtherOperand) {
  VarPtr a = Param({2}, {2, 3});
  VarPtr b = Param({2}, {5, 7});
  Backward(o::Sum(o::Mul(a, b)));
  EXPECT_FLOAT_EQ(a->grad()[0], 5.0f);
  EXPECT_FLOAT_EQ(a->grad()[1], 7.0f);
  EXPECT_FLOAT_EQ(b->grad()[0], 2.0f);
}

TEST(AutodiffTest, DiamondGraphAccumulates) {
  // y = a*a; dy/da = 2a via two paths through Mul.
  VarPtr a = Param({1}, {3});
  Backward(o::Sum(o::Mul(a, a)));
  EXPECT_FLOAT_EQ(a->grad()[0], 6.0f);
}

TEST(AutodiffTest, ReusedNodeAccumulates) {
  // z = sum(a) + sum(a) -> grad 2.
  VarPtr a = Param({3}, {1, 1, 1});
  VarPtr s1 = o::Sum(a);
  VarPtr s2 = o::Sum(a);
  Backward(o::Add(s1, s2));
  EXPECT_FLOAT_EQ(a->grad()[0], 2.0f);
}

TEST(AutodiffTest, MatMulForward) {
  VarPtr a = Param({2, 3}, {1, 2, 3, 4, 5, 6});
  VarPtr b = Param({3, 2}, {7, 8, 9, 10, 11, 12});
  VarPtr c = o::MatMul(a, b);
  EXPECT_FLOAT_EQ(c->value().at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c->value().at(1, 1), 154.0f);
}

TEST(AutodiffTest, MatMulBackward) {
  VarPtr a = Param({1, 2}, {1, 2});
  VarPtr b = Param({2, 1}, {3, 4});
  Backward(o::Sum(o::MatMul(a, b)));
  EXPECT_FLOAT_EQ(a->grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(a->grad()[1], 4.0f);
  EXPECT_FLOAT_EQ(b->grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b->grad()[1], 2.0f);
}

TEST(AutodiffTest, LinearMatchesManualMatMul) {
  VarPtr x = Param({2, 3}, {1, 0, -1, 2, 2, 2});
  VarPtr w = Param({2, 3}, {1, 2, 3, -1, 0, 1});
  VarPtr b = Param({2}, {0.5, -0.5});
  VarPtr y = o::Linear(x, w, b);
  // row0: [1*1+0*2-1*3+0.5, 1*-1+0*0-1*1-0.5] = [-1.5, -2.5]
  EXPECT_FLOAT_EQ(y->value().at(0, 0), -1.5f);
  EXPECT_FLOAT_EQ(y->value().at(0, 1), -2.5f);
}

TEST(AutodiffTest, SigmoidValueAndGrad) {
  VarPtr a = Param({1}, {0});
  VarPtr y = o::Sigmoid(a);
  EXPECT_FLOAT_EQ(y->value()[0], 0.5f);
  Backward(o::Sum(y));
  EXPECT_FLOAT_EQ(a->grad()[0], 0.25f);
}

TEST(AutodiffTest, TanhGrad) {
  VarPtr a = Param({1}, {0.5f});
  Backward(o::Sum(o::Tanh(a)));
  const float t = std::tanh(0.5f);
  EXPECT_NEAR(a->grad()[0], 1 - t * t, 1e-6);
}

TEST(AutodiffTest, LeakyReluNegativeSlope) {
  VarPtr a = Param({2}, {-2, 2});
  VarPtr y = o::LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(y->value()[0], -0.2f);
  EXPECT_FLOAT_EQ(y->value()[1], 2.0f);
  Backward(o::Sum(y));
  EXPECT_FLOAT_EQ(a->grad()[0], 0.1f);
  EXPECT_FLOAT_EQ(a->grad()[1], 1.0f);
}

TEST(AutodiffTest, SoftplusMatchesFormula) {
  VarPtr a = Param({2}, {-30.0f, 30.0f});
  VarPtr y = o::Softplus(a);
  EXPECT_NEAR(y->value()[0], 0.0f, 1e-6);
  EXPECT_NEAR(y->value()[1], 30.0f, 1e-5);
}

TEST(AutodiffTest, ConcatAndSliceRoundTrip) {
  VarPtr a = Param({2, 2}, {1, 2, 3, 4});
  VarPtr b = Param({2, 1}, {5, 6});
  VarPtr cat = o::ConcatCols({a, b});
  EXPECT_EQ(cat->value().dim(1), 3);
  EXPECT_FLOAT_EQ(cat->value().at(1, 2), 6.0f);
  VarPtr back = o::SliceCols(cat, 0, 2);
  EXPECT_FLOAT_EQ(back->value().at(1, 1), 4.0f);
  Backward(o::Sum(o::Mul(back, back)));
  EXPECT_FLOAT_EQ(a->grad()[3], 8.0f);  // d(x^2)=2x with x=4
  EXPECT_FLOAT_EQ(b->grad()[0], 0.0f);  // sliced out
}

TEST(AutodiffTest, EmbeddingLookupScattersGrad) {
  VarPtr table = Param({3, 2}, {1, 2, 3, 4, 5, 6});
  VarPtr e = o::EmbeddingLookup(table, {2, 0, 2});
  EXPECT_FLOAT_EQ(e->value().at(0, 1), 6.0f);
  Backward(o::Sum(e));
  EXPECT_FLOAT_EQ(table->grad()[0], 1.0f);  // row 0 once
  EXPECT_FLOAT_EQ(table->grad()[4], 2.0f);  // row 2 twice
  EXPECT_FLOAT_EQ(table->grad()[2], 0.0f);  // row 1 never
}

TEST(AutodiffTest, CrossEntropyMatchesManual) {
  VarPtr logits = Param({2, 3}, {1, 2, 3, 0, 0, 0});
  VarPtr loss = o::CrossEntropyLoss(logits, {2, 1}, {1.0f, 1.0f});
  const double p0 =
      std::exp(3.0) / (std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
  const double expected = -std::log(p0) - std::log(1.0 / 3.0);
  EXPECT_NEAR(loss->value()[0], expected, 1e-5);
}

TEST(AutodiffTest, CrossEntropyMaskedRowContributesNothing) {
  VarPtr logits = Param({2, 3}, {1, 2, 3, 9, 9, 9});
  VarPtr loss = o::CrossEntropyLoss(logits, {2, 1}, {1.0f, 0.0f});
  Backward(loss);
  for (int c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(logits->grad().at(1, c), 0.0f);
  }
}

TEST(AutodiffTest, SoftmaxGradSumsToZeroPerRow) {
  VarPtr logits = Param({1, 4}, {0.1f, -0.4f, 1.3f, 0.0f});
  VarPtr p = o::Softmax(logits);
  // Pick out one element by multiplying with a mask.
  Tensor mask = Tensor::Zeros({1, 4});
  mask[2] = 1.0f;
  Backward(o::WeightedSum(p, mask));
  double s = 0.0;
  for (int c = 0; c < 4; ++c) s += logits->grad().at(0, c);
  EXPECT_NEAR(s, 0.0, 1e-6);
}

TEST(AutodiffTest, KlStandardNormalZeroAtPrior) {
  VarPtr mu = Param({1, 3}, {0, 0, 0});
  VarPtr logvar = Param({1, 3}, {0, 0, 0});
  VarPtr kl = o::KlStandardNormal(mu, logvar);
  EXPECT_NEAR(kl->value()[0], 0.0f, 1e-7);
  Backward(kl);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(mu->grad()[i], 0.0f, 1e-7);
    EXPECT_NEAR(logvar->grad()[i], 0.0f, 1e-7);
  }
}

TEST(AutodiffTest, KlStandardNormalPositiveElsewhere) {
  VarPtr mu = Param({1, 2}, {1.0f, -1.0f});
  VarPtr logvar = Param({1, 2}, {0.5f, -0.5f});
  VarPtr kl = o::KlStandardNormal(mu, logvar);
  EXPECT_GT(kl->value()[0], 0.0f);
}

TEST(AutodiffTest, CategoricalKlZeroForUniformLogits) {
  VarPtr logits = Param({2, 4}, {1, 1, 1, 1, -3, -3, -3, -3});
  VarPtr kl = o::CategoricalKlToUniform(logits);
  EXPECT_NEAR(kl->value()[0], 0.0f, 1e-6);
}

TEST(AutodiffTest, CategoricalKlBoundedByLogK) {
  VarPtr logits = Param({1, 4}, {100, 0, 0, 0});
  VarPtr kl = o::CategoricalKlToUniform(logits);
  EXPECT_NEAR(kl->value()[0], std::log(4.0f), 1e-4);
}

TEST(AutodiffTest, GaussianReparameterizeStats) {
  util::Rng rng(42);
  VarPtr mu = Param({1000, 1}, std::vector<float>(1000, 2.0f));
  VarPtr logvar =
      Param({1000, 1}, std::vector<float>(1000, std::log(0.25f)));
  VarPtr z = o::GaussianReparameterize(mu, logvar, &rng);
  double mean = z->value().Mean();
  EXPECT_NEAR(mean, 2.0, 0.1);
  double var = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double d = z->value()[i] - mean;
    var += d * d;
  }
  EXPECT_NEAR(var / 1000.0, 0.25, 0.05);
}

TEST(AutodiffTest, GaussianLogProbMatchesFormula) {
  Tensor x = Tensor::FromVector({1, 1}, {1.0f});
  VarPtr mean = Param({1, 1}, {0.0f});
  VarPtr var = Param({1, 1}, {4.0f});
  Tensor w = Tensor::Full({1}, 1.0f);
  VarPtr lp = o::GaussianLogProb(x, mean, var, w);
  const double expected =
      -0.5 * (std::log(2 * M_PI) + std::log(4.0) + 1.0 / 4.0);
  EXPECT_NEAR(lp->value()[0], expected, 1e-5);
}

TEST(AutodiffTest, GumbelSoftmaxRowsAreDistributions) {
  util::Rng rng(7);
  VarPtr logits = Param({8, 5}, std::vector<float>(40, 0.0f));
  VarPtr y = o::GumbelSoftmaxSample(logits, 0.5f, &rng);
  for (int r = 0; r < 8; ++r) {
    double s = 0.0;
    for (int c = 0; c < 5; ++c) {
      EXPECT_GE(y->value().at(r, c), 0.0f);
      s += y->value().at(r, c);
    }
    EXPECT_NEAR(s, 1.0, 1e-4);
  }
}

TEST(AutodiffTest, GumbelSoftmaxLowTempNearOneHot) {
  util::Rng rng(7);
  const int rows = 64, cols = 6;
  VarPtr logits =
      Param({rows, cols}, std::vector<float>(rows * cols, 0.0f));
  VarPtr y = o::GumbelSoftmaxSample(logits, 0.05f, &rng);
  // At low temperature rows concentrate near a vertex of the simplex; a few
  // rows can still have two near-tied Gumbel draws, so assert on the mean.
  double mean_max = 0.0;
  for (int r = 0; r < rows; ++r) {
    float mx = 0.0f;
    for (int c = 0; c < cols; ++c) mx = std::max(mx, y->value().at(r, c));
    mean_max += mx;
  }
  EXPECT_GT(mean_max / rows, 0.9);
}

TEST(AutodiffTest, StopGradientBlocksFlow) {
  VarPtr a = Param({1}, {2});
  VarPtr y = o::Mul(o::StopGradient(a), a);
  Backward(o::Sum(y));
  EXPECT_FLOAT_EQ(a->grad()[0], 2.0f);  // only the non-stopped path
}

TEST(AutodiffTest, GlobalAvgPoolForwardBackward) {
  VarPtr x = Param({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  VarPtr y = o::GlobalAvgPool2d(x);
  EXPECT_FLOAT_EQ(y->value().at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y->value().at(0, 1), 25.0f);
  Backward(o::Sum(y));
  EXPECT_FLOAT_EQ(x->grad()[0], 0.25f);
}

TEST(AutodiffTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  VarPtr x = Param({1, 1, 2, 2}, {1, 2, 3, 4});
  VarPtr w = Param({1, 1, 1, 1}, {1});
  VarPtr y = o::Conv2d(x, w, nullptr, /*stride=*/1, /*pad=*/0);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y->value()[i], x->value()[i]);
}

TEST(AutodiffTest, Conv2dKnownSum) {
  // 2x2 all-ones kernel, stride 1, no pad: each output = sum of window.
  VarPtr x = Param({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  VarPtr w = Param({1, 1, 2, 2}, {1, 1, 1, 1});
  VarPtr y = o::Conv2d(x, w, nullptr, 1, 0);
  EXPECT_EQ(y->value().dim(2), 2);
  EXPECT_FLOAT_EQ(y->value().at4(0, 0, 0, 0), 12.0f);  // 1+2+4+5
  EXPECT_FLOAT_EQ(y->value().at4(0, 0, 1, 1), 28.0f);  // 5+6+8+9
}

TEST(AutodiffTest, Conv2dStridePadShape) {
  VarPtr x = MakeVar(Tensor::Zeros({2, 3, 8, 8}));
  util::Rng rng(1);
  VarPtr w = MakeVar(Tensor::Uniform({4, 3, 3, 3}, -1, 1, &rng), true);
  VarPtr y = o::Conv2d(x, w, nullptr, 2, 1);
  EXPECT_EQ(y->value().dim(0), 2);
  EXPECT_EQ(y->value().dim(1), 4);
  EXPECT_EQ(y->value().dim(2), 4);
  EXPECT_EQ(y->value().dim(3), 4);
}

TEST(AutodiffTest, BatchNormTrainingNormalizes) {
  util::Rng rng(2);
  VarPtr x = MakeVar(Tensor::Gaussian({4, 2, 3, 3}, 5.0f, 3.0f, &rng), true);
  VarPtr gamma = Param({2}, {1, 1});
  VarPtr beta = Param({2}, {0, 0});
  ops::BatchNormState state;
  state.running_mean = Tensor::Zeros({2});
  state.running_var = Tensor::Full({2}, 1.0f);
  VarPtr y = o::BatchNorm2d(x, gamma, beta, &state, /*training=*/true);
  // Per-channel mean ~0, var ~1.
  for (int c = 0; c < 2; ++c) {
    double m = 0.0, v = 0.0;
    int n = 0;
    for (int b = 0; b < 4; ++b) {
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          m += y->value().at4(b, c, i, j);
          ++n;
        }
      }
    }
    m /= n;
    for (int b = 0; b < 4; ++b) {
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          const double d = y->value().at4(b, c, i, j) - m;
          v += d * d;
        }
      }
    }
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v / n, 1.0, 1e-2);
    // Running stats moved toward batch stats.
    EXPECT_GT(state.running_mean[c], 0.0f);
  }
}

TEST(AutodiffTest, AvgPool2dHalvesSpatial) {
  VarPtr x = Param({1, 1, 2, 2}, {1, 2, 3, 4});
  VarPtr y = o::AvgPool2d(x, 2);
  EXPECT_EQ(y->value().dim(2), 1);
  EXPECT_FLOAT_EQ(y->value().at4(0, 0, 0, 0), 2.5f);
}

TEST(AutodiffTest, BackwardOnConstantIsNoop) {
  VarPtr a = Constant(Tensor::FromVector({2}, {1, 2}));
  VarPtr s = o::Sum(a);
  EXPECT_FALSE(s->requires_grad());
  Backward(s);  // should not crash
}

TEST(AutodiffTest, DeepChainGradient) {
  // y = tanh(tanh(...tanh(x))) 50 deep; gradient is product of sech^2 terms.
  VarPtr x = Param({1}, {0.1f});
  VarPtr y = x;
  for (int i = 0; i < 50; ++i) y = o::Tanh(y);
  Backward(o::Sum(y));
  EXPECT_TRUE(std::isfinite(x->grad()[0]));
  EXPECT_GT(x->grad()[0], 0.0f);
  EXPECT_LT(x->grad()[0], 1.0f);
}

}  // namespace
}  // namespace nn
}  // namespace deepst
