// ServingContext coverage: query validation (nothing malformed reaches the
// model's DEEPST_CHECK abort sites), graceful degradation (traffic prior
// mean, uniform proxy, origin snapping, deadline budget) with bitwise
// determinism, strict-mode refusals, and the session-pool failure paths
// (injected query faults surface as Status and never leak pool slots).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "baselines/neural_router.h"
#include "core/deepst_model.h"
#include "core/serving.h"
#include "eval/world.h"
#include "util/fault_injector.h"

namespace deepst {
namespace core {
namespace {

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "serving-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

DeepSTConfig SmallConfig() {
  DeepSTConfig cfg;
  cfg.segment_embedding_dim = 12;
  cfg.gru_hidden = 24;
  cfg.gru_layers = 2;
  cfg.dest_dim = 12;
  cfg.traffic_dim = 8;
  cfg.num_proxies = 8;
  cfg.cnn_channels = 6;
  cfg.mlp_hidden = 24;
  return cfg;
}

// Shared model (untrained weights are fine: serving semantics do not depend
// on parameter quality, and construction dominates test time).
DeepSTModel& TestModel() {
  static DeepSTModel* model =
      new DeepSTModel(TestWorld().net(), baselines::DeepStConfigOf(SmallConfig()),
                      TestWorld().traffic_cache());
  return *model;
}

// A test trip whose query has live traffic coverage, so the undegraded path
// is actually exercised.
const traj::TripRecord& CoveredTrip() {
  static const traj::TripRecord* covered = [] {
    for (const auto* rec : TestWorld().split().test) {
      if (rec->trip.route.size() < 3) continue;
      const RouteQuery q = eval::QueryFor(rec->trip);
      if (TestWorld().traffic_cache()->HasObservations(q.start_time_s)) {
        return rec;
      }
    }
    return static_cast<const traj::TripRecord*>(nullptr);
  }();
  EXPECT_NE(covered, nullptr) << "no test trip with traffic coverage";
  return *covered;
}

class ServingTest : public testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Instance().Reset(); }
};

TEST_F(ServingTest, HappyPathStrictUndegradedAndDeterministic) {
  ServingConfig scfg;
  scfg.strict = true;
  ServingContext serving(&TestModel(), &TestWorld().index(), scfg);
  const RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  auto first = serving.Predict(query);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().degraded);
  EXPECT_EQ(first.value().degradations, kDegradationNone);
  EXPECT_FALSE(first.value().route.empty());
  EXPECT_TRUE(TestWorld().net().ValidateRoute(first.value().route).ok());
  // Same query, same seed: the served route is bitwise reproducible.
  auto second = serving.Predict(query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().route, second.value().route);
}

TEST_F(ServingTest, MalformedQueriesAreInvalidNotFatal) {
  ServingContext serving(&TestModel(), &TestWorld().index());
  const RouteQuery base = eval::QueryFor(CoveredTrip().trip);
  const double kNan = std::numeric_limits<double>::quiet_NaN();

  RouteQuery bad = base;
  bad.start_time_s = kNan;
  EXPECT_EQ(serving.Predict(bad).status().code(),
            util::Status::Code::kInvalidArgument);
  bad = base;
  bad.start_time_s = -5.0;
  EXPECT_EQ(serving.Predict(bad).status().code(),
            util::Status::Code::kInvalidArgument);
  bad = base;
  bad.destination.x = kNan;
  EXPECT_EQ(serving.Predict(bad).status().code(),
            util::Status::Code::kInvalidArgument);
  bad = base;
  bad.origin = TestWorld().net().num_segments() + 17;
  EXPECT_EQ(serving.Predict(bad).status().code(),
            util::Status::Code::kInvalidArgument);
  bad = base;
  bad.origin = roadnet::kInvalidSegment;  // no origin at all
  EXPECT_FALSE(serving.Predict(bad).ok());
}

TEST_F(ServingTest, OffNetworkOriginSnapsViaSpatialIndex) {
  ServingContext serving(&TestModel(), &TestWorld().index());
  RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  const roadnet::SegmentId expected = query.origin;
  // Re-pose the query as raw coordinates just off the origin segment.
  geo::Point near = TestWorld().net().SegmentMidpoint(expected);
  near.y += 3.0;
  query.origin = roadnet::kInvalidSegment;
  query.has_origin_point = true;
  query.origin_point = near;
  auto result = serving.Predict(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degradations & kDegradationSnappedOrigin);
  EXPECT_TRUE(result.value().degraded);
  EXPECT_FALSE(result.value().route.empty());

  // Strict mode refuses to snap.
  ServingConfig strict_cfg;
  strict_cfg.strict = true;
  ServingContext strict(&TestModel(), &TestWorld().index(), strict_cfg);
  EXPECT_EQ(strict.Predict(query).status().code(),
            util::Status::Code::kFailedPrecondition);

  // A finite point far beyond the snap radius is NotFound.
  query.origin_point = geo::Point{1e7, 1e7};
  EXPECT_EQ(serving.Predict(query).status().code(),
            util::Status::Code::kNotFound);
  // A non-finite point is an invalid query.
  query.origin_point = geo::Point{std::numeric_limits<double>::quiet_NaN(), 0};
  EXPECT_EQ(serving.Predict(query).status().code(),
            util::Status::Code::kInvalidArgument);
}

TEST_F(ServingTest, FarDestinationFallsBackToUniformProxy) {
  ServingContext serving(&TestModel(), &TestWorld().index());
  RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  query.destination = geo::Point{1e6, -1e6};
  auto first = serving.Predict(query);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first.value().degradations & kDegradationUniformProxy);
  EXPECT_TRUE(first.value().degraded);
  EXPECT_FALSE(first.value().route.empty());
  EXPECT_TRUE(TestWorld().net().ValidateRoute(first.value().route).ok());
  // The uniform-proxy fallback is deterministic: bitwise identical routes.
  auto second = serving.Predict(query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().route, second.value().route);

  ServingConfig strict_cfg;
  strict_cfg.strict = true;
  ServingContext strict(&TestModel(), &TestWorld().index(), strict_cfg);
  EXPECT_EQ(strict.Predict(query).status().code(),
            util::Status::Code::kFailedPrecondition);
}

// The degradation parity claim from docs/robustness.md: serving a query with
// no usable traffic snapshot equals running the model with the traffic
// context fixed at the prior mean -- which in turn equals hand-zeroing the
// traffic terms of a normally built context. All three bitwise.
TEST_F(ServingTest, MissingTrafficMatchesPriorMeanContextBitwise) {
  DeepSTModel& model = TestModel();
  ServingContext serving(&model, &TestWorld().index());
  RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  // Far past the last observation: missing AND stale.
  query.start_time_s =
      TestWorld().traffic_cache()->latest_observation_time() + 90000.0;

  auto served = serving.Predict(query);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(served.value().degradations & kDegradationTrafficPriorMean);

  // Reference 1: the degraded-context API driven directly.
  ContextOptions options;
  options.traffic_prior_mean = true;
  util::Rng rng1(serving.config().rng_seed);
  PredictionContext degraded = model.MakeContext(query, &rng1, options);
  for (int64_t i = 0; i < degraded.traffic_repr.numel(); ++i) {
    ASSERT_EQ(degraded.traffic_repr[i], 0.0f);
  }
  for (int64_t i = 0; i < degraded.traffic_term.numel(); ++i) {
    ASSERT_EQ(degraded.traffic_term[i], 0.0f);
  }
  const traj::Route direct = model.PredictRoute(degraded, query.origin, &rng1);
  EXPECT_EQ(served.value().route, direct);

  // Reference 2: a normally built context with the traffic terms zeroed by
  // hand scores routes identically to the degraded context.
  util::Rng rng2(serving.config().rng_seed);
  PredictionContext zeroed = model.MakeContext(query, &rng2);
  zeroed.traffic_repr = nn::Tensor::Zeros(zeroed.traffic_repr.shape());
  zeroed.traffic_term = nn::Tensor::Zeros(zeroed.traffic_term.shape());
  const traj::Route& route = CoveredTrip().trip.route;
  EXPECT_EQ(model.ScoreRoute(degraded, route), model.ScoreRoute(zeroed, route));

  // Scoring through the serving layer agrees with the degraded context.
  auto scored = serving.ScoreRoute(query, route);
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  EXPECT_TRUE(scored.value().degradations & kDegradationTrafficPriorMean);
  EXPECT_EQ(scored.value().score, model.ScoreRoute(degraded, route));

  // Strict mode refuses the fallback.
  ServingConfig strict_cfg;
  strict_cfg.strict = true;
  ServingContext strict(&model, &TestWorld().index(), strict_cfg);
  EXPECT_EQ(strict.Predict(query).status().code(),
            util::Status::Code::kFailedPrecondition);
}

TEST_F(ServingTest, DeadlineBudgetReturnsValidRouteWithFlag) {
  // 10us budget: one beam expansion step costs more than this on any
  // machine, so the first between-steps deadline check fires.
  ServingConfig scfg;
  scfg.deadline_ms = 0.01;
  ServingContext serving(&TestModel(), &TestWorld().index(), scfg);
  const RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  auto result = serving.Predict(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Best-so-far under budget is still a well-formed route from the origin.
  EXPECT_FALSE(result.value().route.empty());
  EXPECT_EQ(result.value().route.front(), query.origin);
  EXPECT_TRUE(TestWorld().net().ValidateRoute(result.value().route).ok());
  EXPECT_TRUE(result.value().degradations & kDegradationDeadlineBudget);
  EXPECT_TRUE(result.value().degraded);

  // The budget is explicit per-query configuration, so strict mode honors
  // it rather than refusing (unlike the model-quality fallbacks).
  ServingConfig strict_cfg = scfg;
  strict_cfg.strict = true;
  ServingContext strict(&TestModel(), &TestWorld().index(), strict_cfg);
  auto strict_result = strict.Predict(query);
  ASSERT_TRUE(strict_result.ok()) << strict_result.status().ToString();
  EXPECT_TRUE(strict_result.value().degradations & kDegradationDeadlineBudget);
}

TEST_F(ServingTest, ScoreRouteValidatesInput) {
  ServingContext serving(&TestModel(), &TestWorld().index());
  const RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  EXPECT_EQ(serving.ScoreRoute(query, {}).status().code(),
            util::Status::Code::kInvalidArgument);
  EXPECT_EQ(serving
                .ScoreRoute(query, {0, TestWorld().net().num_segments() + 5})
                .status()
                .code(),
            util::Status::Code::kInvalidArgument);
  auto ok = serving.ScoreRoute(query, CoveredTrip().trip.route);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(std::isfinite(ok.value().score));

  // Scoring works without an origin: it defaults to the route head.
  RouteQuery no_origin = query;
  no_origin.origin = roadnet::kInvalidSegment;
  auto defaulted = serving.ScoreRoute(no_origin, CoveredTrip().trip.route);
  ASSERT_TRUE(defaulted.ok()) << defaulted.status().ToString();
  EXPECT_EQ(defaulted.value().score, ok.value().score);
}

TEST_F(ServingTest, DegradationsToStringNamesEveryAxis) {
  EXPECT_EQ(DegradationsToString(kDegradationNone), "none");
  EXPECT_EQ(DegradationsToString(kDegradationTrafficPriorMean),
            "traffic_prior_mean");
  EXPECT_EQ(DegradationsToString(static_cast<uint8_t>(
                kDegradationUniformProxy | kDegradationSnappedOrigin |
                kDegradationDeadlineBudget)),
            "uniform_proxy+snapped_origin+deadline_budget");
}

TEST_F(ServingTest, InjectedQueryFaultSurfacesAsStatus) {
  ServingContext serving(&TestModel(), &TestWorld().index());
  const RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  util::FaultInjector::Instance().Arm("infer.query",
                                      util::FaultKind::kIoError);
  auto failed = serving.Predict(query);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), util::Status::Code::kInternal);
  EXPECT_NE(failed.status().ToString().find("injected"), std::string::npos);
  // The slot the failing query leased was returned: the next query works.
  util::FaultInjector::Instance().Reset();
  EXPECT_TRUE(serving.Predict(query).ok());
}

// Regression for the pool-slot leak: many threads hitting injected query
// failures concurrently must all get Status back, and the pool must end no
// larger than the number of concurrent queries (leaked slots would show up
// as a session count far above the thread count, or as a deadlock once the
// pool drained). Run under TSan via tools/check_sanitize.sh.
TEST_F(ServingTest, ConcurrentPoolFailuresDoNotLeakSessions) {
  DeepSTModel& model = TestModel();
  ServingContext serving(&model, &TestWorld().index());
  const RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 4;
  util::FaultInjector::Instance().Arm("infer.query",
                                      util::FaultKind::kIoError,
                                      /*after=*/0, /*count=*/-1);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto result = serving.Predict(query);
        if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), kThreads * kQueriesPerThread);
  EXPECT_LE(model.num_pooled_sessions(), static_cast<size_t>(kThreads));

  // After disarming, the same context serves successfully from every thread.
  util::FaultInjector::Instance().Reset();
  std::atomic<int> successes{0};
  std::vector<std::thread> healthy;
  healthy.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    healthy.emplace_back([&] {
      auto result = serving.Predict(query);
      if (result.ok() && !result.value().route.empty()) {
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : healthy) t.join();
  EXPECT_EQ(successes.load(), kThreads);
  EXPECT_LE(model.num_pooled_sessions(), static_cast<size_t>(2 * kThreads));
}

// Cross-client batch execution must be bitwise identical, request by
// request, to serving the same queries one at a time -- including requests
// that degrade (uniform proxy, stale traffic) and score requests.
TEST_F(ServingTest, ExecuteBatchMatchesSingleQueryBitwise) {
  ServingContext serving(&TestModel(), &TestWorld().index());
  const RouteQuery base = eval::QueryFor(CoveredTrip().trip);

  RouteQuery far_dest = base;
  far_dest.destination = geo::Point{1e6, -1e6};
  RouteQuery stale = base;
  stale.start_time_s =
      TestWorld().traffic_cache()->latest_observation_time() + 90000.0;

  std::vector<ServingRequest> requests(4);
  requests[0].query = base;
  requests[1].query = far_dest;
  requests[2].kind = ServingRequest::Kind::kScore;
  requests[2].query = base;
  requests[2].routes = {CoveredTrip().trip.route, CoveredTrip().trip.route};
  requests[3].query = stale;
  auto batched = serving.ExecuteBatch(&requests);
  ASSERT_EQ(batched.size(), 4u);
  for (const auto& r : batched) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  auto direct0 = serving.Predict(base);
  auto direct1 = serving.Predict(far_dest);
  auto direct2 = serving.ScoreRoute(base, CoveredTrip().trip.route);
  auto direct3 = serving.Predict(stale);
  ASSERT_TRUE(direct0.ok() && direct1.ok() && direct2.ok() && direct3.ok());
  EXPECT_EQ(batched[0].value().route, direct0.value().route);
  EXPECT_EQ(batched[0].value().degradations, kDegradationNone);
  EXPECT_EQ(batched[1].value().route, direct1.value().route);
  EXPECT_TRUE(batched[1].value().degradations & kDegradationUniformProxy);
  ASSERT_EQ(batched[2].value().scores.size(), 2u);
  EXPECT_EQ(batched[2].value().scores[0], direct2.value().score);
  EXPECT_EQ(batched[2].value().scores[1], direct2.value().score);
  EXPECT_EQ(batched[3].value().route, direct3.value().route);
  EXPECT_TRUE(batched[3].value().degradations & kDegradationTrafficPriorMean);
}

// One invalid request in a coalesced batch fails alone; its co-riders are
// untouched. (The injected-exception flavor of isolation is covered at the
// server layer in serve_test.cc.)
TEST_F(ServingTest, ExecuteBatchIsolatesInvalidRequests) {
  ServingContext serving(&TestModel(), &TestWorld().index());
  const RouteQuery base = eval::QueryFor(CoveredTrip().trip);
  std::vector<ServingRequest> requests(3);
  requests[0].query = base;
  requests[1].query = base;
  requests[1].query.origin = TestWorld().net().num_segments() + 99;
  requests[2].query = base;
  auto results = serving.ExecuteBatch(&requests);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_EQ(results[1].status().code(),
            util::Status::Code::kInvalidArgument);
  ASSERT_TRUE(results[2].ok()) << results[2].status().ToString();
  EXPECT_EQ(results[0].value().route, results[2].value().route);
}

// Concurrent queries tripping *different* degradation axes: every result
// carries exactly its own axis bits (no cross-query bleed through shared
// state), and the cumulative per-axis totals are exact -- no lost counts
// under contention. Run under TSan via tools/check_sanitize.sh.
TEST_F(ServingTest, ConcurrentDegradationAccountingIsExactAndIsolated) {
  DeepSTModel& model = TestModel();
  ServingContext serving(&model, &TestWorld().index());
  const RouteQuery base = eval::QueryFor(CoveredTrip().trip);
  constexpr int kPerThread = 6;

  RouteQuery clean = base;
  RouteQuery proxy = base;
  proxy.destination = geo::Point{1e6, -1e6};
  RouteQuery stale = base;
  stale.start_time_s =
      TestWorld().traffic_cache()->latest_observation_time() + 90000.0;
  RouteQuery snapped = base;
  geo::Point near = TestWorld().net().SegmentMidpoint(base.origin);
  near.y += 3.0;
  snapped.origin = roadnet::kInvalidSegment;
  snapped.has_origin_point = true;
  snapped.origin_point = near;

  struct Axis {
    RouteQuery query;
    uint8_t expected;
  };
  const std::vector<Axis> axes = {
      {clean, kDegradationNone},
      {proxy, kDegradationUniformProxy},
      {stale, kDegradationTrafficPriorMean},
      {snapped, kDegradationSnappedOrigin},
  };
  std::atomic<int> bitmask_violations{0};
  std::vector<std::thread> threads;
  threads.reserve(axes.size());
  for (const Axis& axis : axes) {
    threads.emplace_back([&serving, &axis, &bitmask_violations] {
      for (int i = 0; i < kPerThread; ++i) {
        auto result = serving.Predict(axis.query);
        if (!result.ok() ||
            result.value().degradations != axis.expected) {
          bitmask_violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bitmask_violations.load(), 0);

  const ServingStats stats = serving.stats();
  EXPECT_EQ(stats.queries, static_cast<int64_t>(axes.size()) * kPerThread);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.degraded, 3 * kPerThread);  // every axis but `clean`
  EXPECT_EQ(stats.uniform_proxy, kPerThread);
  EXPECT_EQ(stats.traffic_prior_mean, kPerThread);
  EXPECT_EQ(stats.snapped_origin, kPerThread);
  EXPECT_EQ(stats.deadline_budget, 0);
}

}  // namespace
}  // namespace core
}  // namespace deepst
