#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "roadnet/grid_city.h"
#include "traffic/congestion_field.h"
#include "traffic/snapshot.h"

namespace deepst {
namespace traffic {
namespace {

std::unique_ptr<roadnet::RoadNetwork> SmallCity() {
  roadnet::GridCityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.removal_prob = 0.0;
  cfg.oneway_prob = 0.0;
  cfg.seed = 5;
  return roadnet::BuildGridCity(cfg);
}

TEST(CongestionFieldTest, FactorAtLeastOne) {
  auto net = SmallCity();
  CongestionField field(*net, {});
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<roadnet::SegmentId>(
        rng.UniformInt(static_cast<uint64_t>(net->num_segments())));
    const double t = rng.Uniform(0.0, 10 * kSecondsPerDay);
    EXPECT_GE(field.CongestionFactor(s, t), 1.0);
  }
}

TEST(CongestionFieldTest, RushHourSlowerThanNight) {
  auto net = SmallCity();
  CongestionConfig cfg;
  cfg.noise_level = 0.0;
  cfg.incident_prob = 0.0;
  CongestionField field(*net, cfg);
  // Average factor over all segments at 8am vs 3am, same day.
  double rush = 0.0, night = 0.0;
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    rush += field.CongestionFactor(s, 8 * 3600.0);
    night += field.CongestionFactor(s, 3 * 3600.0);
  }
  EXPECT_GT(rush, night * 1.1);
}

TEST(CongestionFieldTest, RushLevelProfileShape) {
  auto net = SmallCity();
  CongestionField field(*net, {});
  EXPECT_GT(field.RushLevel(8 * 3600.0), field.RushLevel(12 * 3600.0));
  EXPECT_GT(field.RushLevel(18 * 3600.0), field.RushLevel(3 * 3600.0));
  EXPECT_NEAR(field.RushLevel(8 * 3600.0), 1.0, 0.05);
}

TEST(CongestionFieldTest, HotspotsSlowerThanPeriphery) {
  auto net = SmallCity();
  CongestionConfig cfg;
  cfg.noise_level = 0.0;
  cfg.incident_prob = 0.0;
  cfg.num_hotspots = 1;
  CongestionField field(*net, cfg);
  const geo::Point hub = field.hotspot_centers()[0];
  // Closest and farthest segment from the hotspot.
  roadnet::SegmentId close = 0, far = 0;
  double dmin = 1e18, dmax = -1;
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    const double d = net->SegmentMidpoint(s).DistanceTo(hub);
    if (d < dmin) {
      dmin = d;
      close = s;
    }
    if (d > dmax) {
      dmax = d;
      far = s;
    }
  }
  const double t = 8 * 3600.0;
  EXPECT_GT(field.CongestionFactor(close, t),
            field.CongestionFactor(far, t) + 0.2);
}

TEST(CongestionFieldTest, VariesAcrossDaysAtSameTimeOfDay) {
  auto net = SmallCity();
  CongestionConfig cfg;
  cfg.noise_level = 0.0;
  cfg.incident_prob = 0.0;
  CongestionField field(*net, cfg);
  // Same 8am slot on different days must differ somewhere (real-time-ness).
  double max_diff = 0.0;
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    const double a = field.CongestionFactor(s, 8 * 3600.0);
    const double b =
        field.CongestionFactor(s, kSecondsPerDay * 3 + 8 * 3600.0);
    max_diff = std::max(max_diff, std::fabs(a - b));
  }
  EXPECT_GT(max_diff, 0.05);
}

TEST(CongestionFieldTest, SpeedAndTravelTimeConsistent) {
  auto net = SmallCity();
  CongestionField field(*net, {});
  const roadnet::SegmentId s = 3;
  const double t = 9 * 3600.0;
  EXPECT_NEAR(field.TravelTime(s, t),
              net->segment(s).length_m / field.SpeedAt(s, t), 1e-9);
  EXPECT_LE(field.SpeedAt(s, t), net->segment(s).speed_limit_mps + 1e-9);
}

TEST(CongestionFieldTest, DeterministicForSeed) {
  auto net = SmallCity();
  CongestionField a(*net, {});
  CongestionField b(*net, {});
  EXPECT_EQ(a.CongestionFactor(5, 12345.0), b.CongestionFactor(5, 12345.0));
}

TEST(TrafficTensorBuilderTest, ShapeAndEmpty) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({1000, 1000});
  geo::GridSpec grid(box, 250.0);
  TrafficTensorBuilder builder(grid);
  nn::Tensor t = builder.Build({});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
}

TEST(TrafficTensorBuilderTest, AveragesSpeedsPerCell) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({400, 400});
  geo::GridSpec grid(box, 200.0);
  TrafficTensorBuilder builder(grid, /*speed_norm_mps=*/10.0);
  std::vector<SpeedObservation> obs = {
      {{50, 50}, 0.0, 5.0},   // cell (0,0)
      {{60, 40}, 1.0, 15.0},  // cell (0,0)
      {{350, 350}, 2.0, 10.0}  // cell (1,1)
  };
  nn::Tensor t = builder.Build(obs);
  const int cols = grid.cols();
  // Cell (0,0): avg 10 m/s -> 1.0 normalized.
  EXPECT_NEAR(t[0 * cols + 0], 1.0f, 1e-5);
  // Cell (1,1): avg 10 -> 1.0.
  EXPECT_NEAR(t[1 * cols + 1], 1.0f, 1e-5);
  // Count channel nonzero only where observed.
  EXPECT_GT(t[grid.num_cells() + 0], 0.0f);
  EXPECT_FLOAT_EQ(t[grid.num_cells() + 1], 0.0f);  // cell (0,1) empty
}

TEST(TrafficTensorBuilderTest, SpeedChannelSaturates) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({100, 100});
  geo::GridSpec grid(box, 100.0);
  TrafficTensorBuilder builder(grid, 10.0);
  nn::Tensor t = builder.Build({{{50, 50}, 0.0, 1000.0}});
  EXPECT_LE(t[0], 2.0f);
}

TEST(TrafficTensorCacheTest, SlotSharingAndWindow) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({400, 400});
  geo::GridSpec grid(box, 200.0);
  TrafficTensorCache cache(grid, /*slot_seconds=*/1200.0,
                           /*window_seconds=*/1800.0);
  // Observation at t=500 in cell (0,0).
  cache.AddObservations({{{50, 50}, 500.0, 10.0}});
  // Slot of t=1500 is [1200,2400); its window is [-600,1200) -> includes the
  // observation.
  const nn::Tensor& t1 = cache.TensorForTime(1500.0);
  EXPECT_GT(t1.Sum(), 0.0);
  // Two times in the same slot share the same tensor object.
  const nn::Tensor& t2 = cache.TensorForTime(2000.0);
  EXPECT_EQ(&t1, &t2);
  // A much later slot has an empty window.
  const nn::Tensor& t3 = cache.TensorForTime(10 * 3600.0);
  EXPECT_DOUBLE_EQ(t3.Sum(), 0.0);
}

TEST(TrafficTensorCacheTest, CloneBitIdenticalAndIndependent) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({800, 800});
  geo::GridSpec grid(box, 200.0);
  TrafficTensorCache cache(grid, 1200.0, 1800.0);
  cache.AddObservations({{{50, 50}, 500.0, 10.0},
                         {{350, 650}, 900.0, 4.0},
                         {{700, 100}, 2500.0, 12.0}});
  auto clone = cache.Clone();
  EXPECT_EQ(clone->latest_observation_time(),
            cache.latest_observation_time());
  for (double t : {1500.0, 3600.0, 7200.0}) {
    const nn::Tensor& a = cache.TensorForTime(t);
    const nn::Tensor& b = clone->TensorForTime(t);
    ASSERT_EQ(a.numel(), b.numel());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             static_cast<size_t>(a.numel()) * sizeof(float)));
  }
  // Mutating the clone must not leak into the source: a new observation in
  // a slot the source has not memoized yet only shows up in the clone.
  clone->AddObservations({{{450, 450}, 5000.0, 2.0}});
  EXPECT_GT(clone->TensorForTime(6500.0).Sum(), 0.0);
  EXPECT_DOUBLE_EQ(cache.TensorForTime(6500.0).Sum(), 0.0);
}

// TSan regression for the published-snapshot reader contract: once
// ingestion is done, any number of threads may call the read API
// concurrently -- including racing to lazily build the SAME slot tensor
// for the first time. Run under tools/check_tsan.sh.
TEST(TrafficTensorCacheTest, ConcurrentReadersAreSafe) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({1000, 1000});
  geo::GridSpec grid(box, 125.0);
  TrafficTensorCache cache(grid, 600.0, 1200.0);
  std::vector<SpeedObservation> obs;
  for (int i = 0; i < 500; ++i) {
    const double t = 37.0 * i;
    obs.push_back({{(i * 73) % 1000 + 0.5, (i * 131) % 1000 + 0.5}, t,
                   3.0 + (i % 11)});
  }
  cache.AddObservations(obs);
  constexpr int kThreads = 8;
  std::vector<std::thread> readers;
  std::vector<double> sums(kThreads, 0.0);
  for (int w = 0; w < kThreads; ++w) {
    readers.emplace_back([&cache, &sums, w] {
      double acc = 0.0;
      for (int round = 0; round < 20; ++round) {
        // Every thread walks the same slot sequence, so first builds race.
        for (double t = 700.0; t < 20000.0; t += 600.0) {
          acc += cache.TensorForTime(t).Sum();
          acc += cache.HasObservations(t) ? 1.0 : 0.0;
        }
        acc += cache.latest_observation_time();
      }
      sums[static_cast<size_t>(w)] = acc;
    });
  }
  for (auto& r : readers) r.join();
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_DOUBLE_EQ(sums[0], sums[static_cast<size_t>(w)]);
  }
}

TEST(TrafficTensorCacheTest, ObservationInOwnSlotExcluded) {
  // The window is [slot_start - w, slot_start): observations *inside* the
  // current slot must not leak into its tensor.
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({100, 100});
  geo::GridSpec grid(box, 100.0);
  TrafficTensorCache cache(grid, 1200.0, 1800.0);
  cache.AddObservations({{{50, 50}, 1300.0, 8.0}});
  const nn::Tensor& t = cache.TensorForTime(1500.0);  // same slot [1200,2400)
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
}

}  // namespace
}  // namespace traffic
}  // namespace deepst
