#include <gtest/gtest.h>

#include <cmath>

#include "roadnet/grid_city.h"
#include "traffic/congestion_field.h"
#include "traffic/snapshot.h"

namespace deepst {
namespace traffic {
namespace {

std::unique_ptr<roadnet::RoadNetwork> SmallCity() {
  roadnet::GridCityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.removal_prob = 0.0;
  cfg.oneway_prob = 0.0;
  cfg.seed = 5;
  return roadnet::BuildGridCity(cfg);
}

TEST(CongestionFieldTest, FactorAtLeastOne) {
  auto net = SmallCity();
  CongestionField field(*net, {});
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<roadnet::SegmentId>(
        rng.UniformInt(static_cast<uint64_t>(net->num_segments())));
    const double t = rng.Uniform(0.0, 10 * kSecondsPerDay);
    EXPECT_GE(field.CongestionFactor(s, t), 1.0);
  }
}

TEST(CongestionFieldTest, RushHourSlowerThanNight) {
  auto net = SmallCity();
  CongestionConfig cfg;
  cfg.noise_level = 0.0;
  cfg.incident_prob = 0.0;
  CongestionField field(*net, cfg);
  // Average factor over all segments at 8am vs 3am, same day.
  double rush = 0.0, night = 0.0;
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    rush += field.CongestionFactor(s, 8 * 3600.0);
    night += field.CongestionFactor(s, 3 * 3600.0);
  }
  EXPECT_GT(rush, night * 1.1);
}

TEST(CongestionFieldTest, RushLevelProfileShape) {
  auto net = SmallCity();
  CongestionField field(*net, {});
  EXPECT_GT(field.RushLevel(8 * 3600.0), field.RushLevel(12 * 3600.0));
  EXPECT_GT(field.RushLevel(18 * 3600.0), field.RushLevel(3 * 3600.0));
  EXPECT_NEAR(field.RushLevel(8 * 3600.0), 1.0, 0.05);
}

TEST(CongestionFieldTest, HotspotsSlowerThanPeriphery) {
  auto net = SmallCity();
  CongestionConfig cfg;
  cfg.noise_level = 0.0;
  cfg.incident_prob = 0.0;
  cfg.num_hotspots = 1;
  CongestionField field(*net, cfg);
  const geo::Point hub = field.hotspot_centers()[0];
  // Closest and farthest segment from the hotspot.
  roadnet::SegmentId close = 0, far = 0;
  double dmin = 1e18, dmax = -1;
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    const double d = net->SegmentMidpoint(s).DistanceTo(hub);
    if (d < dmin) {
      dmin = d;
      close = s;
    }
    if (d > dmax) {
      dmax = d;
      far = s;
    }
  }
  const double t = 8 * 3600.0;
  EXPECT_GT(field.CongestionFactor(close, t),
            field.CongestionFactor(far, t) + 0.2);
}

TEST(CongestionFieldTest, VariesAcrossDaysAtSameTimeOfDay) {
  auto net = SmallCity();
  CongestionConfig cfg;
  cfg.noise_level = 0.0;
  cfg.incident_prob = 0.0;
  CongestionField field(*net, cfg);
  // Same 8am slot on different days must differ somewhere (real-time-ness).
  double max_diff = 0.0;
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    const double a = field.CongestionFactor(s, 8 * 3600.0);
    const double b =
        field.CongestionFactor(s, kSecondsPerDay * 3 + 8 * 3600.0);
    max_diff = std::max(max_diff, std::fabs(a - b));
  }
  EXPECT_GT(max_diff, 0.05);
}

TEST(CongestionFieldTest, SpeedAndTravelTimeConsistent) {
  auto net = SmallCity();
  CongestionField field(*net, {});
  const roadnet::SegmentId s = 3;
  const double t = 9 * 3600.0;
  EXPECT_NEAR(field.TravelTime(s, t),
              net->segment(s).length_m / field.SpeedAt(s, t), 1e-9);
  EXPECT_LE(field.SpeedAt(s, t), net->segment(s).speed_limit_mps + 1e-9);
}

TEST(CongestionFieldTest, DeterministicForSeed) {
  auto net = SmallCity();
  CongestionField a(*net, {});
  CongestionField b(*net, {});
  EXPECT_EQ(a.CongestionFactor(5, 12345.0), b.CongestionFactor(5, 12345.0));
}

TEST(TrafficTensorBuilderTest, ShapeAndEmpty) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({1000, 1000});
  geo::GridSpec grid(box, 250.0);
  TrafficTensorBuilder builder(grid);
  nn::Tensor t = builder.Build({});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
}

TEST(TrafficTensorBuilderTest, AveragesSpeedsPerCell) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({400, 400});
  geo::GridSpec grid(box, 200.0);
  TrafficTensorBuilder builder(grid, /*speed_norm_mps=*/10.0);
  std::vector<SpeedObservation> obs = {
      {{50, 50}, 0.0, 5.0},   // cell (0,0)
      {{60, 40}, 1.0, 15.0},  // cell (0,0)
      {{350, 350}, 2.0, 10.0}  // cell (1,1)
  };
  nn::Tensor t = builder.Build(obs);
  const int cols = grid.cols();
  // Cell (0,0): avg 10 m/s -> 1.0 normalized.
  EXPECT_NEAR(t[0 * cols + 0], 1.0f, 1e-5);
  // Cell (1,1): avg 10 -> 1.0.
  EXPECT_NEAR(t[1 * cols + 1], 1.0f, 1e-5);
  // Count channel nonzero only where observed.
  EXPECT_GT(t[grid.num_cells() + 0], 0.0f);
  EXPECT_FLOAT_EQ(t[grid.num_cells() + 1], 0.0f);  // cell (0,1) empty
}

TEST(TrafficTensorBuilderTest, SpeedChannelSaturates) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({100, 100});
  geo::GridSpec grid(box, 100.0);
  TrafficTensorBuilder builder(grid, 10.0);
  nn::Tensor t = builder.Build({{{50, 50}, 0.0, 1000.0}});
  EXPECT_LE(t[0], 2.0f);
}

TEST(TrafficTensorCacheTest, SlotSharingAndWindow) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({400, 400});
  geo::GridSpec grid(box, 200.0);
  TrafficTensorCache cache(grid, /*slot_seconds=*/1200.0,
                           /*window_seconds=*/1800.0);
  // Observation at t=500 in cell (0,0).
  cache.AddObservations({{{50, 50}, 500.0, 10.0}});
  // Slot of t=1500 is [1200,2400); its window is [-600,1200) -> includes the
  // observation.
  const nn::Tensor& t1 = cache.TensorForTime(1500.0);
  EXPECT_GT(t1.Sum(), 0.0);
  // Two times in the same slot share the same tensor object.
  const nn::Tensor& t2 = cache.TensorForTime(2000.0);
  EXPECT_EQ(&t1, &t2);
  // A much later slot has an empty window.
  const nn::Tensor& t3 = cache.TensorForTime(10 * 3600.0);
  EXPECT_DOUBLE_EQ(t3.Sum(), 0.0);
}

TEST(TrafficTensorCacheTest, ObservationInOwnSlotExcluded) {
  // The window is [slot_start - w, slot_start): observations *inside* the
  // current slot must not leak into its tensor.
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({100, 100});
  geo::GridSpec grid(box, 100.0);
  TrafficTensorCache cache(grid, 1200.0, 1800.0);
  cache.AddObservations({{{50, 50}, 1300.0, 8.0}});
  const nn::Tensor& t = cache.TensorForTime(1500.0);  // same slot [1200,2400)
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
}

}  // namespace
}  // namespace traffic
}  // namespace deepst
