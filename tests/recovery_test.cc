#include "recovery/strs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "eval/world.h"

namespace deepst {
namespace recovery {
namespace {

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "recovery-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

baselines::MarkovRouter& TrainedMarkov() {
  static baselines::MarkovRouter* mmi = [] {
    auto* m = new baselines::MarkovRouter(TestWorld().net(),
                                          core::DeepSTConfig{});
    m->Train(TestWorld().split().train);
    return m;
  }();
  return *mmi;
}

TEST(StrsTest, TemporalLikelihoodPeaksAtMeanTime) {
  auto& world = TestWorld();
  MarkovSpatialScorer scorer(&TrainedMarkov());
  StrsRecovery strs(world.net(), world.index(), world.segment_stats(),
                    &scorer);
  const auto* rec = world.split().test.front();
  const traj::Route& route = rec->trip.route;
  const double mean = world.segment_stats().RouteMeanTime(route);
  const double at_mean = strs.TemporalLogLik(route, mean);
  EXPECT_GT(at_mean, strs.TemporalLogLik(route, mean * 2.0));
  EXPECT_GT(at_mean, strs.TemporalLogLik(route, mean * 0.3));
}

TEST(StrsTest, RecoverGapTrivialCases) {
  auto& world = TestWorld();
  MarkovSpatialScorer scorer(&TrainedMarkov());
  StrsRecovery strs(world.net(), world.index(), world.segment_stats(),
                    &scorer);
  util::Rng rng(1);
  scorer.BeginTrajectory(core::RouteQuery{}, &rng);
  // Same segment -> single-element route.
  auto same = strs.RecoverGap(3, 3, 30.0, {});
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same.value(), traj::Route{3});
}

TEST(StrsTest, RecoverGapPrefersTimeConsistentRoute) {
  auto& world = TestWorld();
  MarkovSpatialScorer scorer(&TrainedMarkov());
  StrsConfig cfg;
  cfg.spatial_weight = 0.0;  // isolate the temporal module
  StrsRecovery strs(world.net(), world.index(), world.segment_stats(),
                    &scorer, cfg);
  util::Rng rng(2);
  scorer.BeginTrajectory(core::RouteQuery{}, &rng);
  // Pick a real trip and one of its interior gaps.
  const auto* rec = world.split().test.front();
  const traj::Route& route = rec->trip.route;
  ASSERT_GE(route.size(), 4u);
  const auto a = route.front();
  const auto b = route.back();
  const double true_time = world.segment_stats().RouteMeanTime(route);
  auto recovered = strs.RecoverGap(a, b, true_time, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().front(), a);
  EXPECT_EQ(recovered.value().back(), b);
  EXPECT_TRUE(world.net().ValidateRoute(recovered.value()).ok());
}

TEST(StrsTest, RecoverTrajectoryEndToEnd) {
  auto& world = TestWorld();
  MarkovSpatialScorer scorer(&TrainedMarkov());
  StrsRecovery strs(world.net(), world.index(), world.segment_stats(),
                    &scorer);
  util::Rng rng(3);
  int ok_count = 0;
  double recall_sum = 0.0;
  for (int i = 0; i < 10 && i < static_cast<int>(world.split().test.size());
       ++i) {
    const auto* rec = world.split().test[static_cast<size_t>(i)];
    if (rec->gps.size() < 4) continue;
    auto sparse = traj::DownsampleByInterval(rec->gps, 120.0);
    if (sparse.size() < 2) continue;
    auto recovered = strs.RecoverTrajectory(
        sparse, rec->trip.destination, rec->trip.start_time_s, &rng);
    if (!recovered.ok()) continue;
    ++ok_count;
    EXPECT_TRUE(world.net().ValidateRoute(recovered.value()).ok());
    std::set<roadnet::SegmentId> truth(rec->trip.route.begin(),
                                       rec->trip.route.end());
    std::set<roadnet::SegmentId> got(recovered.value().begin(),
                                     recovered.value().end());
    int common = 0;
    for (auto s : truth) {
      if (got.count(s)) ++common;
    }
    recall_sum += static_cast<double>(common) /
                  static_cast<double>(truth.size());
  }
  ASSERT_GE(ok_count, 5);
  EXPECT_GT(recall_sum / ok_count, 0.6);
}

TEST(StrsTest, RejectsDegenerateInput) {
  auto& world = TestWorld();
  MarkovSpatialScorer scorer(&TrainedMarkov());
  StrsRecovery strs(world.net(), world.index(), world.segment_stats(),
                    &scorer);
  util::Rng rng(4);
  auto result = strs.RecoverTrajectory({}, {0, 0}, 0.0, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(),
            util::Status::Code::kInvalidArgument);
}

TEST(StrsTest, DeepStScorerPluggable) {
  auto& world = TestWorld();
  core::DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.num_proxies = 4;
  cfg.use_traffic = false;
  core::DeepSTModel model(world.net(), cfg, nullptr);
  DeepStSpatialScorer scorer(&model);
  StrsRecovery strs_plus(world.net(), world.index(), world.segment_stats(),
                         &scorer);
  EXPECT_EQ(strs_plus.scorer_name(), "deepst");
  util::Rng rng(5);
  const auto* rec = world.split().test.front();
  auto sparse = traj::DownsampleByInterval(rec->gps, 150.0);
  if (sparse.size() >= 2) {
    auto recovered = strs_plus.RecoverTrajectory(
        sparse, rec->trip.destination, rec->trip.start_time_s, &rng);
    if (recovered.ok()) {
      EXPECT_TRUE(world.net().ValidateRoute(recovered.value()).ok());
    }
  }
}

}  // namespace
}  // namespace recovery
}  // namespace deepst
