#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <vector>

#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"

namespace deepst {
namespace util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad K");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad K");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad K");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::IoError("x").ToString(), "IoError: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GumbelMean) {
  // Gumbel(0,1) mean is the Euler-Mascheroni constant 0.5772.
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gumbel();
  EXPECT_NEAR(sum / n, 0.5772, 0.02);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork(0);
  Rng a2(5);
  Rng child2 = a2.Fork(0);
  // Same parent+id -> same stream.
  EXPECT_EQ(child.NextUint64(), child2.NextUint64());
  // Different id -> different stream.
  Rng a3(5);
  Rng child3 = a3.Fork(1);
  EXPECT_NE(child.NextUint64(), child3.NextUint64());
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, StateRoundTripContinuesStream) {
  Rng a(1234);
  // Burn an odd number of Gaussian draws so the cached Box-Muller half is
  // populated -- the state must carry it.
  for (int i = 0; i < 7; ++i) (void)a.Gaussian();
  for (int i = 0; i < 5; ++i) (void)a.NextUint64();
  const Rng::State st = a.GetState();
  Rng b(999);  // unrelated seed, fully overwritten by SetState
  b.SetState(st);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  for (int i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
  }
}

TEST(Crc32Test, KnownVectors) {
  // The zlib/PNG check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32Accumulator acc;
  acc.Update(data.data(), 10);
  acc.Update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(acc.value(), Crc32(data.data(), data.size()));
  // Seed-chaining form agrees too.
  const uint32_t first = Crc32(data.data(), 10);
  EXPECT_EQ(Crc32(data.data() + 10, data.size() - 10, first), acc.value());
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data(64, '\x5a');
  const uint32_t clean = Crc32(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    data[byte] ^= 1;
    EXPECT_NE(Crc32(data.data(), data.size()), clean) << "byte " << byte;
    data[byte] ^= 1;
  }
}

// The production Crc32 dispatches to a PCLMUL folding kernel for long
// buffers where the CPU supports it; every path must agree bit-for-bit with
// the definitional one-bit-at-a-time CRC, for any length, alignment and
// seed split (including splits that cross the SIMD/table boundary).
TEST(Crc32Test, MatchesBytewiseReferenceAcrossSizesAndAlignments) {
  const auto reference = [](const unsigned char* p, size_t n) {
    uint32_t c = 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i) {
      c ^= p[i];
      for (int b = 0; b < 8; ++b) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
    }
    return c ^ 0xFFFFFFFFu;
  };
  std::vector<unsigned char> data(4103);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>((i * 131u) ^ (i >> 3));
  }
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{15},
                         size_t{16}, size_t{63}, size_t{64}, size_t{65},
                         size_t{79}, size_t{80}, size_t{127}, size_t{128},
                         size_t{129}, size_t{255}, size_t{256}, size_t{1000},
                         size_t{4096}, size_t{4100}}) {
    for (const size_t off : {size_t{0}, size_t{1}, size_t{3}}) {
      ASSERT_EQ(Crc32(data.data() + off, n), reference(data.data() + off, n))
          << "n=" << n << " off=" << off;
    }
  }
  // Seed chaining across the dispatch boundary: short head (table path)
  // continued by a long tail (SIMD path), and vice versa.
  const uint32_t whole = Crc32(data.data(), data.size());
  for (const size_t split : {size_t{5}, size_t{64}, size_t{100}, size_t{4097}}) {
    const uint32_t head = Crc32(data.data(), split);
    ASSERT_EQ(Crc32(data.data() + split, data.size() - split, head), whole)
        << "split=" << split;
  }
}

TEST(HashToUnitTest, InUnitIntervalAndDeterministic) {
  for (uint64_t x = 0; x < 1000; ++x) {
    const double u = HashToUnit(x);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(u, HashToUnit(x));
  }
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "ab", 1.5), "3-ab-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin(parts, "|"), "a|b||c");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.63721, 3), "0.637");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(TableTest, AlignedRendering) {
  Table t({"Method", "acc"});
  t.AddRow({"DeepST", "0.612"});
  t.AddRow("MMI", {0.2811}, 3);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("DeepST"), std::string::npos);
  EXPECT_NE(s.find("0.281"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(FlagsTest, ParsesKeyValueForms) {
  // Note the grammar: "--key token" consumes `token` as the value unless it
  // is itself an option, so bool flags must precede another option or end
  // the line; positionals otherwise come before any space-separated option.
  const char* argv[] = {"prog",    "pos1", "--a=1", "--b",
                        "2",       "--d",  "--e=",  "--c=x=y",
                        "--flag"};
  auto flags = Flags::Parse(9, argv);
  ASSERT_TRUE(flags.ok());
  const Flags& f = flags.value();
  EXPECT_EQ(f.GetString("a"), "1");
  EXPECT_EQ(f.GetString("b"), "2");
  EXPECT_TRUE(f.GetBool("flag"));
  EXPECT_TRUE(f.GetBool("d"));
  EXPECT_EQ(f.GetString("c"), "x=y");  // first '=' splits
  EXPECT_EQ(f.GetString("e"), "");
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_FALSE(f.Has("missing"));
  EXPECT_EQ(f.GetString("missing", "dflt"), "dflt");
}

TEST(FlagsTest, TypedGettersAndErrors) {
  const char* argv[] = {"prog", "--n=42", "--x=2.5", "--bad=abc",
                        "--off=false"};
  auto flags = Flags::Parse(5, argv);
  ASSERT_TRUE(flags.ok());
  const Flags& f = flags.value();
  EXPECT_EQ(f.GetInt("n", 0).value(), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 0.0).value(), 2.5);
  EXPECT_EQ(f.GetInt("missing", 7).value(), 7);
  EXPECT_FALSE(f.GetInt("bad", 0).ok());
  EXPECT_FALSE(f.GetDouble("bad", 0.0).ok());
  EXPECT_FALSE(f.GetBool("off", true));
}

TEST(FlagsTest, RejectsBareDoubleDash) {
  const char* argv[] = {"prog", "--"};
  auto flags = Flags::Parse(2, argv);
  EXPECT_FALSE(flags.ok());
}

TEST(TableTest, CsvRoundTripQuoting) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "plain"});
  const std::string path = testing::TempDir() + "/deepst_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",plain");
}

// Fault-spec grammar (docs/robustness.md): a malformed spec must come back
// as InvalidArgument naming the bad token, and must arm nothing -- parsing
// is all-or-nothing, so a chaos-harness typo never leaves the process
// half-armed.
class FaultSpecTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }

  static std::string ErrorFor(const std::string& spec) {
    const Status s = FaultInjector::Instance().ArmFromSpec(spec);
    EXPECT_FALSE(s.ok()) << "spec '" << spec << "' parsed unexpectedly";
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << spec;
    return s.ToString();
  }
};

TEST_F(FaultSpecTest, WellFormedSpecsArm) {
  FaultInjector& fi = FaultInjector::Instance();
  ASSERT_TRUE(fi.ArmFromSpec("a.point:io_error").ok());
  EXPECT_TRUE(fi.enabled());
  fi.Reset();
  ASSERT_TRUE(
      fi.ArmFromSpec(" a.point:partial_read@2x3 , b.point:alloc ").ok());
  EXPECT_TRUE(fi.enabled());
  // @2: the first two traversals pass, then x3 fire.
  EXPECT_TRUE(CheckFaultPoint("a.point").ok());
  EXPECT_TRUE(CheckFaultPoint("a.point").ok());
  EXPECT_FALSE(CheckFaultPoint("a.point").ok());
  EXPECT_FALSE(CheckFaultPoint("a.point").ok());
  EXPECT_FALSE(CheckFaultPoint("a.point").ok());
  EXPECT_TRUE(CheckFaultPoint("a.point").ok());  // budget spent
  EXPECT_EQ(CheckFaultPoint("b.point").code(),
            Status::Code::kResourceExhausted);
  // An empty spec arms nothing and is not an error.
  fi.Reset();
  EXPECT_TRUE(fi.ArmFromSpec("").ok());
  EXPECT_FALSE(fi.enabled());
}

TEST_F(FaultSpecTest, ErrorsNameTheBadToken) {
  // Missing ':' separator.
  EXPECT_NE(ErrorFor("justapoint").find("'justapoint'"), std::string::npos);
  EXPECT_NE(ErrorFor("justapoint").find("no ':'"), std::string::npos);
  // Empty point name.
  EXPECT_NE(ErrorFor(":io_error").find("names no fault point"),
            std::string::npos);
  // Empty kind.
  EXPECT_NE(ErrorFor("p:").find("names no kind"), std::string::npos);
  // Unknown kind, spelled out in the message with the valid alternatives.
  const std::string unknown = ErrorFor("p:walrus");
  EXPECT_NE(unknown.find("'walrus'"), std::string::npos);
  EXPECT_NE(unknown.find("io_error|partial_read|latency|alloc"),
            std::string::npos);
  // Malformed count / after tokens.
  EXPECT_NE(ErrorFor("p:io_error x2b").find("'x2b'"), std::string::npos);
  EXPECT_NE(ErrorFor("p:io_error@ten").find("'@ten'"), std::string::npos);
  EXPECT_NE(ErrorFor("p:io_errorx0").find("'x0'"), std::string::npos);
}

TEST_F(FaultSpecTest, MalformedSpecArmsNothing) {
  FaultInjector& fi = FaultInjector::Instance();
  // First entry is valid, second is not: all-or-nothing means even the
  // valid entry must not arm.
  const Status s = fi.ArmFromSpec("good.point:io_error,bad.point:walrus");
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(fi.enabled());
  EXPECT_TRUE(CheckFaultPoint("good.point").ok());
}

}  // namespace
}  // namespace util
}  // namespace deepst
