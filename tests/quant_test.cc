// Coverage of the quantized inference kernels and the transition memo
// (fast path round two): packing round-trips, GEMV parity against the
// dequantized reference, batch-composition invariance, end-to-end accuracy
// parity of the reduced precisions against the double path, bitwise memo
// parity across greedy/beam/multi entry points, epoch invalidation on
// weight swaps, and exact concurrent hit accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "baselines/neural_router.h"
#include "core/deepst_model.h"
#include "core/infer/session.h"
#include "eval/world.h"
#include "nn/backend.h"
#include "nn/infer/forward.h"
#include "nn/infer/memo.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace deepst {
namespace core {
namespace {

using nn::infer::MemoKey;
using nn::infer::MixKey;
using nn::infer::PackedMatrix;
using nn::infer::Precision;
using nn::infer::TransitionMemoCache;

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "quant-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

DeepSTConfig SmallConfig() {
  DeepSTConfig cfg;
  cfg.segment_embedding_dim = 12;
  cfg.gru_hidden = 24;
  cfg.gru_layers = 2;
  cfg.dest_dim = 12;
  cfg.traffic_dim = 8;
  cfg.num_proxies = 8;
  cfg.cnn_channels = 6;
  cfg.mlp_hidden = 24;
  return cfg;
}

// Base test config: DeepST-C (no traffic dependency, deterministic MAP
// beam) at the default memo capacity and double precision.
DeepSTConfig MemoConfig() { return baselines::DeepStCConfigOf(SmallConfig()); }

std::vector<const traj::TripRecord*> TestTrips(int n) {
  std::vector<const traj::TripRecord*> out;
  for (const auto* rec : TestWorld().split().test) {
    if (static_cast<int>(out.size()) >= n) break;
    if (rec->trip.route.size() >= 3) out.push_back(rec);
  }
  return out;
}

// Reference GEMV through PackedMatrix::Dequant, accumulated sequentially in
// double: the value the kernel approximates.
void ReferenceGemv(const std::vector<double>& x, const PackedMatrix& w,
                   const float* bias, std::vector<float>* out, int64_t m) {
  const int64_t k = w.cols;
  const int64_t n = w.rows;
  out->assign(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += x[static_cast<size_t>(i * k + kk)] * w.Dequant(j, kk);
      }
      float v = static_cast<float>(acc);
      if (bias != nullptr) v += bias[j];
      (*out)[static_cast<size_t>(i * n + j)] = v;
    }
  }
}

TEST(PackingTest, Bf16RoundTripWithinHalfUlp) {
  util::Rng rng(3);
  const int64_t rows = 9, cols = 21;
  nn::Tensor w = nn::Tensor::Uniform({rows, cols}, -4.0, 4.0, &rng);
  const PackedMatrix p = PackedMatrix::Pack(w.data(), rows, cols, cols,
                                            Precision::kBf16);
  EXPECT_EQ(p.PackedBytes(), static_cast<size_t>(rows * cols) * 2);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const double orig = w.data()[r * cols + c];
      // bf16 keeps 8 significand bits; round-to-nearest-even is within half
      // an ulp, i.e. 2^-8 relative.
      EXPECT_NEAR(p.Dequant(r, c), orig, std::fabs(orig) * 0x1p-8 + 1e-30);
    }
  }
}

TEST(PackingTest, Bf16ExactForRepresentableValues) {
  const float vals[] = {0.0f, 1.0f, -2.0f, 0.5f, -0.3125f, 96.0f};
  const PackedMatrix p = PackedMatrix::Pack(vals, 1, 6, 6, Precision::kBf16);
  for (int64_t c = 0; c < 6; ++c) {
    EXPECT_EQ(p.Dequant(0, c), static_cast<double>(vals[c]));
  }
}

TEST(PackingTest, Int8RoundTripWithinOneStep) {
  util::Rng rng(4);
  const int64_t rows = 7, cols = 33;
  nn::Tensor w = nn::Tensor::Uniform({rows, cols}, -2.0, 2.0, &rng);
  const PackedMatrix p = PackedMatrix::Pack(w.data(), rows, cols, cols,
                                            Precision::kInt8);
  EXPECT_EQ(p.PackedBytes(),
            static_cast<size_t>(rows * cols) + static_cast<size_t>(rows) * 8);
  for (int64_t r = 0; r < rows; ++r) {
    const double step = static_cast<double>(p.scale[static_cast<size_t>(r)]);
    for (int64_t c = 0; c < cols; ++c) {
      // Affine quantization over the row range: each value is within one
      // step (round + clamp each contribute at most half).
      EXPECT_NEAR(p.Dequant(r, c), w.data()[r * cols + c], step);
    }
  }
}

TEST(PackingTest, Int8ConstantAndZeroRows) {
  const float vals[] = {0.75f, 0.75f, 0.75f, 0.75f,   // constant row
                        0.0f,  0.0f,  0.0f,  0.0f,    // zero row
                        1.0f,  1.0f,  1.0f,  1.0000001f};  // near-constant
  const PackedMatrix p = PackedMatrix::Pack(vals, 3, 4, 4, Precision::kInt8);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(p.Dequant(0, c), 0.75, 1e-7);
    EXPECT_EQ(p.Dequant(1, c), 0.0);
    EXPECT_NEAR(p.Dequant(2, c), 1.0, 1e-6);
  }
}

TEST(GemvTest, MatchesDequantReferencePerPrecision) {
  util::Rng rng(5);
  const int64_t m = 5, k = 37, n = 29;
  nn::Tensor wt = nn::Tensor::Uniform({n, k}, -1.5, 1.5, &rng);
  nn::Tensor bias = nn::Tensor::Uniform({n}, -1.0, 1.0, &rng);
  std::vector<double> x(static_cast<size_t>(m * k));
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  for (Precision prec :
       {Precision::kDouble, Precision::kBf16, Precision::kInt8}) {
    const PackedMatrix p = PackedMatrix::Pack(wt.data(), n, k, k, prec);
    std::vector<float> got(static_cast<size_t>(m * n));
    nn::infer::GemvForward(x.data(), k, p, bias.data(), nullptr, got.data(),
                           m, n);
    std::vector<float> want;
    ReferenceGemv(x, p, bias.data(), &want, m);
    for (size_t e = 0; e < got.size(); ++e) {
      // The kernel differs from the sequential double reference only in
      // accumulation order (8 double lanes, resp. 16 float lanes); 1e-3
      // bounds the float-lane case with room to spare at these sizes.
      EXPECT_NEAR(got[e], want[e], 1e-3) << nn::infer::PrecisionName(prec)
                                         << " element " << e;
    }
  }
}

TEST(GemvTest, RowBiasMatchesPerRowCalls) {
  util::Rng rng(6);
  const int64_t m = 6, k = 24, n = 17, queries = 3;
  nn::Tensor wt = nn::Tensor::Uniform({n, k}, -1.0, 1.0, &rng);
  nn::Tensor bias = nn::Tensor::Uniform({queries, n}, -1.0, 1.0, &rng);
  std::vector<double> x(static_cast<size_t>(m * k));
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  const std::vector<int> bias_row = {0, 2, 1, 1, 0, 2};
  for (Precision prec :
       {Precision::kDouble, Precision::kBf16, Precision::kInt8}) {
    const PackedMatrix p = PackedMatrix::Pack(wt.data(), n, k, k, prec);
    std::vector<float> got(static_cast<size_t>(m * n));
    nn::infer::GemvForwardRowBias(x.data(), k, p, bias.data(), nullptr,
                                  bias_row.data(), got.data(), m, n);
    for (int64_t i = 0; i < m; ++i) {
      std::vector<float> row(static_cast<size_t>(n));
      nn::infer::GemvForward(x.data() + i * k, k, p,
                             bias.data() + bias_row[static_cast<size_t>(i)] * n,
                             nullptr, row.data(), 1, n);
      for (int64_t j = 0; j < n; ++j) {
        // Bitwise: identical arithmetic per element, only the bias pointer
        // plumbing differs.
        EXPECT_EQ(got[static_cast<size_t>(i * n + j)],
                  row[static_cast<size_t>(j)])
            << nn::infer::PrecisionName(prec);
      }
    }
  }
}

TEST(GemvTest, BatchCompositionIsBitwiseInvariant) {
  util::Rng rng(7);
  const int64_t m = 8, k = 40, n = 23;
  nn::Tensor wt = nn::Tensor::Uniform({n, k}, -1.0, 1.0, &rng);
  std::vector<double> x(static_cast<size_t>(m * k));
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  for (Precision prec :
       {Precision::kDouble, Precision::kBf16, Precision::kInt8}) {
    const PackedMatrix p = PackedMatrix::Pack(wt.data(), n, k, k, prec);
    std::vector<float> batched(static_cast<size_t>(m * n));
    nn::infer::GemvForward(x.data(), k, p, nullptr, nullptr, batched.data(),
                           m, n);
    for (int64_t i = 0; i < m; ++i) {
      std::vector<float> single(static_cast<size_t>(n));
      nn::infer::GemvForward(x.data() + i * k, k, p, nullptr, nullptr,
                             single.data(), 1, n);
      EXPECT_EQ(std::memcmp(batched.data() + i * n, single.data(),
                            static_cast<size_t>(n) * sizeof(float)),
                0)
          << nn::infer::PrecisionName(prec) << " row " << i;
    }
  }
}

// -- Register-blocked GEMM (fast path round three) ---------------------------
// BuildPanels() packs a K-major panel sidecar and batched (m > 1) calls then
// route through the blocked micro-kernels. The blocking only reorders work
// ACROSS output elements — each element's accumulation sequence is exactly
// the chunk kernel's — so results must be bitwise identical to the unpacked
// chunk path for every precision, shape and batch composition.

TEST(GemmTest, BlockedMatchesChunkBitwiseAcrossShapes) {
  util::Rng rng(11);
  // k = 43: K-tail for both the 8-wide double panels and the 16-wide
  // reduced-precision panels. n = 23: odd NR=2 tail row. m sweeps partial
  // and full micro-tile bands (MR = 4).
  const int64_t k = 43, n = 23;
  nn::Tensor wt = nn::Tensor::Uniform({n, k}, -1.2, 1.2, &rng);
  nn::Tensor bias = nn::Tensor::Uniform({n}, -1.0, 1.0, &rng);
  for (int64_t m : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{5},
                    int64_t{16}, int64_t{33}}) {
    std::vector<double> x(static_cast<size_t>(m * k));
    for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
    for (Precision prec :
         {Precision::kDouble, Precision::kBf16, Precision::kInt8}) {
      const PackedMatrix bare = PackedMatrix::Pack(wt.data(), n, k, k, prec);
      PackedMatrix blocked = PackedMatrix::Pack(wt.data(), n, k, k, prec);
      blocked.BuildPanels();
      ASSERT_TRUE(blocked.has_panels());
      std::vector<float> chunk(static_cast<size_t>(m * n));
      std::vector<float> gemm(static_cast<size_t>(m * n));
      nn::infer::GemvForward(x.data(), k, bare, bias.data(), nullptr,
                             chunk.data(), m, n);
      nn::infer::GemvForward(x.data(), k, blocked, bias.data(), nullptr,
                             gemm.data(), m, n);
      EXPECT_EQ(std::memcmp(chunk.data(), gemm.data(),
                            chunk.size() * sizeof(float)),
                0)
          << nn::infer::PrecisionName(prec) << " m=" << m;
    }
  }
}

TEST(GemmTest, BlockedDoubleIsBitwiseLinearForward) {
  util::Rng rng(12);
  const int64_t m = 9, k = 50, n = 21;
  nn::Tensor wt = nn::Tensor::Uniform({n, k}, -1.0, 1.0, &rng);
  nn::Tensor bias = nn::Tensor::Uniform({n}, -1.0, 1.0, &rng);
  std::vector<double> x(static_cast<size_t>(m * k));
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  PackedMatrix p = PackedMatrix::Pack(wt.data(), n, k, k, Precision::kDouble);
  p.BuildPanels();
  std::vector<float> gemm(static_cast<size_t>(m * n));
  nn::infer::GemvForward(x.data(), k, p, bias.data(), nullptr, gemm.data(),
                         m, n);
  std::vector<double> wd(static_cast<size_t>(n * k));
  for (int64_t e = 0; e < n * k; ++e)
    wd[static_cast<size_t>(e)] = static_cast<double>(wt.data()[e]);
  std::vector<float> ref(static_cast<size_t>(m * n));
  nn::infer::LinearForward(x.data(), k, wd.data(), k, bias.data(), nullptr,
                           ref.data(), m, k, n);
  EXPECT_EQ(std::memcmp(gemm.data(), ref.data(), ref.size() * sizeof(float)),
            0);
}

TEST(GemmTest, RowBiasBlockedMatchesChunkBitwise) {
  util::Rng rng(13);
  const int64_t m = 7, k = 24, n = 17, queries = 3;
  nn::Tensor wt = nn::Tensor::Uniform({n, k}, -1.0, 1.0, &rng);
  nn::Tensor bias = nn::Tensor::Uniform({queries, n}, -1.0, 1.0, &rng);
  std::vector<double> x(static_cast<size_t>(m * k));
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  const std::vector<int> bias_row = {0, 2, 1, 1, 0, 2, 1};
  for (Precision prec :
       {Precision::kDouble, Precision::kBf16, Precision::kInt8}) {
    const PackedMatrix bare = PackedMatrix::Pack(wt.data(), n, k, k, prec);
    PackedMatrix blocked = PackedMatrix::Pack(wt.data(), n, k, k, prec);
    blocked.BuildPanels();
    std::vector<float> chunk(static_cast<size_t>(m * n));
    std::vector<float> gemm(static_cast<size_t>(m * n));
    nn::infer::GemvForwardRowBias(x.data(), k, bare, bias.data(), nullptr,
                                  bias_row.data(), chunk.data(), m, n);
    nn::infer::GemvForwardRowBias(x.data(), k, blocked, bias.data(), nullptr,
                                  bias_row.data(), gemm.data(), m, n);
    EXPECT_EQ(
        std::memcmp(chunk.data(), gemm.data(), chunk.size() * sizeof(float)),
        0)
        << nn::infer::PrecisionName(prec);
  }
}

TEST(GemmTest, BatchCompositionThroughBlockedPath) {
  util::Rng rng(14);
  const int64_t m = 11, k = 40, n = 23;
  nn::Tensor wt = nn::Tensor::Uniform({n, k}, -1.0, 1.0, &rng);
  std::vector<double> x(static_cast<size_t>(m * k));
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  for (Precision prec :
       {Precision::kDouble, Precision::kBf16, Precision::kInt8}) {
    PackedMatrix p = PackedMatrix::Pack(wt.data(), n, k, k, prec);
    p.BuildPanels();
    std::vector<float> batched(static_cast<size_t>(m * n));
    nn::infer::GemvForward(x.data(), k, p, nullptr, nullptr, batched.data(),
                           m, n);
    // Single rows take the chunk path (m == 1 never dispatches to the
    // blocked kernels); a blocked batch must reproduce them bitwise.
    for (int64_t i = 0; i < m; ++i) {
      std::vector<float> single(static_cast<size_t>(n));
      nn::infer::GemvForward(x.data() + i * k, k, p, nullptr, nullptr,
                             single.data(), 1, n);
      EXPECT_EQ(std::memcmp(batched.data() + i * n, single.data(),
                            static_cast<size_t>(n) * sizeof(float)),
                0)
          << nn::infer::PrecisionName(prec) << " row " << i;
    }
  }
}

TEST(GemmTest, PanelPackingRoundTrip) {
  util::Rng rng(15);
  const int64_t k = 40, n = 22;
  nn::Tensor wt = nn::Tensor::Uniform({n, k}, -1.0, 1.0, &rng);
  for (Precision prec :
       {Precision::kDouble, Precision::kBf16, Precision::kInt8}) {
    PackedMatrix p = PackedMatrix::Pack(wt.data(), n, k, k, prec);
    const PackedMatrix flat = PackedMatrix::Pack(wt.data(), n, k, k, prec);
    p.BuildPanels();
    p.BuildPanels();  // idempotent
    ASSERT_TRUE(p.has_panels());
    const int64_t bw = p.PanelBlock();
    const int64_t np = n / nn::infer::kGemmNr;
    const int64_t kb = k / bw;
    // panel[pn][b][r][lane] holds row-major element
    // (pn * kGemmNr + r, b * bw + lane).
    for (int64_t pn = 0; pn < np; ++pn) {
      for (int64_t b = 0; b < kb; ++b) {
        for (int64_t r = 0; r < nn::infer::kGemmNr; ++r) {
          for (int64_t lane = 0; lane < bw; ++lane) {
            const size_t pe = static_cast<size_t>(
                ((pn * kb + b) * nn::infer::kGemmNr + r) * bw + lane);
            const size_t fe = static_cast<size_t>(
                (pn * nn::infer::kGemmNr + r) * k + b * bw + lane);
            switch (prec) {
              case Precision::kDouble:
                EXPECT_EQ(p.pd[pe], flat.d[fe]);
                break;
              case Precision::kBf16:
                EXPECT_EQ(p.ph[pe], flat.h[fe]);
                break;
              case Precision::kInt8:
                EXPECT_EQ(p.pq[pe], flat.q[fe]);
                break;
            }
          }
        }
      }
    }
  }
}

// End-to-end accuracy parity: the reduced precisions must track the double
// path on route likelihoods and teacher-forced top-1 decisions. Tolerances
// mirror the check_perf gates (bf16 well inside 1e-3 per transition, int8
// inside 5e-3).
TEST(PrecisionParityTest, ReducedPrecisionTracksDouble) {
  auto& world = TestWorld();
  const auto trips = TestTrips(6);
  ASSERT_GE(trips.size(), 3u);
  DeepSTConfig base = MemoConfig();
  DeepSTModel ref(world.net(), base, nullptr);
  const std::vector<nn::NamedTensor> snapshot = nn::SnapshotParameters(ref);

  struct Spec {
    Precision prec;
    double ce_tol;       // per-transition log-lik delta
    double min_agree;    // top-1 agreement fraction
  };
  for (const Spec& spec : {Spec{Precision::kBf16, 1e-3, 0.99},
                           Spec{Precision::kInt8, 5e-3, 0.95}}) {
    DeepSTConfig cfg = base;
    cfg.infer_precision = spec.prec;
    auto model = DeepSTModel::LoadFromParams(world.net(), cfg, nullptr,
                                             snapshot);
    ASSERT_TRUE(model.ok());
    int64_t agree = 0, total = 0;
    util::Rng rng_a(31), rng_b(31);
    for (const auto* rec : trips) {
      const RouteQuery query = eval::QueryFor(rec->trip);
      PredictionContext rctx = ref.MakeContext(query, &rng_a);
      PredictionContext qctx = model.value()->MakeContext(query, &rng_b);
      const int64_t transitions =
          static_cast<int64_t>(rec->trip.route.size()) - 1;
      EXPECT_NEAR(model.value()->ScoreRoute(qctx, rec->trip.route),
                  ref.ScoreRoute(rctx, rec->trip.route),
                  spec.ce_tol * static_cast<double>(transitions))
          << nn::infer::PrecisionName(spec.prec);
      const std::vector<int> want = ref.TopSlotsAlongRoute(rctx,
                                                           rec->trip.route);
      const std::vector<int> got =
          model.value()->TopSlotsAlongRoute(qctx, rec->trip.route);
      ASSERT_EQ(want.size(), got.size());
      for (size_t i = 0; i < want.size(); ++i) {
        agree += want[i] == got[i] ? 1 : 0;
      }
      total += static_cast<int64_t>(want.size());
    }
    EXPECT_GE(static_cast<double>(agree),
              spec.min_agree * static_cast<double>(total))
        << nn::infer::PrecisionName(spec.prec) << ": " << agree << "/"
        << total;
  }
}

// Packed weights are built once per model generation and shared (pointer
// identity) across calls; packed_weight_bytes reflects the precision.
TEST(SharedWeightsTest, PackedOncePerGenerationAndShrinkWithPrecision) {
  auto& world = TestWorld();
  DeepSTConfig base = MemoConfig();
  DeepSTModel model(world.net(), base, nullptr);
  const auto first = model.shared_infer_weights();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), model.shared_infer_weights().get());
  model.RetirePooledSessions();
  EXPECT_NE(first.get(), model.shared_infer_weights().get());

  const std::vector<nn::NamedTensor> snapshot = nn::SnapshotParameters(model);
  size_t bytes[3];
  int idx = 0;
  for (Precision prec :
       {Precision::kDouble, Precision::kBf16, Precision::kInt8}) {
    DeepSTConfig cfg = base;
    cfg.infer_precision = prec;
    auto m = DeepSTModel::LoadFromParams(world.net(), cfg, nullptr, snapshot);
    ASSERT_TRUE(m.ok());
    const auto packed = m.value()->shared_infer_weights();
    EXPECT_EQ(packed->precision, prec);
    bytes[idx++] = packed->packed_weight_bytes;
  }
  // packed_weight_bytes includes the always-double context columns and
  // embedding table, so the ratios are weaker than 4x/8x — but the ordering
  // must hold strictly.
  EXPECT_LT(bytes[1], bytes[0]);  // bf16 < double
  EXPECT_LT(bytes[2], bytes[1]);  // int8 < bf16
}

// -- Transition memo -----------------------------------------------------------

TEST(MemoCacheTest, InsertLookupRoundTripIsExact) {
  const int64_t logits_len = 11, hd = 5;
  const int layers = 2;
  TransitionMemoCache cache(logits_len, layers, hd, 64);
  util::Rng rng(8);
  std::vector<float> logits(static_cast<size_t>(logits_len));
  for (auto& v : logits) v = static_cast<float>(rng.Uniform(-9.0, 9.0));
  std::vector<float> s0(static_cast<size_t>(hd)), s1(static_cast<size_t>(hd));
  for (auto& v : s0) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : s1) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  const float* states[] = {s0.data(), s1.data()};

  const MemoKey key = MixKey(MemoKey{1, 2}, 42);
  const uint64_t epoch = cache.current_epoch();
  std::vector<float> lo(static_cast<size_t>(logits_len));
  std::vector<float> o0(static_cast<size_t>(hd)), o1(static_cast<size_t>(hd));
  float* outs[] = {o0.data(), o1.data()};
  EXPECT_FALSE(cache.Lookup(key, epoch, lo.data(), outs));
  cache.Insert(key, epoch, logits.data(), states);
  ASSERT_TRUE(cache.Lookup(key, epoch, lo.data(), outs));
  EXPECT_EQ(std::memcmp(lo.data(), logits.data(),
                        logits.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(o0.data(), s0.data(), s0.size() * sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(o1.data(), s1.data(), s1.size() * sizeof(float)), 0);

  const auto st = cache.stats();
  EXPECT_EQ(st.lookups, 2);
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.insertions, 1);
  EXPECT_EQ(st.hits + st.misses, st.lookups);
}

TEST(MemoCacheTest, StaleEpochIsNeverServed) {
  TransitionMemoCache cache(4, 1, 3, 16);
  const float logits[4] = {1, 2, 3, 4};
  const float state[3] = {5, 6, 7};
  const float* states[] = {state};
  const MemoKey key{7, 9};
  const uint64_t old_epoch = cache.current_epoch();
  cache.Insert(key, old_epoch, logits, states);
  cache.Invalidate();
  float lo[4];
  float so[3];
  float* outs[] = {so};
  // Neither the new epoch nor the pinned old epoch may see... the old
  // epoch still may: an in-flight query that pinned before the swap keeps
  // its self-consistent view.
  EXPECT_FALSE(cache.Lookup(key, cache.current_epoch(), lo, outs));
  EXPECT_TRUE(cache.Lookup(key, old_epoch, lo, outs));
  // An insert under the current epoch replaces the stale entry for good.
  cache.Insert(key, cache.current_epoch(), logits, states);
  EXPECT_TRUE(cache.Lookup(key, cache.current_epoch(), lo, outs));
  EXPECT_FALSE(cache.Lookup(key, old_epoch, lo, outs));
  const auto st = cache.stats();
  EXPECT_EQ(st.invalidations, 1);
  EXPECT_EQ(st.hits + st.misses, st.lookups);
}

TEST(MemoCacheTest, EvictionKeepsServingCorrectValues) {
  // Tiny cache, many distinct keys: every hit must still return the value
  // inserted under that exact key.
  const int64_t logits_len = 3;
  TransitionMemoCache cache(logits_len, 1, 2, 8);
  const uint64_t epoch = cache.current_epoch();
  float state[2] = {0, 0};
  const float* states[] = {state};
  float lo[3];
  float so[2];
  float* outs[] = {so};
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 64; ++i) {
      const MemoKey key = MixKey(MemoKey{}, i);
      const float logits[3] = {static_cast<float>(i), 0.5f,
                               static_cast<float>(i) * 2.0f};
      if (cache.Lookup(key, epoch, lo, outs)) {
        EXPECT_EQ(lo[0], logits[0]);
        EXPECT_EQ(lo[2], logits[2]);
      } else {
        state[0] = static_cast<float>(i);
        cache.Insert(key, epoch, logits, states);
        // Immediate re-lookup must hit (nothing else inserted in between)
        // and return the just-inserted values. (Cycling the full 64-key
        // working set sequentially through a 16-entry 2-way LRU gives zero
        // cross-round hits by design — classic LRU thrash — so this is
        // where the hit path gets exercised.)
        ASSERT_TRUE(cache.Lookup(key, epoch, lo, outs));
        EXPECT_EQ(lo[0], logits[0]);
        EXPECT_EQ(so[0], state[0]);
      }
    }
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, st.lookups);
  EXPECT_EQ(st.insertions, st.misses);
  EXPECT_GT(st.hits, 0);
}

// Memoized prediction must be bitwise identical to the memo-off model, on
// both cold and warm (cache-hit) calls, for greedy, beam, and the
// cross-query batched entry point — at double and reduced precision.
TEST(MemoParityTest, PredictionIsBitwiseIdenticalWithMemo) {
  auto& world = TestWorld();
  const auto trips = TestTrips(5);
  DeepSTConfig base = MemoConfig();
  DeepSTModel ref_model(world.net(), base, nullptr);
  const std::vector<nn::NamedTensor> snapshot =
      nn::SnapshotParameters(ref_model);

  for (Precision prec : {Precision::kDouble, Precision::kBf16}) {
    for (int beam_width : {1, base.beam_width}) {
      DeepSTConfig off = base;
      off.infer_precision = prec;
      off.beam_width = beam_width;
      off.memo_cache_capacity = 0;
      DeepSTConfig on = off;
      on.memo_cache_capacity = 4096;
      auto m_off =
          DeepSTModel::LoadFromParams(world.net(), off, nullptr, snapshot);
      auto m_on =
          DeepSTModel::LoadFromParams(world.net(), on, nullptr, snapshot);
      ASSERT_TRUE(m_off.ok() && m_on.ok());
      EXPECT_EQ(m_off.value()->transition_memo(), nullptr);
      ASSERT_NE(m_on.value()->transition_memo(), nullptr);
      util::Rng rng_a(41), rng_b(41);
      for (const auto* rec : trips) {
        const RouteQuery query = eval::QueryFor(rec->trip);
        PredictionContext ctx_off =
            m_off.value()->MakeContext(query, &rng_a);
        PredictionContext ctx_on = m_on.value()->MakeContext(query, &rng_b);
        util::Rng r1(1), r2(1), r3(1);
        const traj::Route want =
            m_off.value()->PredictRoute(ctx_off, query.origin, &r1);
        // Cold pass fills the cache, warm pass replays it; both must equal
        // the memo-off route exactly.
        const traj::Route cold =
            m_on.value()->PredictRoute(ctx_on, query.origin, &r2);
        const traj::Route warm =
            m_on.value()->PredictRoute(ctx_on, query.origin, &r3);
        EXPECT_EQ(want, cold) << "prec=" << nn::infer::PrecisionName(prec)
                              << " width=" << beam_width;
        EXPECT_EQ(want, warm);
      }
      const auto st = m_on.value()->transition_memo_stats();
      EXPECT_GT(st.lookups, 0);
      EXPECT_GT(st.hits, 0);  // the warm passes must actually hit
      EXPECT_EQ(st.hits + st.misses, st.lookups);
    }
  }
}

TEST(MemoParityTest, MultiQueryBatchMatchesSingleQueryCalls) {
  auto& world = TestWorld();
  const auto trips = TestTrips(6);
  ASSERT_GE(trips.size(), 4u);
  DeepSTConfig cfg = MemoConfig();
  DeepSTModel model(world.net(), cfg, nullptr);
  ASSERT_NE(model.transition_memo(), nullptr);

  util::Rng crng(51);
  std::vector<PredictionContext> ctxs;
  std::vector<RouteQuery> queries;
  for (const auto* rec : trips) {
    queries.push_back(eval::QueryFor(rec->trip));
    ctxs.push_back(model.MakeContext(queries.back(), &crng));
  }
  // Singles first (filling the memo), then the coalesced batch (served
  // partly from it), then singles again: all three must agree bitwise.
  std::vector<traj::Route> singles;
  for (size_t i = 0; i < queries.size(); ++i) {
    util::Rng r(2);
    singles.push_back(
        model.PredictRouteBeam(ctxs[i], queries[i].origin, &r));
  }
  std::vector<PredictItem> items(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    items[i].ctx = &ctxs[i];
    items[i].origin = queries[i].origin;
  }
  model.PredictRoutesBeamMulti(&items);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(items[i].route, singles[i]) << "query " << i;
    util::Rng r(2);
    EXPECT_EQ(model.PredictRouteBeam(ctxs[i], queries[i].origin, &r),
              singles[i]);
  }
  const auto st = model.transition_memo_stats();
  EXPECT_GT(st.hits, 0);
  EXPECT_EQ(st.hits + st.misses, st.lookups);
}

// After an in-place weight mutation plus RetirePooledSessions, predictions
// must match a freshly built model with the mutated weights — a stale
// cached distribution from the old weights must never be served.
TEST(MemoInvalidationTest, WeightSwapNeverServesStaleEntries) {
  auto& world = TestWorld();
  const auto trips = TestTrips(4);
  DeepSTConfig cfg = MemoConfig();
  DeepSTModel model(world.net(), cfg, nullptr);
  ASSERT_NE(model.transition_memo(), nullptr);

  // Warm the cache under the original weights.
  util::Rng crng(61);
  for (const auto* rec : trips) {
    const RouteQuery query = eval::QueryFor(rec->trip);
    PredictionContext ctx = model.MakeContext(query, &crng);
    util::Rng r(3);
    (void)model.PredictRouteBeam(ctx, query.origin, &r);
  }
  const auto before = model.transition_memo_stats();
  EXPECT_GT(before.insertions, 0);

  // Mutate the logit head in place (scale by -0.5 so argmax decisions
  // actually change), then retire the pool — the documented contract for
  // in-place weight swaps, which also bumps the memo epoch.
  for (const auto& p : model.Parameters()) {
    if (p.name == "alpha/weight") {
      nn::Tensor& t = p.var->value();
      for (int64_t e = 0; e < t.numel(); ++e) t.data()[e] *= -0.5f;
    }
  }
  model.RetirePooledSessions();
  EXPECT_GT(model.transition_memo_stats().invalidations,
            before.invalidations);
  EXPECT_GT(model.transition_memo_stats().epoch, before.epoch);

  // A fresh model built from the mutated weights is the ground truth.
  const std::vector<nn::NamedTensor> snapshot = nn::SnapshotParameters(model);
  auto fresh = DeepSTModel::LoadFromParams(world.net(), cfg, nullptr,
                                           snapshot);
  ASSERT_TRUE(fresh.ok());
  util::Rng crng_a(62), crng_b(62);
  for (const auto* rec : trips) {
    const RouteQuery query = eval::QueryFor(rec->trip);
    PredictionContext ctx_m = model.MakeContext(query, &crng_a);
    PredictionContext ctx_f = fresh.value()->MakeContext(query, &crng_b);
    util::Rng r1(4), r2(4);
    EXPECT_EQ(model.PredictRouteBeam(ctx_m, query.origin, &r1),
              fresh.value()->PredictRouteBeam(ctx_f, query.origin, &r2));
    EXPECT_EQ(model.ScoreRoute(ctx_m, rec->trip.route),
              fresh.value()->ScoreRoute(ctx_f, rec->trip.route));
  }
}

// Concurrent pool traffic: counters must stay exact (hits + misses ==
// lookups, insertions == misses at quiescence) and every thread must see
// the same bitwise routes.
TEST(MemoConcurrencyTest, HitAccountingIsExactUnderConcurrency) {
  auto& world = TestWorld();
  const auto trips = TestTrips(4);
  ASSERT_GE(trips.size(), 2u);
  DeepSTConfig cfg = MemoConfig();
  DeepSTModel model(world.net(), cfg, nullptr);
  ASSERT_NE(model.transition_memo(), nullptr);

  util::Rng crng(71);
  std::vector<PredictionContext> ctxs;
  std::vector<RouteQuery> queries;
  std::vector<traj::Route> want;
  for (const auto* rec : trips) {
    queries.push_back(eval::QueryFor(rec->trip));
    ctxs.push_back(model.MakeContext(queries.back(), &crng));
    util::Rng r(5);
    want.push_back(
        model.PredictRouteBeam(ctxs.back(), queries.back().origin, &r));
  }

  constexpr int kThreads = 4;
  constexpr int kReps = 6;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (size_t q = 0; q < queries.size(); ++q) {
          util::Rng r(5);
          const traj::Route got =
              model.PredictRouteBeam(ctxs[q], queries[q].origin, &r);
          if (got != want[q]) ++mismatches[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
  const auto st = model.transition_memo_stats();
  EXPECT_GT(st.lookups, 0);
  EXPECT_GT(st.hits, 0);
  EXPECT_EQ(st.hits + st.misses, st.lookups);
  EXPECT_EQ(st.insertions, st.misses);
  EXPECT_EQ(model.outstanding_session_leases(), 0);
}

}  // namespace
}  // namespace core
}  // namespace deepst
