// Live traffic pipeline coverage (docs/streaming.md): WAL round-trip and
// torn-tail recovery across a corruption corpus, deterministic incremental
// folds, double-buffered snapshot swaps with epoch-pinned readers, what-if
// overlays, and the serving-layer ingest/pinning contract. The crash-safety
// claims proven here byte-for-byte are the same ones tools/check_serve.sh
// re-proves end-to-end with a kill -9 against the daemon.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/neural_router.h"
#include "core/deepst_model.h"
#include "core/serving.h"
#include "eval/world.h"
#include "traffic/overlay.h"
#include "traffic/snapshot.h"
#include "traffic/store.h"
#include "traffic/wal.h"
#include "util/fault_injector.h"

namespace deepst {
namespace {

using traffic::ObservationWal;
using traffic::SpeedObservation;
using traffic::WalReplayReport;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "streaming_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<SpeedObservation> MakeRows(int n, double t0) {
  std::vector<SpeedObservation> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({{100.0 + 7.0 * i, 50.0 + 11.0 * i}, t0 + 10.0 * i,
                    2.0 + (i % 9)});
  }
  return rows;
}

void ExpectRowsEqual(const std::vector<SpeedObservation>& a,
                     const std::vector<SpeedObservation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s) << i;
    EXPECT_DOUBLE_EQ(a[i].pos.x, b[i].pos.x) << i;
    EXPECT_DOUBLE_EQ(a[i].pos.y, b[i].pos.y) << i;
    EXPECT_DOUBLE_EQ(a[i].speed_mps, b[i].speed_mps) << i;
  }
}

bool SameTensorBytes(const nn::Tensor& a, const nn::Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

geo::GridSpec TestGrid() {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({800, 800});
  return geo::GridSpec(box, 200.0);
}

std::unique_ptr<traffic::TrafficTensorCache> FreshCache() {
  return std::make_unique<traffic::TrafficTensorCache>(TestGrid(), 1200.0,
                                                       1800.0);
}

class StreamingTest : public testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Instance().Reset(); }
};

// -- WAL ---------------------------------------------------------------------

TEST_F(StreamingTest, WalRoundTripAndReopen) {
  const std::string path = TempPath("roundtrip.wal");
  std::remove(path.c_str());
  const auto batch1 = MakeRows(3, 100.0);
  const auto batch2 = MakeRows(5, 500.0);
  {
    std::vector<SpeedObservation> replayed;
    WalReplayReport report;
    auto wal = ObservationWal::Open(path, {}, &replayed, &report);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_TRUE(replayed.empty());
    EXPECT_EQ(report.frames, 0u);
    ASSERT_TRUE(wal.value()->Append(batch1).ok());
    ASSERT_TRUE(wal.value()->Append(batch2).ok());
    EXPECT_EQ(wal.value()->stats().appended_frames, 2);
    EXPECT_EQ(wal.value()->stats().appended_rows, 8);
  }  // destructor syncs + closes
  std::vector<SpeedObservation> rows;
  WalReplayReport report;
  ASSERT_TRUE(traffic::ReplayWalFile(path, &rows, &report).ok());
  EXPECT_EQ(report.frames, 2u);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_DOUBLE_EQ(report.min_time_s, 100.0);
  EXPECT_DOUBLE_EQ(report.max_time_s, 540.0);
  std::vector<SpeedObservation> expected = batch1;
  expected.insert(expected.end(), batch2.begin(), batch2.end());
  ExpectRowsEqual(expected, rows);

  // Re-open replays and appends on the existing tail.
  std::vector<SpeedObservation> replayed;
  auto wal = ObservationWal::Open(path, {}, &replayed, nullptr);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ExpectRowsEqual(expected, replayed);
  ASSERT_TRUE(wal.value()->Append(MakeRows(1, 900.0)).ok());
  wal.value().reset();
  rows.clear();
  ASSERT_TRUE(traffic::ReplayWalFile(path, &rows, &report).ok());
  EXPECT_EQ(rows.size(), 9u);
  EXPECT_EQ(report.frames, 3u);
}

// Every way a kill -9 or disk corruption can mangle the tail: truncation at
// each interesting boundary, bit flips in the length/crc/payload, and an
// absurd length field. Replay must return a clean OK with the intact prefix
// and exact drop accounting -- never crash, never abort, never resurrect
// bytes past the tear.
TEST_F(StreamingTest, TornTailCorruptionCorpus) {
  const std::string base_path = TempPath("corpus_base.wal");
  std::remove(base_path.c_str());
  {
    auto wal = ObservationWal::Open(base_path, {}, nullptr, nullptr);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(MakeRows(2, 0.0)).ok());    // frame 1
    ASSERT_TRUE(wal.value()->Append(MakeRows(3, 1000.0)).ok()); // frame 2
  }
  const std::string good = ReadFileBytes(base_path);
  constexpr size_t kHeader = 16;
  constexpr size_t kFrame1 = 8 + 8 + 2 * 32;  // header+payload, 2 rows
  ASSERT_EQ(good.size(), kHeader + kFrame1 + (8 + 8 + 3 * 32));

  struct Case {
    const char* name;
    std::string bytes;
    uint64_t want_frames;
    uint64_t want_rows;
    bool want_torn = true;
  };
  std::vector<Case> corpus;
  // Truncations: mid frame-2 payload, mid frame-2 header, exactly after
  // frame 1 (a VALID shorter log, not a tear), mid frame-1 -> empty log.
  corpus.push_back({"trunc_mid_payload2",
                    good.substr(0, good.size() - 17), 1, 2});
  corpus.push_back({"trunc_mid_header2",
                    good.substr(0, kHeader + kFrame1 + 5), 1, 2});
  corpus.push_back({"trunc_frame_boundary",
                    good.substr(0, kHeader + kFrame1), 1, 2,
                    /*want_torn=*/false});
  corpus.push_back({"trunc_mid_frame1", good.substr(0, kHeader + 20), 0, 0});
  // Bit flips: payload byte of frame 2 (CRC catches it), CRC byte itself,
  // and a length field claiming 2^31 rows (allocation-bomb guard).
  {
    std::string flip = good;
    flip[kHeader + kFrame1 + 8 + 8 + 4] ^= 0x01;
    corpus.push_back({"flip_payload2", flip, 1, 2});
  }
  {
    std::string flip = good;
    flip[kHeader + kFrame1 + 4] ^= 0x80;  // crc field
    corpus.push_back({"flip_crc2", flip, 1, 2});
  }
  {
    std::string flip = good;
    flip[kHeader + kFrame1 + 3] = '\x7f';  // length field -> huge
    corpus.push_back({"huge_length2", flip, 1, 2});
  }
  {
    std::string flip = good;
    flip[kHeader + 8 + 8 + 4] ^= 0x01;  // payload of frame 1
    corpus.push_back({"flip_payload1", flip, 0, 0});
  }

  for (const Case& c : corpus) {
    SCOPED_TRACE(c.name);
    const std::string path = TempPath(std::string("corpus_") + c.name);
    WriteFileBytes(path, c.bytes);
    std::vector<SpeedObservation> rows;
    WalReplayReport report;
    const util::Status status = traffic::ReplayWalFile(path, &rows, &report);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(report.frames, c.want_frames);
    EXPECT_EQ(report.rows, c.want_rows);
    EXPECT_EQ(rows.size(), c.want_rows);
    EXPECT_EQ(report.torn_tail, c.want_torn);
    EXPECT_EQ(report.valid_bytes,
              kHeader + (c.want_frames == 1 ? kFrame1 : 0));
    if (c.want_torn) {
      EXPECT_EQ(report.torn_tail_offset, report.valid_bytes);
    }
    EXPECT_EQ(report.dropped_bytes, c.bytes.size() - report.valid_bytes);

    // Recovery: Open truncates the tear away and appending resumes on a
    // whole-frame boundary; the recovered prefix survives byte-identical.
    std::vector<SpeedObservation> replayed;
    auto wal = ObservationWal::Open(path, {}, &replayed, nullptr);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ExpectRowsEqual(rows, replayed);
    ASSERT_TRUE(wal.value()->Append(MakeRows(1, 9999.0)).ok());
    wal.value().reset();
    std::vector<SpeedObservation> after;
    WalReplayReport report2;
    ASSERT_TRUE(traffic::ReplayWalFile(path, &after, &report2).ok());
    EXPECT_FALSE(report2.torn_tail);
    EXPECT_EQ(after.size(), c.want_rows + 1);
  }

  // Header damage is a different animal: not a WAL at all -> InvalidArgument
  // (the probe-chain contract), still no crash.
  {
    std::string bad_magic = good;
    bad_magic[0] ^= 0xff;
    const std::string path = TempPath("corpus_bad_magic");
    WriteFileBytes(path, bad_magic);
    WalReplayReport report;
    const util::Status status =
        traffic::ReplayWalFile(path, nullptr, &report);
    EXPECT_EQ(status.code(), util::Status::Code::kInvalidArgument);
  }
  {
    const std::string path = TempPath("corpus_short_header");
    WriteFileBytes(path, good.substr(0, 7));
    const util::Status status = traffic::ReplayWalFile(path, nullptr, nullptr);
    EXPECT_EQ(status.code(), util::Status::Code::kInvalidArgument);
  }
}

TEST_F(StreamingTest, WalFaultPointsSurfaceCleanly) {
  const std::string path = TempPath("faults.wal");
  std::remove(path.c_str());
  auto wal = ObservationWal::Open(path, {}, nullptr, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(MakeRows(2, 0.0)).ok());

  util::FaultInjector::Instance().Arm("wal.append", util::FaultKind::kIoError);
  const util::Status append = wal.value()->Append(MakeRows(2, 100.0));
  EXPECT_EQ(append.code(), util::Status::Code::kIoError);
  EXPECT_EQ(wal.value()->stats().appended_frames, 1);  // nothing acked

  util::FaultInjector::Instance().Reset();
  ASSERT_TRUE(wal.value()->Append(MakeRows(2, 200.0)).ok());
  util::FaultInjector::Instance().Arm("wal.fsync", util::FaultKind::kIoError);
  EXPECT_EQ(wal.value()->Sync().code(), util::Status::Code::kIoError);
  util::FaultInjector::Instance().Reset();
  EXPECT_TRUE(wal.value()->Sync().ok());
  wal.value().reset();

  // The failed append left the log valid: both acked frames replay.
  std::vector<SpeedObservation> rows;
  ASSERT_TRUE(traffic::ReplayWalFile(path, &rows, nullptr).ok());
  EXPECT_EQ(rows.size(), 4u);

  util::FaultInjector::Instance().Arm("wal.replay", util::FaultKind::kIoError,
                                      /*after=*/0, /*count=*/-1);
  EXPECT_EQ(traffic::ReplayWalFile(path, nullptr, nullptr).code(),
            util::Status::Code::kIoError);
  EXPECT_FALSE(ObservationWal::Open(path, {}, nullptr, nullptr).ok());
}

TEST_F(StreamingTest, DescribeWalReportsHealthAndTornTail) {
  const std::string path = TempPath("describe.wal");
  std::remove(path.c_str());
  {
    auto wal = ObservationWal::Open(path, {}, nullptr, nullptr);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(MakeRows(4, 100.0)).ok());
  }
  bool healthy = false;
  auto report = traffic::DescribeWalFile(path, &healthy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(healthy);
  EXPECT_NE(report.value().find("traffic wal v1"), std::string::npos);
  EXPECT_NE(report.value().find("crc OK"), std::string::npos);

  std::string torn = ReadFileBytes(path);
  torn.resize(torn.size() - 9);
  WriteFileBytes(path, torn);
  report = traffic::DescribeWalFile(path, &healthy);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(healthy);
  EXPECT_NE(report.value().find("TORN TAIL"), std::string::npos);

  // Not-a-WAL probes fall through with InvalidArgument.
  WriteFileBytes(path, std::string("definitely not a wal file header"));
  EXPECT_EQ(traffic::DescribeWalFile(path, &healthy).status().code(),
            util::Status::Code::kInvalidArgument);
}

// A crash mid-append is byte-equivalent to truncation: replaying the torn
// file recovers exactly the acked prefix, and the snapshot rebuilt from the
// recovered rows is bitwise identical to one built from the prefix rows.
TEST_F(StreamingTest, CrashEquivalenceRebuildsIdenticalSnapshot) {
  const std::string path = TempPath("crash.wal");
  std::remove(path.c_str());
  const auto acked = MakeRows(6, 0.0);
  const auto lost = MakeRows(4, 2000.0);
  {
    auto wal = ObservationWal::Open(path, {}, nullptr, nullptr);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(acked).ok());
    ASSERT_TRUE(wal.value()->Append(lost).ok());
  }
  // Simulate the kill -9 landing mid-way through the second frame's write.
  std::string bytes = ReadFileBytes(path);
  bytes.resize(bytes.size() - 2 * 32 - 3);
  WriteFileBytes(path, bytes);

  std::vector<SpeedObservation> recovered;
  WalReplayReport report;
  ASSERT_TRUE(traffic::ReplayWalFile(path, &recovered, &report).ok());
  EXPECT_TRUE(report.torn_tail);
  ExpectRowsEqual(acked, recovered);

  auto from_prefix = FreshCache();
  from_prefix->AddObservations(acked);
  auto from_replay = FreshCache();
  from_replay->AddObservations(recovered);
  for (double t : {1500.0, 2500.0, 3600.0}) {
    EXPECT_TRUE(SameTensorBytes(from_prefix->TensorForTime(t),
                                from_replay->TensorForTime(t)))
        << "t=" << t;
  }
}

// -- SnapshotStore -----------------------------------------------------------

TEST_F(StreamingTest, IncrementalFoldBitwiseEqualsOneShot) {
  const auto all = MakeRows(30, 0.0);
  auto one_shot = FreshCache();
  one_shot->AddObservations(all);

  traffic::SnapshotStore store(FreshCache(), nullptr, {});
  EXPECT_EQ(store.generation(), 1u);
  // Same rows in three ingest/swap rounds: any partitioning must rebuild
  // the same bytes (the deterministic-fold contract WAL replay leans on).
  for (int part = 0; part < 3; ++part) {
    std::vector<SpeedObservation> rows(all.begin() + 10 * part,
                                       all.begin() + 10 * (part + 1));
    ASSERT_TRUE(store.Ingest(rows).ok());
    store.SwapNow();
  }
  EXPECT_EQ(store.generation(), 4u);
  traffic::SnapshotPin pin = store.Acquire();
  for (double t : {1500.0, 2500.0}) {
    EXPECT_TRUE(SameTensorBytes(one_shot->TensorForTime(t),
                                pin.cache()->TensorForTime(t)))
        << "t=" << t;
  }
}

TEST_F(StreamingTest, PinnedReadersKeepTheirGenerationAcrossSwaps) {
  traffic::SnapshotStore store(FreshCache(), nullptr, {});
  traffic::SnapshotPin old_pin = store.Acquire();
  EXPECT_EQ(old_pin.generation(), 1u);
  const double probe_t = 1500.0;
  nn::Tensor before = old_pin.cache()->TensorForTime(probe_t);  // empty gen 1

  ASSERT_TRUE(store.Ingest(MakeRows(8, 0.0)).ok());
  std::atomic<uint64_t> swapped_gen{0};
  store.set_on_swap([&swapped_gen](uint64_t g) { swapped_gen = g; });
  EXPECT_EQ(store.SwapNow(), 2u);
  EXPECT_EQ(swapped_gen.load(), 2u);

  // The pin still reads generation 1, bit for bit, while new admissions
  // see generation 2 with the folded rows.
  EXPECT_EQ(old_pin.generation(), 1u);
  EXPECT_TRUE(SameTensorBytes(before, old_pin.cache()->TensorForTime(probe_t)));
  traffic::SnapshotPin new_pin = store.Acquire();
  EXPECT_EQ(new_pin.generation(), 2u);
  EXPECT_GT(new_pin.cache()->TensorForTime(probe_t).Sum(), 0.0);

  traffic::SnapshotStoreStats stats = store.stats();
  EXPECT_EQ(stats.pinned_readers, 2);
  EXPECT_GE(stats.pinned_reader_high_water, 2);
  EXPECT_EQ(stats.generation, static_cast<uint64_t>(stats.swaps) + 1);
  old_pin.Release();
  new_pin.Release();
  EXPECT_EQ(store.stats().pinned_readers, 0);
  EXPECT_GE(store.stats().pinned_reader_high_water, 2);
}

TEST_F(StreamingTest, IngestValidatesRowsAndCountsRejects) {
  const std::string path = TempPath("validate.wal");
  std::remove(path.c_str());
  auto wal = ObservationWal::Open(path, {}, nullptr, nullptr);
  ASSERT_TRUE(wal.ok());
  traffic::SnapshotStore store(FreshCache(), std::move(wal).value(), {});

  std::vector<SpeedObservation> rows = MakeRows(3, 100.0);
  rows.push_back({{1.0, 1.0}, -5.0, 3.0});                      // negative time
  rows.push_back({{1.0, 1.0}, 10.0, -1.0});                     // negative speed
  rows.push_back({{std::nan(""), 1.0}, 10.0, 3.0});             // non-finite
  traffic::IngestReport report;
  ASSERT_TRUE(store.Ingest(rows, &report).ok());
  EXPECT_EQ(report.accepted, 3);
  EXPECT_EQ(report.rejected, 3);
  traffic::SnapshotStoreStats stats = store.stats();
  EXPECT_EQ(stats.rows_accepted, 3);
  EXPECT_EQ(stats.rows_rejected, 3);
  EXPECT_EQ(stats.rows_pending, 3);

  // Only the accepted rows were made durable.
  ASSERT_TRUE(store.SyncWal().ok());
  std::vector<SpeedObservation> durable;
  ASSERT_TRUE(traffic::ReplayWalFile(path, &durable, nullptr).ok());
  EXPECT_EQ(durable.size(), 3u);
}

TEST_F(StreamingTest, WalAppendFailureAcksNothing) {
  const std::string path = TempPath("walfail.wal");
  std::remove(path.c_str());
  auto wal = ObservationWal::Open(path, {}, nullptr, nullptr);
  ASSERT_TRUE(wal.ok());
  traffic::SnapshotStore store(FreshCache(), std::move(wal).value(), {});

  util::FaultInjector::Instance().Arm("wal.append", util::FaultKind::kIoError);
  traffic::IngestReport report;
  const util::Status status = store.Ingest(MakeRows(5, 0.0), &report);
  EXPECT_EQ(status.code(), util::Status::Code::kIoError);
  EXPECT_EQ(report.accepted, 0);
  traffic::SnapshotStoreStats stats = store.stats();
  EXPECT_EQ(stats.rows_accepted, 0);
  EXPECT_EQ(stats.rows_pending, 0);  // nothing queued without durability
  EXPECT_EQ(stats.rows_rejected, 5);
  // The swap after a failed ingest publishes nothing new.
  EXPECT_EQ(store.SwapNow(), 1u);
}

TEST_F(StreamingTest, BackgroundAggregatorPublishes) {
  traffic::SnapshotStoreConfig cfg;
  cfg.swap_interval_ms = 2.0;
  traffic::SnapshotStore store(FreshCache(), nullptr, cfg);
  store.Start();
  ASSERT_TRUE(store.Ingest(MakeRows(4, 0.0)).ok());
  for (int i = 0; i < 500 && store.generation() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(store.generation(), 2u);
  store.Stop();
}

// The restart contract end-to-end at the store level: WAL replay queued via
// QueueRecovered and swapped rebuilds bitwise-identical snapshots no matter
// how the live run partitioned its ingests.
TEST_F(StreamingTest, RestartReplayRebuildsIdenticalGenerations) {
  const std::string path = TempPath("restart.wal");
  std::remove(path.c_str());
  std::vector<nn::Tensor> live_tensors;
  const std::vector<double> probes = {1500.0, 2700.0, 3900.0};
  {
    auto wal = ObservationWal::Open(path, {}, nullptr, nullptr);
    ASSERT_TRUE(wal.ok());
    traffic::SnapshotStore store(FreshCache(), std::move(wal).value(), {});
    ASSERT_TRUE(store.Ingest(MakeRows(7, 0.0)).ok());
    store.SwapNow();
    ASSERT_TRUE(store.Ingest(MakeRows(5, 1300.0)).ok());
    ASSERT_TRUE(store.Ingest(MakeRows(4, 2600.0)).ok());
    store.SwapNow();
    traffic::SnapshotPin pin = store.Acquire();
    for (double t : probes) {
      live_tensors.push_back(pin.cache()->TensorForTime(t));
    }
    ASSERT_TRUE(store.SyncWal().ok());
  }
  // "Restart": replay the WAL into a fresh store seeded the same way.
  std::vector<SpeedObservation> replayed;
  auto wal = ObservationWal::Open(path, {}, &replayed, nullptr);
  ASSERT_TRUE(wal.ok());
  traffic::SnapshotStore store(FreshCache(), std::move(wal).value(), {});
  store.QueueRecovered(std::move(replayed));
  EXPECT_EQ(store.SwapNow(), 2u);
  traffic::SnapshotPin pin = store.Acquire();
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_TRUE(
        SameTensorBytes(live_tensors[i], pin.cache()->TensorForTime(probes[i])))
        << "t=" << probes[i];
  }
}

// -- Overlays ----------------------------------------------------------------

TEST_F(StreamingTest, OverlayCloseAndScaleSemantics) {
  const geo::GridSpec grid = TestGrid();
  traffic::TrafficTensorBuilder builder(grid, /*speed_norm_mps=*/10.0);
  nn::Tensor base = builder.Build({{{100, 100}, 0.0, 10.0},   // cell (0,0)
                                   {{500, 500}, 0.0, 10.0}}); // cell (2,2)
  const nn::Tensor before = base;
  const int cols = grid.cols();
  const int64_t cells = grid.num_cells();

  traffic::TrafficOverlay overlay;
  overlay.edits.push_back({traffic::OverlayEdit::Kind::kCloseCells,
                           {0, 0}, {399, 399}, 1.0});
  overlay.edits.push_back({traffic::OverlayEdit::Kind::kScaleSpeed,
                           {400, 400}, {799, 799}, 0.5});
  ASSERT_TRUE(traffic::ValidateOverlay(overlay).ok());
  nn::Tensor edited = traffic::ApplyOverlay(base, grid, overlay);

  // Closed region: speed 0, full observation confidence ("observed, nothing
  // moves" -- not "unobserved").
  EXPECT_FLOAT_EQ(edited[0 * cols + 0], 0.0f);
  EXPECT_FLOAT_EQ(edited[cells + 0 * cols + 0], 1.0f);
  EXPECT_FLOAT_EQ(edited[cells + 1 * cols + 1], 1.0f);  // unobserved but closed
  // Scaled region: speed halved, count untouched.
  EXPECT_FLOAT_EQ(edited[2 * cols + 2], before[2 * cols + 2] * 0.5f);
  EXPECT_FLOAT_EQ(edited[cells + 2 * cols + 2], before[cells + 2 * cols + 2]);
  // The base was never mutated (pinned snapshots stay shared).
  EXPECT_TRUE(SameTensorBytes(base, before));
}

TEST_F(StreamingTest, OverlaySpecGrammar) {
  auto parsed =
      traffic::ParseOverlaySpec("close@0,0,100,100;scale@0,0,400,400*0.7");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().edits.size(), 2u);
  EXPECT_EQ(parsed.value().edits[0].kind,
            traffic::OverlayEdit::Kind::kCloseCells);
  EXPECT_EQ(parsed.value().edits[1].kind,
            traffic::OverlayEdit::Kind::kScaleSpeed);
  EXPECT_DOUBLE_EQ(parsed.value().edits[1].factor, 0.7);

  for (const char* bad :
       {"bogus@0,0,1,1", "close@0,0,1", "close@0,0,1,nope",
        "scale@0,0,1,1", "scale@0,0,1,1*0", "scale@0,0,1,1*11",
        "scale@0,0,1,1*nan", "close@5,5,1,1", ""}) {
    EXPECT_FALSE(traffic::ParseOverlaySpec(bad).ok()) << bad;
  }
}

// -- Serving integration -----------------------------------------------------

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "streaming-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

core::DeepSTConfig SmallConfig() {
  core::DeepSTConfig cfg;
  cfg.segment_embedding_dim = 12;
  cfg.gru_hidden = 24;
  cfg.gru_layers = 2;
  cfg.dest_dim = 12;
  cfg.traffic_dim = 8;
  cfg.num_proxies = 8;
  cfg.cnn_channels = 6;
  cfg.mlp_hidden = 24;
  return cfg;
}

core::DeepSTModel& TestModel() {
  static core::DeepSTModel* model = new core::DeepSTModel(
      TestWorld().net(), baselines::DeepStConfigOf(SmallConfig()),
      TestWorld().traffic_cache());
  return *model;
}

// A test trip whose start slot has live traffic, so pinned snapshots (not
// the prior-mean fallback) actually feed the encoder.
const traj::TripRecord& CoveredTrip() {
  static const traj::TripRecord* covered = [] {
    for (const auto* rec : TestWorld().split().test) {
      if (rec->trip.route.size() < 3) continue;
      const core::RouteQuery q = eval::QueryFor(rec->trip);
      if (TestWorld().traffic_cache()->HasObservations(q.start_time_s)) {
        return rec;
      }
    }
    return static_cast<const traj::TripRecord*>(nullptr);
  }();
  EXPECT_NE(covered, nullptr) << "no test trip with traffic coverage";
  return *covered;
}

// Store whose generation 1 clones the world's dataset-seeded cache, the
// same seeding the serve daemon does.
std::unique_ptr<traffic::SnapshotStore> SeededStore() {
  return std::make_unique<traffic::SnapshotStore>(
      TestWorld().traffic_cache()->Clone(), nullptr,
      traffic::SnapshotStoreConfig{});
}

TEST_F(StreamingTest, ServingPinsGenerationAndStampsResults) {
  auto store = SeededStore();
  core::ServingContext serving(&TestModel(), &TestWorld().index(), {},
                               store.get());
  const core::RouteQuery query = eval::QueryFor(CoveredTrip().trip);

  auto before = serving.Predict(query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.value().snapshot_generation, 1u);
  auto again = serving.Predict(query);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().route, before.value().route);

  // Feed the query's own window so the swap actually changes its context.
  std::vector<SpeedObservation> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({TestWorld().net().SegmentMidpoint(static_cast<
                        roadnet::SegmentId>(i % TestWorld().net()
                                                    .num_segments())),
                    query.start_time_s - 400.0 - i, 1.0});
  }
  ASSERT_TRUE(store->Ingest(rows).ok());
  EXPECT_EQ(store->SwapNow(), 2u);

  auto after = serving.Predict(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().snapshot_generation, 2u);
  // New generation, new context: the result is deterministic per generation.
  auto after2 = serving.Predict(query);
  ASSERT_TRUE(after2.ok());
  EXPECT_EQ(after2.value().route, after.value().route);
  EXPECT_EQ(serving.stats().queries, 4);
}

TEST_F(StreamingTest, MemoEpochBumpsOnSwapAndResultsStayBitwise) {
  auto store = SeededStore();
  core::DeepSTModel& model = TestModel();
  store->set_on_swap(
      [&model](uint64_t) { model.InvalidateTransitionCache(); });
  core::ServingContext serving(&model, &TestWorld().index(), {}, store.get());
  const core::RouteQuery query = eval::QueryFor(CoveredTrip().trip);

  auto before = serving.Predict(query);
  ASSERT_TRUE(before.ok());
  const auto epoch_before = model.transition_memo_stats().epoch;

  // Rows far in the future: the snapshot changes generation but the query's
  // slot window does not -- its answer must stay bitwise identical even
  // though the memo epoch was bumped (stale hits can never serve).
  ASSERT_TRUE(store->Ingest(MakeRows(5, query.start_time_s + 900000.0)).ok());
  EXPECT_EQ(store->SwapNow(), 2u);
  EXPECT_EQ(model.transition_memo_stats().epoch, epoch_before + 1);

  auto after = serving.Predict(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().route, before.value().route);
  EXPECT_EQ(after.value().snapshot_generation, 2u);
}

TEST_F(StreamingTest, IngestRequestsThroughServingContext) {
  // Without a store: refused, counted as a failure.
  core::ServingContext static_serving(&TestModel(), &TestWorld().index(), {});
  std::vector<core::ServingRequest> reqs(1);
  reqs[0].kind = core::ServingRequest::Kind::kIngest;
  reqs[0].observations = MakeRows(3, 100.0);
  auto results = static_serving.ExecuteBatch(&reqs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status().code(),
            util::Status::Code::kFailedPrecondition);

  // With a store: the OK result is the durability ack, and co-riding
  // predicts in the same batch are unaffected (they pinned at admission).
  auto store = SeededStore();
  core::ServingContext serving(&TestModel(), &TestWorld().index(), {},
                               store.get());
  const core::RouteQuery query = eval::QueryFor(CoveredTrip().trip);
  auto solo = serving.Predict(query);
  ASSERT_TRUE(solo.ok());

  std::vector<core::ServingRequest> batch(3);
  batch[0].query = query;
  batch[1].kind = core::ServingRequest::Kind::kIngest;
  batch[1].observations = MakeRows(4, 100.0);
  batch[1].observations.push_back({{1, 1}, -3.0, 1.0});  // rejected row
  batch[2].query = query;
  results = serving.ExecuteBatch(&batch);
  ASSERT_EQ(results.size(), 3u);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(results[1].value().ingested, 4);
  EXPECT_EQ(results[1].value().ingest_rejected, 1);
  EXPECT_EQ(results[0].value().route, solo.value().route);
  EXPECT_EQ(results[2].value().route, solo.value().route);
  EXPECT_EQ(results[0].value().snapshot_generation, 1u);
  EXPECT_EQ(store->stats().rows_pending, 4);
}

TEST_F(StreamingTest, WhatIfOverlayServesCounterfactuals) {
  auto store = SeededStore();
  core::ServingContext serving(&TestModel(), &TestWorld().index(), {},
                               store.get());
  const core::RouteQuery base_query = eval::QueryFor(CoveredTrip().trip);

  auto reality = serving.Predict(base_query);
  ASSERT_TRUE(reality.ok());
  EXPECT_FALSE(reality.value().what_if);

  core::RouteQuery what_if = base_query;
  what_if.overlay.edits.push_back(
      {traffic::OverlayEdit::Kind::kScaleSpeed,
       TestWorld().net().bounds().min, TestWorld().net().bounds().max, 0.3});
  auto scenario = serving.Predict(what_if);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_TRUE(scenario.value().what_if);
  EXPECT_FALSE(scenario.value().degradations &
               core::kDegradationOverlayDropped);
  // Deterministic: same pinned snapshot + same overlay -> same route.
  auto scenario2 = serving.Predict(what_if);
  ASSERT_TRUE(scenario2.ok());
  EXPECT_EQ(scenario2.value().route, scenario.value().route);
  // The overlay never leaks into reality.
  auto reality2 = serving.Predict(base_query);
  ASSERT_TRUE(reality2.ok());
  EXPECT_EQ(reality2.value().route, reality.value().route);
  EXPECT_FALSE(reality2.value().what_if);

  // Malformed overlays are invalid queries, not degradations.
  core::RouteQuery bad = base_query;
  bad.overlay.edits.push_back({traffic::OverlayEdit::Kind::kScaleSpeed,
                               {0, 0}, {100, 100}, -1.0});
  EXPECT_EQ(serving.Predict(bad).status().code(),
            util::Status::Code::kInvalidArgument);

  const core::ServingStats stats = serving.stats();
  EXPECT_EQ(stats.what_if, 2);
  EXPECT_EQ(stats.failures, 1);
}

TEST_F(StreamingTest, OverlayNeverMasksDegradation) {
  auto store = SeededStore();
  // A query far past the feed's latest observation: stale -> prior mean.
  core::RouteQuery stale_query = eval::QueryFor(CoveredTrip().trip);
  stale_query.start_time_s += 30.0 * 24 * 3600.0;
  stale_query.overlay.edits.push_back(
      {traffic::OverlayEdit::Kind::kCloseCells, {0, 0}, {100, 100}, 1.0});

  // Strict refuses the prior-mean fallback BEFORE the overlay is even
  // considered: a counterfactual can never paper over a degraded feed.
  core::ServingConfig strict;
  strict.strict = true;
  core::ServingContext strict_serving(&TestModel(), &TestWorld().index(),
                                      strict, store.get());
  EXPECT_EQ(strict_serving.Predict(stale_query).status().code(),
            util::Status::Code::kFailedPrecondition);

  // Non-strict: serves under the prior mean, drops the overlay, and says so.
  core::ServingContext serving(&TestModel(), &TestWorld().index(), {},
                               store.get());
  auto result = serving.Predict(stale_query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().what_if);
  EXPECT_TRUE(result.value().degradations &
              core::kDegradationTrafficPriorMean);
  EXPECT_TRUE(result.value().degradations &
              core::kDegradationOverlayDropped);
  EXPECT_EQ(serving.stats().overlay_dropped, 1);
  EXPECT_EQ(serving.stats().what_if, 0);
}

// Race the reader fleet against live swaps: every result must be internally
// consistent with the generation it pinned -- one route per generation,
// bit for bit, no matter when the swap landed relative to the query.
TEST_F(StreamingTest, ConcurrentSwapsNeverTearAQuery) {
  auto store = SeededStore();
  core::DeepSTModel& model = TestModel();
  store->set_on_swap(
      [&model](uint64_t) { model.InvalidateTransitionCache(); });
  core::ServingContext serving(&model, &TestWorld().index(), {}, store.get());
  const core::RouteQuery query = eval::QueryFor(CoveredTrip().trip);

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 12;
  std::vector<std::vector<std::pair<uint64_t, traj::Route>>> seen(kReaders);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int w = 0; w < kReaders; ++w) {
    readers.emplace_back([&serving, &seen, &query, w] {
      for (int i = 0; i < kQueriesPerReader; ++i) {
        auto result = serving.Predict(query);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        seen[static_cast<size_t>(w)].push_back(
            {result.value().snapshot_generation, result.value().route});
      }
    });
  }
  std::thread swapper([&store, &query, &stop] {
    int round = 0;
    while (!stop.load()) {
      std::vector<SpeedObservation> rows;
      for (int i = 0; i < 10; ++i) {
        rows.push_back({{50.0 + 20.0 * i, 50.0 + 10.0 * round},
                        query.start_time_s - 600.0 + round, 2.0 + round % 5});
      }
      (void)store->Ingest(rows);
      store->SwapNow();
      ++round;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& r : readers) r.join();
  stop = true;
  swapper.join();

  std::map<uint64_t, traj::Route> route_of_gen;
  int results = 0;
  for (const auto& per_reader : seen) {
    for (const auto& [gen, route] : per_reader) {
      ++results;
      EXPECT_GE(gen, 1u);
      auto [it, inserted] = route_of_gen.emplace(gen, route);
      if (!inserted) {
        EXPECT_EQ(it->second, route) << "generation " << gen
                                     << " served two different routes";
      }
    }
  }
  EXPECT_EQ(results, kReaders * kQueriesPerReader);
  EXPECT_EQ(store->stats().pinned_readers, 0);
}

}  // namespace
}  // namespace deepst
