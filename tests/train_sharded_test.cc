// Coverage for the data-parallel sharded training engine
// (docs/training-perf.md): gradient parity against the single-graph tape,
// bitwise thread-count invariance of a full sharded Fit, checkpoint/resume
// determinism under sharding, and the zero-allocation steady state of the
// per-shard autodiff arenas.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/trainer.h"
#include "eval/world.h"
#include "nn/backend.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace deepst {
namespace core {
namespace {

// Restores the serial backend when a test scope ends, so thread settings
// cannot leak between tests.
struct BackendGuard {
  ~BackendGuard() { nn::SetBackendThreads(1); }
};

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "sharded-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

// Randomness-free training loss: no traffic latents (also: no conv
// pipeline, whose batch statistics are legitimately shard-local) and no
// Gumbel proxy draws, so the sharded and the single-graph tape compute the
// same mathematical gradient and only float re-association separates them.
DeepSTConfig DeterministicTinyConfig() {
  DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.dest_dim = 8;
  cfg.mlp_hidden = 16;
  cfg.use_traffic = false;
  cfg.destination_mode = DestinationMode::kNone;
  return cfg;
}

// Full model (traffic conv pipeline with batch norm + Gumbel proxies): the
// hard case for schedule independence.
DeepSTConfig FullTinyConfig() {
  DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.dest_dim = 8;
  cfg.num_proxies = 8;
  cfg.mlp_hidden = 16;
  cfg.cnn_channels = 4;
  return cfg;
}

std::vector<const traj::Trip*> FirstTrips(size_t n) {
  std::vector<const traj::Trip*> batch;
  for (const auto* rec : TestWorld().split().train) {
    if (rec->trip.route.size() < 2) continue;
    batch.push_back(&rec->trip);
    if (batch.size() == n) break;
  }
  return batch;
}

std::vector<std::vector<float>> GradSnapshot(const DeepSTModel& model) {
  std::vector<std::vector<float>> grads;
  for (const auto& p : model.Parameters()) {
    if (p.var->has_grad()) {
      const nn::Tensor& g = p.var->grad();
      grads.emplace_back(g.data(), g.data() + g.numel());
    } else {
      grads.emplace_back();
    }
  }
  return grads;
}

// A single shard covering the whole batch exercises every moving part of
// the sharded engine (arena-leased graph nodes, the private gradient sink,
// the seeded backward) without re-associating any float sum, so it must
// reproduce the legacy tape bit for bit.
TEST(ShardedGradientTest, SingleShardIsBitwiseIdenticalToSingleGraph) {
  auto& world = TestWorld();
  const auto batch = FirstTrips(8);
  ASSERT_EQ(batch.size(), 8u);

  DeepSTModel model(world.net(), DeterministicTinyConfig(), nullptr);
  TrainerConfig legacy_cfg;
  legacy_cfg.micro_shard_size = 0;
  Trainer legacy(&model, legacy_cfg);
  const LossStats ref = legacy.ComputeBatchGradients(batch, /*batch_seed=*/5);
  const auto ref_grads = GradSnapshot(model);

  TrainerConfig shard_cfg;
  shard_cfg.micro_shard_size = static_cast<int>(batch.size());
  Trainer sharded(&model, shard_cfg);
  const LossStats got = sharded.ComputeBatchGradients(batch, /*batch_seed=*/5);
  const auto got_grads = GradSnapshot(model);

  EXPECT_DOUBLE_EQ(got.total, ref.total);
  EXPECT_DOUBLE_EQ(got.route_ce, ref.route_ce);
  EXPECT_EQ(got.num_transitions, ref.num_transitions);
  ASSERT_EQ(got_grads.size(), ref_grads.size());
  for (size_t p = 0; p < ref_grads.size(); ++p) {
    ASSERT_EQ(got_grads[p].size(), ref_grads[p].size()) << "param " << p;
    if (ref_grads[p].empty()) continue;
    EXPECT_EQ(0, std::memcmp(got_grads[p].data(), ref_grads[p].data(),
                             ref_grads[p].size() * sizeof(float)))
        << "parameter tensor " << p;
  }
}

// Splitting the batch across shards only regroups the per-trip gradient
// sums (each shard accumulates its trips, then shards combine in ascending
// order), so the sharded gradient matches the single-graph one to float
// accumulation noise.
TEST(ShardedGradientTest, MultiShardMatchesSingleGraph) {
  auto& world = TestWorld();
  const auto batch = FirstTrips(8);
  ASSERT_EQ(batch.size(), 8u);

  DeepSTModel model(world.net(), DeterministicTinyConfig(), nullptr);
  TrainerConfig legacy_cfg;
  legacy_cfg.micro_shard_size = 0;
  Trainer legacy(&model, legacy_cfg);
  const LossStats ref = legacy.ComputeBatchGradients(batch, /*batch_seed=*/5);
  const auto ref_grads = GradSnapshot(model);

  TrainerConfig shard_cfg;
  shard_cfg.micro_shard_size = 2;  // 4 shards
  Trainer sharded(&model, shard_cfg);
  const LossStats got = sharded.ComputeBatchGradients(batch, /*batch_seed=*/5);
  const auto got_grads = GradSnapshot(model);

  EXPECT_NEAR(got.total, ref.total, 1e-6 * std::abs(ref.total));
  EXPECT_EQ(got.num_transitions, ref.num_transitions);
  ASSERT_EQ(got_grads.size(), ref_grads.size());
  double max_diff = 0.0;
  for (size_t p = 0; p < ref_grads.size(); ++p) {
    ASSERT_EQ(got_grads[p].size(), ref_grads[p].size()) << "param " << p;
    for (size_t j = 0; j < ref_grads[p].size(); ++j) {
      max_diff = std::max(
          max_diff, std::abs(static_cast<double>(got_grads[p][j]) -
                             static_cast<double>(ref_grads[p][j])));
    }
  }
  // Measured ~1.2e-7: single-ULP float32 re-association from regrouping the
  // per-trip sums. Exact agreement is covered by the single-shard test.
  EXPECT_LE(max_diff, 1e-6) << "max |sharded - single-graph| gradient gap";
}

struct ShardedRun {
  std::vector<double> losses;
  std::vector<std::vector<float>> params;
};

ShardedRun FitSharded(int num_threads, int shard_size,
                      const std::string& checkpoint_dir = "",
                      int max_epochs = 3, bool resume = false) {
  auto& world = TestWorld();
  DeepSTModel model(world.net(), FullTinyConfig(), world.traffic_cache());
  TrainerConfig tcfg;
  tcfg.max_epochs = max_epochs;
  tcfg.patience = 100;  // determinism runs must not stop early
  tcfg.verbose = false;
  tcfg.num_threads = num_threads;
  tcfg.micro_shard_size = shard_size;
  tcfg.checkpoint_dir = checkpoint_dir;
  tcfg.resume = resume;
  Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();

  ShardedRun run;
  for (const auto& e : result.epochs) {
    run.losses.push_back(e.train_loss);
    run.losses.push_back(e.train_route_ce);
    run.losses.push_back(e.val_route_ce);
    EXPECT_GT(e.transitions, 0);
    EXPECT_GT(e.transitions_per_sec, 0.0);
  }
  for (const auto& p : model.Parameters()) {
    const nn::Tensor& v = p.var->value();
    run.params.emplace_back(v.data(), v.data() + v.numel());
  }
  return run;
}

void ExpectSameRun(const ShardedRun& a, const ShardedRun& b) {
  ASSERT_EQ(a.losses.size(), b.losses.size());
  ASSERT_FALSE(a.losses.empty());
  for (size_t i = 0; i < a.losses.size(); ++i) {
    // Bitwise: any schedule-dependent float reassociation shows up here.
    EXPECT_EQ(a.losses[i], b.losses[i]) << "loss " << i;
  }
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t p = 0; p < a.params.size(); ++p) {
    ASSERT_EQ(a.params[p].size(), b.params[p].size());
    EXPECT_EQ(0, std::memcmp(a.params[p].data(), b.params[p].data(),
                             a.params[p].size() * sizeof(float)))
        << "parameter tensor " << p;
  }
}

// The tentpole contract: a full sharded Fit — traffic conv pipeline, proxy
// draws, batch-norm stat replay and all — trains to bitwise identical
// parameters on 1, 2 and 4 threads.
TEST(ShardedTrainingTest, FitIsThreadCountInvariant) {
  BackendGuard guard;
  const ShardedRun one = FitSharded(1, 8);
  const ShardedRun two = FitSharded(2, 8);
  const ShardedRun four = FitSharded(4, 8);
  ExpectSameRun(one, two);
  ExpectSameRun(one, four);
}

// Sharding draws exactly one value per batch from the trainer's main rng
// stream, so checkpoints (which snapshot that stream at epoch boundaries)
// resume a sharded run bit for bit, same as the legacy path.
TEST(ShardedTrainingTest, ResumeIsBitwiseIdenticalToUninterrupted) {
  BackendGuard guard;
  const std::string dir = testing::TempDir() + "/deepst_sharded_resume";
  std::remove((dir + "/ckpt_latest.bin").c_str());
  std::remove((dir + "/ckpt_prev.bin").c_str());
  std::remove((dir + "/ckpt_best.bin").c_str());

  const ShardedRun ref = FitSharded(2, 8, /*checkpoint_dir=*/"",
                                    /*max_epochs=*/4);
  (void)FitSharded(2, 8, dir, /*max_epochs=*/2);
  const ShardedRun resumed = FitSharded(2, 8, dir, /*max_epochs=*/4,
                                        /*resume=*/true);
  ExpectSameRun(ref, resumed);
}

// Once every shape has been seen, repeated batches must lease all graph
// nodes and tensor storage from the recycling arenas: the miss counters
// stay flat, which is the measurable form of "the epoch loop allocates
// nothing at steady state".
TEST(ShardedTrainingTest, ArenaReachesZeroAllocSteadyState) {
  auto& world = TestWorld();
  const auto batch = FirstTrips(8);
  ASSERT_EQ(batch.size(), 8u);

  DeepSTModel model(world.net(), FullTinyConfig(), world.traffic_cache());
  TrainerConfig tcfg;
  tcfg.micro_shard_size = 2;
  Trainer trainer(&model, tcfg);

  // Warm-up: the first batches populate the node and buffer pools.
  for (uint64_t seed = 0; seed < 2; ++seed) {
    (void)trainer.ComputeBatchGradients(batch, seed);
  }
  const auto warm = trainer.arena_counters();
  for (uint64_t seed = 2; seed < 8; ++seed) {
    (void)trainer.ComputeBatchGradients(batch, seed);
  }
  const auto steady = trainer.arena_counters();
  EXPECT_EQ(steady.buffer_misses, warm.buffer_misses);
  EXPECT_EQ(steady.node_growths, warm.node_growths);
  EXPECT_GT(warm.node_growths, 0);  // the pools did get populated
}

}  // namespace
}  // namespace core
}  // namespace deepst
