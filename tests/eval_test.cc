#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/world.h"

namespace deepst {
namespace eval {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  traj::Route r = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RecallAtN(r, r), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(r, r), 1.0);
}

TEST(MetricsTest, DisjointPrediction) {
  traj::Route truth = {1, 2, 3};
  traj::Route pred = {7, 8, 9};
  EXPECT_DOUBLE_EQ(RecallAtN(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy(truth, pred), 0.0);
}

TEST(MetricsTest, RecallTruncatesPrediction) {
  traj::Route truth = {1, 2};
  // Prediction contains the truth but is long; recall@n only sees the first
  // |truth| segments.
  traj::Route pred = {1, 5, 2, 2, 2};
  EXPECT_DOUBLE_EQ(RecallAtN(truth, pred), 0.5);  // only '1' in the prefix
  // Accuracy divides by max length.
  EXPECT_DOUBLE_EQ(Accuracy(truth, pred), 2.0 / 5.0);
}

TEST(MetricsTest, AccuracyPenalizesOverlongPrediction) {
  traj::Route truth = {1, 2, 3};
  traj::Route exact = {1, 2, 3};
  traj::Route padded = {1, 2, 3, 4, 5, 6};
  EXPECT_GT(Accuracy(truth, exact), Accuracy(truth, padded));
  EXPECT_DOUBLE_EQ(Accuracy(truth, padded), 0.5);
}

TEST(MetricsTest, MultisetSemantics) {
  // Repeated segments only match up to their multiplicity.
  traj::Route truth = {1, 2, 1};
  traj::Route pred = {1, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(truth, pred), 2.0 / 3.0);
}

TEST(MetricsTest, ShortPredictionRecall) {
  traj::Route truth = {1, 2, 3, 4};
  traj::Route pred = {1, 2};
  EXPECT_DOUBLE_EQ(RecallAtN(truth, pred), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy(truth, pred), 0.5);
}

TEST(MetricsTest, AccumulatorMeans) {
  MetricAccumulator acc;
  acc.Add({1, 2}, {1, 2});
  acc.Add({1, 2}, {7, 8});
  EXPECT_EQ(acc.count, 2);
  EXPECT_DOUBLE_EQ(acc.mean_recall(), 0.5);
  EXPECT_DOUBLE_EQ(acc.mean_accuracy(), 0.5);
  MetricAccumulator empty;
  EXPECT_DOUBLE_EQ(empty.mean_recall(), 0.0);
}

TEST(MetricsTest, DistanceBuckets) {
  EXPECT_EQ(DistanceBucket(0.5), -1);
  EXPECT_EQ(DistanceBucket(1.0), 0);
  EXPECT_EQ(DistanceBucket(2.99), 0);
  EXPECT_EQ(DistanceBucket(4.0), 1);
  EXPECT_EQ(DistanceBucket(7.5), 2);
  EXPECT_EQ(DistanceBucket(12.0), 3);
  EXPECT_EQ(DistanceBucket(17.0), 4);
  EXPECT_EQ(DistanceBucket(22.0), 5);
  EXPECT_EQ(DistanceBucket(27.0), 6);
  EXPECT_EQ(DistanceBucket(55.0), 7);
  EXPECT_EQ(NumDistanceBuckets(), 8);
}

TEST(WorldTest, PresetsSaneAndDeterministic) {
  WorldConfig cfg = ChengduMiniWorld(0.1);
  EXPECT_EQ(cfg.name, "chengdu-mini");
  EXPECT_GT(cfg.generator.trips_per_day, 0);
  WorldConfig harbin = HarbinMiniWorld(0.1);
  EXPECT_GT(harbin.generator.max_route_m, cfg.generator.max_route_m);
}

TEST(WorldTest, QueryForCopiesTripFields) {
  traj::Trip trip;
  trip.route = {3, 4, 5};
  trip.destination = {10, 20};
  trip.start_time_s = 777.0;
  auto q = QueryFor(trip);
  EXPECT_EQ(q.origin, 3);
  EXPECT_EQ(q.final_segment, 5);
  EXPECT_DOUBLE_EQ(q.start_time_s, 777.0);
  EXPECT_DOUBLE_EQ(q.destination.x, 10.0);
}

TEST(WorldTest, EvaluatePredictionCountsAndBuckets) {
  static World* world = [] {
    WorldConfig cfg = ChengduMiniWorld(0.1);
    cfg.name = "eval-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 3;
    cfg.train_days = 1;
    cfg.val_days = 1;
    return new World(cfg);
  }();
  // A "perfect oracle" predictor: return the ground-truth route by matching
  // on origin+time (identity map through the test set).
  size_t idx = 0;
  std::vector<const traj::TripRecord*> test = world->split().test;
  auto oracle = [&](const core::RouteQuery& query) -> traj::Route {
    (void)query;
    return test[idx++]->trip.route;
  };
  EvalResult res = EvaluatePrediction(*world, oracle, 20);
  EXPECT_GT(res.num_trips, 0);
  EXPECT_LE(res.num_trips, 20);
  EXPECT_DOUBLE_EQ(res.recall_at_n, 1.0);
  EXPECT_DOUBLE_EQ(res.accuracy, 1.0);
  ASSERT_EQ(res.bucket_accuracy.size(),
            static_cast<size_t>(NumDistanceBuckets()));
  int bucket_total = 0;
  for (int c : res.bucket_counts) bucket_total += c;
  EXPECT_LE(bucket_total, res.num_trips);
}

}  // namespace
}  // namespace eval
}  // namespace deepst
