// SpatialIndex edge cases and cross-layout parity (ISSUE 6): empty
// networks, queries far outside the grid, exact-tie handling, and the
// guarantee that the CSR, tile-sharded and zero-copy (format-v3 adopted)
// layouts answer every query bitwise identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "roadnet/grid_city.h"
#include "roadnet/io.h"
#include "roadnet/road_network.h"
#include "roadnet/spatial_index.h"
#include "util/rng.h"

namespace deepst {
namespace {

// Two parallel horizontal bidirectional streets 100 m apart.
roadnet::RoadNetwork MakeParallelStreets() {
  roadnet::RoadNetwork net;
  net.AddVertex({0.0, 0.0});
  net.AddVertex({200.0, 0.0});
  net.AddVertex({0.0, 100.0});
  net.AddVertex({200.0, 100.0});
  net.AddSegment(0, 1, 13.9);
  net.AddSegment(2, 3, 13.9);
  net.Finalize();
  return net;
}

TEST(SpatialIndexEdgeTest, EmptyNetworkYieldsNoCandidates) {
  roadnet::RoadNetwork net;
  net.Finalize();
  const roadnet::SpatialIndex index(net);
  EXPECT_EQ(index.Nearest({0.0, 0.0}).segment, roadnet::kInvalidSegment);
  EXPECT_TRUE(index.SegmentsNear({3.0, 4.0}, 1000.0).empty());
  EXPECT_TRUE(index.NearestSegments({-50.0, 7.0}, 5).empty());

  const roadnet::ShardedSpatialIndex sharded(net);
  EXPECT_EQ(sharded.Nearest({0.0, 0.0}).segment, roadnet::kInvalidSegment);
  EXPECT_TRUE(sharded.NearestSegments({0.0, 0.0}, 3).empty());
}

TEST(SpatialIndexEdgeTest, FarOutsideQueryStillFindsTrueNearest) {
  const roadnet::RoadNetwork net = MakeParallelStreets();
  const roadnet::SpatialIndex index(net, /*cell_size_m=*/50.0);
  // ~1e7 m outside a ~200 m grid: clamping routes the query to a border
  // cell and the ring expansion must still terminate with the true nearest.
  const geo::Point far{1e7, -5e6};
  const auto got = index.Nearest(far);
  ASSERT_NE(got.segment, roadnet::kInvalidSegment);
  double best = 1e30;
  roadnet::SegmentId best_seg = roadnet::kInvalidSegment;
  for (roadnet::SegmentId s = 0; s < net.num_segments(); ++s) {
    const double d = net.ProjectToSegment(far, s).distance;
    if (d < best) {
      best = d;
      best_seg = s;
    }
  }
  EXPECT_EQ(got.segment, best_seg);
  EXPECT_EQ(got.projection.distance, best);
}

TEST(SpatialIndexEdgeTest, ExactTiesAreReturnedDeterministically) {
  const roadnet::RoadNetwork net = MakeParallelStreets();
  const roadnet::SpatialIndex index(net, /*cell_size_m=*/50.0);
  // Equidistant from both streets: a 2-NN query must return both, with
  // exactly equal distances, in an order that is stable across repeated
  // queries and across storage layouts.
  const geo::Point mid{100.0, 50.0};
  const auto a = index.NearestSegments(mid, 2);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].projection.distance, 50.0);
  EXPECT_EQ(a[1].projection.distance, 50.0);
  EXPECT_NE(a[0].segment, a[1].segment);

  const auto again = index.NearestSegments(mid, 2);
  const roadnet::ShardedSpatialIndex sharded(net, 50.0, /*target_shards=*/4);
  const auto b = sharded.NearestSegments(mid, 2);
  ASSERT_EQ(again.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a[i].segment, again[i].segment);
    EXPECT_EQ(a[i].segment, b[i].segment);
  }
}

TEST(SpatialIndexEdgeTest, RingExpansionPastEmptyCellsFindsFarSegment) {
  // One short segment, one far segment: the k=2 query must keep expanding
  // rings past many empty cells to reach the second one.
  roadnet::RoadNetwork net;
  net.AddVertex({0.0, 0.0});
  net.AddVertex({50.0, 0.0});
  net.AddVertex({5000.0, 0.0});
  net.AddVertex({5050.0, 0.0});
  net.AddSegment(0, 1, 13.9);
  net.AddSegment(2, 3, 13.9);
  net.Finalize();
  const roadnet::SpatialIndex index(net, /*cell_size_m=*/50.0);
  const auto got = index.NearestSegments({10.0, 10.0}, 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].segment, 0);
  EXPECT_EQ(got[1].segment, 1);
}

// CSR vs tile-sharded vs zero-copy-adopted: every layout serves identical
// per-cell lists, so query results must match bitwise (ids and projection
// distances), including tie ordering.
TEST(SpatialIndexParityTest, AllLayoutsAnswerBitwiseIdentically) {
  const auto net = roadnet::BuildGridCity(roadnet::ChengduMiniConfig());
  const double kCell = 250.0;
  const roadnet::SpatialIndex csr(*net, kCell);
  const roadnet::ShardedSpatialIndex sharded(*net, kCell,
                                             /*target_shards=*/8);

  const std::string path = testing::TempDir() + "/deepst_sidx_parity.bin";
  ASSERT_TRUE(roadnet::SaveRoadNetworkV3(*net, path, &csr).ok());
  auto city = roadnet::LoadCity(path, kCell);
  ASSERT_TRUE(city.ok()) << city.status().ToString();
  ASSERT_TRUE(city.value().index->zero_copy());

  const geo::BoundingBox box = roadnet::SpatialIndexPaddedBounds(*net);
  util::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    // Mostly inside the city, some far outside.
    const double margin = (i % 10 == 0) ? 5e4 : 0.0;
    const geo::Point p{rng.Uniform(box.min.x - margin, box.max.x + margin),
                       rng.Uniform(box.min.y - margin, box.max.y + margin)};
    const auto a = csr.NearestSegments(p, 4);
    const auto b = sharded.NearestSegments(p, 4);
    const auto c = city.value().index->NearestSegments(p, 4);
    ASSERT_EQ(a.size(), b.size()) << i;
    ASSERT_EQ(a.size(), c.size()) << i;
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].segment, b[j].segment) << i;
      EXPECT_EQ(a[j].segment, c[j].segment) << i;
      EXPECT_EQ(a[j].projection.distance, b[j].projection.distance) << i;
      EXPECT_EQ(a[j].projection.distance, c[j].projection.distance) << i;
    }
    const auto ra = csr.SegmentsNear(p, 400.0);
    const auto rb = sharded.SegmentsNear(p, 400.0);
    const auto rc = city.value().index->SegmentsNear(p, 400.0);
    ASSERT_EQ(ra.size(), rb.size()) << i;
    ASSERT_EQ(ra.size(), rc.size()) << i;
    for (size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].segment, rb[j].segment) << i;
      EXPECT_EQ(ra[j].segment, rc[j].segment) << i;
    }
  }
}

}  // namespace
}  // namespace deepst
