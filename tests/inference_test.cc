// Coverage of the graph-free inference engine (core/infer): parity with the
// autodiff reference path across every ablation config, beam/greedy
// equivalence, bitwise thread-count invariance, batched-vs-individual
// scoring identity, the zero-allocation steady state, and concurrent use of
// the model's session pool.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "baselines/neural_router.h"
#include "core/deepst_model.h"
#include "core/infer/session.h"
#include "core/route_ranking.h"
#include "eval/world.h"
#include "nn/backend.h"
#include "nn/variable.h"

namespace deepst {
namespace core {
namespace {

// Fast-path scores accumulate up to ~100 transition terms, each within
// ~1e-7 of the reference (4-lane vs sequential accumulation), so 1e-5
// bounds the end-to-end deviation comfortably.
constexpr double kParityTol = 1e-5;

struct BackendGuard {
  ~BackendGuard() { nn::SetBackendThreads(1); }
};

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "inference-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

DeepSTConfig SmallConfig() {
  DeepSTConfig cfg;
  cfg.segment_embedding_dim = 12;
  cfg.gru_hidden = 24;
  cfg.gru_layers = 2;
  cfg.dest_dim = 12;
  cfg.traffic_dim = 8;
  cfg.num_proxies = 8;
  cfg.cnn_channels = 6;
  cfg.mlp_hidden = 24;
  return cfg;
}

// The four paper methods as ablation configs of the shared base.
std::vector<std::pair<std::string, DeepSTConfig>> AblationConfigs() {
  const DeepSTConfig base = SmallConfig();
  return {{"deepst", baselines::DeepStConfigOf(base)},
          {"deepst-c", baselines::DeepStCConfigOf(base)},
          {"cssrnn", baselines::CssrnnConfigOf(base)},
          {"rnn", baselines::RnnConfigOf(base)}};
}

traffic::TrafficTensorCache* CacheFor(const DeepSTConfig& cfg) {
  return cfg.use_traffic ? TestWorld().traffic_cache() : nullptr;
}

std::vector<const traj::TripRecord*> TestTrips(int n) {
  std::vector<const traj::TripRecord*> out;
  for (const auto* rec : TestWorld().split().test) {
    if (static_cast<int>(out.size()) >= n) break;
    if (rec->trip.route.size() >= 3) out.push_back(rec);
  }
  return out;
}

TEST(NoGradGuardTest, DisablesAndRestoresTapeRecording) {
  EXPECT_TRUE(nn::GradEnabled());
  {
    nn::NoGradGuard outer;
    EXPECT_FALSE(nn::GradEnabled());
    {
      nn::NoGradGuard inner;
      EXPECT_FALSE(nn::GradEnabled());
    }
    EXPECT_FALSE(nn::GradEnabled());
  }
  EXPECT_TRUE(nn::GradEnabled());
}

TEST(InferenceParityTest, ScoresMatchReferenceAcrossAblations) {
  auto& world = TestWorld();
  const auto trips = TestTrips(6);
  ASSERT_GE(trips.size(), 3u);
  for (const auto& [name, cfg] : AblationConfigs()) {
    DeepSTModel model(world.net(), cfg, CacheFor(cfg));
    util::Rng rng(21);
    for (const auto* rec : trips) {
      RouteQuery query = eval::QueryFor(rec->trip);
      PredictionContext ctx = model.MakeContext(query, &rng);
      const double fast = model.ScoreRoute(ctx, rec->trip.route);
      const double ref = model.ScoreRouteReference(ctx, rec->trip.route);
      EXPECT_TRUE(std::isfinite(fast)) << name;
      EXPECT_NEAR(fast, ref, kParityTol) << name;
      // Continuation scoring: split the route into prefix + gap candidate.
      const traj::Route& route = rec->trip.route;
      const size_t cut = route.size() / 2;
      traj::Route prefix(route.begin(), route.begin() + cut + 1);
      traj::Route cont(route.begin() + cut, route.end());
      EXPECT_NEAR(model.ScoreContinuation(ctx, prefix, cont),
                  model.ScoreContinuationReference(ctx, prefix, cont),
                  kParityTol)
          << name;
    }
  }
}

TEST(InferenceParityTest, PredictedRoutesMatchReferenceAcrossAblations) {
  auto& world = TestWorld();
  const auto trips = TestTrips(4);
  for (const auto& [name, cfg] : AblationConfigs()) {
    DeepSTModel model(world.net(), cfg, CacheFor(cfg));
    util::Rng rng(22);
    for (const auto* rec : trips) {
      RouteQuery query = eval::QueryFor(rec->trip);
      PredictionContext ctx = model.MakeContext(query, &rng);
      util::Rng rng_fast(7), rng_ref(7);
      const traj::Route fast = model.PredictRoute(ctx, query.origin, &rng_fast);
      const traj::Route ref =
          model.PredictRouteReference(ctx, query.origin, &rng_ref);
      EXPECT_EQ(fast, ref) << name;
    }
  }
}

TEST(InferenceRegressionTest, BeamWidthOneEqualsGreedy) {
  auto& world = TestWorld();
  const auto trips = TestTrips(6);
  DeepSTConfig cfg = SmallConfig();
  cfg.use_traffic = false;
  cfg.beam_width = 1;
  for (const bool graph : {false, true}) {
    cfg.graph_inference = graph;
    DeepSTModel model(world.net(), cfg, nullptr);
    for (uint64_t seed : {3u, 17u, 99u}) {
      util::Rng rng(seed);
      for (const auto* rec : trips) {
        RouteQuery query = eval::QueryFor(rec->trip);
        PredictionContext ctx = model.MakeContext(query, &rng);
        util::Rng rng_greedy(seed + 1), rng_beam(seed + 1);
        EXPECT_EQ(model.PredictRoute(ctx, query.origin, &rng_greedy),
                  model.PredictRouteBeam(ctx, query.origin, &rng_beam))
            << "graph_inference=" << graph << " seed=" << seed;
      }
    }
  }
}

TEST(InferenceDeterminismTest, ThreadCountInvariant) {
  BackendGuard guard;
  auto& world = TestWorld();
  const auto trips = TestTrips(4);
  DeepSTConfig cfg = SmallConfig();
  DeepSTModel model(world.net(), cfg, world.traffic_cache());
  std::vector<traj::Route> routes_by_threads[2];
  std::vector<double> scores_by_threads[2];
  const int thread_counts[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    nn::SetBackendThreads(thread_counts[t]);
    util::Rng rng(31);
    for (const auto* rec : trips) {
      RouteQuery query = eval::QueryFor(rec->trip);
      PredictionContext ctx = model.MakeContext(query, &rng);
      util::Rng prng(5);
      routes_by_threads[t].push_back(
          model.PredictRouteBeam(ctx, query.origin, &prng));
      scores_by_threads[t].push_back(model.ScoreRoute(ctx, rec->trip.route));
    }
  }
  EXPECT_EQ(routes_by_threads[0], routes_by_threads[1]);
  ASSERT_EQ(scores_by_threads[0].size(), scores_by_threads[1].size());
  for (size_t i = 0; i < scores_by_threads[0].size(); ++i) {
    // Bitwise, not approximate: the fast path's chunk boundaries and
    // accumulation order are thread-count independent.
    EXPECT_EQ(scores_by_threads[0][i], scores_by_threads[1][i]);
  }
}

TEST(InferenceBatchTest, BatchedScoresBitwiseEqualIndividual) {
  auto& world = TestWorld();
  DeepSTConfig cfg = SmallConfig();
  DeepSTModel model(world.net(), cfg, world.traffic_cache());
  util::Rng rng(41);
  const auto trips = TestTrips(6);
  ASSERT_GE(trips.size(), 3u);
  RouteQuery query = eval::QueryFor(trips[0]->trip);
  PredictionContext ctx = model.MakeContext(query, &rng);
  // Candidate set with deliberately degenerate rows mixed in: a too-short
  // route (scores 0) and a non-contiguous one (scores -inf).
  std::vector<traj::Route> candidates;
  for (const auto* rec : trips) candidates.push_back(rec->trip.route);
  candidates.push_back({trips[0]->trip.route.front()});
  traj::Route bad = {trips[0]->trip.route.front(),
                     trips[0]->trip.route.front()};
  if (!world.net().AreConsecutive(bad[0], bad[1])) candidates.push_back(bad);
  const std::vector<double> batched = model.ScoreRoutes(ctx, candidates);
  ASSERT_EQ(batched.size(), candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(batched[i], model.ScoreRoute(ctx, candidates[i])) << i;
  }
}

TEST(InferenceBatchTest, BatchedContinuationsBitwiseEqualIndividual) {
  auto& world = TestWorld();
  DeepSTConfig cfg = SmallConfig();
  cfg.use_traffic = false;
  DeepSTModel model(world.net(), cfg, nullptr);
  util::Rng rng(42);
  const auto trips = TestTrips(6);
  const traj::Route& route = trips[0]->trip.route;
  RouteQuery query = eval::QueryFor(trips[0]->trip);
  PredictionContext ctx = model.MakeContext(query, &rng);
  const size_t cut = route.size() / 2;
  traj::Route prefix(route.begin(), route.begin() + cut + 1);
  // Candidates: the true tail plus every distinct one-step continuation.
  std::vector<traj::Route> candidates;
  candidates.emplace_back(route.begin() + cut, route.end());
  for (roadnet::SegmentId next : world.net().OutSegments(prefix.back())) {
    candidates.push_back({prefix.back(), next});
  }
  const std::vector<double> batched =
      model.ScoreContinuations(ctx, prefix, candidates);
  ASSERT_EQ(batched.size(), candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(batched[i], model.ScoreContinuation(ctx, prefix, candidates[i]))
        << i;
  }
}

TEST(InferenceBatchTest, RankRoutesUsesBatchedScoresConsistently) {
  auto& world = TestWorld();
  DeepSTConfig cfg = SmallConfig();
  DeepSTModel model(world.net(), cfg, world.traffic_cache());
  util::Rng rng(43);
  const auto trips = TestTrips(4);
  RouteQuery query = eval::QueryFor(trips[0]->trip);
  std::vector<traj::Route> candidates;
  for (const auto* rec : trips) candidates.push_back(rec->trip.route);
  util::Rng rng_rank(43);
  const auto ranked = RankRoutes(&model, query, candidates, &rng_rank);
  ASSERT_EQ(ranked.size(), candidates.size());
  util::Rng rng_ctx(43);
  PredictionContext ctx = model.MakeContext(query, &rng_ctx);
  double prob_sum = 0.0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].log_likelihood, model.ScoreRoute(ctx, ranked[i].route));
    if (i > 0) {
      EXPECT_GE(ranked[i - 1].log_likelihood, ranked[i].log_likelihood);
    }
    prob_sum += ranked[i].probability;
  }
  EXPECT_NEAR(prob_sum, 1.0, 1e-9);
}

TEST(InferenceArenaTest, ZeroAllocationSteadyState) {
  auto& world = TestWorld();
  DeepSTConfig cfg = SmallConfig();
  DeepSTModel model(world.net(), cfg, world.traffic_cache());
  util::Rng rng(51);
  const auto trips = TestTrips(4);
  infer::InferenceSession session(&model);
  RouteQuery query = eval::QueryFor(trips[0]->trip);
  PredictionContext ctx = model.MakeContext(query, &rng);
  std::vector<traj::Route> candidates;
  for (const auto* rec : trips) candidates.push_back(rec->trip.route);
  // Warmup pass grows the scratch arena to its high-water mark...
  util::Rng r1(9);
  session.PredictRouteBeam(ctx, query.origin, &r1);
  session.ScoreRoutes(ctx, candidates);
  const int64_t warm = session.arena_grow_count();
  const int64_t warm_scratch = session.scratch_grow_count();
  // ...after which identical work allocates nothing: neither the arena
  // slots nor the session-owned step scratch (embedding staging and the
  // per-layer double-precision state mirrors) grow again.
  util::Rng r2(9);
  session.PredictRouteBeam(ctx, query.origin, &r2);
  session.ScoreRoutes(ctx, candidates);
  session.ScoreRoute(ctx, candidates[0]);
  EXPECT_EQ(session.arena_grow_count(), warm);
  EXPECT_EQ(session.scratch_grow_count(), warm_scratch);
  EXPECT_GT(warm_scratch, 0);
}

TEST(InferenceConcurrencyTest, SessionPoolSafeUnderConcurrentCalls) {
  auto& world = TestWorld();
  DeepSTConfig cfg = SmallConfig();
  cfg.use_traffic = false;
  DeepSTModel model(world.net(), cfg, nullptr);
  util::Rng rng(61);
  const auto trips = TestTrips(4);
  ASSERT_GE(trips.size(), 2u);
  // Reference results, computed serially.
  std::vector<PredictionContext> ctxs;
  std::vector<traj::Route> expected_routes;
  std::vector<double> expected_scores;
  for (const auto* rec : trips) {
    RouteQuery query = eval::QueryFor(rec->trip);
    ctxs.push_back(model.MakeContext(query, &rng));
    util::Rng prng(3);
    expected_routes.push_back(
        model.PredictRouteBeam(ctxs.back(), query.origin, &prng));
    expected_scores.push_back(model.ScoreRoute(ctxs.back(), rec->trip.route));
  }
  // Hammer the same queries from several threads at once.
  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t i = static_cast<size_t>((w + round) % trips.size());
        RouteQuery query = eval::QueryFor(trips[i]->trip);
        util::Rng prng(3);
        if (model.PredictRouteBeam(ctxs[i], query.origin, &prng) !=
            expected_routes[i]) {
          failures[static_cast<size_t>(w)]++;
        }
        if (model.ScoreRoute(ctxs[i], trips[i]->trip.route) !=
            expected_scores[i]) {
          failures[static_cast<size_t>(w)]++;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_EQ(failures[w], 0) << w;
  // The pool retains one session per peak-concurrent caller at most.
  EXPECT_GE(model.num_pooled_sessions(), 1u);
  EXPECT_LE(model.num_pooled_sessions(), static_cast<size_t>(kThreads));
}

// Lock-step multi-query beam search (the serve daemon's cross-client
// batching substrate) must be bitwise identical, query by query, to running
// each query through the single-query beam.
TEST(InferenceMultiQueryTest, BeamMultiBitwiseEqualsSingleQuery) {
  auto& world = TestWorld();
  const auto trips = TestTrips(5);
  ASSERT_GE(trips.size(), 3u);
  const DeepSTConfig cfg = baselines::DeepStConfigOf(SmallConfig());
  DeepSTModel model(world.net(), cfg, CacheFor(cfg));
  util::Rng rng(31);
  std::vector<PredictionContext> ctxs;
  std::vector<roadnet::SegmentId> origins;
  std::vector<traj::Route> singles;
  ctxs.reserve(trips.size());
  for (const auto* rec : trips) {
    const RouteQuery query = eval::QueryFor(rec->trip);
    ctxs.push_back(model.MakeContext(query, &rng));
    origins.push_back(query.origin);
    util::Rng prng(7);
    singles.push_back(model.PredictRouteBeam(ctxs.back(), query.origin,
                                             &prng));
  }
  std::vector<PredictItem> items(trips.size());
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].ctx = &ctxs[i];
    items[i].origin = origins[i];
  }
  model.PredictRoutesBeamMulti(&items);
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].route, singles[i]) << "query " << i;
    EXPECT_FALSE(items[i].budget_hit) << "query " << i;
  }
}

// Multi-query padded scoring with heterogeneous candidate counts -- and the
// single-segment (log-likelihood 0) and broken-route (-inf) conventions --
// must match per-query ScoreRoutes bitwise.
TEST(InferenceMultiQueryTest, ScoreMultiBitwiseEqualsSingleQuery) {
  auto& world = TestWorld();
  const auto trips = TestTrips(4);
  ASSERT_GE(trips.size(), 3u);
  const DeepSTConfig cfg = baselines::DeepStConfigOf(SmallConfig());
  DeepSTModel model(world.net(), cfg, CacheFor(cfg));
  util::Rng rng(32);
  std::vector<PredictionContext> ctxs;
  std::vector<std::vector<traj::Route>> candidates;
  ctxs.reserve(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    const traj::Route& route = trips[i]->trip.route;
    ctxs.push_back(model.MakeContext(eval::QueryFor(trips[i]->trip), &rng));
    std::vector<traj::Route> cands = {route};
    if (i % 2 == 0) {  // heterogeneous counts across queries
      cands.push_back(traj::Route(route.begin(), route.begin() + 2));
      cands.push_back({route.front()});            // size 1 -> 0.0
      cands.push_back({route.front(), route.front()});  // broken -> -inf
    }
    candidates.push_back(std::move(cands));
  }
  std::vector<ScoreItem> items(trips.size());
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].ctx = &ctxs[i];
    items[i].routes = &candidates[i];
  }
  model.ScoreRoutesMulti(&items);
  for (size_t i = 0; i < items.size(); ++i) {
    const std::vector<double> singles = model.ScoreRoutes(ctxs[i],
                                                          candidates[i]);
    ASSERT_EQ(items[i].scores.size(), singles.size()) << "query " << i;
    for (size_t c = 0; c < singles.size(); ++c) {
      EXPECT_EQ(items[i].scores[c], singles[c])
          << "query " << i << " candidate " << c;
    }
  }
}

// Per-item deadlines inside one lock-step batch: an item with an expired
// budget reports budget_hit with a valid best-so-far route, while its
// co-batched neighbor with no deadline finishes untouched.
TEST(InferenceMultiQueryTest, BeamMultiDeadlinesArePerItem) {
  auto& world = TestWorld();
  const auto trips = TestTrips(2);
  ASSERT_EQ(trips.size(), 2u);
  const DeepSTConfig cfg = baselines::DeepStConfigOf(SmallConfig());
  DeepSTModel model(world.net(), cfg, CacheFor(cfg));
  util::Rng rng(33);
  std::vector<PredictionContext> ctxs;
  std::vector<roadnet::SegmentId> origins;
  for (const auto* rec : trips) {
    const RouteQuery query = eval::QueryFor(rec->trip);
    ctxs.push_back(model.MakeContext(query, &rng));
    origins.push_back(query.origin);
  }
  util::Rng prng(7);
  const traj::Route unbudgeted =
      model.PredictRouteBeam(ctxs[1], origins[1], &prng);

  std::vector<PredictItem> items(2);
  items[0].ctx = &ctxs[0];
  items[0].origin = origins[0];
  items[0].deadline_ms = 0.005;  // expires at the first between-step check
  items[1].ctx = &ctxs[1];
  items[1].origin = origins[1];
  model.PredictRoutesBeamMulti(&items);

  EXPECT_TRUE(items[0].budget_hit);
  EXPECT_FALSE(items[0].route.empty());
  EXPECT_EQ(items[0].route.front(), origins[0]);
  EXPECT_TRUE(world.net().ValidateRoute(items[0].route).ok());
  EXPECT_FALSE(items[1].budget_hit);
  EXPECT_EQ(items[1].route, unbudgeted);
}

}  // namespace
}  // namespace core
}  // namespace deepst
