#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "roadnet/grid_city.h"
#include "roadnet/shortest_path.h"
#include "traj/dataset.h"
#include "traj/generator.h"

namespace deepst {
namespace traj {
namespace {

struct World {
  std::unique_ptr<roadnet::RoadNetwork> net;
  std::unique_ptr<traffic::CongestionField> field;
  std::unique_ptr<TripGenerator> gen;
  GeneratorConfig cfg;
};

World MakeWorld(int days = 3, int trips_per_day = 40) {
  World w;
  roadnet::GridCityConfig city;
  city.rows = 8;
  city.cols = 8;
  city.seed = 77;
  w.net = roadnet::BuildGridCity(city);
  w.field = std::make_unique<traffic::CongestionField>(
      *w.net, traffic::CongestionConfig{});
  w.cfg.num_days = days;
  w.cfg.trips_per_day = trips_per_day;
  w.cfg.seed = 11;
  w.gen = std::make_unique<TripGenerator>(*w.net, *w.field, w.cfg);
  return w;
}

TEST(TripGeneratorTest, GeneratesValidRoutes) {
  World w = MakeWorld();
  auto records = w.gen->GenerateDataset();
  ASSERT_EQ(records.size(), 120u);
  for (const auto& rec : records) {
    EXPECT_TRUE(w.net->ValidateRoute(rec.trip.route).ok());
    const double len = w.net->RouteLength(rec.trip.route);
    EXPECT_GE(len, w.cfg.min_route_m);
    EXPECT_LE(len, w.cfg.max_route_m);
  }
}

TEST(TripGeneratorTest, SortedByStartTimeAndDayConsistent) {
  World w = MakeWorld();
  auto records = w.gen->GenerateDataset();
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].trip.start_time_s, records[i].trip.start_time_s);
  }
  for (const auto& rec : records) {
    EXPECT_EQ(rec.trip.day,
              static_cast<int>(rec.trip.start_time_s /
                               traffic::kSecondsPerDay));
  }
}

TEST(TripGeneratorTest, RoughDestinationNearRouteEnd) {
  World w = MakeWorld();
  auto records = w.gen->GenerateDataset();
  double total = 0.0;
  for (const auto& rec : records) {
    const geo::Point end = w.net->SegmentEnd(rec.trip.final_segment());
    total += end.DistanceTo(rec.trip.destination);
  }
  const double mean = total / static_cast<double>(records.size());
  // dest_noise_m = 80 -> mean 2D Gaussian distance ~ 80 * sqrt(pi/2) ~ 100.
  EXPECT_LT(mean, 250.0);
  EXPECT_GT(mean, 20.0);
}

TEST(TripGeneratorTest, GpsTraceFollowsRoute) {
  World w = MakeWorld();
  auto records = w.gen->GenerateDataset();
  const auto& rec = records[records.size() / 2];
  ASSERT_FALSE(rec.gps.empty());
  // Timestamps increase and start near the trip start.
  EXPECT_NEAR(rec.gps.front().time_s, rec.trip.start_time_s, 1e-6);
  for (size_t i = 1; i < rec.gps.size(); ++i) {
    EXPECT_GT(rec.gps[i].time_s, rec.gps[i - 1].time_s);
  }
  // Every GPS point lies near some segment of the route.
  for (const auto& p : rec.gps) {
    double best = 1e18;
    for (auto s : rec.trip.route) {
      best = std::min(best, w.net->ProjectToSegment(p.pos, s).distance);
    }
    EXPECT_LT(best, 100.0);
  }
}

TEST(TripGeneratorTest, DestinationsClusterAroundHubs) {
  World w = MakeWorld(2, 100);
  auto records = w.gen->GenerateDataset();
  const auto& hubs = w.gen->hub_centers();
  int near_hub = 0;
  for (const auto& rec : records) {
    for (const auto& hub : hubs) {
      if (rec.trip.destination.DistanceTo(hub) < 3.0 * 300.0) {
        ++near_hub;
        break;
      }
    }
  }
  // Most destinations are hub-clustered (p_uniform_dest = 0.15).
  EXPECT_GT(near_hub, static_cast<int>(records.size()) / 2);
}

TEST(TripGeneratorTest, DeterministicForSeed) {
  World a = MakeWorld();
  World b = MakeWorld();
  auto ra = a.gen->GenerateDataset();
  auto rb = b.gen->GenerateDataset();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].trip.route, rb[i].trip.route);
  }
}

TEST(TripGeneratorTest, TrafficAwareDriversDetour) {
  // With heavy congestion on the direct corridor, the chosen route at rush
  // hour should sometimes differ from the free-flow route for the same OD.
  World w = MakeWorld();
  util::Rng rng(123);
  int differs = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    TripRecord rec = w.gen->GenerateTrip(0, &rng);
    if (rec.trip.route.empty()) continue;
    ++total;
    // Re-plan the same OD with free-flow costs (no noise, no style).
    auto freeflow = roadnet::ShortestPath(
        *w.net, rec.trip.origin_segment(), rec.trip.final_segment(),
        roadnet::FreeFlowTimeCost(*w.net));
    if (freeflow.ok() && freeflow.value().path != rec.trip.route) ++differs;
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(differs, 0);
}

TEST(CollectObservationsTest, OnePerGpsPoint) {
  World w = MakeWorld(1, 10);
  auto records = w.gen->GenerateDataset();
  auto obs = CollectObservations(records);
  size_t expect = 0;
  for (const auto& rec : records) expect += rec.gps.size();
  EXPECT_EQ(obs.size(), expect);
  for (const auto& o : obs) EXPECT_GT(o.speed_mps, 0.0);
}

TEST(DownsampleTest, RespectsIntervalAndEndpoints) {
  GpsTrajectory gps;
  for (int i = 0; i <= 100; ++i) {
    gps.push_back({{static_cast<double>(i), 0.0}, i * 15.0, 10.0});
  }
  GpsTrajectory sparse = DownsampleByInterval(gps, 120.0);
  EXPECT_EQ(sparse.front().time_s, gps.front().time_s);
  EXPECT_EQ(sparse.back().time_s, gps.back().time_s);
  for (size_t i = 1; i + 1 < sparse.size(); ++i) {
    EXPECT_GE(sparse[i].time_s - sparse[i - 1].time_s, 120.0 - 1e-9);
  }
  EXPECT_LT(sparse.size(), gps.size() / 4);
}

TEST(DownsampleTest, DegenerateInputs) {
  EXPECT_TRUE(DownsampleByInterval({}, 60.0).empty());
  GpsTrajectory one = {{{0, 0}, 5.0, 1.0}};
  auto out = DownsampleByInterval(one, 60.0);
  ASSERT_EQ(out.size(), 1u);
}

TEST(SplitByDayTest, PartitionsAllRecords) {
  World w = MakeWorld(5, 20);
  auto records = w.gen->GenerateDataset();
  auto split = SplitByDay(records, 3, 1);
  EXPECT_EQ(split.train.size() + split.validation.size() + split.test.size(),
            records.size());
  for (auto* r : split.train) EXPECT_LT(r->trip.day, 3);
  for (auto* r : split.validation) EXPECT_EQ(r->trip.day, 3);
  for (auto* r : split.test) EXPECT_GE(r->trip.day, 4);
  EXPECT_FALSE(split.train.empty());
  EXPECT_FALSE(split.test.empty());
}

TEST(StatisticsTest, TableThreeFields) {
  World w = MakeWorld(2, 30);
  auto records = w.gen->GenerateDataset();
  auto stats = ComputeStatistics(*w.net, records);
  EXPECT_EQ(stats.num_trips, 60);
  EXPECT_GT(stats.min_distance_km, 0.0);
  EXPECT_GE(stats.max_distance_km, stats.mean_distance_km);
  EXPECT_GE(stats.mean_distance_km, stats.min_distance_km);
  EXPECT_GE(stats.max_segments, stats.min_segments);
  EXPECT_GT(stats.mean_segments, 1.0);
}

TEST(StatisticsTest, EmptyDataset) {
  World w = MakeWorld(1, 1);
  auto stats = ComputeStatistics(*w.net, {});
  EXPECT_EQ(stats.num_trips, 0);
}

TEST(HistogramTest, CountsAndClamping) {
  auto h = Histogram({0.5, 1.5, 2.6, 9.9, -5.0, 100.0}, 0.0, 10.0, 5);
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[0], 3);  // 0.5, 1.5, clamped -5 in [0,2)
  EXPECT_EQ(h[1], 1);  // 2.6 in [2,4)
  EXPECT_EQ(h[4], 2);  // 9.9 and clamped 100 in [8,10)
  int total = 0;
  for (int c : h) total += c;
  EXPECT_EQ(total, 6);
}

TEST(SpatialOccupancyTest, AllPointsCounted) {
  World w = MakeWorld(1, 15);
  auto records = w.gen->GenerateDataset();
  auto occ = SpatialOccupancy(*w.net, records, 4, 4);
  ASSERT_EQ(occ.size(), 16u);
  size_t total_points = 0;
  for (const auto& rec : records) total_points += rec.gps.size();
  int total_counts = 0;
  for (int c : occ) total_counts += c;
  EXPECT_EQ(static_cast<size_t>(total_counts), total_points);
}

}  // namespace
}  // namespace traj
}  // namespace deepst
