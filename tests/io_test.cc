#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "roadnet/grid_city.h"
#include "roadnet/io.h"
#include "traj/ascii_map.h"
#include "traj/generator.h"
#include "traj/io.h"

namespace deepst {
namespace {

TEST(RoadNetworkIoTest, RoundTripPreservesTopologyAndGeometry) {
  auto net = roadnet::BuildGridCity(roadnet::ChengduMiniConfig());
  const std::string path = testing::TempDir() + "/deepst_net.bin";
  ASSERT_TRUE(roadnet::SaveRoadNetwork(*net, path).ok());
  auto loaded = roadnet::LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& net2 = *loaded.value();
  ASSERT_EQ(net2.num_vertices(), net->num_vertices());
  ASSERT_EQ(net2.num_segments(), net->num_segments());
  EXPECT_EQ(net2.MaxOutDegree(), net->MaxOutDegree());
  for (roadnet::SegmentId s = 0; s < net->num_segments(); s += 13) {
    EXPECT_EQ(net2.segment(s).from, net->segment(s).from);
    EXPECT_EQ(net2.segment(s).to, net->segment(s).to);
    EXPECT_EQ(net2.segment(s).reverse, net->segment(s).reverse);
    EXPECT_EQ(net2.segment(s).road_class, net->segment(s).road_class);
    EXPECT_DOUBLE_EQ(net2.segment(s).length_m, net->segment(s).length_m);
    EXPECT_EQ(net2.OutSegments(s), net->OutSegments(s));
  }
  std::remove(path.c_str());
}

TEST(RoadNetworkIoTest, RejectsGarbage) {
  const std::string path = testing::TempDir() + "/deepst_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a road network";
  }
  auto loaded = roadnet::LoadRoadNetwork(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kIoError);
  std::remove(path.c_str());
  EXPECT_FALSE(roadnet::LoadRoadNetwork("/nonexistent/x.bin").ok());
}

class DatasetIoTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::GridCityConfig city;
    city.rows = 6;
    city.cols = 6;
    city.seed = 3;
    net_ = roadnet::BuildGridCity(city).release();
    field_ = new traffic::CongestionField(*net_, {});
    traj::GeneratorConfig cfg;
    cfg.num_days = 2;
    cfg.trips_per_day = 20;
    cfg.seed = 5;
    traj::TripGenerator gen(*net_, *field_, cfg);
    records_ = new std::vector<traj::TripRecord>(gen.GenerateDataset());
  }

  static roadnet::RoadNetwork* net_;
  static traffic::CongestionField* field_;
  static std::vector<traj::TripRecord>* records_;
};

roadnet::RoadNetwork* DatasetIoTest::net_ = nullptr;
traffic::CongestionField* DatasetIoTest::field_ = nullptr;
std::vector<traj::TripRecord>* DatasetIoTest::records_ = nullptr;

TEST_F(DatasetIoTest, BinaryRoundTrip) {
  const std::string path = testing::TempDir() + "/deepst_dataset.bin";
  ASSERT_TRUE(traj::SaveDataset(*records_, path).ok());
  auto loaded = traj::LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& back = loaded.value();
  ASSERT_EQ(back.size(), records_->size());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].trip.route, (*records_)[i].trip.route);
    EXPECT_EQ(back[i].trip.day, (*records_)[i].trip.day);
    EXPECT_DOUBLE_EQ(back[i].trip.start_time_s,
                     (*records_)[i].trip.start_time_s);
    ASSERT_EQ(back[i].gps.size(), (*records_)[i].gps.size());
    if (!back[i].gps.empty()) {
      EXPECT_DOUBLE_EQ(back[i].gps.back().time_s,
                       (*records_)[i].gps.back().time_s);
    }
  }
  std::remove(path.c_str());
}

TEST_F(DatasetIoTest, CsvExportsHaveHeaderAndRows) {
  const std::string gps_path = testing::TempDir() + "/deepst_gps.csv";
  const std::string trips_path = testing::TempDir() + "/deepst_trips.csv";
  ASSERT_TRUE(traj::ExportGpsCsv(*records_, gps_path).ok());
  ASSERT_TRUE(traj::ExportTripsCsv(*records_, trips_path).ok());
  std::ifstream trips(trips_path);
  std::string header;
  std::getline(trips, header);
  EXPECT_NE(header.find("trip_id"), std::string::npos);
  int rows = 0;
  std::string line;
  while (std::getline(trips, line)) ++rows;
  EXPECT_EQ(rows, static_cast<int>(records_->size()));
  std::remove(gps_path.c_str());
  std::remove(trips_path.c_str());
}

TEST_F(DatasetIoTest, AsciiMapRendersNetworkAndRoute) {
  traj::AsciiMap map(*net_, 12, 24);
  map.DrawNetwork();
  const std::string plain = map.Render();
  EXPECT_EQ(plain.size(), 12u * 25u);  // rows * (cols + newline)
  EXPECT_NE(plain.find('.'), std::string::npos);
  // Overlay a route; '#' must appear and outrank strokes.
  const auto& route = records_->front().trip.route;
  map.DrawRoute(route, '#');
  map.MarkPoint(records_->front().trip.destination, 'X');
  const std::string overlay = map.Render();
  EXPECT_NE(overlay.find('#'), std::string::npos);
  EXPECT_NE(overlay.find('X'), std::string::npos);
}

}  // namespace
}  // namespace deepst
