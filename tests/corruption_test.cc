// Hardened-ingestion corpus: every corrupted input (truncated, bit-flipped,
// out-of-range ids, implausible counts, non-finite values) must come back as
// a non-OK Status -- the process never dies on external bytes. Also covers
// the deterministic fault injector itself and the fault points wired into
// the roadnet/traj/traffic/checkpoint loaders.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "roadnet/io.h"
#include "roadnet/road_network.h"
#include "roadnet/spatial_index.h"
#include "traffic/snapshot.h"
#include "traj/io.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/fixed_format.h"

namespace deepst {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/deepst_corrupt_" + name;
}

template <typename T>
void Append(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

// A 2x2 grid network with bidirectional edges: enough structure for routes,
// reverse links and polylines without dragging in the world fixture.
roadnet::RoadNetwork MakeTinyNetwork() {
  roadnet::RoadNetwork net;
  const double kSpacing = 500.0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      net.AddVertex(geo::Point{c * kSpacing, r * kSpacing});
    }
  }
  auto add_pair = [&net](roadnet::VertexId a, roadnet::VertexId b) {
    const roadnet::SegmentId ab = net.AddSegment(a, b, 13.9);
    const roadnet::SegmentId ba = net.AddSegment(b, a, 13.9);
    net.LinkReverse(ab, ba);
  };
  add_pair(0, 1);
  add_pair(0, 2);
  add_pair(1, 3);
  add_pair(2, 3);
  net.Finalize();
  return net;
}

std::vector<traj::TripRecord> MakeTinyDataset(
    const roadnet::RoadNetwork& net) {
  std::vector<traj::TripRecord> records;
  traj::TripRecord rec;
  rec.trip.start_time_s = 3600.0;
  rec.trip.day = 0;
  // Segment 0 is 0->1; a successor continues from vertex 1.
  rec.trip.route = {0};
  const auto& outs = net.OutSegments(0);
  EXPECT_FALSE(outs.empty());
  rec.trip.route.push_back(outs.front());
  rec.trip.destination = net.SegmentEnd(outs.front());
  traj::GpsPoint p;
  p.pos = net.SegmentStart(0);
  p.time_s = 3600.0;
  p.speed_mps = 9.0;
  rec.gps = {p, p};
  records.push_back(rec);
  return records;
}

class FaultInjectorTest : public testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectorTest, DisabledPathReturnsOkAndCountsNothing) {
  util::FaultInjector& fi = util::FaultInjector::Instance();
  EXPECT_FALSE(fi.enabled());
  EXPECT_TRUE(util::CheckFaultPoint("nonexistent.point").ok());
  EXPECT_EQ(fi.fires(), 0);
}

TEST_F(FaultInjectorTest, ArmedPointFiresThenDisarms) {
  util::FaultInjector& fi = util::FaultInjector::Instance();
  fi.Arm("p", util::FaultKind::kIoError, /*after=*/1, /*count=*/2);
  EXPECT_TRUE(util::CheckFaultPoint("p").ok());   // after=1: first passes
  EXPECT_FALSE(util::CheckFaultPoint("p").ok());  // fires
  EXPECT_FALSE(util::CheckFaultPoint("p").ok());  // fires
  EXPECT_TRUE(util::CheckFaultPoint("p").ok());   // count exhausted
  EXPECT_EQ(fi.fires(), 2);
  EXPECT_EQ(fi.hits("p"), 4);
}

TEST_F(FaultInjectorTest, AllocFailureMapsToResourceExhausted) {
  util::FaultInjector::Instance().Arm("p", util::FaultKind::kAllocFailure);
  util::Status s = util::CheckFaultPoint("p");
  EXPECT_EQ(s.code(), util::Status::Code::kResourceExhausted);
}

TEST_F(FaultInjectorTest, SpecGrammarRoundTrip) {
  util::FaultInjector& fi = util::FaultInjector::Instance();
  ASSERT_TRUE(fi.ArmFromSpec("a:io_error, b:alloc@1x2, c:partial_read").ok());
  EXPECT_FALSE(util::CheckFaultPoint("a").ok());
  EXPECT_TRUE(util::CheckFaultPoint("b").ok());
  EXPECT_FALSE(util::CheckFaultPoint("b").ok());
  EXPECT_FALSE(util::CheckFaultPoint("b").ok());
  EXPECT_TRUE(util::CheckFaultPoint("b").ok());
  EXPECT_FALSE(util::CheckFaultPoint("c").ok());
}

TEST_F(FaultInjectorTest, SpecGrammarRejectsMalformedEntries) {
  util::FaultInjector& fi = util::FaultInjector::Instance();
  EXPECT_FALSE(fi.ArmFromSpec("no-colon").ok());
  EXPECT_FALSE(fi.ArmFromSpec("p:not_a_kind").ok());
  EXPECT_FALSE(fi.ArmFromSpec("p:io_error@abc").ok());
  EXPECT_FALSE(fi.ArmFromSpec("p:io_errorxzz").ok());
}

TEST_F(FaultInjectorTest, ThrowingPointThrowsRuntimeError) {
  util::FaultInjector::Instance().Arm("p", util::FaultKind::kIoError);
  EXPECT_THROW(util::ThrowIfFaultPoint("p"), std::runtime_error);
  EXPECT_NO_THROW(util::ThrowIfFaultPoint("p"));  // count exhausted
}

class IngestionFaultPointTest : public FaultInjectorTest {};

TEST_F(IngestionFaultPointTest, LoaderFaultPointsReturnStatus) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  const std::string net_path = TempPath("faultpoint_net.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetwork(net, net_path).ok());
  const auto records = MakeTinyDataset(net);
  const std::string ds_path = TempPath("faultpoint_ds.bin");
  ASSERT_TRUE(traj::SaveDataset(records, ds_path).ok());

  util::FaultInjector& fi = util::FaultInjector::Instance();
  ASSERT_TRUE(fi.ArmFromSpec("roadnet.load:io_error, traj.load:io_error, "
                             "traffic.load:io_error, roadnet.save:io_error, "
                             "traj.save:alloc")
                  .ok());
  EXPECT_FALSE(roadnet::LoadRoadNetwork(net_path).ok());
  EXPECT_FALSE(traj::LoadDataset(ds_path).ok());
  EXPECT_FALSE(traffic::LoadObservationsCsv("unused.csv").ok());
  EXPECT_FALSE(roadnet::SaveRoadNetwork(net, net_path).ok());
  EXPECT_FALSE(traj::SaveDataset(records, ds_path).ok());
  fi.Reset();
  // Disarmed, the same calls succeed: the faults were injected, not real.
  EXPECT_TRUE(roadnet::LoadRoadNetwork(net_path).ok());
  EXPECT_TRUE(traj::LoadDataset(ds_path).ok());
}

TEST_F(IngestionFaultPointTest, CheckpointFaultPointsReturnStatus) {
  util::FaultInjector& fi = util::FaultInjector::Instance();
  fi.Arm("checkpoint.save", util::FaultKind::kIoError);
  core::TrainingCheckpoint ckpt;
  const std::string path = TempPath("faultpoint_ckpt.bin");
  EXPECT_FALSE(core::SaveTrainingCheckpoint(ckpt, path).ok());
  fi.Reset();
  ASSERT_TRUE(core::SaveTrainingCheckpoint(ckpt, path).ok());
  fi.Arm("checkpoint.load", util::FaultKind::kPartialRead);
  EXPECT_FALSE(core::LoadTrainingCheckpoint(path).ok());
  fi.Reset();
  EXPECT_TRUE(core::LoadTrainingCheckpoint(path).ok());
}

TEST(RoadnetCorpusTest, RoundTripSurvives) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  const std::string path = TempPath("net_roundtrip.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetwork(net, path).ok());
  auto loaded = roadnet::LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->num_vertices(), net.num_vertices());
  EXPECT_EQ(loaded.value()->num_segments(), net.num_segments());
  EXPECT_EQ(loaded.value()->segment(0).reverse, net.segment(0).reverse);
}

TEST(RoadnetCorpusTest, EveryTruncationFailsCleanly) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  const std::string path = TempPath("net_trunc.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetwork(net, path).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 16u);
  const std::string trunc_path = TempPath("net_trunc_case.bin");
  for (size_t keep = 0; keep < bytes.size(); keep += 3) {
    WriteFile(trunc_path, bytes.substr(0, keep));
    EXPECT_FALSE(roadnet::LoadRoadNetwork(trunc_path).ok()) << keep;
  }
}

TEST(RoadnetCorpusTest, EveryBitFlipIsCaughtByCrc) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  const std::string path = TempPath("net_flip.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetwork(net, path).ok());
  const std::string bytes = ReadFile(path);
  const std::string flip_path = TempPath("net_flip_case.bin");
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    WriteFile(flip_path, mutated);
    EXPECT_FALSE(roadnet::LoadRoadNetwork(flip_path).ok()) << i;
  }
}

// Hand-written v1 images (no CRC) reach the field validators directly.
struct RoadnetV1Builder {
  std::string bytes;

  RoadnetV1Builder() {
    Append(&bytes, static_cast<uint32_t>(0x0AD2E701));
    Append(&bytes, static_cast<uint32_t>(1));  // legacy version, no CRC
  }
  void Vertices(const std::vector<geo::Point>& vs) {
    Append(&bytes, static_cast<uint32_t>(vs.size()));
    for (const auto& v : vs) {
      Append(&bytes, v.x);
      Append(&bytes, v.y);
    }
  }
  void SegmentCount(uint32_t n) { Append(&bytes, n); }
  void Segment(int32_t from, int32_t to, double speed, uint8_t road_class,
               int32_t reverse, const std::vector<geo::Point>& poly) {
    Append(&bytes, from);
    Append(&bytes, to);
    Append(&bytes, speed);
    Append(&bytes, road_class);
    Append(&bytes, reverse);
    Append(&bytes, static_cast<uint32_t>(poly.size()));
    for (const auto& p : poly) {
      Append(&bytes, p.x);
      Append(&bytes, p.y);
    }
  }
};

util::Status LoadV1(const RoadnetV1Builder& b, const std::string& name) {
  const std::string path = TempPath(name);
  WriteFile(path, b.bytes);
  return roadnet::LoadRoadNetwork(path).status();
}

TEST(RoadnetCorpusTest, MalformedRecordsReturnStatusNotAbort) {
  const std::vector<geo::Point> two = {{0.0, 0.0}, {100.0, 0.0}};
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  {
    RoadnetV1Builder b;  // vertex count far beyond the file size
    b.Vertices({});
    b.bytes.resize(8);
    Append(&b.bytes, static_cast<uint32_t>(1u << 30));
    EXPECT_FALSE(LoadV1(b, "v1_hugevcount.bin").ok());
  }
  {
    RoadnetV1Builder b;  // non-finite vertex coordinate
    b.Vertices({{kNan, 0.0}, {100.0, 0.0}});
    b.SegmentCount(0);
    EXPECT_FALSE(LoadV1(b, "v1_nanvertex.bin").ok());
  }
  {
    RoadnetV1Builder b;  // endpoint out of range
    b.Vertices(two);
    b.SegmentCount(1);
    b.Segment(0, 7, 13.9, 0, -1, two);
    EXPECT_FALSE(LoadV1(b, "v1_badendpoint.bin").ok());
  }
  {
    RoadnetV1Builder b;  // negative endpoint
    b.Vertices(two);
    b.SegmentCount(1);
    b.Segment(-3, 1, 13.9, 0, -1, two);
    EXPECT_FALSE(LoadV1(b, "v1_negendpoint.bin").ok());
  }
  {
    RoadnetV1Builder b;  // non-positive speed
    b.Vertices(two);
    b.SegmentCount(1);
    b.Segment(0, 1, 0.0, 0, -1, two);
    EXPECT_FALSE(LoadV1(b, "v1_zerospeed.bin").ok());
  }
  {
    RoadnetV1Builder b;  // unknown road class
    b.Vertices(two);
    b.SegmentCount(1);
    b.Segment(0, 1, 13.9, 9, -1, two);
    EXPECT_FALSE(LoadV1(b, "v1_badclass.bin").ok());
  }
  {
    RoadnetV1Builder b;  // reverse link out of range
    b.Vertices(two);
    b.SegmentCount(1);
    b.Segment(0, 1, 13.9, 0, 44, two);
    EXPECT_FALSE(LoadV1(b, "v1_badreverse.bin").ok());
  }
  {
    RoadnetV1Builder b;  // zero-length polyline (would abort AddSegment)
    b.Vertices(two);
    b.SegmentCount(1);
    b.Segment(0, 1, 13.9, 0, -1, {{0.0, 0.0}, {0.0, 0.0}});
    EXPECT_FALSE(LoadV1(b, "v1_zerolen.bin").ok());
  }
  {
    RoadnetV1Builder b;  // polyline length larger than the file
    b.Vertices(two);
    b.SegmentCount(1);
    Append(&b.bytes, static_cast<int32_t>(0));
    Append(&b.bytes, static_cast<int32_t>(1));
    Append(&b.bytes, 13.9);
    Append(&b.bytes, static_cast<uint8_t>(0));
    Append(&b.bytes, static_cast<int32_t>(-1));
    Append(&b.bytes, static_cast<uint32_t>(1u << 28));
    EXPECT_FALSE(LoadV1(b, "v1_hugepoly.bin").ok());
  }
}

// -- Format-v3 corpus (docs/formats.md) -------------------------------------
// The mmap'ed fixed-layout format has its own failure surface: the whole
// file is validated against the mapping, so truncation, bit flips and
// malformed section tables must all fail before any struct view is handed
// out.

std::string SaveTinyNetworkV3(const std::string& name) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  const roadnet::SpatialIndex index(net, /*cell_size_m=*/250.0);
  const std::string path = TempPath(name);
  EXPECT_TRUE(roadnet::SaveRoadNetworkV3(net, path, &index).ok());
  return path;
}

TEST(FormatV3CorpusTest, EveryTruncatedMappingFailsCleanly) {
  const std::string bytes = ReadFile(SaveTinyNetworkV3("v3_trunc.bin"));
  ASSERT_GT(bytes.size(), 64u);
  const std::string trunc_path = TempPath("v3_trunc_case.bin");
  for (size_t keep = 0; keep < bytes.size(); keep += 3) {
    WriteFile(trunc_path, bytes.substr(0, keep));
    EXPECT_FALSE(roadnet::LoadRoadNetwork(trunc_path).ok()) << keep;
  }
}

TEST(FormatV3CorpusTest, EveryBitFlipIsCaughtByCrcFooter) {
  const std::string bytes = ReadFile(SaveTinyNetworkV3("v3_flip.bin"));
  const std::string flip_path = TempPath("v3_flip_case.bin");
  // Step through header, section table, payloads and the footer itself --
  // including the stored CRC (last 8 bytes), which is outside the checksummed
  // range but must still invalidate the file.
  for (size_t i = 8; i < bytes.size(); i += 5) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    WriteFile(flip_path, mutated);
    EXPECT_FALSE(roadnet::LoadRoadNetwork(flip_path).ok()) << i;
  }
}

TEST(FormatV3CorpusTest, MisalignedSectionOffsetIsRejectedDespiteValidCrc) {
  const std::string path = SaveTinyNetworkV3("v3_misalign.bin");
  std::string bytes = ReadFile(path);
  // Section table starts right after the 48-byte header; entry 0's absolute
  // offset lives at bytes [56, 64). Knock it off 8-byte alignment, then
  // re-seal the CRC so only the alignment check can reject the file.
  ASSERT_GT(bytes.size(), 64u + util::kFooterBytes);
  uint64_t off = 0;
  std::memcpy(&off, bytes.data() + 56, sizeof(off));
  off += 4;
  std::memcpy(bytes.data() + 56, &off, sizeof(off));
  const uint32_t crc =
      util::Crc32(bytes.data(), bytes.size() - util::kFooterBytes);
  std::memcpy(bytes.data() + bytes.size() - util::kFooterBytes, &crc,
              sizeof(crc));
  const std::string bad_path = TempPath("v3_misalign_case.bin");
  WriteFile(bad_path, bytes);
  auto loaded = roadnet::LoadRoadNetwork(bad_path);
  EXPECT_FALSE(loaded.ok());
}

TEST(FormatV3CorpusTest, TrajV3TruncationAndBitFlipFailCleanly) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  const std::string path = TempPath("v3_traj.bin");
  ASSERT_TRUE(traj::SaveDatasetV3(MakeTinyDataset(net), path).ok());
  const std::string bytes = ReadFile(path);
  const std::string case_path = TempPath("v3_traj_case.bin");
  for (size_t keep = 0; keep < bytes.size(); keep += 3) {
    WriteFile(case_path, bytes.substr(0, keep));
    EXPECT_FALSE(traj::LoadDataset(case_path).ok()) << "keep=" << keep;
  }
  for (size_t i = 8; i < bytes.size(); i += 5) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    WriteFile(case_path, mutated);
    EXPECT_FALSE(traj::LoadDataset(case_path).ok()) << "flip=" << i;
  }
}

TEST(FormatV3CorpusTest, MmapFaultFallsBackToBufferedLoad) {
  util::FaultInjector& fi = util::FaultInjector::Instance();
  const std::string path = SaveTinyNetworkV3("v3_fault.bin");

  // mmap.open failing means no bytes at all: the load must error out.
  fi.Arm("mmap.open", util::FaultKind::kIoError);
  EXPECT_FALSE(roadnet::LoadRoadNetwork(path).ok());
  fi.Reset();

  // mmap.map failing only loses the zero-copy mapping: the buffered fallback
  // must still produce an identical network.
  fi.Arm("mmap.map", util::FaultKind::kIoError, /*after=*/0, /*count=*/100);
  auto buffered = roadnet::LoadRoadNetwork(path);
  fi.Reset();
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  auto mapped = roadnet::LoadRoadNetwork(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(buffered.value()->num_segments(), mapped.value()->num_segments());
  for (int s = 0; s < mapped.value()->num_segments(); ++s) {
    EXPECT_EQ(buffered.value()->segment(s).from, mapped.value()->segment(s).from);
    EXPECT_EQ(buffered.value()->segment(s).to, mapped.value()->segment(s).to);
  }
}

TEST(TrajCorpusTest, RoundTripSurvives) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  const auto records = MakeTinyDataset(net);
  const std::string path = TempPath("ds_roundtrip.bin");
  ASSERT_TRUE(traj::SaveDataset(records, path).ok());
  auto loaded = traj::LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), records.size());
  EXPECT_EQ(loaded.value()[0].trip.route, records[0].trip.route);
  EXPECT_EQ(loaded.value()[0].gps.size(), records[0].gps.size());
}

TEST(TrajCorpusTest, EveryTruncationAndBitFlipFailsCleanly) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  const std::string path = TempPath("ds_corrupt.bin");
  ASSERT_TRUE(traj::SaveDataset(MakeTinyDataset(net), path).ok());
  const std::string bytes = ReadFile(path);
  const std::string case_path = TempPath("ds_corrupt_case.bin");
  for (size_t keep = 0; keep < bytes.size(); keep += 3) {
    WriteFile(case_path, bytes.substr(0, keep));
    EXPECT_FALSE(traj::LoadDataset(case_path).ok()) << "trunc " << keep;
  }
  for (size_t i = 0; i < bytes.size(); i += 5) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x11);
    WriteFile(case_path, mutated);
    EXPECT_FALSE(traj::LoadDataset(case_path).ok()) << "flip " << i;
  }
}

struct TrajV1Builder {
  std::string bytes;

  TrajV1Builder() {
    Append(&bytes, static_cast<uint32_t>(0x0DA7A701));
    Append(&bytes, static_cast<uint32_t>(1));
  }
  void Count(uint64_t n) { Append(&bytes, n); }
  void TripHeader(double start, geo::Point dest, int32_t day,
                  uint32_t route_len) {
    Append(&bytes, start);
    Append(&bytes, dest.x);
    Append(&bytes, dest.y);
    Append(&bytes, day);
    Append(&bytes, route_len);
  }
};

util::Status LoadTrajV1(const TrajV1Builder& b, const std::string& name) {
  const std::string path = TempPath(name);
  WriteFile(path, b.bytes);
  return traj::LoadDataset(path).status();
}

TEST(TrajCorpusTest, MalformedRecordsReturnStatusNotAbort) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  {
    TrajV1Builder b;  // trip count far beyond the file size
    b.Count(1ull << 40);
    EXPECT_FALSE(LoadTrajV1(b, "traj_hugecount.bin").ok());
  }
  {
    TrajV1Builder b;  // non-finite start time
    b.Count(1);
    b.TripHeader(kNan, {0.0, 0.0}, 0, 2);
    EXPECT_FALSE(LoadTrajV1(b, "traj_nanstart.bin").ok());
  }
  {
    TrajV1Builder b;  // negative day
    b.Count(1);
    b.TripHeader(0.0, {0.0, 0.0}, -4, 2);
    EXPECT_FALSE(LoadTrajV1(b, "traj_negday.bin").ok());
  }
  {
    TrajV1Builder b;  // route length far beyond the file size
    b.Count(1);
    b.TripHeader(0.0, {0.0, 0.0}, 0, 1u << 29);
    EXPECT_FALSE(LoadTrajV1(b, "traj_hugeroute.bin").ok());
  }
  {
    TrajV1Builder b;  // negative segment id
    b.Count(1);
    b.TripHeader(0.0, {0.0, 0.0}, 0, 2);
    Append(&b.bytes, static_cast<int32_t>(0));
    Append(&b.bytes, static_cast<int32_t>(-9));
    Append(&b.bytes, static_cast<uint32_t>(0));  // gps_len
    EXPECT_FALSE(LoadTrajV1(b, "traj_negsegment.bin").ok());
  }
  {
    TrajV1Builder b;  // gps length far beyond the file size
    b.Count(1);
    b.TripHeader(0.0, {0.0, 0.0}, 0, 0);
    Append(&b.bytes, static_cast<uint32_t>(1u << 29));
    EXPECT_FALSE(LoadTrajV1(b, "traj_hugegps.bin").ok());
  }
}

TEST(TrajCorpusTest, ValidateDatasetCatchesReferentialBreakage) {
  const roadnet::RoadNetwork net = MakeTinyNetwork();
  auto records = MakeTinyDataset(net);
  EXPECT_TRUE(traj::ValidateDataset(records, net).ok());

  auto out_of_range = records;
  out_of_range[0].trip.route.back() = net.num_segments() + 3;
  util::Status s = traj::ValidateDataset(out_of_range, net);
  EXPECT_EQ(s.code(), util::Status::Code::kOutOfRange);

  auto non_adjacent = records;
  // Segment 0 (vertex 0->1) cannot be followed by its own id.
  non_adjacent[0].trip.route = {0, 0};
  EXPECT_FALSE(traj::ValidateDataset(non_adjacent, net).ok());
}

TEST(TrafficCsvCorpusTest, ValidCsvLoads) {
  const std::string path = TempPath("traffic_ok.csv");
  WriteFile(path,
            "trip_id,time_s,x,y,speed_mps\n"
            "0,3600,100.5,200.5,8.5\n"
            "1,3610,110.0,210.0,9.5\n");
  auto obs = traffic::LoadObservationsCsv(path);
  ASSERT_TRUE(obs.ok()) << obs.status().ToString();
  ASSERT_EQ(obs.value().size(), 2u);
  EXPECT_DOUBLE_EQ(obs.value()[0].time_s, 3600.0);
  EXPECT_DOUBLE_EQ(obs.value()[1].speed_mps, 9.5);
}

TEST(TrafficCsvCorpusTest, MalformedRowsReturnStatus) {
  const std::string path = TempPath("traffic_bad.csv");
  const std::vector<std::string> bad_bodies = {
      "0,3600,100.5\n",                   // too few fields
      "0,3600,100.5,200.5,8.5,extra\n",   // too many fields
      "0,abc,100.5,200.5,8.5\n",          // non-numeric
      "0,nan,100.5,200.5,8.5\n",          // non-finite
      "0,3600,100.5,200.5,-3.0\n",        // negative speed
      "0,-5,100.5,200.5,3.0\n",           // negative time
  };
  for (size_t i = 0; i < bad_bodies.size(); ++i) {
    WriteFile(path, "trip_id,time_s,x,y,speed_mps\n" + bad_bodies[i]);
    EXPECT_FALSE(traffic::LoadObservationsCsv(path).ok()) << i;
  }
  EXPECT_FALSE(traffic::LoadObservationsCsv(TempPath("missing.csv")).ok());
}

}  // namespace
}  // namespace deepst
