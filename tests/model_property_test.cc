// Parameterized sweeps over model configurations and map-matching noise
// levels: every configuration must produce finite losses, valid routes and
// usable matches -- the "does not crash / does not emit garbage" contract a
// downstream user relies on when exploring configs.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/deepst_model.h"
#include "core/trainer.h"
#include "eval/world.h"
#include "mapmatch/hmm_matcher.h"

namespace deepst {
namespace {

eval::World& SweepWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "sweep-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

// -- Model config sweep ---------------------------------------------------------

struct ModelCase {
  core::DestinationMode dest_mode;
  bool use_traffic;
  bool mask_slots;
  bool length_scaled;
  int beam;
};

class ModelConfigSweep : public testing::TestWithParam<ModelCase> {};

TEST_P(ModelConfigSweep, LossAndPredictionWellFormed) {
  const ModelCase param = GetParam();
  auto& world = SweepWorld();
  core::DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.dest_dim = 8;
  cfg.traffic_dim = 6;
  cfg.num_proxies = 8;
  cfg.cnn_channels = 6;
  cfg.mlp_hidden = 16;
  cfg.destination_mode = param.dest_mode;
  cfg.use_traffic = param.use_traffic;
  cfg.mask_invalid_slots = param.mask_slots;
  cfg.dest_loss_length_scaled = param.length_scaled;
  cfg.beam_width = param.beam;
  core::DeepSTModel model(world.net(), cfg,
                          param.use_traffic ? world.traffic_cache()
                                            : nullptr);

  std::vector<const traj::Trip*> batch;
  for (const auto* rec : world.split().train) {
    if (batch.size() >= 6) break;
    batch.push_back(&rec->trip);
  }
  util::Rng rng(9);
  core::LossStats stats;
  nn::VarPtr loss = model.Loss(batch, &rng, &stats);
  EXPECT_TRUE(std::isfinite(stats.total));
  nn::Backward(loss);

  const auto* rec = world.split().test.front();
  auto route = model.PredictRoute(eval::QueryFor(rec->trip), &rng);
  EXPECT_TRUE(world.net().ValidateRoute(route).ok());
  EXPECT_EQ(route.front(), rec->trip.origin_segment());
  // Loopless decoding.
  std::set<roadnet::SegmentId> unique(route.begin(), route.end());
  EXPECT_EQ(unique.size(), route.size());
  // Scoring is finite for the ground truth.
  EXPECT_TRUE(std::isfinite(
      model.ScoreRoute(eval::QueryFor(rec->trip), rec->trip.route, &rng)));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelConfigSweep,
    testing::Values(
        ModelCase{core::DestinationMode::kProxies, true, false, true, 4},
        ModelCase{core::DestinationMode::kProxies, false, false, true, 1},
        ModelCase{core::DestinationMode::kProxies, true, true, false, 2},
        ModelCase{core::DestinationMode::kFinalSegment, false, false, true,
                  4},
        ModelCase{core::DestinationMode::kFinalSegment, true, false, false,
                  1},
        ModelCase{core::DestinationMode::kNone, false, false, true, 4},
        ModelCase{core::DestinationMode::kNone, true, true, true, 2}));

// -- Map matching noise sweep -----------------------------------------------------

struct MatchCase {
  double extra_noise_m;
  double interval_s;
  double min_recall;
};

class MatcherNoiseSweep : public testing::TestWithParam<MatchCase> {};

TEST_P(MatcherNoiseSweep, RecallDegradesGracefully) {
  const MatchCase param = GetParam();
  auto& world = SweepWorld();
  mapmatch::MatcherConfig mcfg;
  mcfg.sigma_gps_m = std::max(20.0, param.extra_noise_m);
  mcfg.candidate_radius_m = 150.0 + 2 * param.extra_noise_m;
  mapmatch::HmmMapMatcher matcher(world.net(), world.index(), mcfg);
  util::Rng rng(31);
  double recall_sum = 0.0;
  int n = 0;
  for (const auto* rec : world.split().test) {
    if (n >= 10) break;
    traj::GpsTrajectory gps =
        traj::DownsampleByInterval(rec->gps, param.interval_s);
    if (gps.size() < 2) continue;
    for (auto& p : gps) {
      p.pos = p.pos + geo::Point{rng.Gaussian(0, param.extra_noise_m),
                                 rng.Gaussian(0, param.extra_noise_m)};
    }
    auto result = matcher.Match(gps);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(world.net().ValidateRoute(result.value().route).ok());
    std::set<roadnet::SegmentId> truth(rec->trip.route.begin(),
                                       rec->trip.route.end());
    std::set<roadnet::SegmentId> got(result.value().route.begin(),
                                     result.value().route.end());
    int common = 0;
    for (auto s : truth) {
      if (got.count(s)) ++common;
    }
    recall_sum += static_cast<double>(common) /
                  static_cast<double>(truth.size());
    ++n;
  }
  ASSERT_GE(n, 5);
  EXPECT_GE(recall_sum / n, param.min_recall);
}

INSTANTIATE_TEST_SUITE_P(
    NoiseLevels, MatcherNoiseSweep,
    testing::Values(MatchCase{0.0, 15.0, 0.85}, MatchCase{15.0, 15.0, 0.7},
                    MatchCase{0.0, 60.0, 0.7}, MatchCase{30.0, 60.0, 0.45},
                    MatchCase{0.0, 180.0, 0.5}));

}  // namespace
}  // namespace deepst
