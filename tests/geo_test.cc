#include <gtest/gtest.h>

#include <cmath>

#include "geo/grid.h"
#include "geo/latlng.h"
#include "geo/point.h"
#include "geo/polyline.h"

namespace deepst {
namespace geo {
namespace {

TEST(PointTest, ArithmeticAndNorm) {
  Point a{3, 4}, b{1, 1};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ((a - b).x, 2.0);
  EXPECT_DOUBLE_EQ((a + b).y, 5.0);
  EXPECT_DOUBLE_EQ((a * 2).x, 6.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 7.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), std::sqrt(4.0 + 9.0));
}

TEST(BoundingBoxTest, ExtendAndContains) {
  BoundingBox box;
  box.Extend({0, 0});
  box.Extend({10, 5});
  EXPECT_TRUE(box.Contains({5, 2}));
  EXPECT_FALSE(box.Contains({11, 2}));
  EXPECT_DOUBLE_EQ(box.Width(), 10.0);
  EXPECT_DOUBLE_EQ(box.Height(), 5.0);
}

TEST(HaversineTest, KnownDistance) {
  // 1 degree of latitude is ~111.2 km.
  LatLng a{30.0, 104.0}, b{31.0, 104.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111195.0, 200.0);
  EXPECT_NEAR(HaversineMeters(a, a), 0.0, 1e-6);
}

TEST(LocalProjectionTest, RoundTrip) {
  LocalProjection proj({45.75, 126.63});  // Harbin
  LatLng ll{45.80, 126.70};
  Point p = proj.ToLocal(ll);
  LatLng back = proj.ToLatLng(p);
  EXPECT_NEAR(back.lat, ll.lat, 1e-9);
  EXPECT_NEAR(back.lng, ll.lng, 1e-9);
}

TEST(LocalProjectionTest, DistancesMatchHaversine) {
  LocalProjection proj({30.65, 104.06});  // Chengdu
  LatLng a{30.66, 104.07}, b{30.70, 104.10};
  const double planar = proj.ToLocal(a).DistanceTo(proj.ToLocal(b));
  const double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.01);
}

TEST(PolylineTest, Length) {
  std::vector<Point> pts = {{0, 0}, {3, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(PolylineLength(pts), 7.0);
  EXPECT_DOUBLE_EQ(PolylineLength({{1, 1}}), 0.0);
}

TEST(PolylineTest, ProjectOntoSegmentClamps) {
  const Point a{0, 0}, b{10, 0};
  EXPECT_EQ(ProjectOntoSegment({5, 3}, a, b), (Point{5, 0}));
  EXPECT_EQ(ProjectOntoSegment({-5, 3}, a, b), a);
  EXPECT_EQ(ProjectOntoSegment({15, 3}, a, b), b);
  // Degenerate segment.
  EXPECT_EQ(ProjectOntoSegment({1, 1}, a, a), a);
}

TEST(PolylineTest, ProjectOntoPolylinePicksClosestLeg) {
  std::vector<Point> pts = {{0, 0}, {10, 0}, {10, 10}};
  Projection pr = ProjectOntoPolyline({12, 5}, pts);
  EXPECT_EQ(pr.segment_index, 1);
  EXPECT_NEAR(pr.distance, 2.0, 1e-9);
  EXPECT_NEAR(pr.offset, 15.0, 1e-9);
  EXPECT_NEAR(pr.point.x, 10.0, 1e-9);
  EXPECT_NEAR(pr.point.y, 5.0, 1e-9);
}

TEST(PolylineTest, InterpolateAlong) {
  std::vector<Point> pts = {{0, 0}, {10, 0}, {10, 10}};
  Point p = InterpolateAlong(pts, 5.0);
  EXPECT_NEAR(p.x, 5.0, 1e-9);
  Point q = InterpolateAlong(pts, 15.0);
  EXPECT_NEAR(q.y, 5.0, 1e-9);
  // Clamps.
  EXPECT_EQ(InterpolateAlong(pts, -1.0), pts.front());
  EXPECT_EQ(InterpolateAlong(pts, 100.0), pts.back());
}

TEST(PolylineTest, Headings) {
  std::vector<Point> pts = {{0, 0}, {10, 0}, {10, 10}};
  EXPECT_NEAR(HeadingAtStart(pts), 0.0, 1e-9);
  EXPECT_NEAR(HeadingAtEnd(pts), M_PI / 2, 1e-9);
}

TEST(PolylineTest, AngleDiffWrapsAround) {
  EXPECT_NEAR(AngleDiff(0.1, -0.1), 0.2, 1e-9);
  EXPECT_NEAR(AngleDiff(M_PI - 0.05, -M_PI + 0.05), 0.1, 1e-9);
  EXPECT_NEAR(AngleDiff(0.0, M_PI), M_PI, 1e-9);
}

TEST(GridSpecTest, DimensionsAndClamping) {
  BoundingBox box;
  box.Extend({0, 0});
  box.Extend({1000, 500});
  GridSpec grid(box, 100.0);
  EXPECT_EQ(grid.cols(), 10);
  EXPECT_EQ(grid.rows(), 5);
  EXPECT_EQ(grid.num_cells(), 50);
  EXPECT_EQ(grid.CellOf({-50, -50}), 0);  // clamped
  EXPECT_EQ(grid.RowOf({500, 5000}), 4);
  EXPECT_EQ(grid.CellOf({150, 250}), 2 * 10 + 1);
}

TEST(GridSpecTest, CellCenter) {
  BoundingBox box;
  box.Extend({0, 0});
  box.Extend({200, 200});
  GridSpec grid(box, 100.0);
  Point c = grid.CellCenter(1, 0);
  EXPECT_DOUBLE_EQ(c.x, 50.0);
  EXPECT_DOUBLE_EQ(c.y, 150.0);
}

}  // namespace
}  // namespace geo
}  // namespace deepst
