// Format-v3 (docs/formats.md) behavior tests: zero-copy loads that do no
// per-segment heap allocation, cross-version parity (a v1/v2/v3 file of the
// same network answers every query bitwise identically), converter round
// trips, the buffered mmap fallback, and the `deepst_cli inspect` report
// functions.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "roadnet/grid_city.h"
#include "roadnet/io.h"
#include "roadnet/road_network.h"
#include "roadnet/spatial_index.h"
#include "traj/io.h"
#include "traj/types.h"
#include "util/rng.h"

// -- Global allocation counter ----------------------------------------------
// Replacing operator new lets the zero-copy test assert an O(1) allocation
// count for a v3 load. Sanitizer builds own the allocator, so the counting
// hooks (and the tests that need them) are compiled out there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DEEPST_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DEEPST_COUNT_ALLOCS 0
#else
#define DEEPST_COUNT_ALLOCS 1
#endif
#else
#define DEEPST_COUNT_ALLOCS 1
#endif

#if DEEPST_COUNT_ALLOCS
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};
}  // namespace

namespace {
void* CountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // DEEPST_COUNT_ALLOCS

namespace deepst {
namespace {

constexpr double kCell = 250.0;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/deepst_v3_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::unique_ptr<roadnet::RoadNetwork> MakeCity(int rows) {
  roadnet::GridCityConfig cfg = roadnet::ChengduMiniConfig();
  cfg.rows = rows;
  cfg.cols = rows;
  return roadnet::BuildGridCity(cfg);
}

void ExpectSameTopology(const roadnet::RoadNetwork& a,
                        const roadnet::RoadNetwork& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (roadnet::VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex(v).pos.x, b.vertex(v).pos.x);
    EXPECT_EQ(a.vertex(v).pos.y, b.vertex(v).pos.y);
  }
  for (roadnet::SegmentId s = 0; s < a.num_segments(); ++s) {
    EXPECT_EQ(a.segment(s).from, b.segment(s).from);
    EXPECT_EQ(a.segment(s).to, b.segment(s).to);
    EXPECT_EQ(a.segment(s).speed_limit_mps, b.segment(s).speed_limit_mps);
    EXPECT_EQ(a.segment(s).road_class, b.segment(s).road_class);
    EXPECT_EQ(a.segment(s).reverse, b.segment(s).reverse);
    const auto pa = a.polyline(s);
    const auto pb = b.polyline(s);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].x, pb[i].x);
      EXPECT_EQ(pa[i].y, pb[i].y);
    }
  }
}

void ExpectSameQueries(const roadnet::SpatialIndexBase& a,
                       const roadnet::SpatialIndexBase& b,
                       const geo::BoundingBox& box) {
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const geo::Point p{rng.Uniform(box.min.x, box.max.x),
                       rng.Uniform(box.min.y, box.max.y)};
    const auto qa = a.NearestSegments(p, 4);
    const auto qb = b.NearestSegments(p, 4);
    ASSERT_EQ(qa.size(), qb.size()) << i;
    for (size_t j = 0; j < qa.size(); ++j) {
      EXPECT_EQ(qa[j].segment, qb[j].segment) << i;
      EXPECT_EQ(qa[j].projection.distance, qb[j].projection.distance) << i;
    }
  }
}

#if DEEPST_COUNT_ALLOCS
long CountLoadAllocs(const std::string& path) {
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  auto city = roadnet::LoadCity(path, kCell);
  g_count_allocs.store(false);
  EXPECT_TRUE(city.ok()) << city.status().ToString();
  EXPECT_TRUE(city.value().index->zero_copy());
  return g_alloc_count.load();
}

TEST(FormatV3Test, LoadDoesNoPerSegmentAllocation) {
  // Two city sizes an order of magnitude apart: the allocation count of a
  // zero-copy load must be small and must not grow with the network.
  const auto small = MakeCity(6);
  const auto big = MakeCity(20);
  ASSERT_GT(big->num_segments(), 4 * small->num_segments());
  const roadnet::SpatialIndex small_idx(*small, kCell);
  const roadnet::SpatialIndex big_idx(*big, kCell);
  const std::string small_path = TempPath("alloc_small.bin");
  const std::string big_path = TempPath("alloc_big.bin");
  ASSERT_TRUE(
      roadnet::SaveRoadNetworkV3(*small, small_path, &small_idx).ok());
  ASSERT_TRUE(roadnet::SaveRoadNetworkV3(*big, big_path, &big_idx).ok());

  const long small_allocs = CountLoadAllocs(small_path);
  const long big_allocs = CountLoadAllocs(big_path);
  EXPECT_LT(small_allocs, 512) << "v3 load allocates too much";
  EXPECT_LE(big_allocs, small_allocs + 64)
      << "v3 load allocation count scales with the network (" << small_allocs
      << " -> " << big_allocs << ")";
}
#endif  // DEEPST_COUNT_ALLOCS

TEST(FormatV3Test, CrossVersionFilesAnswerBitwiseIdentically) {
  const auto net = MakeCity(10);
  const std::string v2_path = TempPath("xver_v2.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetwork(*net, v2_path).ok());

  // Hand-patch a v1 file out of the v2 bytes: version 1 at offset 4, no
  // CRC footer (v1 predates the checksum).
  std::string v1_bytes = ReadFileBytes(v2_path);
  ASSERT_GT(v1_bytes.size(), 12u);
  const uint32_t kOne = 1;
  std::memcpy(v1_bytes.data() + 4, &kOne, sizeof(kOne));
  v1_bytes.resize(v1_bytes.size() - 4);
  const std::string v1_path = TempPath("xver_v1.bin");
  WriteFileBytes(v1_path, v1_bytes);

  // Convert v2 -> v3 the way `deepst_cli convert` does: load, then write the
  // fixed layout with an embedded index.
  auto from_v2 = roadnet::LoadCity(v2_path, kCell);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  const std::string v3_path = TempPath("xver_v3.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetworkV3(*from_v2.value().net, v3_path,
                                         from_v2.value().index.get())
                  .ok());

  auto from_v1 = roadnet::LoadCity(v1_path, kCell);
  auto from_v3 = roadnet::LoadCity(v3_path, kCell);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  ASSERT_TRUE(from_v3.ok()) << from_v3.status().ToString();
  EXPECT_FALSE(from_v2.value().index->zero_copy());
  EXPECT_TRUE(from_v3.value().index->zero_copy());

  ExpectSameTopology(*net, *from_v1.value().net);
  ExpectSameTopology(*net, *from_v2.value().net);
  ExpectSameTopology(*net, *from_v3.value().net);

  const geo::BoundingBox box = roadnet::SpatialIndexPaddedBounds(*net);
  ExpectSameQueries(*from_v2.value().index, *from_v1.value().index, box);
  ExpectSameQueries(*from_v2.value().index, *from_v3.value().index, box);
}

TEST(FormatV3Test, EmbeddedIndexWithOtherCellSizeIsRebuilt) {
  const auto net = MakeCity(8);
  const roadnet::SpatialIndex idx(*net, kCell);
  const std::string path = TempPath("cellsize.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetworkV3(*net, path, &idx).ok());
  // Embedded CSR is for 250 m cells; asking for 100 m must rebuild instead
  // of adopting, and still serve correct results.
  auto city = roadnet::LoadCity(path, 100.0);
  ASSERT_TRUE(city.ok()) << city.status().ToString();
  EXPECT_FALSE(city.value().index->zero_copy());
  const roadnet::SpatialIndex fresh(*net, 100.0);
  ExpectSameQueries(fresh, *city.value().index,
                    roadnet::SpatialIndexPaddedBounds(*net));
}

TEST(FormatV3Test, NoMmapEnvFallsBackToBufferedLoad) {
  const auto net = MakeCity(8);
  const roadnet::SpatialIndex idx(*net, kCell);
  const std::string path = TempPath("nommap.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetworkV3(*net, path, &idx).ok());
  ::setenv("DEEPST_NO_MMAP", "1", 1);
  auto buffered = roadnet::LoadCity(path, kCell);
  ::unsetenv("DEEPST_NO_MMAP");
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  // Still zero-copy over the buffered bytes, just not a mapping.
  EXPECT_TRUE(buffered.value().index->zero_copy());
  ExpectSameTopology(*net, *buffered.value().net);
  ExpectSameQueries(idx, *buffered.value().index,
                    roadnet::SpatialIndexPaddedBounds(*net));
}

// Handcrafted multi-trip dataset: routes follow real adjacency (first
// successor each hop) so ValidateDataset-style invariants hold, with
// irrational-ish doubles to make bitwise round-trip checks meaningful.
std::vector<traj::TripRecord> MakeDataset(const roadnet::RoadNetwork& net) {
  std::vector<traj::TripRecord> records;
  for (int t = 0; t < 8; ++t) {
    traj::TripRecord rec;
    rec.trip.day = t % 3;
    rec.trip.start_time_s = 3600.0 * t + 42.51 + t / 7.0;
    rec.trip.route.push_back(t % net.num_segments());
    for (int hop = 0; hop < 5; ++hop) {
      const auto outs = net.OutSegments(rec.trip.route.back());
      if (outs.empty()) break;
      rec.trip.route.push_back(outs[hop % outs.size()]);
    }
    rec.trip.destination = net.SegmentEnd(rec.trip.route.back());
    double clock = rec.trip.start_time_s;
    for (roadnet::SegmentId s : rec.trip.route) {
      traj::GpsPoint p;
      p.pos = net.SegmentStart(s);
      p.time_s = clock;
      p.speed_mps = 7.3 + t / 3.0;
      rec.gps.push_back(p);
      clock += 15.0 + t / 11.0;
    }
    records.push_back(std::move(rec));
  }
  return records;
}

void ExpectSameRecords(const std::vector<traj::TripRecord>& a,
                       const std::vector<traj::TripRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trip.route, b[i].trip.route);
    EXPECT_EQ(a[i].trip.day, b[i].trip.day);
    EXPECT_EQ(a[i].trip.start_time_s, b[i].trip.start_time_s);
    EXPECT_EQ(a[i].trip.destination.x, b[i].trip.destination.x);
    EXPECT_EQ(a[i].trip.destination.y, b[i].trip.destination.y);
    ASSERT_EQ(a[i].gps.size(), b[i].gps.size());
    for (size_t j = 0; j < a[i].gps.size(); ++j) {
      EXPECT_EQ(a[i].gps[j].pos.x, b[i].gps[j].pos.x);
      EXPECT_EQ(a[i].gps[j].pos.y, b[i].gps[j].pos.y);
      EXPECT_EQ(a[i].gps[j].time_s, b[i].gps[j].time_s);
      EXPECT_EQ(a[i].gps[j].speed_mps, b[i].gps[j].speed_mps);
    }
  }
}

TEST(FormatV3Test, TrajDatasetConvertsAcrossVersionsLosslessly) {
  const auto net = MakeCity(8);
  const auto records = MakeDataset(*net);
  ASSERT_FALSE(records.empty());
  const std::string v2_path = TempPath("traj_v2.bin");
  const std::string v3_path = TempPath("traj_v3.bin");
  ASSERT_TRUE(traj::SaveDataset(records, v2_path).ok());

  auto v2_loaded = traj::LoadDataset(v2_path);
  ASSERT_TRUE(v2_loaded.ok()) << v2_loaded.status().ToString();
  ASSERT_TRUE(traj::SaveDatasetV3(v2_loaded.value(), v3_path).ok());
  auto v3_loaded = traj::LoadDataset(v3_path);
  ASSERT_TRUE(v3_loaded.ok()) << v3_loaded.status().ToString();

  ExpectSameRecords(records, v2_loaded.value());
  ExpectSameRecords(records, v3_loaded.value());
}

TEST(FormatV3Test, DescribeReportsVersionCountsAndCrc) {
  const auto net = MakeCity(6);
  const roadnet::SpatialIndex idx(*net, kCell);
  const std::string v2_path = TempPath("desc_v2.bin");
  const std::string v3_path = TempPath("desc_v3.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetwork(*net, v2_path).ok());
  ASSERT_TRUE(roadnet::SaveRoadNetworkV3(*net, v3_path, &idx).ok());

  auto v2_desc = roadnet::DescribeRoadNetworkFile(v2_path);
  ASSERT_TRUE(v2_desc.ok()) << v2_desc.status().ToString();
  EXPECT_NE(v2_desc.value().find("v2"), std::string::npos);
  EXPECT_NE(v2_desc.value().find("crc: ok"), std::string::npos);

  auto v3_desc = roadnet::DescribeRoadNetworkFile(v3_path);
  ASSERT_TRUE(v3_desc.ok()) << v3_desc.status().ToString();
  EXPECT_NE(v3_desc.value().find("v3"), std::string::npos);
  EXPECT_NE(v3_desc.value().find("crc: ok"), std::string::npos);
  EXPECT_NE(v3_desc.value().find(std::to_string(net->num_segments())),
            std::string::npos);

  const auto records = MakeDataset(*net);
  const std::string traj_path = TempPath("desc_traj.bin");
  ASSERT_TRUE(traj::SaveDatasetV3(records, traj_path).ok());
  auto traj_desc = traj::DescribeDatasetFile(traj_path);
  ASSERT_TRUE(traj_desc.ok()) << traj_desc.status().ToString();
  EXPECT_NE(traj_desc.value().find("v3"), std::string::npos);
  EXPECT_NE(traj_desc.value().find(std::to_string(records.size())),
            std::string::npos);
}

TEST(FormatV3Test, DescribeProbesRejectForeignMagicsWithInvalidArgument) {
  const auto net = MakeCity(6);
  const auto records = MakeDataset(*net);
  const std::string net_path = TempPath("probe_net.bin");
  const std::string traj_path = TempPath("probe_traj.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetworkV3(*net, net_path, nullptr).ok());
  ASSERT_TRUE(traj::SaveDatasetV3(records, traj_path).ok());

  // Each Describe* must bow out with InvalidArgument on the other kind's
  // magic, so the CLI probe chain can try the next file kind.
  auto wrong1 = roadnet::DescribeRoadNetworkFile(traj_path);
  ASSERT_FALSE(wrong1.ok());
  EXPECT_EQ(wrong1.status().code(), util::Status::Code::kInvalidArgument);
  auto wrong2 = traj::DescribeDatasetFile(net_path);
  ASSERT_FALSE(wrong2.ok());
  EXPECT_EQ(wrong2.status().code(), util::Status::Code::kInvalidArgument);
}

TEST(FormatV3Test, ChengduFullScalesAndStaysConnectedEnoughToSave) {
  // A shrunken chengdu-full: rings/radials/rivers present, round-trips
  // through v3 exactly. (The >= 100k preset runs in bench_scale, not here.)
  roadnet::ChengduFullConfig cfg = roadnet::ChengduFullCityConfig();
  cfg.base.rows = 40;
  cfg.base.cols = 40;
  const auto net = roadnet::BuildChengduFull(cfg);
  ASSERT_GT(net->num_segments(), 4000);
  // All three road classes appear.
  bool has_local = false, has_arterial = false, has_highway = false;
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    switch (net->segment(s).road_class) {
      case roadnet::RoadClass::kLocal: has_local = true; break;
      case roadnet::RoadClass::kArterial: has_arterial = true; break;
      case roadnet::RoadClass::kHighway: has_highway = true; break;
    }
  }
  EXPECT_TRUE(has_local);
  EXPECT_TRUE(has_arterial);
  EXPECT_TRUE(has_highway);

  const roadnet::SpatialIndex idx(*net, kCell);
  const std::string path = TempPath("full_city.bin");
  ASSERT_TRUE(roadnet::SaveRoadNetworkV3(*net, path, &idx).ok());
  auto city = roadnet::LoadCity(path, kCell);
  ASSERT_TRUE(city.ok()) << city.status().ToString();
  ExpectSameTopology(*net, *city.value().net);
}

}  // namespace
}  // namespace deepst
