#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/ops.h"

namespace deepst {
namespace nn {
namespace {

namespace o = ops;

// Minimizes f(x) = sum((x - target)^2) and checks convergence.
template <typename MakeOpt>
void CheckConvergesToTarget(MakeOpt make_opt, int steps, float tol) {
  util::Rng rng(1);
  VarPtr x = MakeVar(Tensor::Uniform({4}, -2.0f, 2.0f, &rng), true);
  Tensor target = Tensor::FromVector({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  auto opt = make_opt(std::vector<NamedParam>{{"x", x}});
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    VarPtr diff = o::Sub(x, Constant(target));
    VarPtr loss = o::Sum(o::Square(diff));
    Backward(loss);
    opt->Step();
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x->value()[i], target[i], tol);
  }
}

TEST(SgdTest, ConvergesOnQuadratic) {
  CheckConvergesToTarget(
      [](std::vector<NamedParam> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1f);
      },
      200, 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  CheckConvergesToTarget(
      [](std::vector<NamedParam> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05f, 0.9f);
      },
      300, 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  CheckConvergesToTarget(
      [](std::vector<NamedParam> p) {
        return std::make_unique<Adam>(std::move(p), 0.05f);
      },
      500, 1e-2f);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // Adam's bias correction makes the first update ~lr regardless of grad
  // scale.
  VarPtr x = MakeVar(Tensor::FromVector({1}, {0.0f}), true);
  Adam opt({{"x", x}}, 0.1f);
  x->grad()[0] = 123.0f;
  opt.Step();
  EXPECT_NEAR(x->value()[0], -0.1f, 1e-4f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  VarPtr x = MakeVar(Tensor::FromVector({1}, {10.0f}), true);
  Adam opt({{"x", x}}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    x->grad()[0] = 0.0f;  // only decay acts
    opt.Step();
  }
  EXPECT_LT(std::fabs(x->value()[0]), 10.0f);
}

TEST(OptimizerTest, ZeroGradClears) {
  VarPtr x = MakeVar(Tensor::FromVector({2}, {1.0f, 2.0f}), true);
  Sgd opt({{"x", x}}, 0.1f);
  x->grad()[0] = 5.0f;
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(x->grad()[0], 0.0f);
}

TEST(OptimizerTest, ClipGradNormScales) {
  VarPtr x = MakeVar(Tensor::FromVector({2}, {0.0f, 0.0f}), true);
  Sgd opt({{"x", x}}, 0.1f);
  x->grad()[0] = 3.0f;
  x->grad()[1] = 4.0f;  // norm 5
  const double pre = opt.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(x->grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(x->grad()[1], 0.8f, 1e-5f);
}

TEST(OptimizerTest, ClipGradNormNoopBelowThreshold) {
  VarPtr x = MakeVar(Tensor::FromVector({1}, {0.0f}), true);
  Sgd opt({{"x", x}}, 0.1f);
  x->grad()[0] = 0.5f;
  opt.ClipGradNorm(1.0);
  EXPECT_FLOAT_EQ(x->grad()[0], 0.5f);
}

TEST(TrainingSmokeTest, MlpLearnsXor) {
  util::Rng rng(7);
  Mlp mlp({2, 16, 2}, Activation::kTanh, &rng);
  Adam opt(mlp.Parameters(), 0.03f);
  const std::vector<std::vector<float>> inputs = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<int> labels = {0, 1, 1, 0};
  Tensor x = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  float last_loss = 1e9f;
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.ZeroGrad();
    VarPtr logits = mlp.Forward(Constant(x));
    VarPtr loss =
        o::CrossEntropyLoss(logits, labels, {1, 1, 1, 1});
    Backward(loss);
    opt.Step();
    last_loss = loss->value()[0];
  }
  EXPECT_LT(last_loss, 0.1f);
  // All four points classified correctly.
  VarPtr logits = mlp.Forward(Constant(x));
  for (int i = 0; i < 4; ++i) {
    const int pred =
        logits->value().at(i, 1) > logits->value().at(i, 0) ? 1 : 0;
    EXPECT_EQ(pred, labels[i]) << "sample " << i;
  }
}

}  // namespace
}  // namespace nn
}  // namespace deepst
