// Finite-difference gradient verification for every differentiable op and
// layer. Each case rebuilds the forward graph from the same parameters, so
// stochastic ops must draw identical noise on every call -- achieved by
// re-seeding the Rng inside the closure.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/conv_layers.h"
#include "nn/conv_ops.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace deepst {
namespace nn {
namespace {

namespace o = ops;

using LossFn = std::function<VarPtr()>;

// Checks d(loss)/d(param) for each element of each param against central
// finite differences.
void CheckGradients(const std::vector<VarPtr>& params, const LossFn& loss_fn,
                    float h = 1e-2f, float rel_tol = 3e-2f,
                    float abs_tol = 2e-3f) {
  // Analytic gradients.
  for (auto& p : params) p->ZeroGrad();
  VarPtr loss = loss_fn();
  ASSERT_EQ(loss->value().numel(), 1);
  Backward(loss);
  for (const auto& p : params) {
    Tensor analytic = p->grad();
    for (int64_t i = 0; i < p->value().numel(); ++i) {
      const float orig = p->value()[i];
      p->value()[i] = orig + h;
      const float fp = loss_fn()->value()[0];
      p->value()[i] = orig - h;
      const float fm = loss_fn()->value()[0];
      p->value()[i] = orig;
      const float numeric = (fp - fm) / (2 * h);
      const float a = analytic[i];
      const float err = std::fabs(a - numeric);
      const float scale = std::max({std::fabs(a), std::fabs(numeric), 1.0f});
      EXPECT_LE(err, rel_tol * scale + abs_tol)
          << "param elem " << i << ": analytic " << a << " numeric "
          << numeric;
    }
  }
}

VarPtr P(std::vector<int64_t> shape, uint64_t seed, float scale = 1.0f) {
  util::Rng rng(seed);
  return MakeVar(Tensor::Uniform(std::move(shape), -scale, scale, &rng),
                 true);
}

TEST(GradCheck, ElementwiseChain) {
  VarPtr a = P({3, 4}, 1);
  VarPtr b = P({3, 4}, 2);
  CheckGradients({a, b}, [&] {
    return o::Sum(o::Mul(o::Tanh(a), o::Sigmoid(o::Sub(a, b))));
  });
}

TEST(GradCheck, DivAndSquare) {
  VarPtr a = P({2, 3}, 3);
  VarPtr b = MakeVar(Tensor::Full({2, 3}, 2.0f), true);
  CheckGradients({a, b},
                 [&] { return o::Sum(o::Div(o::Square(a), b)); });
}

TEST(GradCheck, ExpLogSoftplus) {
  VarPtr a = P({2, 2}, 4, 0.5f);
  CheckGradients({a}, [&] {
    return o::Sum(o::Log(o::ScalarAdd(o::Exp(a), 1.5f)));
  });
  VarPtr b = P({2, 2}, 5);
  CheckGradients({b}, [&] { return o::Sum(o::Softplus(b)); });
}

TEST(GradCheck, ScalarOpsAndNeg) {
  VarPtr a = P({5}, 6);
  CheckGradients({a}, [&] {
    return o::Sum(o::Neg(o::RSubScalar(2.0f, o::ScalarMul(a, 3.0f))));
  });
}

TEST(GradCheck, MatMul) {
  VarPtr a = P({3, 4}, 7);
  VarPtr b = P({4, 2}, 8);
  CheckGradients({a, b},
                 [&] { return o::Sum(o::Tanh(o::MatMul(a, b))); });
}

TEST(GradCheck, LinearWithBias) {
  VarPtr x = P({3, 4}, 9);
  VarPtr w = P({2, 4}, 10);
  VarPtr b = P({2}, 11);
  CheckGradients({x, w, b},
                 [&] { return o::Sum(o::Sigmoid(o::Linear(x, w, b))); });
}

TEST(GradCheck, RowSumWeightedSumMean) {
  VarPtr a = P({3, 4}, 12);
  util::Rng wr(13);
  Tensor weights = Tensor::Uniform({3}, 0.0f, 1.0f, &wr);
  CheckGradients({a}, [&] {
    return o::WeightedSum(o::RowSum(o::Square(a)),
                          weights.Reshape({3}));
  });
  CheckGradients({a}, [&] { return o::Mean(o::Tanh(a)); });
}

TEST(GradCheck, ConcatSliceReshape) {
  VarPtr a = P({2, 3}, 14);
  VarPtr b = P({2, 2}, 15);
  CheckGradients({a, b}, [&] {
    VarPtr cat = o::ConcatCols({a, b});
    VarPtr left = o::SliceCols(cat, 1, 3);
    return o::Sum(o::Square(o::Reshape(left, {3, 2})));
  });
}

TEST(GradCheck, Embedding) {
  VarPtr table = P({5, 3}, 16);
  const std::vector<int> ids = {0, 4, 2, 4};
  CheckGradients({table}, [&] {
    return o::Sum(o::Tanh(o::EmbeddingLookup(table, ids)));
  });
}

TEST(GradCheck, SoftmaxAndLogSoftmax) {
  VarPtr a = P({3, 5}, 17);
  util::Rng wr(18);
  Tensor w = Tensor::Uniform({3, 5}, -1.0f, 1.0f, &wr);
  CheckGradients({a}, [&] { return o::WeightedSum(o::Softmax(a), w); });
  CheckGradients({a}, [&] { return o::WeightedSum(o::LogSoftmax(a), w); });
}

TEST(GradCheck, CrossEntropy) {
  VarPtr logits = P({4, 6}, 19);
  const std::vector<int> targets = {0, 5, 2, 2};
  const std::vector<float> weights = {1.0f, 0.5f, 0.0f, 2.0f};
  CheckGradients({logits}, [&] {
    return o::CrossEntropyLoss(logits, targets, weights);
  });
}

TEST(GradCheck, KlStandardNormal) {
  VarPtr mu = P({2, 4}, 20);
  VarPtr logvar = P({2, 4}, 21, 0.5f);
  CheckGradients({mu, logvar},
                 [&] { return o::KlStandardNormal(mu, logvar); });
}

TEST(GradCheck, CategoricalKlToUniform) {
  VarPtr logits = P({3, 4}, 22);
  CheckGradients({logits},
                 [&] { return o::CategoricalKlToUniform(logits); });
}

TEST(GradCheck, GaussianReparameterizeFixedNoise) {
  VarPtr mu = P({2, 3}, 23);
  VarPtr logvar = P({2, 3}, 24, 0.5f);
  CheckGradients({mu, logvar}, [&] {
    util::Rng rng(99);  // identical noise on every rebuild
    return o::Sum(
        o::Square(o::GaussianReparameterize(mu, logvar, &rng)));
  });
}

TEST(GradCheck, GumbelSoftmaxFixedNoise) {
  VarPtr logits = P({2, 4}, 25);
  util::Rng wr(26);
  Tensor w = Tensor::Uniform({2, 4}, -1.0f, 1.0f, &wr);
  CheckGradients(
      {logits},
      [&] {
        util::Rng rng(77);
        return o::WeightedSum(o::GumbelSoftmaxSample(logits, 1.0f, &rng), w);
      },
      /*h=*/5e-3f, /*rel_tol=*/5e-2f, /*abs_tol=*/5e-3f);
}

TEST(GradCheck, GaussianLogProb) {
  util::Rng xr(27);
  Tensor x = Tensor::Uniform({3, 2}, -1.0f, 1.0f, &xr);
  Tensor rw = Tensor::FromVector({3}, {1.0f, 0.0f, 0.7f});
  VarPtr mean = P({3, 2}, 28);
  VarPtr raw_var = P({3, 2}, 29, 0.5f);
  CheckGradients({mean, raw_var}, [&] {
    // Keep variance positive through softplus, as the model does.
    VarPtr var = o::ScalarAdd(o::Softplus(raw_var), 0.05f);
    return o::GaussianLogProb(x, mean, var, rw);
  });
}

TEST(GradCheck, Conv2d) {
  VarPtr x = P({2, 2, 5, 5}, 30);
  VarPtr w = P({3, 2, 3, 3}, 31, 0.5f);
  VarPtr b = P({3}, 32);
  CheckGradients(
      {x, w, b},
      [&] { return o::Mean(o::Tanh(o::Conv2d(x, w, b, 2, 1))); },
      /*h=*/1e-2f, /*rel_tol=*/4e-2f, /*abs_tol=*/3e-3f);
}

TEST(GradCheck, BatchNormTraining) {
  VarPtr x = P({3, 2, 2, 2}, 33);
  VarPtr gamma = MakeVar(Tensor::Full({2}, 1.2f), true);
  VarPtr beta = MakeVar(Tensor::Full({2}, -0.3f), true);
  util::Rng wr(34);
  Tensor w = Tensor::Uniform({3 * 2 * 2 * 2}, -1.0f, 1.0f, &wr);
  CheckGradients(
      {x, gamma, beta},
      [&] {
        ops::BatchNormState state;  // fresh running stats each call
        state.running_mean = Tensor::Zeros({2});
        state.running_var = Tensor::Full({2}, 1.0f);
        VarPtr y = o::BatchNorm2d(x, gamma, beta, &state, true);
        return o::WeightedSum(o::Reshape(y, {24}), w);
      },
      /*h=*/1e-2f, /*rel_tol=*/5e-2f, /*abs_tol=*/5e-3f);
}

TEST(GradCheck, PoolingOps) {
  VarPtr x = P({2, 3, 4, 4}, 35);
  CheckGradients({x},
                 [&] { return o::Sum(o::Square(o::GlobalAvgPool2d(x))); });
  CheckGradients({x}, [&] { return o::Sum(o::Square(o::AvgPool2d(x, 2))); });
}

TEST(GradCheck, GruCellStep) {
  util::Rng rng(36);
  GruCell cell(3, 4, &rng);
  VarPtr x = P({2, 3}, 37);
  VarPtr h = P({2, 4}, 38);
  std::vector<VarPtr> all = {x, h};
  for (const auto& p : cell.Parameters()) all.push_back(p.var);
  CheckGradients(all, [&] { return o::Sum(o::Square(cell.Step(x, h))); });
}

TEST(GradCheck, StackedGruUnrolled) {
  util::Rng rng(39);
  StackedGru gru(3, 4, 2, &rng);
  VarPtr x0 = P({2, 3}, 40);
  VarPtr x1 = P({2, 3}, 41);
  std::vector<VarPtr> all = {x0, x1};
  for (const auto& p : gru.Parameters()) all.push_back(p.var);
  CheckGradients(
      all,
      [&] {
        auto state = gru.InitialState(2);
        gru.Step(x0, &state);
        VarPtr top = gru.Step(x1, &state);
        return o::Sum(o::Tanh(top));
      },
      /*h=*/1e-2f, /*rel_tol=*/4e-2f, /*abs_tol=*/3e-3f);
}

TEST(GradCheck, MlpEndToEnd) {
  util::Rng rng(42);
  Mlp mlp({3, 8, 8, 2}, Activation::kLeakyRelu, &rng);
  VarPtr x = P({4, 3}, 43);
  std::vector<VarPtr> all = {x};
  for (const auto& p : mlp.Parameters()) all.push_back(p.var);
  CheckGradients(all,
                 [&] { return o::Sum(o::Square(mlp.Forward(x))); });
}

TEST(GradCheck, ConvBlockEndToEnd) {
  util::Rng rng(44);
  ConvBlock block(2, 3, 3, 2, 1, &rng);
  VarPtr x = P({2, 2, 6, 6}, 45);
  // Check only conv weights (batch-norm params covered above); keep the
  // case fast.
  std::vector<VarPtr> params = {x};
  CheckGradients(
      params,
      [&] {
        return o::Mean(o::Square(block.Forward(x, /*training=*/false)));
      },
      /*h=*/1e-2f, /*rel_tol=*/5e-2f, /*abs_tol=*/5e-3f);
}

}  // namespace
}  // namespace nn
}  // namespace deepst
