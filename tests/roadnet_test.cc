#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "roadnet/grid_city.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "roadnet/spatial_index.h"

namespace deepst {
namespace roadnet {
namespace {

// Builds the paper's Figure 1a-style toy network: a small directed graph
// with a few crossings, used across the roadnet tests.
//
//   v0 --s0--> v1 --s1--> v2
//               |          |
//              s2         s3
//               v          v
//   v3 <------ v4 --s4--> v5
std::unique_ptr<RoadNetwork> BuildToyNetwork() {
  auto net = std::make_unique<RoadNetwork>();
  const VertexId v0 = net->AddVertex({0, 0});
  const VertexId v1 = net->AddVertex({100, 0});
  const VertexId v2 = net->AddVertex({200, 0});
  const VertexId v3 = net->AddVertex({0, -100});
  const VertexId v4 = net->AddVertex({100, -100});
  const VertexId v5 = net->AddVertex({200, -100});
  net->AddSegment(v0, v1, 10.0);  // s0
  net->AddSegment(v1, v2, 10.0);  // s1
  net->AddSegment(v1, v4, 10.0);  // s2
  net->AddSegment(v2, v5, 10.0);  // s3
  net->AddSegment(v4, v5, 10.0);  // s4
  net->AddSegment(v4, v3, 10.0);  // s5
  net->Finalize();
  return net;
}

TEST(RoadNetworkTest, CountsAndGeometry) {
  auto net = BuildToyNetwork();
  EXPECT_EQ(net->num_vertices(), 6);
  EXPECT_EQ(net->num_segments(), 6);
  EXPECT_DOUBLE_EQ(net->segment(0).length_m, 100.0);
  EXPECT_EQ(net->SegmentStart(0), (geo::Point{0, 0}));
  EXPECT_EQ(net->SegmentEnd(0), (geo::Point{100, 0}));
  EXPECT_EQ(net->SegmentMidpoint(0), (geo::Point{50, 0}));
  EXPECT_DOUBLE_EQ(net->FreeFlowTime(0), 10.0);
}

TEST(RoadNetworkTest, AdjacencyAndSlots) {
  auto net = BuildToyNetwork();
  // s0 ends at v1; out of v1: s1, s2.
  const auto& outs = net->OutSegments(0);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0], 1);
  EXPECT_EQ(outs[1], 2);
  EXPECT_EQ(net->NeighborSlot(0, 1), 0);
  EXPECT_EQ(net->NeighborSlot(0, 2), 1);
  EXPECT_EQ(net->NeighborSlot(0, 4), -1);  // not adjacent
  EXPECT_EQ(net->SlotToSegment(0, 1), 2);
  EXPECT_EQ(net->SlotToSegment(0, 5), kInvalidSegment);
  EXPECT_TRUE(net->AreConsecutive(1, 3));
  EXPECT_FALSE(net->AreConsecutive(3, 1));
  EXPECT_GE(net->MaxOutDegree(), 2);
  // In-segments of s4 (v4 -> v5): s2 ends at v4.
  const auto& ins = net->InSegments(4);
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(ins[0], 2);
}

TEST(RoadNetworkTest, ValidateRoute) {
  auto net = BuildToyNetwork();
  EXPECT_TRUE(net->ValidateRoute({0, 2, 4}).ok());
  EXPECT_FALSE(net->ValidateRoute({0, 4}).ok());
  EXPECT_FALSE(net->ValidateRoute({}).ok());
  EXPECT_FALSE(net->ValidateRoute({99}).ok());
  EXPECT_DOUBLE_EQ(net->RouteLength({0, 2, 4}), 300.0);
}

TEST(RoadNetworkTest, ReverseLink) {
  auto net = std::make_unique<RoadNetwork>();
  const VertexId a = net->AddVertex({0, 0});
  const VertexId b = net->AddVertex({10, 0});
  const SegmentId f = net->AddSegment(a, b, 5.0);
  const SegmentId r = net->AddSegment(b, a, 5.0);
  net->LinkReverse(f, r);
  net->Finalize();
  EXPECT_EQ(net->segment(f).reverse, r);
  EXPECT_EQ(net->segment(r).reverse, f);
}

TEST(ShortestPathTest, FindsOptimalRoute) {
  auto net = BuildToyNetwork();
  // From s0 to s4: s0 -> s2 -> s4 (cost 30 with unit-speed weights).
  auto result = ShortestPath(*net, 0, 4, FreeFlowTimeCost(*net));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().path, (std::vector<SegmentId>{0, 2, 4}));
  EXPECT_DOUBLE_EQ(result.value().cost, 30.0);
}

TEST(ShortestPathTest, SourceEqualsTarget) {
  auto net = BuildToyNetwork();
  auto result = ShortestPath(*net, 3, 3, LengthCost(*net));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().path, (std::vector<SegmentId>{3}));
  EXPECT_DOUBLE_EQ(result.value().cost, net->segment(3).length_m);
}

TEST(ShortestPathTest, UnreachableReturnsNotFound) {
  auto net = BuildToyNetwork();
  // s5 ends at v3 which has no outgoing segments; nothing reachable from it.
  auto result = ShortestPath(*net, 5, 0, FreeFlowTimeCost(*net));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kNotFound);
}

TEST(ShortestPathTest, BannedSegmentsForceDetour) {
  auto net = BuildToyNetwork();
  std::vector<bool> banned(static_cast<size_t>(net->num_segments()), false);
  banned[2] = true;  // forbid the direct middle link
  PathQueryOptions opts;
  opts.banned_segments = &banned;
  auto result = ShortestPath(*net, 0, 3, FreeFlowTimeCost(*net), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().path, (std::vector<SegmentId>{0, 1, 3}));
}

TEST(ShortestPathTest, TurnCostChangesChoice) {
  // Two routes of equal base cost; a turn penalty tips the balance.
  auto net = BuildToyNetwork();
  // s0 -> {s1 (straight), s2 (right turn)}. Penalize s0->s2 heavily.
  PathQueryOptions opts;
  opts.turn_cost = [](SegmentId prev, SegmentId next) {
    return (prev == 0 && next == 2) ? 100.0 : 0.0;
  };
  auto result = ShortestPath(*net, 0, 3, FreeFlowTimeCost(*net), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().path, (std::vector<SegmentId>{0, 1, 3}));
}

TEST(ShortestPathTest, TreeDistances) {
  auto net = BuildToyNetwork();
  auto dist = ShortestPathTree(*net, 0, FreeFlowTimeCost(*net));
  EXPECT_DOUBLE_EQ(dist[0], 10.0);
  EXPECT_DOUBLE_EQ(dist[2], 20.0);
  EXPECT_DOUBLE_EQ(dist[4], 30.0);
  EXPECT_TRUE(std::isinf(dist[5] - 40.0) == false);
}

TEST(KShortestPathsTest, EnumeratesDistinctLooplessPaths) {
  auto net = BuildToyNetwork();
  // s0 to s3 has exactly 1 path (0,1,3). s0 to s4... let's query a pair with
  // two paths: from s0 to v5: either target s3 or s4. Use richer pair: add
  // query from s0 to s3 and from s0 to s4.
  auto paths = KShortestPaths(*net, 0, 3, 5, FreeFlowTimeCost(*net));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].path, (std::vector<SegmentId>{0, 1, 3}));
}

TEST(KShortestPathsTest, OrderedByCostAndDistinct) {
  GridCityConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.removal_prob = 0.0;
  cfg.oneway_prob = 0.0;
  cfg.diagonal_prob = 0.0;
  cfg.seed = 9;
  auto net = BuildGridCity(cfg);
  const SegmentId src = 0;
  // Find some reachable target.
  auto dist = ShortestPathTree(*net, src, FreeFlowTimeCost(*net));
  SegmentId tgt = kInvalidSegment;
  double best = 0.0;
  for (SegmentId s = 0; s < net->num_segments(); ++s) {
    if (std::isfinite(dist[s]) && dist[s] > best) {
      best = dist[s];
      tgt = s;
    }
  }
  ASSERT_NE(tgt, kInvalidSegment);
  auto paths = KShortestPaths(*net, src, tgt, 8, FreeFlowTimeCost(*net));
  ASSERT_GE(paths.size(), 3u);
  std::set<std::vector<SegmentId>> distinct;
  for (size_t i = 0; i < paths.size(); ++i) {
    distinct.insert(paths[i].path);
    EXPECT_TRUE(net->ValidateRoute(paths[i].path).ok());
    EXPECT_EQ(paths[i].path.front(), src);
    EXPECT_EQ(paths[i].path.back(), tgt);
    if (i > 0) EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-9);
    // Loopless: no repeated segments.
    std::set<SegmentId> segs(paths[i].path.begin(), paths[i].path.end());
    EXPECT_EQ(segs.size(), paths[i].path.size());
  }
  EXPECT_EQ(distinct.size(), paths.size());
}

TEST(GridCityTest, BuildsFinalizedConnectedNetwork) {
  auto net = BuildGridCity(ChengduMiniConfig());
  EXPECT_TRUE(net->finalized());
  EXPECT_GT(net->num_segments(), 300);
  EXPECT_LE(net->MaxOutDegree(), 8);
  EXPECT_GE(net->MaxOutDegree(), 3);
  // Most segments reachable from a central one.
  const SegmentId src = net->num_segments() / 2;
  auto dist = ShortestPathTree(*net, src, FreeFlowTimeCost(*net));
  int reachable = 0;
  for (double d : dist) {
    if (std::isfinite(d)) ++reachable;
  }
  EXPECT_GT(reachable, net->num_segments() * 8 / 10);
}

TEST(GridCityTest, PresetsDiffer) {
  auto chengdu = BuildGridCity(ChengduMiniConfig());
  auto harbin = BuildGridCity(HarbinMiniConfig());
  EXPECT_GT(harbin->num_segments(), chengdu->num_segments());
  EXPECT_GT(harbin->bounds().Width(), chengdu->bounds().Width());
}

TEST(GridCityTest, DeterministicForSeed) {
  auto a = BuildGridCity(ChengduMiniConfig());
  auto b = BuildGridCity(ChengduMiniConfig());
  ASSERT_EQ(a->num_segments(), b->num_segments());
  for (SegmentId s = 0; s < a->num_segments(); ++s) {
    EXPECT_EQ(a->segment(s).from, b->segment(s).from);
    EXPECT_EQ(a->segment(s).to, b->segment(s).to);
  }
}

TEST(GridCityTest, HasArterials) {
  auto net = BuildGridCity(ChengduMiniConfig());
  int arterials = 0;
  for (SegmentId s = 0; s < net->num_segments(); ++s) {
    if (net->segment(s).road_class == RoadClass::kArterial) ++arterials;
  }
  EXPECT_GT(arterials, 0);
  EXPECT_LT(arterials, net->num_segments());
}

TEST(SpatialIndexTest, NearestFindsProjection) {
  auto net = BuildToyNetwork();
  SpatialIndex index(*net, 50.0);
  // A point just above the middle of s0.
  auto cand = index.Nearest({50, 10});
  EXPECT_EQ(cand.segment, 0);
  EXPECT_NEAR(cand.projection.distance, 10.0, 1e-9);
  EXPECT_NEAR(cand.projection.point.x, 50.0, 1e-9);
}

TEST(SpatialIndexTest, NearestSegmentsSortedAndK) {
  auto net = BuildToyNetwork();
  SpatialIndex index(*net, 50.0);
  auto cands = index.NearestSegments({100, -50}, 3);
  ASSERT_EQ(cands.size(), 3u);
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i].projection.distance,
              cands[i - 1].projection.distance);
  }
}

TEST(SpatialIndexTest, SegmentsNearRespectsRadius) {
  auto net = BuildToyNetwork();
  SpatialIndex index(*net, 50.0);
  auto cands = index.SegmentsNear({50, 5}, 20.0);
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_LE(c.projection.distance, 20.0);
  }
  // A huge radius returns everything.
  auto all = index.SegmentsNear({100, -50}, 1e6);
  EXPECT_EQ(all.size(), static_cast<size_t>(net->num_segments()));
}

TEST(SpatialIndexTest, ConsistentWithBruteForce) {
  auto net = BuildGridCity(ChengduMiniConfig());
  SpatialIndex index(*net, 200.0);
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    geo::Point p{rng.Uniform(net->bounds().min.x, net->bounds().max.x),
                 rng.Uniform(net->bounds().min.y, net->bounds().max.y)};
    auto cand = index.Nearest(p);
    double brute = 1e18;
    for (SegmentId s = 0; s < net->num_segments(); ++s) {
      brute = std::min(brute, net->ProjectToSegment(p, s).distance);
    }
    EXPECT_NEAR(cand.projection.distance, brute, 1e-6);
  }
}

}  // namespace
}  // namespace roadnet
}  // namespace deepst
