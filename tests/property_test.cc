// Parameterized property tests: invariants that must hold across sweeps of
// seeds, sizes and configurations rather than on hand-picked instances.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "eval/metrics.h"
#include "nn/ops.h"
#include "roadnet/grid_city.h"
#include "roadnet/shortest_path.h"
#include "roadnet/spatial_index.h"
#include "traffic/congestion_field.h"
#include "traj/generator.h"

namespace deepst {
namespace {

// -- Road network invariants over many generated cities ------------------------

class GridCityProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(GridCityProperty, AdjacencyIsConsistent) {
  roadnet::GridCityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 7;
  cfg.seed = GetParam();
  auto net = roadnet::BuildGridCity(cfg);
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    const auto& outs = net->OutSegments(s);
    EXPECT_LE(static_cast<int>(outs.size()), net->MaxOutDegree());
    for (size_t i = 0; i < outs.size(); ++i) {
      // Slot round trip.
      EXPECT_EQ(net->NeighborSlot(s, outs[i]), static_cast<int>(i));
      EXPECT_EQ(net->SlotToSegment(s, static_cast<int>(i)), outs[i]);
      // Successor really starts where s ends.
      EXPECT_EQ(net->segment(outs[i]).from, net->segment(s).to);
      // In-segment back-reference.
      const auto& ins = net->InSegments(outs[i]);
      EXPECT_NE(std::find(ins.begin(), ins.end(), s), ins.end());
    }
    // Sorted slots.
    EXPECT_TRUE(std::is_sorted(outs.begin(), outs.end()));
    // Reverse twin symmetry.
    const auto r = net->segment(s).reverse;
    if (r != roadnet::kInvalidSegment) {
      EXPECT_EQ(net->segment(r).reverse, s);
      EXPECT_EQ(net->segment(r).from, net->segment(s).to);
      EXPECT_EQ(net->segment(r).to, net->segment(s).from);
    }
  }
}

TEST_P(GridCityProperty, DijkstraOptimalityViaRelaxation) {
  roadnet::GridCityConfig cfg;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.seed = GetParam();
  auto net = roadnet::BuildGridCity(cfg);
  const auto cost = roadnet::LengthCost(*net);
  const auto dist = roadnet::ShortestPathTree(*net, 0, cost);
  // Bellman condition: no edge can relax any settled distance.
  for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
    if (!std::isfinite(dist[static_cast<size_t>(s)])) continue;
    for (auto nxt : net->OutSegments(s)) {
      EXPECT_LE(dist[static_cast<size_t>(nxt)],
                dist[static_cast<size_t>(s)] + cost(nxt) + 1e-6);
    }
  }
  // And a path found by ShortestPath matches the tree distance.
  for (roadnet::SegmentId t = 1; t < net->num_segments(); t += 11) {
    auto path = roadnet::ShortestPath(*net, 0, t, cost);
    if (path.ok()) {
      EXPECT_NEAR(path.value().cost, dist[static_cast<size_t>(t)], 1e-6);
      EXPECT_TRUE(net->ValidateRoute(path.value().path).ok());
    } else {
      EXPECT_TRUE(std::isinf(dist[static_cast<size_t>(t)]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridCityProperty,
                         testing::Values(1, 7, 42, 1234, 99991));

// -- Trip generator invariants over configurations ------------------------------

struct GenCase {
  uint64_t seed;
  double noise;
  double p_uniform;
};

class GeneratorProperty : public testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, TripsAreWellFormed) {
  const GenCase param = GetParam();
  roadnet::GridCityConfig city;
  city.rows = 6;
  city.cols = 6;
  city.seed = 11;
  auto net = roadnet::BuildGridCity(city);
  traffic::CongestionField field(*net, {});
  traj::GeneratorConfig cfg;
  cfg.num_days = 2;
  cfg.trips_per_day = 25;
  cfg.seed = param.seed;
  cfg.route_noise = param.noise;
  cfg.p_uniform_dest = param.p_uniform;
  traj::TripGenerator gen(*net, field, cfg);
  auto records = gen.GenerateDataset();
  ASSERT_EQ(records.size(), 50u);
  for (const auto& rec : records) {
    ASSERT_TRUE(net->ValidateRoute(rec.trip.route).ok());
    // Loopless routes (drivers do not revisit a segment).
    std::set<roadnet::SegmentId> unique(rec.trip.route.begin(),
                                        rec.trip.route.end());
    EXPECT_EQ(unique.size(), rec.trip.route.size());
    // Length bounds.
    const double len = net->RouteLength(rec.trip.route);
    EXPECT_GE(len, cfg.min_route_m);
    EXPECT_LE(len, cfg.max_route_m);
    // GPS timestamps strictly increase and span the trip.
    for (size_t i = 1; i < rec.gps.size(); ++i) {
      EXPECT_GT(rec.gps[i].time_s, rec.gps[i - 1].time_s);
    }
    // Destination within the (padded) city bounds.
    geo::BoundingBox box = net->bounds();
    box.Extend({box.min.x - 1000, box.min.y - 1000});
    box.Extend({box.max.x + 1000, box.max.y + 1000});
    EXPECT_TRUE(box.Contains(rec.trip.destination));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GeneratorProperty,
    testing::Values(GenCase{1, 0.1, 0.1}, GenCase{2, 0.3, 0.5},
                    GenCase{3, 0.5, 0.9}, GenCase{4, 0.0, 0.0}));

// -- Metric properties -----------------------------------------------------------

class MetricProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(MetricProperty, BoundsSymmetryAndIdentity) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    traj::Route a, b;
    const int na = 1 + static_cast<int>(rng.UniformInt(12));
    const int nb = 1 + static_cast<int>(rng.UniformInt(12));
    for (int i = 0; i < na; ++i) {
      a.push_back(static_cast<roadnet::SegmentId>(rng.UniformInt(20)));
    }
    for (int i = 0; i < nb; ++i) {
      b.push_back(static_cast<roadnet::SegmentId>(rng.UniformInt(20)));
    }
    const double acc = eval::Accuracy(a, b);
    const double rec = eval::RecallAtN(a, b);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
    EXPECT_GE(rec, 0.0);
    EXPECT_LE(rec, 1.0);
    // Accuracy is symmetric (multiset intersection over max size).
    EXPECT_DOUBLE_EQ(acc, eval::Accuracy(b, a));
    // Identity.
    EXPECT_DOUBLE_EQ(eval::Accuracy(a, a), 1.0);
    EXPECT_DOUBLE_EQ(eval::RecallAtN(a, a), 1.0);
    // A truth prefix of the prediction yields perfect recall.
    if (b.size() >= a.size() &&
        std::equal(a.begin(), a.end(), b.begin())) {
      EXPECT_DOUBLE_EQ(rec, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty, testing::Values(3, 17, 23));

// -- Traffic field properties ------------------------------------------------------

class TrafficProperty : public testing::TestWithParam<int> {};

TEST_P(TrafficProperty, SpeedPositiveAndBounded) {
  roadnet::GridCityConfig city;
  city.rows = 5;
  city.cols = 5;
  city.seed = 2;
  auto net = roadnet::BuildGridCity(city);
  traffic::CongestionConfig cfg;
  cfg.seed = static_cast<uint64_t>(GetParam());
  traffic::CongestionField field(*net, cfg);
  util::Rng rng(static_cast<uint64_t>(GetParam()) + 1);
  for (int i = 0; i < 300; ++i) {
    const auto s = static_cast<roadnet::SegmentId>(
        rng.UniformInt(static_cast<uint64_t>(net->num_segments())));
    const double t = rng.Uniform(0.0, 20 * traffic::kSecondsPerDay);
    const double v = field.SpeedAt(s, t);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, net->segment(s).speed_limit_mps + 1e-9);
    EXPECT_GT(field.TravelTime(s, t), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficProperty, testing::Values(1, 2, 3));

// -- Autodiff linearity / composition properties ------------------------------------

class AutodiffProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(AutodiffProperty, GradientOfSumIsSumOfGradients) {
  util::Rng rng(GetParam());
  nn::VarPtr x = nn::MakeVar(nn::Tensor::Uniform({4, 3}, -1, 1, &rng), true);
  // f(x) = sum(tanh(x)) + sum(x*x); grad = (1 - tanh^2) + 2x.
  nn::VarPtr loss =
      nn::ops::Add(nn::ops::Sum(nn::ops::Tanh(x)),
                   nn::ops::Sum(nn::ops::Mul(x, x)));
  nn::Backward(loss);
  for (int64_t i = 0; i < x->value().numel(); ++i) {
    const float v = x->value()[i];
    const float expected =
        (1.0f - std::tanh(v) * std::tanh(v)) + 2.0f * v;
    EXPECT_NEAR(x->grad()[i], expected, 1e-5);
  }
}

TEST_P(AutodiffProperty, SoftmaxInvariantToLogitShift) {
  util::Rng rng(GetParam());
  nn::Tensor logits = nn::Tensor::Uniform({3, 5}, -2, 2, &rng);
  nn::Tensor shifted = logits;
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 5; ++c) shifted.at(r, c) += 7.5f;
  }
  nn::Tensor p1 = nn::SoftmaxRows(logits);
  nn::Tensor p2 = nn::SoftmaxRows(shifted);
  for (int64_t i = 0; i < p1.numel(); ++i) {
    EXPECT_NEAR(p1[i], p2[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutodiffProperty,
                         testing::Values(5, 55, 555));

// -- Spatial index vs brute force over seeds -----------------------------------------

class SpatialIndexProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(SpatialIndexProperty, NearestMatchesBruteForce) {
  roadnet::GridCityConfig city;
  city.rows = 5;
  city.cols = 6;
  city.seed = GetParam();
  auto net = roadnet::BuildGridCity(city);
  roadnet::SpatialIndex index(*net, 180.0);
  util::Rng rng(GetParam() ^ 0xf00d);
  for (int i = 0; i < 15; ++i) {
    geo::Point p{rng.Uniform(net->bounds().min.x, net->bounds().max.x),
                 rng.Uniform(net->bounds().min.y, net->bounds().max.y)};
    auto cand = index.Nearest(p);
    double brute = 1e18;
    for (roadnet::SegmentId s = 0; s < net->num_segments(); ++s) {
      brute = std::min(brute, net->ProjectToSegment(p, s).distance);
    }
    EXPECT_NEAR(cand.projection.distance, brute, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialIndexProperty,
                         testing::Values(21, 31, 41));

}  // namespace
}  // namespace deepst
