// ThreadPool / Backend coverage plus the determinism regression of the
// parallel compute backend: every kernel and the full training loop must be
// bitwise identical for every thread count (docs/parallelism.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/trainer.h"
#include "eval/world.h"
#include "nn/backend.h"
#include "nn/kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepst {
namespace {

// Restores the serial backend when a test scope ends, so thread settings
// cannot leak between tests.
struct BackendGuard {
  ~BackendGuard() { nn::SetBackendThreads(1); }
};

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, [&](int64_t i) { sum += i; });
    ASSERT_EQ(sum.load(), 100 * 99 / 2);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  util::ThreadPool pool(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  pool.ParallelFor(8, [&](int64_t) {
    outer++;
    // A nested call must not deadlock, whether the task landed on a worker
    // or on the submitting thread; it degrades to a sequential loop.
    pool.ParallelFor(8, [&](int64_t) { inner++; });
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 64);
  EXPECT_FALSE(util::ThreadPool::OnWorkerThread());
}

TEST(ThreadPoolTest, EmptyAndSingleThread) {
  util::ThreadPool serial(1);
  EXPECT_EQ(serial.num_threads(), 1);
  int calls = 0;
  serial.ParallelFor(0, [&](int64_t) { calls++; });
  serial.ParallelFor(-3, [&](int64_t) { calls++; });
  EXPECT_EQ(calls, 0);
  serial.ParallelFor(5, [&](int64_t) { calls++; });
  EXPECT_EQ(calls, 5);
}

TEST(BackendTest, SetBackendThreadsInstallsAndRestores) {
  BackendGuard guard;
  EXPECT_STREQ(nn::GetBackend()->name(), "serial");
  EXPECT_EQ(nn::GetBackendThreads(), 1);
  nn::SetBackendThreads(4);
  EXPECT_STREQ(nn::GetBackend()->name(), "parallel");
  EXPECT_EQ(nn::GetBackendThreads(), 4);
  nn::SetBackendThreads(1);
  EXPECT_STREQ(nn::GetBackend()->name(), "serial");
  EXPECT_EQ(nn::GetBackendThreads(), 1);
}

// -- kernel bitwise equivalence ----------------------------------------------

nn::Tensor RandomTensor(const std::vector<int64_t>& shape, uint64_t seed) {
  util::Rng rng(seed);
  return nn::Tensor::Uniform(shape, -1.0f, 1.0f, &rng);
}

bool BitwiseEqual(const nn::Tensor& a, const nn::Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Runs `fn` once on the serial backend and once on a 4-thread backend and
// checks the outputs match bit for bit.
template <typename Fn>
void ExpectThreadCountInvariant(Fn&& fn) {
  BackendGuard guard;
  nn::SetBackendThreads(1);
  const nn::Tensor serial = fn();
  nn::SetBackendThreads(4);
  const nn::Tensor parallel = fn();
  EXPECT_TRUE(BitwiseEqual(serial, parallel));
}

TEST(KernelBitwiseTest, GemmAcc) {
  const int64_t m = 37, k = 53, n = 29;  // awkward sizes straddle the grain
  const nn::Tensor a = RandomTensor({m, k}, 1);
  const nn::Tensor b = RandomTensor({k, n}, 2);
  ExpectThreadCountInvariant([&] {
    nn::Tensor c = nn::Tensor::Zeros({m, n});
    nn::kernels::GemmAcc(a.data(), b.data(), c.data(), m, k, n);
    return c;
  });
}

TEST(KernelBitwiseTest, GemmAccBT) {
  const int64_t m = 37, k = 53, n = 29;
  const nn::Tensor a = RandomTensor({m, k}, 3);
  const nn::Tensor b = RandomTensor({n, k}, 4);
  ExpectThreadCountInvariant([&] {
    nn::Tensor c = nn::Tensor::Zeros({m, n});
    nn::kernels::GemmAccBT(a.data(), b.data(), c.data(), m, k, n);
    return c;
  });
}

TEST(KernelBitwiseTest, GemmAccAT) {
  const int64_t m = 37, k = 53, n = 29;
  const nn::Tensor a = RandomTensor({k, m}, 5);
  const nn::Tensor b = RandomTensor({k, n}, 6);
  ExpectThreadCountInvariant([&] {
    nn::Tensor c = nn::Tensor::Zeros({m, n});
    nn::kernels::GemmAccAT(a.data(), b.data(), c.data(), m, k, n);
    return c;
  });
}

TEST(KernelBitwiseTest, ColSumAndReductions) {
  const int64_t rows = 203, cols = 17;  // rows straddle the row grain
  const nn::Tensor g = RandomTensor({rows, cols}, 7);
  ExpectThreadCountInvariant([&] {
    nn::Tensor out = nn::Tensor::Zeros({cols});
    nn::kernels::ColSumAcc(g.data(), out.data(), rows, cols, 1.0f);
    return out;
  });
  const nn::Tensor x = RandomTensor({100000}, 8);
  const nn::Tensor y = RandomTensor({100000}, 9);
  ExpectThreadCountInvariant([&] {
    nn::Tensor out = nn::Tensor::Zeros({2});
    out.data()[0] =
        static_cast<float>(nn::kernels::ReduceSum(x.data(), x.numel()));
    out.data()[1] = static_cast<float>(
        nn::kernels::ReduceDot(x.data(), y.data(), x.numel()));
    return out;
  });
}

TEST(KernelBitwiseTest, SoftmaxRows) {
  const int64_t rows = 61, cols = 13;
  const nn::Tensor x = RandomTensor({rows, cols}, 10);
  ExpectThreadCountInvariant([&] {
    nn::Tensor out = nn::Tensor::Zeros({rows, cols});
    nn::kernels::SoftmaxRowsTo(x.data(), out.data(), rows, cols);
    return out;
  });
  ExpectThreadCountInvariant([&] {
    nn::Tensor out = nn::Tensor::Zeros({rows, cols});
    nn::kernels::LogSoftmaxRowsTo(x.data(), out.data(), rows, cols);
    return out;
  });
}

TEST(KernelBitwiseTest, Conv2dForwardBackward) {
  const nn::Tensor x = RandomTensor({5, 3, 9, 9}, 11);
  const nn::Tensor w = RandomTensor({4, 3, 3, 3}, 12);
  const nn::Tensor bias = RandomTensor({4}, 13);
  const nn::Tensor g = RandomTensor({5, 4, 9, 9}, 14);
  ExpectThreadCountInvariant([&] {
    nn::Tensor out = nn::Tensor::Zeros({5, 4, 9, 9});
    nn::kernels::Conv2dForward(x, w, &bias, /*stride=*/1, /*pad=*/1, &out);
    return out;
  });
  ExpectThreadCountInvariant([&] {
    nn::Tensor dx = nn::Tensor::Zeros({5, 3, 9, 9});
    nn::Tensor dw = nn::Tensor::Zeros({4, 3, 3, 3});
    nn::Tensor db = nn::Tensor::Zeros({4});
    nn::kernels::Conv2dBackward(x, w, g, /*stride=*/1, /*pad=*/1, &dx, &dw,
                                &db);
    // Pack all three gradients into one tensor for the comparison.
    nn::Tensor packed =
        nn::Tensor::Zeros({dx.numel() + dw.numel() + db.numel()});
    std::memcpy(packed.data(), dx.data(),
                static_cast<size_t>(dx.numel()) * sizeof(float));
    std::memcpy(packed.data() + dx.numel(), dw.data(),
                static_cast<size_t>(dw.numel()) * sizeof(float));
    std::memcpy(packed.data() + dx.numel() + dw.numel(), db.data(),
                static_cast<size_t>(db.numel()) * sizeof(float));
    return packed;
  });
}

// -- end-to-end determinism regression ---------------------------------------

eval::World& ParallelTestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.1);
    cfg.name = "parallel-test-world";
    cfg.city.rows = 6;
    cfg.city.cols = 6;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 5000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

core::DeepSTConfig ParallelTinyConfig() {
  core::DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.dest_dim = 8;
  cfg.num_proxies = 8;
  cfg.mlp_hidden = 16;
  cfg.cnn_channels = 4;
  return cfg;
}

struct TrainedRun {
  std::vector<double> losses;
  std::vector<std::vector<float>> params;
  std::vector<traj::Route> routes;
};

TrainedRun TrainWithThreads(int num_threads) {
  auto& world = ParallelTestWorld();
  core::DeepSTModel model(world.net(), ParallelTinyConfig(),
                          world.traffic_cache());
  core::TrainerConfig tcfg;
  tcfg.max_epochs = 2;
  tcfg.verbose = false;
  tcfg.num_threads = num_threads;
  core::Trainer trainer(&model, tcfg);
  auto result = trainer.Fit(world.split().train, world.split().validation);

  TrainedRun run;
  for (const auto& e : result.epochs) {
    run.losses.push_back(e.train_loss);
    run.losses.push_back(e.train_route_ce);
    run.losses.push_back(e.val_route_ce);
  }
  for (const auto& p : model.Parameters()) {
    const nn::Tensor& v = p.var->value();
    run.params.emplace_back(v.data(), v.data() + v.numel());
  }
  util::Rng rng(77);
  int used = 0;
  for (const auto* rec : world.split().test) {
    if (rec->trip.route.size() < 2 || used >= 5) continue;
    ++used;
    run.routes.push_back(
        model.PredictRoute(eval::QueryFor(rec->trip), &rng));
  }
  return run;
}

TEST(ParallelDeterminismTest, TrainingIsThreadCountInvariant) {
  BackendGuard guard;
  const TrainedRun serial = TrainWithThreads(1);
  const TrainedRun parallel = TrainWithThreads(4);

  ASSERT_EQ(serial.losses.size(), parallel.losses.size());
  ASSERT_FALSE(serial.losses.empty());
  for (size_t i = 0; i < serial.losses.size(); ++i) {
    // Bitwise: any schedule-dependent float reassociation shows up here.
    EXPECT_EQ(serial.losses[i], parallel.losses[i]) << "loss " << i;
  }

  ASSERT_EQ(serial.params.size(), parallel.params.size());
  for (size_t p = 0; p < serial.params.size(); ++p) {
    ASSERT_EQ(serial.params[p].size(), parallel.params[p].size());
    EXPECT_EQ(0, std::memcmp(serial.params[p].data(),
                             parallel.params[p].data(),
                             serial.params[p].size() * sizeof(float)))
        << "parameter tensor " << p;
  }

  ASSERT_EQ(serial.routes.size(), parallel.routes.size());
  ASSERT_FALSE(serial.routes.empty());
  for (size_t i = 0; i < serial.routes.size(); ++i) {
    EXPECT_EQ(serial.routes[i], parallel.routes[i]) << "route " << i;
  }
}

}  // namespace
}  // namespace deepst
