#include <gtest/gtest.h>

#include <cmath>

#include "baselines/mmi.h"
#include "baselines/neural_router.h"
#include "baselines/wsp.h"
#include "eval/world.h"

namespace deepst {
namespace baselines {
namespace {

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "baselines-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

TEST(MarkovRouterTest, TransitionProbsNormalized) {
  auto& world = TestWorld();
  MarkovRouter mmi(world.net(), core::DeepSTConfig{});
  mmi.Train(world.split().train);
  for (roadnet::SegmentId s = 0; s < world.net().num_segments(); s += 17) {
    double total = 0.0;
    for (roadnet::SegmentId nxt : world.net().OutSegments(s)) {
      const double p = mmi.TransitionProb(s, nxt);
      EXPECT_GT(p, 0.0);  // add-one smoothing
      total += p;
    }
    if (world.net().OutDegree(s) > 0) EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Non-adjacent transition has probability zero.
  EXPECT_DOUBLE_EQ(mmi.TransitionProb(0, 0), 0.0);
}

TEST(MarkovRouterTest, TrainedProbsReflectData) {
  auto& world = TestWorld();
  MarkovRouter mmi(world.net(), core::DeepSTConfig{});
  mmi.Train(world.split().train);
  // Count the most frequent observed transition and check it dominates its
  // row.
  const auto* rec = world.split().train.front();
  const auto& route = rec->trip.route;
  const double p = mmi.TransitionProb(route[0], route[1]);
  // It was observed at least once, so it beats a never-observed sibling
  // unless all siblings were observed equally.
  EXPECT_GT(p, 0.0);
}

TEST(MarkovRouterTest, PredictRouteConnected) {
  auto& world = TestWorld();
  MarkovRouter mmi(world.net(), core::DeepSTConfig{});
  mmi.Train(world.split().train);
  util::Rng rng(1);
  const auto* rec = world.split().test.front();
  auto route = mmi.PredictRoute(eval::QueryFor(rec->trip), &rng);
  EXPECT_EQ(route.front(), rec->trip.origin_segment());
  EXPECT_TRUE(world.net().ValidateRoute(route).ok());
}

TEST(MarkovRouterTest, ScoreRouteIsLogProb) {
  auto& world = TestWorld();
  MarkovRouter mmi(world.net(), core::DeepSTConfig{});
  mmi.Train(world.split().train);
  util::Rng rng(2);
  const auto* rec = world.split().train.front();
  const double score =
      mmi.ScoreRoute(eval::QueryFor(rec->trip), rec->trip.route, &rng);
  EXPECT_LT(score, 0.0);
  EXPECT_TRUE(std::isfinite(score));
  // Disconnected route -> -inf.
  traj::Route bad = {0, 0};
  if (!world.net().AreConsecutive(0, 0)) {
    EXPECT_TRUE(std::isinf(
        mmi.ScoreRoute(eval::QueryFor(rec->trip), bad, &rng)));
  }
}

TEST(WspRouterTest, PredictsPathTowardSnappedDestination) {
  auto& world = TestWorld();
  WspRouter wsp(world.net(), world.index(), world.segment_stats());
  util::Rng rng(3);
  const auto* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  auto route = wsp.PredictRoute(query, &rng);
  ASSERT_GE(route.size(), 1u);
  EXPECT_EQ(route.front(), query.origin);
  EXPECT_TRUE(world.net().ValidateRoute(route).ok());
  // WSP snaps the rough coordinate: the route ends on the segment nearest
  // the destination.
  const auto snapped = world.index().Nearest(query.destination);
  EXPECT_EQ(route.back(), snapped.segment);
}

TEST(WspRouterTest, SnapsRoughDestinationWhenFinalUnknown) {
  auto& world = TestWorld();
  WspRouter wsp(world.net(), world.index(), world.segment_stats());
  util::Rng rng(4);
  const auto* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  query.final_segment = roadnet::kInvalidSegment;
  auto route = wsp.PredictRoute(query, &rng);
  ASSERT_GE(route.size(), 2u);
  // Ends near the rough destination.
  const double d = world.net()
                       .ProjectToSegment(query.destination, route.back())
                       .distance;
  EXPECT_LT(d, 500.0);
}

TEST(WspRouterTest, ScoreIsNegatedCost) {
  auto& world = TestWorld();
  WspRouter wsp(world.net(), world.index(), world.segment_stats());
  util::Rng rng(5);
  const auto* rec = world.split().test.front();
  core::RouteQuery query = eval::QueryFor(rec->trip);
  traj::Route longer = rec->trip.route;
  traj::Route shorter(longer.begin(), longer.begin() + longer.size() / 2 + 1);
  EXPECT_GT(wsp.ScoreRoute(query, shorter, &rng),
            wsp.ScoreRoute(query, longer, &rng));
}

TEST(NeuralRouterTest, ConfigFactories) {
  core::DeepSTConfig base;
  base.gru_hidden = 48;
  auto deepst = DeepStConfigOf(base);
  EXPECT_TRUE(deepst.use_traffic);
  EXPECT_EQ(deepst.destination_mode, core::DestinationMode::kProxies);
  EXPECT_EQ(deepst.gru_hidden, 48);
  auto deepst_c = DeepStCConfigOf(base);
  EXPECT_FALSE(deepst_c.use_traffic);
  EXPECT_EQ(deepst_c.destination_mode, core::DestinationMode::kProxies);
  auto cssrnn = CssrnnConfigOf(base);
  EXPECT_EQ(cssrnn.destination_mode, core::DestinationMode::kFinalSegment);
  auto rnn = RnnConfigOf(base);
  EXPECT_EQ(rnn.destination_mode, core::DestinationMode::kNone);
  EXPECT_FALSE(rnn.use_traffic);
}

TEST(NeuralRouterTest, WrapsModel) {
  auto& world = TestWorld();
  core::DeepSTConfig cfg;
  cfg.gru_hidden = 16;
  cfg.gru_layers = 1;
  cfg.segment_embedding_dim = 8;
  cfg.num_proxies = 4;
  cfg.use_traffic = false;
  core::DeepSTModel model(world.net(), cfg, nullptr);
  NeuralRouter router("DeepST-C", &model);
  EXPECT_EQ(router.name(), "DeepST-C");
  util::Rng rng(6);
  const auto* rec = world.split().test.front();
  auto route = router.PredictRoute(eval::QueryFor(rec->trip), &rng);
  EXPECT_TRUE(world.net().ValidateRoute(route).ok());
  const double s =
      router.ScoreRoute(eval::QueryFor(rec->trip), rec->trip.route, &rng);
  EXPECT_TRUE(std::isfinite(s));
}

}  // namespace
}  // namespace baselines
}  // namespace deepst
