#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/conv_layers.h"
#include "nn/serialize.h"

namespace deepst {
namespace nn {
namespace {

namespace o = ops;

TEST(LinearLayerTest, ShapesAndParamCount) {
  util::Rng rng(1);
  LinearLayer fc(8, 3, &rng);
  EXPECT_EQ(fc.NumParams(), 8 * 3 + 3);
  VarPtr x = Constant(Tensor::Zeros({5, 8}));
  VarPtr y = fc.Forward(x);
  EXPECT_EQ(y->value().dim(0), 5);
  EXPECT_EQ(y->value().dim(1), 3);
}

TEST(LinearLayerTest, NoBiasOption) {
  util::Rng rng(1);
  LinearLayer fc(4, 2, &rng, /*bias=*/false);
  EXPECT_EQ(fc.NumParams(), 8);
  VarPtr x = Constant(Tensor::Zeros({1, 4}));
  VarPtr y = fc.Forward(x);
  EXPECT_FLOAT_EQ(y->value()[0], 0.0f);  // zero input, no bias
}

TEST(MlpTest, TrunkAndHeadSplit) {
  util::Rng rng(2);
  Mlp mlp({4, 16, 3}, Activation::kTanh, &rng);
  VarPtr x = Constant(Tensor::Full({2, 4}, 0.3f));
  VarPtr h = mlp.ForwardHidden(x);
  EXPECT_EQ(h->value().dim(1), 16);
  VarPtr y = mlp.ForwardOutput(h);
  EXPECT_EQ(y->value().dim(1), 3);
  // Forward == output(hidden(x)).
  VarPtr y2 = mlp.Forward(x);
  for (int64_t i = 0; i < y->value().numel(); ++i) {
    EXPECT_FLOAT_EQ(y->value()[i], y2->value()[i]);
  }
}

TEST(EmbeddingLayerTest, LookupShape) {
  util::Rng rng(3);
  EmbeddingLayer emb(10, 6, &rng);
  VarPtr e = emb.Forward({1, 9, 0});
  EXPECT_EQ(e->value().dim(0), 3);
  EXPECT_EQ(e->value().dim(1), 6);
  // Same id -> same row.
  VarPtr e2 = emb.Forward({9});
  for (int64_t d = 0; d < 6; ++d) {
    EXPECT_FLOAT_EQ(e->value().at(1, d), e2->value().at(0, d));
  }
}

TEST(GruCellTest, ZeroStateBounded) {
  util::Rng rng(4);
  GruCell cell(3, 5, &rng);
  VarPtr x = Constant(Tensor::Full({2, 3}, 10.0f));
  VarPtr h = Constant(Tensor::Zeros({2, 5}));
  VarPtr h1 = cell.Step(x, h);
  // GRU output is a convex combination of tanh output and previous state, so
  // it stays in (-1, 1) from a zero state.
  for (int64_t i = 0; i < h1->value().numel(); ++i) {
    EXPECT_GT(h1->value()[i], -1.0f);
    EXPECT_LT(h1->value()[i], 1.0f);
  }
}

TEST(GruCellTest, StateEvolves) {
  util::Rng rng(5);
  GruCell cell(2, 4, &rng);
  VarPtr x = Constant(Tensor::Full({1, 2}, 1.0f));
  VarPtr h = Constant(Tensor::Zeros({1, 4}));
  VarPtr h1 = cell.Step(x, h);
  VarPtr h2 = cell.Step(x, h1);
  float diff = 0.0f;
  for (int64_t i = 0; i < 4; ++i) {
    diff += std::fabs(h2->value()[i] - h1->value()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(StackedGruTest, LayerCountAndState) {
  util::Rng rng(6);
  StackedGru gru(3, 4, 3, &rng);
  EXPECT_EQ(gru.num_layers(), 3);
  auto state = gru.InitialState(2);
  ASSERT_EQ(state.size(), 3u);
  VarPtr x = Constant(Tensor::Full({2, 3}, 0.5f));
  VarPtr top = gru.Step(x, &state);
  EXPECT_EQ(top->value().dim(1), 4);
  // All layer states updated away from zero.
  for (const auto& s : state) {
    EXPECT_GT(s->value().MaxAbs(), 0.0f);
  }
}

TEST(ConvLayersTest, ConvBlockOutputShape) {
  util::Rng rng(7);
  ConvBlock block(2, 4, 3, 2, 1, &rng);
  VarPtr x = Constant(Tensor::Zeros({3, 2, 8, 8}));
  VarPtr y = block.Forward(x, /*training=*/true);
  EXPECT_EQ(y->value().dim(0), 3);
  EXPECT_EQ(y->value().dim(1), 4);
  EXPECT_EQ(y->value().dim(2), 4);
}

TEST(ModuleTest, SubmoduleParamsPrefixed) {
  util::Rng rng(8);
  Mlp mlp({2, 3, 1}, Activation::kRelu, &rng);
  bool found = false;
  for (const auto& p : mlp.Parameters()) {
    if (p.name == "fc0/weight") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(mlp.Parameters().size(), 4u);  // 2 layers x (w, b)
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  util::Rng rng(9);
  Mlp a({3, 5, 2}, Activation::kTanh, &rng);
  Mlp b({3, 5, 2}, Activation::kTanh, &rng);  // different init
  const std::string path = testing::TempDir() + "/deepst_params_test.bin";
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(&b, path).ok());
  for (size_t i = 0; i < a.Parameters().size(); ++i) {
    const Tensor& ta = a.Parameters()[i].var->value();
    const Tensor& tb = b.Parameters()[i].var->value();
    ASSERT_TRUE(ta.SameShape(tb));
    for (int64_t j = 0; j < ta.numel(); ++j) EXPECT_EQ(ta[j], tb[j]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  util::Rng rng(10);
  Mlp a({3, 5, 2}, Activation::kTanh, &rng);
  Mlp b({3, 6, 2}, Activation::kTanh, &rng);
  const std::string path = testing::TempDir() + "/deepst_params_test2.bin";
  ASSERT_TRUE(SaveParameters(a, path).ok());
  util::Status s = LoadParameters(&b, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::Status::Code::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  util::Rng rng(11);
  Mlp a({2, 2}, Activation::kNone, &rng);
  util::Status s = LoadParameters(&a, "/nonexistent/deepst.bin");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::Status::Code::kIoError);
}

}  // namespace
}  // namespace nn
}  // namespace deepst
