// serve::Server coverage (docs/serving.md): cross-client batching parity
// with direct ServingContext calls, admission control (queue-full shedding
// with a retry-after hint, drain rejections), end-to-end deadlines where
// queue wait counts against the budget, exception isolation inside a
// coalesced batch, the hung-worker watchdog recycling session leases, and
// the zero-leaked-leases invariant after shutdown. The chaos soak
// (tools/check_serve.sh) drives the same machinery through the CLI daemon;
// these tests pin the semantics deterministically.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "baselines/neural_router.h"
#include "core/deepst_model.h"
#include "core/serving.h"
#include "eval/world.h"
#include "serve/server.h"
#include "traffic/snapshot.h"
#include "traffic/store.h"
#include "util/fault_injector.h"

namespace deepst {
namespace serve {
namespace {

eval::World& TestWorld() {
  static eval::World* world = [] {
    eval::WorldConfig cfg = eval::ChengduMiniWorld(0.15);
    cfg.name = "serve-test-world";
    cfg.city.rows = 7;
    cfg.city.cols = 7;
    cfg.generator.num_days = 4;
    cfg.generator.max_route_m = 6000.0;
    cfg.train_days = 2;
    cfg.val_days = 1;
    return new eval::World(cfg);
  }();
  return *world;
}

core::DeepSTConfig SmallConfig() {
  core::DeepSTConfig cfg;
  cfg.segment_embedding_dim = 12;
  cfg.gru_hidden = 24;
  cfg.gru_layers = 2;
  cfg.dest_dim = 12;
  cfg.traffic_dim = 8;
  cfg.num_proxies = 8;
  cfg.cnn_channels = 6;
  cfg.mlp_hidden = 24;
  return cfg;
}

core::DeepSTModel& TestModel() {
  static core::DeepSTModel* model = new core::DeepSTModel(
      TestWorld().net(), baselines::DeepStConfigOf(SmallConfig()),
      TestWorld().traffic_cache());
  return *model;
}

// Distinct test queries with routes long enough to exercise beam search.
std::vector<core::RouteQuery> TestQueries(size_t n) {
  std::vector<core::RouteQuery> queries;
  for (const auto* rec : TestWorld().split().test) {
    if (rec->trip.route.size() < 3) continue;
    queries.push_back(eval::QueryFor(rec->trip));
    if (queries.size() == n) break;
  }
  EXPECT_EQ(queries.size(), n) << "test world too small";
  return queries;
}

core::ServingRequest PredictRequest(const core::RouteQuery& query,
                                    double deadline_ms = 0.0) {
  core::ServingRequest req;
  req.query = query;
  req.deadline_ms = deadline_ms;
  return req;
}

class ServeTest : public testing::Test {
 protected:
  void TearDown() override {
    util::FaultInjector::Instance().Reset();
    EXPECT_EQ(TestModel().outstanding_session_leases(), 0)
        << "a test leaked a session lease";
  }
};

TEST_F(ServeTest, BatchedExecutionMatchesDirectServingBitwise) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(4);

  // Reference: each query served directly, one at a time.
  std::vector<traj::Route> direct;
  for (const auto& q : queries) {
    auto r = serving.Predict(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    direct.push_back(r.value().route);
  }

  ServeOptions opts;
  opts.workers = 2;
  Server server(&serving, opts);
  server.Start();
  std::vector<std::future<util::StatusOr<core::ServingResult>>> futures;
  for (const auto& q : queries) {
    futures.push_back(server.Submit(PredictRequest(q)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().route, direct[i]) << "query " << i;
  }
  server.Shutdown();
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.submitted, 4);
  EXPECT_EQ(snap.admitted, 4);
  EXPECT_EQ(snap.completed_ok, 4);
  EXPECT_EQ(snap.failed, 0);
  // Transition-memo counters ride along in the snapshot: the default config
  // memoizes, the accounting invariant holds exactly, and the stats JSON
  // nests them under a "cache" object.
  EXPECT_GT(snap.cache_capacity, 0);
  EXPECT_GT(snap.cache_lookups, 0);
  EXPECT_EQ(snap.cache_hits + snap.cache_misses, snap.cache_lookups);
  EXPECT_NE(snap.ToJson().find("\"cache\""), std::string::npos);
  EXPECT_NE(snap.ToJson().find("\"hits\""), std::string::npos);
  // Batch-shape histogram invariants: every executed (non-empty) batch lands
  // in exactly one log2 bucket, so the bucket sum is positive after traffic
  // and never exceeds the dequeue count; the JSON exports the buckets.
  int64_t shape_total = 0;
  for (int64_t c : snap.batch_shape) {
    EXPECT_GE(c, 0);
    shape_total += c;
  }
  EXPECT_GT(shape_total, 0);
  EXPECT_LE(shape_total, snap.batches);
  EXPECT_NE(snap.ToJson().find("\"batch_shape\""), std::string::npos);
}

TEST_F(ServeTest, ScoreRequestsReturnPerCandidateScores) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto& test = TestWorld().split().test;
  const traj::TripRecord* rec = nullptr;
  for (const auto* r : test) {
    if (r->trip.route.size() >= 3) {
      rec = r;
      break;
    }
  }
  ASSERT_NE(rec, nullptr);
  const core::RouteQuery query = eval::QueryFor(rec->trip);
  auto direct = serving.ScoreRoute(query, rec->trip.route);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  Server server(&serving, ServeOptions{});
  server.Start();
  core::ServingRequest req;
  req.kind = core::ServingRequest::Kind::kScore;
  req.query = query;
  req.routes = {rec->trip.route, rec->trip.route};
  auto result = server.Execute(std::move(req));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().scores.size(), 2u);
  EXPECT_EQ(result.value().scores[0], direct.value().score);
  EXPECT_EQ(result.value().scores[1], direct.value().score);
  EXPECT_EQ(result.value().score, direct.value().score);
}

// Requests queued before Start coalesce into one worker batch: the tentpole
// cross-query batching claim, observable through the batch counters.
TEST_F(ServeTest, QueuedRequestsCoalesceIntoOneBatch) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(4);
  ServeOptions opts;
  opts.workers = 1;
  opts.max_batch = 8;
  opts.batch_window_us = 200;
  Server server(&serving, opts);
  std::vector<std::future<util::StatusOr<core::ServingResult>>> futures;
  for (const auto& q : queries) {
    futures.push_back(server.Submit(PredictRequest(q)));
  }
  server.Start();
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.value().route.empty());
  }
  server.Shutdown();
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.batches, 1);
  EXPECT_EQ(snap.batch_requests, 4);
  // The one coalesced batch executed with 4 rows -> log2 bucket 2.
  EXPECT_EQ(snap.batch_shape[2], 1);
  for (size_t b = 0; b < snap.batch_shape.size(); ++b) {
    if (b != 2) EXPECT_EQ(snap.batch_shape[b], 0) << "bucket " << b;
  }
}

TEST_F(ServeTest, ShedsWhenQueueFullWithRetryAfterHint) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(3);
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  Server server(&serving, opts);
  // Workers not started yet: the first two occupy the whole queue.
  auto f0 = server.Submit(PredictRequest(queries[0]));
  auto f1 = server.Submit(PredictRequest(queries[1]));
  auto shed = server.Submit(PredictRequest(queries[2])).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::Status::Code::kResourceExhausted);
  EXPECT_NE(shed.status().ToString().find("retry after"), std::string::npos);
  server.Start();
  EXPECT_TRUE(f0.get().ok());
  EXPECT_TRUE(f1.get().ok());
  server.Shutdown();
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.submitted, 3);
  EXPECT_EQ(snap.admitted, 2);
  EXPECT_EQ(snap.shed_queue_full, 1);
  EXPECT_EQ(snap.completed_ok, 2);
}

// Deterministic deadline test: the request sits in the queue (workers not
// started) past its whole budget, so the wait alone -- no execution time at
// all -- expires it. Queue wait counts against the end-to-end deadline.
TEST_F(ServeTest, QueueWaitCountsAgainstDeadline) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(1);
  ServeOptions opts;
  opts.workers = 1;
  Server server(&serving, opts);
  auto future = server.Submit(PredictRequest(queries[0], /*deadline_ms=*/25.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  server.Start();
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kDeadlineExceeded);
  server.Shutdown();
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.expired_in_queue, 1);
  EXPECT_EQ(snap.completed_ok, 0);
}

// A default deadline from ServeOptions applies to requests that carry none.
TEST_F(ServeTest, DefaultDeadlineStampedOnAdmission) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(1);
  ServeOptions opts;
  opts.workers = 1;
  opts.default_deadline_ms = 25.0;
  Server server(&serving, opts);
  auto future = server.Submit(PredictRequest(queries[0]));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  server.Start();
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kDeadlineExceeded);
  server.Shutdown();
}

// One poisoned request must not take down the batch it rode in with: the
// first injected fire fails the whole coalesced batch call, the re-execution
// fallback consumes the second fire on the first request alone, and the
// remaining co-riders complete.
TEST_F(ServeTest, PoisonedRequestFailsAloneInItsBatch) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(4);
  util::FaultInjector::Instance().Arm("infer.query",
                                      util::FaultKind::kIoError,
                                      /*after=*/0, /*count=*/2);
  ServeOptions opts;
  opts.workers = 1;
  opts.max_batch = 8;
  Server server(&serving, opts);
  std::vector<std::future<util::StatusOr<core::ServingResult>>> futures;
  for (const auto& q : queries) {
    futures.push_back(server.Submit(PredictRequest(q)));
  }
  server.Start();
  int ok = 0;
  int failed = 0;
  for (auto& f : futures) {
    auto r = f.get();
    if (r.ok()) {
      EXPECT_FALSE(r.value().route.empty());
      ++ok;
    } else {
      EXPECT_EQ(r.status().code(), util::Status::Code::kInternal);
      ++failed;
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(failed, 1);
  server.Shutdown();
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.batches, 1);  // one coalesced batch, not four retries
  EXPECT_EQ(snap.completed_ok, 3);
  EXPECT_EQ(snap.failed, 1);
}

TEST_F(ServeTest, DrainRejectsNewWorkAndFinishesAdmitted) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(4);
  ServeOptions opts;
  opts.workers = 2;
  Server server(&serving, opts);
  server.Start();
  std::vector<std::future<util::StatusOr<core::ServingResult>>> futures;
  for (const auto& q : queries) {
    futures.push_back(server.Submit(PredictRequest(q)));
  }
  server.RequestDrain();
  EXPECT_TRUE(server.draining());
  auto rejected = server.Submit(PredictRequest(queries[0])).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(),
            util::Status::Code::kFailedPrecondition);
  // Every admitted request still resolves (finished, never dropped).
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
  server.Shutdown();
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.submitted,
            snap.admitted + snap.shed_queue_full + snap.rejected_draining);
  EXPECT_EQ(snap.admitted, snap.completed_ok + snap.failed);
  EXPECT_EQ(snap.rejected_draining, 1);
  EXPECT_EQ(snap.completed_ok, 4);
}

// A worker stuck inside one query (injected latency spike) trips the
// watchdog: its session leases are recycled via pool-generation retirement
// and a replacement worker keeps the queue draining. The stuck query still
// completes (its stale lease is dropped, not double-freed), nothing leaks.
TEST_F(ServeTest, WatchdogRecyclesHungWorkerAndSpawnsReplacement) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(2);
  util::FaultInjector::Instance().Arm("infer.query",
                                      util::FaultKind::kLatencySpike,
                                      /*after=*/0, /*count=*/1,
                                      /*latency_ms=*/150);
  ServeOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;  // the spike pins the first batch only
  opts.batch_window_us = 0;
  opts.watchdog_period_ms = 5.0;
  opts.hung_query_ms = 30.0;
  Server server(&serving, opts);
  server.Start();
  auto slow = server.Submit(PredictRequest(queries[0]));
  // Let the first batch start (and hang) before the second arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto fast = server.Submit(PredictRequest(queries[1]));
  EXPECT_TRUE(slow.get().ok());
  EXPECT_TRUE(fast.get().ok());
  server.Shutdown();
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_GE(snap.watchdog_recycles, 1);
  EXPECT_GE(snap.workers_spawned, 2);  // original + replacement
  EXPECT_EQ(snap.completed_ok, 2);
}

TEST_F(ServeTest, TrafficStatsObjectHoldsStoreInvariants) {
  // Static serving: the traffic object is present but disabled.
  {
    core::ServingContext serving(&TestModel(), &TestWorld().index());
    Server server(&serving, ServeOptions{});
    const MetricsSnapshot snap = server.snapshot();
    EXPECT_FALSE(snap.traffic_enabled);
    EXPECT_NE(snap.ToJson().find("\"traffic\": {\"enabled\": false"),
              std::string::npos);
  }

  // Live serving: counters sampled from the SnapshotStore, with the
  // documented invariants holding at quiescence.
  traffic::SnapshotStore store(TestWorld().traffic_cache()->Clone(), nullptr,
                               traffic::SnapshotStoreConfig{});
  core::ServingContext serving(&TestModel(), &TestWorld().index(), {},
                               &store);
  Server server(&serving, ServeOptions{});
  server.Start();
  const auto queries = TestQueries(2);
  core::ServingRequest ingest;
  ingest.kind = core::ServingRequest::Kind::kIngest;
  ingest.observations = {{{100, 100}, 500.0, 5.0},
                         {{200, 200}, 600.0, 6.0},
                         {{1, 1}, -4.0, 1.0}};  // rejected: negative time
  auto fi = server.Submit(std::move(ingest));
  auto f0 = server.Submit(PredictRequest(queries[0]));
  ASSERT_TRUE(fi.get().ok());
  ASSERT_TRUE(f0.get().ok());
  store.SwapNow();
  auto f1 = server.Submit(PredictRequest(queries[1]));
  ASSERT_TRUE(f1.get().ok());
  server.Shutdown();

  const MetricsSnapshot snap = server.snapshot();
  EXPECT_TRUE(snap.traffic_enabled);
  EXPECT_EQ(snap.traffic_generation, snap.traffic_swaps + 1);
  EXPECT_EQ(snap.traffic_generation, 2);
  EXPECT_EQ(snap.traffic_rows_accepted, 2);
  EXPECT_EQ(snap.traffic_rows_rejected, 1);
  EXPECT_EQ(snap.traffic_rows_pending, 0);  // swap folded everything
  EXPECT_EQ(snap.traffic_pinned_readers, 0);  // drained
  EXPECT_GE(snap.traffic_pinned_high_water, 1);
  EXPECT_GE(snap.traffic_snapshot_age_s, 0.0);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"traffic\": {\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"rows_accepted\": 2"), std::string::npos);
}

TEST_F(ServeTest, ShutdownIsIdempotentAndLeaksNothing) {
  core::ServingContext serving(&TestModel(), &TestWorld().index());
  const auto queries = TestQueries(2);
  Server server(&serving, ServeOptions{});
  server.Start();
  auto f0 = server.Submit(PredictRequest(queries[0]));
  auto f1 = server.Submit(PredictRequest(queries[1]));
  EXPECT_TRUE(f0.get().ok());
  EXPECT_TRUE(f1.get().ok());
  server.Shutdown();
  server.Shutdown();  // second call is a no-op
  EXPECT_EQ(TestModel().outstanding_session_leases(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace deepst
