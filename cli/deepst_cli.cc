// deepst_cli -- command-line front end for the DeepST library.
//
//   deepst_cli generate --out-dir data [--city chengdu|harbin] [--days N]
//       [--trips-per-day N] [--seed S]
//   deepst_cli train --data-dir data --model model.bin
//       [--variant deepst|deepst_c|cssrnn|rnn] [--epochs N] [--hidden N]
//       [--proxies K] [--seed S] [--shard-size N]
//       [--checkpoint-dir D] [--checkpoint-every N] [--resume]
//     --shard-size enables data-parallel training: each minibatch is split
//     into micro-shards of N trips that run concurrently on the --threads
//     workers (bitwise identical for every thread count; 16 pairs well with
//     4 threads). 0 (default) trains on a single graph per batch.
//   deepst_cli evaluate --data-dir data --model model.bin [--variant ...]
//       [--max-trips N]
//   deepst_cli predict --data-dir data --model model.bin --trip INDEX
//       [--variant ...] [--map] [--deadline-ms MS] [--strict]
//       [--overlay SPEC]
//     --overlay answers the query under a what-if traffic scenario (see
//     `serve` below and docs/streaming.md for the close@/scale@ grammar).
//   deepst_cli predict --data-dir data --model model.bin --queries FILE
//       [--variant ...] [--deadline-ms MS] [--strict]
//     FILE holds one test-trip index per line ('#' comments and blank lines
//     ignored); the model is loaded once and every query is predicted in
//     sequence, with a per-query line and an aggregate summary.
//     Prediction runs through the fault-tolerant serving layer
//     (docs/robustness.md): --deadline-ms caps per-query beam-search wall
//     time (best-so-far route, flagged degraded), --strict turns graceful
//     degradations (missing traffic, unresolvable destination) into errors.
//   deepst_cli recover --data-dir data --model model.bin --trip INDEX
//       [--interval-s SECONDS]
//   deepst_cli serve --data-dir data --model model.bin [--variant ...]
//       [--workers N] [--queue-capacity N] [--max-batch N]
//       [--batch-window-us N] [--deadline-ms MS] [--strict]
//       [--watchdog-ms MS] [--hung-ms MS] [--retry-after-ms MS]
//       [--traffic-wal PATH] [--swap-interval-ms MS] [--wal-fsync-bytes N]
//     Long-lived serving daemon (docs/serving.md): requests arrive on stdin
//     (one per line), responses leave on stdout tagged `#<id>`. Commands:
//       predict <origin> <dest_x> <dest_y> <start_t>
//       predict_whatif <origin> <dest_x> <dest_y> <start_t> <overlay>
//       predict_trip <test trip index>
//       score_trip <test trip index>
//       ingest <t,x,y,speed[;t,x,y,speed...]>
//       swap | stats | quit
//     Requests from the stdin stream are pipelined: up to --queue-capacity
//     are in flight at once, so worker batches coalesce across them. The
//     daemon health-checks its input files at startup (exiting nonzero on a
//     failed probe, like `inspect`), sheds load when the bounded queue
//     fills, enforces --deadline-ms end-to-end (queue wait included), and
//     drains gracefully on SIGTERM/SIGINT or `quit` (exit 0).
//     --traffic-wal turns on the live traffic pipeline (docs/streaming.md):
//     `ingest` rows are WAL-appended (the `ok` response is the durability
//     ack) and folded into a fresh snapshot generation on each swap --
//     every --swap-interval-ms in the background, or on the synchronous
//     `swap` command when the cadence is 0. Every query pins one generation
//     at admission (response field gen=G); an existing WAL is replayed at
//     startup into a snapshot bitwise identical to the pre-crash one, and
//     shutdown fsyncs the WAL tail before exiting. `predict_whatif` answers
//     under a counterfactual overlay (close@x0,y0,x1,y1 /
//     scale@x0,y0,x1,y1*F joined by ';') applied to a copy of the pinned
//     snapshot; the response carries what_if=1.
//   deepst_cli inspect FILE [FILE...]
//     Reports each file's kind (road network / dataset / training checkpoint
//     / model parameters / traffic WAL), format version, element counts,
//     CRC status and whether it loads zero-copy from an mmap
//     (docs/formats.md). Exits nonzero when any probed file fails
//     validation (CRC mismatch, unsupported version, unreadable payload, a
//     WAL body whose tail was torn or corrupted), so startup health checks
//     can gate on it.
//   deepst_cli convert --in FILE --out FILE [--cell-size M]
//     Rewrites a road network or dataset of any version as fixed-layout v3.
//     Road networks embed a precomputed spatial index (cell size --cell-size,
//     default 250 m) so loads skip index construction.
//
// `generate` takes `--format v2|v3` (default v2) to pick the on-disk format
// of network.bin / dataset.bin.
//
// Every command accepts `--threads N` (default 1): compute threads for the
// nn backend. Results are identical for every N; see docs/parallelism.md.
//
// Every model-loading command also accepts `--precision double|bf16|int8`
// (packed weight precision of the inference fast path; default double is
// bitwise the reference, bf16/int8 are accuracy-parity-gated, see
// docs/inference.md) and `--memo-capacity N` (transition-memo cache entries
// shared across the session pool, default 16384, 0 disables; hits are
// bitwise identical to recomputing).
//
// Fault injection (tools/check_fault.sh, docs/robustness.md): `--faults
// SPEC` or the DEEPST_FAULTS environment variable arms deterministic fault
// points before the command runs. SPEC is a comma-separated list of
// point:kind[@after][xcount], e.g. `roadnet.load:io_error`.
//
// `generate` writes network.bin + dataset.bin (+ CSV exports); the other
// commands load them, so experiments are reproducible without regenerating.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/mmi.h"
#include "baselines/neural_router.h"
#include "core/checkpoint.h"
#include "core/infer/session.h"
#include "core/serving.h"
#include "core/trainer.h"
#include "eval/metrics.h"
#include "eval/world.h"
#include "nn/backend.h"
#include "nn/serialize.h"
#include "recovery/strs.h"
#include "roadnet/io.h"
#include "serve/server.h"
#include "traffic/overlay.h"
#include "traffic/snapshot.h"
#include "traffic/store.h"
#include "traffic/wal.h"
#include "traj/ascii_map.h"
#include "traj/dataset.h"
#include "traj/io.h"
#include "traj/segment_stats.h"
#include "util/fault_injector.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/shutdown.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace deepst {
namespace cli {
namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: deepst_cli "
               "<generate|train|evaluate|predict|recover|serve|inspect|"
               "convert> [options]\n"
               "see the header of cli/deepst_cli.cc for per-command "
               "options\n");
  return 2;
}

// Everything the post-generate commands need, loaded from --data-dir.
struct LoadedData {
  std::unique_ptr<roadnet::RoadNetwork> net;
  std::vector<traj::TripRecord> records;
  traj::DatasetSplit split;
  std::unique_ptr<roadnet::SpatialIndex> index;
  std::unique_ptr<traffic::TrafficTensorCache> cache;
  std::unique_ptr<traj::SegmentStatsTable> stats;
  int train_days = 12;
  int val_days = 2;
};

util::StatusOr<LoadedData> LoadData(const util::Flags& flags) {
  const std::string dir = flags.GetString("data-dir");
  if (dir.empty()) {
    return util::Status::InvalidArgument("--data-dir is required");
  }
  LoadedData data;
  auto net = roadnet::LoadRoadNetwork(dir + "/network.bin");
  if (!net.ok()) return net.status();
  data.net = std::move(net).value();
  auto records = traj::LoadDataset(dir + "/dataset.bin");
  if (!records.ok()) return records.status();
  data.records = std::move(records).value();
  // The two files load independently; cross-check the dataset's segment
  // references against the network it will actually be used with.
  DEEPST_RETURN_IF_ERROR(traj::ValidateDataset(data.records, *data.net));

  auto train_days = flags.GetInt("train-days", 12);
  if (!train_days.ok()) return train_days.status();
  auto val_days = flags.GetInt("val-days", 2);
  if (!val_days.ok()) return val_days.status();
  data.train_days = static_cast<int>(train_days.value());
  data.val_days = static_cast<int>(val_days.value());
  data.split =
      traj::SplitByDay(data.records, data.train_days, data.val_days);
  data.index = std::make_unique<roadnet::SpatialIndex>(*data.net);

  auto cell = flags.GetDouble("traffic-cell-m", 350.0);
  if (!cell.ok()) return cell.status();
  auto slot = flags.GetDouble("traffic-slot-s", 1200.0);
  if (!slot.ok()) return slot.status();
  auto window = flags.GetDouble("traffic-window-s", 1800.0);
  if (!window.ok()) return window.status();
  if (slot.value() <= 0.0 || window.value() <= 0.0) {
    return util::Status::InvalidArgument(
        "--traffic-slot-s and --traffic-window-s must be > 0");
  }
  geo::GridSpec grid(data.net->bounds(), cell.value());
  data.cache = std::make_unique<traffic::TrafficTensorCache>(
      grid, slot.value(), window.value());
  data.cache->AddObservations(traj::CollectObservations(data.records));
  data.stats =
      std::make_unique<traj::SegmentStatsTable>(*data.net, data.split.train);
  return data;
}

util::StatusOr<core::DeepSTConfig> ModelConfigFromFlags(
    const util::Flags& flags, const LoadedData& data) {
  core::DeepSTConfig base;
  auto hidden = flags.GetInt("hidden", base.gru_hidden);
  if (!hidden.ok()) return hidden.status();
  base.gru_hidden = static_cast<int>(hidden.value());
  auto proxies =
      flags.GetInt("proxies", std::max(16, data.net->num_segments() / 6));
  if (!proxies.ok()) return proxies.status();
  base.num_proxies = static_cast<int>(proxies.value());

  const std::string precision = flags.GetString("precision", "double");
  if (!nn::infer::ParsePrecision(precision, &base.infer_precision)) {
    return util::Status::InvalidArgument(
        "--precision must be double, bf16 or int8, got '" + precision + "'");
  }
  auto memo = flags.GetInt("memo-capacity", base.memo_cache_capacity);
  if (!memo.ok()) return memo.status();
  if (memo.value() < 0) {
    return util::Status::InvalidArgument("--memo-capacity must be >= 0");
  }
  base.memo_cache_capacity = memo.value();

  const std::string variant = flags.GetString("variant", "deepst");
  if (variant == "deepst") return baselines::DeepStConfigOf(base);
  if (variant == "deepst_c") return baselines::DeepStCConfigOf(base);
  if (variant == "cssrnn") return baselines::CssrnnConfigOf(base);
  if (variant == "rnn") return baselines::RnnConfigOf(base);
  return util::Status::InvalidArgument("unknown --variant '" + variant + "'");
}

int CmdGenerate(const util::Flags& flags) {
  const std::string dir = flags.GetString("out-dir");
  if (dir.empty()) return Fail(util::Status::InvalidArgument(
      "--out-dir is required"));
  const std::string city = flags.GetString("city", "chengdu");
  eval::WorldConfig cfg = city == "harbin" ? eval::HarbinMiniWorld()
                                           : eval::ChengduMiniWorld();
  auto days = flags.GetInt("days", cfg.generator.num_days);
  if (!days.ok()) return Fail(days.status());
  cfg.generator.num_days = static_cast<int>(days.value());
  auto tpd = flags.GetInt("trips-per-day", cfg.generator.trips_per_day);
  if (!tpd.ok()) return Fail(tpd.status());
  cfg.generator.trips_per_day = static_cast<int>(tpd.value());
  auto seed = flags.GetInt("seed", static_cast<int64_t>(cfg.generator.seed));
  if (!seed.ok()) return Fail(seed.status());
  cfg.generator.seed = static_cast<uint64_t>(seed.value());

  const std::string format = flags.GetString("format", "v2");
  if (format != "v2" && format != "v3") {
    return Fail(util::Status::InvalidArgument(
        "--format must be v2 or v3, got '" + format + "'"));
  }

  eval::World world(cfg);
  util::Status s;
  if (format == "v3") {
    s = roadnet::SaveRoadNetworkV3(world.net(), dir + "/network.bin",
                                   &world.index());
    if (!s.ok()) return Fail(s);
    s = traj::SaveDatasetV3(world.records(), dir + "/dataset.bin");
  } else {
    s = roadnet::SaveRoadNetwork(world.net(), dir + "/network.bin");
    if (!s.ok()) return Fail(s);
    s = traj::SaveDataset(world.records(), dir + "/dataset.bin");
  }
  if (!s.ok()) return Fail(s);
  s = traj::ExportTripsCsv(world.records(), dir + "/trips.csv");
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s/network.bin (%d segments), dataset.bin (%zu trips), "
              "trips.csv\n",
              dir.c_str(), world.net().num_segments(),
              world.records().size());
  return 0;
}

int CmdTrain(const util::Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto cfg = ModelConfigFromFlags(flags, data.value());
  if (!cfg.ok()) return Fail(cfg.status());
  const std::string model_path = flags.GetString("model");
  if (model_path.empty()) {
    return Fail(util::Status::InvalidArgument("--model is required"));
  }
  core::DeepSTModel model(*data.value().net, cfg.value(),
                          data.value().cache.get());
  core::TrainerConfig tcfg;
  auto epochs = flags.GetInt("epochs", tcfg.max_epochs);
  if (!epochs.ok()) return Fail(epochs.status());
  tcfg.max_epochs = static_cast<int>(epochs.value());
  auto seed = flags.GetInt("seed", static_cast<int64_t>(tcfg.seed));
  if (!seed.ok()) return Fail(seed.status());
  tcfg.seed = static_cast<uint64_t>(seed.value());
  tcfg.checkpoint_dir = flags.GetString("checkpoint-dir");
  auto every = flags.GetInt("checkpoint-every", tcfg.checkpoint_every);
  if (!every.ok()) return Fail(every.status());
  tcfg.checkpoint_every = static_cast<int>(every.value());
  tcfg.resume = flags.GetBool("resume");
  if (tcfg.resume && tcfg.checkpoint_dir.empty()) {
    return Fail(util::Status::InvalidArgument(
        "--resume requires --checkpoint-dir"));
  }
  auto shard = flags.GetInt("shard-size", tcfg.micro_shard_size);
  if (!shard.ok()) return Fail(shard.status());
  if (shard.value() < 0) {
    return Fail(util::Status::InvalidArgument("--shard-size must be >= 0"));
  }
  tcfg.micro_shard_size = static_cast<int>(shard.value());
  tcfg.verbose = true;
  // Graceful stop: SIGTERM/SIGINT rolls the partial epoch back to the last
  // epoch boundary, flushes a final checkpoint, and exits 0 -- the same
  // signal plumbing the serve daemon drains on (util/shutdown.h).
  util::InstallShutdownHandlers();
  tcfg.stop_requested = [] { return util::ShutdownRequested(); };
  core::Trainer trainer(&model, tcfg);
  core::TrainResult result =
      trainer.Fit(data.value().split.train, data.value().split.validation);
  if (!result.status.ok()) {
    // The model still holds the last good parameters; save them so the run
    // is not a total loss, but report the failure.
    (void)nn::SaveParameters(model, model_path);
    return Fail(result.status);
  }
  util::Status s = nn::SaveParameters(model, model_path);
  if (!s.ok()) return Fail(s);
  if (result.interrupted) {
    const std::string flushed =
        tcfg.checkpoint_dir.empty()
            ? std::string("no checkpoint flushed (no --checkpoint-dir)")
            : "flushed " + tcfg.checkpoint_dir + "/ckpt_latest.bin";
    std::printf("interrupted (signal %d) after %zu epochs: rolled back to "
                "the last epoch boundary, %s, saved params to %s; rerun "
                "with --resume to continue\n",
                util::ShutdownSignal(), result.epochs.size(), flushed.c_str(),
                model_path.c_str());
    return 0;
  }
  // Aggregate training throughput across the run (batch loops only, no
  // validation): each epoch reports transitions and transitions/sec.
  int64_t transitions = 0;
  double train_seconds = 0.0;
  for (const auto& e : result.epochs) {
    transitions += e.transitions;
    if (e.transitions_per_sec > 0.0) {
      train_seconds +=
          static_cast<double>(e.transitions) / e.transitions_per_sec;
    }
  }
  std::printf("trained %lld params in %.1fs (%zu epochs, best %d), "
              "saved to %s\n",
              static_cast<long long>(model.NumParams()),
              result.total_seconds, result.epochs.size(), result.best_epoch,
              model_path.c_str());
  if (transitions > 0 && train_seconds > 0.0) {
    std::printf("throughput: %lld transitions in %.1fs training time "
                "(%.0f transitions/s)\n",
                static_cast<long long>(transitions), train_seconds,
                static_cast<double>(transitions) / train_seconds);
  }
  return 0;
}

util::StatusOr<std::unique_ptr<core::DeepSTModel>> LoadModel(
    const util::Flags& flags, const LoadedData& data) {
  auto cfg = ModelConfigFromFlags(flags, data);
  if (!cfg.ok()) return cfg.status();
  // O(params) path: no random-init draws for parameters the file overwrites.
  return core::DeepSTModel::LoadFromFile(*data.net, cfg.value(),
                                         data.cache.get(),
                                         flags.GetString("model"));
}

int CmdEvaluate(const util::Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(flags, data.value());
  if (!model.ok()) return Fail(model.status());
  auto max_trips = flags.GetInt("max-trips", 500);
  if (!max_trips.ok()) return Fail(max_trips.status());
  util::Rng rng(7);
  eval::MetricAccumulator acc;
  for (const auto* rec : data.value().split.test) {
    if (acc.count >= max_trips.value()) break;
    if (rec->trip.route.size() < 2) continue;
    auto route =
        model.value()->PredictRoute(eval::QueryFor(rec->trip), &rng);
    acc.Add(rec->trip.route, route);
  }
  std::printf("test trips: %d\nrecall@n: %.3f\naccuracy: %.3f\n", acc.count,
              acc.mean_recall(), acc.mean_accuracy());
  return 0;
}

util::StatusOr<core::ServingConfig> ServingConfigFromFlags(
    const util::Flags& flags) {
  core::ServingConfig scfg;
  auto deadline = flags.GetDouble("deadline-ms", 0.0);
  if (!deadline.ok()) return deadline.status();
  scfg.deadline_ms = deadline.value();
  scfg.strict = flags.GetBool("strict");
  return scfg;
}

// Batch prediction: one model load amortized over a file of test-trip
// indices. Each line prints the query's accuracy; the footer aggregates.
int PredictBatch(const LoadedData& data, core::ServingContext* serving,
                 const std::string& queries_path) {
  std::ifstream in(queries_path);
  if (!in) {
    return Fail(util::Status::NotFound("cannot open --queries file '" +
                                       queries_path + "'"));
  }
  const auto& test = data.split.test;
  if (test.empty()) return Fail(util::Status::NotFound("empty test split"));
  std::vector<size_t> indices;
  std::string line;
  while (std::getline(in, line)) {
    const size_t b = line.find_first_not_of(" \t\r\n");
    if (b == std::string::npos || line[b] == '#') continue;
    const size_t e = line.find_last_not_of(" \t\r\n");
    const std::string trimmed = line.substr(b, e - b + 1);
    char* endp = nullptr;
    const long long idx = std::strtoll(trimmed.c_str(), &endp, 10);
    if (endp == trimmed.c_str() || *endp != '\0' || idx < 0) {
      return Fail(util::Status::InvalidArgument(
          "bad trip index '" + trimmed + "' in " + queries_path));
    }
    indices.push_back(static_cast<size_t>(idx) % test.size());
  }
  if (indices.empty()) {
    return Fail(util::Status::InvalidArgument(
        "no trip indices in '" + queries_path + "'"));
  }
  util::Stopwatch watch;
  eval::MetricAccumulator acc;
  for (size_t idx : indices) {
    const auto* rec = test[idx];
    core::RouteQuery query = eval::QueryFor(rec->trip);
    auto result = serving->Predict(query);
    if (!result.ok()) return Fail(result.status());
    const traj::Route& route = result.value().route;
    acc.Add(rec->trip.route, route);
    std::printf("trip %4zu: truth %2zu predicted %2zu accuracy %.3f%s%s\n",
                idx, rec->trip.route.size(), route.size(),
                eval::Accuracy(rec->trip.route, route),
                result.value().degraded ? " degraded: " : "",
                result.value().degraded
                    ? core::DegradationsToString(result.value().degradations)
                          .c_str()
                    : "");
  }
  const double seconds = watch.ElapsedSeconds();
  std::printf("queries: %zu\nrecall@n: %.3f\naccuracy: %.3f\n"
              "prediction time: %.3fs (%.1f queries/s)\n",
              indices.size(), acc.mean_recall(), acc.mean_accuracy(), seconds,
              static_cast<double>(indices.size()) / std::max(seconds, 1e-9));
  return 0;
}

int CmdPredict(const util::Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(flags, data.value());
  if (!model.ok()) return Fail(model.status());
  auto scfg = ServingConfigFromFlags(flags);
  if (!scfg.ok()) return Fail(scfg.status());
  core::ServingContext serving(model.value().get(),
                               data.value().index.get(), scfg.value());
  const std::string queries_path = flags.GetString("queries");
  if (!queries_path.empty()) {
    return PredictBatch(data.value(), &serving, queries_path);
  }
  auto trip_index = flags.GetInt("trip", 0);
  if (!trip_index.ok()) return Fail(trip_index.status());
  const auto& test = data.value().split.test;
  if (test.empty()) return Fail(util::Status::NotFound("empty test split"));
  const auto* rec =
      test[static_cast<size_t>(trip_index.value()) % test.size()];
  core::RouteQuery query = eval::QueryFor(rec->trip);
  const std::string overlay_spec = flags.GetString("overlay");
  if (!overlay_spec.empty()) {
    auto overlay = traffic::ParseOverlaySpec(overlay_spec);
    if (!overlay.ok()) return Fail(overlay.status());
    query.overlay = std::move(overlay).value();
  }
  auto result = serving.Predict(query);
  if (!result.ok()) return Fail(result.status());
  const traj::Route& route = result.value().route;
  std::printf("query: origin %d -> (%.0f, %.0f) at t=%.0fs%s\n", query.origin,
              query.destination.x, query.destination.y, query.start_time_s,
              result.value().what_if ? " (what-if overlay applied)" : "");
  std::printf("truth    (%2zu):", rec->trip.route.size());
  for (auto s : rec->trip.route) std::printf(" %d", s);
  std::printf("\npredicted(%2zu):", route.size());
  for (auto s : route) std::printf(" %d", s);
  std::printf("\naccuracy: %.3f\n",
              eval::Accuracy(rec->trip.route, route));
  if (result.value().degraded) {
    std::printf("degraded: %s\n",
                core::DegradationsToString(result.value().degradations)
                    .c_str());
  }
  if (flags.GetBool("map")) {
    traj::AsciiMap map(*data.value().net, 22, 46);
    map.DrawNetwork();
    map.DrawRoute(rec->trip.route, '+');
    map.DrawRoute(route, '#');
    map.MarkPoint(query.destination, 'X');
    std::printf("%s('#' predicted, '+' truth, 'X' destination)\n",
                map.Render().c_str());
  }
  return 0;
}

int CmdRecover(const util::Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(flags, data.value());
  if (!model.ok()) return Fail(model.status());
  auto trip_index = flags.GetInt("trip", 0);
  if (!trip_index.ok()) return Fail(trip_index.status());
  auto interval = flags.GetDouble("interval-s", 240.0);
  if (!interval.ok()) return Fail(interval.status());
  const auto& test = data.value().split.test;
  if (test.empty()) return Fail(util::Status::NotFound("empty test split"));
  const auto* rec =
      test[static_cast<size_t>(trip_index.value()) % test.size()];
  auto sparse = traj::DownsampleByInterval(rec->gps, interval.value());
  recovery::DeepStSpatialScorer scorer(model.value().get());
  recovery::StrsRecovery strs_plus(*data.value().net, *data.value().index,
                                   *data.value().stats, &scorer);
  util::Rng rng(7);
  auto recovered = strs_plus.RecoverTrajectory(
      sparse, rec->trip.destination, rec->trip.start_time_s, &rng);
  if (!recovered.ok()) return Fail(recovered.status());
  std::printf("sparse points: %zu (of %zu)\ntruth    (%2zu):",
              sparse.size(), rec->gps.size(), rec->trip.route.size());
  for (auto s : rec->trip.route) std::printf(" %d", s);
  std::printf("\nrecovered(%2zu):", recovered.value().size());
  for (auto s : recovered.value()) std::printf(" %d", s);
  std::printf("\naccuracy: %.3f\n",
              eval::Accuracy(rec->trip.route, recovered.value()));
  return 0;
}

// Probes the file against each known format in turn; a wrong-magic probe
// returns InvalidArgument and falls through to the next kind. `healthy`
// (optional) is set false when the file is recognized and describable but
// fails validation (CRC mismatch, unsupported version, unloadable payload)
// -- each probe re-initializes it, so only the winning probe's verdict
// sticks.
util::StatusOr<std::string> DescribeAnyFile(const std::string& path,
                                            bool* healthy = nullptr) {
  if (healthy != nullptr) *healthy = true;
  auto probe = roadnet::DescribeRoadNetworkFile(path, healthy);
  if (probe.ok() || probe.status().code() != util::Status::Code::kInvalidArgument)
    return probe;
  probe = traj::DescribeDatasetFile(path, healthy);
  if (probe.ok() || probe.status().code() != util::Status::Code::kInvalidArgument)
    return probe;
  probe = core::DescribeCheckpointFile(path, healthy);
  if (probe.ok() || probe.status().code() != util::Status::Code::kInvalidArgument)
    return probe;
  probe = nn::DescribeParamsFile(path, healthy);
  if (probe.ok() || probe.status().code() != util::Status::Code::kInvalidArgument)
    return probe;
  probe = traffic::DescribeWalFile(path, healthy);
  if (probe.ok() || probe.status().code() != util::Status::Code::kInvalidArgument)
    return probe;
  if (healthy != nullptr) *healthy = true;  // unrecognized, not unhealthy
  return util::Status::InvalidArgument(
      "unrecognized file (not a road network, dataset, checkpoint, "
      "parameter, or traffic WAL file): " + path);
}

int CmdInspect(const util::Flags& flags) {
  if (flags.positional().empty()) {
    return Fail(util::Status::InvalidArgument(
        "inspect needs at least one file argument"));
  }
  int failures = 0;
  for (const std::string& path : flags.positional()) {
    bool healthy = true;
    auto report = DescribeAnyFile(path, &healthy);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::fputs(report.value().c_str(), stdout);
    if (!healthy) {
      // The report itself names what failed (CRC mismatch, version); the
      // exit status is what health checks gate on.
      std::fprintf(stderr, "error: %s failed validation\n", path.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// -- serve -------------------------------------------------------------------

bool ParseI64(const std::string& s, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

// `ingest` row blob: rows joined by ';', each exactly `t,x,y,speed_mps`.
// Semantic validation (finite, non-negative) is the store's job; this only
// rejects rows that do not parse as four numbers.
bool ParseIngestRows(const std::string& blob,
                     std::vector<traffic::SpeedObservation>* rows) {
  std::stringstream frames(blob);
  std::string row;
  while (std::getline(frames, row, ';')) {
    if (row.empty()) continue;
    std::stringstream fields(row);
    std::string field;
    double f[4] = {0.0, 0.0, 0.0, 0.0};
    int n = 0;
    while (std::getline(fields, field, ',')) {
      if (n >= 4 || !ParseF64(field, &f[n])) return false;
      ++n;
    }
    if (n != 4) return false;
    traffic::SpeedObservation obs;
    obs.time_s = f[0];
    obs.pos = {f[1], f[2]};
    obs.speed_mps = f[3];
    rows->push_back(obs);
  }
  return !rows->empty();
}

// One response line per request, tagged with the request id so pipelined
// clients can match them up: `#<id> ok ...` or `#<id> error ...`.
void PrintServeResult(int64_t id,
                      util::StatusOr<core::ServingResult> outcome) {
  if (!outcome.ok()) {
    std::printf("#%lld error %s\n", static_cast<long long>(id),
                outcome.status().ToString().c_str());
    std::fflush(stdout);
    return;
  }
  const core::ServingResult& res = outcome.value();
  std::string line = util::StrFormat("#%lld ok", static_cast<long long>(id));
  if (!res.route.empty()) {
    line += util::StrFormat(" route_len=%zu route=", res.route.size());
    for (size_t i = 0; i < res.route.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(res.route[i]);
    }
  }
  if (!res.scores.empty()) {
    line += " scores=";
    for (size_t i = 0; i < res.scores.size(); ++i) {
      if (i > 0) line += ',';
      line += util::StrFormat("%.6f", res.scores[i]);
    }
  }
  if (res.ingested > 0 || res.ingest_rejected > 0) {
    line += util::StrFormat(" ingested=%lld rejected=%lld",
                            static_cast<long long>(res.ingested),
                            static_cast<long long>(res.ingest_rejected));
  }
  if (res.snapshot_generation > 0) {
    line += util::StrFormat(
        " gen=%llu", static_cast<unsigned long long>(res.snapshot_generation));
  }
  if (res.what_if) line += " what_if=1";
  line += util::StrFormat(" latency_ms=%.3f", res.latency_ms);
  if (res.degraded) {
    line += " degraded=" + core::DegradationsToString(res.degradations);
  }
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

// Long-lived serving daemon: bounded queue + cross-client batching workers
// (serve::Server) behind a stdin line protocol. See the header comment for
// the protocol and docs/serving.md for the architecture.
int CmdServe(const util::Flags& flags) {
  const std::string dir = flags.GetString("data-dir");
  const std::string model_path = flags.GetString("model");
  if (dir.empty() || model_path.empty()) {
    return Fail(util::Status::InvalidArgument(
        "serve requires --data-dir and --model"));
  }
  // Startup health check: refuse to serve from files `deepst inspect` would
  // flag (CRC mismatch, unsupported version, unreadable payload).
  for (const std::string& path :
       {dir + "/network.bin", dir + "/dataset.bin", model_path}) {
    bool healthy = true;
    auto report = DescribeAnyFile(path, &healthy);
    if (!report.ok()) return Fail(report.status());
    if (!healthy) {
      std::fprintf(stderr,
                   "error: startup health check failed for %s:\n%s",
                   path.c_str(), report.value().c_str());
      return 1;
    }
  }
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status());
  auto model = LoadModel(flags, data.value());
  if (!model.ok()) return Fail(model.status());
  auto scfg = ServingConfigFromFlags(flags);
  if (!scfg.ok()) return Fail(scfg.status());
  // The server owns the deadline end-to-end (queue wait counts against it)
  // and forwards each request's remaining budget, so the context itself
  // runs without a second, overlapping budget.
  core::ServingConfig sc = scfg.value();
  const double deadline_ms = sc.deadline_ms;
  sc.deadline_ms = 0.0;

  // Live traffic pipeline (docs/streaming.md): --traffic-wal arms ingest.
  // The store's generation 1 is a clone of the dataset-seeded cache (the
  // same bytes static serving reads), the WAL replays into generation 2
  // before the first query is admitted, and every published swap bumps the
  // transition-memo epoch so memoized logits never cross generations.
  std::unique_ptr<traffic::SnapshotStore> store;
  const std::string wal_path = flags.GetString("traffic-wal");
  if (!wal_path.empty()) {
    traffic::ObservationWal::Options wal_opts;
    auto fsync_bytes =
        flags.GetInt("wal-fsync-bytes", wal_opts.fsync_interval_bytes);
    if (!fsync_bytes.ok()) return Fail(fsync_bytes.status());
    if (fsync_bytes.value() < 0) {
      return Fail(
          util::Status::InvalidArgument("--wal-fsync-bytes must be >= 0"));
    }
    wal_opts.fsync_interval_bytes = fsync_bytes.value();
    auto swap_ms = flags.GetDouble("swap-interval-ms", 0.0);
    if (!swap_ms.ok()) return Fail(swap_ms.status());

    std::vector<traffic::SpeedObservation> replayed;
    traffic::WalReplayReport report;
    auto wal = traffic::ObservationWal::Open(wal_path, wal_opts, &replayed,
                                             &report);
    if (!wal.ok()) return Fail(wal.status());
    traffic::SnapshotStoreConfig store_cfg;
    store_cfg.swap_interval_ms = swap_ms.value();
    store = std::make_unique<traffic::SnapshotStore>(
        data.value().cache->Clone(), std::move(wal).value(), store_cfg);
    core::DeepSTModel* served_model = model.value().get();
    store->set_on_swap(
        [served_model](uint64_t) { served_model->InvalidateTransitionCache(); });
    if (!replayed.empty()) {
      store->QueueRecovered(std::move(replayed));
      store->SwapNow();
    }
    store->Start();
    std::fprintf(
        stderr,
        "live traffic: wal %s replayed %llu frames / %llu rows%s, "
        "generation %llu, swap %s\n",
        wal_path.c_str(), static_cast<unsigned long long>(report.frames),
        static_cast<unsigned long long>(report.rows),
        report.torn_tail
            ? util::StrFormat(" (torn tail: %llu bytes dropped at offset "
                              "%llu)",
                              static_cast<unsigned long long>(
                                  report.dropped_bytes),
                              static_cast<unsigned long long>(
                                  report.torn_tail_offset))
                  .c_str()
            : "",
        static_cast<unsigned long long>(store->generation()),
        store_cfg.swap_interval_ms > 0.0
            ? util::StrFormat("every %.0f ms", store_cfg.swap_interval_ms)
                  .c_str()
            : "on demand");
  }

  core::ServingContext serving(model.value().get(), data.value().index.get(),
                               sc, store.get());

  serve::ServeOptions opts;
  auto workers = flags.GetInt("workers", opts.workers);
  if (!workers.ok()) return Fail(workers.status());
  opts.workers = static_cast<int>(workers.value());
  auto capacity = flags.GetInt("queue-capacity",
                               static_cast<int64_t>(opts.queue_capacity));
  if (!capacity.ok()) return Fail(capacity.status());
  auto max_batch =
      flags.GetInt("max-batch", static_cast<int64_t>(opts.max_batch));
  if (!max_batch.ok()) return Fail(max_batch.status());
  auto window = flags.GetInt("batch-window-us", opts.batch_window_us);
  if (!window.ok()) return Fail(window.status());
  auto retry_after = flags.GetDouble("retry-after-ms", opts.retry_after_ms);
  if (!retry_after.ok()) return Fail(retry_after.status());
  auto watchdog = flags.GetDouble("watchdog-ms", opts.watchdog_period_ms);
  if (!watchdog.ok()) return Fail(watchdog.status());
  auto hung = flags.GetDouble("hung-ms", opts.hung_query_ms);
  if (!hung.ok()) return Fail(hung.status());
  if (workers.value() < 1 || capacity.value() < 1 || max_batch.value() < 1) {
    return Fail(util::Status::InvalidArgument(
        "--workers, --queue-capacity and --max-batch must be >= 1"));
  }
  opts.queue_capacity = static_cast<size_t>(capacity.value());
  opts.max_batch = static_cast<size_t>(max_batch.value());
  opts.batch_window_us = window.value();
  opts.retry_after_ms = retry_after.value();
  opts.watchdog_period_ms = watchdog.value();
  opts.hung_query_ms = hung.value();
  opts.default_deadline_ms = deadline_ms;

  serve::Server server(&serving, opts);
  util::InstallShutdownHandlers();
  server.Start();
  std::fprintf(stderr,
               "serving: %d workers, queue %zu, batch <=%zu (window %lld us)"
               ", deadline %.1f ms, watchdog hung>%.1f ms\n",
               opts.workers, opts.queue_capacity, opts.max_batch,
               static_cast<long long>(opts.batch_window_us),
               opts.default_deadline_ms, opts.hung_query_ms);
  // Force weight packing now (instead of on the first query) and log the
  // active inference configuration next to the health-gate banner.
  {
    const auto packed = model.value()->shared_infer_weights();
    const auto memo_stats = model.value()->transition_memo_stats();
    std::fprintf(
        stderr,
        "inference: precision=%s (packed weights %.2f MiB, GEMM panels "
        "%.2f MiB), transition memo capacity %lld entries\n",
        nn::infer::PrecisionName(packed->precision),
        static_cast<double>(packed->packed_weight_bytes) / (1024.0 * 1024.0),
        static_cast<double>(packed->packed_panel_bytes) / (1024.0 * 1024.0),
        static_cast<long long>(memo_stats.capacity));
  }

  const auto& test = data.value().split.test;
  struct InFlight {
    int64_t id = 0;
    std::future<util::StatusOr<core::ServingResult>> future;
  };
  std::deque<InFlight> inflight;
  // Print every already-resolved response in submission order (all = block
  // for the rest too, the drain path).
  auto flush_responses = [&inflight](bool all) {
    while (!inflight.empty()) {
      InFlight& f = inflight.front();
      if (!all && f.future.wait_for(std::chrono::seconds(0)) !=
                      std::future_status::ready) {
        break;
      }
      PrintServeResult(f.id, f.future.get());
      inflight.pop_front();
    }
  };
  int64_t next_id = 0;
  std::string line;
  while (!util::ShutdownRequested()) {
    if (!std::getline(std::cin, line)) {
      if (util::ShutdownRequested() || std::cin.eof() || std::cin.bad()) {
        break;
      }
      std::cin.clear();  // EINTR from an unrelated signal: retry the read
      continue;
    }
    std::istringstream iss(line);
    std::vector<std::string> tok;
    for (std::string t; iss >> t;) tok.push_back(t);
    if (tok.empty() || tok[0][0] == '#') continue;
    const std::string& cmd = tok[0];
    if (cmd == "quit") break;
    if (cmd == "stats") {
      const core::ServingStats st = serving.stats();
      std::printf("%s\n", server.snapshot().ToJson().c_str());
      std::printf("{\"queries\": %lld, \"failures\": %lld, \"degraded\": "
                  "%lld, \"outstanding_leases\": %lld}\n",
                  static_cast<long long>(st.queries),
                  static_cast<long long>(st.failures),
                  static_cast<long long>(st.degraded),
                  static_cast<long long>(
                      model.value()->outstanding_session_leases()));
      std::fflush(stdout);
      continue;
    }
    if (cmd == "swap") {
      // Synchronous: drain the pipeline first so every ingest acked above
      // this line is folded in, then publish. The next admitted query pins
      // the new generation.
      if (store == nullptr) {
        std::printf("error swap unavailable (serve without --traffic-wal)\n");
      } else {
        flush_responses(/*all=*/true);
        std::printf("swap generation=%llu\n",
                    static_cast<unsigned long long>(store->SwapNow()));
      }
      std::fflush(stdout);
      continue;
    }
    const int64_t id = next_id++;
    core::ServingRequest req;
    bool parsed = false;
    int64_t trip = 0;
    if ((cmd == "predict" && tok.size() == 5) ||
        (cmd == "predict_whatif" && tok.size() == 6)) {
      int64_t origin = 0;
      parsed = ParseI64(tok[1], &origin) &&
               ParseF64(tok[2], &req.query.destination.x) &&
               ParseF64(tok[3], &req.query.destination.y) &&
               ParseF64(tok[4], &req.query.start_time_s);
      req.query.origin = static_cast<roadnet::SegmentId>(origin);
      if (parsed && cmd == "predict_whatif") {
        auto overlay = traffic::ParseOverlaySpec(tok[5]);
        if (!overlay.ok()) {
          std::printf("#%lld error %s\n", static_cast<long long>(id),
                      overlay.status().ToString().c_str());
          std::fflush(stdout);
          continue;
        }
        req.query.overlay = std::move(overlay).value();
      }
    } else if (cmd == "ingest" && tok.size() == 2) {
      req.kind = core::ServingRequest::Kind::kIngest;
      parsed = ParseIngestRows(tok[1], &req.observations);
    } else if ((cmd == "predict_trip" || cmd == "score_trip") &&
               tok.size() == 2 && !test.empty() &&
               ParseI64(tok[1], &trip) && trip >= 0) {
      const auto* rec = test[static_cast<size_t>(trip) % test.size()];
      req.query = eval::QueryFor(rec->trip);
      if (cmd == "score_trip") {
        req.kind = core::ServingRequest::Kind::kScore;
        req.routes = {rec->trip.route};
      }
      parsed = true;
    }
    if (!parsed) {
      std::printf("#%lld error bad request '%s'\n",
                  static_cast<long long>(id), line.c_str());
      std::fflush(stdout);
      continue;
    }
    inflight.push_back({id, server.Submit(std::move(req))});
    flush_responses(/*all=*/false);
    // Backpressure: cap outstanding responses at the queue depth so the
    // pipeline still coalesces batches without growing without bound.
    while (inflight.size() > opts.queue_capacity) {
      PrintServeResult(inflight.front().id, inflight.front().future.get());
      inflight.pop_front();
    }
  }
  // Shutdown order: force the WAL tail durable first (a SIGTERM must not
  // lose acked ingests even if the drain stalls), drain in-flight requests
  // (late ingests re-dirty the tail), stop the aggregator, then sync once
  // more so everything acked in the meantime is on disk at exit.
  if (store != nullptr) (void)store->SyncWal();
  flush_responses(/*all=*/true);
  server.Shutdown();
  if (store != nullptr) {
    store->Stop();
    const util::Status wal_sync = store->SyncWal();
    if (!wal_sync.ok()) {
      std::fprintf(stderr, "error: wal sync at shutdown: %s\n",
                   wal_sync.ToString().c_str());
    }
  }
  std::fprintf(stderr, "drained: %s\n", server.snapshot().ToJson().c_str());
  const int64_t leaked = model.value()->outstanding_session_leases();
  if (leaked != 0) {
    std::fprintf(stderr, "error: %lld session leases leaked\n",
                 static_cast<long long>(leaked));
    return 1;
  }
  return 0;
}

int CmdConvert(const util::Flags& flags) {
  const std::string in_path = flags.GetString("in");
  const std::string out_path = flags.GetString("out");
  if (in_path.empty() || out_path.empty()) {
    return Fail(util::Status::InvalidArgument(
        "convert requires --in and --out"));
  }
  auto cell = flags.GetDouble("cell-size", 250.0);
  if (!cell.ok()) return Fail(cell.status());
  // Kind detection by magic: try the network loader first, then the dataset
  // loader. Wrong-magic errors fall through; real corruption fails loudly.
  auto city = roadnet::LoadCity(in_path, cell.value());
  if (city.ok()) {
    util::Status s = roadnet::SaveRoadNetworkV3(*city.value().net, out_path,
                                                city.value().index.get());
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s: road network v3, %d segments, spatial cells of "
                "%.0f m\n",
                out_path.c_str(), city.value().net->num_segments(),
                cell.value());
    return 0;
  }
  auto records = traj::LoadDataset(in_path);
  if (records.ok()) {
    util::Status s = traj::SaveDatasetV3(records.value(), out_path);
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s: trajectory dataset v3, %zu trips\n",
                out_path.c_str(), records.value().size());
    return 0;
  }
  // Neither loader accepted it: report the network loader's error (the more
  // common input) unless the dataset loader got further than bad magic.
  return Fail(city.status());
}

int Main(int argc, const char* const* argv) {
  if (argc < 2) return Usage();
  auto flags = util::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) return Fail(flags.status());
  auto threads = flags.value().GetInt("threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  nn::SetBackendThreads(static_cast<int>(threads.value()));
  // Deterministic fault injection for robustness testing: both channels arm
  // the same process-wide injector (the flag wins on conflicting points).
  if (const char* env = std::getenv("DEEPST_FAULTS");
      env != nullptr && env[0] != '\0') {
    util::Status s = util::FaultInjector::Instance().ArmFromSpec(env);
    if (!s.ok()) return Fail(s);
  }
  const std::string faults = flags.value().GetString("faults");
  if (!faults.empty()) {
    util::Status s = util::FaultInjector::Instance().ArmFromSpec(faults);
    if (!s.ok()) return Fail(s);
  }
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags.value());
  if (command == "train") return CmdTrain(flags.value());
  if (command == "evaluate") return CmdEvaluate(flags.value());
  if (command == "predict") return CmdPredict(flags.value());
  if (command == "recover") return CmdRecover(flags.value());
  if (command == "serve") return CmdServe(flags.value());
  if (command == "inspect") return CmdInspect(flags.value());
  if (command == "convert") return CmdConvert(flags.value());
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace deepst

int main(int argc, char** argv) { return deepst::cli::Main(argc, argv); }
