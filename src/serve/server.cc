#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace deepst {
namespace serve {

Server::Server(core::ServingContext* context, const ServeOptions& options)
    : context_(context), options_(options), queue_(options.queue_capacity) {
  DEEPST_CHECK(context_ != nullptr);
  DEEPST_CHECK(options_.workers > 0);
  DEEPST_CHECK(options_.max_batch > 0);
}

Server::~Server() { Shutdown(); }

MetricsSnapshot Server::snapshot() const {
  MetricsSnapshot s = Snapshot(metrics_);
  const core::DeepSTModel* model = context_->model();
  if (model != nullptr) {
    const nn::infer::MemoStats ms = model->transition_memo_stats();
    s.cache_lookups = ms.lookups;
    s.cache_hits = ms.hits;
    s.cache_misses = ms.misses;
    s.cache_insertions = ms.insertions;
    s.cache_invalidations = ms.invalidations;
    s.cache_epoch = static_cast<int64_t>(ms.epoch);
    s.cache_capacity = ms.capacity;
  }
  traffic::SnapshotStore* store = context_->snapshot_store();
  if (store != nullptr) {
    const traffic::SnapshotStoreStats ts = store->stats();
    s.traffic_enabled = true;
    s.traffic_generation = static_cast<int64_t>(ts.generation);
    s.traffic_swaps = ts.swaps;
    s.traffic_snapshot_age_s = ts.snapshot_age_s;
    s.traffic_rows_accepted = ts.rows_accepted;
    s.traffic_rows_rejected = ts.rows_rejected;
    s.traffic_rows_pending = ts.rows_pending;
    s.traffic_wal_bytes = ts.wal_bytes;
    s.traffic_wal_fsyncs = ts.wal_fsyncs;
    s.traffic_pinned_readers = ts.pinned_readers;
    s.traffic_pinned_high_water = ts.pinned_reader_high_water;
  }
  return s;
}

int64_t Server::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Server::SpawnWorkerLocked() {
  worker_states_.push_back(std::make_unique<WorkerState>());
  WorkerState* state = worker_states_.back().get();
  threads_.emplace_back([this, state] { WorkerLoop(state); });
  metrics_.workers_spawned.fetch_add(1, std::memory_order_relaxed);
}

void Server::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (int i = 0; i < options_.workers; ++i) SpawnWorkerLocked();
  if (options_.hung_query_ms > 0.0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

std::future<util::StatusOr<core::ServingResult>> Server::Submit(
    core::ServingRequest request) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  auto reject = [](util::Status status) {
    std::promise<util::StatusOr<core::ServingResult>> p;
    std::future<util::StatusOr<core::ServingResult>> f = p.get_future();
    p.set_value(std::move(status));
    return f;
  };
  if (draining_.load(std::memory_order_acquire)) {
    metrics_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
    return reject(util::Status::FailedPrecondition(
        "server is draining; not admitting new requests"));
  }
  auto pending = std::make_unique<Pending>();
  pending->deadline_ms = request.deadline_ms > 0.0
                             ? request.deadline_ms
                             : options_.default_deadline_ms;
  pending->request = std::move(request);
  std::future<util::StatusOr<core::ServingResult>> future =
      pending->promise.get_future();
  if (!queue_.TryPush(std::move(pending))) {
    // Overload shedding: the queue is the only buffer, and it is full. Tell
    // the client when to come back instead of letting latency collapse.
    metrics_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    return reject(util::Status::ResourceExhausted(util::StrFormat(
        "request queue full (%zu deep); retry after %.1f ms",
        queue_.capacity(), options_.retry_after_ms)));
  }
  metrics_.admitted.fetch_add(1, std::memory_order_relaxed);
  return future;
}

util::StatusOr<core::ServingResult> Server::Execute(
    core::ServingRequest request) {
  return Submit(std::move(request)).get();
}

void Server::WorkerLoop(WorkerState* state) {
  std::vector<std::unique_ptr<Pending>> batch;
  std::vector<core::ServingRequest> requests;
  std::vector<size_t> live;  // batch index of each request in `requests`
  while (true) {
    batch.clear();
    if (!queue_.PopBatch(&batch, options_.max_batch,
                         std::chrono::microseconds(options_.batch_window_us))) {
      return;  // queue closed and drained
    }
    state->busy_since_ms.store(NowMs(), std::memory_order_relaxed);
    state->busy_epoch.fetch_add(1, std::memory_order_release);  // -> odd

    metrics_.batches.fetch_add(1, std::memory_order_relaxed);
    metrics_.batch_requests.fetch_add(static_cast<int64_t>(batch.size()),
                                      std::memory_order_relaxed);
    // Deadline accounting: the time a request spent queued comes out of its
    // budget before the model sees it. Already-expired requests complete
    // here with DeadlineExceeded -- never silently dropped, never executed.
    requests.clear();
    live.clear();
    for (size_t i = 0; i < batch.size(); ++i) {
      Pending& p = *batch[i];
      if (p.deadline_ms > 0.0) {
        const double waited = p.queued.ElapsedMillis();
        const double remaining = p.deadline_ms - waited;
        if (remaining <= 0.0) {
          metrics_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
          metrics_.failed.fetch_add(1, std::memory_order_relaxed);
          metrics_.latency.Record(waited);
          p.promise.set_value(util::Status::DeadlineExceeded(
              util::StrFormat("deadline %.1f ms expired after %.1f ms in "
                              "queue",
                              p.deadline_ms, waited)));
          continue;
        }
        p.request.deadline_ms = remaining;
      }
      requests.push_back(std::move(p.request));
      live.push_back(i);
    }
    if (!requests.empty()) {
      metrics_.batch_shape.Record(static_cast<int64_t>(requests.size()));
      // ExecuteBatch is exception-isolated internally; each slot always
      // carries a Status or a result, so every promise below resolves.
      std::vector<util::StatusOr<core::ServingResult>> results =
          context_->ExecuteBatch(&requests);
      for (size_t k = 0; k < live.size(); ++k) {
        Pending& p = *batch[live[k]];
        const double total_ms = p.queued.ElapsedMillis();
        if (results[k].ok()) {
          // Latency reported to the client spans admission to completion,
          // consistent with the deadline the budget was charged against.
          results[k].value().latency_ms = total_ms;
          metrics_.completed_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          metrics_.failed.fetch_add(1, std::memory_order_relaxed);
        }
        metrics_.latency.Record(total_ms);
        p.promise.set_value(std::move(results[k]));
      }
    }

    state->busy_epoch.fetch_add(1, std::memory_order_release);  // -> even
  }
}

void Server::WatchdogLoop() {
  const auto period = std::chrono::microseconds(
      static_cast<int64_t>(options_.watchdog_period_ms * 1000.0));
  while (!stop_watchdog_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (auto& state : worker_states_) {
      const uint64_t epoch = state->busy_epoch.load(std::memory_order_acquire);
      if ((epoch & 1) == 0) continue;  // idle
      if (epoch == state->punished_epoch) continue;  // already handled
      const int64_t busy_ms =
          NowMs() - state->busy_since_ms.load(std::memory_order_relaxed);
      if (busy_ms < static_cast<int64_t>(options_.hung_query_ms)) continue;
      // The worker has been stuck on one batch past the hang threshold.
      // Retire the model's session pool: the stuck worker's leased session
      // is now stale and will be destroyed (not re-pooled) whenever it
      // finally unwinds, so its possibly-poisoned scratch state can never
      // serve another query. Then add a replacement worker (up to the cap)
      // so throughput survives the stuck thread.
      state->punished_epoch = epoch;
      metrics_.watchdog_recycles.fetch_add(1, std::memory_order_relaxed);
      context_->model()->RetirePooledSessions();
      const int spawned = static_cast<int>(worker_states_.size());
      if (spawned < options_.workers + options_.max_replacement_workers &&
          !queue_.closed()) {
        SpawnWorkerLocked();
      }
    }
  }
}

void Server::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  queue_.Close();
}

void Server::Shutdown() {
  RequestDrain();
  stop_watchdog_.store(true, std::memory_order_release);
  std::vector<std::thread> threads;
  std::thread watchdog;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(threads_);
    watchdog.swap(watchdog_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (watchdog.joinable()) watchdog.join();
}

bool Server::draining() const {
  return draining_.load(std::memory_order_acquire);
}

}  // namespace serve
}  // namespace deepst
