#ifndef DEEPST_SERVE_METRICS_H_
#define DEEPST_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace deepst {
namespace serve {

// Lock-free log-bucketed latency histogram: bucket b holds samples in
// [2^b, 2^(b+1)) microseconds, so 48 buckets span sub-microsecond to ~eight
// years. Record is two relaxed atomic increments -- cheap enough to sit on
// the per-request completion path -- and quantiles are read by walking the
// bucket counts (resolution: one power of two, plenty for gating p99
// regressions an order of magnitude apart).
class LatencyHistogram {
 public:
  void Record(double millis);
  // Quantile in milliseconds (q in [0, 1]); 0 when empty. Returns the upper
  // edge of the bucket containing the q-th sample.
  double Quantile(double q) const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kBuckets = 48;
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
};

// Log2 histogram of executed batch shapes: bucket b counts batches whose
// post-expiry request count landed in [2^b, 2^(b+1)), so bucket 0 is
// single-request batches and the top bucket absorbs anything >= 2^11. The
// batching win comes from the blocked GEMM kernels amortizing weight reads
// across rows, so the shape distribution (not just the mean
// batch_requests/batches) is what says whether cross-query coalescing is
// actually producing multi-row steps. Record is one relaxed increment on
// the worker's per-batch path.
class BatchShapeHistogram {
 public:
  static constexpr int kBuckets = 12;

  void Record(int64_t rows);
  int64_t bucket(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
};

// Monotonic counters covering every way a request can leave the daemon,
// plus the batching and watchdog activity behind them. One shed request is
// exactly one increment of exactly one rejection counter: the chaos soak
// cross-checks submitted == admitted + shed_queue_full + rejected_draining
// and admitted == completed_ok + failed + expired_in_queue.
struct ServeMetrics {
  std::atomic<int64_t> submitted{0};          // Submit calls
  std::atomic<int64_t> admitted{0};           // accepted into the queue
  std::atomic<int64_t> shed_queue_full{0};    // rejected: queue at capacity
  std::atomic<int64_t> rejected_draining{0};  // rejected: drain in progress
  std::atomic<int64_t> completed_ok{0};       // finished with an OK result
  std::atomic<int64_t> failed{0};             // finished with a non-OK Status
  std::atomic<int64_t> expired_in_queue{0};   // deadline died waiting
  std::atomic<int64_t> batches{0};            // worker dequeues
  std::atomic<int64_t> batch_requests{0};     // requests across all batches
  BatchShapeHistogram batch_shape;            // executed (post-expiry) rows
  std::atomic<int64_t> watchdog_recycles{0};  // hung-worker lease retirements
  std::atomic<int64_t> workers_spawned{0};    // incl. watchdog replacements
  LatencyHistogram latency;                   // admission -> completion
};

// Plain-value copy of the counters for reporting.
struct MetricsSnapshot {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t shed_queue_full = 0;
  int64_t rejected_draining = 0;
  int64_t completed_ok = 0;
  int64_t failed = 0;
  int64_t expired_in_queue = 0;
  int64_t batches = 0;
  int64_t batch_requests = 0;
  // batch_shape[b] = executed batches with rows in [2^b, 2^(b+1)).
  // sum(batch_shape) <= batches: only non-empty post-expiry batches record.
  std::array<int64_t, BatchShapeHistogram::kBuckets> batch_shape{};
  int64_t watchdog_recycles = 0;
  int64_t workers_spawned = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  // Transition-memo cache counters, sampled from the model's shared
  // TransitionMemoCache at snapshot time (Server::snapshot) rather than
  // accumulated here. Invariant at quiescence: hits + misses == lookups.
  int64_t cache_lookups = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_insertions = 0;
  int64_t cache_invalidations = 0;
  int64_t cache_epoch = 0;
  int64_t cache_capacity = 0;  // 0 = memoization disabled

  // Live traffic pipeline counters, sampled from the SnapshotStore at
  // snapshot time (zeros when serving a static snapshot). Invariants at
  // quiescence: traffic_generation == traffic_swaps + 1 (generation 1 is
  // the seed snapshot), traffic_pinned_readers == 0 once drained, and
  // traffic_pinned_high_water never exceeds the peak concurrent queries.
  bool traffic_enabled = false;
  int64_t traffic_generation = 0;
  int64_t traffic_swaps = 0;
  double traffic_snapshot_age_s = 0.0;
  int64_t traffic_rows_accepted = 0;
  int64_t traffic_rows_rejected = 0;
  int64_t traffic_rows_pending = 0;
  int64_t traffic_wal_bytes = 0;
  int64_t traffic_wal_fsyncs = 0;
  int64_t traffic_pinned_readers = 0;
  int64_t traffic_pinned_high_water = 0;

  // One-line JSON object (stable key order) for the stats command and logs.
  // Cache counters nest under a "cache" object, live-traffic counters under
  // a "traffic" object.
  std::string ToJson() const;
};

MetricsSnapshot Snapshot(const ServeMetrics& metrics);

}  // namespace serve
}  // namespace deepst

#endif  // DEEPST_SERVE_METRICS_H_
