#include "serve/metrics.h"

#include <cmath>

#include "util/string_util.h"

namespace deepst {
namespace serve {

void LatencyHistogram::Record(double millis) {
  double us = millis * 1000.0;
  if (!(us >= 0.0)) us = 0.0;  // NaN and negatives land in bucket 0
  int b = 0;
  while (b + 1 < kBuckets && us >= 2.0) {
    us *= 0.5;
    ++b;
  }
  buckets_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  const int64_t total = count_.load(std::memory_order_relaxed);
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil), as in nearest-rank quantiles.
  int64_t rank = static_cast<int64_t>(std::ceil(q * total));
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bucket edge, converted back to milliseconds.
      return std::ldexp(1.0, b + 1) / 1000.0;
    }
  }
  return std::ldexp(1.0, kBuckets) / 1000.0;
}

void BatchShapeHistogram::Record(int64_t rows) {
  if (rows < 1) rows = 1;
  int b = 0;
  while (b + 1 < kBuckets && rows >= 2) {
    rows >>= 1;
    ++b;
  }
  buckets_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot Snapshot(const ServeMetrics& metrics) {
  MetricsSnapshot s;
  s.submitted = metrics.submitted.load(std::memory_order_relaxed);
  s.admitted = metrics.admitted.load(std::memory_order_relaxed);
  s.shed_queue_full = metrics.shed_queue_full.load(std::memory_order_relaxed);
  s.rejected_draining =
      metrics.rejected_draining.load(std::memory_order_relaxed);
  s.completed_ok = metrics.completed_ok.load(std::memory_order_relaxed);
  s.failed = metrics.failed.load(std::memory_order_relaxed);
  s.expired_in_queue = metrics.expired_in_queue.load(std::memory_order_relaxed);
  s.batches = metrics.batches.load(std::memory_order_relaxed);
  s.batch_requests = metrics.batch_requests.load(std::memory_order_relaxed);
  s.watchdog_recycles =
      metrics.watchdog_recycles.load(std::memory_order_relaxed);
  s.workers_spawned = metrics.workers_spawned.load(std::memory_order_relaxed);
  s.p50_ms = metrics.latency.Quantile(0.50);
  s.p99_ms = metrics.latency.Quantile(0.99);
  for (int b = 0; b < BatchShapeHistogram::kBuckets; ++b) {
    s.batch_shape[static_cast<size_t>(b)] = metrics.batch_shape.bucket(b);
  }
  return s;
}

std::string MetricsSnapshot::ToJson() const {
  std::string shape = "[";
  for (size_t b = 0; b < batch_shape.size(); ++b) {
    if (b > 0) shape += ", ";
    shape += util::StrFormat("%lld", static_cast<long long>(batch_shape[b]));
  }
  shape += "]";
  return util::StrFormat(
      "{\"submitted\": %lld, \"admitted\": %lld, \"shed_queue_full\": %lld, "
      "\"rejected_draining\": %lld, \"completed_ok\": %lld, \"failed\": %lld, "
      "\"expired_in_queue\": %lld, \"batches\": %lld, "
      "\"batch_requests\": %lld, \"batch_shape\": %s, "
      "\"watchdog_recycles\": %lld, "
      "\"workers_spawned\": %lld, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"cache\": {\"lookups\": %lld, \"hits\": %lld, \"misses\": %lld, "
      "\"insertions\": %lld, \"invalidations\": %lld, \"epoch\": %lld, "
      "\"capacity\": %lld}, "
      "\"traffic\": {\"enabled\": %s, \"generation\": %lld, \"swaps\": %lld, "
      "\"snapshot_age_s\": %.3f, \"rows_accepted\": %lld, "
      "\"rows_rejected\": %lld, \"rows_pending\": %lld, "
      "\"wal_bytes\": %lld, \"wal_fsyncs\": %lld, "
      "\"pinned_readers\": %lld, \"pinned_high_water\": %lld}}",
      static_cast<long long>(submitted), static_cast<long long>(admitted),
      static_cast<long long>(shed_queue_full),
      static_cast<long long>(rejected_draining),
      static_cast<long long>(completed_ok), static_cast<long long>(failed),
      static_cast<long long>(expired_in_queue),
      static_cast<long long>(batches), static_cast<long long>(batch_requests),
      shape.c_str(), static_cast<long long>(watchdog_recycles),
      static_cast<long long>(workers_spawned), p50_ms, p99_ms,
      static_cast<long long>(cache_lookups), static_cast<long long>(cache_hits),
      static_cast<long long>(cache_misses),
      static_cast<long long>(cache_insertions),
      static_cast<long long>(cache_invalidations),
      static_cast<long long>(cache_epoch),
      static_cast<long long>(cache_capacity),
      traffic_enabled ? "true" : "false",
      static_cast<long long>(traffic_generation),
      static_cast<long long>(traffic_swaps), traffic_snapshot_age_s,
      static_cast<long long>(traffic_rows_accepted),
      static_cast<long long>(traffic_rows_rejected),
      static_cast<long long>(traffic_rows_pending),
      static_cast<long long>(traffic_wal_bytes),
      static_cast<long long>(traffic_wal_fsyncs),
      static_cast<long long>(traffic_pinned_readers),
      static_cast<long long>(traffic_pinned_high_water));
}

}  // namespace serve
}  // namespace deepst
