#ifndef DEEPST_SERVE_SERVER_H_
#define DEEPST_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/serving.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace deepst {
namespace serve {

struct ServeOptions {
  // Worker threads draining the request queue. Each worker executes one
  // coalesced batch at a time through ServingContext::ExecuteBatch, so
  // peak concurrent inference sessions == live workers.
  int workers = 2;
  // Admission bound: requests beyond this depth are shed, not queued.
  size_t queue_capacity = 64;
  // Batching scheduler: up to max_batch requests per dequeue, lingering up
  // to batch_window_us after the first request for co-riders.
  size_t max_batch = 8;
  int64_t batch_window_us = 200;
  // Default end-to-end budget stamped onto requests that carry none
  // (deadline includes queue wait); 0 = no deadline.
  double default_deadline_ms = 0.0;
  // Suggested client backoff reported with every shed rejection.
  double retry_after_ms = 5.0;
  // Watchdog: scan period, and how long a worker may stay busy on one batch
  // before it is declared hung (0 disables the watchdog).
  double watchdog_period_ms = 20.0;
  double hung_query_ms = 0.0;
  // Cap on replacement workers the watchdog may add beyond `workers`.
  int max_replacement_workers = 4;
};

// The `deepst serve` daemon core: a bounded MPMC queue in front of worker
// threads that drain it in coalesced cross-client batches, with admission
// control, end-to-end deadlines, a hung-worker watchdog, and graceful
// drain. In-process by design -- the CLI speaks a line protocol over stdin
// on top of it, tests and benches call Submit directly.
//
// Lifecycle: construct -> Start() -> Submit()... -> Shutdown(). Submissions
// before Start() queue up (deadlines ticking -- queue wait always counts);
// submissions after RequestDrain()/Shutdown() are rejected. Shutdown drains:
// admitted requests are finished or deadline-expired, never dropped.
class Server {
 public:
  Server(core::ServingContext* context, const ServeOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Spawns the worker and watchdog threads. Call once.
  void Start();

  // Admission. The returned future resolves when the request completes.
  // Sheds synchronously with a ready future carrying
  //  - ResourceExhausted("... retry after ...") when the queue is full,
  //  - FailedPrecondition when the server is draining.
  std::future<util::StatusOr<core::ServingResult>> Submit(
      core::ServingRequest request);

  // Blocking convenience: Submit + wait.
  util::StatusOr<core::ServingResult> Execute(core::ServingRequest request);

  // Stops admission; already-admitted requests keep executing.
  void RequestDrain();
  // RequestDrain + wait for the queue to empty and all threads to exit.
  // Idempotent; also run by the destructor.
  void Shutdown();

  bool draining() const;
  // Counter snapshot, with the model's transition-memo cache counters
  // filled into the cache_* fields (zeros when memoization is disabled).
  MetricsSnapshot snapshot() const;
  const ServeMetrics& metrics() const { return metrics_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  // One queued request: payload + completion promise + admission clock.
  struct Pending {
    core::ServingRequest request;
    std::promise<util::StatusOr<core::ServingResult>> promise;
    util::Stopwatch queued;     // running since admission
    double deadline_ms = 0.0;   // total end-to-end budget; 0 = none
  };
  // Per-worker liveness record for the watchdog. `busy_epoch` is even when
  // idle and odd while executing a batch; `busy_since_ms` timestamps the
  // current batch (monotonic clock).
  struct WorkerState {
    std::atomic<uint64_t> busy_epoch{0};
    std::atomic<int64_t> busy_since_ms{0};
    uint64_t punished_epoch = 0;  // watchdog-only bookkeeping
  };

  void WorkerLoop(WorkerState* state);
  void WatchdogLoop();
  void SpawnWorkerLocked();
  static int64_t NowMs();

  core::ServingContext* context_;
  const ServeOptions options_;
  BoundedQueue<std::unique_ptr<Pending>> queue_;
  ServeMetrics metrics_;

  mutable std::mutex threads_mu_;
  std::vector<std::thread> threads_;  // workers + replacements
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::thread watchdog_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_watchdog_{false};
};

}  // namespace serve
}  // namespace deepst

#endif  // DEEPST_SERVE_SERVER_H_
