#ifndef DEEPST_SERVE_QUEUE_H_
#define DEEPST_SERVE_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace deepst {
namespace serve {

// Bounded multi-producer multi-consumer queue, the daemon's admission point.
//
// Producers (client/ingress threads) call TryPush, which NEVER blocks: a
// full queue is an explicit shed decision surfaced to the caller, not a
// hidden stall -- bounded depth is what keeps queue wait (which counts
// against every query's deadline) bounded too.
//
// Consumers (worker threads) call PopBatch, which blocks for work and then
// lingers up to `window` for more, so one dequeue delivers up to max_batch
// requests coalesced from different producers. The linger only applies
// while the queue is open and underfull: a full batch, a closed queue, or
// an expired window all return immediately.
//
// Close() makes every later push fail while letting consumers drain what
// was already admitted -- the graceful-drain half of SIGTERM handling.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // False when the queue is full or closed (the item is returned untouched
  // in spirit: the caller still owns rejection handling).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Appends 1..max_batch items to *out. Returns false only when the queue
  // is closed AND empty (the consumer's exit signal).
  bool PopBatch(std::vector<T>* out, size_t max_batch,
                std::chrono::microseconds window) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    if (window.count() > 0 && items_.size() < max_batch && !closed_) {
      // Batch-forming linger: trade up to `window` of latency for a fuller
      // batch. Bounded, so a lone request is never held hostage.
      ready_.wait_for(lock, window, [this, max_batch] {
        return closed_ || items_.size() >= max_batch;
      });
    }
    const size_t take = items_.size() < max_batch ? items_.size() : max_batch;
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return true;
  }

  // Stops admission; consumers drain the remainder and then see false.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace deepst

#endif  // DEEPST_SERVE_QUEUE_H_
