#ifndef DEEPST_MAPMATCH_HMM_MATCHER_H_
#define DEEPST_MAPMATCH_HMM_MATCHER_H_

#include <vector>

#include "roadnet/shortest_path.h"
#include "roadnet/spatial_index.h"
#include "traj/types.h"
#include "util/status.h"

namespace deepst {
namespace mapmatch {

// Newson-Krumm (SIGSPATIAL 2009) HMM map matching, the algorithm the paper
// cites ([42]) for producing ground-truth routes from raw GPS.
//
// Emission: candidate segments within `candidate_radius_m` of each GPS
// point, log-probability -0.5 (d / sigma_gps)^2.
// Transition: |route_distance - great_circle_distance| penalized with an
// exponential of scale `beta_m`, where route distance is the network
// distance between consecutive candidates' projection points.
// Decoding: Viterbi; the matched segment sequence is stitched into a
// connected route with shortest paths.
struct MatcherConfig {
  double sigma_gps_m = 20.0;
  double beta_m = 80.0;
  double candidate_radius_m = 120.0;
  int max_candidates = 6;
  // Transitions implying a detour factor above this are pruned.
  double max_detour_factor = 6.0;
};

struct MatchResult {
  // Connected route covering the whole trajectory.
  traj::Route route;
  // Matched segment per input GPS point.
  std::vector<roadnet::SegmentId> point_segments;
  double log_likelihood = 0.0;
};

class HmmMapMatcher {
 public:
  HmmMapMatcher(const roadnet::RoadNetwork& net,
                const roadnet::SpatialIndex& index,
                const MatcherConfig& config = {});

  // Matches a trajectory; fails when some point has no candidates or no
  // connected state sequence exists.
  util::StatusOr<MatchResult> Match(const traj::GpsTrajectory& gps) const;

 private:
  const roadnet::RoadNetwork& net_;
  const roadnet::SpatialIndex& index_;
  MatcherConfig config_;
};

}  // namespace mapmatch
}  // namespace deepst

#endif  // DEEPST_MAPMATCH_HMM_MATCHER_H_
