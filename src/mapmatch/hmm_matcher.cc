#include "mapmatch/hmm_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace deepst {
namespace mapmatch {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

using roadnet::SegmentCandidate;
using roadnet::SegmentId;

}  // namespace

HmmMapMatcher::HmmMapMatcher(const roadnet::RoadNetwork& net,
                             const roadnet::SpatialIndex& index,
                             const MatcherConfig& config)
    : net_(net), index_(index), config_(config) {}

util::StatusOr<MatchResult> HmmMapMatcher::Match(
    const traj::GpsTrajectory& gps) const {
  if (gps.empty()) {
    return util::Status::InvalidArgument("empty trajectory");
  }
  const size_t n = gps.size();

  // Candidate generation.
  std::vector<std::vector<SegmentCandidate>> candidates(n);
  for (size_t i = 0; i < n; ++i) {
    candidates[i] =
        index_.SegmentsNear(gps[i].pos, config_.candidate_radius_m);
    if (candidates[i].empty()) {
      candidates[i] = index_.NearestSegments(gps[i].pos, 2);
    }
    if (static_cast<int>(candidates[i].size()) > config_.max_candidates) {
      candidates[i].resize(static_cast<size_t>(config_.max_candidates));
    }
    if (candidates[i].empty()) {
      return util::Status::NotFound("no candidate segments for point");
    }
  }

  auto emission = [&](size_t i, const SegmentCandidate& c) {
    const double d = c.projection.distance / config_.sigma_gps_m;
    return -0.5 * d * d;
  };

  // Viterbi.
  const auto length_cost = roadnet::LengthCost(net_);
  std::vector<std::vector<double>> dp(n);
  std::vector<std::vector<int>> back(n);
  dp[0].resize(candidates[0].size());
  back[0].assign(candidates[0].size(), -1);
  for (size_t c = 0; c < candidates[0].size(); ++c) {
    dp[0][c] = emission(0, candidates[0][c]);
  }
  for (size_t i = 1; i < n; ++i) {
    dp[i].assign(candidates[i].size(), kNegInf);
    back[i].assign(candidates[i].size(), -1);
    const double straight = gps[i - 1].pos.DistanceTo(gps[i].pos);
    // One shortest-path tree per previous candidate.
    for (size_t a = 0; a < candidates[i - 1].size(); ++a) {
      if (dp[i - 1][a] == kNegInf) continue;
      const SegmentCandidate& ca = candidates[i - 1][a];
      const auto tree = roadnet::ShortestPathTree(net_, ca.segment,
                                                  length_cost);
      for (size_t b = 0; b < candidates[i].size(); ++b) {
        const SegmentCandidate& cb = candidates[i][b];
        double route_dist;
        if (ca.segment == cb.segment) {
          route_dist =
              std::fabs(cb.projection.offset - ca.projection.offset);
        } else {
          const double total = tree[static_cast<size_t>(cb.segment)];
          if (!std::isfinite(total)) continue;
          // Tree distance counts the full length of both endpoint segments;
          // adjust to projection points.
          route_dist = total - ca.projection.offset -
                       (net_.segment(cb.segment).length_m -
                        cb.projection.offset);
          route_dist = std::max(route_dist, 0.0);
        }
        if (route_dist >
            config_.max_detour_factor * std::max(straight, 50.0)) {
          continue;
        }
        const double trans =
            -std::fabs(route_dist - straight) / config_.beta_m;
        const double score = dp[i - 1][a] + trans + emission(i, cb);
        if (score > dp[i][b]) {
          dp[i][b] = score;
          back[i][b] = static_cast<int>(a);
        }
      }
    }
    bool any = std::any_of(dp[i].begin(), dp[i].end(),
                           [](double v) { return v != kNegInf; });
    if (!any) {
      // HMM break (all transitions pruned, e.g. a GPS outlier or an
      // off-network detour): restart from emissions with a fixed penalty,
      // chaining to the best previous state so backtracking stays valid --
      // the stitching step will reconnect the route.
      size_t best_prev = 0;
      for (size_t a = 1; a < dp[i - 1].size(); ++a) {
        if (dp[i - 1][a] > dp[i - 1][best_prev]) best_prev = a;
      }
      constexpr double kBreakPenalty = -50.0;
      for (size_t b = 0; b < candidates[i].size(); ++b) {
        dp[i][b] = dp[i - 1][best_prev] + kBreakPenalty +
                   emission(i, candidates[i][b]);
        back[i][b] = static_cast<int>(best_prev);
      }
    }
  }

  // Backtrack.
  MatchResult result;
  result.point_segments.resize(n);
  size_t best = 0;
  for (size_t c = 1; c < dp[n - 1].size(); ++c) {
    if (dp[n - 1][c] > dp[n - 1][best]) best = c;
  }
  result.log_likelihood = dp[n - 1][best];
  int cur = static_cast<int>(best);
  for (size_t i = n; i-- > 0;) {
    result.point_segments[i] = candidates[i][static_cast<size_t>(cur)].segment;
    cur = back[i][static_cast<size_t>(cur)];
  }

  // Stitch matched segments into a connected route.
  result.route.push_back(result.point_segments[0]);
  for (size_t i = 1; i < n; ++i) {
    const SegmentId prev = result.route.back();
    const SegmentId next = result.point_segments[i];
    if (next == prev) continue;
    auto path = roadnet::ShortestPath(net_, prev, next, length_cost);
    if (!path.ok()) {
      return util::Status::NotFound("cannot stitch matched segments");
    }
    for (size_t j = 1; j < path.value().path.size(); ++j) {
      result.route.push_back(path.value().path[j]);
    }
  }
  return result;
}

}  // namespace mapmatch
}  // namespace deepst
