#include "recovery/strs.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "roadnet/shortest_path.h"

namespace deepst {
namespace recovery {

using roadnet::SegmentId;

StrsRecovery::StrsRecovery(const roadnet::RoadNetwork& net,
                           const roadnet::SpatialIndex& index,
                           const traj::SegmentStatsTable& stats,
                           SpatialScorer* scorer, const StrsConfig& config)
    : net_(net),
      index_(index),
      stats_(stats),
      scorer_(scorer),
      config_(config),
      scorer_name_(scorer->name()),
      anchor_matcher_(net, index, [] {
        // Sparse points: wide candidate radius, permissive detour bound.
        mapmatch::MatcherConfig mc;
        mc.candidate_radius_m = 200.0;
        mc.max_detour_factor = 10.0;
        return mc;
      }()) {
  DEEPST_CHECK_GE(config.num_candidates, 1);
}

double StrsRecovery::TemporalLogLik(const traj::Route& route,
                                    double travel_time_s) const {
  const double mean = stats_.RouteMeanTime(route);
  const double var = std::max(stats_.RouteTimeVariance(route), 1.0);
  const double d = travel_time_s - mean;
  return -0.5 * (std::log(2.0 * M_PI * var) + d * d / var);
}

util::StatusOr<traj::Route> StrsRecovery::RecoverGap(
    SegmentId a, SegmentId b, double travel_time_s,
    const traj::Route& prefix) const {
  if (a == b) return traj::Route{a};
  auto cost = [this](SegmentId s) {
    return std::max(stats_.MeanTime(s), 1e-3);
  };
  auto candidates = roadnet::KShortestPaths(net_, a, b,
                                            config_.num_candidates, cost);
  if (candidates.empty()) {
    return util::Status::NotFound("no candidate route between segments");
  }
  // One batched spatial-prior call per gap (DeepST warms the prefix once
  // and scores every candidate in a single padded batch).
  std::vector<traj::Route> paths;
  paths.reserve(candidates.size());
  for (auto& cand : candidates) paths.push_back(std::move(cand.path));
  const std::vector<double> priors = scorer_->LogPriorBatch(prefix, paths);
  double best_score = -std::numeric_limits<double>::infinity();
  const traj::Route* best = nullptr;
  for (size_t i = 0; i < paths.size(); ++i) {
    const double score = TemporalLogLik(paths[i], travel_time_s) +
                         config_.spatial_weight * priors[i];
    if (score > best_score) {
      best_score = score;
      best = &paths[i];
    }
  }
  DEEPST_CHECK(best != nullptr);
  return *best;
}

util::StatusOr<traj::Route> StrsRecovery::RecoverTrajectory(
    const traj::GpsTrajectory& sparse_gps, const geo::Point& destination,
    double start_time_s, util::Rng* rng) const {
  if (sparse_gps.size() < 2) {
    return util::Status::InvalidArgument("need at least two GPS points");
  }
  // Anchor points with HMM matching; fall back to nearest-segment snapping
  // when the HMM breaks (no connected state sequence).
  std::vector<SegmentId> anchors;
  auto matched = anchor_matcher_.Match(sparse_gps);
  if (matched.ok()) {
    anchors = std::move(matched).value().point_segments;
  } else {
    anchors.reserve(sparse_gps.size());
    for (const auto& p : sparse_gps) {
      const auto cand = index_.Nearest(p.pos);
      if (cand.segment == roadnet::kInvalidSegment) {
        return util::Status::NotFound("GPS point far from network");
      }
      anchors.push_back(cand.segment);
    }
  }

  core::RouteQuery query;
  query.destination = destination;
  query.start_time_s = start_time_s;
  query.origin = anchors.front();
  query.final_segment = anchors.back();
  scorer_->BeginTrajectory(query, rng);

  traj::Route route = {anchors.front()};
  for (size_t i = 0; i + 1 < anchors.size(); ++i) {
    const SegmentId from = route.back();
    const SegmentId to = anchors[i + 1];
    if (from == to) continue;
    const double gap_time =
        sparse_gps[i + 1].time_s - sparse_gps[i].time_s;
    auto recovered = RecoverGap(from, to, gap_time, route);
    if (!recovered.ok()) return recovered.status();
    const traj::Route& piece = recovered.value();
    for (size_t j = 1; j < piece.size(); ++j) route.push_back(piece[j]);
  }
  return route;
}

}  // namespace recovery
}  // namespace deepst
