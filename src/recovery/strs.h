#ifndef DEEPST_RECOVERY_STRS_H_
#define DEEPST_RECOVERY_STRS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/mmi.h"
#include "core/deepst_model.h"
#include "mapmatch/hmm_matcher.h"
#include "roadnet/spatial_index.h"
#include "traj/segment_stats.h"
#include "traj/types.h"
#include "util/status.h"

namespace deepst {
namespace recovery {

// Spatial inference module interface: log P(r), the spatial transition prior
// of a candidate gap route (paper Section V-C). STRS uses a Markov prior;
// substituting DeepST yields STRS+.
//
// BeginTrajectory is called once per trajectory with its query context
// (destination, start time); LogPrior is then called per gap with the
// already-recovered prefix and the candidate continuation -- this is what
// lets DeepST bring its sequential memory and destination/traffic context
// to bear, while the memoryless Markov prior ignores both.
class SpatialScorer {
 public:
  virtual ~SpatialScorer() = default;
  virtual std::string name() const = 0;
  virtual void BeginTrajectory(const core::RouteQuery& query,
                               util::Rng* rng) = 0;
  // candidate.front() equals prefix.back() when prefix is non-empty.
  virtual double LogPrior(const traj::Route& prefix,
                          const traj::Route& candidate) = 0;
  // Scores a whole candidate set for one gap. The default loops LogPrior;
  // scorers with a batched engine (DeepST) override it to share the prefix
  // warm-up and step all candidates at once.
  virtual std::vector<double> LogPriorBatch(
      const traj::Route& prefix, const std::vector<traj::Route>& candidates) {
    std::vector<double> priors;
    priors.reserve(candidates.size());
    for (const traj::Route& cand : candidates) {
      priors.push_back(LogPrior(prefix, cand));
    }
    return priors;
  }
};

// First-order Markov spatial prior (the STRS spatial module stand-in; see
// DESIGN.md substitution table).
class MarkovSpatialScorer : public SpatialScorer {
 public:
  explicit MarkovSpatialScorer(baselines::MarkovRouter* markov)
      : markov_(markov) {}
  std::string name() const override { return "markov"; }
  void BeginTrajectory(const core::RouteQuery& query,
                       util::Rng* rng) override {
    query_ = query;
    rng_ = rng;
  }
  double LogPrior(const traj::Route& prefix,
                  const traj::Route& candidate) override {
    (void)prefix;  // memoryless
    return markov_->ScoreRoute(query_, candidate, rng_);
  }

 private:
  baselines::MarkovRouter* markov_;
  core::RouteQuery query_;
  util::Rng* rng_ = nullptr;
};

// DeepST spatial prior (STRS+): candidates are scored as continuations of
// the recovered prefix under the trip's destination/traffic context.
class DeepStSpatialScorer : public SpatialScorer {
 public:
  explicit DeepStSpatialScorer(core::DeepSTModel* model) : model_(model) {}
  std::string name() const override { return "deepst"; }
  void BeginTrajectory(const core::RouteQuery& query,
                       util::Rng* rng) override {
    ctx_ = model_->MakeContext(query, rng);
  }
  double LogPrior(const traj::Route& prefix,
                  const traj::Route& candidate) override {
    return model_->ScoreContinuation(ctx_, prefix, candidate);
  }
  std::vector<double> LogPriorBatch(
      const traj::Route& prefix,
      const std::vector<traj::Route>& candidates) override {
    return model_->ScoreContinuations(ctx_, prefix, candidates);
  }

 private:
  core::DeepSTModel* model_;
  core::PredictionContext ctx_;
};

// STRS-style route recovery (paper Section V-C): between two observed
// points, enumerate candidate routes with Yen's k-shortest paths and pick
//   argmax_r  log P(t | r) + lambda * log P(r)
// where P(t|r) is Gaussian with mean/variance from historical per-segment
// travel-time statistics (the temporal inference module) and P(r) is the
// plugged-in spatial module.
struct StrsConfig {
  int num_candidates = 8;
  double spatial_weight = 1.0;  // lambda
};

class StrsRecovery {
 public:
  StrsRecovery(const roadnet::RoadNetwork& net,
               const roadnet::SpatialIndex& index,
               const traj::SegmentStatsTable& stats, SpatialScorer* scorer,
               const StrsConfig& config = {});

  // Recovers the route between segments a and b (inclusive) given the
  // observed travel time between them. `prefix` is the route recovered so
  // far (may be empty); the scorer must have been primed with
  // BeginTrajectory.
  util::StatusOr<traj::Route> RecoverGap(roadnet::SegmentId a,
                                         roadnet::SegmentId b,
                                         double travel_time_s,
                                         const traj::Route& prefix) const;

  // Recovers the full route underlying a sparse trajectory: anchors each GPS
  // point to a segment with HMM matching (direction-aware, unlike naive
  // nearest-segment snapping), recovers every gap with the
  // temporal+spatial-scored candidates, and stitches the results.
  // `destination` is the trip's rough destination coordinate (context for
  // STRS+), `start_time_s` the trip start.
  util::StatusOr<traj::Route> RecoverTrajectory(
      const traj::GpsTrajectory& sparse_gps, const geo::Point& destination,
      double start_time_s, util::Rng* rng) const;

  // Log of the temporal likelihood P(t | r).
  double TemporalLogLik(const traj::Route& route, double travel_time_s) const;

  const std::string& scorer_name() const { return scorer_name_; }

 private:
  const roadnet::RoadNetwork& net_;
  const roadnet::SpatialIndex& index_;
  const traj::SegmentStatsTable& stats_;
  SpatialScorer* scorer_;
  StrsConfig config_;
  std::string scorer_name_;
  mapmatch::HmmMapMatcher anchor_matcher_;
};

}  // namespace recovery
}  // namespace deepst

#endif  // DEEPST_RECOVERY_STRS_H_
