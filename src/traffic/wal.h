#ifndef DEEPST_TRAFFIC_WAL_H_
#define DEEPST_TRAFFIC_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "traffic/snapshot.h"
#include "util/status.h"

namespace deepst {
namespace traffic {

// Accounting of one WAL replay: what was recovered and what (if anything)
// was dropped at a torn tail. A torn tail is NOT an error -- it is the
// expected shape of a kill -9 mid-append -- so replay reports it here and
// Open truncates the file back to the last whole frame.
struct WalReplayReport {
  uint64_t frames = 0;        // whole frames recovered
  uint64_t rows = 0;          // observations recovered across those frames
  uint64_t file_bytes = 0;    // size of the file as found
  uint64_t valid_bytes = 0;   // header + whole-frame prefix that replayed
  uint64_t dropped_bytes = 0; // file_bytes - valid_bytes
  bool torn_tail = false;     // dropped_bytes > 0
  // First byte offset that failed to parse (== valid_bytes when torn).
  uint64_t torn_tail_offset = 0;
  // Time range of the recovered observations; min > max when none.
  double min_time_s = 0.0;
  double max_time_s = 0.0;
};

// Append-only, CRC32-framed write-ahead log for SpeedObservation records.
// Layout (all integers little-endian, as written by this host):
//
//   header (16 bytes): u32 magic 'TWAL' | u32 version 1 | u64 reserved 0
//   frame:  u32 payload_bytes | u32 crc32(payload) | payload
//   payload: u32 row_count | u32 reserved 0 | row_count x WalRow
//   WalRow (32 bytes): f64 time_s | f64 x | f64 y | f64 speed_mps
//
// Durability contract: Append writes one frame with a single write(2) call
// and returns only after the frame is in the kernel (ack-after-append);
// fsync is batched -- the log fsyncs when `fsync_interval_bytes` of unsynced
// frames accumulate, and Sync() forces the tail down (graceful shutdown
// calls it before drain). A crash can therefore lose at most the frames
// appended since the last fsync, and never corrupts frames before the tear:
// replay truncates at the first bad frame and reports the loss.
//
// Fault points (util::FaultInjector): "wal.append", "wal.fsync",
// "wal.replay". An injected append/fsync failure surfaces as a clean
// IoError with nothing acked; the file is still a valid log ending at the
// last whole frame.
//
// Not internally synchronized: one writer at a time (SnapshotStore
// serializes ingest through its own mutex).
class ObservationWal {
 public:
  struct Options {
    // Unsynced bytes that trigger an fsync at the end of an Append. 0 syncs
    // every append (maximum durability, one fsync per batch).
    int64_t fsync_interval_bytes = 1 << 20;
    // Frames claiming more rows than this fail frame validation; bounds the
    // allocation a corrupt length field can demand.
    uint32_t max_rows_per_frame = 1u << 20;
  };

  // Monotonic writer-side counters for stats surfaces.
  struct Stats {
    int64_t appended_frames = 0;
    int64_t appended_rows = 0;
    int64_t durable_bytes = 0;  // file size: header + whole frames
    int64_t fsyncs = 0;
  };

  ~ObservationWal();
  ObservationWal(const ObservationWal&) = delete;
  ObservationWal& operator=(const ObservationWal&) = delete;

  // Opens (creating if absent) the log at `path` for appending. An existing
  // log is replayed first: recovered observations are appended to
  // `replayed` (may be null) in append order, `report` (may be null) gets
  // the accounting, and a torn tail is truncated away so new frames start
  // on a whole-frame boundary. Fails with InvalidArgument when the file
  // exists but is not a WAL (bad magic/version -- probe chains rely on
  // this), IoError on filesystem trouble.
  static util::StatusOr<std::unique_ptr<ObservationWal>> Open(
      const std::string& path, const Options& options,
      std::vector<SpeedObservation>* replayed, WalReplayReport* report);

  // Appends one frame holding `rows` and returns once it is written (and
  // fsynced, when the batching threshold says so). Empty batches are
  // ignored. On error nothing is acked: a partially written frame is
  // indistinguishable from a crash and replay drops it.
  util::Status Append(const std::vector<SpeedObservation>& rows);

  // Forces the unsynced tail to stable storage.
  util::Status Sync();

  Stats stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  ObservationWal(std::string path, const Options& options, int fd,
                 int64_t size);

  std::string path_;
  Options options_;
  int fd_ = -1;
  int64_t unsynced_bytes_ = 0;
  Stats stats_;
};

// Replays the log at `path` without opening it for writing: recovered rows
// (append order) go to `rows`, accounting to `report` (either may be null).
// A torn tail replays OK (the report carries the loss); InvalidArgument on
// bad magic/version, IoError when unreadable. Fault point "wal.replay".
util::Status ReplayWalFile(const std::string& path,
                           std::vector<SpeedObservation>* rows,
                           WalReplayReport* report);

// Human-readable report for `deepst_cli inspect`: magic/version, frame and
// row counts, CRC/torn-tail status, byte accounting, and the recovered time
// range. Returns InvalidArgument (without reading further) when the magic
// is not a WAL's, so the CLI can probe file kinds in sequence. `healthy`
// (when given) is set false for logs with a torn or corrupt tail -- the
// recovered prefix is servable, but bytes were dropped.
util::StatusOr<std::string> DescribeWalFile(const std::string& path,
                                            bool* healthy = nullptr);

}  // namespace traffic
}  // namespace deepst

#endif  // DEEPST_TRAFFIC_WAL_H_
