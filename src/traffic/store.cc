#include "traffic/store.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace deepst {
namespace traffic {

SnapshotPin::SnapshotPin(SnapshotPin&& other) noexcept
    : store_(other.store_), snapshot_(std::move(other.snapshot_)) {
  other.store_ = nullptr;
  other.snapshot_.reset();
}

SnapshotPin& SnapshotPin::operator=(SnapshotPin&& other) noexcept {
  if (this != &other) {
    Release();
    store_ = other.store_;
    snapshot_ = std::move(other.snapshot_);
    other.store_ = nullptr;
    other.snapshot_.reset();
  }
  return *this;
}

SnapshotPin::~SnapshotPin() { Release(); }

void SnapshotPin::Release() {
  if (snapshot_ != nullptr && store_ != nullptr) {
    snapshot_.reset();  // may free a superseded generation right here
    store_->ReleasePin();
  }
  store_ = nullptr;
  snapshot_.reset();
}

SnapshotStore::SnapshotStore(std::unique_ptr<TrafficTensorCache> initial,
                             std::unique_ptr<ObservationWal> wal,
                             const SnapshotStoreConfig& config)
    : config_(config), wal_(std::move(wal)) {
  DEEPST_CHECK(initial != nullptr);
  auto snap = std::make_shared<TrafficSnapshot>();
  snap->generation = 1;
  snap->cache = std::shared_ptr<TrafficTensorCache>(std::move(initial));
  current_ = std::move(snap);
  published_at_ = std::chrono::steady_clock::now();
}

SnapshotStore::~SnapshotStore() { Stop(); }

util::Status SnapshotStore::Ingest(const std::vector<SpeedObservation>& rows,
                                   IngestReport* report) {
  IngestReport local;
  if (static_cast<int64_t>(rows.size()) > config_.max_rows_per_ingest) {
    return util::Status::InvalidArgument(util::StrFormat(
        "ingest batch of %zu rows exceeds the %lld-row cap", rows.size(),
        static_cast<long long>(config_.max_rows_per_ingest)));
  }
  std::vector<SpeedObservation> accepted;
  accepted.reserve(rows.size());
  for (const SpeedObservation& obs : rows) {
    const bool valid = std::isfinite(obs.pos.x) && std::isfinite(obs.pos.y) &&
                       std::isfinite(obs.time_s) && obs.time_s >= 0.0 &&
                       std::isfinite(obs.speed_mps) && obs.speed_mps >= 0.0;
    if (valid) {
      accepted.push_back(obs);
    } else {
      ++local.rejected;
    }
  }
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (!accepted.empty()) {
    if (wal_ != nullptr) {
      // The durability ack: a failed append queues nothing, so the caller
      // knows the batch was not made durable and can retry it whole.
      util::Status status = wal_->Append(accepted);
      if (!status.ok()) {
        rows_rejected_ += static_cast<int64_t>(rows.size());
        if (report != nullptr) {
          report->accepted = 0;
          report->rejected = static_cast<int64_t>(rows.size());
        }
        return status;
      }
    }
    local.accepted = static_cast<int64_t>(accepted.size());
    pending_.insert(pending_.end(), accepted.begin(), accepted.end());
  }
  rows_accepted_ += local.accepted;
  rows_rejected_ += local.rejected;
  if (report != nullptr) *report = local;
  return util::Status::Ok();
}

void SnapshotStore::QueueRecovered(std::vector<SpeedObservation> rows) {
  if (rows.empty()) return;
  std::lock_guard<std::mutex> lock(ingest_mu_);
  rows_accepted_ += static_cast<int64_t>(rows.size());
  if (pending_.empty()) {
    pending_ = std::move(rows);
  } else {
    pending_.insert(pending_.end(), rows.begin(), rows.end());
  }
}

uint64_t SnapshotStore::SwapNow() {
  // Serialize builders; a concurrent aggregator tick waits here and then
  // finds an empty pending queue.
  std::lock_guard<std::mutex> build_lock(build_mu_);
  std::vector<SpeedObservation> pending;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    pending.swap(pending_);
  }
  std::shared_ptr<const TrafficSnapshot> base;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    base = current_;
  }
  if (pending.empty()) return base->generation;

  // The fold runs on this thread against a private clone; readers keep
  // serving `base` untouched the whole time.
  auto next = std::make_shared<TrafficSnapshot>();
  next->generation = base->generation + 1;
  next->cache =
      std::shared_ptr<TrafficTensorCache>(base->cache->Clone().release());
  next->cache->AddObservations(pending);
  const uint64_t generation = next->generation;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    current_ = std::move(next);  // atomic publish; old gen lives while pinned
    published_at_ = std::chrono::steady_clock::now();
    ++swaps_;
  }
  if (on_swap_) on_swap_(generation);
  return generation;
}

void SnapshotStore::Start() {
  if (config_.swap_interval_ms <= 0.0 || started_) return;
  started_ = true;
  stop_ = false;
  aggregator_ = std::thread([this] { AggregatorLoop(); });
}

void SnapshotStore::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (aggregator_.joinable()) aggregator_.join();
  started_ = false;
}

void SnapshotStore::AggregatorLoop() {
  const auto period = std::chrono::microseconds(
      static_cast<int64_t>(config_.swap_interval_ms * 1000.0));
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lock, period, [this] { return stop_; })) return;
    lock.unlock();
    SwapNow();
    lock.lock();
  }
}

SnapshotPin SnapshotStore::Acquire() {
  std::lock_guard<std::mutex> lock(publish_mu_);
  ++pins_;
  pins_high_water_ = std::max(pins_high_water_, pins_);
  return SnapshotPin(this, current_);
}

void SnapshotStore::ReleasePin() {
  std::lock_guard<std::mutex> lock(publish_mu_);
  --pins_;
}

util::Status SnapshotStore::SyncWal() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (wal_ == nullptr) return util::Status::Ok();
  return wal_->Sync();
}

uint64_t SnapshotStore::generation() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return current_->generation;
}

SnapshotStoreStats SnapshotStore::stats() const {
  SnapshotStoreStats s;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    s.generation = current_->generation;
    s.swaps = swaps_;
    s.snapshot_age_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      published_at_)
            .count();
    s.pinned_readers = pins_;
    s.pinned_reader_high_water = pins_high_water_;
  }
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    s.rows_accepted = rows_accepted_;
    s.rows_rejected = rows_rejected_;
    s.rows_pending = static_cast<int64_t>(pending_.size());
    if (wal_ != nullptr) {
      const ObservationWal::Stats ws = wal_->stats();
      s.wal_bytes = ws.durable_bytes;
      s.wal_fsyncs = ws.fsyncs;
    }
  }
  return s;
}

}  // namespace traffic
}  // namespace deepst
