#include "traffic/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace deepst {
namespace traffic {

namespace {

constexpr uint32_t kWalMagic = 0x4C415754;  // "TWAL" little-endian
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderBytes = 16;
constexpr size_t kFrameHeaderBytes = 8;   // payload_bytes + crc
constexpr size_t kPayloadHeaderBytes = 8; // row_count + reserved
constexpr size_t kRowBytes = 32;          // 4 x f64

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutF64(std::string* out, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

double GetF64(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

std::string EncodeFrame(const std::vector<SpeedObservation>& rows) {
  std::string payload;
  payload.reserve(kPayloadHeaderBytes + rows.size() * kRowBytes);
  PutU32(&payload, static_cast<uint32_t>(rows.size()));
  PutU32(&payload, 0);  // reserved
  for (const SpeedObservation& obs : rows) {
    PutF64(&payload, obs.time_s);
    PutF64(&payload, obs.pos.x);
    PutF64(&payload, obs.pos.y);
    PutF64(&payload, obs.speed_mps);
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, util::Crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

// Parses the whole-frame prefix of `data` (which starts after the file
// header at `base_offset`). Stops at the first frame that is short, claims
// an impossible length, or fails its CRC -- the torn tail.
void ScanFrames(const std::string& data, uint64_t base_offset,
                uint32_t max_rows_per_frame,
                std::vector<SpeedObservation>* rows, WalReplayReport* report) {
  report->min_time_s = std::numeric_limits<double>::infinity();
  report->max_time_s = -std::numeric_limits<double>::infinity();
  size_t off = 0;
  while (true) {
    if (data.size() - off < kFrameHeaderBytes) break;
    const uint32_t payload_bytes = GetU32(data.data() + off);
    const uint32_t crc = GetU32(data.data() + off + 4);
    if (payload_bytes < kPayloadHeaderBytes ||
        (payload_bytes - kPayloadHeaderBytes) % kRowBytes != 0 ||
        (payload_bytes - kPayloadHeaderBytes) / kRowBytes >
            max_rows_per_frame) {
      break;  // corrupt length field
    }
    if (data.size() - off - kFrameHeaderBytes < payload_bytes) break;
    const char* payload = data.data() + off + kFrameHeaderBytes;
    if (util::Crc32(payload, payload_bytes) != crc) break;
    const uint32_t count = GetU32(payload);
    if (kPayloadHeaderBytes + static_cast<size_t>(count) * kRowBytes !=
        payload_bytes) {
      break;  // row count disagrees with the frame length
    }
    for (uint32_t i = 0; i < count; ++i) {
      const char* p = payload + kPayloadHeaderBytes + i * kRowBytes;
      SpeedObservation obs;
      obs.time_s = GetF64(p);
      obs.pos = geo::Point{GetF64(p + 8), GetF64(p + 16)};
      obs.speed_mps = GetF64(p + 24);
      if (rows != nullptr) rows->push_back(obs);
      if (std::isfinite(obs.time_s)) {
        report->min_time_s = std::min(report->min_time_s, obs.time_s);
        report->max_time_s = std::max(report->max_time_s, obs.time_s);
      }
      ++report->rows;
    }
    ++report->frames;
    off += kFrameHeaderBytes + payload_bytes;
  }
  report->valid_bytes = base_offset + off;
  report->dropped_bytes = report->file_bytes - report->valid_bytes;
  report->torn_tail = report->dropped_bytes > 0;
  report->torn_tail_offset = report->valid_bytes;
}

util::Status ReplayInternal(const std::string& path,
                            uint32_t max_rows_per_frame,
                            std::vector<SpeedObservation>* rows,
                            WalReplayReport* report) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("wal.replay"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return util::Status::IoError("cannot open " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return util::Status::IoError("read failed for " + path);
  report->file_bytes = data.size();
  if (data.size() < kHeaderBytes) {
    return util::Status::InvalidArgument(
        util::StrFormat("%s: %zu bytes, too short for a traffic WAL header",
                        path.c_str(), data.size()));
  }
  const uint32_t magic = GetU32(data.data());
  if (magic != kWalMagic) {
    return util::Status::InvalidArgument(
        util::StrFormat("%s: magic %08x is not a traffic WAL", path.c_str(),
                        magic));
  }
  const uint32_t version = GetU32(data.data() + 4);
  if (version != kWalVersion) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: unsupported traffic WAL version %u", path.c_str(), version));
  }
  ScanFrames(data.substr(kHeaderBytes), kHeaderBytes, max_rows_per_frame,
             rows, report);
  return util::Status::Ok();
}

util::Status WriteAll(int fd, const char* data, size_t n,
                      const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(util::StrFormat(
          "write failed for %s: %s", path.c_str(), std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  return util::Status::Ok();
}

}  // namespace

util::Status ReplayWalFile(const std::string& path,
                           std::vector<SpeedObservation>* rows,
                           WalReplayReport* report) {
  WalReplayReport local;
  util::Status status = ReplayInternal(
      path, ObservationWal::Options().max_rows_per_frame, rows, &local);
  if (report != nullptr) *report = local;
  return status;
}

ObservationWal::ObservationWal(std::string path, const Options& options,
                               int fd, int64_t size)
    : path_(std::move(path)), options_(options), fd_(fd) {
  stats_.durable_bytes = size;
}

ObservationWal::~ObservationWal() {
  if (fd_ >= 0) {
    if (unsynced_bytes_ > 0) ::fsync(fd_);
    ::close(fd_);
  }
}

util::StatusOr<std::unique_ptr<ObservationWal>> ObservationWal::Open(
    const std::string& path, const Options& options,
    std::vector<SpeedObservation>* replayed, WalReplayReport* report) {
  WalReplayReport local;
  bool fresh = false;
  {
    std::ifstream probe(path, std::ios::binary);
    fresh = !probe.is_open();
  }
  if (!fresh) {
    DEEPST_RETURN_IF_ERROR(ReplayInternal(path, options.max_rows_per_frame,
                                          replayed, &local));
  }
  if (report != nullptr) *report = local;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return util::Status::IoError(util::StrFormat(
        "cannot open %s for append: %s", path.c_str(),
        std::strerror(errno)));
  }
  int64_t size;
  if (fresh) {
    std::string header;
    PutU32(&header, kWalMagic);
    PutU32(&header, kWalVersion);
    PutF64(&header, 0.0);  // 8 reserved bytes
    util::Status status = WriteAll(fd, header.data(), header.size(), path);
    if (status.ok() && ::fsync(fd) != 0) {
      status = util::Status::IoError("fsync failed for " + path);
    }
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
    size = static_cast<int64_t>(header.size());
  } else {
    // Truncate a torn tail away so appends resume on a frame boundary.
    if (::ftruncate(fd, static_cast<off_t>(local.valid_bytes)) != 0) {
      ::close(fd);
      return util::Status::IoError(util::StrFormat(
          "ftruncate failed for %s: %s", path.c_str(),
          std::strerror(errno)));
    }
    size = static_cast<int64_t>(local.valid_bytes);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return util::Status::IoError("lseek failed for " + path);
  }
  return std::unique_ptr<ObservationWal>(
      new ObservationWal(path, options, fd, size));
}

util::Status ObservationWal::Append(const std::vector<SpeedObservation>& rows) {
  if (rows.empty()) return util::Status::Ok();
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("wal.append"));
  if (rows.size() > options_.max_rows_per_frame) {
    return util::Status::InvalidArgument(util::StrFormat(
        "ingest batch of %zu rows exceeds the %u-row frame cap", rows.size(),
        options_.max_rows_per_frame));
  }
  const std::string frame = EncodeFrame(rows);
  DEEPST_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size(), path_));
  stats_.appended_frames += 1;
  stats_.appended_rows += static_cast<int64_t>(rows.size());
  stats_.durable_bytes += static_cast<int64_t>(frame.size());
  unsynced_bytes_ += static_cast<int64_t>(frame.size());
  if (unsynced_bytes_ >= options_.fsync_interval_bytes) return Sync();
  return util::Status::Ok();
}

util::Status ObservationWal::Sync() {
  if (unsynced_bytes_ == 0) return util::Status::Ok();
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("wal.fsync"));
  if (::fsync(fd_) != 0) {
    return util::Status::IoError(util::StrFormat(
        "fsync failed for %s: %s", path_.c_str(), std::strerror(errno)));
  }
  unsynced_bytes_ = 0;
  stats_.fsyncs += 1;
  return util::Status::Ok();
}

util::StatusOr<std::string> DescribeWalFile(const std::string& path,
                                            bool* healthy) {
  WalReplayReport report;
  util::Status status = ReplayInternal(
      path, ObservationWal::Options().max_rows_per_frame, nullptr, &report);
  if (!status.ok()) return status;
  if (healthy != nullptr) *healthy = !report.torn_tail;
  std::string out = util::StrFormat(
      "traffic wal v%u: %llu frames, %llu observations, %llu bytes",
      kWalVersion, static_cast<unsigned long long>(report.frames),
      static_cast<unsigned long long>(report.rows),
      static_cast<unsigned long long>(report.file_bytes));
  if (report.rows > 0) {
    out += util::StrFormat(", t in [%.1f, %.1f] s", report.min_time_s,
                           report.max_time_s);
  }
  if (report.torn_tail) {
    out += util::StrFormat(
        ", TORN TAIL at offset %llu (%llu bytes dropped)",
        static_cast<unsigned long long>(report.torn_tail_offset),
        static_cast<unsigned long long>(report.dropped_bytes));
  } else {
    out += ", crc OK";
  }
  out += '\n';
  return out;
}

}  // namespace traffic
}  // namespace deepst
