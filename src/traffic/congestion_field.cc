#include "traffic/congestion_field.h"

#include <cmath>

namespace deepst {
namespace traffic {
namespace {

uint64_t Mix(uint64_t a, uint64_t b) {
  return a * 0x9e3779b97f4a7c15ULL + b * 0xd1342543de82ef95ULL + 0x1234567;
}

}  // namespace

CongestionField::CongestionField(const roadnet::RoadNetwork& net,
                                 const CongestionConfig& config)
    : net_(net), config_(config) {
  DEEPST_CHECK(net.finalized());
  util::Rng rng(config.seed);
  noise_salt_ = rng.NextUint64();
  const geo::BoundingBox& box = net.bounds();
  hotspot_centers_.reserve(static_cast<size_t>(config.num_hotspots));
  for (int h = 0; h < config.num_hotspots; ++h) {
    // Keep hotspots away from the map border so they affect real streets.
    hotspot_centers_.push_back(
        {box.min.x + box.Width() * rng.Uniform(0.15, 0.85),
         box.min.y + box.Height() * rng.Uniform(0.15, 0.85)});
  }
  segment_midpoints_.reserve(static_cast<size_t>(net.num_segments()));
  for (roadnet::SegmentId s = 0; s < net.num_segments(); ++s) {
    segment_midpoints_.push_back(net.SegmentMidpoint(s));
  }
}

geo::Point CongestionField::HotspotCenterOnDay(int hotspot, int day) const {
  const geo::Point& base =
      hotspot_centers_[static_cast<size_t>(hotspot)];
  const double drift = config_.daily_center_drift_m;
  if (drift <= 0.0) return base;
  const uint64_t kx = Mix(noise_salt_ ^ 0x77aa, Mix(
      static_cast<uint64_t>(hotspot) + 17, static_cast<uint64_t>(day) + 3));
  const uint64_t ky = Mix(noise_salt_ ^ 0x88bb, Mix(
      static_cast<uint64_t>(hotspot) + 23, static_cast<uint64_t>(day) + 5));
  return {base.x + drift * (2.0 * util::HashToUnit(kx) - 1.0),
          base.y + drift * (2.0 * util::HashToUnit(ky) - 1.0)};
}

double CongestionField::RushLevel(double time_s) const {
  const double tod = std::fmod(time_s, kSecondsPerDay);
  const double w2 = 2.0 * config_.peak_width_s * config_.peak_width_s;
  const double morning =
      std::exp(-(tod - config_.morning_peak_s) * (tod - config_.morning_peak_s) /
               w2);
  const double evening =
      std::exp(-(tod - config_.evening_peak_s) * (tod - config_.evening_peak_s) /
               w2);
  const double peak = std::max(morning, evening);
  return config_.base_rush_level + (1.0 - config_.base_rush_level) * peak;
}

double CongestionField::DailyAmplitude(int hotspot, int day) const {
  const double u = util::HashToUnit(
      Mix(noise_salt_, Mix(static_cast<uint64_t>(hotspot) + 11,
                           static_cast<uint64_t>(day) + 101)));
  const double v = config_.daily_variability;
  return config_.hotspot_amplitude * (1.0 - v + 2.0 * v * u);
}

double CongestionField::CongestionFactor(roadnet::SegmentId s,
                                         double time_s) const {
  const int day = static_cast<int>(time_s / kSecondsPerDay);
  const int slot = static_cast<int>(time_s / config_.slot_seconds);
  const double rush = RushLevel(time_s);

  const double two_r2 =
      2.0 * config_.hotspot_radius_m * config_.hotspot_radius_m;
  const geo::Point& mid = segment_midpoints_[static_cast<size_t>(s)];
  double extra = 0.0;
  for (int h = 0; h < config_.num_hotspots; ++h) {
    const geo::Point c = HotspotCenterOnDay(h, day);
    const double d2 = (mid.x - c.x) * (mid.x - c.x) +
                      (mid.y - c.y) * (mid.y - c.y);
    extra += DailyAmplitude(h, day) * std::exp(-d2 / two_r2);
  }
  extra *= rush;

  // Per-(segment, slot) incident.
  const uint64_t key =
      Mix(noise_salt_ ^ 0xabcdef, Mix(static_cast<uint64_t>(s) + 7,
                                      static_cast<uint64_t>(slot) + 13));
  if (util::HashToUnit(key) < config_.incident_prob) {
    extra += config_.incident_severity;
  }

  // Smooth noise, linearly interpolated between slot anchors so speeds do
  // not jump discontinuously within a slot.
  const double frac =
      std::fmod(time_s, config_.slot_seconds) / config_.slot_seconds;
  const uint64_t nk0 = Mix(noise_salt_ ^ 0x5555, Mix(
      static_cast<uint64_t>(s) + 3, static_cast<uint64_t>(slot) + 29));
  const uint64_t nk1 = Mix(noise_salt_ ^ 0x5555, Mix(
      static_cast<uint64_t>(s) + 3, static_cast<uint64_t>(slot) + 30));
  const double n0 = util::HashToUnit(nk0) - 0.5;
  const double n1 = util::HashToUnit(nk1) - 0.5;
  extra += 2.0 * config_.noise_level * ((1.0 - frac) * n0 + frac * n1);

  return std::max(1.0, 1.0 + extra);
}

double CongestionField::SpeedAt(roadnet::SegmentId s, double time_s) const {
  return net_.segment(s).speed_limit_mps / CongestionFactor(s, time_s);
}

double CongestionField::TravelTime(roadnet::SegmentId s,
                                   double time_s) const {
  return net_.segment(s).length_m / SpeedAt(s, time_s);
}

}  // namespace traffic
}  // namespace deepst
