#ifndef DEEPST_TRAFFIC_CONGESTION_FIELD_H_
#define DEEPST_TRAFFIC_CONGESTION_FIELD_H_

#include <vector>

#include "geo/point.h"
#include "roadnet/road_network.h"
#include "util/rng.h"

namespace deepst {
namespace traffic {

// Time is measured in seconds from the start of day 0; day d spans
// [d*86400, (d+1)*86400).
constexpr double kSecondsPerDay = 86400.0;

struct CongestionConfig {
  int num_hotspots = 5;
  double hotspot_radius_m = 600.0;
  double hotspot_amplitude = 6.0;  // peak extra congestion factor
  // Rush-hour profile: two Gaussians (seconds of day).
  double morning_peak_s = 8.0 * 3600;
  double evening_peak_s = 18.0 * 3600;
  double peak_width_s = 1.6 * 3600;
  double base_rush_level = 0.55;  // off-peak floor of the rush profile
  // Day-to-day variability of each hotspot's amplitude (uniform in
  // [1-v, 1+v]); this is what makes traffic *real-time* rather than
  // periodic -- the paper's critique of time-slot-invariant baselines.
  double daily_variability = 0.7;
  // Day-to-day drift of each hotspot's center (uniform in a square of this
  // half-width). With drift, *which* streets are congested changes daily, so
  // only the observed traffic tensor -- not the time of day -- reveals it.
  double daily_center_drift_m = 500.0;
  // Short-lived incidents: each (segment, 20-min slot) pair independently
  // suffers an extra slowdown with this probability.
  double incident_prob = 0.02;
  double incident_severity = 4.0;
  // Smooth per-(segment, slot) noise amplitude.
  double noise_level = 0.15;
  double slot_seconds = 1200.0;  // 20 minutes, as in the paper
  uint64_t seed = 7;
};

// Synthetic city-wide traffic state: a deterministic function
// congestion(segment, time) >= 1 composed of rush-hour profile, moving
// congestion hotspots with day-varying intensity, random incidents, and
// hashed noise. Substitutes for the real-time traffic implicitly present in
// the paper's probe-vehicle data (DESIGN.md, substitution table).
class CongestionField {
 public:
  CongestionField(const roadnet::RoadNetwork& net,
                  const CongestionConfig& config);

  // Congestion factor (>= 1): the segment currently takes `factor` times its
  // free-flow time.
  double CongestionFactor(roadnet::SegmentId s, double time_s) const;

  // Current speed (m/s) on the segment.
  double SpeedAt(roadnet::SegmentId s, double time_s) const;

  // Time to traverse the whole segment entering at `time_s`.
  double TravelTime(roadnet::SegmentId s, double time_s) const;

  // Rush-hour multiplier in [base_rush_level, ~1] for a given time of day.
  double RushLevel(double time_s) const;

  const std::vector<geo::Point>& hotspot_centers() const {
    return hotspot_centers_;
  }
  const CongestionConfig& config() const { return config_; }

  // Center of hotspot h on a given day (base center + daily drift).
  geo::Point HotspotCenterOnDay(int hotspot, int day) const;

 private:
  // Day-specific amplitude multiplier of hotspot h.
  double DailyAmplitude(int hotspot, int day) const;

  const roadnet::RoadNetwork& net_;
  CongestionConfig config_;
  std::vector<geo::Point> hotspot_centers_;
  // Cached per-segment midpoints (hotspot proximity is evaluated per query
  // because centers drift daily).
  std::vector<geo::Point> segment_midpoints_;
  uint64_t noise_salt_;
};

}  // namespace traffic
}  // namespace deepst

#endif  // DEEPST_TRAFFIC_CONGESTION_FIELD_H_
