#ifndef DEEPST_TRAFFIC_STORE_H_
#define DEEPST_TRAFFIC_STORE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "traffic/snapshot.h"
#include "traffic/wal.h"
#include "util/status.h"

namespace deepst {
namespace traffic {

// One published traffic generation: an immutable TrafficTensorCache plus
// its generation id. Lifetime is the shared_ptr's: the store holds one
// reference for the current generation and every pinned reader holds one,
// so a superseded generation is reclaimed exactly when its last pinned
// reader releases -- never under a live query.
struct TrafficSnapshot {
  uint64_t generation = 0;
  std::shared_ptr<TrafficTensorCache> cache;
};

// Per-ingest-batch accounting; rejected rows are counted, not batch-fatal.
struct IngestReport {
  int64_t accepted = 0;
  int64_t rejected = 0;
};

// Point-in-time counters for the serve stats surface.
struct SnapshotStoreStats {
  uint64_t generation = 0;       // currently published generation id
  int64_t swaps = 0;             // publishes since construction
  double snapshot_age_s = 0.0;   // wall seconds since the last publish
  int64_t rows_accepted = 0;
  int64_t rows_rejected = 0;
  int64_t rows_pending = 0;      // acked but not yet folded into a snapshot
  int64_t wal_bytes = 0;         // durable log size (0 without a WAL)
  int64_t wal_fsyncs = 0;
  int64_t pinned_readers = 0;    // pins currently held
  int64_t pinned_reader_high_water = 0;
};

class SnapshotStore;

// RAII pin of one generation, acquired at query admission and held for the
// whole query. The pinned cache is immutable, so every tensor the query
// reads comes from the same generation no matter how many swaps land while
// it runs -- the epoch-pinning determinism contract.
class SnapshotPin {
 public:
  SnapshotPin() = default;
  SnapshotPin(SnapshotPin&& other) noexcept;
  SnapshotPin& operator=(SnapshotPin&& other) noexcept;
  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;
  ~SnapshotPin();

  explicit operator bool() const { return snapshot_ != nullptr; }
  uint64_t generation() const {
    return snapshot_ != nullptr ? snapshot_->generation : 0;
  }
  TrafficTensorCache* cache() const {
    return snapshot_ != nullptr ? snapshot_->cache.get() : nullptr;
  }

  void Release();

 private:
  friend class SnapshotStore;
  SnapshotPin(SnapshotStore* store,
              std::shared_ptr<const TrafficSnapshot> snapshot)
      : store_(store), snapshot_(std::move(snapshot)) {}

  SnapshotStore* store_ = nullptr;
  std::shared_ptr<const TrafficSnapshot> snapshot_;
};

struct SnapshotStoreConfig {
  // Background aggregator cadence; <= 0 disables the thread (swaps happen
  // only via SwapNow, e.g. the serve `swap` command).
  double swap_interval_ms = 0.0;
  // Per-batch row cap (also bounds the WAL frame size).
  int64_t max_rows_per_ingest = 1 << 20;
};

// Generation-counted, double-buffered publisher of TrafficTensorCache
// snapshots. Ingest validates rows, appends them to the WAL (the ack
// point), and queues them as pending; a swap -- background aggregator tick
// or explicit SwapNow -- folds the pending rows into a Clone() of the
// current generation off-thread and publishes the clone with an atomic
// shared_ptr store. Readers never block on the builder and the builder
// never mutates a published cache. Bitwise determinism across restarts
// follows from the cache's deterministic-fold contract: WAL replay feeds
// the same rows in the same order, so any partitioning into swaps rebuilds
// byte-identical tensors.
class SnapshotStore {
 public:
  // `initial` becomes generation 1. `wal` (may be null) receives every
  // accepted ingest batch before it is acked.
  SnapshotStore(std::unique_ptr<TrafficTensorCache> initial,
                std::unique_ptr<ObservationWal> wal,
                const SnapshotStoreConfig& config = {});
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // Invoked after every publish (the serve daemon bumps the model's
  // TransitionMemoCache epoch here, so memoized logits never cross a
  // snapshot boundary). Set before Start / the first swap.
  void set_on_swap(std::function<void(uint64_t generation)> fn) {
    on_swap_ = std::move(fn);
  }

  // Validates `rows` (finite fields, non-negative time and speed; bad rows
  // are counted rejected and dropped), appends the accepted rows to the WAL
  // and queues them for the next swap. Returns only after the WAL append --
  // an OK status IS the durability ack. A WAL failure queues nothing.
  util::Status Ingest(const std::vector<SpeedObservation>& rows,
                      IngestReport* report = nullptr);

  // Queues rows replayed from the WAL at startup without re-appending them.
  // Call before Start(), then SwapNow() to fold them into generation 2.
  void QueueRecovered(std::vector<SpeedObservation> rows);

  // Folds all pending rows into the next generation and publishes it,
  // synchronously on the calling thread. No-op (returns the current
  // generation) when nothing is pending. Safe against a concurrent
  // aggregator tick: builds are serialized, publishes are atomic.
  uint64_t SwapNow();

  // Starts / stops the background aggregator (no-op when the configured
  // cadence disables it). Stop is idempotent and runs in the destructor.
  void Start();
  void Stop();

  // Pins the current generation for a reader (see SnapshotPin).
  SnapshotPin Acquire();

  // Forces the WAL tail to stable storage (graceful-shutdown path); OK when
  // no WAL is attached.
  util::Status SyncWal();

  SnapshotStoreStats stats() const;
  uint64_t generation() const;

 private:
  friend class SnapshotPin;
  void ReleasePin();
  void AggregatorLoop();

  const SnapshotStoreConfig config_;
  std::function<void(uint64_t)> on_swap_;

  // Ingest path: serializes WAL appends and guards the pending queue.
  mutable std::mutex ingest_mu_;
  std::unique_ptr<ObservationWal> wal_;
  std::vector<SpeedObservation> pending_;

  // Builder path: serializes clone+fold so concurrent SwapNow calls (CLI
  // `swap` vs. aggregator tick) cannot interleave generations.
  std::mutex build_mu_;

  // Publication: guards the current-snapshot pointer and publish clock.
  mutable std::mutex publish_mu_;
  std::shared_ptr<const TrafficSnapshot> current_;
  std::chrono::steady_clock::time_point published_at_;

  // Counters (guarded by the mutex of the path that writes them; stats()
  // takes all three locks briefly).
  int64_t swaps_ = 0;
  int64_t rows_accepted_ = 0;
  int64_t rows_rejected_ = 0;
  int64_t pins_ = 0;
  int64_t pins_high_water_ = 0;

  std::thread aggregator_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool started_ = false;
};

}  // namespace traffic
}  // namespace deepst

#endif  // DEEPST_TRAFFIC_STORE_H_
