#ifndef DEEPST_TRAFFIC_OVERLAY_H_
#define DEEPST_TRAFFIC_OVERLAY_H_

#include <string>
#include <vector>

#include "geo/grid.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace deepst {
namespace traffic {

// One counterfactual edit of a traffic tensor, over an axis-aligned world-
// coordinate region (clamped to the grid).
struct OverlayEdit {
  enum class Kind {
    // Cells read as blocked: speed channel forced to 0 with full
    // observation confidence (count channel 1), so the encoder sees
    // "observed, nothing moves" rather than "unobserved".
    kCloseCells,
    // Speed channel multiplied by `factor` (clamped to the builder's [0, 2]
    // normalized range); counts untouched.
    kScaleSpeed,
  };
  Kind kind = Kind::kCloseCells;
  geo::Point min;
  geo::Point max;
  double factor = 1.0;  // kScaleSpeed only
};

// A what-if scenario: edits applied in order to a COPY of a pinned
// snapshot's tensor. The base generation is never mutated, so concurrent
// queries against the same snapshot are unaffected and the scenario is a
// pure deterministic function of (snapshot bytes, overlay).
struct TrafficOverlay {
  std::vector<OverlayEdit> edits;
  bool empty() const { return edits.empty(); }
};

// Validates edit geometry and factors (finite, min <= max, factor in
// (0, 10]). InvalidArgument names the offending edit.
util::Status ValidateOverlay(const TrafficOverlay& overlay);

// Applies `overlay` to a copy of `base` (a [2, rows, cols] traffic tensor on
// `grid`) and returns the edited copy; `base` is untouched.
nn::Tensor ApplyOverlay(const nn::Tensor& base, const geo::GridSpec& grid,
                        const TrafficOverlay& overlay);

// Parses the compact overlay grammar shared by the CLI flag and the serve
// line protocol (no whitespace): edits joined by ';', each either
//   close@x0,y0,x1,y1
//   scale@x0,y0,x1,y1*factor
// e.g. "close@10,10,350,350;scale@0,0,2000,2000*0.7".
util::StatusOr<TrafficOverlay> ParseOverlaySpec(const std::string& spec);

}  // namespace traffic
}  // namespace deepst

#endif  // DEEPST_TRAFFIC_OVERLAY_H_
