#include "traffic/overlay.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.h"
#include "util/string_util.h"

namespace deepst {
namespace traffic {

namespace {

constexpr double kMaxScaleFactor = 10.0;

util::StatusOr<double> ParseNumber(const std::string& text,
                                   const std::string& what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v)) {
    return util::Status::InvalidArgument(
        util::StrFormat("overlay %s '%s' is not a finite number",
                        what.c_str(), text.c_str()));
  }
  return v;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

util::Status ValidateOverlay(const TrafficOverlay& overlay) {
  for (size_t i = 0; i < overlay.edits.size(); ++i) {
    const OverlayEdit& e = overlay.edits[i];
    if (!std::isfinite(e.min.x) || !std::isfinite(e.min.y) ||
        !std::isfinite(e.max.x) || !std::isfinite(e.max.y)) {
      return util::Status::InvalidArgument(
          util::StrFormat("overlay edit %zu: region is not finite", i));
    }
    if (e.min.x > e.max.x || e.min.y > e.max.y) {
      return util::Status::InvalidArgument(util::StrFormat(
          "overlay edit %zu: region min (%.1f, %.1f) exceeds max (%.1f, "
          "%.1f)",
          i, e.min.x, e.min.y, e.max.x, e.max.y));
    }
    if (e.kind == OverlayEdit::Kind::kScaleSpeed &&
        (!std::isfinite(e.factor) || e.factor <= 0.0 ||
         e.factor > kMaxScaleFactor)) {
      return util::Status::InvalidArgument(util::StrFormat(
          "overlay edit %zu: scale factor %f outside (0, %.0f]", i, e.factor,
          kMaxScaleFactor));
    }
  }
  return util::Status::Ok();
}

nn::Tensor ApplyOverlay(const nn::Tensor& base, const geo::GridSpec& grid,
                        const TrafficOverlay& overlay) {
  const int rows = grid.rows();
  const int cols = grid.cols();
  DEEPST_CHECK_EQ(base.numel(), static_cast<int64_t>(2) * rows * cols);
  nn::Tensor out = base;  // deep copy; the pinned base is never mutated
  float* speed = out.data();
  float* count = out.data() + static_cast<int64_t>(rows) * cols;
  for (const OverlayEdit& e : overlay.edits) {
    // RowOf/ColOf clamp, so a region partly (or fully) outside the grid
    // degenerates to its clamped cell range.
    const int r0 = std::min(grid.RowOf(e.min), grid.RowOf(e.max));
    const int r1 = std::max(grid.RowOf(e.min), grid.RowOf(e.max));
    const int c0 = std::min(grid.ColOf(e.min), grid.ColOf(e.max));
    const int c1 = std::max(grid.ColOf(e.min), grid.ColOf(e.max));
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        const int64_t i = static_cast<int64_t>(r) * cols + c;
        if (e.kind == OverlayEdit::Kind::kCloseCells) {
          speed[i] = 0.0f;
          count[i] = 1.0f;
        } else {
          // Stay inside the builder's normalized speed range [0, 2].
          speed[i] = std::min(
              2.0f, speed[i] * static_cast<float>(e.factor));
        }
      }
    }
  }
  return out;
}

util::StatusOr<TrafficOverlay> ParseOverlaySpec(const std::string& spec) {
  if (spec.empty()) {
    return util::Status::InvalidArgument("overlay spec is empty");
  }
  TrafficOverlay overlay;
  for (const std::string& part : SplitOn(spec, ';')) {
    const size_t at = part.find('@');
    if (at == std::string::npos) {
      return util::Status::InvalidArgument(util::StrFormat(
          "overlay edit '%s' has no '@' (expected kind@x0,y0,x1,y1)",
          part.c_str()));
    }
    const std::string kind = part.substr(0, at);
    std::string args = part.substr(at + 1);
    OverlayEdit edit;
    if (kind == "close") {
      edit.kind = OverlayEdit::Kind::kCloseCells;
    } else if (kind == "scale") {
      edit.kind = OverlayEdit::Kind::kScaleSpeed;
      const size_t star = args.find('*');
      if (star == std::string::npos) {
        return util::Status::InvalidArgument(util::StrFormat(
            "overlay edit '%s' is missing '*factor'", part.c_str()));
      }
      util::StatusOr<double> factor =
          ParseNumber(args.substr(star + 1), "factor");
      if (!factor.ok()) return factor.status();
      edit.factor = factor.value();
      args = args.substr(0, star);
    } else {
      return util::Status::InvalidArgument(util::StrFormat(
          "overlay kind '%s' is not close|scale", kind.c_str()));
    }
    const std::vector<std::string> coords = SplitOn(args, ',');
    if (coords.size() != 4) {
      return util::Status::InvalidArgument(util::StrFormat(
          "overlay edit '%s': expected 4 coordinates, got %zu", part.c_str(),
          coords.size()));
    }
    double v[4];
    for (int i = 0; i < 4; ++i) {
      util::StatusOr<double> parsed = ParseNumber(coords[i], "coordinate");
      if (!parsed.ok()) return parsed.status();
      v[i] = parsed.value();
    }
    edit.min = geo::Point{v[0], v[1]};
    edit.max = geo::Point{v[2], v[3]};
    overlay.edits.push_back(edit);
  }
  DEEPST_RETURN_IF_ERROR(ValidateOverlay(overlay));
  return overlay;
}

}  // namespace traffic
}  // namespace deepst
