#include "traffic/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <utility>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace deepst {
namespace traffic {

TrafficTensorBuilder::TrafficTensorBuilder(const geo::GridSpec& grid,
                                           double speed_norm_mps,
                                           int count_cap)
    : grid_(grid), speed_norm_mps_(speed_norm_mps), count_cap_(count_cap) {
  DEEPST_CHECK_GT(speed_norm_mps, 0.0);
  DEEPST_CHECK_GT(count_cap, 0);
}

nn::Tensor TrafficTensorBuilder::Build(
    const std::vector<SpeedObservation>& observations) const {
  const int rows = grid_.rows();
  const int cols = grid_.cols();
  std::vector<double> speed_sum(static_cast<size_t>(rows * cols), 0.0);
  std::vector<int> count(static_cast<size_t>(rows * cols), 0);
  for (const auto& obs : observations) {
    const int cell = grid_.CellOf(obs.pos);
    speed_sum[static_cast<size_t>(cell)] += obs.speed_mps;
    ++count[static_cast<size_t>(cell)];
  }
  nn::Tensor out = nn::Tensor::Zeros({2, rows, cols});
  const double count_norm = std::log1p(static_cast<double>(count_cap_));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const size_t i = static_cast<size_t>(r * cols + c);
      if (count[i] > 0) {
        const double avg = speed_sum[i] / count[i];
        out[r * cols + c] =
            static_cast<float>(std::min(avg / speed_norm_mps_, 2.0));
        out[rows * cols + r * cols + c] = static_cast<float>(
            std::min(std::log1p(static_cast<double>(count[i])) / count_norm,
                     1.0));
      }
    }
  }
  return out;
}

TrafficTensorCache::TrafficTensorCache(const geo::GridSpec& grid,
                                       double slot_seconds,
                                       double window_seconds,
                                       double speed_norm_mps,
                                       int target_shards)
    : builder_(grid, speed_norm_mps),
      slot_seconds_(slot_seconds),
      window_seconds_(window_seconds),
      router_(grid, target_shards),
      shards_(static_cast<size_t>(router_.num_shards())) {
  DEEPST_CHECK_GT(slot_seconds, 0.0);
  DEEPST_CHECK_GT(window_seconds, 0.0);
}

TrafficTensorCache::TrafficTensorCache(const TrafficTensorCache& other,
                                       CloneTag)
    : builder_(other.builder_),
      slot_seconds_(other.slot_seconds_),
      window_seconds_(other.window_seconds_),
      router_(other.router_),
      shards_(other.shards_),
      latest_time_(other.latest_time_) {}

std::unique_ptr<TrafficTensorCache> TrafficTensorCache::Clone() const {
  return std::unique_ptr<TrafficTensorCache>(
      new TrafficTensorCache(*this, CloneTag{}));
}

void TrafficTensorCache::AddObservations(
    const std::vector<SpeedObservation>& observations) {
  if (observations.empty()) return;
  // Route every observation to (shard, slot), then stable-sort the keys so
  // each touched bucket gets one reserve and one contiguous append.
  // Stability keeps arrival order inside a bucket -- the accumulation order
  // the tensors are built in.
  std::vector<std::pair<uint64_t, uint32_t>> keyed;
  keyed.reserve(observations.size());
  for (uint32_t i = 0; i < observations.size(); ++i) {
    const auto& obs = observations[i];
    const uint64_t shard =
        static_cast<uint64_t>(router_.ShardOf(obs.pos));
    // Order-preserving mapping of the (possibly negative) slot index.
    const uint32_t slot_key =
        static_cast<uint32_t>(SlotOf(obs.time_s)) ^ 0x80000000u;
    keyed.emplace_back((shard << 32) | slot_key, i);
    latest_time_ = std::max(latest_time_, obs.time_s);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const std::pair<uint64_t, uint32_t>& a,
                      const std::pair<uint64_t, uint32_t>& b) {
                     return a.first < b.first;
                   });
  size_t i = 0;
  while (i < keyed.size()) {
    size_t j = i;
    while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
    const int shard = static_cast<int>(keyed[i].first >> 32);
    const int slot = SlotOf(observations[keyed[i].second].time_s);
    auto& buckets = shards_[static_cast<size_t>(shard)].buckets;
    auto it = std::lower_bound(
        buckets.begin(), buckets.end(), slot,
        [](const SlotBucket& b, int s) { return b.slot < s; });
    if (it == buckets.end() || it->slot != slot) {
      it = buckets.insert(it, SlotBucket{slot, {}});
    }
    it->obs.reserve(it->obs.size() + (j - i));
    for (size_t k = i; k < j; ++k) {
      it->obs.push_back(observations[keyed[k].second]);
    }
    i = j;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
}

template <typename Fn>
void TrafficTensorCache::ForEachInWindow(double window_start,
                                         double window_end, Fn&& fn) const {
  const int first_slot = SlotOf(std::max(0.0, window_start));
  const int last_slot = SlotOf(window_end);
  for (const Shard& shard : shards_) {
    auto it = std::lower_bound(
        shard.buckets.begin(), shard.buckets.end(), first_slot,
        [](const SlotBucket& b, int s) { return b.slot < s; });
    for (; it != shard.buckets.end() && it->slot <= last_slot; ++it) {
      for (const auto& obs : it->obs) {
        if (obs.time_s >= window_start && obs.time_s < window_end) fn(obs);
      }
    }
  }
}

bool TrafficTensorCache::HasObservations(double time_s) const {
  // Mirror of the window logic in TensorForTime: [slot_start - window,
  // slot_start) over the slot containing time_s.
  const int slot = SlotOf(time_s);
  const double slot_start = slot * slot_seconds_;
  const double window_start = slot_start - window_seconds_;
  bool found = false;
  ForEachInWindow(window_start, slot_start,
                  [&](const SpeedObservation&) { found = true; });
  return found;
}

const nn::Tensor& TrafficTensorCache::TensorForTime(double time_s) {
  const int slot = SlotOf(time_s);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(slot);
    if (it != cache_.end()) return it->second;
  }
  // Build outside the lock (the expensive part); concurrent builders of the
  // same slot produce identical tensors and the first insert wins.
  // Window [slot_start - window, slot_start).
  const double slot_start = slot * slot_seconds_;
  const double window_start = slot_start - window_seconds_;
  std::vector<SpeedObservation> window_obs;
  ForEachInWindow(window_start, slot_start, [&](const SpeedObservation& obs) {
    window_obs.push_back(obs);
  });
  nn::Tensor built = builder_.Build(window_obs);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto [pos, inserted] = cache_.emplace(slot, std::move(built));
  (void)inserted;  // A racing builder may have inserted the same content.
  return pos->second;
}

util::StatusOr<std::vector<SpeedObservation>> LoadObservationsCsv(
    const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("traffic.load"));
  std::ifstream in(path);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  std::vector<SpeedObservation> observations;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("trip_id", 0) == 0) continue;  // header
    std::istringstream row(line);
    std::string field;
    double values[4];
    // Field 0 is trip_id (ignored); fields 1..4 are time_s, x, y, speed_mps.
    if (!std::getline(row, field, ',')) {
      return util::Status::InvalidArgument(
          util::StrFormat("%s:%d: empty row", path.c_str(), line_no));
    }
    for (int f = 0; f < 4; ++f) {
      if (!std::getline(row, field, ',')) {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s:%d: expected 5 fields", path.c_str(), line_no));
      }
      char* end = nullptr;
      values[f] = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0' ||
          !std::isfinite(values[f])) {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s:%d: non-numeric field '%s'", path.c_str(), line_no,
            field.c_str()));
      }
    }
    if (std::getline(row, field, ',')) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s:%d: expected 5 fields, got more", path.c_str(), line_no));
    }
    if (values[0] < 0.0 || values[3] < 0.0) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s:%d: negative time or speed", path.c_str(), line_no));
    }
    SpeedObservation obs;
    obs.time_s = values[0];
    obs.pos = geo::Point{values[1], values[2]};
    obs.speed_mps = values[3];
    observations.push_back(obs);
  }
  return observations;
}

}  // namespace traffic
}  // namespace deepst
