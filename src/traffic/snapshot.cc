#include "traffic/snapshot.h"

#include <cmath>

#include "util/check.h"

namespace deepst {
namespace traffic {

TrafficTensorBuilder::TrafficTensorBuilder(const geo::GridSpec& grid,
                                           double speed_norm_mps,
                                           int count_cap)
    : grid_(grid), speed_norm_mps_(speed_norm_mps), count_cap_(count_cap) {
  DEEPST_CHECK_GT(speed_norm_mps, 0.0);
  DEEPST_CHECK_GT(count_cap, 0);
}

nn::Tensor TrafficTensorBuilder::Build(
    const std::vector<SpeedObservation>& observations) const {
  const int rows = grid_.rows();
  const int cols = grid_.cols();
  std::vector<double> speed_sum(static_cast<size_t>(rows * cols), 0.0);
  std::vector<int> count(static_cast<size_t>(rows * cols), 0);
  for (const auto& obs : observations) {
    const int cell = grid_.CellOf(obs.pos);
    speed_sum[static_cast<size_t>(cell)] += obs.speed_mps;
    ++count[static_cast<size_t>(cell)];
  }
  nn::Tensor out = nn::Tensor::Zeros({2, rows, cols});
  const double count_norm = std::log1p(static_cast<double>(count_cap_));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const size_t i = static_cast<size_t>(r * cols + c);
      if (count[i] > 0) {
        const double avg = speed_sum[i] / count[i];
        out[r * cols + c] =
            static_cast<float>(std::min(avg / speed_norm_mps_, 2.0));
        out[rows * cols + r * cols + c] = static_cast<float>(
            std::min(std::log1p(static_cast<double>(count[i])) / count_norm,
                     1.0));
      }
    }
  }
  return out;
}

TrafficTensorCache::TrafficTensorCache(const geo::GridSpec& grid,
                                       double slot_seconds,
                                       double window_seconds,
                                       double speed_norm_mps)
    : builder_(grid, speed_norm_mps),
      slot_seconds_(slot_seconds),
      window_seconds_(window_seconds) {
  DEEPST_CHECK_GT(slot_seconds, 0.0);
  DEEPST_CHECK_GT(window_seconds, 0.0);
}

void TrafficTensorCache::AddObservations(
    const std::vector<SpeedObservation>& observations) {
  for (const auto& obs : observations) {
    by_slot_[SlotOf(obs.time_s)].push_back(obs);
  }
  cache_.clear();
}

const nn::Tensor& TrafficTensorCache::TensorForTime(double time_s) {
  const int slot = SlotOf(time_s);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(slot);
    if (it != cache_.end()) return it->second;
  }
  // Build outside the lock (the expensive part); concurrent builders of the
  // same slot produce identical tensors and the first insert wins.
  // Window [slot_start - window, slot_start).
  const double slot_start = slot * slot_seconds_;
  const double window_start = slot_start - window_seconds_;
  std::vector<SpeedObservation> window_obs;
  const int first_slot = SlotOf(std::max(0.0, window_start));
  for (int k = first_slot; k <= slot; ++k) {
    auto bucket = by_slot_.find(k);
    if (bucket == by_slot_.end()) continue;
    for (const auto& obs : bucket->second) {
      if (obs.time_s >= window_start && obs.time_s < slot_start) {
        window_obs.push_back(obs);
      }
    }
  }
  nn::Tensor built = builder_.Build(window_obs);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto [pos, inserted] = cache_.emplace(slot, std::move(built));
  (void)inserted;  // A racing builder may have inserted the same content.
  return pos->second;
}

}  // namespace traffic
}  // namespace deepst
