#ifndef DEEPST_TRAFFIC_SNAPSHOT_H_
#define DEEPST_TRAFFIC_SNAPSHOT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "geo/grid.h"
#include "geo/tile_router.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace deepst {
namespace traffic {

// One probe-vehicle speed observation (a GPS sample with derived speed).
struct SpeedObservation {
  geo::Point pos;
  double time_s = 0.0;
  double speed_mps = 0.0;
};

// Builds the paper's raw traffic representation C: the space is partitioned
// into cells and the average observed vehicle speed per cell is computed
// from the (sub-)trajectories in the window [T.s - delta, T.s) (Section
// IV-D). The tensor has 2 channels:
//   channel 0: average speed in the cell, normalized by `speed_norm_mps`
//   channel 1: saturating observation count, log1p(count) / log1p(cap)
// Channel 1 lets the CNN distinguish "free-flowing" from "unobserved" cells,
// addressing the sensitivity to vehicle spatial distribution the paper
// raises as the motivation for the CNN encoder.
class TrafficTensorBuilder {
 public:
  TrafficTensorBuilder(const geo::GridSpec& grid, double speed_norm_mps = 20.0,
                       int count_cap = 50);

  // Builds the [2, rows, cols] tensor from the given observations.
  nn::Tensor Build(const std::vector<SpeedObservation>& observations) const;

  const geo::GridSpec& grid() const { return grid_; }

 private:
  geo::GridSpec grid_;
  double speed_norm_mps_;
  int count_cap_;
};

// Caches one traffic tensor per time slot, shared by every trip whose start
// time falls into the slot (paper Section IV-D: "discretize the temporal
// dimension into slots and let the trips whose start times fall into the
// same slot share one C"). Observations must be added before querying.
// Observation storage is sharded by region tile (geo::TileRouter over the
// traffic grid): each shard holds a flat vector of slot buckets sorted by
// slot index, looked up by binary search. Ingestion routes every observation
// to its tile's shard -- shard-affine routing -- and bulk-reserves each
// touched bucket once. Because a grid cell belongs to exactly one tile, the
// per-cell accumulation order (and hence every tensor, bit for bit) is
// independent of the sharding.
//
// Thread-safety contract: AddObservations is the only mutator and must not
// run concurrently with anything else on the same instance. Once ingestion
// is done, HasObservations / latest_observation_time / TensorForTime are
// safe from any number of concurrent reader threads (proven by the TSan
// regression in tests/traffic_test.cc). Live pipelines never mutate a
// published instance at all: traffic::SnapshotStore folds new observations
// into a Clone() off-thread and publishes the clone as the next immutable
// generation, so readers and the builder never share a mutable cache.
class TrafficTensorCache {
 public:
  TrafficTensorCache(const geo::GridSpec& grid, double slot_seconds,
                     double window_seconds, double speed_norm_mps = 20.0,
                     int target_shards = 16);

  // Registers probe observations (any order). Mutator: must be externally
  // serialized against all other calls (see the class contract above).
  //
  // Deterministic fold: appending a batch only ever appends to bucket tails
  // in arrival order, so ingesting b1 then b2 leaves bit-identical bucket
  // contents (and therefore bit-identical tensors) to ingesting b1+b2
  // concatenated. SnapshotStore's incremental generations and WAL replay
  // both lean on this -- any frame partitioning of the same row sequence
  // rebuilds the same snapshot.
  void AddObservations(const std::vector<SpeedObservation>& observations);

  // Deep copy of the observation store (shards + latest time). The clone's
  // lazy tensor cache starts empty; tensors built from it are bit-identical
  // to the source's. The double-buffered swap folds new observations into a
  // clone so the published generation is never touched.
  std::unique_ptr<TrafficTensorCache> Clone() const;

  // Tensor for the slot containing `time_s`, built lazily from observations
  // in [slot_start - window, slot_start) and memoized. Safe to call from
  // concurrent eval workers; the slot content is independent of build order.
  const nn::Tensor& TensorForTime(double time_s);

  // True when the window feeding the slot of `time_s` has at least one
  // observation. Serving uses this to decide between the live tensor and the
  // prior-mean (DeepST-C) fallback.
  bool HasObservations(double time_s) const;

  // Latest observation time registered so far, or -inf when empty. Lets the
  // serving layer detect a stale feed (latest << query time).
  double latest_observation_time() const { return latest_time_; }

  int SlotOf(double time_s) const {
    return static_cast<int>(time_s / slot_seconds_);
  }
  double slot_seconds() const { return slot_seconds_; }
  const geo::GridSpec& grid() const { return builder_.grid(); }
  int rows() const { return builder_.grid().rows(); }
  int cols() const { return builder_.grid().cols(); }

  int num_shards() const { return router_.num_shards(); }
  // Shard that observations (and per-region lookups) at `p` route to.
  int ShardOf(const geo::Point& p) const { return router_.ShardOf(p); }

 private:
  // Clone() constructor: copies the observation store, starts with an empty
  // tensor cache (mutexes are not copyable, and clones rebuild lazily).
  struct CloneTag {};
  TrafficTensorCache(const TrafficTensorCache& other, CloneTag);

  // One time slot's observations within a shard, in arrival order.
  struct SlotBucket {
    int slot = 0;
    std::vector<SpeedObservation> obs;
  };
  struct Shard {
    std::vector<SlotBucket> buckets;  // sorted by slot
  };

  // Calls fn(obs) for every stored observation with time in
  // [window_start, window_end), shard by shard, slots ascending.
  template <typename Fn>
  void ForEachInWindow(double window_start, double window_end, Fn&& fn) const;

  TrafficTensorBuilder builder_;
  double slot_seconds_;
  double window_seconds_;
  geo::TileRouter router_;
  std::vector<Shard> shards_;
  double latest_time_ = -1e300;
  // Guards cache_ (lazily grown; node-based, so returned references stay
  // valid across later insertions).
  std::mutex cache_mu_;
  std::map<int, nn::Tensor> cache_;
};

// Loads probe observations from a GPS CSV in the ExportGpsCsv layout
// (header `trip_id,time_s,x,y,speed_mps`, one observation per line).
// Malformed rows — wrong field count, non-numeric or non-finite values,
// negative speeds — yield a Status naming the line; nothing is partially
// ingested on error.
util::StatusOr<std::vector<SpeedObservation>> LoadObservationsCsv(
    const std::string& path);

}  // namespace traffic
}  // namespace deepst

#endif  // DEEPST_TRAFFIC_SNAPSHOT_H_
