#include "eval/metrics.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace deepst {
namespace eval {
namespace {

// Multiset intersection size over segment ids.
int IntersectionSize(const traj::Route& a, const traj::Route& b) {
  std::map<roadnet::SegmentId, int> counts;
  for (auto s : a) ++counts[s];
  int common = 0;
  for (auto s : b) {
    auto it = counts.find(s);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++common;
    }
  }
  return common;
}

}  // namespace

double RecallAtN(const traj::Route& truth, const traj::Route& predicted) {
  DEEPST_CHECK(!truth.empty());
  traj::Route truncated = predicted;
  if (truncated.size() > truth.size()) truncated.resize(truth.size());
  return static_cast<double>(IntersectionSize(truth, truncated)) /
         static_cast<double>(truth.size());
}

double Accuracy(const traj::Route& truth, const traj::Route& predicted) {
  DEEPST_CHECK(!truth.empty());
  const size_t denom = std::max(truth.size(), predicted.size());
  if (denom == 0) return 0.0;
  return static_cast<double>(IntersectionSize(truth, predicted)) /
         static_cast<double>(denom);
}

const std::vector<const char*> kDistanceBucketLabels = {
    "[1,3)", "[3,5)", "[5,10)", "[10,15)",
    "[15,20)", "[20,25)", "[25,30)", "[30,-)"};

int DistanceBucket(double distance_km) {
  if (distance_km < 1.0) return -1;
  if (distance_km < 3.0) return 0;
  if (distance_km < 5.0) return 1;
  if (distance_km < 10.0) return 2;
  if (distance_km < 15.0) return 3;
  if (distance_km < 20.0) return 4;
  if (distance_km < 25.0) return 5;
  if (distance_km < 30.0) return 6;
  return 7;
}

int NumDistanceBuckets() {
  return static_cast<int>(kDistanceBucketLabels.size());
}

}  // namespace eval
}  // namespace deepst
