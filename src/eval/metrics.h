#ifndef DEEPST_EVAL_METRICS_H_
#define DEEPST_EVAL_METRICS_H_

#include <vector>

#include "traj/types.h"

namespace deepst {
namespace eval {

// The paper's two route-prediction measures (Section V-B).
//
// recall@n (Eq. 8): truncate the prediction to the ground-truth length, then
//   |r ∩ r̂_t| / |r|.
// accuracy (Eq. 9): |r ∩ r̂| / max(|r|, |r̂|) over the full prediction.
// Intersections are multiset intersections over segment ids (routes are
// essentially loop-free, so this matches set semantics in practice).
double RecallAtN(const traj::Route& truth, const traj::Route& predicted);
double Accuracy(const traj::Route& truth, const traj::Route& predicted);

// Mean metric aggregation helper.
struct MetricAccumulator {
  double recall_sum = 0.0;
  double accuracy_sum = 0.0;
  int count = 0;

  void Add(const traj::Route& truth, const traj::Route& predicted) {
    recall_sum += RecallAtN(truth, predicted);
    accuracy_sum += Accuracy(truth, predicted);
    ++count;
  }
  double mean_recall() const { return count ? recall_sum / count : 0.0; }
  double mean_accuracy() const { return count ? accuracy_sum / count : 0.0; }
};

// Distance buckets of the paper's Fig. 7: [1,3), [3,5), [5,10), [10,15),
// [15,20), [20,25), [25,30), [30,inf) km. Returns the bucket index of a
// distance, or -1 when below the first edge.
int DistanceBucket(double distance_km);
extern const std::vector<const char*> kDistanceBucketLabels;
int NumDistanceBuckets();

}  // namespace eval
}  // namespace deepst

#endif  // DEEPST_EVAL_METRICS_H_
