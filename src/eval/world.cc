#include "eval/world.h"

#include <cstdlib>

#include "util/check.h"
#include "util/logging.h"

namespace deepst {
namespace eval {

WorldConfig ChengduMiniWorld(double scale) {
  WorldConfig cfg;
  cfg.name = "chengdu-mini";
  cfg.city = roadnet::ChengduMiniConfig();
  cfg.traffic.seed = 101;
  cfg.generator.seed = 202;
  // 16 days so the CNN sees many distinct daily traffic configurations
  // (mirrors the paper's 15-day Chengdu split: first days train, next
  // validate, last test).
  cfg.generator.num_days = 16;
  cfg.generator.trips_per_day =
      std::max(20, static_cast<int>(160 * scale));
  cfg.generator.max_route_m = 9000.0;
  cfg.train_days = 12;
  cfg.val_days = 2;
  cfg.traffic_cell_m = 320.0;
  return cfg;
}

WorldConfig HarbinMiniWorld(double scale) {
  WorldConfig cfg;
  cfg.name = "harbin-mini";
  cfg.city = roadnet::HarbinMiniConfig();
  cfg.traffic.seed = 103;
  cfg.traffic.num_hotspots = 5;
  cfg.generator.seed = 204;
  cfg.generator.num_days = 16;
  cfg.generator.trips_per_day =
      std::max(20, static_cast<int>(160 * scale));
  // Harbin trips are longer on average (paper Table III).
  cfg.generator.min_route_m = 1200.0;
  cfg.generator.max_route_m = 16000.0;
  cfg.generator.hub_sigma_m = 500.0;
  cfg.train_days = 12;
  cfg.val_days = 2;
  cfg.traffic_cell_m = 420.0;
  return cfg;
}

WorldConfig ChengduFullWorld(double scale) {
  WorldConfig cfg;
  cfg.name = "chengdu-full";
  cfg.full_city = roadnet::ChengduFullCityConfig();
  cfg.traffic.seed = 105;
  cfg.traffic.num_hotspots = 8;
  cfg.generator.seed = 206;
  cfg.generator.num_days = 4;
  cfg.generator.trips_per_day = std::max(10, static_cast<int>(60 * scale));
  cfg.generator.max_route_m = 12000.0;
  cfg.train_days = 2;
  cfg.val_days = 1;
  cfg.traffic_cell_m = 500.0;
  return cfg;
}

bool FastMode() {
  const char* v = std::getenv("DEEPST_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

World::World(const WorldConfig& config) : config_(config) {
  net_ = config.full_city.has_value()
             ? roadnet::BuildChengduFull(*config.full_city)
             : roadnet::BuildGridCity(config.city);
  index_ = std::make_unique<roadnet::SpatialIndex>(*net_);
  field_ = std::make_unique<traffic::CongestionField>(*net_, config.traffic);
  traj::TripGenerator generator(*net_, *field_, config.generator);
  records_ = generator.GenerateDataset();
  split_ = traj::SplitByDay(records_, config.train_days, config.val_days);
  geo::GridSpec grid(net_->bounds(), config.traffic_cell_m);
  cache_ = std::make_unique<traffic::TrafficTensorCache>(
      grid, config.slot_seconds, config.window_seconds);
  cache_->AddObservations(traj::CollectObservations(records_));
  stats_ = std::make_unique<traj::SegmentStatsTable>(*net_, split_.train);
  DEEPST_LOG(Info) << "world '" << config.name << "': "
                   << net_->num_segments() << " segments, "
                   << records_.size() << " trips (train "
                   << split_.train.size() << ", val "
                   << split_.validation.size() << ", test "
                   << split_.test.size() << "), traffic grid "
                   << grid.rows() << "x" << grid.cols();
}

std::unique_ptr<core::DeepSTModel> TrainModel(
    World* world, const core::DeepSTConfig& model_config,
    const core::TrainerConfig& trainer_config, core::TrainResult* result) {
  auto model = std::make_unique<core::DeepSTModel>(
      world->net(), model_config, world->traffic_cache());
  core::Trainer trainer(model.get(), trainer_config);
  core::TrainResult r =
      trainer.Fit(world->split().train, world->split().validation);
  if (result != nullptr) *result = r;
  return model;
}

core::DeepSTConfig DefaultModelConfig(const World& world) {
  core::DeepSTConfig cfg;
  (void)world;
  if (FastMode()) {
    cfg.gru_hidden = 32;
    cfg.gru_layers = 1;
    cfg.segment_embedding_dim = 16;
    cfg.num_proxies = 16;
    cfg.cnn_channels = 8;
    cfg.mlp_hidden = 32;
  }
  return cfg;
}

core::TrainerConfig DefaultTrainerConfig() {
  core::TrainerConfig cfg;
  cfg.verbose = false;
  if (FastMode()) {
    cfg.max_epochs = 3;
    cfg.patience = 2;
  }
  return cfg;
}

std::vector<const traj::TripRecord*> EligibleTestTrips(const World& world,
                                                       int max_trips) {
  std::vector<const traj::TripRecord*> trips;
  for (const auto* rec : world.split().test) {
    if (static_cast<int>(trips.size()) >= max_trips) break;
    if (rec->trip.route.size() < 2) continue;
    trips.push_back(rec);
  }
  return trips;
}

EvalResult AccumulateEval(const World& world,
                          const std::vector<const traj::TripRecord*>& trips,
                          const std::vector<traj::Route>& predicted) {
  DEEPST_CHECK_EQ(trips.size(), predicted.size());
  EvalResult result;
  MetricAccumulator acc;
  std::vector<MetricAccumulator> buckets(
      static_cast<size_t>(NumDistanceBuckets()));
  for (size_t i = 0; i < trips.size(); ++i) {
    const traj::Route& truth = trips[i]->trip.route;
    acc.Add(truth, predicted[i]);
    const double km = world.net().RouteLength(truth) / 1000.0;
    const int b = DistanceBucket(km);
    if (b >= 0) buckets[static_cast<size_t>(b)].Add(truth, predicted[i]);
  }
  result.recall_at_n = acc.mean_recall();
  result.accuracy = acc.mean_accuracy();
  result.num_trips = acc.count;
  for (const auto& b : buckets) {
    result.bucket_accuracy.push_back(b.count ? b.mean_accuracy() : -1.0);
    result.bucket_counts.push_back(b.count);
  }
  return result;
}

core::RouteQuery QueryFor(const traj::Trip& trip) {
  core::RouteQuery query;
  query.origin = trip.origin_segment();
  query.destination = trip.destination;
  query.start_time_s = trip.start_time_s;
  // Known-destination baselines (CSSRNN, WSP) get the true final segment, as
  // the paper grants them.
  query.final_segment = trip.final_segment();
  return query;
}

}  // namespace eval
}  // namespace deepst
