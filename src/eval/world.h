#ifndef DEEPST_EVAL_WORLD_H_
#define DEEPST_EVAL_WORLD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "eval/metrics.h"
#include "roadnet/grid_city.h"
#include "roadnet/spatial_index.h"
#include "traffic/congestion_field.h"
#include "traffic/snapshot.h"
#include "traj/dataset.h"
#include "traj/generator.h"
#include "traj/segment_stats.h"

namespace deepst {
namespace eval {

// Everything an experiment needs: a synthetic city, its traffic, a multi-day
// trip dataset with temporal splits, the shared per-slot traffic tensors and
// historical segment statistics. Substitutes for the paper's
// Chengdu/Harbin data pipelines (DESIGN.md).
struct WorldConfig {
  std::string name = "city";
  roadnet::GridCityConfig city;
  traffic::CongestionConfig traffic;
  traj::GeneratorConfig generator;
  int train_days = 6;
  int val_days = 2;
  double traffic_cell_m = 350.0;
  double slot_seconds = 1200.0;    // 20 min (paper V-A)
  double window_seconds = 1800.0;  // delta = 30 min (paper V-A)
};

// Scaled-down analogues of the paper's two datasets. `scale` in (0, 1]
// shrinks trip counts (for quick tests / DEEPST_FAST runs).
WorldConfig ChengduMiniWorld(double scale = 1.0);
WorldConfig HarbinMiniWorld(double scale = 1.0);

// Reads the DEEPST_FAST env var; when set benches shrink their workloads.
bool FastMode();

class World {
 public:
  explicit World(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const roadnet::RoadNetwork& net() const { return *net_; }
  const roadnet::SpatialIndex& index() const { return *index_; }
  const traffic::CongestionField& field() const { return *field_; }
  const std::vector<traj::TripRecord>& records() const { return records_; }
  const traj::DatasetSplit& split() const { return split_; }
  traffic::TrafficTensorCache* traffic_cache() { return cache_.get(); }
  const traj::SegmentStatsTable& segment_stats() const { return *stats_; }

 private:
  WorldConfig config_;
  std::unique_ptr<roadnet::RoadNetwork> net_;
  std::unique_ptr<roadnet::SpatialIndex> index_;
  std::unique_ptr<traffic::CongestionField> field_;
  std::vector<traj::TripRecord> records_;
  traj::DatasetSplit split_;
  std::unique_ptr<traffic::TrafficTensorCache> cache_;
  std::unique_ptr<traj::SegmentStatsTable> stats_;
};

// Builds + trains one DeepST-family model on the world's training split.
std::unique_ptr<core::DeepSTModel> TrainModel(
    World* world, const core::DeepSTConfig& model_config,
    const core::TrainerConfig& trainer_config,
    core::TrainResult* result = nullptr);

// Default model/trainer configs sized for the mini worlds.
core::DeepSTConfig DefaultModelConfig(const World& world);
core::TrainerConfig DefaultTrainerConfig();

// Builds the standard query for predicting a test trip's route.
core::RouteQuery QueryFor(const traj::Trip& trip);

// Evaluates a prediction function over (at most `max_trips` of) the test
// split; `predict` maps a query to a route.
struct EvalResult {
  double recall_at_n = 0.0;
  double accuracy = 0.0;
  int num_trips = 0;
  // Per-distance-bucket accuracy (Fig. 7); -1 for empty buckets.
  std::vector<double> bucket_accuracy;
  std::vector<int> bucket_counts;
};

template <typename PredictFn>
EvalResult EvaluatePrediction(const World& world, PredictFn&& predict,
                              int max_trips) {
  EvalResult result;
  MetricAccumulator acc;
  std::vector<MetricAccumulator> buckets(
      static_cast<size_t>(NumDistanceBuckets()));
  int used = 0;
  for (const auto* rec : world.split().test) {
    if (used >= max_trips) break;
    if (rec->trip.route.size() < 2) continue;
    ++used;
    const traj::Route predicted = predict(QueryFor(rec->trip));
    acc.Add(rec->trip.route, predicted);
    const double km = world.net().RouteLength(rec->trip.route) / 1000.0;
    const int b = DistanceBucket(km);
    if (b >= 0) buckets[static_cast<size_t>(b)].Add(rec->trip.route,
                                                    predicted);
  }
  result.recall_at_n = acc.mean_recall();
  result.accuracy = acc.mean_accuracy();
  result.num_trips = acc.count;
  for (const auto& b : buckets) {
    result.bucket_accuracy.push_back(b.count ? b.mean_accuracy() : -1.0);
    result.bucket_counts.push_back(b.count);
  }
  return result;
}

}  // namespace eval
}  // namespace deepst

#endif  // DEEPST_EVAL_WORLD_H_
