#ifndef DEEPST_EVAL_WORLD_H_
#define DEEPST_EVAL_WORLD_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "eval/metrics.h"
#include "nn/backend.h"
#include "roadnet/grid_city.h"
#include "roadnet/spatial_index.h"
#include "traffic/congestion_field.h"
#include "traffic/snapshot.h"
#include "traj/dataset.h"
#include "traj/generator.h"
#include "traj/segment_stats.h"

namespace deepst {
namespace eval {

// Everything an experiment needs: a synthetic city, its traffic, a multi-day
// trip dataset with temporal splits, the shared per-slot traffic tensors and
// historical segment statistics. Substitutes for the paper's
// Chengdu/Harbin data pipelines (DESIGN.md).
struct WorldConfig {
  std::string name = "city";
  roadnet::GridCityConfig city;
  // When set, the network comes from the full-scale generator
  // (BuildChengduFull) and `city` is ignored.
  std::optional<roadnet::ChengduFullConfig> full_city;
  traffic::CongestionConfig traffic;
  traj::GeneratorConfig generator;
  int train_days = 6;
  int val_days = 2;
  double traffic_cell_m = 350.0;
  double slot_seconds = 1200.0;    // 20 min (paper V-A)
  double window_seconds = 1800.0;  // delta = 30 min (paper V-A)
};

// Scaled-down analogues of the paper's two datasets. `scale` in (0, 1]
// shrinks trip counts (for quick tests / DEEPST_FAST runs).
WorldConfig ChengduMiniWorld(double scale = 1.0);
WorldConfig HarbinMiniWorld(double scale = 1.0);

// Full-scale city (> 100k segments; see ChengduFullCityConfig). Trip counts
// stay modest by default -- the point of this world is the network scale,
// which exercises the mmap v3 format and tile-sharded spatial serving.
// Constructing the World still generates trips over the whole city; for
// network-only workloads build the city directly via BuildChengduFull.
WorldConfig ChengduFullWorld(double scale = 1.0);

// Reads the DEEPST_FAST env var; when set benches shrink their workloads.
bool FastMode();

class World {
 public:
  explicit World(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const roadnet::RoadNetwork& net() const { return *net_; }
  const roadnet::SpatialIndex& index() const { return *index_; }
  const traffic::CongestionField& field() const { return *field_; }
  const std::vector<traj::TripRecord>& records() const { return records_; }
  const traj::DatasetSplit& split() const { return split_; }
  traffic::TrafficTensorCache* traffic_cache() { return cache_.get(); }
  const traj::SegmentStatsTable& segment_stats() const { return *stats_; }

 private:
  WorldConfig config_;
  std::unique_ptr<roadnet::RoadNetwork> net_;
  std::unique_ptr<roadnet::SpatialIndex> index_;
  std::unique_ptr<traffic::CongestionField> field_;
  std::vector<traj::TripRecord> records_;
  traj::DatasetSplit split_;
  std::unique_ptr<traffic::TrafficTensorCache> cache_;
  std::unique_ptr<traj::SegmentStatsTable> stats_;
};

// Builds + trains one DeepST-family model on the world's training split.
std::unique_ptr<core::DeepSTModel> TrainModel(
    World* world, const core::DeepSTConfig& model_config,
    const core::TrainerConfig& trainer_config,
    core::TrainResult* result = nullptr);

// Default model/trainer configs sized for the mini worlds.
core::DeepSTConfig DefaultModelConfig(const World& world);
core::TrainerConfig DefaultTrainerConfig();

// Builds the standard query for predicting a test trip's route.
core::RouteQuery QueryFor(const traj::Trip& trip);

// Evaluates a prediction function over (at most `max_trips` of) the test
// split; `predict` maps a query to a route.
struct EvalResult {
  double recall_at_n = 0.0;
  double accuracy = 0.0;
  int num_trips = 0;
  // Per-distance-bucket accuracy (Fig. 7); -1 for empty buckets.
  std::vector<double> bucket_accuracy;
  std::vector<int> bucket_counts;
};

// Test-split trips with a scorable route (>= 2 segments), capped at
// `max_trips`, in split order.
std::vector<const traj::TripRecord*> EligibleTestTrips(const World& world,
                                                       int max_trips);

// Folds per-trip predictions into metrics, in trip order (so the result is
// independent of how the predictions were scheduled).
EvalResult AccumulateEval(const World& world,
                          const std::vector<const traj::TripRecord*>& trips,
                          const std::vector<traj::Route>& predicted);

// Sequential evaluation. `predict` maps a query to a route and may carry
// mutable state (it is called once per eligible trip, in split order).
template <typename PredictFn>
EvalResult EvaluatePrediction(const World& world, PredictFn&& predict,
                              int max_trips) {
  const auto trips = EligibleTestTrips(world, max_trips);
  std::vector<traj::Route> predicted(trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    predicted[i] = predict(QueryFor(trips[i]->trip));
  }
  return AccumulateEval(world, trips, predicted);
}

// Parallel evaluation over the global nn::Backend. `predict` is called as
// predict(query, &rng) from concurrent tasks, so it must be stateless apart
// from the rng; each trip's rng stream is derived from (seed, trip index)
// alone, making the result identical for every thread count. Metrics are
// accumulated in trip order after all predictions complete.
template <typename PredictFn>
EvalResult EvaluatePredictionParallel(const World& world, PredictFn&& predict,
                                      int max_trips, uint64_t seed) {
  const auto trips = EligibleTestTrips(world, max_trips);
  std::vector<traj::Route> predicted(trips.size());
  nn::GetBackend()->Run(static_cast<int64_t>(trips.size()), [&](int64_t i) {
    util::Rng rng(seed ^
                  (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1)));
    predicted[static_cast<size_t>(i)] =
        predict(QueryFor(trips[static_cast<size_t>(i)]->trip), &rng);
  });
  return AccumulateEval(world, trips, predicted);
}

}  // namespace eval
}  // namespace deepst

#endif  // DEEPST_EVAL_WORLD_H_
