#include "traj/ascii_map.h"

#include <algorithm>
#include <cmath>

namespace deepst {
namespace traj {

AsciiMap::AsciiMap(const roadnet::RoadNetwork& net, int rows, int cols)
    : net_(net), rows_(rows), cols_(cols) {
  DEEPST_CHECK_GT(rows, 1);
  DEEPST_CHECK_GT(cols, 1);
  cells_.assign(static_cast<size_t>(rows_) * cols_, ' ');
}

void AsciiMap::Plot(const geo::Point& p, char ch) {
  const geo::BoundingBox& box = net_.bounds();
  const double fx = (p.x - box.min.x) / std::max(box.Width(), 1.0);
  const double fy = (p.y - box.min.y) / std::max(box.Height(), 1.0);
  int c = static_cast<int>(fx * (cols_ - 1) + 0.5);
  int r = static_cast<int>((1.0 - fy) * (rows_ - 1) + 0.5);
  c = std::clamp(c, 0, cols_ - 1);
  r = std::clamp(r, 0, rows_ - 1);
  char& cell = cells_[static_cast<size_t>(r) * cols_ + c];
  // Markers beat routes beat network strokes.
  auto rank = [](char x) {
    if (x == ' ') return 0;
    if (x == '.') return 1;
    if (x == '#' || x == '+' || x == '*') return 2;
    return 3;
  };
  if (rank(ch) >= rank(cell)) cell = ch;
}

void AsciiMap::DrawPolyline(geo::PointSpan pts, char ch) {
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const geo::Point a = pts[i];
    const geo::Point b = pts[i + 1];
    const double len = a.DistanceTo(b);
    const int steps =
        std::max(2, static_cast<int>(len / (net_.bounds().Width() /
                                            (2.0 * cols_))));
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      Plot(a + (b - a) * t, ch);
    }
  }
}

void AsciiMap::DrawNetwork() {
  for (roadnet::SegmentId s = 0; s < net_.num_segments(); ++s) {
    DrawPolyline(net_.polyline(s), '.');
  }
}

void AsciiMap::DrawRoute(const Route& route, char ch) {
  for (roadnet::SegmentId s : route) {
    DrawPolyline(net_.polyline(s), ch);
  }
}

void AsciiMap::MarkPoint(const geo::Point& p, char ch) { Plot(p, ch); }

std::string AsciiMap::Render() const {
  std::string out;
  out.reserve(static_cast<size_t>(rows_) * (cols_ + 1));
  for (int r = 0; r < rows_; ++r) {
    out.append(cells_, static_cast<size_t>(r) * cols_,
               static_cast<size_t>(cols_));
    out.push_back('\n');
  }
  return out;
}

}  // namespace traj
}  // namespace deepst
