#ifndef DEEPST_TRAJ_DATASET_H_
#define DEEPST_TRAJ_DATASET_H_

#include <string>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/types.h"

namespace deepst {
namespace traj {

// Train/validation/test split by day ranges, mirroring the paper's temporal
// splits (first days train, next days validate, remaining days test).
struct DatasetSplit {
  std::vector<const TripRecord*> train;
  std::vector<const TripRecord*> validation;
  std::vector<const TripRecord*> test;
};

// Splits records by day: [0, train_days) -> train, [train_days,
// train_days + val_days) -> validation, the rest -> test.
DatasetSplit SplitByDay(const std::vector<TripRecord>& records,
                        int train_days, int val_days);

// Summary statistics of a trip collection (paper Table III).
struct TripStatistics {
  int num_trips = 0;
  double min_distance_km = 0.0;
  double max_distance_km = 0.0;
  double mean_distance_km = 0.0;
  int min_segments = 0;
  int max_segments = 0;
  double mean_segments = 0.0;
};

TripStatistics ComputeStatistics(const roadnet::RoadNetwork& net,
                                 const std::vector<TripRecord>& records);

// Histogram over [lo, hi) with `bins` equal-width buckets; values outside
// are clamped into the border buckets (paper Fig. 6 distributions).
std::vector<int> Histogram(const std::vector<double>& values, double lo,
                           double hi, int bins);

// Per-trip travel distances (km) / segment counts, histogram inputs.
std::vector<double> TravelDistancesKm(const roadnet::RoadNetwork& net,
                                      const std::vector<TripRecord>& records);
std::vector<double> SegmentCounts(const std::vector<TripRecord>& records);

// Coarse spatial occupancy of GPS points over an R x C grid of the network
// bounding box (paper Fig. 5 spatial distributions), row-major counts.
std::vector<int> SpatialOccupancy(const roadnet::RoadNetwork& net,
                                  const std::vector<TripRecord>& records,
                                  int rows, int cols);

}  // namespace traj
}  // namespace deepst

#endif  // DEEPST_TRAJ_DATASET_H_
