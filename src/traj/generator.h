#ifndef DEEPST_TRAJ_GENERATOR_H_
#define DEEPST_TRAJ_GENERATOR_H_

#include <memory>
#include <vector>

#include "roadnet/spatial_index.h"
#include "traffic/congestion_field.h"
#include "traffic/snapshot.h"
#include "traj/types.h"
#include "util/rng.h"

namespace deepst {
namespace traj {

// Trip/trajectory generator. Routes are chosen by a stochastic
// time-dependent shortest path whose cost embeds the paper's three
// explanatory factors, so that models exploiting them have signal to learn:
//   1. Sequential property: a per-trip driver "style" (arterial affinity)
//      scales arterial costs for the whole trip, creating long-range
//      dependence -- the early route reveals the style and predicts later
//      choices. Turn penalties additionally favour going straight.
//   2. Destination: trips are goal-directed by construction (shortest path
//      to the destination segment); destinations cluster around hubs so
//      proxy-sharing (DeepST's K proxies) pays off.
//   3. Real-time traffic: traffic-aware drivers use current congested
//      travel times as edge costs and so detour around hotspots/incidents.
struct GeneratorConfig {
  int num_days = 10;
  int trips_per_day = 300;
  int num_destination_hubs = 8;
  double hub_sigma_m = 450.0;     // destination scatter around a hub
  double dest_noise_m = 100.0;    // rough-coordinate noise on T.x
  double p_uniform_dest = 0.45;   // destinations not tied to any hub
  double p_arterial_lover = 0.5;  // driver style mix
  double arterial_affinity = 0.5;    // cost multiplier on arterials (lover)
  double arterial_aversion = 1.7;    // cost multiplier on arterials (hater)
  double p_traffic_aware = 1.0;   // fraction of drivers that see congestion
  double route_noise = 0.28;      // lognormal sigma of per-edge cost noise
  double turn_penalty_s = 25.0;   // cost of a 90-degree turn
  double uturn_penalty_s = 240.0;
  double min_route_m = 800.0;
  double max_route_m = 15000.0;
  double gps_interval_s = 15.0;  // GPS sampling period
  double gps_noise_m = 12.0;     // GPS position noise (std)
  uint64_t seed = 42;
};

class TripGenerator {
 public:
  TripGenerator(const roadnet::RoadNetwork& net,
                const traffic::CongestionField& field,
                const GeneratorConfig& config);

  // Generates the full multi-day dataset (trips ordered by start time).
  std::vector<TripRecord> GenerateDataset();

  // Generates a single trip starting in day `day` (nullopt-style: empty
  // route on failure after retries -- callers of GenerateDataset never see
  // failures, it retries internally).
  TripRecord GenerateTrip(int day, util::Rng* rng) const;

  const std::vector<geo::Point>& hub_centers() const { return hubs_; }

  // Simulates the GPS trace of driving `route` starting at `start_time_s`,
  // returning the trace and the arrival time. Exposed for tests and for
  // building probe data.
  GpsTrajectory SimulateGps(const Route& route, double start_time_s,
                            util::Rng* rng) const;

 private:
  // Samples a start time-of-day (seconds) from the daily demand profile.
  double SampleTimeOfDay(util::Rng* rng) const;

  const roadnet::RoadNetwork& net_;
  const traffic::CongestionField& field_;
  GeneratorConfig config_;
  roadnet::SpatialIndex index_;
  std::vector<geo::Point> hubs_;
  std::vector<double> hub_weights_;
};

// Extracts probe speed observations from every GPS point of the dataset
// (the input to traffic::TrafficTensorCache).
std::vector<traffic::SpeedObservation> CollectObservations(
    const std::vector<TripRecord>& records);

// Keeps roughly one point every `interval_s` seconds (always keeping the
// first and last), simulating low-sampling-rate trajectories for the route
// recovery task (paper Section V-C).
GpsTrajectory DownsampleByInterval(const GpsTrajectory& gps,
                                   double interval_s);

}  // namespace traj
}  // namespace deepst

#endif  // DEEPST_TRAJ_GENERATOR_H_
