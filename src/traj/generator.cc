#include "traj/generator.h"

#include <algorithm>
#include <cmath>

#include "roadnet/shortest_path.h"
#include "util/logging.h"

namespace deepst {
namespace traj {
namespace {

using roadnet::RoadClass;
using roadnet::SegmentId;

}  // namespace

TripGenerator::TripGenerator(const roadnet::RoadNetwork& net,
                             const traffic::CongestionField& field,
                             const GeneratorConfig& config)
    : net_(net), field_(field), config_(config), index_(net) {
  util::Rng rng(config.seed);
  const geo::BoundingBox& box = net.bounds();
  for (int h = 0; h < config.num_destination_hubs; ++h) {
    hubs_.push_back({box.min.x + box.Width() * rng.Uniform(0.1, 0.9),
                     box.min.y + box.Height() * rng.Uniform(0.1, 0.9)});
    // Zipf-ish popularity.
    hub_weights_.push_back(1.0 / (1.0 + h));
  }
}

double TripGenerator::SampleTimeOfDay(util::Rng* rng) const {
  // Mixture: 35% morning peak, 35% evening peak, 30% uniform daytime.
  const double u = rng->Uniform();
  double tod;
  if (u < 0.35) {
    tod = rng->Gaussian(8.0 * 3600, 1.3 * 3600);
  } else if (u < 0.70) {
    tod = rng->Gaussian(18.0 * 3600, 1.3 * 3600);
  } else {
    tod = rng->Uniform(6.0 * 3600, 23.0 * 3600);
  }
  return std::clamp(tod, 0.0, traffic::kSecondsPerDay - 1.0);
}

TripRecord TripGenerator::GenerateTrip(int day, util::Rng* rng) const {
  TripRecord record;
  for (int attempt = 0; attempt < 20; ++attempt) {
    const double start_time =
        day * traffic::kSecondsPerDay + SampleTimeOfDay(rng);

    // Origin: a uniformly random segment.
    const SegmentId origin =
        static_cast<SegmentId>(rng->UniformInt(
            static_cast<uint64_t>(net_.num_segments())));

    // Destination: hub-clustered or uniform.
    geo::Point dest_point;
    if (rng->Uniform() < config_.p_uniform_dest) {
      const geo::BoundingBox& box = net_.bounds();
      dest_point = {box.min.x + box.Width() * rng->Uniform(0.05, 0.95),
                    box.min.y + box.Height() * rng->Uniform(0.05, 0.95)};
    } else {
      const int h = rng->Categorical(hub_weights_);
      dest_point = hubs_[static_cast<size_t>(h)] +
                   geo::Point{rng->Gaussian(0.0, config_.hub_sigma_m),
                              rng->Gaussian(0.0, config_.hub_sigma_m)};
    }
    const auto dest_cand = index_.Nearest(dest_point);
    if (dest_cand.segment == roadnet::kInvalidSegment) continue;
    const SegmentId dest_segment = dest_cand.segment;
    if (dest_segment == origin) continue;

    // Driver style (whole-trip latent -> long-range dependence).
    const bool arterial_lover = rng->Uniform() < config_.p_arterial_lover;
    const double arterial_factor = arterial_lover
                                       ? config_.arterial_affinity
                                       : config_.arterial_aversion;
    const bool traffic_aware = rng->Uniform() < config_.p_traffic_aware;

    // Per-trip lognormal edge noise, deterministic within the trip.
    const uint64_t trip_salt = rng->NextUint64();
    auto cost = [&, this](SegmentId s) {
      const auto& seg = net_.segment(s);
      double t = traffic_aware ? field_.TravelTime(s, start_time)
                               : net_.FreeFlowTime(s);
      if (seg.road_class != RoadClass::kLocal) t *= arterial_factor;
      const double g =
          util::HashToUnit(trip_salt ^ (static_cast<uint64_t>(s) * 2654435761ULL));
      // Lognormal-ish noise via inverse-transform of a uniform through a
      // symmetric logistic; cheap and deterministic.
      const double z = std::log(g / (1.0 - g + 1e-12)) * 0.55;
      return t * std::exp(config_.route_noise * z);
    };
    auto turn_cost = [this](SegmentId prev, SegmentId next) {
      if (net_.segment(prev).reverse == next) return config_.uturn_penalty_s;
      const double a = geo::HeadingAtEnd(net_.polyline(prev));
      const double b = geo::HeadingAtStart(net_.polyline(next));
      return config_.turn_penalty_s * geo::AngleDiff(a, b) / (M_PI / 2.0);
    };
    roadnet::PathQueryOptions opts;
    opts.turn_cost = turn_cost;
    auto path = roadnet::ShortestPath(net_, origin, dest_segment, cost, opts);
    if (!path.ok()) continue;

    const double len = net_.RouteLength(path.value().path);
    if (len < config_.min_route_m || len > config_.max_route_m) continue;

    record.trip.route = std::move(path.value().path);
    record.trip.start_time_s = start_time;
    record.trip.day = day;
    // Rough destination coordinate: true route endpoint + noise (the paper
    // assumes only an approximate coordinate is available).
    record.trip.destination =
        net_.SegmentEnd(record.trip.final_segment()) +
        geo::Point{rng->Gaussian(0.0, config_.dest_noise_m),
                   rng->Gaussian(0.0, config_.dest_noise_m)};
    record.gps = SimulateGps(record.trip.route, start_time, rng);
    return record;
  }
  return record;  // empty route: caller retries or skips
}

GpsTrajectory TripGenerator::SimulateGps(const Route& route,
                                         double start_time_s,
                                         util::Rng* rng) const {
  GpsTrajectory gps;
  double t = start_time_s;
  double next_sample = start_time_s;
  for (SegmentId s : route) {
    const auto& seg = net_.segment(s);
    // Speed held constant within a segment (traffic state at entry).
    double speed = field_.SpeedAt(s, t) * rng->Uniform(0.9, 1.1);
    speed = std::max(speed, 0.5);
    const double seg_time = seg.length_m / speed;
    // Emit samples while inside this segment.
    while (next_sample < t + seg_time) {
      const double offset = (next_sample - t) * speed;
      geo::Point p = geo::InterpolateAlong(net_.polyline(s), offset);
      p = p + geo::Point{rng->Gaussian(0.0, config_.gps_noise_m),
                         rng->Gaussian(0.0, config_.gps_noise_m)};
      gps.push_back({p, next_sample, speed});
      next_sample += config_.gps_interval_s;
    }
    t += seg_time;
  }
  // Final point at the route end.
  if (!route.empty()) {
    const auto& seg = net_.segment(route.back());
    geo::Point p = net_.polyline(route.back()).back() +
                   geo::Point{rng->Gaussian(0.0, config_.gps_noise_m),
                              rng->Gaussian(0.0, config_.gps_noise_m)};
    gps.push_back({p, t, field_.SpeedAt(route.back(), t)});
  }
  return gps;
}

std::vector<TripRecord> TripGenerator::GenerateDataset() {
  util::Rng rng(config_.seed ^ 0x5eed5eedULL);
  std::vector<TripRecord> records;
  records.reserve(static_cast<size_t>(config_.num_days) *
                  config_.trips_per_day);
  for (int day = 0; day < config_.num_days; ++day) {
    int generated = 0;
    int failures = 0;
    while (generated < config_.trips_per_day && failures < 1000) {
      TripRecord rec = GenerateTrip(day, &rng);
      if (rec.trip.route.empty()) {
        ++failures;
        continue;
      }
      records.push_back(std::move(rec));
      ++generated;
    }
  }
  std::sort(records.begin(), records.end(),
            [](const TripRecord& a, const TripRecord& b) {
              return a.trip.start_time_s < b.trip.start_time_s;
            });
  DEEPST_LOG(Info) << "generated " << records.size() << " trips over "
                   << config_.num_days << " days";
  return records;
}

std::vector<traffic::SpeedObservation> CollectObservations(
    const std::vector<TripRecord>& records) {
  std::vector<traffic::SpeedObservation> obs;
  for (const auto& rec : records) {
    for (const auto& p : rec.gps) {
      obs.push_back({p.pos, p.time_s, p.speed_mps});
    }
  }
  return obs;
}

GpsTrajectory DownsampleByInterval(const GpsTrajectory& gps,
                                   double interval_s) {
  GpsTrajectory out;
  if (gps.empty()) return out;
  out.push_back(gps.front());
  for (const auto& p : gps) {
    if (p.time_s >= out.back().time_s + interval_s) {
      out.push_back(p);
    }
  }
  if (!(out.back().time_s == gps.back().time_s)) {
    out.push_back(gps.back());
  }
  return out;
}

}  // namespace traj
}  // namespace deepst
