#ifndef DEEPST_TRAJ_SEGMENT_STATS_H_
#define DEEPST_TRAJ_SEGMENT_STATS_H_

#include <vector>

#include "roadnet/road_network.h"
#include "traj/types.h"

namespace deepst {
namespace traj {

// Historical per-segment travel statistics estimated from raw GPS data, as
// the paper's WSP baseline ("edge weight equals the mean travel time of the
// corresponding road segment, estimated using the entire historical
// dataset") and STRS's temporal inference module require.
struct SegmentStats {
  double mean_speed_mps = 0.0;  // 0 when unobserved
  double mean_time_s = 0.0;     // length / mean speed (free-flow fallback)
  double var_time_s2 = 0.0;     // variance of implied traversal time
  int num_observations = 0;
};

class SegmentStatsTable {
 public:
  // Estimates stats by assigning each GPS point's probe speed to the nearest
  // segment of its own trip's route.
  SegmentStatsTable(const roadnet::RoadNetwork& net,
                    const std::vector<const TripRecord*>& records);

  const SegmentStats& stats(roadnet::SegmentId s) const {
    DEEPST_CHECK(s >= 0 && s < static_cast<int>(stats_.size()));
    return stats_[static_cast<size_t>(s)];
  }

  // Mean traversal time; falls back to free-flow when unobserved.
  double MeanTime(roadnet::SegmentId s) const;
  // Traversal-time variance with a sane floor.
  double TimeVariance(roadnet::SegmentId s) const;

  // Expected travel time of a whole route.
  double RouteMeanTime(const Route& route) const;
  double RouteTimeVariance(const Route& route) const;

  int num_observed_segments() const { return num_observed_; }

 private:
  const roadnet::RoadNetwork& net_;
  std::vector<SegmentStats> stats_;
  int num_observed_ = 0;
};

}  // namespace traj
}  // namespace deepst

#endif  // DEEPST_TRAJ_SEGMENT_STATS_H_
