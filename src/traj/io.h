#ifndef DEEPST_TRAJ_IO_H_
#define DEEPST_TRAJ_IO_H_

#include <string>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/types.h"
#include "util/status.h"

namespace deepst {
namespace traj {

// Dataset persistence: binary for exact round-trips of generated datasets
// (so training runs are reproducible without regenerating), and CSV exports
// in the common trajectory-dataset layout (one GPS point per line:
// trip_id, time_s, x, y, speed_mps) for external analysis/plotting.

// Writes the streaming v2 format (CRC32 footer).
util::Status SaveDataset(const std::vector<TripRecord>& records,
                         const std::string& path);
// Writes the fixed-layout mmap-able v3 format (docs/formats.md): one flat
// trip-record section plus shared route-id and GPS-point pools, 8-byte
// aligned with a CRC footer. Loads validate against the mapping and
// materialize each trip with two bulk copies instead of per-element reads.
util::Status SaveDatasetV3(const std::vector<TripRecord>& records,
                           const std::string& path);
// Loads any supported version (v1/v2 streaming, v3 fixed-layout).
util::StatusOr<std::vector<TripRecord>> LoadDataset(const std::string& path);

// Human-readable report for `deepst_cli inspect`: format version, element
// counts, CRC status, mmap-ability. InvalidArgument on a non-dataset magic.
// `healthy` (optional) is set false when the file describes but fails
// validation (CRC mismatch, unsupported version).
util::StatusOr<std::string> DescribeDatasetFile(const std::string& path,
                                                bool* healthy = nullptr);

// Referential-integrity check against a road network: every route segment id
// must be in range and consecutive segments adjacent. Loaders validate
// structure; this validates the dataset against the graph it will be used
// with (they may come from different files).
util::Status ValidateDataset(const std::vector<TripRecord>& records,
                             const roadnet::RoadNetwork& net);

// CSV of GPS points (one row per point).
util::Status ExportGpsCsv(const std::vector<TripRecord>& records,
                          const std::string& path);
// CSV of trips (one row per trip: id, day, start_time, dest_x, dest_y,
// segment count, route as '|'-joined segment ids).
util::Status ExportTripsCsv(const std::vector<TripRecord>& records,
                            const std::string& path);

}  // namespace traj
}  // namespace deepst

#endif  // DEEPST_TRAJ_IO_H_
