#include "traj/segment_stats.h"

#include <algorithm>
#include <cmath>

namespace deepst {
namespace traj {

SegmentStatsTable::SegmentStatsTable(
    const roadnet::RoadNetwork& net,
    const std::vector<const TripRecord*>& records)
    : net_(net) {
  const size_t n = static_cast<size_t>(net.num_segments());
  std::vector<double> speed_sum(n, 0.0);
  std::vector<double> time_sum(n, 0.0), time_sq_sum(n, 0.0);
  std::vector<int> count(n, 0);
  for (const auto* rec : records) {
    for (const auto& p : rec->gps) {
      // Assign to the nearest segment of this trip's own route (the route is
      // the map-matching ground truth the operator would have).
      roadnet::SegmentId best = roadnet::kInvalidSegment;
      double best_d = 1e18;
      for (roadnet::SegmentId s : rec->trip.route) {
        const double d = net.ProjectToSegment(p.pos, s).distance;
        if (d < best_d) {
          best_d = d;
          best = s;
        }
      }
      if (best == roadnet::kInvalidSegment || p.speed_mps <= 0.1) continue;
      const size_t i = static_cast<size_t>(best);
      speed_sum[i] += p.speed_mps;
      const double t = net.segment(best).length_m / p.speed_mps;
      time_sum[i] += t;
      time_sq_sum[i] += t * t;
      ++count[i];
    }
  }
  stats_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    auto& st = stats_[i];
    st.num_observations = count[i];
    if (count[i] > 0) {
      ++num_observed_;
      st.mean_speed_mps = speed_sum[i] / count[i];
      st.mean_time_s = time_sum[i] / count[i];
      st.var_time_s2 = std::max(
          0.0, time_sq_sum[i] / count[i] - st.mean_time_s * st.mean_time_s);
    }
  }
}

double SegmentStatsTable::MeanTime(roadnet::SegmentId s) const {
  const auto& st = stats(s);
  if (st.num_observations > 0) return st.mean_time_s;
  return net_.FreeFlowTime(s);
}

double SegmentStatsTable::TimeVariance(roadnet::SegmentId s) const {
  const auto& st = stats(s);
  const double mean = MeanTime(s);
  // Floor: at least (20% of the mean)^2, so the temporal likelihood never
  // becomes degenerate on sparsely observed segments.
  const double floor = 0.04 * mean * mean + 1.0;
  if (st.num_observations > 1) return std::max(st.var_time_s2, floor);
  return floor;
}

double SegmentStatsTable::RouteMeanTime(const Route& route) const {
  double t = 0.0;
  for (auto s : route) t += MeanTime(s);
  return t;
}

double SegmentStatsTable::RouteTimeVariance(const Route& route) const {
  double v = 0.0;
  for (auto s : route) v += TimeVariance(s);
  return v;
}

}  // namespace traj
}  // namespace deepst
