#include "traj/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace deepst {
namespace traj {

DatasetSplit SplitByDay(const std::vector<TripRecord>& records,
                        int train_days, int val_days) {
  DEEPST_CHECK_GE(train_days, 1);
  DEEPST_CHECK_GE(val_days, 0);
  DatasetSplit split;
  for (const auto& rec : records) {
    if (rec.trip.day < train_days) {
      split.train.push_back(&rec);
    } else if (rec.trip.day < train_days + val_days) {
      split.validation.push_back(&rec);
    } else {
      split.test.push_back(&rec);
    }
  }
  return split;
}

TripStatistics ComputeStatistics(const roadnet::RoadNetwork& net,
                                 const std::vector<TripRecord>& records) {
  TripStatistics stats;
  stats.num_trips = static_cast<int>(records.size());
  if (records.empty()) return stats;
  stats.min_distance_km = 1e18;
  stats.min_segments = 1 << 30;
  double dist_sum = 0.0;
  double seg_sum = 0.0;
  for (const auto& rec : records) {
    const double km = net.RouteLength(rec.trip.route) / 1000.0;
    const int nseg = static_cast<int>(rec.trip.route.size());
    stats.min_distance_km = std::min(stats.min_distance_km, km);
    stats.max_distance_km = std::max(stats.max_distance_km, km);
    stats.min_segments = std::min(stats.min_segments, nseg);
    stats.max_segments = std::max(stats.max_segments, nseg);
    dist_sum += km;
    seg_sum += nseg;
  }
  stats.mean_distance_km = dist_sum / stats.num_trips;
  stats.mean_segments = seg_sum / stats.num_trips;
  return stats;
}

std::vector<int> Histogram(const std::vector<double>& values, double lo,
                           double hi, int bins) {
  DEEPST_CHECK_GT(bins, 0);
  DEEPST_CHECK_GT(hi, lo);
  std::vector<int> hist(static_cast<size_t>(bins), 0);
  const double width = (hi - lo) / bins;
  for (double v : values) {
    int b = static_cast<int>((v - lo) / width);
    b = std::clamp(b, 0, bins - 1);
    ++hist[static_cast<size_t>(b)];
  }
  return hist;
}

std::vector<double> TravelDistancesKm(const roadnet::RoadNetwork& net,
                                      const std::vector<TripRecord>& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& rec : records) {
    out.push_back(net.RouteLength(rec.trip.route) / 1000.0);
  }
  return out;
}

std::vector<double> SegmentCounts(const std::vector<TripRecord>& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& rec : records) {
    out.push_back(static_cast<double>(rec.trip.route.size()));
  }
  return out;
}

std::vector<int> SpatialOccupancy(const roadnet::RoadNetwork& net,
                                  const std::vector<TripRecord>& records,
                                  int rows, int cols) {
  DEEPST_CHECK_GT(rows, 0);
  DEEPST_CHECK_GT(cols, 0);
  std::vector<int> counts(static_cast<size_t>(rows) * cols, 0);
  const geo::BoundingBox& box = net.bounds();
  for (const auto& rec : records) {
    for (const auto& p : rec.gps) {
      int r = static_cast<int>((p.pos.y - box.min.y) / box.Height() * rows);
      int c = static_cast<int>((p.pos.x - box.min.x) / box.Width() * cols);
      r = std::clamp(r, 0, rows - 1);
      c = std::clamp(c, 0, cols - 1);
      ++counts[static_cast<size_t>(r) * cols + c];
    }
  }
  return counts;
}

}  // namespace traj
}  // namespace deepst
