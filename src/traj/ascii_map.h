#ifndef DEEPST_TRAJ_ASCII_MAP_H_
#define DEEPST_TRAJ_ASCII_MAP_H_

#include <string>

#include "roadnet/road_network.h"
#include "traj/types.h"

namespace deepst {
namespace traj {

// Terminal-friendly visualization of a road network with optional overlays:
// a route ('#'), origin ('O'), destination ('X'). Used by the examples so a
// predicted route can be eyeballed without external plotting.
class AsciiMap {
 public:
  AsciiMap(const roadnet::RoadNetwork& net, int rows = 24, int cols = 48);

  // Draws all road segments as faint strokes ('.').
  void DrawNetwork();
  // Overlays a route with `ch`.
  void DrawRoute(const Route& route, char ch = '#');
  // Marks a point with `ch` (e.g. 'O' origin, 'X' destination).
  void MarkPoint(const geo::Point& p, char ch);

  std::string Render() const;

 private:
  void DrawPolyline(geo::PointSpan pts, char ch);
  void Plot(const geo::Point& p, char ch);

  const roadnet::RoadNetwork& net_;
  int rows_;
  int cols_;
  std::string cells_;  // rows_*cols_, row-major, row 0 = top (max y)
};

}  // namespace traj
}  // namespace deepst

#endif  // DEEPST_TRAJ_ASCII_MAP_H_
