#ifndef DEEPST_TRAJ_TYPES_H_
#define DEEPST_TRAJ_TYPES_H_

#include <vector>

#include "geo/point.h"
#include "roadnet/road_network.h"

namespace deepst {
namespace traj {

// A route is a sequence of consecutive road segments (paper Definition 2).
using Route = std::vector<roadnet::SegmentId>;

// One GPS sample of a moving vehicle (paper Definition 3).
struct GpsPoint {
  geo::Point pos;
  double time_s = 0.0;
  double speed_mps = 0.0;  // instantaneous probe speed
};

using GpsTrajectory = std::vector<GpsPoint>;

// A trip: a travel along `route` starting at `start_time_s` (paper
// Definition 4), plus the *rough* destination coordinate the dispatcher
// knows (paper Section III-A: only a lat/lng pair, not the exact ending
// street).
struct Trip {
  Route route;
  double start_time_s = 0.0;
  geo::Point destination;  // rough destination coordinate T.x
  int day = 0;

  roadnet::SegmentId origin_segment() const { return route.front(); }
  roadnet::SegmentId final_segment() const { return route.back(); }
};

// A trip together with its emitted GPS trace (the raw data a taxi company
// would log).
struct TripRecord {
  Trip trip;
  GpsTrajectory gps;
};

}  // namespace traj
}  // namespace deepst

#endif  // DEEPST_TRAJ_TYPES_H_
