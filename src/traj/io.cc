#include "traj/io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/byte_reader.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace deepst {
namespace traj {
namespace {

constexpr uint32_t kMagic = 0x0DA7A701;
// v1: raw records. v2 appends a CRC32 footer over everything before it;
// Load accepts both (v1 files predate the checksum).
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersion = 2;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Minimum on-disk sizes, used to reject counts that cannot fit in the
// remaining bytes before any allocation is sized from them.
constexpr uint64_t kTripHeaderBytes =
    3 * sizeof(double) + sizeof(int32_t) + sizeof(uint32_t);
constexpr uint64_t kGpsPointBytes = 4 * sizeof(double);

util::Status ParseRecords(util::ByteReader* in,
                          std::vector<TripRecord>* records) {
  uint64_t count = 0;
  if (!in->Read(&count)) return util::Status::IoError("truncated header");
  if (!in->CanHold(count, kTripHeaderBytes + sizeof(uint32_t))) {
    return util::Status::IoError("trip count exceeds file size");
  }
  records->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TripRecord rec;
    int32_t day = 0;
    uint32_t route_len = 0;
    if (!in->Read(&rec.trip.start_time_s) ||
        !in->Read(&rec.trip.destination.x) ||
        !in->Read(&rec.trip.destination.y) || !in->Read(&day) ||
        !in->Read(&route_len)) {
      return util::Status::IoError("truncated trip header");
    }
    if (!std::isfinite(rec.trip.start_time_s) ||
        !std::isfinite(rec.trip.destination.x) ||
        !std::isfinite(rec.trip.destination.y)) {
      return util::Status::InvalidArgument(
          util::StrFormat("trip %llu has non-finite header fields",
                          static_cast<unsigned long long>(i)));
    }
    if (day < 0) {
      return util::Status::InvalidArgument(
          util::StrFormat("trip %llu has negative day",
                          static_cast<unsigned long long>(i)));
    }
    rec.trip.day = day;
    if (!in->CanHold(route_len, sizeof(roadnet::SegmentId))) {
      return util::Status::IoError("route length exceeds file size");
    }
    rec.trip.route.resize(route_len);
    for (auto& s : rec.trip.route) {
      if (!in->Read(&s)) return util::Status::IoError("truncated route");
      if (s < 0) {
        return util::Status::InvalidArgument(
            util::StrFormat("trip %llu has negative segment id",
                            static_cast<unsigned long long>(i)));
      }
    }
    uint32_t gps_len = 0;
    if (!in->Read(&gps_len)) return util::Status::IoError("truncated gps");
    if (!in->CanHold(gps_len, kGpsPointBytes)) {
      return util::Status::IoError("gps length exceeds file size");
    }
    rec.gps.resize(gps_len);
    for (auto& p : rec.gps) {
      if (!in->Read(&p.pos.x) || !in->Read(&p.pos.y) ||
          !in->Read(&p.time_s) || !in->Read(&p.speed_mps)) {
        return util::Status::IoError("truncated gps point");
      }
      if (!std::isfinite(p.pos.x) || !std::isfinite(p.pos.y) ||
          !std::isfinite(p.time_s) || !std::isfinite(p.speed_mps)) {
        return util::Status::InvalidArgument(
            util::StrFormat("trip %llu has non-finite gps point",
                            static_cast<unsigned long long>(i)));
      }
    }
    records->push_back(std::move(rec));
  }
  return util::Status::Ok();
}

}  // namespace

util::Status SaveDataset(const std::vector<TripRecord>& records,
                         const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("traj.save"));
  std::ostringstream buf(std::ios::binary);
  WritePod(buf, kMagic);
  WritePod(buf, kVersion);
  WritePod(buf, static_cast<uint64_t>(records.size()));
  for (const auto& rec : records) {
    WritePod(buf, rec.trip.start_time_s);
    WritePod(buf, rec.trip.destination.x);
    WritePod(buf, rec.trip.destination.y);
    WritePod(buf, static_cast<int32_t>(rec.trip.day));
    WritePod(buf, static_cast<uint32_t>(rec.trip.route.size()));
    for (auto s : rec.trip.route) WritePod(buf, s);
    WritePod(buf, static_cast<uint32_t>(rec.gps.size()));
    for (const auto& p : rec.gps) {
      WritePod(buf, p.pos.x);
      WritePod(buf, p.pos.y);
      WritePod(buf, p.time_s);
      WritePod(buf, p.speed_mps);
    }
  }
  std::string bytes = std::move(buf).str();
  const uint32_t crc = util::Crc32(bytes.data(), bytes.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<std::vector<TripRecord>> LoadDataset(const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("traj.load"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  std::string bytes = std::move(raw).str();
  util::ByteReader reader(bytes);
  uint32_t magic = 0, version = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return util::Status::IoError("bad magic in " + path);
  }
  if (!reader.Read(&version) ||
      (version != kVersionLegacy && version != kVersion)) {
    return util::Status::IoError("unsupported version in " + path);
  }
  if (version == kVersion) {
    if (bytes.size() < 3 * sizeof(uint32_t)) {
      return util::Status::IoError("file too short: " + path);
    }
    const size_t body = bytes.size() - sizeof(uint32_t);
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + body, sizeof(stored_crc));
    if (util::Crc32(bytes.data(), body) != stored_crc) {
      return util::Status::DataLoss("dataset CRC mismatch in " + path +
                                    " (corrupt or truncated)");
    }
    bytes.resize(body);
    reader = util::ByteReader(bytes);
    uint32_t skip = 0;
    (void)reader.Read(&skip);  // magic, re-verified above
    (void)reader.Read(&skip);  // version
  }
  std::vector<TripRecord> records;
  util::Status parsed = ParseRecords(&reader, &records);
  if (!parsed.ok()) return parsed;
  return records;
}

util::Status ValidateDataset(const std::vector<TripRecord>& records,
                             const roadnet::RoadNetwork& net) {
  for (size_t i = 0; i < records.size(); ++i) {
    const Trip& trip = records[i].trip;
    for (roadnet::SegmentId s : trip.route) {
      if (s < 0 || s >= net.num_segments()) {
        return util::Status::OutOfRange(
            util::StrFormat("trip %zu references segment %d; network has %d",
                            i, static_cast<int>(s), net.num_segments()));
      }
    }
    for (size_t j = 0; j + 1 < trip.route.size(); ++j) {
      if (!net.AreConsecutive(trip.route[j], trip.route[j + 1])) {
        return util::Status::InvalidArgument(util::StrFormat(
            "trip %zu route segments %d -> %d not adjacent", i,
            static_cast<int>(trip.route[j]),
            static_cast<int>(trip.route[j + 1])));
      }
    }
  }
  return util::Status::Ok();
}

util::Status ExportGpsCsv(const std::vector<TripRecord>& records,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out << "trip_id,time_s,x,y,speed_mps\n";
  for (size_t i = 0; i < records.size(); ++i) {
    for (const auto& p : records[i].gps) {
      out << i << ',' << p.time_s << ',' << p.pos.x << ',' << p.pos.y << ','
          << p.speed_mps << '\n';
    }
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status ExportTripsCsv(const std::vector<TripRecord>& records,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out << "trip_id,day,start_time_s,dest_x,dest_y,num_segments,route\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const Trip& trip = records[i].trip;
    out << i << ',' << trip.day << ',' << trip.start_time_s << ','
        << trip.destination.x << ',' << trip.destination.y << ','
        << trip.route.size() << ',';
    for (size_t j = 0; j < trip.route.size(); ++j) {
      if (j > 0) out << '|';
      out << trip.route[j];
    }
    out << '\n';
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace traj
}  // namespace deepst
