#include "traj/io.h"

#include <cstdint>
#include <fstream>

#include "util/string_util.h"

namespace deepst {
namespace traj {
namespace {

constexpr uint32_t kMagic = 0x0DA7A701;
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

util::Status SaveDataset(const std::vector<TripRecord>& records,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(records.size()));
  for (const auto& rec : records) {
    WritePod(out, rec.trip.start_time_s);
    WritePod(out, rec.trip.destination.x);
    WritePod(out, rec.trip.destination.y);
    WritePod(out, static_cast<int32_t>(rec.trip.day));
    WritePod(out, static_cast<uint32_t>(rec.trip.route.size()));
    for (auto s : rec.trip.route) WritePod(out, s);
    WritePod(out, static_cast<uint32_t>(rec.gps.size()));
    for (const auto& p : rec.gps) {
      WritePod(out, p.pos.x);
      WritePod(out, p.pos.y);
      WritePod(out, p.time_s);
      WritePod(out, p.speed_mps);
    }
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<std::vector<TripRecord>> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  uint32_t magic = 0, version = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return util::Status::IoError("bad magic in " + path);
  }
  if (!ReadPod(in, &version) || version != kVersion) {
    return util::Status::IoError("unsupported version in " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return util::Status::IoError("truncated header");
  std::vector<TripRecord> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TripRecord rec;
    int32_t day = 0;
    uint32_t route_len = 0;
    if (!ReadPod(in, &rec.trip.start_time_s) ||
        !ReadPod(in, &rec.trip.destination.x) ||
        !ReadPod(in, &rec.trip.destination.y) || !ReadPod(in, &day) ||
        !ReadPod(in, &route_len)) {
      return util::Status::IoError("truncated trip header");
    }
    rec.trip.day = day;
    rec.trip.route.resize(route_len);
    for (auto& s : rec.trip.route) {
      if (!ReadPod(in, &s)) return util::Status::IoError("truncated route");
    }
    uint32_t gps_len = 0;
    if (!ReadPod(in, &gps_len)) return util::Status::IoError("truncated gps");
    rec.gps.resize(gps_len);
    for (auto& p : rec.gps) {
      if (!ReadPod(in, &p.pos.x) || !ReadPod(in, &p.pos.y) ||
          !ReadPod(in, &p.time_s) || !ReadPod(in, &p.speed_mps)) {
        return util::Status::IoError("truncated gps point");
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

util::Status ExportGpsCsv(const std::vector<TripRecord>& records,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out << "trip_id,time_s,x,y,speed_mps\n";
  for (size_t i = 0; i < records.size(); ++i) {
    for (const auto& p : records[i].gps) {
      out << i << ',' << p.time_s << ',' << p.pos.x << ',' << p.pos.y << ','
          << p.speed_mps << '\n';
    }
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status ExportTripsCsv(const std::vector<TripRecord>& records,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out << "trip_id,day,start_time_s,dest_x,dest_y,num_segments,route\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const Trip& trip = records[i].trip;
    out << i << ',' << trip.day << ',' << trip.start_time_s << ','
        << trip.destination.x << ',' << trip.destination.y << ','
        << trip.route.size() << ',';
    for (size_t j = 0; j < trip.route.size(); ++j) {
      if (j > 0) out << '|';
      out << trip.route[j];
    }
    out << '\n';
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace traj
}  // namespace deepst
