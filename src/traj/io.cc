#include "traj/io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/byte_reader.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/fixed_format.h"
#include "util/mapped_file.h"
#include "util/string_util.h"

namespace deepst {
namespace traj {
namespace {

constexpr uint32_t kMagic = 0x0DA7A701;
// v1: raw records. v2 appends a CRC32 footer over everything before it.
// v3: fixed-layout mmap-able sections (docs/formats.md). Load accepts all
// three (v1 files predate the checksum).
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersion = 2;
constexpr uint32_t kVersionV3 = 3;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

// Minimum on-disk sizes, used to reject counts that cannot fit in the
// remaining bytes before any allocation is sized from them.
constexpr uint64_t kTripHeaderBytes =
    3 * sizeof(double) + sizeof(int32_t) + sizeof(uint32_t);
constexpr uint64_t kGpsPointBytes = 4 * sizeof(double);

util::Status ParseRecords(util::ByteReader* in,
                          std::vector<TripRecord>* records) {
  uint64_t count = 0;
  if (!in->Read(&count)) return util::Status::IoError("truncated header");
  if (!in->CanHold(count, kTripHeaderBytes + sizeof(uint32_t))) {
    return util::Status::IoError("trip count exceeds file size");
  }
  records->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TripRecord rec;
    int32_t day = 0;
    uint32_t route_len = 0;
    if (!in->Read(&rec.trip.start_time_s) ||
        !in->Read(&rec.trip.destination.x) ||
        !in->Read(&rec.trip.destination.y) || !in->Read(&day) ||
        !in->Read(&route_len)) {
      return util::Status::IoError("truncated trip header");
    }
    if (!std::isfinite(rec.trip.start_time_s) ||
        !std::isfinite(rec.trip.destination.x) ||
        !std::isfinite(rec.trip.destination.y)) {
      return util::Status::InvalidArgument(
          util::StrFormat("trip %llu has non-finite header fields",
                          static_cast<unsigned long long>(i)));
    }
    if (day < 0) {
      return util::Status::InvalidArgument(
          util::StrFormat("trip %llu has negative day",
                          static_cast<unsigned long long>(i)));
    }
    rec.trip.day = day;
    if (!in->CanHold(route_len, sizeof(roadnet::SegmentId))) {
      return util::Status::IoError("route length exceeds file size");
    }
    rec.trip.route.resize(route_len);
    for (auto& s : rec.trip.route) {
      if (!in->Read(&s)) return util::Status::IoError("truncated route");
      if (s < 0) {
        return util::Status::InvalidArgument(
            util::StrFormat("trip %llu has negative segment id",
                            static_cast<unsigned long long>(i)));
      }
    }
    uint32_t gps_len = 0;
    if (!in->Read(&gps_len)) return util::Status::IoError("truncated gps");
    if (!in->CanHold(gps_len, kGpsPointBytes)) {
      return util::Status::IoError("gps length exceeds file size");
    }
    rec.gps.resize(gps_len);
    for (auto& p : rec.gps) {
      if (!in->Read(&p.pos.x) || !in->Read(&p.pos.y) ||
          !in->Read(&p.time_s) || !in->Read(&p.speed_mps)) {
        return util::Status::IoError("truncated gps point");
      }
      if (!std::isfinite(p.pos.x) || !std::isfinite(p.pos.y) ||
          !std::isfinite(p.time_s) || !std::isfinite(p.speed_mps)) {
        return util::Status::InvalidArgument(
            util::StrFormat("trip %llu has non-finite gps point",
                            static_cast<unsigned long long>(i)));
      }
    }
    records->push_back(std::move(rec));
  }
  return util::Status::Ok();
}

// -- Format v3 ---------------------------------------------------------------
//
// Fixed 40-byte header, section table, 8-aligned payloads, CRC footer
// (util/fixed_format.h). Trips are fixed 56-byte records indexing into
// shared route-id and GPS-point pools. Byte layout in docs/formats.md.
struct TrajHeaderV3 {
  uint32_t magic = kMagic;
  uint32_t version = kVersionV3;
  uint64_t num_trips = 0;
  uint64_t num_route_ids = 0;
  uint64_t num_gps_points = 0;
  uint32_t num_sections = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(TrajHeaderV3) == 40);

struct TripRecV3 {
  double start_time_s = 0.0;
  double dest_x = 0.0;
  double dest_y = 0.0;
  uint64_t route_start = 0;  // into the route-id pool
  uint64_t gps_start = 0;    // into the GPS-point pool
  int32_t day = 0;
  uint32_t route_len = 0;
  uint32_t gps_len = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(TripRecV3) == 56);

// GpsPoint is written as a raw struct view; its memory layout must equal the
// v1/v2 field order (x, y, time_s, speed_mps).
static_assert(sizeof(GpsPoint) == 32);
static_assert(std::is_trivially_copyable_v<GpsPoint>);

constexpr uint32_t kSecTrips = 1;
constexpr uint32_t kSecRouteIds = 2;
constexpr uint32_t kSecGpsPoints = 3;

util::Status LoadDatasetV3(const util::MappedFile& file,
                           const std::string& path,
                           std::vector<TripRecord>* records) {
  const char* data = file.data();
  const size_t size = file.size();
  DEEPST_RETURN_IF_ERROR(util::CheckCrcFooter(data, size, path));
  if (size < sizeof(TrajHeaderV3) + util::kFooterBytes) {
    return util::Status::IoError("file too short: " + path);
  }
  TrajHeaderV3 hdr;
  std::memcpy(&hdr, data, sizeof(hdr));
  if (hdr.num_trips >= (1ull << 40) || hdr.num_route_ids >= (1ull << 40) ||
      hdr.num_gps_points >= (1ull << 40)) {
    return util::Status::InvalidArgument("implausible element counts in " +
                                         path);
  }
  auto sections = util::SectionMap::Parse(data, size, sizeof(TrajHeaderV3),
                                          hdr.num_sections, path);
  DEEPST_RETURN_IF_ERROR(sections.status());
  const util::SectionMap& map = sections.value();
  const TripRecV3* trips = nullptr;
  const roadnet::SegmentId* route_ids = nullptr;
  const GpsPoint* gps = nullptr;
  DEEPST_RETURN_IF_ERROR(map.View(kSecTrips, hdr.num_trips, &trips));
  DEEPST_RETURN_IF_ERROR(map.View(kSecRouteIds, hdr.num_route_ids,
                                  &route_ids));
  DEEPST_RETURN_IF_ERROR(map.View(kSecGpsPoints, hdr.num_gps_points, &gps));
  // Validate the pools and records against the mapping first, then
  // materialize each trip with two bulk copies.
  for (uint64_t i = 0; i < hdr.num_route_ids; ++i) {
    if (route_ids[i] < 0) {
      return util::Status::InvalidArgument("negative segment id in " + path);
    }
  }
  for (uint64_t i = 0; i < hdr.num_gps_points; ++i) {
    if (!std::isfinite(gps[i].pos.x) || !std::isfinite(gps[i].pos.y) ||
        !std::isfinite(gps[i].time_s) || !std::isfinite(gps[i].speed_mps)) {
      return util::Status::InvalidArgument("non-finite gps point in " + path);
    }
  }
  for (uint64_t i = 0; i < hdr.num_trips; ++i) {
    const TripRecV3& t = trips[i];
    if (!std::isfinite(t.start_time_s) || !std::isfinite(t.dest_x) ||
        !std::isfinite(t.dest_y) || t.day < 0) {
      return util::Status::InvalidArgument(
          util::StrFormat("trip %llu has bad header fields in %s",
                          static_cast<unsigned long long>(i), path.c_str()));
    }
    if (t.route_start > hdr.num_route_ids ||
        t.route_len > hdr.num_route_ids - t.route_start ||
        t.gps_start > hdr.num_gps_points ||
        t.gps_len > hdr.num_gps_points - t.gps_start) {
      return util::Status::IoError(
          util::StrFormat("trip %llu pool range out of bounds in %s",
                          static_cast<unsigned long long>(i), path.c_str()));
    }
  }
  records->reserve(hdr.num_trips);
  for (uint64_t i = 0; i < hdr.num_trips; ++i) {
    const TripRecV3& t = trips[i];
    TripRecord rec;
    rec.trip.start_time_s = t.start_time_s;
    rec.trip.destination = geo::Point{t.dest_x, t.dest_y};
    rec.trip.day = t.day;
    rec.trip.route.assign(route_ids + t.route_start,
                          route_ids + t.route_start + t.route_len);
    rec.gps.assign(gps + t.gps_start, gps + t.gps_start + t.gps_len);
    records->push_back(std::move(rec));
  }
  return util::Status::Ok();
}

}  // namespace

util::Status SaveDatasetV3(const std::vector<TripRecord>& records,
                           const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("traj.save"));
  TrajHeaderV3 hdr;
  hdr.num_trips = records.size();
  hdr.num_sections = 3;
  std::vector<TripRecV3> trips;
  trips.reserve(records.size());
  std::vector<roadnet::SegmentId> route_pool;
  std::vector<GpsPoint> gps_pool;
  for (const auto& rec : records) {
    TripRecV3 t;
    t.start_time_s = rec.trip.start_time_s;
    t.dest_x = rec.trip.destination.x;
    t.dest_y = rec.trip.destination.y;
    t.day = rec.trip.day;
    t.route_start = route_pool.size();
    t.route_len = static_cast<uint32_t>(rec.trip.route.size());
    t.gps_start = gps_pool.size();
    t.gps_len = static_cast<uint32_t>(rec.gps.size());
    route_pool.insert(route_pool.end(), rec.trip.route.begin(),
                      rec.trip.route.end());
    gps_pool.insert(gps_pool.end(), rec.gps.begin(), rec.gps.end());
    trips.push_back(t);
  }
  hdr.num_route_ids = route_pool.size();
  hdr.num_gps_points = gps_pool.size();
  util::SectionWriter sections(sizeof(hdr), hdr.num_sections);
  sections.Add(kSecTrips, trips.data(), trips.size());
  sections.Add(kSecRouteIds, route_pool.data(), route_pool.size());
  sections.Add(kSecGpsPoints, gps_pool.data(), gps_pool.size());
  std::string bytes;
  util::AppendPod(&bytes, &hdr, 1);
  sections.AppendTo(&bytes);
  util::AppendCrcFooter(&bytes);
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status SaveDataset(const std::vector<TripRecord>& records,
                         const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("traj.save"));
  std::ostringstream buf(std::ios::binary);
  WritePod(buf, kMagic);
  WritePod(buf, kVersion);
  WritePod(buf, static_cast<uint64_t>(records.size()));
  for (const auto& rec : records) {
    WritePod(buf, rec.trip.start_time_s);
    WritePod(buf, rec.trip.destination.x);
    WritePod(buf, rec.trip.destination.y);
    WritePod(buf, static_cast<int32_t>(rec.trip.day));
    WritePod(buf, static_cast<uint32_t>(rec.trip.route.size()));
    for (auto s : rec.trip.route) WritePod(buf, s);
    WritePod(buf, static_cast<uint32_t>(rec.gps.size()));
    for (const auto& p : rec.gps) {
      WritePod(buf, p.pos.x);
      WritePod(buf, p.pos.y);
      WritePod(buf, p.time_s);
      WritePod(buf, p.speed_mps);
    }
  }
  std::string bytes = std::move(buf).str();
  const uint32_t crc = util::Crc32(bytes.data(), bytes.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::StatusOr<std::vector<TripRecord>> LoadDataset(const std::string& path) {
  DEEPST_RETURN_IF_ERROR(util::CheckFaultPoint("traj.load"));
  auto opened = util::MappedFile::Open(path);
  DEEPST_RETURN_IF_ERROR(opened.status());
  const util::MappedFile file = std::move(opened).value();
  const char* data = file.data();
  const size_t size = file.size();
  util::ByteReader reader(data, size);
  uint32_t magic = 0, version = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return util::Status::IoError("bad magic in " + path);
  }
  if (!reader.Read(&version)) {
    return util::Status::IoError("file too short: " + path);
  }
  std::vector<TripRecord> records;
  if (version == kVersionV3) {
    DEEPST_RETURN_IF_ERROR(LoadDatasetV3(file, path, &records));
    return records;
  }
  if (version != kVersionLegacy && version != kVersion) {
    return util::Status::IoError("unsupported version in " + path);
  }
  size_t body = size;
  if (version == kVersion) {
    if (size < 3 * sizeof(uint32_t)) {
      return util::Status::IoError("file too short: " + path);
    }
    body = size - sizeof(uint32_t);
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, data + body, sizeof(stored_crc));
    if (util::Crc32(data, body) != stored_crc) {
      return util::Status::DataLoss("dataset CRC mismatch in " + path +
                                    " (corrupt or truncated)");
    }
  }
  util::ByteReader body_reader(data + 2 * sizeof(uint32_t),
                               body - 2 * sizeof(uint32_t));
  util::Status parsed = ParseRecords(&body_reader, &records);
  if (!parsed.ok()) return parsed;
  return records;
}

util::StatusOr<std::string> DescribeDatasetFile(const std::string& path,
                                                bool* healthy) {
  if (healthy != nullptr) *healthy = true;
  auto opened = util::MappedFile::Open(path);
  DEEPST_RETURN_IF_ERROR(opened.status());
  const util::MappedFile& file = std::move(opened).value();
  const char* data = file.data();
  const size_t size = file.size();
  util::ByteReader reader(data, size);
  uint32_t magic = 0, version = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return util::Status::InvalidArgument("not a dataset file: " + path);
  }
  if (!reader.Read(&version)) {
    return util::Status::IoError("file too short: " + path);
  }
  std::string out = util::StrFormat(
      "trajectory dataset  %s\n  format: v%u  size: %llu bytes\n",
      path.c_str(), version, static_cast<unsigned long long>(size));
  if (version == kVersionV3) {
    const util::Status crc = util::CheckCrcFooter(data, size, path);
    out += util::StrFormat("  crc: %s\n",
                           crc.ok() ? "ok" : crc.ToString().c_str());
    if (!crc.ok() && healthy != nullptr) *healthy = false;
    if (crc.ok() && size >= sizeof(TrajHeaderV3) + util::kFooterBytes) {
      TrajHeaderV3 hdr;
      std::memcpy(&hdr, data, sizeof(hdr));
      out += util::StrFormat(
          "  trips: %llu  route ids: %llu  gps points: %llu\n",
          static_cast<unsigned long long>(hdr.num_trips),
          static_cast<unsigned long long>(hdr.num_route_ids),
          static_cast<unsigned long long>(hdr.num_gps_points));
      out += util::StrFormat(
          "  zero-copy pools: yes (%s this open)\n",
          file.is_mapped() ? "mmap'ed" : "buffered fallback");
    }
  } else if (version == kVersion || version == kVersionLegacy) {
    if (version == kVersion && size >= 3 * sizeof(uint32_t)) {
      const size_t body = size - sizeof(uint32_t);
      uint32_t stored_crc = 0;
      std::memcpy(&stored_crc, data + body, sizeof(stored_crc));
      const bool crc_ok = util::Crc32(data, body) == stored_crc;
      if (!crc_ok && healthy != nullptr) *healthy = false;
      out += util::StrFormat("  crc: %s\n", crc_ok ? "ok" : "MISMATCH");
    } else {
      out += "  crc: none (v1 predates the checksum)\n";
    }
    uint64_t num_trips = 0;
    if (reader.Read(&num_trips)) {
      out += util::StrFormat("  trips: %llu\n",
                             static_cast<unsigned long long>(num_trips));
    }
    out += "  zero-copy pools: no (streaming format; convert to v3)\n";
  } else {
    if (healthy != nullptr) *healthy = false;
    out += "  unsupported version\n";
  }
  return out;
}

util::Status ValidateDataset(const std::vector<TripRecord>& records,
                             const roadnet::RoadNetwork& net) {
  for (size_t i = 0; i < records.size(); ++i) {
    const Trip& trip = records[i].trip;
    for (roadnet::SegmentId s : trip.route) {
      if (s < 0 || s >= net.num_segments()) {
        return util::Status::OutOfRange(
            util::StrFormat("trip %zu references segment %d; network has %d",
                            i, static_cast<int>(s), net.num_segments()));
      }
    }
    for (size_t j = 0; j + 1 < trip.route.size(); ++j) {
      if (!net.AreConsecutive(trip.route[j], trip.route[j + 1])) {
        return util::Status::InvalidArgument(util::StrFormat(
            "trip %zu route segments %d -> %d not adjacent", i,
            static_cast<int>(trip.route[j]),
            static_cast<int>(trip.route[j + 1])));
      }
    }
  }
  return util::Status::Ok();
}

util::Status ExportGpsCsv(const std::vector<TripRecord>& records,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out << "trip_id,time_s,x,y,speed_mps\n";
  for (size_t i = 0; i < records.size(); ++i) {
    for (const auto& p : records[i].gps) {
      out << i << ',' << p.time_s << ',' << p.pos.x << ',' << p.pos.y << ','
          << p.speed_mps << '\n';
    }
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status ExportTripsCsv(const std::vector<TripRecord>& records,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out << "trip_id,day,start_time_s,dest_x,dest_y,num_segments,route\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const Trip& trip = records[i].trip;
    out << i << ',' << trip.day << ',' << trip.start_time_s << ','
        << trip.destination.x << ',' << trip.destination.y << ','
        << trip.route.size() << ',';
    for (size_t j = 0; j < trip.route.size(); ++j) {
      if (j > 0) out << '|';
      out << trip.route[j];
    }
    out << '\n';
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace traj
}  // namespace deepst
