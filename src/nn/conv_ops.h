#ifndef DEEPST_NN_CONV_OPS_H_
#define DEEPST_NN_CONV_OPS_H_

#include "nn/variable.h"

namespace deepst {
namespace nn {
namespace ops {

// 2-D convolution, NCHW layout.
//   x: [B, Cin, H, W], w: [Cout, Cin, Kh, Kw], b: [Cout] (may be null).
// Output spatial size: floor((H + 2*pad - Kh)/stride) + 1.
VarPtr Conv2d(const VarPtr& x, const VarPtr& w, const VarPtr& b, int stride,
              int pad);

// Batch normalization over (B, H, W) per channel, training mode (batch
// statistics; updates running stats in-place through the raw pointers) or
// eval mode (running stats). gamma/beta: [C].
struct BatchNormState {
  Tensor running_mean;  // [C]
  Tensor running_var;   // [C]
  float momentum = 0.1f;
  float eps = 1e-5f;
};
VarPtr BatchNorm2d(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                   BatchNormState* state, bool training);

// Global average pooling: [B, C, H, W] -> [B, C].
VarPtr GlobalAvgPool2d(const VarPtr& x);

// Average pooling with square kernel/stride: [B,C,H,W] -> [B,C,H/k,W/k]
// (floor; partial windows averaged over their actual size).
VarPtr AvgPool2d(const VarPtr& x, int kernel);

}  // namespace ops
}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_CONV_OPS_H_
