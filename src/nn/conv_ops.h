#ifndef DEEPST_NN_CONV_OPS_H_
#define DEEPST_NN_CONV_OPS_H_

#include <cstddef>
#include <vector>

#include "nn/variable.h"

namespace deepst {
namespace nn {
namespace ops {

// 2-D convolution, NCHW layout.
//   x: [B, Cin, H, W], w: [Cout, Cin, Kh, Kw], b: [Cout] (may be null).
// Output spatial size: floor((H + 2*pad - Kh)/stride) + 1.
VarPtr Conv2d(const VarPtr& x, const VarPtr& w, const VarPtr& b, int stride,
              int pad);

// Batch normalization over (B, H, W) per channel, training mode (batch
// statistics; updates running stats in-place through the raw pointers) or
// eval mode (running stats). gamma/beta: [C].
struct BatchNormState {
  Tensor running_mean;  // [C]
  Tensor running_var;   // [C]
  float momentum = 0.1f;
  float eps = 1e-5f;
};
VarPtr BatchNorm2d(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                   BatchNormState* state, bool training);

// Deferred batch-norm running-stat updates for data-parallel training.
// BatchNormState is shared mutable model state: concurrent shards running
// training-mode BatchNorm2d would race on the in-place EMA update. While a
// ScopedBnStatsLog is active on the thread, BatchNorm2d records the batch
// statistics here instead of updating the state; the trainer replays the
// logs with Apply() in ascending shard order after the join, so the running
// stats are race-free and bitwise identical for every thread count. The
// running stats never feed the training-mode forward/backward math, so
// deferring the update does not change any activation or gradient.
// Entry storage is recycled across batches (Clear rewinds, Record reuses).
class BnStatsLog {
 public:
  void Clear() { used_ = 0; }

  // Logs one training-mode BatchNorm2d call's per-channel batch mean/var.
  void Record(BatchNormState* state, const Tensor& mean, const Tensor& var);

  // Applies the logged EMA updates in record order.
  void Apply() const;

 private:
  struct Entry {
    BatchNormState* state = nullptr;
    std::vector<float> mean;
    std::vector<float> var;
  };
  std::vector<Entry> entries_;
  size_t used_ = 0;
};

class ScopedBnStatsLog {
 public:
  explicit ScopedBnStatsLog(BnStatsLog* log);
  ~ScopedBnStatsLog();
  ScopedBnStatsLog(const ScopedBnStatsLog&) = delete;
  ScopedBnStatsLog& operator=(const ScopedBnStatsLog&) = delete;

 private:
  BnStatsLog* prev_;
};

// The thread's active log, or nullptr.
BnStatsLog* ActiveBnStatsLog();

// Global average pooling: [B, C, H, W] -> [B, C].
VarPtr GlobalAvgPool2d(const VarPtr& x);

// Average pooling with square kernel/stride: [B,C,H,W] -> [B,C,H/k,W/k]
// (floor; partial windows averaged over their actual size).
VarPtr AvgPool2d(const VarPtr& x, int kernel);

}  // namespace ops
}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_CONV_OPS_H_
