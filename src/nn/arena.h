#ifndef DEEPST_NN_ARENA_H_
#define DEEPST_NN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "nn/variable.h"

namespace deepst {
namespace nn {

// Recycling pools for the training hot loop. The define-by-run tape discards
// every graph node and intermediate tensor after each backward pass; without
// recycling that is two heap allocations per op per step (the Variable node
// and its value storage), repeated millions of times per epoch. An
// AutodiffArena keeps both alive across steps instead — the same slot-arena
// idea as nn::infer::Arena, extended to the autodiff graph:
//
//   * BufferPool recycles tensor float storage in power-of-two size
//     classes. Tensor's storage lifecycle (see detail::AcquireBuffer /
//     ReleaseBuffer) leases from the thread-active pool, so tensors created
//     and destroyed inside the arena scope stop touching the allocator once
//     every size class is warm.
//   * The node pool recycles shared_ptr<Variable> graph nodes behind
//     MakeVar. BeginStep() rewinds the cursor; Lease() hands back the next
//     node with its old value tensor, gradient, parents and backward
//     closure recycled into the pools.
//
// miss/grow counters expose the steady state: after a warmup step at the
// largest shapes, a training step performs zero pool misses and zero node
// growths. (Residual small allocations remain — shape vectors built at op
// call sites and std::function closure storage — but all tensor data and
// graph nodes, the dominant allocations by bytes, are recycled; see
// docs/training-perf.md.)
//
// Arenas are not thread-safe; exactly one thread uses an arena at a time.
// The sharded trainer owns one arena per shard slot and activates it inside
// the shard's task, so the recycling loop stays closed within one arena no
// matter which worker thread runs the shard.
class BufferPool {
 public:
  // Makes *out an n-element buffer (contents unspecified), reusing a
  // recycled buffer of sufficient capacity when one is available. *out must
  // be empty (default-constructed or released).
  void Acquire(size_t n, std::vector<float>* out);

  // Donates buf's storage to the pool and leaves *buf empty.
  void Release(std::vector<float>* buf);

  int64_t miss_count() const { return miss_count_; }
  int64_t reuse_count() const { return reuse_count_; }

 private:
  static constexpr int kNumBuckets = 48;  // up to 2^47 floats — plenty
  std::vector<std::vector<float>> buckets_[kNumBuckets];
  int64_t miss_count_ = 0;
  int64_t reuse_count_ = 0;
};

class AutodiffArena {
 public:
  AutodiffArena() = default;
  ~AutodiffArena() = default;
  AutodiffArena(const AutodiffArena&) = delete;
  AutodiffArena& operator=(const AutodiffArena&) = delete;

  // Rewinds the node cursor: the previous step's graph must already be
  // dropped (no live references besides the pool's own).
  void BeginStep();

  // Next recycled node, re-initialized to a fresh leaf holding `value`.
  VarPtr Lease(Tensor value, bool requires_grad);

  BufferPool* buffers() { return &buffers_; }

  // Steady-state telemetry: node pool growths and buffer pool misses since
  // construction. Flat counters across steps == zero-allocation steady
  // state for graph nodes and tensor storage.
  int64_t node_grow_count() const { return node_grow_count_; }
  int64_t buffer_miss_count() const { return buffers_.miss_count(); }
  int64_t nodes_in_use() const { return static_cast<int64_t>(cursor_); }

 private:
  BufferPool buffers_;
  std::vector<VarPtr> nodes_;
  size_t cursor_ = 0;
  int64_t node_grow_count_ = 0;
};

// Thread-local arena activation. While a scope is live on a thread, MakeVar
// leases nodes from the arena and every Tensor storage acquire/release on
// that thread goes through the arena's BufferPool.
class ScopedAutodiffArena {
 public:
  explicit ScopedAutodiffArena(AutodiffArena* arena);
  ~ScopedAutodiffArena();
  ScopedAutodiffArena(const ScopedAutodiffArena&) = delete;
  ScopedAutodiffArena& operator=(const ScopedAutodiffArena&) = delete;

 private:
  AutodiffArena* prev_;
};

// The thread's active arena, or nullptr.
AutodiffArena* ActiveArena();

// Per-shard parameter-gradient sink for data-parallel training. While a
// ScopedGradShard is live on a thread, Variable::grad() on a slot-bound
// parameter (Variable::set_param_slot) resolves to the shard's private slot
// tensor instead of the parameter's own gradient, so concurrent shards
// accumulate without racing; the trainer then reduces the shards into the
// real gradients in ascending shard order (nn::AccumulateShardGrads), which
// keeps the sum bitwise identical for every thread count.
class GradShard {
 public:
  // Sizes the shard for `num_params` slots. Idempotent; keeps storage.
  void Bind(size_t num_params);

  // Marks every slot untouched. Slot storage is kept and re-zeroed lazily on
  // first touch, so steady-state batches allocate nothing.
  void Begin();

  // The slot's gradient tensor, zeroed and shaped like `like` on the first
  // touch after Begin().
  Tensor& Slot(int slot, const Tensor& like);

  bool touched(size_t slot) const { return touched_[slot] != 0; }
  const Tensor& slot_grad(size_t slot) const { return slots_[slot]; }
  size_t num_params() const { return slots_.size(); }

 private:
  std::vector<Tensor> slots_;
  std::vector<uint8_t> touched_;
};

class ScopedGradShard {
 public:
  explicit ScopedGradShard(GradShard* shard);
  ~ScopedGradShard();
  ScopedGradShard(const ScopedGradShard&) = delete;
  ScopedGradShard& operator=(const ScopedGradShard&) = delete;

 private:
  GradShard* prev_;
};

// The thread's active gradient shard, or nullptr.
GradShard* ActiveGradShard();

namespace detail {

// Tensor storage lifecycle hooks (called from nn::Tensor). With an active
// arena on the thread they lease/recycle through its BufferPool; otherwise
// Acquire is a plain resize and Release clears the vector (freeing storage).
void AcquireBuffer(size_t n, std::vector<float>* out);
void ReleaseBuffer(std::vector<float>* buf);

}  // namespace detail

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_ARENA_H_
