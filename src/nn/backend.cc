#include "nn/backend.h"

#include <memory>

namespace deepst {
namespace nn {
namespace {

SerialBackend* Serial() {
  static SerialBackend* serial = new SerialBackend();
  return serial;
}

// Current global backend plus the ParallelBackend it points at (if any).
// Intentionally leaked; pool threads live for the process lifetime.
Backend* g_backend = nullptr;
std::unique_ptr<ParallelBackend>* ParallelSlot() {
  static std::unique_ptr<ParallelBackend>* slot =
      new std::unique_ptr<ParallelBackend>();
  return slot;
}

}  // namespace

Backend* GetBackend() { return g_backend != nullptr ? g_backend : Serial(); }

int GetBackendThreads() { return GetBackend()->num_threads(); }

void SetBackendThreads(int num_threads) {
  if (num_threads <= 1) {
    g_backend = Serial();
    ParallelSlot()->reset();
    return;
  }
  if (GetBackendThreads() == num_threads) return;
  auto* slot = ParallelSlot();
  g_backend = Serial();  // Never leave a dangling backend installed.
  slot->reset(new ParallelBackend(num_threads));
  g_backend = slot->get();
}

}  // namespace nn
}  // namespace deepst
