#ifndef DEEPST_NN_BACKEND_H_
#define DEEPST_NN_BACKEND_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_pool.h"

namespace deepst {
namespace nn {

// Execution backend for nn kernels and batch-level fan-out (trainer
// validation, test-set prediction). All FLOPs in ops.cc / conv_ops.cc
// dispatch through the process-global Backend via the helpers below, so
// swapping the backend swaps the execution strategy for the whole stack.
//
// Determinism contract (see docs/parallelism.md): results must be bitwise
// identical for every backend and thread count. Run() may execute tasks in
// any order and concurrently, so callers only hand it work whose float
// accumulation order does not depend on the schedule: either tasks write
// disjoint outputs with a fixed per-task inner order, or they fill per-task
// partial buffers that the caller combines in ascending task order.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;
  virtual int num_threads() const = 0;

  // Invokes task(i) exactly once for each i in [0, n), possibly
  // concurrently; returns after all invocations completed. Nested Run calls
  // (from inside a task) execute inline on the calling thread.
  virtual void Run(int64_t n, const std::function<void(int64_t)>& task) = 0;
};

// Runs every task inline, in ascending order. The default backend.
class SerialBackend : public Backend {
 public:
  const char* name() const override { return "serial"; }
  int num_threads() const override { return 1; }
  void Run(int64_t n, const std::function<void(int64_t)>& task) override {
    for (int64_t i = 0; i < n; ++i) task(i);
  }
};

// Fans tasks out over a util::ThreadPool; the calling thread participates.
class ParallelBackend : public Backend {
 public:
  explicit ParallelBackend(int num_threads) : pool_(num_threads) {}
  const char* name() const override { return "parallel"; }
  int num_threads() const override { return pool_.num_threads(); }
  void Run(int64_t n, const std::function<void(int64_t)>& task) override {
    pool_.ParallelFor(n, task);
  }

 private:
  util::ThreadPool pool_;
};

// Process-global backend. Never null; defaults to a SerialBackend.
// SetBackendThreads(n) installs a ParallelBackend(n) for n >= 2 and restores
// the serial backend for n <= 1; it is idempotent for the current value.
// Not safe to call concurrently with running work — configure the backend
// from the main thread between graph executions (cli/bench/trainer entry
// points do exactly that).
Backend* GetBackend();
void SetBackendThreads(int num_threads);
int GetBackendThreads();

// RAII guard: installs an N-thread backend for the scope (num_threads >= 1)
// and restores the previous thread count on destruction, so entry points
// that configure the backend for themselves (trainer fit/eval) no longer
// silently reconfigure subsequent callers. num_threads <= 0 leaves the
// backend untouched. SetBackendThreads is idempotent, so nesting guards
// with the same count costs nothing.
class ScopedBackendThreads {
 public:
  explicit ScopedBackendThreads(int num_threads)
      : prev_(GetBackendThreads()), active_(num_threads >= 1) {
    if (active_) SetBackendThreads(num_threads);
  }
  ~ScopedBackendThreads() {
    if (active_) SetBackendThreads(prev_);
  }
  ScopedBackendThreads(const ScopedBackendThreads&) = delete;
  ScopedBackendThreads& operator=(const ScopedBackendThreads&) = delete;

 private:
  int prev_;
  bool active_;
};

// ---------------------------------------------------------------------------
// Deterministic chunking helpers. Chunk boundaries are a pure function of
// (n, grain) — never of the thread count — which is what makes chunked
// reductions reproducible across backends.

inline int64_t NumChunks(int64_t n, int64_t grain) {
  return n <= 0 ? 0 : (n + grain - 1) / grain;
}

// Parallel loop over [0, n) in chunks of `grain`, calling fn(begin, end) for
// each chunk. Only for DISJOINT-WRITE bodies: the serial path merges all
// chunks into one fn(0, n) call, so the result must not depend on chunk
// boundaries (each output element must be produced by exactly one iteration
// with a fixed inner accumulation order).
template <typename Fn>
void ParallelFor(int64_t n, int64_t grain, Fn&& fn) {
  if (n <= 0) return;
  Backend* backend = GetBackend();
  if (backend->num_threads() <= 1 || n <= grain) {
    fn(0, n);
    return;
  }
  const int64_t chunks = NumChunks(n, grain);
  backend->Run(chunks, [&](int64_t c) {
    const int64_t begin = c * grain;
    fn(begin, std::min(n, begin + grain));
  });
}

// Chunked reduction: partial(begin, end) -> double per fixed chunk, partials
// combined in ascending chunk order. Both the serial and the parallel path
// use the same chunk boundaries and the same combine order, so the result
// is bitwise identical for every thread count.
template <typename PartialFn>
double OrderedReduce(int64_t n, int64_t grain, PartialFn&& partial) {
  if (n <= 0) return 0.0;
  Backend* backend = GetBackend();
  const int64_t chunks = NumChunks(n, grain);
  if (backend->num_threads() <= 1 || chunks == 1) {
    double acc = 0.0;
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t begin = c * grain;
      acc += partial(begin, std::min(n, begin + grain));
    }
    return acc;
  }
  std::vector<double> partials(static_cast<size_t>(chunks), 0.0);
  backend->Run(chunks, [&](int64_t c) {
    const int64_t begin = c * grain;
    partials[static_cast<size_t>(c)] = partial(begin, std::min(n, begin + grain));
  });
  double acc = 0.0;
  for (double p : partials) acc += p;
  return acc;
}

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_BACKEND_H_
