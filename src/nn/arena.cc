#include "nn/arena.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.h"

namespace deepst {
namespace nn {
namespace {

thread_local AutodiffArena* t_arena = nullptr;
thread_local GradShard* t_grad_shard = nullptr;

// Smallest b with 2^b >= n (n >= 1).
int CeilLog2(size_t n) {
  int b = 0;
  while ((size_t{1} << b) < n) ++b;
  return b;
}

// Largest b with 2^b <= cap (cap >= 1).
int FloorLog2(size_t cap) {
  int b = 0;
  while ((size_t{1} << (b + 1)) <= cap) ++b;
  return b;
}

}  // namespace

void BufferPool::Acquire(size_t n, std::vector<float>* out) {
  DEEPST_DCHECK(out->capacity() == 0);
  if (n == 0) return;
  const int b = CeilLog2(n);
  DEEPST_CHECK_LT(b, kNumBuckets);
  auto& bucket = buckets_[b];
  if (!bucket.empty()) {
    *out = std::move(bucket.back());
    bucket.pop_back();
    ++reuse_count_;
  } else {
    out->reserve(size_t{1} << b);
    ++miss_count_;
  }
  out->resize(n);
}

void BufferPool::Release(std::vector<float>* buf) {
  const size_t cap = buf->capacity();
  if (cap == 0) return;
  // Bucketed by floor(log2(capacity)): a buffer filed under b always has
  // capacity >= 2^b, so Acquire can hand it out for any n <= 2^b. Buffers
  // allocated outside the pool (donated on destruction inside the scope) may
  // have non-power-of-two capacities; the floor keeps them usable.
  buckets_[FloorLog2(cap)].push_back(std::move(*buf));
  buf->clear();
  buf->shrink_to_fit();
}

void AutodiffArena::BeginStep() {
#ifndef NDEBUG
  // Recycling a node that something still references would corrupt the
  // retained graph. Trainer steps drop the whole tape before the next
  // BeginStep, so every leased node must be back to pool-only ownership.
  for (size_t i = 0; i < cursor_; ++i) {
    DEEPST_DCHECK(nodes_[i].use_count() == 1);
  }
#endif
  cursor_ = 0;
}

VarPtr AutodiffArena::Lease(Tensor value, bool requires_grad) {
  if (cursor_ == nodes_.size()) {
    nodes_.push_back(std::make_shared<Variable>(Tensor(), false));
    nodes_.back()->set_arena_index(static_cast<int64_t>(cursor_));
    ++node_grow_count_;
  }
  VarPtr& node = nodes_[cursor_++];
  node->ResetForReuse(std::move(value), requires_grad);
  return node;
}

ScopedAutodiffArena::ScopedAutodiffArena(AutodiffArena* arena)
    : prev_(t_arena) {
  t_arena = arena;
}

ScopedAutodiffArena::~ScopedAutodiffArena() { t_arena = prev_; }

AutodiffArena* ActiveArena() { return t_arena; }

void GradShard::Bind(size_t num_params) {
  if (slots_.size() != num_params) {
    slots_.resize(num_params);
    touched_.assign(num_params, 0);
  }
}

void GradShard::Begin() {
  std::fill(touched_.begin(), touched_.end(), static_cast<uint8_t>(0));
}

Tensor& GradShard::Slot(int slot, const Tensor& like) {
  DEEPST_DCHECK(slot >= 0 && static_cast<size_t>(slot) < slots_.size());
  Tensor& t = slots_[static_cast<size_t>(slot)];
  if (touched_[static_cast<size_t>(slot)] == 0) {
    // ResetShapeLike reuses both the shape and data capacity, so after the
    // first batch this is a plain zero-fill.
    t.ResetShapeLike(like);
    t.Fill(0.0f);
    touched_[static_cast<size_t>(slot)] = 1;
  }
  return t;
}

ScopedGradShard::ScopedGradShard(GradShard* shard) : prev_(t_grad_shard) {
  t_grad_shard = shard;
}

ScopedGradShard::~ScopedGradShard() { t_grad_shard = prev_; }

GradShard* ActiveGradShard() { return t_grad_shard; }

namespace detail {

void AcquireBuffer(size_t n, std::vector<float>* out) {
  if (t_arena != nullptr) {
    t_arena->buffers()->Acquire(n, out);
    return;
  }
  out->resize(n);
}

void ReleaseBuffer(std::vector<float>* buf) {
  if (t_arena != nullptr) t_arena->buffers()->Release(buf);
}

}  // namespace detail

}  // namespace nn
}  // namespace deepst
