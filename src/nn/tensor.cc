#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/arena.h"
#include "nn/kernels.h"

namespace deepst {
namespace nn {
namespace {

int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DEEPST_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  detail::AcquireBuffer(static_cast<size_t>(NumelOf(shape_)), &data_);
  std::fill(data_.begin(), data_.end(), 0.0f);
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  detail::AcquireBuffer(other.data_.size(), &data_);
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    detail::ReleaseBuffer(&data_);
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
  }
  return *this;
}

Tensor::~Tensor() { detail::ReleaseBuffer(&data_); }

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          const std::vector<float>& values) {
  Tensor t(std::move(shape));
  DEEPST_CHECK_EQ(t.numel(), static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

namespace {
// Nesting depth of live ScopedDeferInit guards on this thread.
thread_local int defer_init_depth = 0;
}  // namespace

ScopedDeferInit::ScopedDeferInit() { ++defer_init_depth; }
ScopedDeferInit::~ScopedDeferInit() { --defer_init_depth; }
bool ScopedDeferInit::active() { return defer_init_depth > 0; }

Tensor Tensor::Uniform(std::vector<int64_t> shape, float lo, float hi,
                       util::Rng* rng) {
  Tensor t(std::move(shape));
  if (ScopedDeferInit::active()) return t;
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Gaussian(std::vector<int64_t> shape, float mean, float stddev,
                        util::Rng* rng) {
  Tensor t(std::move(shape));
  if (ScopedDeferInit::active()) return t;
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  DEEPST_CHECK(i >= 0 && i < ndim());
  return shape_[static_cast<size_t>(i)];
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  DEEPST_CHECK_EQ(NumelOf(new_shape), numel());
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

bool Tensor::ResetShape(std::vector<int64_t> new_shape) {
  const int64_t n = NumelOf(new_shape);
  const bool grew = static_cast<size_t>(n) > data_.capacity();
  data_.resize(static_cast<size_t>(n));
  shape_ = std::move(new_shape);
  return grew;
}

bool Tensor::ResetShapeLike(const Tensor& like) {
  const int64_t n = like.numel();
  const bool grew = static_cast<size_t>(n) > data_.capacity();
  data_.resize(static_cast<size_t>(n));
  shape_ = like.shape_;
  return grew;
}

float& Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) {
  DEEPST_DCHECK(ndim() == 4);
  DEEPST_DCHECK(n >= 0 && n < shape_[0]);
  DEEPST_DCHECK(c >= 0 && c < shape_[1]);
  DEEPST_DCHECK(h >= 0 && h < shape_[2]);
  DEEPST_DCHECK(w >= 0 && w < shape_[3]);
  const int64_t idx = ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  return data_[static_cast<size_t>(idx)];
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  DEEPST_CHECK(SameShape(other));
  kernels::AxpyAcc(data_.data(), other.data_.data(),
                   static_cast<int64_t>(data_.size()), 1.0f);
}

void Tensor::ScaleInPlace(float s) {
  float* p = data_.data();
  kernels::ElementLoop(static_cast<int64_t>(data_.size()),
                       [p, s](int64_t i) { p[i] *= s; });
}

double Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::Mean() const {
  DEEPST_CHECK_GT(numel(), 0);
  return Sum() / static_cast<double>(numel());
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Tensor::AllFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

int64_t Tensor::ArgMax() const {
  DEEPST_CHECK_GT(numel(), 0);
  int64_t best = 0;
  for (int64_t i = 1; i < numel(); ++i) {
    if (data_[static_cast<size_t>(i)] > data_[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << ShapeString() << " {";
  const int64_t n = std::min(max_elems, numel());
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (n < numel()) os << ", ...";
  os << '}';
  return os.str();
}

Tensor SoftmaxRows(const Tensor& logits) {
  DEEPST_CHECK_EQ(logits.ndim(), 2);
  Tensor out = logits;
  kernels::SoftmaxRowsTo(logits.data(), out.data(), logits.dim(0),
                         logits.dim(1));
  return out;
}

Tensor LogSoftmaxRows(const Tensor& logits) {
  DEEPST_CHECK_EQ(logits.ndim(), 2);
  Tensor out = logits;
  kernels::LogSoftmaxRowsTo(logits.data(), out.data(), logits.dim(0),
                            logits.dim(1));
  return out;
}

}  // namespace nn
}  // namespace deepst
