#include "nn/optimizer.h"

#include <cmath>

namespace deepst {
namespace nn {

double Optimizer::ClipGradNorm(double max_norm) {
  double sq = 0.0;
  for (auto& p : params_) {
    if (!p.var->has_grad()) continue;
    const Tensor& g = p.var->grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) {
      if (p.var->has_grad()) p.var->grad().ScaleInPlace(scale);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<NamedParam> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.var->value().shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i].var.get();
    if (!p->has_grad()) continue;
    Tensor& val = p->value();
    const Tensor& g = p->grad();
    if (momentum_ > 0.0f) {
      Tensor& v = velocity_[i];
      for (int64_t j = 0; j < val.numel(); ++j) {
        v[j] = momentum_ * v[j] + g[j];
        val[j] -= lr_ * v[j];
      }
    } else {
      for (int64_t j = 0; j < val.numel(); ++j) val[j] -= lr_ * g[j];
    }
  }
}

Adam::Adam(std::vector<NamedParam> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.var->value().shape()));
    v_.push_back(Tensor::Zeros(p.var->value().shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i].var.get();
    if (!p->has_grad()) continue;
    Tensor& val = p->value();
    const Tensor& g = p->grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < val.numel(); ++j) {
      const float gj = g[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * gj;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * gj * gj;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      float update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0f) update += weight_decay_ * val[j];
      val[j] -= lr_ * update;
    }
  }
}

}  // namespace nn
}  // namespace deepst
