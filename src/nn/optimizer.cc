#include "nn/optimizer.h"

#include <cmath>

#include "nn/backend.h"
#include "nn/kernels.h"

namespace deepst {
namespace nn {
namespace {

// Shared slot validation for ImportState: checkpointed slot tensors must
// match this optimizer's parameter shapes slot-for-slot.
util::Status CheckSlots(const std::vector<NamedParam>& params,
                        const std::vector<Tensor>& slots,
                        size_t slots_per_param, const char* kind) {
  if (slots.size() != params.size() * slots_per_param) {
    return util::Status::InvalidArgument(
        std::string(kind) + " state has " + std::to_string(slots.size()) +
        " slots for " + std::to_string(params.size()) + " parameters");
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    const Tensor& expect = params[i % params.size()].var->value();
    if (!slots[i].SameShape(expect)) {
      return util::Status::InvalidArgument(
          std::string(kind) + " slot " + std::to_string(i) +
          " shape " + slots[i].ShapeString() + " does not match parameter " +
          expect.ShapeString());
    }
  }
  return util::Status::Ok();
}

}  // namespace

void BindParamSlots(const std::vector<NamedParam>& params) {
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].var->set_param_slot(static_cast<int64_t>(i));
  }
}

void AccumulateShardGrads(const std::vector<NamedParam>& params,
                          const std::vector<const GradShard*>& shards) {
  GetBackend()->Run(static_cast<int64_t>(params.size()), [&](int64_t i) {
    Variable* p = params[static_cast<size_t>(i)].var.get();
    for (const GradShard* shard : shards) {
      if (!shard->touched(static_cast<size_t>(i))) continue;
      const Tensor& g = shard->slot_grad(static_cast<size_t>(i));
      // grad() lazily allocates on first touch; no GradShard is active on
      // this thread, so it resolves to the parameter's own gradient.
      Tensor& dst = p->grad();
      kernels::AxpyAcc(dst.data(), g.data(), dst.numel(), 1.0f);
    }
  });
}

double Optimizer::ClipGradNorm(double max_norm) {
  // Per-parameter chunked reductions combined in fixed parameter order keep
  // the norm (and thus the clip decision) thread-count invariant.
  double sq = 0.0;
  for (auto& p : params_) {
    if (!p.var->has_grad()) continue;
    const Tensor& g = p.var->grad();
    sq += kernels::ReduceDot(g.data(), g.data(), g.numel());
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) {
      if (!p.var->has_grad()) continue;
      float* gp = p.var->grad().data();
      kernels::ElementLoop(p.var->grad().numel(),
                           [gp, scale](int64_t i) { gp[i] *= scale; });
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<NamedParam> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) {
      velocity_.push_back(Tensor::Zeros(p.var->value().shape()));
    }
  }
}

OptimizerState Sgd::ExportState() const {
  OptimizerState state;
  state.kind = "sgd";
  state.lr = lr_;
  state.slots = velocity_;
  return state;
}

util::Status Sgd::ImportState(const OptimizerState& state) {
  if (state.kind != "sgd") {
    return util::Status::InvalidArgument("optimizer kind mismatch: expected "
                                         "sgd, got " + state.kind);
  }
  const size_t slots_per_param = momentum_ > 0.0f ? 1 : 0;
  DEEPST_RETURN_IF_ERROR(
      CheckSlots(params_, state.slots, slots_per_param, "sgd"));
  velocity_ = state.slots;
  lr_ = state.lr;
  return util::Status::Ok();
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i].var.get();
    if (!p->has_grad()) continue;
    Tensor& val = p->value();
    const Tensor& g = p->grad();
    if (momentum_ > 0.0f) {
      float* vp = velocity_[i].data();
      float* valp = val.data();
      const float* gp = g.data();
      const float momentum = momentum_, lr = lr_;
      kernels::ElementLoop(val.numel(), [vp, valp, gp, momentum,
                                         lr](int64_t j) {
        vp[j] = momentum * vp[j] + gp[j];
        valp[j] -= lr * vp[j];
      });
    } else {
      kernels::AxpyAcc(val.data(), g.data(), val.numel(), -lr_);
    }
  }
}

Adam::Adam(std::vector<NamedParam> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.var->value().shape()));
    v_.push_back(Tensor::Zeros(p.var->value().shape()));
  }
}

OptimizerState Adam::ExportState() const {
  OptimizerState state;
  state.kind = "adam";
  state.step = t_;
  state.lr = lr_;
  state.slots.reserve(m_.size() + v_.size());
  state.slots.insert(state.slots.end(), m_.begin(), m_.end());
  state.slots.insert(state.slots.end(), v_.begin(), v_.end());
  return state;
}

util::Status Adam::ImportState(const OptimizerState& state) {
  if (state.kind != "adam") {
    return util::Status::InvalidArgument("optimizer kind mismatch: expected "
                                         "adam, got " + state.kind);
  }
  if (state.step < 0) {
    return util::Status::InvalidArgument("adam state has negative step count");
  }
  DEEPST_RETURN_IF_ERROR(CheckSlots(params_, state.slots, 2, "adam"));
  const size_t n = params_.size();
  m_.assign(state.slots.begin(), state.slots.begin() + static_cast<long>(n));
  v_.assign(state.slots.begin() + static_cast<long>(n), state.slots.end());
  t_ = state.step;
  lr_ = state.lr;
  return util::Status::Ok();
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i].var.get();
    if (!p->has_grad()) continue;
    Tensor& val = p->value();
    const Tensor& g = p->grad();
    float* mp = m_[i].data();
    float* vp = v_[i].data();
    float* valp = val.data();
    const float* gp = g.data();
    const float beta1 = beta1_, beta2 = beta2_, eps = eps_, lr = lr_,
                weight_decay = weight_decay_;
    kernels::ElementLoop(val.numel(), [=](int64_t j) {
      const float gj = gp[j];
      mp[j] = beta1 * mp[j] + (1.0f - beta1) * gj;
      vp[j] = beta2 * vp[j] + (1.0f - beta2) * gj * gj;
      const float mhat = mp[j] / bc1;
      const float vhat = vp[j] / bc2;
      float update = mhat / (std::sqrt(vhat) + eps);
      if (weight_decay > 0.0f) update += weight_decay * valp[j];
      valp[j] -= lr * update;
    });
  }
}

}  // namespace nn
}  // namespace deepst
