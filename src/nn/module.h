#ifndef DEEPST_NN_MODULE_H_
#define DEEPST_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/variable.h"

namespace deepst {
namespace nn {

// A named trainable parameter.
struct NamedParam {
  std::string name;
  VarPtr var;
};

// Base class for neural-net building blocks. Subclasses register parameters
// (and sub-modules) in their constructors; `Parameters()` then yields the
// flat list consumed by optimizers and the serializer.
//
// Modules are neither copyable nor movable: parameters are shared_ptrs and
// layers hold raw pointers to each other in composite models.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::vector<NamedParam>& Parameters() const { return params_; }

  // Total number of scalar parameters.
  int64_t NumParams() const {
    int64_t n = 0;
    for (const auto& p : params_) n += p.var->value().numel();
    return n;
  }

  void ZeroGrad() {
    for (auto& p : params_) p.var->ZeroGrad();
  }

 protected:
  // Registers a fresh parameter initialized with `init`.
  VarPtr AddParameter(const std::string& name, Tensor init) {
    VarPtr v = MakeVar(std::move(init), /*requires_grad=*/true);
    params_.push_back({name, v});
    return v;
  }

  // Re-exports a child's parameters under `prefix/`.
  void AddSubmodule(const std::string& prefix, Module* child) {
    for (const auto& p : child->params_) {
      params_.push_back({prefix + "/" + p.name, p.var});
    }
  }

 private:
  std::vector<NamedParam> params_;
};

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_MODULE_H_
