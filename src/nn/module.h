#ifndef DEEPST_NN_MODULE_H_
#define DEEPST_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/variable.h"

namespace deepst {
namespace nn {

// A named trainable parameter.
struct NamedParam {
  std::string name;
  VarPtr var;
};

// A named non-trainable state tensor (e.g. batch-norm running statistics).
// The tensor stays owned by the registering layer; the registry only points
// at it so snapshots/restores see the live value.
struct NamedBuffer {
  std::string name;
  Tensor* tensor;
};

// Base class for neural-net building blocks. Subclasses register parameters
// (and sub-modules) in their constructors; `Parameters()` then yields the
// flat list consumed by optimizers and the serializer. State that evolves
// during training without receiving gradients registers via `AddBuffer` and
// surfaces through `Buffers()` — training checkpoints must capture it for
// resume to reproduce evaluation-mode behavior.
//
// Modules are neither copyable nor movable: parameters are shared_ptrs and
// layers hold raw pointers to each other in composite models.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::vector<NamedParam>& Parameters() const { return params_; }
  const std::vector<NamedBuffer>& Buffers() const { return buffers_; }

  // Total number of scalar parameters.
  int64_t NumParams() const {
    int64_t n = 0;
    for (const auto& p : params_) n += p.var->value().numel();
    return n;
  }

  void ZeroGrad() {
    for (auto& p : params_) p.var->ZeroGrad();
  }

 protected:
  // Registers a fresh parameter initialized with `init`.
  VarPtr AddParameter(const std::string& name, Tensor init) {
    VarPtr v = MakeVar(std::move(init), /*requires_grad=*/true);
    params_.push_back({name, v});
    return v;
  }

  // Registers layer-owned non-trainable state; `tensor` must outlive the
  // module tree.
  void AddBuffer(const std::string& name, Tensor* tensor) {
    buffers_.push_back({name, tensor});
  }

  // Re-exports a child's parameters and buffers under `prefix/`.
  void AddSubmodule(const std::string& prefix, Module* child) {
    for (const auto& p : child->params_) {
      params_.push_back({prefix + "/" + p.name, p.var});
    }
    for (const auto& b : child->buffers_) {
      buffers_.push_back({prefix + "/" + b.name, b.tensor});
    }
  }

 private:
  std::vector<NamedParam> params_;
  std::vector<NamedBuffer> buffers_;
};

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_MODULE_H_
