#ifndef DEEPST_NN_LAYERS_H_
#define DEEPST_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace deepst {
namespace nn {

// Fully-connected layer: y = x @ W^T + b.
class LinearLayer : public Module {
 public:
  LinearLayer(int64_t in_dim, int64_t out_dim, util::Rng* rng,
              bool bias = true);

  VarPtr Forward(const VarPtr& x) const;

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }

  // Raw weight views for the graph-free inference path (nn/infer).
  const Tensor& weight() const { return w_->value(); }
  const Tensor* bias() const { return b_ ? &b_->value() : nullptr; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  VarPtr w_;
  VarPtr b_;  // null when bias=false
};

enum class Activation { kNone, kRelu, kLeakyRelu, kTanh, kSigmoid };

// Multi-layer perceptron with a shared hidden trunk; hidden layers use
// `activation`, the output layer is linear.
class Mlp : public Module {
 public:
  // dims = {in, h1, ..., out}; at least {in, out}.
  Mlp(const std::vector<int64_t>& dims, Activation activation,
      util::Rng* rng);

  VarPtr Forward(const VarPtr& x) const;
  // Forward through hidden layers only (the shared trunk), useful when two
  // heads branch off one trunk (mu / logvar in the paper's traffic encoder).
  VarPtr ForwardHidden(const VarPtr& x) const;
  // Applies only the last (output) layer.
  VarPtr ForwardOutput(const VarPtr& h) const;

 private:
  std::vector<std::unique_ptr<LinearLayer>> layers_;
  Activation activation_;
};

// Token embedding table.
class EmbeddingLayer : public Module {
 public:
  EmbeddingLayer(int64_t vocab, int64_t dim, util::Rng* rng);

  VarPtr Forward(const std::vector<int>& ids) const;

  int64_t dim() const { return dim_; }
  int64_t vocab() const { return vocab_; }
  const VarPtr& table() const { return table_; }

 private:
  int64_t vocab_;
  int64_t dim_;
  VarPtr table_;
};

// Single GRU cell (PyTorch gate layout: reset, update, new).
//   r = sigmoid(x W_ir^T + b_ir + h W_hr^T + b_hr)
//   z = sigmoid(x W_iz^T + b_iz + h W_hz^T + b_hz)
//   n = tanh(x W_in^T + b_in + r * (h W_hn^T + b_hn))
//   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  // x: [B, In], h: [B, H] -> [B, H].
  VarPtr Step(const VarPtr& x, const VarPtr& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t input_dim() const { return input_dim_; }

  // Raw weight views for the graph-free inference path (nn/infer).
  const Tensor& w_ih() const { return w_ih_->value(); }
  const Tensor& w_hh() const { return w_hh_->value(); }
  const Tensor& b_ih() const { return b_ih_->value(); }
  const Tensor& b_hh() const { return b_hh_->value(); }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  VarPtr w_ih_;  // [3H, In]
  VarPtr w_hh_;  // [3H, H]
  VarPtr b_ih_;  // [3H]
  VarPtr b_hh_;  // [3H]
};

// Stack of GRU cells; layer l feeds layer l+1 (paper uses a 3-layer stack).
class StackedGru : public Module {
 public:
  StackedGru(int64_t input_dim, int64_t hidden_dim, int num_layers,
             util::Rng* rng);

  // One time step. `state` holds one [B, H] hidden per layer; it is updated
  // in place. Returns the top layer's new hidden state.
  VarPtr Step(const VarPtr& x, std::vector<VarPtr>* state) const;

  // Fresh all-zero state for batch size B.
  std::vector<VarPtr> InitialState(int64_t batch) const;

  int num_layers() const { return static_cast<int>(cells_.size()); }
  int64_t hidden_dim() const { return hidden_dim_; }
  const GruCell& cell(int layer) const {
    return *cells_[static_cast<size_t>(layer)];
  }

 private:
  int64_t hidden_dim_;
  std::vector<std::unique_ptr<GruCell>> cells_;
};

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_LAYERS_H_
