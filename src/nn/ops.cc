#include "nn/ops.h"

#include <algorithm>
#include <cmath>

namespace deepst {
namespace nn {
namespace ops {
namespace {

// Builds a result node with parents + backward closure.
VarPtr MakeNode(Tensor value, std::vector<VarPtr> parents,
                std::function<void(Variable*)> backward) {
  VarPtr out = MakeVar(std::move(value));
  out->SetParents(std::move(parents));
  if (out->requires_grad()) out->SetBackwardFn(std::move(backward));
  return out;
}

bool IsRowBroadcast(const Tensor& a, const Tensor& b) {
  return a.ndim() == 2 && b.ndim() == 1 && a.dim(1) == b.dim(0);
}

}  // namespace

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  Tensor out = av;
  if (av.SameShape(bv)) {
    out.AddInPlace(bv);
    return MakeNode(std::move(out), {a, b}, [](Variable* node) {
      const Tensor& g = node->grad();
      const auto& ps = node->parents();
      if (ps[0]->requires_grad()) ps[0]->grad().AddInPlace(g);
      if (ps[1]->requires_grad()) ps[1]->grad().AddInPlace(g);
    });
  }
  DEEPST_CHECK_MSG(IsRowBroadcast(av, bv), "Add: incompatible shapes");
  const int64_t rows = av.dim(0), cols = av.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) out.at(r, c) += bv[c];
  }
  return MakeNode(std::move(out), {a, b}, [rows, cols](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    if (ps[0]->requires_grad()) ps[0]->grad().AddInPlace(g);
    if (ps[1]->requires_grad()) {
      Tensor& gb = ps[1]->grad();
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) gb[c] += g.at(r, c);
      }
    }
  });
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  Tensor out = av;
  if (av.SameShape(bv)) {
    for (int64_t i = 0; i < out.numel(); ++i) out[i] -= bv[i];
    return MakeNode(std::move(out), {a, b}, [](Variable* node) {
      const Tensor& g = node->grad();
      const auto& ps = node->parents();
      if (ps[0]->requires_grad()) ps[0]->grad().AddInPlace(g);
      if (ps[1]->requires_grad()) {
        Tensor& gb = ps[1]->grad();
        for (int64_t i = 0; i < g.numel(); ++i) gb[i] -= g[i];
      }
    });
  }
  DEEPST_CHECK_MSG(IsRowBroadcast(av, bv), "Sub: incompatible shapes");
  const int64_t rows = av.dim(0), cols = av.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) out.at(r, c) -= bv[c];
  }
  return MakeNode(std::move(out), {a, b}, [rows, cols](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    if (ps[0]->requires_grad()) ps[0]->grad().AddInPlace(g);
    if (ps[1]->requires_grad()) {
      Tensor& gb = ps[1]->grad();
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) gb[c] -= g.at(r, c);
      }
    }
  });
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  DEEPST_CHECK_MSG(av.SameShape(bv), "Mul: shape mismatch");
  Tensor out = av;
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= bv[i];
  return MakeNode(std::move(out), {a, b}, [](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    const Tensor& av = ps[0]->value();
    const Tensor& bv = ps[1]->value();
    if (ps[0]->requires_grad()) {
      Tensor& ga = ps[0]->grad();
      for (int64_t i = 0; i < g.numel(); ++i) ga[i] += g[i] * bv[i];
    }
    if (ps[1]->requires_grad()) {
      Tensor& gb = ps[1]->grad();
      for (int64_t i = 0; i < g.numel(); ++i) gb[i] += g[i] * av[i];
    }
  });
}

VarPtr Div(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  DEEPST_CHECK_MSG(av.SameShape(bv), "Div: shape mismatch");
  Tensor out = av;
  for (int64_t i = 0; i < out.numel(); ++i) out[i] /= bv[i];
  return MakeNode(std::move(out), {a, b}, [](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    const Tensor& av = ps[0]->value();
    const Tensor& bv = ps[1]->value();
    if (ps[0]->requires_grad()) {
      Tensor& ga = ps[0]->grad();
      for (int64_t i = 0; i < g.numel(); ++i) ga[i] += g[i] / bv[i];
    }
    if (ps[1]->requires_grad()) {
      Tensor& gb = ps[1]->grad();
      for (int64_t i = 0; i < g.numel(); ++i) {
        gb[i] -= g[i] * av[i] / (bv[i] * bv[i]);
      }
    }
  });
}

VarPtr Neg(const VarPtr& a) { return ScalarMul(a, -1.0f); }

VarPtr ScalarMul(const VarPtr& a, float s) {
  Tensor out = a->value();
  out.ScaleInPlace(s);
  return MakeNode(std::move(out), {a}, [s](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (p->requires_grad()) {
      Tensor& ga = p->grad();
      for (int64_t i = 0; i < g.numel(); ++i) ga[i] += g[i] * s;
    }
  });
}

VarPtr ScalarAdd(const VarPtr& a, float s) {
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] += s;
  return MakeNode(std::move(out), {a}, [](Variable* node) {
    auto& p = node->parents()[0];
    if (p->requires_grad()) p->grad().AddInPlace(node->grad());
  });
}

VarPtr RSubScalar(float s, const VarPtr& a) {
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = s - out[i];
  return MakeNode(std::move(out), {a}, [](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (p->requires_grad()) {
      Tensor& ga = p->grad();
      for (int64_t i = 0; i < g.numel(); ++i) ga[i] -= g[i];
    }
  });
}

namespace {

// Shared implementation for unary elementwise ops whose gradient can be
// computed from the *output* value: grad_in = grad_out * dfn(out_value).
template <typename Fwd, typename BwdFromOut>
VarPtr UnaryFromOutput(const VarPtr& a, Fwd fwd, BwdFromOut bwd) {
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = fwd(out[i]);
  // Capture output values by copying the tensor into the closure.
  Tensor out_copy = out;
  return MakeNode(std::move(out), {a},
                  [bwd, out_copy](Variable* node) {
                    const Tensor& g = node->grad();
                    auto& p = node->parents()[0];
                    if (!p->requires_grad()) return;
                    Tensor& ga = p->grad();
                    for (int64_t i = 0; i < g.numel(); ++i) {
                      ga[i] += g[i] * bwd(out_copy[i]);
                    }
                  });
}

// Unary elementwise with gradient computed from the *input* value.
template <typename Fwd, typename BwdFromIn>
VarPtr UnaryFromInput(const VarPtr& a, Fwd fwd, BwdFromIn bwd) {
  Tensor out = a->value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = fwd(out[i]);
  return MakeNode(std::move(out), {a}, [bwd](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& in = p->value();
    Tensor& ga = p->grad();
    for (int64_t i = 0; i < g.numel(); ++i) ga[i] += g[i] * bwd(in[i]);
  });
}

}  // namespace

VarPtr Sigmoid(const VarPtr& a) {
  return UnaryFromOutput(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y) { return y * (1.0f - y); });
}

VarPtr Tanh(const VarPtr& a) {
  return UnaryFromOutput(a, [](float x) { return std::tanh(x); },
                         [](float y) { return 1.0f - y * y; });
}

VarPtr Relu(const VarPtr& a) {
  return UnaryFromInput(a, [](float x) { return x > 0 ? x : 0.0f; },
                        [](float x) { return x > 0 ? 1.0f : 0.0f; });
}

VarPtr LeakyRelu(const VarPtr& a, float negative_slope) {
  return UnaryFromInput(
      a,
      [negative_slope](float x) { return x > 0 ? x : negative_slope * x; },
      [negative_slope](float x) { return x > 0 ? 1.0f : negative_slope; });
}

VarPtr Exp(const VarPtr& a) {
  return UnaryFromOutput(a, [](float x) { return std::exp(x); },
                         [](float y) { return y; });
}

VarPtr Log(const VarPtr& a, float eps) {
  return UnaryFromInput(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x) { return 1.0f / std::max(x, eps); });
}

VarPtr Softplus(const VarPtr& a) {
  return UnaryFromInput(
      a,
      [](float x) {
        // Numerically stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|}).
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

VarPtr Square(const VarPtr& a) {
  return UnaryFromInput(a, [](float x) { return x * x; },
                        [](float x) { return 2.0f * x; });
}

namespace {

// C[M,N] += A[M,K] @ B[K,N], cache-friendly ikj loop.
void GemmAcc(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[M,N] += A[M,K] @ B^T where B is [N,K].
void GemmAccBT(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += static_cast<float>(acc);
    }
  }
}

// C[M,N] += A^T @ B where A is [K,M], B is [K,N].
void GemmAccAT(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  DEEPST_CHECK_EQ(av.ndim(), 2);
  DEEPST_CHECK_EQ(bv.ndim(), 2);
  DEEPST_CHECK_EQ(av.dim(1), bv.dim(0));
  const int64_t m = av.dim(0), k = av.dim(1), n = bv.dim(1);
  Tensor out = Tensor::Zeros({m, n});
  GemmAcc(av.data(), bv.data(), out.data(), m, k, n);
  return MakeNode(std::move(out), {a, b}, [m, k, n](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    const Tensor& av = ps[0]->value();
    const Tensor& bv = ps[1]->value();
    if (ps[0]->requires_grad()) {
      // dA = dC @ B^T : [M,N] @ [N,K]^T-of-[K,N]
      GemmAccBT(g.data(), bv.data(), ps[0]->grad().data(), m, n, k);
    }
    if (ps[1]->requires_grad()) {
      // dB = A^T @ dC : [K,M]^T-of-[M,K] @ [M,N]
      GemmAccAT(av.data(), g.data(), ps[1]->grad().data(), k, m, n);
    }
  });
}

VarPtr Linear(const VarPtr& x, const VarPtr& w, const VarPtr& b) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  DEEPST_CHECK_EQ(xv.ndim(), 2);
  DEEPST_CHECK_EQ(wv.ndim(), 2);
  DEEPST_CHECK_EQ(xv.dim(1), wv.dim(1));
  const int64_t batch = xv.dim(0), in = xv.dim(1), out_dim = wv.dim(0);
  Tensor out = Tensor::Zeros({batch, out_dim});
  // out = x @ w^T
  GemmAccBT(xv.data(), wv.data(), out.data(), batch, in, out_dim);
  std::vector<VarPtr> parents = {x, w};
  if (b != nullptr) {
    const Tensor& bv = b->value();
    DEEPST_CHECK_EQ(bv.ndim(), 1);
    DEEPST_CHECK_EQ(bv.dim(0), out_dim);
    for (int64_t r = 0; r < batch; ++r) {
      for (int64_t c = 0; c < out_dim; ++c) out.at(r, c) += bv[c];
    }
    parents.push_back(b);
  }
  const bool has_bias = b != nullptr;
  return MakeNode(
      std::move(out), std::move(parents),
      [batch, in, out_dim, has_bias](Variable* node) {
        const Tensor& g = node->grad();  // [B, Out]
        const auto& ps = node->parents();
        const Tensor& xv = ps[0]->value();
        const Tensor& wv = ps[1]->value();
        if (ps[0]->requires_grad()) {
          // dX = dY @ W : [B,Out] @ [Out,In]
          GemmAcc(g.data(), wv.data(), ps[0]->grad().data(), batch, out_dim,
                  in);
        }
        if (ps[1]->requires_grad()) {
          // dW = dY^T @ X : [Out,B] @ [B,In]
          GemmAccAT(g.data(), xv.data(), ps[1]->grad().data(), out_dim, batch,
                    in);
        }
        if (has_bias && ps[2]->requires_grad()) {
          Tensor& gb = ps[2]->grad();
          for (int64_t r = 0; r < batch; ++r) {
            for (int64_t c = 0; c < out_dim; ++c) gb[c] += g.at(r, c);
          }
        }
      });
}

VarPtr ConcatCols(const std::vector<VarPtr>& parts) {
  DEEPST_CHECK(!parts.empty());
  const int64_t rows = parts[0]->value().dim(0);
  int64_t total_cols = 0;
  for (const auto& p : parts) {
    DEEPST_CHECK_EQ(p->value().ndim(), 2);
    DEEPST_CHECK_EQ(p->value().dim(0), rows);
    total_cols += p->value().dim(1);
  }
  Tensor out({rows, total_cols});
  int64_t col0 = 0;
  for (const auto& p : parts) {
    const Tensor& pv = p->value();
    const int64_t cols = pv.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(pv.data() + r * cols, pv.data() + (r + 1) * cols,
                out.data() + r * total_cols + col0);
    }
    col0 += cols;
  }
  return MakeNode(std::move(out), parts, [rows, total_cols](Variable* node) {
    const Tensor& g = node->grad();
    int64_t col0 = 0;
    for (const auto& p : node->parents()) {
      const int64_t cols = p->value().dim(1);
      if (p->requires_grad()) {
        Tensor& gp = p->grad();
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            gp.at(r, c) += g[r * total_cols + col0 + c];
          }
        }
      }
      col0 += cols;
    }
  });
}

VarPtr SliceCols(const VarPtr& a, int64_t start, int64_t len) {
  const Tensor& av = a->value();
  DEEPST_CHECK_EQ(av.ndim(), 2);
  DEEPST_CHECK(start >= 0 && len > 0 && start + len <= av.dim(1));
  const int64_t rows = av.dim(0), cols = av.dim(1);
  Tensor out({rows, len});
  for (int64_t r = 0; r < rows; ++r) {
    std::copy(av.data() + r * cols + start, av.data() + r * cols + start + len,
              out.data() + r * len);
  }
  return MakeNode(std::move(out), {a}, [start, len, rows, cols](
                                           Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    Tensor& gp = p->grad();
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < len; ++c) {
        gp[r * cols + start + c] += g[r * len + c];
      }
    }
  });
}

VarPtr EmbeddingLookup(const VarPtr& table, const std::vector<int>& ids) {
  const Tensor& tv = table->value();
  DEEPST_CHECK_EQ(tv.ndim(), 2);
  const int64_t vocab = tv.dim(0), dim = tv.dim(1);
  const int64_t batch = static_cast<int64_t>(ids.size());
  Tensor out({batch, dim});
  for (int64_t b = 0; b < batch; ++b) {
    const int id = ids[static_cast<size_t>(b)];
    DEEPST_CHECK(id >= 0 && id < vocab);
    std::copy(tv.data() + id * dim, tv.data() + (id + 1) * dim,
              out.data() + b * dim);
  }
  return MakeNode(std::move(out), {table}, [ids, dim](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    Tensor& gt = p->grad();
    for (size_t b = 0; b < ids.size(); ++b) {
      const int id = ids[b];
      for (int64_t d = 0; d < dim; ++d) {
        gt[id * dim + d] += g[static_cast<int64_t>(b) * dim + d];
      }
    }
  });
}

VarPtr Reshape(const VarPtr& a, std::vector<int64_t> shape) {
  Tensor out = a->value().Reshape(shape);
  return MakeNode(std::move(out), {a}, [](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& gp = p->grad();
    for (int64_t i = 0; i < g.numel(); ++i) gp[i] += g[i];
  });
}

VarPtr Sum(const VarPtr& a) {
  Tensor out({1});
  out[0] = static_cast<float>(a->value().Sum());
  return MakeNode(std::move(out), {a}, [](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const float g = node->grad()[0];
    Tensor& gp = p->grad();
    for (int64_t i = 0; i < gp.numel(); ++i) gp[i] += g;
  });
}

VarPtr Mean(const VarPtr& a) {
  const int64_t n = a->value().numel();
  DEEPST_CHECK_GT(n, 0);
  return ScalarMul(Sum(a), 1.0f / static_cast<float>(n));
}

VarPtr RowSum(const VarPtr& a) {
  const Tensor& av = a->value();
  DEEPST_CHECK_EQ(av.ndim(), 2);
  const int64_t rows = av.dim(0), cols = av.dim(1);
  Tensor out({rows});
  for (int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (int64_t c = 0; c < cols; ++c) acc += av.at(r, c);
    out[r] = static_cast<float>(acc);
  }
  return MakeNode(std::move(out), {a}, [rows, cols](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& gp = p->grad();
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) gp[r * cols + c] += g[r];
    }
  });
}

VarPtr WeightedSum(const VarPtr& a, const Tensor& weights) {
  const Tensor& av = a->value();
  DEEPST_CHECK_EQ(av.numel(), weights.numel());
  Tensor out({1});
  double acc = 0.0;
  for (int64_t i = 0; i < av.numel(); ++i) acc += av[i] * weights[i];
  out[0] = static_cast<float>(acc);
  return MakeNode(std::move(out), {a}, [weights](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const float g = node->grad()[0];
    Tensor& gp = p->grad();
    for (int64_t i = 0; i < gp.numel(); ++i) gp[i] += g * weights[i];
  });
}

VarPtr Softmax(const VarPtr& logits) {
  Tensor out = SoftmaxRows(logits->value());
  Tensor out_copy = out;
  return MakeNode(std::move(out), {logits}, [out_copy](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& gp = p->grad();
    const int64_t rows = out_copy.dim(0), cols = out_copy.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      double dot = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        dot += g.at(r, c) * out_copy.at(r, c);
      }
      for (int64_t c = 0; c < cols; ++c) {
        gp.at(r, c) +=
            out_copy.at(r, c) * (g.at(r, c) - static_cast<float>(dot));
      }
    }
  });
}

VarPtr LogSoftmax(const VarPtr& logits) {
  Tensor out = LogSoftmaxRows(logits->value());
  Tensor out_copy = out;
  return MakeNode(std::move(out), {logits}, [out_copy](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& gp = p->grad();
    const int64_t rows = out_copy.dim(0), cols = out_copy.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      double gsum = 0.0;
      for (int64_t c = 0; c < cols; ++c) gsum += g.at(r, c);
      for (int64_t c = 0; c < cols; ++c) {
        gp.at(r, c) += g.at(r, c) -
                       static_cast<float>(gsum) * std::exp(out_copy.at(r, c));
      }
    }
  });
}

VarPtr CrossEntropyLoss(const VarPtr& logits, const std::vector<int>& targets,
                        const std::vector<float>& weights) {
  const Tensor& lv = logits->value();
  DEEPST_CHECK_EQ(lv.ndim(), 2);
  const int64_t rows = lv.dim(0), cols = lv.dim(1);
  DEEPST_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));
  DEEPST_CHECK_EQ(rows, static_cast<int64_t>(weights.size()));
  Tensor probs = SoftmaxRows(lv);
  Tensor out({1});
  double loss = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const float w = weights[static_cast<size_t>(r)];
    if (w == 0.0f) continue;
    const int t = targets[static_cast<size_t>(r)];
    DEEPST_CHECK(t >= 0 && t < cols);
    loss -= w * std::log(std::max(probs.at(r, t), 1e-12f));
  }
  out[0] = static_cast<float>(loss);
  return MakeNode(
      std::move(out), {logits},
      [probs, targets, weights, rows, cols](Variable* node) {
        auto& p = node->parents()[0];
        if (!p->requires_grad()) return;
        const float g = node->grad()[0];
        Tensor& gp = p->grad();
        for (int64_t r = 0; r < rows; ++r) {
          const float w = weights[static_cast<size_t>(r)];
          if (w == 0.0f) continue;
          const int t = targets[static_cast<size_t>(r)];
          for (int64_t c = 0; c < cols; ++c) {
            float d = probs.at(r, c);
            if (c == t) d -= 1.0f;
            gp.at(r, c) += g * w * d;
          }
        }
      });
}

VarPtr GaussianReparameterize(const VarPtr& mu, const VarPtr& logvar,
                              util::Rng* rng) {
  const Tensor& mv = mu->value();
  const Tensor& lv = logvar->value();
  DEEPST_CHECK(mv.SameShape(lv));
  Tensor eps(mv.shape());
  for (int64_t i = 0; i < eps.numel(); ++i) {
    eps[i] = static_cast<float>(rng->Gaussian());
  }
  Tensor out = mv;
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] += std::exp(0.5f * lv[i]) * eps[i];
  }
  return MakeNode(std::move(out), {mu, logvar}, [eps](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    if (ps[0]->requires_grad()) ps[0]->grad().AddInPlace(g);
    if (ps[1]->requires_grad()) {
      const Tensor& lv = ps[1]->value();
      Tensor& gl = ps[1]->grad();
      for (int64_t i = 0; i < g.numel(); ++i) {
        gl[i] += g[i] * 0.5f * std::exp(0.5f * lv[i]) * eps[i];
      }
    }
  });
}

VarPtr KlStandardNormal(const VarPtr& mu, const VarPtr& logvar) {
  const Tensor& mv = mu->value();
  const Tensor& lv = logvar->value();
  DEEPST_CHECK(mv.SameShape(lv));
  Tensor out({1});
  double acc = 0.0;
  for (int64_t i = 0; i < mv.numel(); ++i) {
    acc += 0.5 * (static_cast<double>(mv[i]) * mv[i] + std::exp(lv[i]) -
                  lv[i] - 1.0);
  }
  out[0] = static_cast<float>(acc);
  return MakeNode(std::move(out), {mu, logvar}, [](Variable* node) {
    const float g = node->grad()[0];
    const auto& ps = node->parents();
    const Tensor& mv = ps[0]->value();
    const Tensor& lv = ps[1]->value();
    if (ps[0]->requires_grad()) {
      Tensor& gm = ps[0]->grad();
      for (int64_t i = 0; i < mv.numel(); ++i) gm[i] += g * mv[i];
    }
    if (ps[1]->requires_grad()) {
      Tensor& gl = ps[1]->grad();
      for (int64_t i = 0; i < lv.numel(); ++i) {
        gl[i] += g * 0.5f * (std::exp(lv[i]) - 1.0f);
      }
    }
  });
}

VarPtr GaussianLogProb(const Tensor& x, const VarPtr& mean, const VarPtr& var,
                       const Tensor& row_weights) {
  const Tensor& mv = mean->value();
  const Tensor& vv = var->value();
  DEEPST_CHECK(x.SameShape(mv));
  DEEPST_CHECK(x.SameShape(vv));
  DEEPST_CHECK_EQ(x.ndim(), 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  DEEPST_CHECK_EQ(row_weights.numel(), rows);
  constexpr double kLog2Pi = 1.8378770664093453;
  Tensor out({1});
  double acc = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const double w = row_weights[r];
    if (w == 0.0) continue;
    double lp = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const double v = std::max<double>(vv.at(r, c), 1e-8);
      const double d = static_cast<double>(x.at(r, c)) - mv.at(r, c);
      lp += -0.5 * (kLog2Pi + std::log(v) + d * d / v);
    }
    acc += w * lp;
  }
  out[0] = static_cast<float>(acc);
  return MakeNode(
      std::move(out), {mean, var},
      [x, row_weights, rows, cols](Variable* node) {
        const float g = node->grad()[0];
        const auto& ps = node->parents();
        const Tensor& mv = ps[0]->value();
        const Tensor& vv = ps[1]->value();
        for (int64_t r = 0; r < rows; ++r) {
          const float w = row_weights[r];
          if (w == 0.0f) continue;
          for (int64_t c = 0; c < cols; ++c) {
            const float v = std::max(vv.at(r, c), 1e-8f);
            const float d = x.at(r, c) - mv.at(r, c);
            if (ps[0]->requires_grad()) {
              ps[0]->grad().at(r, c) += g * w * d / v;
            }
            if (ps[1]->requires_grad()) {
              ps[1]->grad().at(r, c) +=
                  g * w * 0.5f * (d * d / (v * v) - 1.0f / v);
            }
          }
        }
      });
}

VarPtr CategoricalKlToUniform(const VarPtr& logits) {
  // KL(q || U) = sum_k q_k (log q_k + log K) computed from logits for
  // stability: log q = log_softmax(logits).
  const Tensor& lv = logits->value();
  DEEPST_CHECK_EQ(lv.ndim(), 2);
  const int64_t rows = lv.dim(0), cols = lv.dim(1);
  Tensor logq = LogSoftmaxRows(lv);
  const float log_k = std::log(static_cast<float>(cols));
  Tensor out({1});
  double acc = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const double q = std::exp(logq.at(r, c));
      acc += q * (logq.at(r, c) + log_k);
    }
  }
  out[0] = static_cast<float>(acc);
  return MakeNode(
      std::move(out), {logits}, [logq, rows, cols, log_k](Variable* node) {
        auto& p = node->parents()[0];
        if (!p->requires_grad()) return;
        const float g = node->grad()[0];
        Tensor& gp = p->grad();
        // d/dlogit_j sum_k q_k(logq_k + logK)
        //   = q_j (logq_j + logK) - q_j * sum_k q_k (logq_k + logK)
        for (int64_t r = 0; r < rows; ++r) {
          double kl_r = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            kl_r += std::exp(logq.at(r, c)) * (logq.at(r, c) + log_k);
          }
          for (int64_t c = 0; c < cols; ++c) {
            const float q = std::exp(logq.at(r, c));
            gp.at(r, c) += g * q *
                           (logq.at(r, c) + log_k - static_cast<float>(kl_r));
          }
        }
      });
}

VarPtr GumbelSoftmaxSample(const VarPtr& logits, float tau, util::Rng* rng) {
  const Tensor& lv = logits->value();
  DEEPST_CHECK_EQ(lv.ndim(), 2);
  DEEPST_CHECK_GT(tau, 0.0f);
  const int64_t rows = lv.dim(0), cols = lv.dim(1);
  Tensor perturbed({rows, cols});
  for (int64_t i = 0; i < perturbed.numel(); ++i) {
    perturbed[i] = (lv[i] + static_cast<float>(rng->Gumbel())) / tau;
  }
  Tensor y = SoftmaxRows(perturbed);
  Tensor y_copy = y;
  return MakeNode(std::move(y), {logits},
                  [y_copy, tau, rows, cols](Variable* node) {
                    auto& p = node->parents()[0];
                    if (!p->requires_grad()) return;
                    const Tensor& g = node->grad();
                    Tensor& gp = p->grad();
                    // Same Jacobian as softmax, scaled by 1/tau.
                    for (int64_t r = 0; r < rows; ++r) {
                      double dot = 0.0;
                      for (int64_t c = 0; c < cols; ++c) {
                        dot += g.at(r, c) * y_copy.at(r, c);
                      }
                      for (int64_t c = 0; c < cols; ++c) {
                        gp.at(r, c) += y_copy.at(r, c) *
                                       (g.at(r, c) - static_cast<float>(dot)) /
                                       tau;
                      }
                    }
                  });
}

VarPtr StopGradient(const VarPtr& a) {
  return MakeVar(a->value(), false);
}

}  // namespace ops
}  // namespace nn
}  // namespace deepst
