#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"

namespace deepst {
namespace nn {
namespace ops {
namespace {

// Builds a result node with parents + backward closure. With gradients
// disabled (NoGradGuard) the node is a plain value leaf: no parents, no
// closure, requires_grad=false.
VarPtr MakeNode(Tensor value, std::vector<VarPtr> parents,
                std::function<void(Variable*)> backward) {
  VarPtr out = MakeVar(std::move(value));
  if (!GradEnabled()) return out;
  out->SetParents(std::move(parents));
  if (out->requires_grad()) out->SetBackwardFn(std::move(backward));
  return out;
}

bool IsRowBroadcast(const Tensor& a, const Tensor& b) {
  return a.ndim() == 2 && b.ndim() == 1 && a.dim(1) == b.dim(0);
}

}  // namespace

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  Tensor out = av;
  if (av.SameShape(bv)) {
    kernels::AxpyAcc(out.data(), bv.data(), out.numel(), 1.0f);
    return MakeNode(std::move(out), {a, b}, [](Variable* node) {
      const Tensor& g = node->grad();
      const auto& ps = node->parents();
      if (ps[0]->requires_grad()) {
        kernels::AxpyAcc(ps[0]->grad().data(), g.data(), g.numel(), 1.0f);
      }
      if (ps[1]->requires_grad()) {
        kernels::AxpyAcc(ps[1]->grad().data(), g.data(), g.numel(), 1.0f);
      }
    });
  }
  DEEPST_CHECK_MSG(IsRowBroadcast(av, bv), "Add: incompatible shapes");
  const int64_t rows = av.dim(0), cols = av.dim(1);
  kernels::AddRowBroadcast(out.data(), bv.data(), rows, cols, 1.0f);
  return MakeNode(std::move(out), {a, b}, [rows, cols](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    if (ps[0]->requires_grad()) {
      kernels::AxpyAcc(ps[0]->grad().data(), g.data(), g.numel(), 1.0f);
    }
    if (ps[1]->requires_grad()) {
      kernels::ColSumAcc(g.data(), ps[1]->grad().data(), rows, cols, 1.0f);
    }
  });
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  Tensor out = av;
  if (av.SameShape(bv)) {
    kernels::AxpyAcc(out.data(), bv.data(), out.numel(), -1.0f);
    return MakeNode(std::move(out), {a, b}, [](Variable* node) {
      const Tensor& g = node->grad();
      const auto& ps = node->parents();
      if (ps[0]->requires_grad()) {
        kernels::AxpyAcc(ps[0]->grad().data(), g.data(), g.numel(), 1.0f);
      }
      if (ps[1]->requires_grad()) {
        kernels::AxpyAcc(ps[1]->grad().data(), g.data(), g.numel(), -1.0f);
      }
    });
  }
  DEEPST_CHECK_MSG(IsRowBroadcast(av, bv), "Sub: incompatible shapes");
  const int64_t rows = av.dim(0), cols = av.dim(1);
  kernels::AddRowBroadcast(out.data(), bv.data(), rows, cols, -1.0f);
  return MakeNode(std::move(out), {a, b}, [rows, cols](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    if (ps[0]->requires_grad()) {
      kernels::AxpyAcc(ps[0]->grad().data(), g.data(), g.numel(), 1.0f);
    }
    if (ps[1]->requires_grad()) {
      kernels::ColSumAcc(g.data(), ps[1]->grad().data(), rows, cols, -1.0f);
    }
  });
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  DEEPST_CHECK_MSG(av.SameShape(bv), "Mul: shape mismatch");
  Tensor out = av;
  {
    float* o = out.data();
    const float* bp = bv.data();
    kernels::ElementLoop(out.numel(), [o, bp](int64_t i) { o[i] *= bp[i]; });
  }
  return MakeNode(std::move(out), {a, b}, [](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    const Tensor& av = ps[0]->value();
    const Tensor& bv = ps[1]->value();
    if (ps[0]->requires_grad()) {
      float* ga = ps[0]->grad().data();
      const float* gp = g.data();
      const float* bp = bv.data();
      kernels::ElementLoop(g.numel(),
                           [ga, gp, bp](int64_t i) { ga[i] += gp[i] * bp[i]; });
    }
    if (ps[1]->requires_grad()) {
      float* gb = ps[1]->grad().data();
      const float* gp = g.data();
      const float* ap = av.data();
      kernels::ElementLoop(g.numel(),
                           [gb, gp, ap](int64_t i) { gb[i] += gp[i] * ap[i]; });
    }
  });
}

VarPtr Div(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  DEEPST_CHECK_MSG(av.SameShape(bv), "Div: shape mismatch");
  Tensor out = av;
  {
    float* o = out.data();
    const float* bp = bv.data();
    kernels::ElementLoop(out.numel(), [o, bp](int64_t i) { o[i] /= bp[i]; });
  }
  return MakeNode(std::move(out), {a, b}, [](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    const Tensor& av = ps[0]->value();
    const Tensor& bv = ps[1]->value();
    if (ps[0]->requires_grad()) {
      float* ga = ps[0]->grad().data();
      const float* gp = g.data();
      const float* bp = bv.data();
      kernels::ElementLoop(g.numel(),
                           [ga, gp, bp](int64_t i) { ga[i] += gp[i] / bp[i]; });
    }
    if (ps[1]->requires_grad()) {
      float* gb = ps[1]->grad().data();
      const float* gp = g.data();
      const float* ap = av.data();
      const float* bp = bv.data();
      kernels::ElementLoop(g.numel(), [gb, gp, ap, bp](int64_t i) {
        gb[i] -= gp[i] * ap[i] / (bp[i] * bp[i]);
      });
    }
  });
}

VarPtr Neg(const VarPtr& a) { return ScalarMul(a, -1.0f); }

VarPtr ScalarMul(const VarPtr& a, float s) {
  Tensor out = a->value();
  {
    float* o = out.data();
    kernels::ElementLoop(out.numel(), [o, s](int64_t i) { o[i] *= s; });
  }
  return MakeNode(std::move(out), {a}, [s](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (p->requires_grad()) {
      kernels::AxpyAcc(p->grad().data(), g.data(), g.numel(), s);
    }
  });
}

VarPtr ScalarAdd(const VarPtr& a, float s) {
  Tensor out = a->value();
  kernels::AddScalarAcc(out.data(), s, out.numel());
  return MakeNode(std::move(out), {a}, [](Variable* node) {
    auto& p = node->parents()[0];
    if (p->requires_grad()) {
      const Tensor& g = node->grad();
      kernels::AxpyAcc(p->grad().data(), g.data(), g.numel(), 1.0f);
    }
  });
}

VarPtr RSubScalar(float s, const VarPtr& a) {
  Tensor out = a->value();
  {
    float* o = out.data();
    kernels::ElementLoop(out.numel(), [o, s](int64_t i) { o[i] = s - o[i]; });
  }
  return MakeNode(std::move(out), {a}, [](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (p->requires_grad()) {
      kernels::AxpyAcc(p->grad().data(), g.data(), g.numel(), -1.0f);
    }
  });
}

namespace {

// Shared implementation for unary elementwise ops whose gradient can be
// computed from the *output* value: grad_in = grad_out * dfn(out_value).
template <typename Fwd, typename BwdFromOut>
VarPtr UnaryFromOutput(const VarPtr& a, Fwd fwd, BwdFromOut bwd) {
  Tensor out = a->value();
  kernels::UnaryMap(a->value().data(), out.data(), out.numel(), fwd);
  // Capture output values by copying the tensor into the closure.
  Tensor out_copy = out;
  return MakeNode(std::move(out), {a}, [bwd, out_copy](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    float* ga = p->grad().data();
    const float* gp = g.data();
    const float* op = out_copy.data();
    kernels::ElementLoop(g.numel(), [ga, gp, op, bwd](int64_t i) {
      ga[i] += gp[i] * bwd(op[i]);
    });
  });
}

// Unary elementwise with gradient computed from the *input* value.
template <typename Fwd, typename BwdFromIn>
VarPtr UnaryFromInput(const VarPtr& a, Fwd fwd, BwdFromIn bwd) {
  Tensor out = a->value();
  kernels::UnaryMap(a->value().data(), out.data(), out.numel(), fwd);
  return MakeNode(std::move(out), {a}, [bwd](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    float* ga = p->grad().data();
    const float* gp = g.data();
    const float* in = p->value().data();
    kernels::ElementLoop(g.numel(), [ga, gp, in, bwd](int64_t i) {
      ga[i] += gp[i] * bwd(in[i]);
    });
  });
}

}  // namespace

VarPtr Sigmoid(const VarPtr& a) {
  return UnaryFromOutput(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y) { return y * (1.0f - y); });
}

VarPtr Tanh(const VarPtr& a) {
  return UnaryFromOutput(a, [](float x) { return std::tanh(x); },
                         [](float y) { return 1.0f - y * y; });
}

VarPtr Relu(const VarPtr& a) {
  return UnaryFromInput(a, [](float x) { return x > 0 ? x : 0.0f; },
                        [](float x) { return x > 0 ? 1.0f : 0.0f; });
}

VarPtr LeakyRelu(const VarPtr& a, float negative_slope) {
  return UnaryFromInput(
      a,
      [negative_slope](float x) { return x > 0 ? x : negative_slope * x; },
      [negative_slope](float x) { return x > 0 ? 1.0f : negative_slope; });
}

VarPtr Exp(const VarPtr& a) {
  return UnaryFromOutput(a, [](float x) { return std::exp(x); },
                         [](float y) { return y; });
}

VarPtr Log(const VarPtr& a, float eps) {
  return UnaryFromInput(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x) { return 1.0f / std::max(x, eps); });
}

VarPtr Softplus(const VarPtr& a) {
  return UnaryFromInput(
      a,
      [](float x) {
        // Numerically stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|}).
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

VarPtr Square(const VarPtr& a) {
  return UnaryFromInput(a, [](float x) { return x * x; },
                        [](float x) { return 2.0f * x; });
}

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  const Tensor& av = a->value();
  const Tensor& bv = b->value();
  DEEPST_CHECK_EQ(av.ndim(), 2);
  DEEPST_CHECK_EQ(bv.ndim(), 2);
  DEEPST_CHECK_EQ(av.dim(1), bv.dim(0));
  const int64_t m = av.dim(0), k = av.dim(1), n = bv.dim(1);
  Tensor out = Tensor::Zeros({m, n});
  kernels::GemmAcc(av.data(), bv.data(), out.data(), m, k, n);
  return MakeNode(std::move(out), {a, b}, [m, k, n](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    const Tensor& av = ps[0]->value();
    const Tensor& bv = ps[1]->value();
    if (ps[0]->requires_grad()) {
      // dA = dC @ B^T : [M,N] @ [N,K]^T-of-[K,N]
      kernels::GemmAccBT(g.data(), bv.data(), ps[0]->grad().data(), m, n, k);
    }
    if (ps[1]->requires_grad()) {
      // dB = A^T @ dC : [K,M]^T-of-[M,K] @ [M,N]
      kernels::GemmAccAT(av.data(), g.data(), ps[1]->grad().data(), k, m, n);
    }
  });
}

VarPtr Linear(const VarPtr& x, const VarPtr& w, const VarPtr& b) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  DEEPST_CHECK_EQ(xv.ndim(), 2);
  DEEPST_CHECK_EQ(wv.ndim(), 2);
  DEEPST_CHECK_EQ(xv.dim(1), wv.dim(1));
  const int64_t batch = xv.dim(0), in = xv.dim(1), out_dim = wv.dim(0);
  Tensor out = Tensor::Zeros({batch, out_dim});
  // out = x @ w^T
  kernels::GemmAccBT(xv.data(), wv.data(), out.data(), batch, in, out_dim);
  std::vector<VarPtr> parents = {x, w};
  if (b != nullptr) {
    const Tensor& bv = b->value();
    DEEPST_CHECK_EQ(bv.ndim(), 1);
    DEEPST_CHECK_EQ(bv.dim(0), out_dim);
    kernels::AddRowBroadcast(out.data(), bv.data(), batch, out_dim, 1.0f);
    parents.push_back(b);
  }
  const bool has_bias = b != nullptr;
  return MakeNode(
      std::move(out), std::move(parents),
      [batch, in, out_dim, has_bias](Variable* node) {
        const Tensor& g = node->grad();  // [B, Out]
        const auto& ps = node->parents();
        const Tensor& xv = ps[0]->value();
        const Tensor& wv = ps[1]->value();
        if (ps[0]->requires_grad()) {
          // dX = dY @ W : [B,Out] @ [Out,In]
          kernels::GemmAcc(g.data(), wv.data(), ps[0]->grad().data(), batch,
                           out_dim, in);
        }
        if (ps[1]->requires_grad()) {
          // dW = dY^T @ X : [Out,B] @ [B,In]
          kernels::GemmAccAT(g.data(), xv.data(), ps[1]->grad().data(),
                             out_dim, batch, in);
        }
        if (has_bias && ps[2]->requires_grad()) {
          kernels::ColSumAcc(g.data(), ps[2]->grad().data(), batch, out_dim,
                             1.0f);
        }
      });
}

VarPtr ConcatCols(const std::vector<VarPtr>& parts) {
  DEEPST_CHECK(!parts.empty());
  const int64_t rows = parts[0]->value().dim(0);
  int64_t total_cols = 0;
  for (const auto& p : parts) {
    DEEPST_CHECK_EQ(p->value().ndim(), 2);
    DEEPST_CHECK_EQ(p->value().dim(0), rows);
    total_cols += p->value().dim(1);
  }
  Tensor out({rows, total_cols});
  {
    int64_t col0 = 0;
    for (const auto& p : parts) {
      const Tensor& pv = p->value();
      const int64_t cols = pv.dim(1);
      const float* src = pv.data();
      float* dst = out.data() + col0;
      kernels::RowLoop(rows, [src, dst, cols, total_cols](int64_t r) {
        std::copy(src + r * cols, src + (r + 1) * cols, dst + r * total_cols);
      });
      col0 += cols;
    }
  }
  return MakeNode(std::move(out), parts, [rows, total_cols](Variable* node) {
    const Tensor& g = node->grad();
    int64_t col0 = 0;
    for (const auto& p : node->parents()) {
      const int64_t cols = p->value().dim(1);
      if (p->requires_grad()) {
        float* gp = p->grad().data();
        const float* src = g.data() + col0;
        kernels::RowLoop(rows, [gp, src, cols, total_cols](int64_t r) {
          const float* grow = src + r * total_cols;
          float* prow = gp + r * cols;
          for (int64_t c = 0; c < cols; ++c) prow[c] += grow[c];
        });
      }
      col0 += cols;
    }
  });
}

VarPtr SliceCols(const VarPtr& a, int64_t start, int64_t len) {
  const Tensor& av = a->value();
  DEEPST_CHECK_EQ(av.ndim(), 2);
  DEEPST_CHECK(start >= 0 && len > 0 && start + len <= av.dim(1));
  const int64_t rows = av.dim(0), cols = av.dim(1);
  Tensor out({rows, len});
  {
    const float* src = av.data() + start;
    float* dst = out.data();
    kernels::RowLoop(rows, [src, dst, cols, len](int64_t r) {
      std::copy(src + r * cols, src + r * cols + len, dst + r * len);
    });
  }
  return MakeNode(std::move(out), {a},
                  [start, len, rows, cols](Variable* node) {
                    const Tensor& g = node->grad();
                    auto& p = node->parents()[0];
                    if (!p->requires_grad()) return;
                    float* gp = p->grad().data() + start;
                    const float* src = g.data();
                    kernels::RowLoop(rows, [gp, src, cols, len](int64_t r) {
                      const float* grow = src + r * len;
                      float* prow = gp + r * cols;
                      for (int64_t c = 0; c < len; ++c) prow[c] += grow[c];
                    });
                  });
}

VarPtr EmbeddingLookup(const VarPtr& table, const std::vector<int>& ids) {
  const Tensor& tv = table->value();
  DEEPST_CHECK_EQ(tv.ndim(), 2);
  const int64_t vocab = tv.dim(0), dim = tv.dim(1);
  const int64_t batch = static_cast<int64_t>(ids.size());
  for (int id : ids) DEEPST_CHECK(id >= 0 && id < vocab);
  Tensor out({batch, dim});
  {
    const float* src = tv.data();
    float* dst = out.data();
    const int* idp = ids.data();
    kernels::RowLoop(batch, [src, dst, idp, dim](int64_t b) {
      const int id = idp[b];
      std::copy(src + id * dim, src + (id + 1) * dim, dst + b * dim);
    });
  }
  return MakeNode(std::move(out), {table}, [ids, dim](Variable* node) {
    const Tensor& g = node->grad();
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    Tensor& gt = p->grad();
    // Scatter-add stays serial: duplicate ids in one batch alias the same
    // table row, so a partition over b would race.
    for (size_t b = 0; b < ids.size(); ++b) {
      const int id = ids[b];
      for (int64_t d = 0; d < dim; ++d) {
        gt[id * dim + d] += g[static_cast<int64_t>(b) * dim + d];
      }
    }
  });
}

VarPtr Reshape(const VarPtr& a, std::vector<int64_t> shape) {
  Tensor out = a->value().Reshape(shape);
  return MakeNode(std::move(out), {a}, [](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    kernels::AxpyAcc(p->grad().data(), g.data(), g.numel(), 1.0f);
  });
}

VarPtr Sum(const VarPtr& a) {
  Tensor out({1});
  out[0] = static_cast<float>(
      kernels::ReduceSum(a->value().data(), a->value().numel()));
  return MakeNode(std::move(out), {a}, [](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const float g = node->grad()[0];
    Tensor& gp = p->grad();
    kernels::AddScalarAcc(gp.data(), g, gp.numel());
  });
}

VarPtr Mean(const VarPtr& a) {
  const int64_t n = a->value().numel();
  DEEPST_CHECK_GT(n, 0);
  return ScalarMul(Sum(a), 1.0f / static_cast<float>(n));
}

VarPtr RowSum(const VarPtr& a) {
  const Tensor& av = a->value();
  DEEPST_CHECK_EQ(av.ndim(), 2);
  const int64_t rows = av.dim(0), cols = av.dim(1);
  Tensor out({rows});
  {
    const float* src = av.data();
    float* dst = out.data();
    kernels::RowLoop(rows, [src, dst, cols](int64_t r) {
      const float* arow = src + r * cols;
      double acc = 0.0;
      for (int64_t c = 0; c < cols; ++c) acc += arow[c];
      dst[r] = static_cast<float>(acc);
    });
  }
  return MakeNode(std::move(out), {a}, [rows, cols](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    float* gp = p->grad().data();
    const float* grow = g.data();
    kernels::RowLoop(rows, [gp, grow, cols](int64_t r) {
      float* prow = gp + r * cols;
      for (int64_t c = 0; c < cols; ++c) prow[c] += grow[r];
    });
  });
}

VarPtr WeightedSum(const VarPtr& a, const Tensor& weights) {
  const Tensor& av = a->value();
  DEEPST_CHECK_EQ(av.numel(), weights.numel());
  Tensor out({1});
  out[0] = static_cast<float>(
      kernels::ReduceDot(av.data(), weights.data(), av.numel()));
  return MakeNode(std::move(out), {a}, [weights](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const float g = node->grad()[0];
    kernels::AxpyAcc(p->grad().data(), weights.data(), weights.numel(), g);
  });
}

VarPtr Softmax(const VarPtr& logits) {
  Tensor out = SoftmaxRows(logits->value());
  Tensor out_copy = out;
  return MakeNode(std::move(out), {logits}, [out_copy](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    const int64_t rows = out_copy.dim(0), cols = out_copy.dim(1);
    float* gp = p->grad().data();
    const float* gr = g.data();
    const float* yp = out_copy.data();
    kernels::RowLoop(rows, [gp, gr, yp, cols](int64_t r) {
      const float* grow = gr + r * cols;
      const float* yrow = yp + r * cols;
      float* prow = gp + r * cols;
      double dot = 0.0;
      for (int64_t c = 0; c < cols; ++c) dot += grow[c] * yrow[c];
      for (int64_t c = 0; c < cols; ++c) {
        prow[c] += yrow[c] * (grow[c] - static_cast<float>(dot));
      }
    });
  });
}

VarPtr LogSoftmax(const VarPtr& logits) {
  Tensor out = LogSoftmaxRows(logits->value());
  Tensor out_copy = out;
  return MakeNode(std::move(out), {logits}, [out_copy](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    const int64_t rows = out_copy.dim(0), cols = out_copy.dim(1);
    float* gp = p->grad().data();
    const float* gr = g.data();
    const float* yp = out_copy.data();
    kernels::RowLoop(rows, [gp, gr, yp, cols](int64_t r) {
      const float* grow = gr + r * cols;
      const float* yrow = yp + r * cols;
      float* prow = gp + r * cols;
      double gsum = 0.0;
      for (int64_t c = 0; c < cols; ++c) gsum += grow[c];
      for (int64_t c = 0; c < cols; ++c) {
        prow[c] += grow[c] - static_cast<float>(gsum) * std::exp(yrow[c]);
      }
    });
  });
}

VarPtr CrossEntropyLoss(const VarPtr& logits, const std::vector<int>& targets,
                        const std::vector<float>& weights) {
  const Tensor& lv = logits->value();
  DEEPST_CHECK_EQ(lv.ndim(), 2);
  const int64_t rows = lv.dim(0), cols = lv.dim(1);
  DEEPST_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));
  DEEPST_CHECK_EQ(rows, static_cast<int64_t>(weights.size()));
  Tensor probs = SoftmaxRows(lv);
  Tensor out({1});
  const double loss = OrderedReduce(
      rows, kernels::kRowGrain, [&](int64_t begin, int64_t end) {
        double acc = 0.0;
        for (int64_t r = begin; r < end; ++r) {
          const float w = weights[static_cast<size_t>(r)];
          if (w == 0.0f) continue;
          const int t = targets[static_cast<size_t>(r)];
          DEEPST_CHECK(t >= 0 && t < cols);
          acc -= w * std::log(std::max(probs.at(r, t), 1e-12f));
        }
        return acc;
      });
  out[0] = static_cast<float>(loss);
  return MakeNode(
      std::move(out), {logits},
      [probs, targets, weights, rows, cols](Variable* node) {
        auto& p = node->parents()[0];
        if (!p->requires_grad()) return;
        const float g = node->grad()[0];
        float* gp = p->grad().data();
        const float* pp = probs.data();
        const int* tp = targets.data();
        const float* wp = weights.data();
        kernels::RowLoop(rows, [gp, pp, tp, wp, cols, g](int64_t r) {
          const float w = wp[r];
          if (w == 0.0f) return;
          const int t = tp[r];
          const float* prow = pp + r * cols;
          float* grow = gp + r * cols;
          for (int64_t c = 0; c < cols; ++c) {
            float d = prow[c];
            if (c == t) d -= 1.0f;
            grow[c] += g * w * d;
          }
        });
      });
}

VarPtr GaussianReparameterize(const VarPtr& mu, const VarPtr& logvar,
                              util::Rng* rng) {
  const Tensor& mv = mu->value();
  const Tensor& lv = logvar->value();
  DEEPST_CHECK(mv.SameShape(lv));
  Tensor eps(mv.shape());
  // Noise draws stay serial: the rng stream order is part of the
  // reproducibility contract.
  for (int64_t i = 0; i < eps.numel(); ++i) {
    eps[i] = static_cast<float>(rng->Gaussian());
  }
  Tensor out = mv;
  {
    float* o = out.data();
    const float* lp = lv.data();
    const float* ep = eps.data();
    kernels::ElementLoop(out.numel(), [o, lp, ep](int64_t i) {
      o[i] += std::exp(0.5f * lp[i]) * ep[i];
    });
  }
  return MakeNode(std::move(out), {mu, logvar}, [eps](Variable* node) {
    const Tensor& g = node->grad();
    const auto& ps = node->parents();
    if (ps[0]->requires_grad()) {
      kernels::AxpyAcc(ps[0]->grad().data(), g.data(), g.numel(), 1.0f);
    }
    if (ps[1]->requires_grad()) {
      const float* lp = ps[1]->value().data();
      float* gl = ps[1]->grad().data();
      const float* gp = g.data();
      const float* ep = eps.data();
      kernels::ElementLoop(g.numel(), [gl, gp, lp, ep](int64_t i) {
        gl[i] += gp[i] * 0.5f * std::exp(0.5f * lp[i]) * ep[i];
      });
    }
  });
}

VarPtr KlStandardNormal(const VarPtr& mu, const VarPtr& logvar) {
  const Tensor& mv = mu->value();
  const Tensor& lv = logvar->value();
  DEEPST_CHECK(mv.SameShape(lv));
  Tensor out({1});
  const float* mp = mv.data();
  const float* lp = lv.data();
  const double acc = OrderedReduce(
      mv.numel(), kernels::kReduceGrain, [mp, lp](int64_t begin, int64_t end) {
        double a = 0.0;
        for (int64_t i = begin; i < end; ++i) {
          a += 0.5 * (static_cast<double>(mp[i]) * mp[i] + std::exp(lp[i]) -
                      lp[i] - 1.0);
        }
        return a;
      });
  out[0] = static_cast<float>(acc);
  return MakeNode(std::move(out), {mu, logvar}, [](Variable* node) {
    const float g = node->grad()[0];
    const auto& ps = node->parents();
    const Tensor& mv = ps[0]->value();
    const Tensor& lv = ps[1]->value();
    if (ps[0]->requires_grad()) {
      kernels::AxpyAcc(ps[0]->grad().data(), mv.data(), mv.numel(), g);
    }
    if (ps[1]->requires_grad()) {
      float* gl = ps[1]->grad().data();
      const float* lp = lv.data();
      kernels::ElementLoop(lv.numel(), [gl, lp, g](int64_t i) {
        gl[i] += g * 0.5f * (std::exp(lp[i]) - 1.0f);
      });
    }
  });
}

VarPtr GaussianLogProb(const Tensor& x, const VarPtr& mean, const VarPtr& var,
                       const Tensor& row_weights) {
  const Tensor& mv = mean->value();
  const Tensor& vv = var->value();
  DEEPST_CHECK(x.SameShape(mv));
  DEEPST_CHECK(x.SameShape(vv));
  DEEPST_CHECK_EQ(x.ndim(), 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  DEEPST_CHECK_EQ(row_weights.numel(), rows);
  constexpr double kLog2Pi = 1.8378770664093453;
  Tensor out({1});
  const double acc = OrderedReduce(
      rows, kernels::kRowGrain, [&](int64_t begin, int64_t end) {
        double a = 0.0;
        for (int64_t r = begin; r < end; ++r) {
          const double w = row_weights[r];
          if (w == 0.0) continue;
          double lp = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            const double v = std::max<double>(vv.at(r, c), 1e-8);
            const double d = static_cast<double>(x.at(r, c)) - mv.at(r, c);
            lp += -0.5 * (kLog2Pi + std::log(v) + d * d / v);
          }
          a += w * lp;
        }
        return a;
      });
  out[0] = static_cast<float>(acc);
  return MakeNode(
      std::move(out), {mean, var},
      [x, row_weights, rows, cols](Variable* node) {
        const float g = node->grad()[0];
        const auto& ps = node->parents();
        const Tensor& mv = ps[0]->value();
        const Tensor& vv = ps[1]->value();
        const bool need_dm = ps[0]->requires_grad();
        const bool need_dv = ps[1]->requires_grad();
        float* dm = need_dm ? ps[0]->grad().data() : nullptr;
        float* dv = need_dv ? ps[1]->grad().data() : nullptr;
        kernels::RowLoop(rows, [&](int64_t r) {
          const float w = row_weights[r];
          if (w == 0.0f) return;
          for (int64_t c = 0; c < cols; ++c) {
            const float v = std::max(vv.at(r, c), 1e-8f);
            const float d = x.at(r, c) - mv.at(r, c);
            if (need_dm) dm[r * cols + c] += g * w * d / v;
            if (need_dv) {
              dv[r * cols + c] += g * w * 0.5f * (d * d / (v * v) - 1.0f / v);
            }
          }
        });
      });
}

VarPtr CategoricalKlToUniform(const VarPtr& logits) {
  // KL(q || U) = sum_k q_k (log q_k + log K) computed from logits for
  // stability: log q = log_softmax(logits).
  const Tensor& lv = logits->value();
  DEEPST_CHECK_EQ(lv.ndim(), 2);
  const int64_t rows = lv.dim(0), cols = lv.dim(1);
  Tensor logq = LogSoftmaxRows(lv);
  const float log_k = std::log(static_cast<float>(cols));
  Tensor out({1});
  const double acc = OrderedReduce(
      rows, kernels::kRowGrain, [&](int64_t begin, int64_t end) {
        double a = 0.0;
        for (int64_t r = begin; r < end; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            const double q = std::exp(logq.at(r, c));
            a += q * (logq.at(r, c) + log_k);
          }
        }
        return a;
      });
  out[0] = static_cast<float>(acc);
  return MakeNode(
      std::move(out), {logits}, [logq, rows, cols, log_k](Variable* node) {
        auto& p = node->parents()[0];
        if (!p->requires_grad()) return;
        const float g = node->grad()[0];
        float* gp = p->grad().data();
        const float* qp = logq.data();
        // d/dlogit_j sum_k q_k(logq_k + logK)
        //   = q_j (logq_j + logK) - q_j * sum_k q_k (logq_k + logK)
        kernels::RowLoop(rows, [gp, qp, cols, log_k, g](int64_t r) {
          const float* qrow = qp + r * cols;
          float* grow = gp + r * cols;
          double kl_r = 0.0;
          for (int64_t c = 0; c < cols; ++c) {
            kl_r += std::exp(qrow[c]) * (qrow[c] + log_k);
          }
          for (int64_t c = 0; c < cols; ++c) {
            const float q = std::exp(qrow[c]);
            grow[c] += g * q * (qrow[c] + log_k - static_cast<float>(kl_r));
          }
        });
      });
}

VarPtr GumbelSoftmaxSample(const VarPtr& logits, float tau, util::Rng* rng) {
  const Tensor& lv = logits->value();
  DEEPST_CHECK_EQ(lv.ndim(), 2);
  DEEPST_CHECK_GT(tau, 0.0f);
  const int64_t rows = lv.dim(0), cols = lv.dim(1);
  Tensor perturbed({rows, cols});
  // Serial: Gumbel draws consume the rng stream in element order.
  for (int64_t i = 0; i < perturbed.numel(); ++i) {
    perturbed[i] = (lv[i] + static_cast<float>(rng->Gumbel())) / tau;
  }
  Tensor y = SoftmaxRows(perturbed);
  Tensor y_copy = y;
  return MakeNode(
      std::move(y), {logits}, [y_copy, tau, rows, cols](Variable* node) {
        auto& p = node->parents()[0];
        if (!p->requires_grad()) return;
        const Tensor& g = node->grad();
        float* gp = p->grad().data();
        const float* gr = g.data();
        const float* yp = y_copy.data();
        // Same Jacobian as softmax, scaled by 1/tau.
        kernels::RowLoop(rows, [gp, gr, yp, cols, tau](int64_t r) {
          const float* grow = gr + r * cols;
          const float* yrow = yp + r * cols;
          float* prow = gp + r * cols;
          double dot = 0.0;
          for (int64_t c = 0; c < cols; ++c) dot += grow[c] * yrow[c];
          for (int64_t c = 0; c < cols; ++c) {
            prow[c] += yrow[c] * (grow[c] - static_cast<float>(dot)) / tau;
          }
        });
      });
}

VarPtr StopGradient(const VarPtr& a) {
  return MakeVar(a->value(), false);
}

}  // namespace ops
}  // namespace nn
}  // namespace deepst
