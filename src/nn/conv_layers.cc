#include "nn/conv_layers.h"

#include <cmath>

#include "nn/ops.h"

namespace deepst {
namespace nn {

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels, int kernel,
                         int stride, int pad, util::Rng* rng)
    : stride_(stride), pad_(pad) {
  const int64_t fan_in = in_channels * kernel * kernel;
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  w_ = AddParameter("weight",
                    Tensor::Uniform({out_channels, in_channels, kernel, kernel},
                                    -bound, bound, rng));
  b_ = AddParameter("bias", Tensor::Uniform({out_channels}, -bound, bound,
                                            rng));
}

VarPtr Conv2dLayer::Forward(const VarPtr& x) const {
  return ops::Conv2d(x, w_, b_, stride_, pad_);
}

BatchNorm2dLayer::BatchNorm2dLayer(int64_t channels, util::Rng* rng) {
  (void)rng;
  gamma_ = AddParameter("gamma", Tensor::Full({channels}, 1.0f));
  beta_ = AddParameter("beta", Tensor::Zeros({channels}));
  state_.running_mean = Tensor::Zeros({channels});
  state_.running_var = Tensor::Full({channels}, 1.0f);
  AddBuffer("running_mean", &state_.running_mean);
  AddBuffer("running_var", &state_.running_var);
}

VarPtr BatchNorm2dLayer::Forward(const VarPtr& x, bool training) {
  return ops::BatchNorm2d(x, gamma_, beta_, &state_, training);
}

ConvBlock::ConvBlock(int64_t in_channels, int64_t out_channels, int kernel,
                     int stride, int pad, util::Rng* rng) {
  conv_ = std::make_unique<Conv2dLayer>(in_channels, out_channels, kernel,
                                        stride, pad, rng);
  bn_ = std::make_unique<BatchNorm2dLayer>(out_channels, rng);
  AddSubmodule("conv", conv_.get());
  AddSubmodule("bn", bn_.get());
}

VarPtr ConvBlock::Forward(const VarPtr& x, bool training) {
  return ops::LeakyRelu(bn_->Forward(conv_->Forward(x), training), 0.01f);
}

}  // namespace nn
}  // namespace deepst
