#ifndef DEEPST_NN_OPS_H_
#define DEEPST_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "nn/variable.h"
#include "util/rng.h"

namespace deepst {
namespace nn {
namespace ops {

// All ops build tape nodes; gradients flow to parents with requires_grad().
// Shapes are validated with DEEPST_CHECK.

// -- Elementwise arithmetic ---------------------------------------------------
// Add/Sub support equal shapes, or `b` a 1-D row [N] broadcast over `a`'s
// rows when `a` is [B, N] (bias add).
VarPtr Add(const VarPtr& a, const VarPtr& b);
VarPtr Sub(const VarPtr& a, const VarPtr& b);
// Strictly equal shapes.
VarPtr Mul(const VarPtr& a, const VarPtr& b);
VarPtr Div(const VarPtr& a, const VarPtr& b);
VarPtr Neg(const VarPtr& a);
VarPtr ScalarMul(const VarPtr& a, float s);
VarPtr ScalarAdd(const VarPtr& a, float s);
// Computes s - a.
VarPtr RSubScalar(float s, const VarPtr& a);

// -- Nonlinearities ----------------------------------------------------------
VarPtr Sigmoid(const VarPtr& a);
VarPtr Tanh(const VarPtr& a);
VarPtr Relu(const VarPtr& a);
VarPtr LeakyRelu(const VarPtr& a, float negative_slope = 0.01f);
VarPtr Exp(const VarPtr& a);
// Numerically guarded log: log(max(a, eps)).
VarPtr Log(const VarPtr& a, float eps = 1e-12f);
VarPtr Softplus(const VarPtr& a);
VarPtr Square(const VarPtr& a);

// -- Linear algebra ----------------------------------------------------------
// a: [M, K], b: [K, N] -> [M, N].
VarPtr MatMul(const VarPtr& a, const VarPtr& b);
// x: [B, In], w: [Out, In], b: [Out] (b may be null) -> [B, Out].
// Fused x @ w^T + b, the workhorse of every layer.
VarPtr Linear(const VarPtr& x, const VarPtr& w, const VarPtr& b);

// -- Shape ops ---------------------------------------------------------------
// Concatenate [B, Ni] tensors along axis 1.
VarPtr ConcatCols(const std::vector<VarPtr>& parts);
// Slice columns [start, start+len) of a [B, N] tensor.
VarPtr SliceCols(const VarPtr& a, int64_t start, int64_t len);
// Select rows of a [V, D] table by integer ids -> [B, D]. Gradient scatters
// into the table (embedding lookup).
VarPtr EmbeddingLookup(const VarPtr& table, const std::vector<int>& ids);
// Reshape to new shape (same element count).
VarPtr Reshape(const VarPtr& a, std::vector<int64_t> shape);

// -- Reductions --------------------------------------------------------------
// Sum of all elements -> scalar [1].
VarPtr Sum(const VarPtr& a);
// Mean of all elements -> scalar [1].
VarPtr Mean(const VarPtr& a);
// Sum over axis 1 of [B, N] -> [B].
VarPtr RowSum(const VarPtr& a);
// Weighted sum: sum_i w[i] * a[i], w constant with same numel -> scalar.
VarPtr WeightedSum(const VarPtr& a, const Tensor& weights);

// -- Softmax & losses ----------------------------------------------------------
// Row-wise softmax of [B, C].
VarPtr Softmax(const VarPtr& logits);
// Row-wise log-softmax of [B, C].
VarPtr LogSoftmax(const VarPtr& logits);
// Weighted negative log-likelihood: sum_b weights[b] * -log softmax(logits)[b,
// targets[b]]. `weights` entries of 0 mask padded rows. Returns scalar [1].
VarPtr CrossEntropyLoss(const VarPtr& logits, const std::vector<int>& targets,
                        const std::vector<float>& weights);

// -- Probabilistic building blocks --------------------------------------------
// Reparameterized Gaussian sample: z = mu + exp(0.5*logvar) * eps with eps
// drawn i.i.d. N(0,1) from `rng` (recorded as a constant).
VarPtr GaussianReparameterize(const VarPtr& mu, const VarPtr& logvar,
                              util::Rng* rng);
// KL( N(mu, diag(exp(logvar))) || N(0, I) ), summed over all elements ->
// scalar [1]. Standard VAE closed form.
VarPtr KlStandardNormal(const VarPtr& mu, const VarPtr& logvar);
// Sum over rows b of weights[b] * log N(x[b]; mean[b], var[b]) with x
// constant [B, D], diagonal variance var (strictly positive) -> scalar.
VarPtr GaussianLogProb(const Tensor& x, const VarPtr& mean, const VarPtr& var,
                       const Tensor& row_weights);
// KL( softmax(logits) || Uniform(K) ) summed over rows -> scalar [1].
VarPtr CategoricalKlToUniform(const VarPtr& logits);
// Differentiable Gumbel-Softmax sample: y = softmax((logits + g) / tau), g
// i.i.d. Gumbel(0,1). Returns [B, K] relaxed one-hot rows.
VarPtr GumbelSoftmaxSample(const VarPtr& logits, float tau, util::Rng* rng);

// -- Gradient-flow control ----------------------------------------------------
// Identity in the forward pass; blocks gradient to the parent.
VarPtr StopGradient(const VarPtr& a);

}  // namespace ops
}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_OPS_H_
