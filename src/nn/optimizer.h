#ifndef DEEPST_NN_OPTIMIZER_H_
#define DEEPST_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "nn/arena.h"
#include "nn/module.h"
#include "util/status.h"

namespace deepst {
namespace nn {

// Detached optimizer state for training checkpoints: everything beyond the
// parameters themselves that a resumed run needs to continue bitwise
// identically (Adam moment vectors and step count, SGD velocity, current
// learning rate after any scheduler/backoff adjustments).
struct OptimizerState {
  std::string kind;           // "sgd" or "adam"
  int64_t step = 0;           // Adam bias-correction step count
  float lr = 0.0f;
  std::vector<Tensor> slots;  // Adam: m then v; SGD: velocity (may be empty)
};

// Optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<NamedParam> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  // Checkpoint support: snapshot / restore the full update state. Import
  // rejects a state whose kind or slot shapes do not match this optimizer.
  virtual OptimizerState ExportState() const = 0;
  virtual util::Status ImportState(const OptimizerState& state) = 0;

  void ZeroGrad() {
    for (auto& p : params_) p.var->ZeroGrad();
  }

  // Scales all gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  const std::vector<NamedParam>& params() const { return params_; }

 protected:
  std::vector<NamedParam> params_;
};

// --- Sharded gradient accumulation (data-parallel training) ----------------
// Binds each parameter to its index in `params`, so Variable::grad() under
// an active GradShard resolves to the shard's slot for that parameter.
// Idempotent; call once per model before sharded training.
void BindParamSlots(const std::vector<NamedParam>& params);

// Reduces per-shard gradients into the parameters' own gradient tensors:
// for every parameter, the touched shards are added in ascending shard
// order, so the accumulated gradient is bitwise identical for every thread
// count and shard schedule. Parameters fan out over the backend (disjoint
// writes). Parameters no shard touched keep has_grad() == false, matching
// the single-graph path. Call with no GradShard active on the thread.
void AccumulateShardGrads(const std::vector<NamedParam>& params,
                          const std::vector<const GradShard*>& shards);

// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<NamedParam> params, float lr, float momentum = 0.0f);
  void Step() override;
  OptimizerState ExportState() const override;
  util::Status ImportState(const OptimizerState& state) override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba, 2014) -- the optimizer used by the paper -- with
// optional decoupled weight decay (AdamW when weight_decay > 0).
class Adam : public Optimizer {
 public:
  Adam(std::vector<NamedParam> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;
  OptimizerState ExportState() const override;
  util::Status ImportState(const OptimizerState& state) override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_OPTIMIZER_H_
