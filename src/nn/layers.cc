#include "nn/layers.h"

#include <cmath>

namespace deepst {
namespace nn {
namespace {

// Kaiming-uniform-ish fan-in initialization, as PyTorch's default.
Tensor InitWeight(int64_t out_dim, int64_t in_dim, util::Rng* rng) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_dim));
  return Tensor::Uniform({out_dim, in_dim}, -bound, bound, rng);
}

Tensor InitBias(int64_t out_dim, int64_t in_dim, util::Rng* rng) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_dim));
  return Tensor::Uniform({out_dim}, -bound, bound, rng);
}

VarPtr Activate(const VarPtr& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ops::Relu(x);
    case Activation::kLeakyRelu:
      return ops::LeakyRelu(x);
    case Activation::kTanh:
      return ops::Tanh(x);
    case Activation::kSigmoid:
      return ops::Sigmoid(x);
  }
  return x;
}

}  // namespace

LinearLayer::LinearLayer(int64_t in_dim, int64_t out_dim, util::Rng* rng,
                         bool bias)
    : in_dim_(in_dim), out_dim_(out_dim) {
  w_ = AddParameter("weight", InitWeight(out_dim, in_dim, rng));
  if (bias) b_ = AddParameter("bias", InitBias(out_dim, in_dim, rng));
}

VarPtr LinearLayer::Forward(const VarPtr& x) const {
  return ops::Linear(x, w_, b_);
}

Mlp::Mlp(const std::vector<int64_t>& dims, Activation activation,
         util::Rng* rng)
    : activation_(activation) {
  DEEPST_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(
        std::make_unique<LinearLayer>(dims[i], dims[i + 1], rng));
    AddSubmodule("fc" + std::to_string(i), layers_.back().get());
  }
}

VarPtr Mlp::Forward(const VarPtr& x) const {
  return ForwardOutput(ForwardHidden(x));
}

VarPtr Mlp::ForwardHidden(const VarPtr& x) const {
  VarPtr h = x;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    h = Activate(layers_[i]->Forward(h), activation_);
  }
  return h;
}

VarPtr Mlp::ForwardOutput(const VarPtr& h) const {
  return layers_.back()->Forward(h);
}

EmbeddingLayer::EmbeddingLayer(int64_t vocab, int64_t dim, util::Rng* rng)
    : vocab_(vocab), dim_(dim) {
  table_ = AddParameter(
      "table", Tensor::Gaussian({vocab, dim}, 0.0f,
                                1.0f / std::sqrt(static_cast<float>(dim)),
                                rng));
}

VarPtr EmbeddingLayer::Forward(const std::vector<int>& ids) const {
  return ops::EmbeddingLookup(table_, ids);
}

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_ih_ = AddParameter("w_ih", InitWeight(3 * hidden_dim, input_dim, rng));
  w_hh_ = AddParameter("w_hh", InitWeight(3 * hidden_dim, hidden_dim, rng));
  b_ih_ = AddParameter("b_ih", InitBias(3 * hidden_dim, hidden_dim, rng));
  b_hh_ = AddParameter("b_hh", InitBias(3 * hidden_dim, hidden_dim, rng));
}

VarPtr GruCell::Step(const VarPtr& x, const VarPtr& h) const {
  namespace o = ops;
  const int64_t hd = hidden_dim_;
  VarPtr gi = o::Linear(x, w_ih_, b_ih_);  // [B, 3H]
  VarPtr gh = o::Linear(h, w_hh_, b_hh_);  // [B, 3H]
  VarPtr i_r = o::SliceCols(gi, 0, hd);
  VarPtr i_z = o::SliceCols(gi, hd, hd);
  VarPtr i_n = o::SliceCols(gi, 2 * hd, hd);
  VarPtr h_r = o::SliceCols(gh, 0, hd);
  VarPtr h_z = o::SliceCols(gh, hd, hd);
  VarPtr h_n = o::SliceCols(gh, 2 * hd, hd);
  VarPtr r = o::Sigmoid(o::Add(i_r, h_r));
  VarPtr z = o::Sigmoid(o::Add(i_z, h_z));
  VarPtr n = o::Tanh(o::Add(i_n, o::Mul(r, h_n)));
  // h' = (1 - z) * n + z * h
  return o::Add(o::Mul(o::RSubScalar(1.0f, z), n), o::Mul(z, h));
}

StackedGru::StackedGru(int64_t input_dim, int64_t hidden_dim, int num_layers,
                       util::Rng* rng)
    : hidden_dim_(hidden_dim) {
  DEEPST_CHECK_GE(num_layers, 1);
  for (int l = 0; l < num_layers; ++l) {
    const int64_t in = (l == 0) ? input_dim : hidden_dim;
    cells_.push_back(std::make_unique<GruCell>(in, hidden_dim, rng));
    AddSubmodule("layer" + std::to_string(l), cells_.back().get());
  }
}

VarPtr StackedGru::Step(const VarPtr& x, std::vector<VarPtr>* state) const {
  DEEPST_CHECK_EQ(state->size(), cells_.size());
  VarPtr input = x;
  for (size_t l = 0; l < cells_.size(); ++l) {
    VarPtr new_h = cells_[l]->Step(input, (*state)[l]);
    (*state)[l] = new_h;
    input = new_h;
  }
  return input;
}

std::vector<VarPtr> StackedGru::InitialState(int64_t batch) const {
  std::vector<VarPtr> state;
  state.reserve(cells_.size());
  for (size_t l = 0; l < cells_.size(); ++l) {
    state.push_back(Constant(Tensor::Zeros({batch, hidden_dim_})));
  }
  return state;
}

}  // namespace nn
}  // namespace deepst
