#ifndef DEEPST_NN_KERNELS_H_
#define DEEPST_NN_KERNELS_H_

#include <cstdint>

#include "nn/backend.h"
#include "nn/tensor.h"

namespace deepst {
namespace nn {
namespace kernels {

// Hot loops of ops.cc / conv_ops.cc, hoisted out of the op closures and
// dispatched through the global nn::Backend. Every kernel honors the
// determinism contract of backend.h: bitwise-identical results for every
// thread count. Disjoint-write kernels partition the output space with a
// fixed per-element accumulation order; reduction kernels combine fixed
// chunk partials in ascending chunk order on both the serial and the
// parallel path.

// Work-partitioning grains: minimum iterations per chunk, chosen so chunk
// bookkeeping is negligible next to the chunk body. Chunk boundaries depend
// only on (n, grain), never on the thread count.
inline constexpr int64_t kEwiseGrain = 16384;  // elementwise maps
inline constexpr int64_t kRowGrain = 8;        // per-row loops over [B, C]
inline constexpr int64_t kGemmRowGrain = 4;    // GEMM output rows
inline constexpr int64_t kReduceGrain = 8192;  // flat reductions

// -- GEMM accumulate kernels (row-partitioned) -------------------------------
// C[M,N] += A[M,K] @ B[K,N].
void GemmAcc(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n);
// C[M,N] += A[M,K] @ B^T where B is [N,K].
void GemmAccBT(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n);
// C[M,N] += A^T @ B where A is [K,M], B is [K,N].
void GemmAccAT(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n);

// -- Broadcast / accumulate helpers ------------------------------------------
// out[r*cols + c] += sign * row[c] for every r.
void AddRowBroadcast(float* out, const float* row, int64_t rows, int64_t cols,
                     float sign);
// out[c] += sign * sum_r g[r*cols + c], reduced over fixed row chunks
// combined in ascending chunk order.
void ColSumAcc(const float* g, float* out, int64_t rows, int64_t cols,
               float sign);
// dst[i] += scale * src[i].
void AxpyAcc(float* dst, const float* src, int64_t n, float scale);
// dst[i] += s.
void AddScalarAcc(float* dst, float s, int64_t n);

// -- Reductions (fixed-chunk, double partials) -------------------------------
double ReduceSum(const float* x, int64_t n);
double ReduceDot(const float* x, const float* y, int64_t n);

// -- Row-wise softmax ---------------------------------------------------------
// out and in may alias; rows are processed independently.
void SoftmaxRowsTo(const float* in, float* out, int64_t rows, int64_t cols);
void LogSoftmaxRowsTo(const float* in, float* out, int64_t rows, int64_t cols);

// -- Elementwise / per-row loop templates ------------------------------------
// y[i] = f(x[i]). Disjoint writes.
template <typename F>
void UnaryMap(const float* x, float* y, int64_t n, F f) {
  ParallelFor(n, kEwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) y[i] = f(x[i]);
  });
}

// f(i) for i in [0, n); f must only write state owned by iteration i.
template <typename F>
void ElementLoop(int64_t n, F f) {
  ParallelFor(n, kEwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) f(i);
  });
}

// f(i) for i in [0, n) where each iteration is heavyweight (a channel, an
// image plane, a batch item); partitioned one iteration per chunk.
template <typename F>
void HeavyLoop(int64_t n, F f) {
  ParallelFor(n, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) f(i);
  });
}

// f(r) for r in [0, rows); f must only write state owned by row r.
template <typename F>
void RowLoop(int64_t rows, F f) {
  ParallelFor(rows, kRowGrain, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) f(r);
  });
}

// -- Conv2d (im2col, partitioned over batch items) ---------------------------
// out must be pre-shaped to [N, Cout, Hout, Wout]; overwritten.
void Conv2dForward(const Tensor& x, const Tensor& w, const Tensor* bias,
                   int stride, int pad, Tensor* out);
// Accumulates into whichever of dx/dw/db is non-null. dw/db gradients are
// reduced from per-batch-item partials combined in ascending item order.
void Conv2dBackward(const Tensor& x, const Tensor& w, const Tensor& g,
                    int stride, int pad, Tensor* dx, Tensor* dw, Tensor* db);

}  // namespace kernels
}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_KERNELS_H_
