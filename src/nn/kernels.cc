#include "nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace deepst {
namespace nn {
namespace kernels {

void GemmAcc(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n) {
  // Cache-friendly ikj loop, partitioned over output rows. Each row's
  // accumulation order is fixed, so the partition is invisible to the result.
  ParallelFor(m, kGemmRowGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void GemmAccBT(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  ParallelFor(m, kGemmRowGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        double acc = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += static_cast<float>(acc);
      }
    }
  });
}

void GemmAccAT(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  // Output-row partition of C += A^T @ B. Per element the sum still runs
  // over kk ascending, matching the former kk-outer loop bit for bit.
  ParallelFor(m, kGemmRowGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      float* crow = c + i * n;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = a[kk * m + i];
        if (av == 0.0f) continue;
        const float* brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void AddRowBroadcast(float* out, const float* row, int64_t rows, int64_t cols,
                     float sign) {
  RowLoop(rows, [&](int64_t r) {
    float* orow = out + r * cols;
    for (int64_t c = 0; c < cols; ++c) orow[c] += sign * row[c];
  });
}

void ColSumAcc(const float* g, float* out, int64_t rows, int64_t cols,
               float sign) {
  if (rows <= 0 || cols <= 0) return;
  const int64_t chunks = NumChunks(rows, kRowGrain);
  // Fixed row chunks on both paths; per-chunk double partials combined in
  // ascending chunk order keep the result thread-count invariant.
  Backend* backend = GetBackend();
  if (backend->num_threads() <= 1 || chunks == 1) {
    std::vector<double> partial(static_cast<size_t>(cols));
    for (int64_t ck = 0; ck < chunks; ++ck) {
      std::fill(partial.begin(), partial.end(), 0.0);
      const int64_t r_end = std::min(rows, (ck + 1) * kRowGrain);
      for (int64_t r = ck * kRowGrain; r < r_end; ++r) {
        const float* grow = g + r * cols;
        for (int64_t c = 0; c < cols; ++c) partial[c] += grow[c];
      }
      for (int64_t c = 0; c < cols; ++c) {
        out[c] += sign * static_cast<float>(partial[c]);
      }
    }
    return;
  }
  std::vector<double> partials(static_cast<size_t>(chunks * cols), 0.0);
  backend->Run(chunks, [&](int64_t ck) {
    double* partial = partials.data() + ck * cols;
    const int64_t r_end = std::min(rows, (ck + 1) * kRowGrain);
    for (int64_t r = ck * kRowGrain; r < r_end; ++r) {
      const float* grow = g + r * cols;
      for (int64_t c = 0; c < cols; ++c) partial[c] += grow[c];
    }
  });
  for (int64_t ck = 0; ck < chunks; ++ck) {
    const double* partial = partials.data() + ck * cols;
    for (int64_t c = 0; c < cols; ++c) {
      out[c] += sign * static_cast<float>(partial[c]);
    }
  }
}

void AxpyAcc(float* dst, const float* src, int64_t n, float scale) {
  ParallelFor(n, kEwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] += scale * src[i];
  });
}

void AddScalarAcc(float* dst, float s, int64_t n) {
  ParallelFor(n, kEwiseGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] += s;
  });
}

double ReduceSum(const float* x, int64_t n) {
  return OrderedReduce(n, kReduceGrain, [&](int64_t begin, int64_t end) {
    double acc = 0.0;
    for (int64_t i = begin; i < end; ++i) acc += x[i];
    return acc;
  });
}

double ReduceDot(const float* x, const float* y, int64_t n) {
  return OrderedReduce(n, kReduceGrain, [&](int64_t begin, int64_t end) {
    double acc = 0.0;
    for (int64_t i = begin; i < end; ++i) acc += x[i] * y[i];
    return acc;
  });
}

void SoftmaxRowsTo(const float* in, float* out, int64_t rows, int64_t cols) {
  RowLoop(rows, [&](int64_t r) {
    const float* irow = in + r * cols;
    float* orow = out + r * cols;
    float mx = irow[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, irow[c]);
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const float e = std::exp(irow[c] - mx);
      orow[c] = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
  });
}

void LogSoftmaxRowsTo(const float* in, float* out, int64_t rows,
                      int64_t cols) {
  RowLoop(rows, [&](int64_t r) {
    const float* irow = in + r * cols;
    float* orow = out + r * cols;
    float mx = irow[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, irow[c]);
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) denom += std::exp(irow[c] - mx);
    const float log_denom = static_cast<float>(std::log(denom)) + mx;
    for (int64_t c = 0; c < cols; ++c) orow[c] = irow[c] - log_denom;
  });
}

namespace {

// Gathers the receptive fields of batch item n into col, laid out as
// [P, K] with P = h_out*w_out output positions and K = cin*kh*kw taps, so
// the conv GEMM reads both operands contiguously. Padding taps become 0,
// which a double accumulator absorbs exactly — results match the former
// bounds-checked direct loops bit for bit.
void Im2Col(const Tensor& x, int64_t n, int64_t kh, int64_t kw, int stride,
            int pad, int64_t h_out, int64_t w_out, float* col) {
  const int64_t cin = x.dim(1), h = x.dim(2), w_in = x.dim(3);
  const float* xn = x.data() + n * cin * h * w_in;
  for (int64_t oh = 0; oh < h_out; ++oh) {
    for (int64_t ow = 0; ow < w_out; ++ow) {
      float* crow = col + (oh * w_out + ow) * cin * kh * kw;
      int64_t kidx = 0;
      for (int64_t ic = 0; ic < cin; ++ic) {
        const float* xc = xn + ic * h * w_in;
        for (int64_t r = 0; r < kh; ++r) {
          const int64_t ih = oh * stride - pad + r;
          for (int64_t c = 0; c < kw; ++c, ++kidx) {
            const int64_t iw = ow * stride - pad + c;
            crow[kidx] = (ih < 0 || ih >= h || iw < 0 || iw >= w_in)
                             ? 0.0f
                             : xc[ih * w_in + iw];
          }
        }
      }
    }
  }
}

// Scatter-adds the [P, K] gradient columns of batch item n back into dx.
// Within one item the (p, k) visit order is fixed, and items own disjoint
// dx slices, so the batch partition stays deterministic.
void Col2ImAcc(const float* dcol, int64_t n, int64_t kh, int64_t kw,
               int stride, int pad, int64_t h_out, int64_t w_out, Tensor* dx) {
  const int64_t cin = dx->dim(1), h = dx->dim(2), w_in = dx->dim(3);
  float* xn = dx->data() + n * cin * h * w_in;
  for (int64_t oh = 0; oh < h_out; ++oh) {
    for (int64_t ow = 0; ow < w_out; ++ow) {
      const float* crow = dcol + (oh * w_out + ow) * cin * kh * kw;
      int64_t kidx = 0;
      for (int64_t ic = 0; ic < cin; ++ic) {
        float* xc = xn + ic * h * w_in;
        for (int64_t r = 0; r < kh; ++r) {
          const int64_t ih = oh * stride - pad + r;
          for (int64_t c = 0; c < kw; ++c, ++kidx) {
            const int64_t iw = ow * stride - pad + c;
            if (ih < 0 || ih >= h || iw < 0 || iw >= w_in) continue;
            xc[ih * w_in + iw] += crow[kidx];
          }
        }
      }
    }
  }
}

}  // namespace

void Conv2dForward(const Tensor& x, const Tensor& w, const Tensor* bias,
                   int stride, int pad, Tensor* out) {
  const int64_t batch = x.dim(0), cin = x.dim(1);
  const int64_t cout = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int64_t h_out = out->dim(2), w_out = out->dim(3);
  const int64_t K = cin * kh * kw;
  const int64_t P = h_out * w_out;
  ParallelFor(batch, 1, [&](int64_t begin, int64_t end) {
    std::vector<float> col(static_cast<size_t>(P * K));
    for (int64_t n = begin; n < end; ++n) {
      Im2Col(x, n, kh, kw, stride, pad, h_out, w_out, col.data());
      for (int64_t oc = 0; oc < cout; ++oc) {
        const float* wrow = w.data() + oc * K;
        const float bval = bias != nullptr ? (*bias)[oc] : 0.0f;
        float* orow = out->data() + (n * cout + oc) * P;
        for (int64_t p = 0; p < P; ++p) {
          const float* crow = col.data() + p * K;
          double acc = 0.0;
          for (int64_t kk = 0; kk < K; ++kk) acc += wrow[kk] * crow[kk];
          orow[p] = static_cast<float>(acc) + bval;
        }
      }
    }
  });
}

void Conv2dBackward(const Tensor& x, const Tensor& w, const Tensor& g,
                    int stride, int pad, Tensor* dx, Tensor* dw, Tensor* db) {
  const int64_t batch = x.dim(0), cin = x.dim(1);
  const int64_t cout = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int64_t h_out = g.dim(2), w_out = g.dim(3);
  const int64_t K = cin * kh * kw;
  const int64_t P = h_out * w_out;
  // dw/db per-item partials, combined below in ascending item order.
  std::vector<float> dw_part(
      dw != nullptr ? static_cast<size_t>(batch * cout * K) : 0, 0.0f);
  std::vector<double> db_part(
      db != nullptr ? static_cast<size_t>(batch * cout) : 0, 0.0);
  ParallelFor(batch, 1, [&](int64_t begin, int64_t end) {
    std::vector<float> col;
    std::vector<float> dcol;
    if (dw != nullptr) col.resize(static_cast<size_t>(P * K));
    if (dx != nullptr) dcol.resize(static_cast<size_t>(P * K));
    for (int64_t n = begin; n < end; ++n) {
      if (dw != nullptr) {
        Im2Col(x, n, kh, kw, stride, pad, h_out, w_out, col.data());
      }
      for (int64_t oc = 0; oc < cout; ++oc) {
        const float* grow = g.data() + (n * cout + oc) * P;
        if (dw != nullptr) {
          float* dwp = dw_part.data() + (n * cout + oc) * K;
          for (int64_t p = 0; p < P; ++p) {
            const float gv = grow[p];
            if (gv == 0.0f) continue;
            const float* crow = col.data() + p * K;
            for (int64_t kk = 0; kk < K; ++kk) dwp[kk] += gv * crow[kk];
          }
        }
        if (db != nullptr) {
          double acc = 0.0;
          for (int64_t p = 0; p < P; ++p) acc += grow[p];
          db_part[static_cast<size_t>(n * cout + oc)] = acc;
        }
      }
      if (dx != nullptr) {
        std::fill(dcol.begin(), dcol.end(), 0.0f);
        for (int64_t p = 0; p < P; ++p) {
          float* drow = dcol.data() + p * K;
          for (int64_t oc = 0; oc < cout; ++oc) {
            const float gv = g.data()[(n * cout + oc) * P + p];
            if (gv == 0.0f) continue;
            const float* wrow = w.data() + oc * K;
            for (int64_t kk = 0; kk < K; ++kk) drow[kk] += gv * wrow[kk];
          }
        }
        Col2ImAcc(dcol.data(), n, kh, kw, stride, pad, h_out, w_out, dx);
      }
    }
  });
  if (dw != nullptr) {
    const int64_t wsz = cout * K;
    for (int64_t n = 0; n < batch; ++n) {
      const float* dwp = dw_part.data() + n * wsz;
      float* dst = dw->data();
      for (int64_t i = 0; i < wsz; ++i) dst[i] += dwp[i];
    }
  }
  if (db != nullptr) {
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t oc = 0; oc < cout; ++oc) {
        (*db)[oc] +=
            static_cast<float>(db_part[static_cast<size_t>(n * cout + oc)]);
      }
    }
  }
}

}  // namespace kernels
}  // namespace nn
}  // namespace deepst
