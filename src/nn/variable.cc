#include "nn/variable.h"

#include <unordered_set>

namespace deepst {
namespace nn {

Tensor& Variable::grad() {
  if (grad_.numel() == 0 && value_.numel() > 0) {
    grad_ = Tensor::Zeros(value_.shape());
  }
  return grad_;
}

void Variable::ZeroGrad() {
  if (grad_.numel() > 0) grad_.Fill(0.0f);
}

void Variable::SetParents(std::vector<VarPtr> parents) {
  parents_ = std::move(parents);
  // A node requires grad if any parent does.
  for (const auto& p : parents_) {
    if (p->requires_grad()) {
      requires_grad_ = true;
      break;
    }
  }
}

VarPtr MakeVar(Tensor value, bool requires_grad) {
  return std::make_shared<Variable>(std::move(value), requires_grad);
}

VarPtr Constant(Tensor value) { return MakeVar(std::move(value), false); }

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

namespace {

// Iterative post-order DFS producing a topological order (parents after
// children in `order` means we can walk `order` backwards... here we emit
// nodes so that each node appears after all nodes that depend on it when the
// vector is traversed in reverse).
void TopoSort(Variable* root, std::vector<Variable*>* order) {
  std::unordered_set<Variable*> visited;
  // Each stack frame: (node, next parent index to visit).
  std::vector<std::pair<Variable*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents().size()) {
      Variable* parent = node->parents()[idx].get();
      ++idx;
      if (parent->requires_grad() && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const VarPtr& root) {
  DEEPST_CHECK(root != nullptr);
  if (!root->requires_grad()) return;
  std::vector<Variable*> order;
  TopoSort(root.get(), &order);
  // Seed the root gradient with ones.
  root->grad().Fill(1.0f);
  // `order` is post-order: parents appear before their consumers, so iterate
  // in reverse to process consumers first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    (*it)->RunBackward();
  }
}

}  // namespace nn
}  // namespace deepst
