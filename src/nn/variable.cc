#include "nn/variable.h"

#include <unordered_set>
#include <utility>

#include "nn/arena.h"

namespace deepst {
namespace nn {

Tensor& Variable::grad() {
  if (param_slot_ >= 0) {
    GradShard* shard = ActiveGradShard();
    if (shard != nullptr) {
      return shard->Slot(static_cast<int>(param_slot_), value_);
    }
  }
  if (grad_.numel() == 0 && value_.numel() > 0) {
    // ResetShapeLike keeps previously leased grad storage (cleared, not
    // freed, by ResetForReuse), so recycled nodes re-grow their gradient
    // without allocating.
    grad_.ResetShapeLike(value_);
    grad_.Fill(0.0f);
  }
  return grad_;
}

void Variable::ZeroGrad() {
  if (grad_.numel() > 0) grad_.Fill(0.0f);
}

void Variable::ResetForReuse(Tensor value, bool requires_grad) {
  value_ = std::move(value);
  // Empty the gradient (has_grad() -> false) but keep its shape/data
  // capacity for the next backward pass.
  static const Tensor kEmpty;
  grad_.ResetShapeLike(kEmpty);
  requires_grad_ = requires_grad;
  parents_.clear();
  backward_fn_ = nullptr;
}

void Variable::SetParents(std::vector<VarPtr> parents) {
  parents_ = std::move(parents);
  // A node requires grad if any parent does.
  for (const auto& p : parents_) {
    if (p->requires_grad()) {
      requires_grad_ = true;
      break;
    }
  }
}

VarPtr MakeVar(Tensor value, bool requires_grad) {
  AutodiffArena* arena = ActiveArena();
  if (arena != nullptr) return arena->Lease(std::move(value), requires_grad);
  return std::make_shared<Variable>(std::move(value), requires_grad);
}

VarPtr Constant(Tensor value) { return MakeVar(std::move(value), false); }

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

namespace {

// Reused traversal scratch. Arena-pooled nodes carry a dense per-arena index
// (one graph is always built inside a single arena, so the indices are
// unique within a traversal) and are tracked by a flat stamp vector; the few
// remaining heap nodes — parameters, model-owned constants, or every node on
// the legacy non-arena path — fall back to a hash set. This keeps the hot
// sharded-training traversal free of per-node hash allocations.
struct TraversalScratch {
  std::vector<std::pair<Variable*, size_t>> stack;
  std::vector<Variable*> order;
  std::vector<uint64_t> arena_stamps;
  std::unordered_set<Variable*> heap_visited;
  uint64_t traversal_id = 0;
};

thread_local TraversalScratch t_scratch;

// Marks `v` visited for the current traversal; false if it already was.
bool MarkVisited(Variable* v, TraversalScratch* s) {
  const int64_t ai = v->arena_index();
  if (ai >= 0) {
    if (s->arena_stamps.size() <= static_cast<size_t>(ai)) {
      s->arena_stamps.resize(static_cast<size_t>(ai) + 1, 0);
    }
    if (s->arena_stamps[static_cast<size_t>(ai)] == s->traversal_id) {
      return false;
    }
    s->arena_stamps[static_cast<size_t>(ai)] = s->traversal_id;
    return true;
  }
  return s->heap_visited.insert(v).second;
}

// Iterative post-order DFS producing a topological order (parents after
// children in `order` means we can walk `order` backwards... here we emit
// nodes so that each node appears after all nodes that depend on it when the
// vector is traversed in reverse).
void TopoSort(Variable* root, TraversalScratch* s) {
  ++s->traversal_id;
  s->stack.clear();
  s->order.clear();
  s->heap_visited.clear();
  // Each stack frame: (node, next parent index to visit).
  s->stack.emplace_back(root, 0);
  MarkVisited(root, s);
  while (!s->stack.empty()) {
    auto& [node, idx] = s->stack.back();
    if (idx < node->parents().size()) {
      Variable* parent = node->parents()[idx].get();
      ++idx;
      if (parent->requires_grad() && MarkVisited(parent, s)) {
        s->stack.emplace_back(parent, 0);
      }
    } else {
      s->order.push_back(node);
      s->stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const VarPtr& root) { Backward(root, 1.0f); }

void Backward(const VarPtr& root, float seed) {
  DEEPST_CHECK(root != nullptr);
  if (!root->requires_grad()) return;
  TraversalScratch* s = &t_scratch;
  TopoSort(root.get(), s);
  // Seed the root gradient.
  root->grad().Fill(seed);
  // `order` is post-order: parents appear before their consumers, so iterate
  // in reverse to process consumers first.
  for (auto it = s->order.rbegin(); it != s->order.rend(); ++it) {
    (*it)->RunBackward();
  }
}

}  // namespace nn
}  // namespace deepst
