#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <unordered_map>

namespace deepst {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0xDEE59701;

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

util::Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  WriteU32(out, kMagic);
  WriteU64(out, module.Parameters().size());
  for (const auto& p : module.Parameters()) {
    WriteU64(out, p.name.size());
    out.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    const Tensor& t = p.var->value();
    WriteU64(out, static_cast<uint64_t>(t.ndim()));
    for (int64_t d = 0; d < t.ndim(); ++d) {
      WriteU64(out, static_cast<uint64_t>(t.dim(d)));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return util::Status::IoError("bad magic in " + path);
  }
  uint64_t count = 0;
  if (!ReadU64(in, &count)) return util::Status::IoError("truncated header");

  std::unordered_map<std::string, Tensor> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len)) {
      return util::Status::IoError("truncated entry");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t ndim = 0;
    if (!ReadU64(in, &ndim)) return util::Status::IoError("truncated shape");
    std::vector<int64_t> shape(ndim);
    int64_t numel = 1;
    for (auto& d : shape) {
      uint64_t dim = 0;
      if (!ReadU64(in, &dim)) return util::Status::IoError("truncated shape");
      d = static_cast<int64_t>(dim);
      numel *= d;
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in.good()) return util::Status::IoError("truncated data for " + name);
    loaded.emplace(std::move(name), std::move(t));
  }

  for (const auto& p : module->Parameters()) {
    auto it = loaded.find(p.name);
    if (it == loaded.end()) {
      return util::Status::NotFound("parameter not in checkpoint: " + p.name);
    }
    if (!it->second.SameShape(p.var->value())) {
      return util::Status::InvalidArgument(
          "shape mismatch for " + p.name + ": module " +
          p.var->value().ShapeString() + " vs file " +
          it->second.ShapeString());
    }
    p.var->value() = it->second;
  }
  return util::Status::Ok();
}

}  // namespace nn
}  // namespace deepst
