#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/string_util.h"

namespace deepst {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0xDEE59701;

// Corruption guards: a flipped byte in a length field must be rejected
// before it can drive an allocation. Real models in this repo are a few
// hundred parameters of at most a few million elements each, so these
// bounds are generous while still capping a corrupt read at sane sizes.
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxNdim = 8;
constexpr int64_t kMaxNumel = int64_t{1} << 28;  // 256M floats = 1 GiB
constexpr uint64_t kMaxEntries = uint64_t{1} << 20;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

util::Status WriteTensor(std::ostream& out, const Tensor& t) {
  WriteU64(out, static_cast<uint64_t>(t.ndim()));
  for (int64_t d = 0; d < t.ndim(); ++d) {
    WriteU64(out, static_cast<uint64_t>(t.dim(d)));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!out.good()) return util::Status::IoError("tensor write failed");
  return util::Status::Ok();
}

util::Status ReadTensor(std::istream& in, Tensor* t) {
  uint64_t ndim = 0;
  if (!ReadU64(in, &ndim)) return util::Status::IoError("truncated shape");
  if (ndim > kMaxNdim) {
    return util::Status::IoError("corrupt tensor: ndim " +
                                 std::to_string(ndim) + " exceeds limit");
  }
  std::vector<int64_t> shape(ndim);
  int64_t numel = 1;
  for (auto& d : shape) {
    uint64_t dim = 0;
    if (!ReadU64(in, &dim)) return util::Status::IoError("truncated shape");
    if (dim == 0 || dim > static_cast<uint64_t>(kMaxNumel)) {
      return util::Status::IoError("corrupt tensor: bad dim " +
                                   std::to_string(dim));
    }
    d = static_cast<int64_t>(dim);
    if (numel > kMaxNumel / d) {
      return util::Status::IoError("corrupt tensor: element count overflow");
    }
    numel *= d;
  }
  Tensor tensor(shape);
  in.read(reinterpret_cast<char*>(tensor.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  if (!in.good()) return util::Status::IoError("truncated tensor data");
  *t = std::move(tensor);
  return util::Status::Ok();
}

util::Status WriteNamedTensors(std::ostream& out,
                               const std::vector<NamedTensor>& tensors) {
  WriteU64(out, tensors.size());
  for (const auto& [name, t] : tensors) {
    WriteU64(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    DEEPST_RETURN_IF_ERROR(WriteTensor(out, t));
  }
  if (!out.good()) return util::Status::IoError("named-tensor write failed");
  return util::Status::Ok();
}

util::StatusOr<std::vector<NamedTensor>> ReadNamedTensors(std::istream& in) {
  uint64_t count = 0;
  if (!ReadU64(in, &count)) return util::Status::IoError("truncated header");
  if (count > kMaxEntries) {
    return util::Status::IoError("corrupt header: entry count " +
                                 std::to_string(count) + " exceeds limit");
  }
  std::vector<NamedTensor> tensors;
  tensors.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len)) {
      return util::Status::IoError("truncated entry");
    }
    if (name_len > kMaxNameLen) {
      return util::Status::IoError("corrupt entry: name length " +
                                   std::to_string(name_len) +
                                   " exceeds limit");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in.good()) return util::Status::IoError("truncated name");
    Tensor t;
    util::Status s = ReadTensor(in, &t);
    if (!s.ok()) {
      return util::Status::IoError(s.message() + " for " + name);
    }
    tensors.emplace_back(std::move(name), std::move(t));
  }
  return tensors;
}

util::Status ApplyNamedTensors(Module* module,
                               const std::vector<NamedTensor>& tensors) {
  std::unordered_map<std::string, const Tensor*> by_name;
  by_name.reserve(tensors.size());
  for (const auto& [name, t] : tensors) by_name.emplace(name, &t);
  for (const auto& p : module->Parameters()) {
    auto it = by_name.find(p.name);
    if (it == by_name.end()) {
      return util::Status::NotFound("parameter not in checkpoint: " + p.name);
    }
    if (!it->second->SameShape(p.var->value())) {
      return util::Status::InvalidArgument(
          "shape mismatch for " + p.name + ": module " +
          p.var->value().ShapeString() + " vs file " +
          it->second->ShapeString());
    }
    p.var->value() = *it->second;
  }
  return util::Status::Ok();
}

std::vector<NamedTensor> SnapshotParameters(const Module& module) {
  std::vector<NamedTensor> out;
  out.reserve(module.Parameters().size());
  for (const auto& p : module.Parameters()) {
    out.emplace_back(p.name, p.var->value());
  }
  return out;
}

util::Status ApplyNamedBuffers(Module* module,
                               const std::vector<NamedTensor>& tensors) {
  if (tensors.empty()) return util::Status::Ok();
  std::unordered_map<std::string, const Tensor*> by_name;
  by_name.reserve(tensors.size());
  for (const auto& [name, t] : tensors) by_name.emplace(name, &t);
  for (const auto& b : module->Buffers()) {
    auto it = by_name.find(b.name);
    if (it == by_name.end()) {
      return util::Status::NotFound("buffer not in checkpoint: " + b.name);
    }
    if (!it->second->SameShape(*b.tensor)) {
      return util::Status::InvalidArgument(
          "shape mismatch for buffer " + b.name + ": module " +
          b.tensor->ShapeString() + " vs file " + it->second->ShapeString());
    }
    *b.tensor = *it->second;
  }
  return util::Status::Ok();
}

std::vector<NamedTensor> SnapshotBuffers(const Module& module) {
  std::vector<NamedTensor> out;
  out.reserve(module.Buffers().size());
  for (const auto& b : module.Buffers()) {
    out.emplace_back(b.name, *b.tensor);
  }
  return out;
}

util::Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  WriteU32(out, kMagic);
  DEEPST_RETURN_IF_ERROR(WriteNamedTensors(out, SnapshotParameters(module)));
  if (!out.good()) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return util::Status::IoError("bad magic in " + path);
  }
  auto tensors = ReadNamedTensors(in);
  if (!tensors.ok()) return tensors.status();
  return ApplyNamedTensors(module, tensors.value());
}

util::StatusOr<std::string> DescribeParamsFile(const std::string& path,
                                               bool* healthy) {
  if (healthy != nullptr) *healthy = true;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::NotFound("cannot open " + path);
  uint32_t magic = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return util::Status::InvalidArgument("not a parameter file: " + path);
  }
  std::string out = "model parameters  " + path + "\n";
  auto tensors = ReadNamedTensors(in);
  if (!tensors.ok()) {
    if (healthy != nullptr) *healthy = false;
    out += "  payload: " + tensors.status().ToString() + "\n";
    return out;
  }
  int64_t elements = 0;
  // GEMV-packable weights: the matrices the inference fast path repacks at
  // config.infer_precision (gru w_ih/w_hh and the alpha head; biases and
  // the gathered embedding table stay float/double).
  int64_t gemv_elements = 0;
  int64_t gemv_rows = 0;
  auto ends_with = [](const std::string& s, const char* suffix) {
    const size_t n = std::char_traits<char>::length(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
  };
  for (const auto& [name, t] : tensors.value()) {
    elements += t.numel();
    const bool gemv = t.ndim() == 2 &&
                      (ends_with(name, "/w_ih") || ends_with(name, "/w_hh") ||
                       name == "alpha/weight");
    if (gemv) {
      gemv_elements += t.numel();
      gemv_rows += t.dim(0);
    }
  }
  out += util::StrFormat(
      "  tensors: %zu (%lld elements, %.1f MiB)\n"
      "  storage precision: float32 (packed per-run at --precision)\n"
      "  crc: none (parameter files rely on shape/name validation)\n"
      "  zero-copy: no (streaming format)\n",
      tensors.value().size(), static_cast<long long>(elements),
      static_cast<double>(elements) * sizeof(float) / (1024.0 * 1024.0));
  if (gemv_elements > 0) {
    const double kib = 1.0 / 1024.0;
    out += util::StrFormat(
        "  gemv-packable: %lld elements; packed double %.0f KiB, "
        "bf16 %.0f KiB, int8 %.0f KiB\n",
        static_cast<long long>(gemv_elements),
        static_cast<double>(gemv_elements) * 8.0 * kib,
        static_cast<double>(gemv_elements) * 2.0 * kib,
        // int8 carries a float scale + int32 zero-point per row.
        (static_cast<double>(gemv_elements) +
         static_cast<double>(gemv_rows) * 8.0) *
            kib);
  }
  return out;
}

}  // namespace nn
}  // namespace deepst
