#ifndef DEEPST_NN_TENSOR_H_
#define DEEPST_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace deepst {
namespace nn {

// While an instance is alive on this thread, Tensor::Uniform / Gaussian
// allocate zero-filled storage instead of drawing from the rng (and do not
// advance the rng stream). Checkpoint/parameter loading constructs models
// under this guard: every parameter is about to be overwritten by the saved
// values, so drawing O(params) random numbers first -- the dominant cost of
// constructing a model over a 100k-segment city -- is pure waste. Only use
// it when *all* randomly-initialized parameters are subsequently replaced.
class ScopedDeferInit {
 public:
  ScopedDeferInit();
  ~ScopedDeferInit();
  ScopedDeferInit(const ScopedDeferInit&) = delete;
  ScopedDeferInit& operator=(const ScopedDeferInit&) = delete;

  // True when any instance is alive on the current thread.
  static bool active();
};

// Dense row-major float32 n-dimensional array. This is the storage type of
// the from-scratch autodiff engine that replaces PyTorch in this
// reproduction (see DESIGN.md, substitution table). It is deliberately
// simple: contiguous storage, no views, value semantics (copy copies data).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);

  // Storage lifecycle routes through nn::detail::AcquireBuffer /
  // ReleaseBuffer (see nn/arena.h): inside an active AutodiffArena scope the
  // float storage is leased from and recycled into the arena's BufferPool,
  // so training steps stop allocating once the pool is warm; outside a scope
  // these are ordinary vector operations.
  Tensor(const Tensor& other);
  // Copy-assign reuses this tensor's own capacity when it fits (vector
  // copy-assignment semantics), so it needs no pool hook.
  Tensor& operator=(const Tensor& other) = default;
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept;  // recycles replaced storage
  ~Tensor();

  // -- Factories ------------------------------------------------------------
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape,
                           const std::vector<float>& values);
  // I.i.d. uniform in [lo, hi).
  static Tensor Uniform(std::vector<int64_t> shape, float lo, float hi,
                        util::Rng* rng);
  // I.i.d. normal(mean, stddev).
  static Tensor Gaussian(std::vector<int64_t> shape, float mean, float stddev,
                         util::Rng* rng);

  // -- Shape ---------------------------------------------------------------
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t i) const;
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string ShapeString() const;

  // Returns a copy with a new shape of identical element count.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  // Re-shapes this tensor in place to an arbitrary new shape, reusing the
  // existing storage capacity (no allocation when the new element count fits
  // in capacity). Contents are unspecified afterwards. Returns true when the
  // storage had to grow — scratch arenas use this to verify they reach a
  // zero-allocation steady state.
  bool ResetShape(std::vector<int64_t> new_shape);

  // ResetShape to `like`'s shape without constructing a shape vector at the
  // call site: the shape is copy-assigned, so a reused tensor re-shapes with
  // zero allocations. Same return contract as ResetShape.
  bool ResetShapeLike(const Tensor& like);

  // -- Element access --------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    DEEPST_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    DEEPST_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  // 2-D accessor (row, col).
  float& at(int64_t r, int64_t c) {
    DEEPST_DCHECK(ndim() == 2);
    DEEPST_DCHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at(int64_t r, int64_t c) const {
    return const_cast<Tensor*>(this)->at(r, c);
  }
  // 4-D accessor (n, c, h, w) for image-like tensors.
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w);
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return const_cast<Tensor*>(this)->at4(n, c, h, w);
  }

  // -- In-place helpers -------------------------------------------------------
  void Fill(float value);
  void AddInPlace(const Tensor& other);  // this += other (same shape)
  void ScaleInPlace(float s);

  // -- Reductions / stats (double accumulation) -------------------------------
  double Sum() const;
  double Mean() const;
  float MaxAbs() const;
  bool AllFinite() const;

  // Index of the max element (ties -> first).
  int64_t ArgMax() const;

  std::string ToString(int64_t max_elems = 32) const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

// Row-wise softmax of a [B, C] tensor (pure tensor helper, used by no-grad
// prediction paths).
Tensor SoftmaxRows(const Tensor& logits);

// Row-wise log-softmax of a [B, C] tensor.
Tensor LogSoftmaxRows(const Tensor& logits);

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_TENSOR_H_
