#ifndef DEEPST_NN_CONV_LAYERS_H_
#define DEEPST_NN_CONV_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/conv_ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace deepst {
namespace nn {

// 2-D convolution layer with learned kernel + bias.
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int kernel,
              int stride, int pad, util::Rng* rng);

  VarPtr Forward(const VarPtr& x) const;

 private:
  int stride_;
  int pad_;
  VarPtr w_;
  VarPtr b_;
};

// Batch normalization layer over channels of NCHW input.
class BatchNorm2dLayer : public Module {
 public:
  explicit BatchNorm2dLayer(int64_t channels, util::Rng* rng);

  VarPtr Forward(const VarPtr& x, bool training);

  ops::BatchNormState* state() { return &state_; }

 private:
  VarPtr gamma_;
  VarPtr beta_;
  ops::BatchNormState state_;
};

// The paper's convolution block: Conv2d -> BatchNorm2d -> LeakyReLU
// (Section V-A, "each convolution block consists of three layers").
class ConvBlock : public Module {
 public:
  ConvBlock(int64_t in_channels, int64_t out_channels, int kernel, int stride,
            int pad, util::Rng* rng);

  VarPtr Forward(const VarPtr& x, bool training);

 private:
  std::unique_ptr<Conv2dLayer> conv_;
  std::unique_ptr<BatchNorm2dLayer> bn_;
};

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_CONV_LAYERS_H_
