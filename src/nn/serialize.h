#ifndef DEEPST_NN_SERIALIZE_H_
#define DEEPST_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace deepst {
namespace nn {

// Binary parameter checkpointing. The format is a simple
// magic/count/[name, shape, data]* container; loading matches by name and
// requires identical shapes. This lets benches train a model once and reuse
// it, and lets examples ship tiny pretrained checkpoints. The same
// named-tensor blob is embedded (twice: live + best-epoch params) inside the
// training-checkpoint format built on top (see core/checkpoint.h).
//
// Readers are hardened against corrupt or truncated input: every length and
// dimension field is bounded before any allocation, so a flipped byte yields
// a clean util::Status error, never a multi-gigabyte allocation, an integer
// wrap, or a crash.

// A parameter snapshot detached from any module.
using NamedTensor = std::pair<std::string, Tensor>;

// -- Stream-level building blocks -------------------------------------------

// Writes one tensor (ndim, dims, float payload) to `out`.
util::Status WriteTensor(std::ostream& out, const Tensor& t);

// Reads one tensor written by WriteTensor. Rejects ndim > 8, non-positive or
// overflow-prone dims, and element counts above ~2^28 before allocating.
util::Status ReadTensor(std::istream& in, Tensor* t);

// Writes count + [name, tensor]* to `out`.
util::Status WriteNamedTensors(std::ostream& out,
                               const std::vector<NamedTensor>& tensors);

// Reads a blob written by WriteNamedTensors. Bounds the entry count and each
// name length; any truncation or out-of-bounds field is a clean error.
util::StatusOr<std::vector<NamedTensor>> ReadNamedTensors(std::istream& in);

// Copies `tensors` into `module` by name. Every module parameter must be
// present with a matching shape.
util::Status ApplyNamedTensors(Module* module,
                               const std::vector<NamedTensor>& tensors);

// Copies every parameter of `module` out into a detached snapshot.
std::vector<NamedTensor> SnapshotParameters(const Module& module);

// Copies `tensors` into the module's registered buffers by name (batch-norm
// running stats and the like). Every buffer must be present with a matching
// shape — except that an empty `tensors` list is a no-op, so checkpoints
// from buffer-less models stay loadable.
util::Status ApplyNamedBuffers(Module* module,
                               const std::vector<NamedTensor>& tensors);

// Copies every registered buffer of `module` out into a detached snapshot.
std::vector<NamedTensor> SnapshotBuffers(const Module& module);

// -- File-level API ----------------------------------------------------------

// Saves every parameter of `module` to `path`.
util::Status SaveParameters(const Module& module, const std::string& path);

// Loads parameters by name into `module`. All parameters present in the
// module must be found in the file with a matching shape.
util::Status LoadParameters(Module* module, const std::string& path);

// Human-readable report for `deepst_cli inspect`: tensor and element counts
// of a SaveParameters file. InvalidArgument on a non-parameter-file magic.
// `healthy` (optional) is set false when the payload fails to parse.
util::StatusOr<std::string> DescribeParamsFile(const std::string& path,
                                               bool* healthy = nullptr);

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_SERIALIZE_H_
