#ifndef DEEPST_NN_SERIALIZE_H_
#define DEEPST_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace deepst {
namespace nn {

// Binary parameter checkpointing. The format is a simple
// magic/count/[name, shape, data]* container; loading matches by name and
// requires identical shapes. This lets benches train a model once and reuse
// it, and lets examples ship tiny pretrained checkpoints.

// Saves every parameter of `module` to `path`.
util::Status SaveParameters(const Module& module, const std::string& path);

// Loads parameters by name into `module`. All parameters present in the
// module must be found in the file with a matching shape.
util::Status LoadParameters(Module* module, const std::string& path);

}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_SERIALIZE_H_
