#include "nn/conv_ops.h"

#include <cmath>

namespace deepst {
namespace nn {
namespace ops {
namespace {

VarPtr MakeNode(Tensor value, std::vector<VarPtr> parents,
                std::function<void(Variable*)> backward) {
  VarPtr out = MakeVar(std::move(value));
  out->SetParents(std::move(parents));
  if (out->requires_grad()) out->SetBackwardFn(std::move(backward));
  return out;
}

}  // namespace

VarPtr Conv2d(const VarPtr& x, const VarPtr& w, const VarPtr& b, int stride,
              int pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  DEEPST_CHECK_EQ(xv.ndim(), 4);
  DEEPST_CHECK_EQ(wv.ndim(), 4);
  DEEPST_CHECK_EQ(xv.dim(1), wv.dim(1));
  DEEPST_CHECK_GE(stride, 1);
  DEEPST_CHECK_GE(pad, 0);
  const int64_t batch = xv.dim(0), cin = xv.dim(1), h = xv.dim(2),
                w_in = xv.dim(3);
  const int64_t cout = wv.dim(0), kh = wv.dim(2), kw = wv.dim(3);
  const int64_t h_out = (h + 2 * pad - kh) / stride + 1;
  const int64_t w_out = (w_in + 2 * pad - kw) / stride + 1;
  DEEPST_CHECK_GT(h_out, 0);
  DEEPST_CHECK_GT(w_out, 0);

  Tensor out = Tensor::Zeros({batch, cout, h_out, w_out});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < cout; ++oc) {
      for (int64_t oh = 0; oh < h_out; ++oh) {
        for (int64_t ow = 0; ow < w_out; ++ow) {
          double acc = 0.0;
          for (int64_t ic = 0; ic < cin; ++ic) {
            for (int64_t r = 0; r < kh; ++r) {
              const int64_t ih = oh * stride - pad + r;
              if (ih < 0 || ih >= h) continue;
              for (int64_t c = 0; c < kw; ++c) {
                const int64_t iw = ow * stride - pad + c;
                if (iw < 0 || iw >= w_in) continue;
                acc += xv.at4(n, ic, ih, iw) * wv.at4(oc, ic, r, c);
              }
            }
          }
          out.at4(n, oc, oh, ow) = static_cast<float>(acc);
        }
      }
    }
  }
  std::vector<VarPtr> parents = {x, w};
  if (b != nullptr) {
    const Tensor& bv = b->value();
    DEEPST_CHECK_EQ(bv.numel(), cout);
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t oc = 0; oc < cout; ++oc) {
        for (int64_t oh = 0; oh < h_out; ++oh) {
          for (int64_t ow = 0; ow < w_out; ++ow) {
            out.at4(n, oc, oh, ow) += bv[oc];
          }
        }
      }
    }
    parents.push_back(b);
  }
  const bool has_bias = b != nullptr;
  return MakeNode(
      std::move(out), std::move(parents),
      [=](Variable* node) {
        const Tensor& g = node->grad();
        const auto& ps = node->parents();
        const Tensor& xv = ps[0]->value();
        const Tensor& wv = ps[1]->value();
        const bool need_dx = ps[0]->requires_grad();
        const bool need_dw = ps[1]->requires_grad();
        Tensor* dx = need_dx ? &ps[0]->grad() : nullptr;
        Tensor* dw = need_dw ? &ps[1]->grad() : nullptr;
        for (int64_t n = 0; n < batch; ++n) {
          for (int64_t oc = 0; oc < cout; ++oc) {
            for (int64_t oh = 0; oh < h_out; ++oh) {
              for (int64_t ow = 0; ow < w_out; ++ow) {
                const float go = g.at4(n, oc, oh, ow);
                if (go == 0.0f) continue;
                for (int64_t ic = 0; ic < cin; ++ic) {
                  for (int64_t r = 0; r < kh; ++r) {
                    const int64_t ih = oh * stride - pad + r;
                    if (ih < 0 || ih >= h) continue;
                    for (int64_t c = 0; c < kw; ++c) {
                      const int64_t iw = ow * stride - pad + c;
                      if (iw < 0 || iw >= w_in) continue;
                      if (need_dx) {
                        dx->at4(n, ic, ih, iw) += go * wv.at4(oc, ic, r, c);
                      }
                      if (need_dw) {
                        dw->at4(oc, ic, r, c) += go * xv.at4(n, ic, ih, iw);
                      }
                    }
                  }
                }
              }
            }
          }
        }
        if (has_bias && ps[2]->requires_grad()) {
          Tensor& db = ps[2]->grad();
          for (int64_t n = 0; n < batch; ++n) {
            for (int64_t oc = 0; oc < cout; ++oc) {
              for (int64_t oh = 0; oh < h_out; ++oh) {
                for (int64_t ow = 0; ow < w_out; ++ow) {
                  db[oc] += g.at4(n, oc, oh, ow);
                }
              }
            }
          }
        }
      });
}

VarPtr BatchNorm2d(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                   BatchNormState* state, bool training) {
  const Tensor& xv = x->value();
  DEEPST_CHECK_EQ(xv.ndim(), 4);
  const int64_t batch = xv.dim(0), ch = xv.dim(1), h = xv.dim(2),
                w = xv.dim(3);
  DEEPST_CHECK_EQ(gamma->value().numel(), ch);
  DEEPST_CHECK_EQ(beta->value().numel(), ch);
  DEEPST_CHECK_EQ(state->running_mean.numel(), ch);
  const int64_t count = batch * h * w;
  DEEPST_CHECK_GT(count, 0);
  const float eps = state->eps;

  Tensor mean({ch}), var({ch});
  if (training) {
    for (int64_t c = 0; c < ch; ++c) {
      double m = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        for (int64_t i = 0; i < h; ++i) {
          for (int64_t j = 0; j < w; ++j) m += xv.at4(n, c, i, j);
        }
      }
      m /= static_cast<double>(count);
      double v = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        for (int64_t i = 0; i < h; ++i) {
          for (int64_t j = 0; j < w; ++j) {
            const double d = xv.at4(n, c, i, j) - m;
            v += d * d;
          }
        }
      }
      v /= static_cast<double>(count);
      mean[c] = static_cast<float>(m);
      var[c] = static_cast<float>(v);
      state->running_mean[c] = (1.0f - state->momentum) *
                                   state->running_mean[c] +
                               state->momentum * mean[c];
      state->running_var[c] =
          (1.0f - state->momentum) * state->running_var[c] +
          state->momentum * var[c];
    }
  } else {
    mean = state->running_mean;
    var = state->running_var;
  }

  // xhat = (x - mean)/sqrt(var+eps); y = gamma*xhat + beta.
  Tensor xhat(xv.shape());
  Tensor out(xv.shape());
  const Tensor& gv = gamma->value();
  const Tensor& bv = beta->value();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < ch; ++c) {
      const float inv_std = 1.0f / std::sqrt(var[c] + eps);
      for (int64_t i = 0; i < h; ++i) {
        for (int64_t j = 0; j < w; ++j) {
          const float xh = (xv.at4(n, c, i, j) - mean[c]) * inv_std;
          xhat.at4(n, c, i, j) = xh;
          out.at4(n, c, i, j) = gv[c] * xh + bv[c];
        }
      }
    }
  }
  return MakeNode(
      std::move(out), {x, gamma, beta},
      [=](Variable* node) {
        const Tensor& g = node->grad();
        const auto& ps = node->parents();
        const Tensor& gv = ps[1]->value();
        // d_beta, d_gamma.
        if (ps[1]->requires_grad() || ps[2]->requires_grad()) {
          for (int64_t c = 0; c < ch; ++c) {
            double dg = 0.0, db = 0.0;
            for (int64_t n = 0; n < batch; ++n) {
              for (int64_t i = 0; i < h; ++i) {
                for (int64_t j = 0; j < w; ++j) {
                  dg += g.at4(n, c, i, j) * xhat.at4(n, c, i, j);
                  db += g.at4(n, c, i, j);
                }
              }
            }
            if (ps[1]->requires_grad()) {
              ps[1]->grad()[c] += static_cast<float>(dg);
            }
            if (ps[2]->requires_grad()) {
              ps[2]->grad()[c] += static_cast<float>(db);
            }
          }
        }
        if (!ps[0]->requires_grad()) return;
        Tensor& dx = ps[0]->grad();
        if (training) {
          // Full batch-norm backward (batch statistics participate).
          for (int64_t c = 0; c < ch; ++c) {
            const float inv_std = 1.0f / std::sqrt(var[c] + eps);
            double sum_dy = 0.0, sum_dy_xhat = 0.0;
            for (int64_t n = 0; n < batch; ++n) {
              for (int64_t i = 0; i < h; ++i) {
                for (int64_t j = 0; j < w; ++j) {
                  sum_dy += g.at4(n, c, i, j);
                  sum_dy_xhat += g.at4(n, c, i, j) * xhat.at4(n, c, i, j);
                }
              }
            }
            const float m = static_cast<float>(count);
            for (int64_t n = 0; n < batch; ++n) {
              for (int64_t i = 0; i < h; ++i) {
                for (int64_t j = 0; j < w; ++j) {
                  const float dy = g.at4(n, c, i, j);
                  dx.at4(n, c, i, j) +=
                      gv[c] * inv_std / m *
                      (m * dy - static_cast<float>(sum_dy) -
                       xhat.at4(n, c, i, j) *
                           static_cast<float>(sum_dy_xhat));
                }
              }
            }
          }
        } else {
          for (int64_t c = 0; c < ch; ++c) {
            const float inv_std = 1.0f / std::sqrt(var[c] + eps);
            for (int64_t n = 0; n < batch; ++n) {
              for (int64_t i = 0; i < h; ++i) {
                for (int64_t j = 0; j < w; ++j) {
                  dx.at4(n, c, i, j) += g.at4(n, c, i, j) * gv[c] * inv_std;
                }
              }
            }
          }
        }
      });
}

VarPtr GlobalAvgPool2d(const VarPtr& x) {
  const Tensor& xv = x->value();
  DEEPST_CHECK_EQ(xv.ndim(), 4);
  const int64_t batch = xv.dim(0), ch = xv.dim(1), h = xv.dim(2),
                w = xv.dim(3);
  const float inv = 1.0f / static_cast<float>(h * w);
  Tensor out({batch, ch});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < ch; ++c) {
      double acc = 0.0;
      for (int64_t i = 0; i < h; ++i) {
        for (int64_t j = 0; j < w; ++j) acc += xv.at4(n, c, i, j);
      }
      out.at(n, c) = static_cast<float>(acc) * inv;
    }
  }
  return MakeNode(std::move(out), {x}, [batch, ch, h, w, inv](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    Tensor& dx = p->grad();
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t c = 0; c < ch; ++c) {
        const float gv = g.at(n, c) * inv;
        for (int64_t i = 0; i < h; ++i) {
          for (int64_t j = 0; j < w; ++j) dx.at4(n, c, i, j) += gv;
        }
      }
    }
  });
}

VarPtr AvgPool2d(const VarPtr& x, int kernel) {
  const Tensor& xv = x->value();
  DEEPST_CHECK_EQ(xv.ndim(), 4);
  DEEPST_CHECK_GE(kernel, 1);
  const int64_t batch = xv.dim(0), ch = xv.dim(1), h = xv.dim(2),
                w = xv.dim(3);
  const int64_t h_out = (h + kernel - 1) / kernel;
  const int64_t w_out = (w + kernel - 1) / kernel;
  Tensor out({batch, ch, h_out, w_out});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < ch; ++c) {
      for (int64_t oh = 0; oh < h_out; ++oh) {
        for (int64_t ow = 0; ow < w_out; ++ow) {
          double acc = 0.0;
          int cnt = 0;
          for (int64_t i = oh * kernel; i < std::min<int64_t>(h, (oh + 1) * kernel);
               ++i) {
            for (int64_t j = ow * kernel;
                 j < std::min<int64_t>(w, (ow + 1) * kernel); ++j) {
              acc += xv.at4(n, c, i, j);
              ++cnt;
            }
          }
          out.at4(n, c, oh, ow) = static_cast<float>(acc / cnt);
        }
      }
    }
  }
  return MakeNode(
      std::move(out), {x}, [batch, ch, h, w, h_out, w_out, kernel](
                               Variable* node) {
        auto& p = node->parents()[0];
        if (!p->requires_grad()) return;
        const Tensor& g = node->grad();
        Tensor& dx = p->grad();
        for (int64_t n = 0; n < batch; ++n) {
          for (int64_t c = 0; c < ch; ++c) {
            for (int64_t oh = 0; oh < h_out; ++oh) {
              for (int64_t ow = 0; ow < w_out; ++ow) {
                const int64_t i_end = std::min<int64_t>(h, (oh + 1) * kernel);
                const int64_t j_end = std::min<int64_t>(w, (ow + 1) * kernel);
                const int cnt = static_cast<int>((i_end - oh * kernel) *
                                                 (j_end - ow * kernel));
                const float gv = g.at4(n, c, oh, ow) / cnt;
                for (int64_t i = oh * kernel; i < i_end; ++i) {
                  for (int64_t j = ow * kernel; j < j_end; ++j) {
                    dx.at4(n, c, i, j) += gv;
                  }
                }
              }
            }
          }
        }
      });
}

}  // namespace ops
}  // namespace nn
}  // namespace deepst
