#include "nn/conv_ops.h"

#include <cmath>

#include "nn/kernels.h"

namespace deepst {
namespace nn {
namespace ops {
namespace {

VarPtr MakeNode(Tensor value, std::vector<VarPtr> parents,
                std::function<void(Variable*)> backward) {
  VarPtr out = MakeVar(std::move(value));
  if (!GradEnabled()) return out;  // inference: plain value node
  out->SetParents(std::move(parents));
  if (out->requires_grad()) out->SetBackwardFn(std::move(backward));
  return out;
}

thread_local BnStatsLog* t_bn_log = nullptr;

}  // namespace

void BnStatsLog::Record(BatchNormState* state, const Tensor& mean,
                        const Tensor& var) {
  if (used_ == entries_.size()) entries_.emplace_back();
  Entry& e = entries_[used_++];
  e.state = state;
  e.mean.assign(mean.data(), mean.data() + mean.numel());
  e.var.assign(var.data(), var.data() + var.numel());
}

void BnStatsLog::Apply() const {
  for (size_t i = 0; i < used_; ++i) {
    const Entry& e = entries_[i];
    BatchNormState* state = e.state;
    const float momentum = state->momentum;
    for (size_t c = 0; c < e.mean.size(); ++c) {
      const int64_t ci = static_cast<int64_t>(c);
      state->running_mean[ci] = (1.0f - momentum) * state->running_mean[ci] +
                                momentum * e.mean[c];
      state->running_var[ci] = (1.0f - momentum) * state->running_var[ci] +
                               momentum * e.var[c];
    }
  }
}

ScopedBnStatsLog::ScopedBnStatsLog(BnStatsLog* log) : prev_(t_bn_log) {
  t_bn_log = log;
}

ScopedBnStatsLog::~ScopedBnStatsLog() { t_bn_log = prev_; }

BnStatsLog* ActiveBnStatsLog() { return t_bn_log; }

VarPtr Conv2d(const VarPtr& x, const VarPtr& w, const VarPtr& b, int stride,
              int pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  DEEPST_CHECK_EQ(xv.ndim(), 4);
  DEEPST_CHECK_EQ(wv.ndim(), 4);
  DEEPST_CHECK_EQ(xv.dim(1), wv.dim(1));
  DEEPST_CHECK_GE(stride, 1);
  DEEPST_CHECK_GE(pad, 0);
  const int64_t batch = xv.dim(0), h = xv.dim(2), w_in = xv.dim(3);
  const int64_t cout = wv.dim(0), kh = wv.dim(2), kw = wv.dim(3);
  const int64_t h_out = (h + 2 * pad - kh) / stride + 1;
  const int64_t w_out = (w_in + 2 * pad - kw) / stride + 1;
  DEEPST_CHECK_GT(h_out, 0);
  DEEPST_CHECK_GT(w_out, 0);

  Tensor out = Tensor::Zeros({batch, cout, h_out, w_out});
  std::vector<VarPtr> parents = {x, w};
  const Tensor* bias = nullptr;
  if (b != nullptr) {
    DEEPST_CHECK_EQ(b->value().numel(), cout);
    bias = &b->value();
    parents.push_back(b);
  }
  kernels::Conv2dForward(xv, wv, bias, stride, pad, &out);
  const bool has_bias = b != nullptr;
  return MakeNode(
      std::move(out), std::move(parents), [=](Variable* node) {
        const Tensor& g = node->grad();
        const auto& ps = node->parents();
        const Tensor& xv = ps[0]->value();
        const Tensor& wv = ps[1]->value();
        Tensor* dx = ps[0]->requires_grad() ? &ps[0]->grad() : nullptr;
        Tensor* dw = ps[1]->requires_grad() ? &ps[1]->grad() : nullptr;
        Tensor* db = has_bias && ps[2]->requires_grad() ? &ps[2]->grad()
                                                        : nullptr;
        kernels::Conv2dBackward(xv, wv, g, stride, pad, dx, dw, db);
      });
}

VarPtr BatchNorm2d(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                   BatchNormState* state, bool training) {
  const Tensor& xv = x->value();
  DEEPST_CHECK_EQ(xv.ndim(), 4);
  const int64_t batch = xv.dim(0), ch = xv.dim(1), h = xv.dim(2),
                w = xv.dim(3);
  DEEPST_CHECK_EQ(gamma->value().numel(), ch);
  DEEPST_CHECK_EQ(beta->value().numel(), ch);
  DEEPST_CHECK_EQ(state->running_mean.numel(), ch);
  const int64_t count = batch * h * w;
  DEEPST_CHECK_GT(count, 0);
  const float eps = state->eps;
  const int64_t plane = h * w;

  // All loops below partition over channels: each channel owns its stats,
  // running-stat slots, and strided x/out planes, so the partition is
  // race-free and deterministic.
  Tensor mean({ch}), var({ch});
  if (training) {
    kernels::HeavyLoop(ch, [&](int64_t c) {
      double m = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        const float* plane_p = xv.data() + (n * ch + c) * plane;
        for (int64_t i = 0; i < plane; ++i) m += plane_p[i];
      }
      m /= static_cast<double>(count);
      double v = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        const float* plane_p = xv.data() + (n * ch + c) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          const double d = plane_p[i] - m;
          v += d * d;
        }
      }
      v /= static_cast<double>(count);
      mean[c] = static_cast<float>(m);
      var[c] = static_cast<float>(v);
    });
    // Running-stat EMA update. The running stats never enter the
    // training-mode math above/below, so the update can be deferred: a
    // sharded trainer logs it (and replays the logs in shard order after
    // the join); otherwise it applies in place, same values either way.
    if (BnStatsLog* log = ActiveBnStatsLog()) {
      log->Record(state, mean, var);
    } else {
      const float momentum = state->momentum;
      for (int64_t c = 0; c < ch; ++c) {
        state->running_mean[c] = (1.0f - momentum) * state->running_mean[c] +
                                 momentum * mean[c];
        state->running_var[c] = (1.0f - momentum) * state->running_var[c] +
                                momentum * var[c];
      }
    }
  } else {
    mean = state->running_mean;
    var = state->running_var;
  }

  // xhat = (x - mean)/sqrt(var+eps); y = gamma*xhat + beta.
  Tensor xhat(xv.shape());
  Tensor out(xv.shape());
  const Tensor& gv = gamma->value();
  const Tensor& bv = beta->value();
  kernels::HeavyLoop(ch, [&](int64_t c) {
    const float inv_std = 1.0f / std::sqrt(var[c] + eps);
    for (int64_t n = 0; n < batch; ++n) {
      const float* xp = xv.data() + (n * ch + c) * plane;
      float* xhp = xhat.data() + (n * ch + c) * plane;
      float* op = out.data() + (n * ch + c) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        const float xh = (xp[i] - mean[c]) * inv_std;
        xhp[i] = xh;
        op[i] = gv[c] * xh + bv[c];
      }
    }
  });
  return MakeNode(
      std::move(out), {x, gamma, beta}, [=](Variable* node) {
        const Tensor& g = node->grad();
        const auto& ps = node->parents();
        const Tensor& gv = ps[1]->value();
        // d_beta, d_gamma.
        if (ps[1]->requires_grad() || ps[2]->requires_grad()) {
          kernels::HeavyLoop(ch, [&](int64_t c) {
            double dg = 0.0, db = 0.0;
            for (int64_t n = 0; n < batch; ++n) {
              const float* gp = g.data() + (n * ch + c) * plane;
              const float* xhp = xhat.data() + (n * ch + c) * plane;
              for (int64_t i = 0; i < plane; ++i) {
                dg += gp[i] * xhp[i];
                db += gp[i];
              }
            }
            if (ps[1]->requires_grad()) {
              ps[1]->grad()[c] += static_cast<float>(dg);
            }
            if (ps[2]->requires_grad()) {
              ps[2]->grad()[c] += static_cast<float>(db);
            }
          });
        }
        if (!ps[0]->requires_grad()) return;
        Tensor& dx = ps[0]->grad();
        if (training) {
          // Full batch-norm backward (batch statistics participate).
          kernels::HeavyLoop(ch, [&](int64_t c) {
            const float inv_std = 1.0f / std::sqrt(var[c] + eps);
            double sum_dy = 0.0, sum_dy_xhat = 0.0;
            for (int64_t n = 0; n < batch; ++n) {
              const float* gp = g.data() + (n * ch + c) * plane;
              const float* xhp = xhat.data() + (n * ch + c) * plane;
              for (int64_t i = 0; i < plane; ++i) {
                sum_dy += gp[i];
                sum_dy_xhat += gp[i] * xhp[i];
              }
            }
            const float m = static_cast<float>(count);
            for (int64_t n = 0; n < batch; ++n) {
              const float* gp = g.data() + (n * ch + c) * plane;
              const float* xhp = xhat.data() + (n * ch + c) * plane;
              float* dxp = dx.data() + (n * ch + c) * plane;
              for (int64_t i = 0; i < plane; ++i) {
                dxp[i] += gv[c] * inv_std / m *
                          (m * gp[i] - static_cast<float>(sum_dy) -
                           xhp[i] * static_cast<float>(sum_dy_xhat));
              }
            }
          });
        } else {
          kernels::HeavyLoop(ch, [&](int64_t c) {
            const float inv_std = 1.0f / std::sqrt(var[c] + eps);
            for (int64_t n = 0; n < batch; ++n) {
              const float* gp = g.data() + (n * ch + c) * plane;
              float* dxp = dx.data() + (n * ch + c) * plane;
              for (int64_t i = 0; i < plane; ++i) {
                dxp[i] += gp[i] * gv[c] * inv_std;
              }
            }
          });
        }
      });
}

VarPtr GlobalAvgPool2d(const VarPtr& x) {
  const Tensor& xv = x->value();
  DEEPST_CHECK_EQ(xv.ndim(), 4);
  const int64_t batch = xv.dim(0), ch = xv.dim(1), h = xv.dim(2),
                w = xv.dim(3);
  const int64_t plane = h * w;
  const float inv = 1.0f / static_cast<float>(plane);
  Tensor out({batch, ch});
  {
    const float* xp = xv.data();
    float* op = out.data();
    kernels::HeavyLoop(batch * ch, [xp, op, plane, inv](int64_t nc) {
      const float* pp = xp + nc * plane;
      double acc = 0.0;
      for (int64_t i = 0; i < plane; ++i) acc += pp[i];
      op[nc] = static_cast<float>(acc) * inv;
    });
  }
  return MakeNode(std::move(out), {x}, [batch, ch, plane, inv](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    const float* gp = g.data();
    float* dxp = p->grad().data();
    kernels::HeavyLoop(batch * ch, [gp, dxp, plane, inv](int64_t nc) {
      const float gv = gp[nc] * inv;
      float* pp = dxp + nc * plane;
      for (int64_t i = 0; i < plane; ++i) pp[i] += gv;
    });
  });
}

VarPtr AvgPool2d(const VarPtr& x, int kernel) {
  const Tensor& xv = x->value();
  DEEPST_CHECK_EQ(xv.ndim(), 4);
  DEEPST_CHECK_GE(kernel, 1);
  const int64_t batch = xv.dim(0), ch = xv.dim(1), h = xv.dim(2),
                w = xv.dim(3);
  const int64_t h_out = (h + kernel - 1) / kernel;
  const int64_t w_out = (w + kernel - 1) / kernel;
  Tensor out({batch, ch, h_out, w_out});
  {
    const float* xp = xv.data();
    float* op = out.data();
    kernels::HeavyLoop(batch * ch, [=](int64_t nc) {
      const float* pp = xp + nc * h * w;
      float* orow = op + nc * h_out * w_out;
      for (int64_t oh = 0; oh < h_out; ++oh) {
        for (int64_t ow = 0; ow < w_out; ++ow) {
          double acc = 0.0;
          int cnt = 0;
          const int64_t i_end = std::min<int64_t>(h, (oh + 1) * kernel);
          const int64_t j_end = std::min<int64_t>(w, (ow + 1) * kernel);
          for (int64_t i = oh * kernel; i < i_end; ++i) {
            for (int64_t j = ow * kernel; j < j_end; ++j) {
              acc += pp[i * w + j];
              ++cnt;
            }
          }
          orow[oh * w_out + ow] = static_cast<float>(acc / cnt);
        }
      }
    });
  }
  return MakeNode(std::move(out), {x}, [batch, ch, h, w, h_out, w_out,
                                        kernel](Variable* node) {
    auto& p = node->parents()[0];
    if (!p->requires_grad()) return;
    const Tensor& g = node->grad();
    const float* gp = g.data();
    float* dxp = p->grad().data();
    kernels::HeavyLoop(batch * ch, [=](int64_t nc) {
      const float* grow = gp + nc * h_out * w_out;
      float* pp = dxp + nc * h * w;
      for (int64_t oh = 0; oh < h_out; ++oh) {
        for (int64_t ow = 0; ow < w_out; ++ow) {
          const int64_t i_end = std::min<int64_t>(h, (oh + 1) * kernel);
          const int64_t j_end = std::min<int64_t>(w, (ow + 1) * kernel);
          const int cnt = static_cast<int>((i_end - oh * kernel) *
                                           (j_end - ow * kernel));
          const float gv = grow[oh * w_out + ow] / cnt;
          for (int64_t i = oh * kernel; i < i_end; ++i) {
            for (int64_t j = ow * kernel; j < j_end; ++j) {
              pp[i * w + j] += gv;
            }
          }
        }
      }
    });
  });
}

}  // namespace ops
}  // namespace nn
}  // namespace deepst
