#ifndef DEEPST_NN_INFER_PRECISION_H_
#define DEEPST_NN_INFER_PRECISION_H_

#include <string>

namespace deepst {
namespace nn {
namespace infer {

// Storage precision of the packed weight matrices consumed by the GEMV
// fast path (nn/infer/forward.h). Weights are always float32 on disk and in
// the autodiff graph; the inference engine re-packs them once per model:
//
//   kDouble -- exact widening to double (the PR 3 baseline; bitwise
//              reference for the memoization layer).
//   kBf16   -- bfloat16 (top 16 bits of the float, round-to-nearest-even):
//              half the weight bytes, ~3 decimal digits of mantissa.
//   kInt8   -- 8-bit affine quantization with a per-row scale/zero-point:
//              quarter the weight bytes; per-row ranges keep the step size
//              proportional to each output neuron's weight spread.
//
// Activations, biases and accumulation stay double/float in every mode, so
// reduced precision only perturbs the weight operand. bf16/int8 results are
// NOT bitwise comparable to double -- they are gated on eval-metric parity
// (top-1 next-segment agreement, CE delta) instead; see docs/inference.md.
enum class Precision {
  kDouble = 0,
  kBf16 = 1,
  kInt8 = 2,
};

inline const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kDouble:
      return "double";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  return "double";
}

// Parses "double" | "bf16" | "int8"; returns false (leaving *out untouched)
// on anything else.
inline bool ParsePrecision(const std::string& name, Precision* out) {
  if (name == "double") {
    *out = Precision::kDouble;
    return true;
  }
  if (name == "bf16") {
    *out = Precision::kBf16;
    return true;
  }
  if (name == "int8") {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

// Bytes per packed weight element (excluding the per-row scale/zero-point
// sidecar of int8); used by inspect/serve to report packing metadata.
inline int PrecisionWeightBytes(Precision p) {
  switch (p) {
    case Precision::kDouble:
      return 8;
    case Precision::kBf16:
      return 2;
    case Precision::kInt8:
      return 1;
  }
  return 8;
}

}  // namespace infer
}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_INFER_PRECISION_H_
