#include "nn/infer/memo.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace deepst {
namespace nn {
namespace infer {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

MemoKey MixKey(const MemoKey& k, uint64_t v) {
  MemoKey r;
  r.a = Mix64(k.a + 0x9e3779b97f4a7c15ull * (v + 1));
  r.b = Mix64(k.b ^ (0xc2b2ae3d27d4eb4full * (v + 2)));
  return r;
}

MemoKey HashBytesKey(const void* data, size_t len, const MemoKey& seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  // Two FNV-1a streams with decorrelated seeds, finalized through Mix64.
  uint64_t h1 = 0xcbf29ce484222325ull ^ seed.a;
  uint64_t h2 = 0xaf63bd4c8601b7dfull ^ seed.b;
  for (size_t i = 0; i < len; ++i) {
    h1 = (h1 ^ p[i]) * 0x100000001b3ull;
    h2 = (h2 + p[i] + 1) * 0x100000001b3ull;
  }
  MemoKey r;
  r.a = Mix64(h1 ^ len);
  r.b = Mix64(h2 + (static_cast<uint64_t>(len) << 32));
  return r;
}

TransitionMemoCache::TransitionMemoCache(int64_t logits_len, int num_layers,
                                         int64_t hidden_dim, int64_t capacity)
    : logits_len_(logits_len),
      num_layers_(num_layers),
      hidden_dim_(hidden_dim),
      entry_floats_(logits_len + static_cast<int64_t>(num_layers) * hidden_dim),
      sets_(std::max<int64_t>(1, capacity / (kShards * kWays))),
      shards_(new Shard[kShards]) {
  DEEPST_CHECK(logits_len > 0 && num_layers > 0 && hidden_dim > 0);
  for (int s = 0; s < kShards; ++s) {
    shards_[s].ways.resize(static_cast<size_t>(sets_ * kWays));
    shards_[s].data.resize(static_cast<size_t>(sets_ * kWays * entry_floats_));
  }
}

void TransitionMemoCache::Invalidate() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void TransitionMemoCache::CopyOut(const Shard& shard, int64_t way_index,
                                  float* logits_out,
                                  float* const* states_out) const {
  const float* src = shard.data.data() + way_index * entry_floats_;
  std::memcpy(logits_out, src, static_cast<size_t>(logits_len_) *
                                   sizeof(float));
  src += logits_len_;
  for (int l = 0; l < num_layers_; ++l, src += hidden_dim_) {
    std::memcpy(states_out[l], src,
                static_cast<size_t>(hidden_dim_) * sizeof(float));
  }
}

void TransitionMemoCache::CopyIn(Shard* shard, int64_t way_index,
                                 const float* logits,
                                 const float* const* states) {
  float* dst = shard->data.data() + way_index * entry_floats_;
  std::memcpy(dst, logits, static_cast<size_t>(logits_len_) * sizeof(float));
  dst += logits_len_;
  for (int l = 0; l < num_layers_; ++l, dst += hidden_dim_) {
    std::memcpy(dst, states[l],
                static_cast<size_t>(hidden_dim_) * sizeof(float));
  }
}

bool TransitionMemoCache::Lookup(const MemoKey& key, uint64_t epoch,
                                 float* logits_out,
                                 float* const* states_out) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardOf(key);
  const int64_t base = SetOf(key) * kWays;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (int w = 0; w < kWays; ++w) {
      Way& way = shard.ways[static_cast<size_t>(base + w)];
      if (way.epoch == epoch && way.key == key) {
        way.tick = ++shard.tick;
        CopyOut(shard, base + w, logits_out, states_out);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TransitionMemoCache::Insert(const MemoKey& key, uint64_t epoch,
                                 const float* logits,
                                 const float* const* states) {
  Shard& shard = ShardOf(key);
  const int64_t base = SetOf(key) * kWays;
  std::lock_guard<std::mutex> lock(shard.mu);
  // Reuse the way already holding this key, else an empty way, else evict
  // the set's LRU tick.
  int64_t victim = -1;
  for (int w = 0; w < kWays && victim < 0; ++w) {
    const Way& way = shard.ways[static_cast<size_t>(base + w)];
    if (way.epoch != 0 && way.key == key) victim = base + w;
  }
  for (int w = 0; w < kWays && victim < 0; ++w) {
    if (shard.ways[static_cast<size_t>(base + w)].epoch == 0) {
      victim = base + w;
    }
  }
  if (victim < 0) {
    victim = base;
    for (int w = 1; w < kWays; ++w) {
      if (shard.ways[static_cast<size_t>(base + w)].tick <
          shard.ways[static_cast<size_t>(victim)].tick) {
        victim = base + w;
      }
    }
  }
  Way& way = shard.ways[static_cast<size_t>(victim)];
  way.key = key;
  way.epoch = epoch;
  way.tick = ++shard.tick;
  CopyIn(&shard, victim, logits, states);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

MemoStats TransitionMemoCache::stats() const {
  MemoStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.capacity = sets_ * kWays * kShards;
  return s;
}

}  // namespace infer
}  // namespace nn
}  // namespace deepst
