#ifndef DEEPST_NN_INFER_FORWARD_H_
#define DEEPST_NN_INFER_FORWARD_H_

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace deepst {
namespace nn {
namespace infer {

// Graph-free forward kernels for the inference fast path. Unlike the ops in
// nn/ops.h these never construct autodiff Variables: they read raw weight
// tensors (via the layer accessors of nn/layers.h) and write into
// caller-provided scratch tensors, so a generation loop performs zero heap
// allocation at steady state.
//
// The GEMV kernel works on double-precision inputs: weights are converted
// once per session (they are fixed at inference time) and the small
// activation rows per step. A float*float product is exactly representable
// in double, so converting up front loses nothing and removes every
// conversion from the inner loop, which then vectorizes to pure double
// multiply-adds (8 fixed lanes, dispatched to the widest available vector
// ISA at runtime; every ISA computes the identical correctly-rounded
// result).
//
// Determinism contract (docs/parallelism.md): every kernel partitions work
// with chunk boundaries that depend only on the problem size, and each
// output element is accumulated in a fixed order — results are bitwise
// identical for every backend and thread count. The 8-lane accumulation
// deviates from the strictly sequential reference GEMM at the ~1e-7 level;
// parity tests bound the end-to-end deviation at 1e-5.

// Work grain: outputs (dot products) per chunk.
inline constexpr int64_t kDotGrain = 32;

// dst[i] = double(src[i]); exact for every float.
void ToDouble(const float* src, double* dst, int64_t n);

// out[i, j] = sum_kk x[i*ldx + kk] * w[j*ldw + kk] + (bias ? bias[j] : 0)
//             + (bias2 ? bias2[j] : 0)
// for i in [0, m), j in [0, n), kk in [0, k). `ldx`/`ldw` are the row
// strides of x and w (>= k), so callers can multiply against a column slice
// of a [Out, In] weight matrix without materializing it. Overwrites out.
// The optional second bias folds a per-query context term (e.g. the
// destination logit bias) into the same pass.
void LinearForward(const double* x, int64_t ldx, const double* w, int64_t ldw,
                   const float* bias, const float* bias2, float* out,
                   int64_t m, int64_t k, int64_t n);

// Row-mapped bias variant for cross-query batches: output row i adds the
// bias row `bias_row[i]` of a [num_queries, n] bias block (and likewise for
// bias2) instead of one shared row. Per output element the arithmetic is
// identical to LinearForward — double-precision dot, one float cast, float
// bias adds in the same order — so a batch that interleaves rows of several
// queries is bitwise identical, row for row, to running each query's rows
// through LinearForward with its own bias row. This is what lets the
// serving scheduler coalesce beam steps and ScoreRoutes calls from
// different clients into one padded batch without perturbing any result.
void LinearForwardRowBias(const double* x, int64_t ldx, const double* w,
                          int64_t ldw, const float* bias, const float* bias2,
                          const int* bias_row, float* out, int64_t m,
                          int64_t k, int64_t n);

// Fused GRU gate update (PyTorch gate layout, matching nn::GruCell::Step):
//   r = sigmoid(gi[:, 0:H]  + gh[:, 0:H])
//   z = sigmoid(gi[:, H:2H] + gh[:, H:2H])
//   n = tanh  (gi[:, 2H:3H] + r * gh[:, 2H:3H])
//   h_out = (1 - z) * n + z * h_prev
// gi/gh are [B, 3H] pre-activation batches, h_prev/h_out [B, H]; h_out may
// not alias gi/gh but may alias h_prev.
void GruGates(const Tensor& gi, const Tensor& gh, const Tensor& h_prev,
              Tensor* h_out);

// Per-layer GRU weights, pre-converted to double for the GEMV kernel (the
// biases stay float; they are added after the accumulation). Layer 0
// supports the split-input optimization: the GRU input is
// [token_embedding, context] where context is constant per query, so the
// context's input-to-hidden product (+ b_ih) is precomputed once per query
// and passed as the layer-0 bias.
struct GruCellView {
  std::vector<double> w_ih;  // [3H, In] row-major
  std::vector<double> w_hh;  // [3H, H]
  const Tensor* b_ih;        // [3H]
  const Tensor* b_hh;        // [3H]
  int64_t input_dim;
  int64_t hidden_dim;
};

struct GruStackView {
  std::vector<GruCellView> cells;
  int64_t hidden_dim = 0;

  static GruStackView Of(const StackedGru& gru);
  int num_layers() const { return static_cast<int>(cells.size()); }
};

// Scratch-buffer arena: a fixed set of slots whose tensors are re-shaped in
// place per use, reusing storage capacity. After warmup (the first call at
// the largest batch/shape), Acquire never allocates; grow_count() exposes
// the number of storage growths so tests can assert the steady state.
class Arena {
 public:
  explicit Arena(int num_slots) : slots_(static_cast<size_t>(num_slots)) {}

  // Returns the slot's tensor re-shaped to `shape` (contents unspecified).
  Tensor* Acquire(int slot, std::vector<int64_t> shape) {
    Tensor* t = &slots_[static_cast<size_t>(slot)];
    if (t->ResetShape(std::move(shape))) ++grow_count_;
    return t;
  }
  // Slot tensor with whatever shape it last had (for state that persists
  // across steps).
  Tensor* Get(int slot) { return &slots_[static_cast<size_t>(slot)]; }

  int64_t grow_count() const { return grow_count_; }

 private:
  std::vector<Tensor> slots_;
  int64_t grow_count_ = 0;
};

}  // namespace infer
}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_INFER_FORWARD_H_
