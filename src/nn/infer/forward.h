#ifndef DEEPST_NN_INFER_FORWARD_H_
#define DEEPST_NN_INFER_FORWARD_H_

#include <cstdint>
#include <vector>

#include "nn/infer/precision.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace deepst {
namespace nn {
namespace infer {

// Graph-free forward kernels for the inference fast path. Unlike the ops in
// nn/ops.h these never construct autodiff Variables: they read raw weight
// tensors (via the layer accessors of nn/layers.h) and write into
// caller-provided scratch tensors, so a generation loop performs zero heap
// allocation at steady state.
//
// The GEMV kernel works on double-precision inputs: weights are converted
// once per session (they are fixed at inference time) and the small
// activation rows per step. A float*float product is exactly representable
// in double, so converting up front loses nothing and removes every
// conversion from the inner loop, which then vectorizes to pure double
// multiply-adds (8 fixed lanes, dispatched to the widest available vector
// ISA at runtime; every ISA computes the identical correctly-rounded
// result).
//
// Determinism contract (docs/parallelism.md): every kernel partitions work
// with chunk boundaries that depend only on the problem size, and each
// output element is accumulated in a fixed order — results are bitwise
// identical for every backend and thread count. The 8-lane accumulation
// deviates from the strictly sequential reference GEMM at the ~1e-7 level;
// parity tests bound the end-to-end deviation at 1e-5.

// Work grain: outputs (dot products) per chunk.
inline constexpr int64_t kDotGrain = 32;

// Register-blocked GEMM micro-tile shape: kGemmMr activation rows by
// kGemmNr output rows per tile. Thread partitioning for the blocked path
// runs over whole bands of kGemmMr activation rows, so a micro-tile is
// never split across chunks and the per-element accumulation order (which
// is what the determinism contract fixes) is identical to the chunk path.
inline constexpr int64_t kGemmMr = 4;
inline constexpr int64_t kGemmNr = 2;

// dst[i] = double(src[i]); exact for every float.
void ToDouble(const float* src, double* dst, int64_t n);

// out[i, j] = sum_kk x[i*ldx + kk] * w[j*ldw + kk] + (bias ? bias[j] : 0)
//             + (bias2 ? bias2[j] : 0)
// for i in [0, m), j in [0, n), kk in [0, k). `ldx`/`ldw` are the row
// strides of x and w (>= k), so callers can multiply against a column slice
// of a [Out, In] weight matrix without materializing it. Overwrites out.
// The optional second bias folds a per-query context term (e.g. the
// destination logit bias) into the same pass.
void LinearForward(const double* x, int64_t ldx, const double* w, int64_t ldw,
                   const float* bias, const float* bias2, float* out,
                   int64_t m, int64_t k, int64_t n);

// Row-mapped bias variant for cross-query batches: output row i adds the
// bias row `bias_row[i]` of a [num_queries, n] bias block (and likewise for
// bias2) instead of one shared row. Per output element the arithmetic is
// identical to LinearForward — double-precision dot, one float cast, float
// bias adds in the same order — so a batch that interleaves rows of several
// queries is bitwise identical, row for row, to running each query's rows
// through LinearForward with its own bias row. This is what lets the
// serving scheduler coalesce beam steps and ScoreRoutes calls from
// different clients into one padded batch without perturbing any result.
void LinearForwardRowBias(const double* x, int64_t ldx, const double* w,
                          int64_t ldw, const float* bias, const float* bias2,
                          const int* bias_row, float* out, int64_t m,
                          int64_t k, int64_t n);

// A weight matrix packed once for the GEMV fast path, in one of the
// precisions of nn/infer/precision.h. Packing reads a [rows, cols] block of
// a float source with row stride `ldw` (>= cols), so callers can pack a
// column slice — e.g. the embedding columns of the layer-0 GRU input weight
// — without materializing it.
//
//   kDouble: exact widening; GemvForward over a kDouble matrix is the same
//            arithmetic as LinearForward (bitwise identical).
//   kBf16:   round-to-nearest-even truncation to the top 16 float bits;
//            decoded to float lanes inside the kernel.
//   kInt8:   per-row affine quantization q = clamp(round(w/s) + z, -128, 127)
//            with s covering the row's [min, max] range; the kernel
//            reconstructs s * (sum_k x_k q_k - z * sum_k x_k) so the
//            zero-point costs one activation-row sum, not a dequant per tap.
//
// The reduced precisions accumulate in float over a source-fixed 16-lane
// order (the operands carry at most 8 mantissa bits, so accumulator
// rounding is far below the quantization error; the double path is the
// bitwise-exact one). Activation rows are capped at 1024 columns for the
// reduced precisions (stack-staged float conversion); every model here is
// well under that.
struct PackedMatrix {
  Precision precision = Precision::kDouble;
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<double> d;     // kDouble: [rows, cols]
  std::vector<uint16_t> h;   // kBf16:   [rows, cols] bfloat16 bit patterns
  std::vector<int8_t> q;     // kInt8:   [rows, cols]
  std::vector<float> scale;  // kInt8:   [rows]
  std::vector<int32_t> zero;  // kInt8:  [rows]

  // K-major panel-packed sidecar for the blocked GEMM path (built by
  // BuildPanels, empty after a bare Pack). Rows are grouped into panels of
  // kGemmNr; within a panel the full vector blocks of the K dimension are
  // interleaved row-by-row, so the micro-kernel streams one contiguous
  // panel instead of kGemmNr strided rows:
  //   panel[p][b][r][lane] = element (p*kGemmNr + r, b*block + lane)
  // with block = 8 doubles (kDouble) or 16 elements (kBf16/kInt8), matching
  // the kernels' vector widths. Only full panels and full K blocks are
  // packed; row/K tails go through the retained row-major arrays, and the
  // int8 scale/zero sidecar stays per-row (shared with the chunk path).
  std::vector<double> pd;
  std::vector<uint16_t> ph;
  std::vector<int8_t> pq;

  static PackedMatrix Pack(const float* w, int64_t rows, int64_t cols,
                           int64_t ldw, Precision precision);
  // Builds the panel sidecar above; idempotent. Worth calling whenever the
  // matrix will see batched (m > 1) GEMVs — GemvForward routes through the
  // blocked kernels exactly when panels are present and m > 1.
  void BuildPanels();
  bool has_panels() const {
    return !pd.empty() || !ph.empty() || !pq.empty();
  }
  // Vector-block width of the K dimension for this precision (8 doubles or
  // 16 reduced-precision elements).
  int64_t PanelBlock() const {
    return precision == Precision::kDouble ? 8 : 16;
  }
  // Dequantized value of element (r, c) — the value the kernel multiplies
  // against; exact round-trip check for tests and reference GEMVs.
  double Dequant(int64_t r, int64_t c) const;
  // Packed weight bytes including the int8 scale/zero-point sidecar
  // (row-major arrays only; the panel sidecar is reported separately).
  size_t PackedBytes() const;
  // Bytes held by the K-major panel sidecar (0 until BuildPanels).
  size_t PanelBytes() const;
  bool empty() const { return rows == 0; }
};

// GEMV against a packed matrix:
//   out[i, j] = dot(x[i, :], dequant(w[j, :])) + (bias ? bias[j] : 0)
//             + (bias2 ? bias2[j] : 0)
// Same contract as LinearForward with w.rows == n, w.cols == k; for a
// kDouble matrix the result is bitwise identical to LinearForward. All
// precisions keep the kernels' determinism contract: row-local, fixed-order
// accumulation, bitwise identical across ISA clones / thread counts / batch
// compositions.
//
// When `m > 1` and the matrix carries a panel sidecar (BuildPanels), the
// call routes through register-blocked kGemmMr x kGemmNr GEMM micro-kernels
// that amortize each streamed weight panel across kGemmMr activation rows.
// Blocking reorders work only *across* output elements, never within one:
// each element still accumulates in the chunk kernels' exact lane order
// (8-lane pairwise double for kDouble, source-fixed 16-lane float for
// bf16/int8), so the blocked path is bitwise identical to the chunk path
// for every precision — it is purely a bandwidth optimization.
void GemvForward(const double* x, int64_t ldx, const PackedMatrix& w,
                 const float* bias, const float* bias2, float* out, int64_t m,
                 int64_t n);

// Row-mapped bias variant (see LinearForwardRowBias).
void GemvForwardRowBias(const double* x, int64_t ldx, const PackedMatrix& w,
                        const float* bias, const float* bias2,
                        const int* bias_row, float* out, int64_t m, int64_t n);

// Fused GRU gate update (PyTorch gate layout, matching nn::GruCell::Step):
//   r = sigmoid(gi[:, 0:H]  + gh[:, 0:H])
//   z = sigmoid(gi[:, H:2H] + gh[:, H:2H])
//   n = tanh  (gi[:, 2H:3H] + r * gh[:, 2H:3H])
//   h_out = (1 - z) * n + z * h_prev
// gi/gh are [B, 3H] pre-activation batches, h_prev/h_out [B, H]; h_out may
// not alias gi/gh but may alias h_prev.
void GruGates(const Tensor& gi, const Tensor& gh, const Tensor& h_prev,
              Tensor* h_out);

// Per-layer GRU weights, packed once for the GEMV kernel (the biases stay
// float; they are added after the accumulation). Layer 0 supports the
// split-input optimization: the GRU input is [token_embedding, context]
// where context is constant per query, so w_ih holds only the per-step
// embedding columns (packed at the session precision) while the context
// columns stay exact doubles in w_ih_ctx — their product (+ b_ih) is folded
// once per query into the layer-0 bias, where a quantization error would be
// amplified across every step.
struct GruCellView {
  PackedMatrix w_ih;             // [3H, emb_dim] (layer 0) or [3H, H]
  PackedMatrix w_hh;             // [3H, H]
  std::vector<double> w_ih_ctx;  // layer 0 only: [3H, ctx_dim] row-major
  const Tensor* b_ih;            // [3H]
  const Tensor* b_hh;            // [3H]
  int64_t input_dim;
  int64_t hidden_dim;
};

struct GruStackView {
  std::vector<GruCellView> cells;
  int64_t hidden_dim = 0;

  // `emb_dim` is the layer-0 embedding-column count (the context columns
  // input_dim - emb_dim stay double, see GruCellView).
  static GruStackView Of(const StackedGru& gru, int64_t emb_dim,
                         Precision precision);
  int num_layers() const { return static_cast<int>(cells.size()); }
};

// Scratch-buffer arena: a fixed set of slots whose tensors are re-shaped in
// place per use, reusing storage capacity. After warmup (the first call at
// the largest batch/shape), Acquire never allocates; grow_count() exposes
// the number of storage growths so tests can assert the steady state.
class Arena {
 public:
  explicit Arena(int num_slots) : slots_(static_cast<size_t>(num_slots)) {}

  // Returns the slot's tensor re-shaped to `shape` (contents unspecified).
  Tensor* Acquire(int slot, std::vector<int64_t> shape) {
    Tensor* t = &slots_[static_cast<size_t>(slot)];
    if (t->ResetShape(std::move(shape))) ++grow_count_;
    return t;
  }
  // Slot tensor with whatever shape it last had (for state that persists
  // across steps).
  Tensor* Get(int slot) { return &slots_[static_cast<size_t>(slot)]; }

  int64_t grow_count() const { return grow_count_; }

 private:
  std::vector<Tensor> slots_;
  int64_t grow_count_ = 0;
};

}  // namespace infer
}  // namespace nn
}  // namespace deepst

#endif  // DEEPST_NN_INFER_FORWARD_H_
