#include "nn/infer/forward.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/backend.h"
#include "nn/kernels.h"

// Runtime ISA dispatch for the GEMV kernel: the 8-lane double loop is plain
// IEEE arithmetic with a source-fixed accumulation order, so every clone
// computes bitwise-identical results and the dispatch only affects speed.
// Disabled under sanitizers (ifunc resolvers run before their runtimes
// initialize) and off x86-64 ELF targets.
#if defined(__GNUC__) && defined(__x86_64__) && defined(__ELF__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define DEEPST_INFER_CLONES \
  __attribute__((target_clones("avx512f", "avx2,fma", "default")))
#else
#define DEEPST_INFER_CLONES
#endif

namespace deepst {
namespace nn {
namespace infer {
namespace {

typedef double Vec8 __attribute__((vector_size(64)));
typedef float VecF8x32 __attribute__((vector_size(32)));
// 16-lane float types for the reduced-precision kernels: same 64-byte
// register budget as Vec8, twice the elements per op.
typedef float VecF16 __attribute__((vector_size(64)));
typedef uint16_t VecH16 __attribute__((vector_size(32)));
typedef uint32_t VecU16 __attribute__((vector_size(64)));
typedef int8_t VecQ16 __attribute__((vector_size(16)));
typedef int16_t VecW16 __attribute__((vector_size(32)));
typedef int32_t VecI16 __attribute__((vector_size(64)));

// bfloat16 <-> float: the top 16 bits of the float pattern, packed with
// round-to-nearest-even and decoded by a plain 16-bit shift (exact).
inline uint16_t PackBf16(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  u += 0x7fffu + ((u >> 16) & 1u);
  return static_cast<uint16_t>(u >> 16);
}

inline float UnpackBf16(uint16_t h) {
  const uint32_t u = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// One output element: an 8-lane double dot over k, lanes combined pairwise
// in a fixed order, plus the optional biases. Inlined into each ISA clone
// of LinearChunk so the lane arithmetic picks up the clone's vector width.
inline float DotBias(const double* xrow, const double* wrow, int64_t k,
                     const float* bias, const float* bias2, int64_t j) {
  Vec8 acc = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    Vec8 xv, wv;
    std::memcpy(&xv, xrow + kk, sizeof(xv));
    std::memcpy(&wv, wrow + kk, sizeof(wv));
    acc += xv * wv;
  }
  double tail = 0.0;
  for (; kk < k; ++kk) tail += xrow[kk] * wrow[kk];
  const double sum = (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                      ((acc[4] + acc[5]) + (acc[6] + acc[7]))) +
                     tail;
  float v = static_cast<float>(sum);
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// One contiguous run [begin, end) of the flat row-major output; (i, j) are
// tracked incrementally to keep integer divisions out of the loop.
DEEPST_INFER_CLONES
void LinearChunk(const double* x, int64_t ldx, const double* w, int64_t ldw,
                 const float* bias, const float* bias2, float* out, int64_t k,
                 int64_t n, int64_t begin, int64_t end) {
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    out[e] = DotBias(x + i * ldx, w + j * ldw, k, bias, bias2, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

// Row-mapped bias counterpart of LinearChunk: the bias rows live in a
// [num_queries, n] block and `bias_row[i]` picks the row for output row i.
// Reuses DotBias with per-row-offset pointers, so each element's arithmetic
// is exactly LinearChunk's.
DEEPST_INFER_CLONES
void LinearChunkRowBias(const double* x, int64_t ldx, const double* w,
                        int64_t ldw, const float* bias, const float* bias2,
                        const int* bias_row, float* out, int64_t k, int64_t n,
                        int64_t begin, int64_t end) {
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const int64_t off = static_cast<int64_t>(bias_row[i]) * n;
    out[e] = DotBias(x + i * ldx, w + j * ldw, k,
                     bias != nullptr ? bias + off : nullptr,
                     bias2 != nullptr ? bias2 + off : nullptr, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

// The reduced-precision kernels accumulate in float, not double: the
// operands carry at most bf16 (8-bit mantissa) or int8 information, so a
// 24-bit float accumulator over a source-fixed 16-lane order keeps the
// rounding noise orders of magnitude below the quantization error itself
// (the accuracy-parity gate in tools/check_perf.sh bounds the end-to-end
// effect). 16 float lanes fill the same 64-byte registers as the double
// kernel's 8 double lanes with twice the elements per op, which is what
// pays for the weight decode and lets the packed kernels keep up with (or
// beat) the double kernel while touching 4-8x less weight memory.
//
// Each chunk converts the activation row double -> float once (exact
// rounding) into a stack buffer and reuses it across that row's outputs.
// Rows are capped at kMaxFloatK columns (checked; every model here is far
// under). Both passes are row-local with a source-fixed order, so batch
// composition and chunk boundaries stay invisible.
inline constexpr int64_t kMaxFloatK = 1024;

inline float LaneSumF(const VecF8x32& acc) {
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

inline float LaneSumF16(const VecF16& a) {
  return (((a[0] + a[1]) + (a[2] + a[3])) +
          ((a[4] + a[5]) + (a[6] + a[7]))) +
         (((a[8] + a[9]) + (a[10] + a[11])) +
          ((a[12] + a[13]) + (a[14] + a[15])));
}

// dst[i] = float(src[i]); returns the fixed 8-lane float sum of dst (the
// int8 kernel's zero-point term, free in the conversion pass).
inline float ToFloatRowSum(const double* src, float* dst, int64_t k) {
  VecF8x32 xs = {0, 0, 0, 0, 0, 0, 0, 0};
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    Vec8 xv;
    std::memcpy(&xv, src + kk, sizeof(xv));
    const VecF8x32 fv = __builtin_convertvector(xv, VecF8x32);
    std::memcpy(dst + kk, &fv, sizeof(fv));
    xs += fv;
  }
  float tail = 0.0f;
  for (; kk < k; ++kk) {
    dst[kk] = static_cast<float>(src[kk]);
    tail += dst[kk];
  }
  return LaneSumF(xs) + tail;
}

// bf16 dot: weights widen to float lanes in-register (u16 -> u32<<16,
// bit-cast); fixed 16-lane float accumulation.
inline float DotBiasBf16(const float* xrow, const uint16_t* wrow, int64_t k,
                         const float* bias, const float* bias2, int64_t j) {
  VecF16 acc = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  int64_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    VecF16 xv;
    VecH16 hv;
    std::memcpy(&xv, xrow + kk, sizeof(xv));
    std::memcpy(&hv, wrow + kk, sizeof(hv));
    const VecU16 bits = __builtin_convertvector(hv, VecU16) << 16;
    VecF16 fv;
    std::memcpy(&fv, &bits, sizeof(fv));
    acc += xv * fv;
  }
  float tail = 0.0f;
  for (; kk < k; ++kk) tail += xrow[kk] * UnpackBf16(wrow[kk]);
  float v = LaneSumF16(acc) + tail;
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// int8 dot: the affine dequant s*(q - z) factors out of the accumulation,
//   dot = s * (sum_k x_k q_k  -  z * sum_k x_k),
// so the inner loop runs on raw int8 lanes (widened to float) with no
// per-tap dequant; `xsum` (the activation sum, independent of the output
// row) is computed once per activation row by the caller. The combine runs
// in double because z*xsum can be ~2^7 times the dot itself.
inline float DotBiasI8(const float* xrow, float xsum, const int8_t* qrow,
                       int64_t k, float scale, int32_t zero, const float* bias,
                       const float* bias2, int64_t j) {
  VecF16 acc = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  int64_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    VecF16 xv;
    VecQ16 qv;
    std::memcpy(&xv, xrow + kk, sizeof(xv));
    std::memcpy(&qv, qrow + kk, sizeof(qv));
    // Stepwise widen (i8 -> i16 -> i32 -> f32): each hop maps to one
    // sign-extend / convert instruction; a direct i8 -> i32 conversion
    // gets scalarized byte-by-byte by GCC.
    const VecW16 wv = __builtin_convertvector(qv, VecW16);
    acc += xv * __builtin_convertvector(__builtin_convertvector(wv, VecI16),
                                        VecF16);
  }
  float tacc = 0.0f;
  for (; kk < k; ++kk) tacc += xrow[kk] * static_cast<float>(qrow[kk]);
  const double qsum = static_cast<double>(LaneSumF16(acc) + tacc);
  const double sum = static_cast<double>(scale) *
                     (qsum - static_cast<double>(zero) *
                                 static_cast<double>(xsum));
  float v = static_cast<float>(sum);
  if (bias != nullptr) v += bias[j];
  if (bias2 != nullptr) v += bias2[j];
  return v;
}

// Per-chunk activation-row staging for the float kernels: re-converts only
// when the output row index advances (outputs are row-major, so each row
// converts once per chunk).
struct FloatRow {
  float xf[kMaxFloatK];
  float xsum = 0.0f;
  int64_t row = -1;

  inline const float* Refresh(const double* x, int64_t ldx, int64_t k,
                              int64_t i) {
    if (i != row) {
      xsum = ToFloatRowSum(x + i * ldx, xf, k);
      row = i;
    }
    return xf;
  }
};

// Packed-precision counterparts of LinearChunk / LinearChunkRowBias: same
// flat [begin, end) partition and incremental (i, j) bookkeeping, different
// weight decode. Cloned per ISA like the double kernels.
DEEPST_INFER_CLONES
void GemvChunkBf16(const double* x, int64_t ldx, const uint16_t* w,
                   const float* bias, const float* bias2, float* out,
                   int64_t k, int64_t n, int64_t begin, int64_t end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  FloatRow fr;
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    out[e] = DotBiasBf16(fr.Refresh(x, ldx, k, i), w + j * k, k, bias, bias2,
                         j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

DEEPST_INFER_CLONES
void GemvChunkBf16RowBias(const double* x, int64_t ldx, const uint16_t* w,
                          const float* bias, const float* bias2,
                          const int* bias_row, float* out, int64_t k,
                          int64_t n, int64_t begin, int64_t end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  FloatRow fr;
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const int64_t off = static_cast<int64_t>(bias_row[i]) * n;
    out[e] = DotBiasBf16(fr.Refresh(x, ldx, k, i), w + j * k, k,
                         bias != nullptr ? bias + off : nullptr,
                         bias2 != nullptr ? bias2 + off : nullptr, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

DEEPST_INFER_CLONES
void GemvChunkI8(const double* x, int64_t ldx, const int8_t* w,
                 const float* scale, const int32_t* zero, const float* bias,
                 const float* bias2, float* out, int64_t k, int64_t n,
                 int64_t begin, int64_t end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  FloatRow fr;
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const float* xf = fr.Refresh(x, ldx, k, i);
    out[e] = DotBiasI8(xf, fr.xsum, w + j * k, k, scale[j], zero[j], bias,
                       bias2, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

DEEPST_INFER_CLONES
void GemvChunkI8RowBias(const double* x, int64_t ldx, const int8_t* w,
                        const float* scale, const int32_t* zero,
                        const float* bias, const float* bias2,
                        const int* bias_row, float* out, int64_t k, int64_t n,
                        int64_t begin, int64_t end) {
  DEEPST_CHECK(k <= kMaxFloatK);
  FloatRow fr;
  int64_t i = begin / n;
  int64_t j = begin % n;
  for (int64_t e = begin; e < end; ++e) {
    const int64_t off = static_cast<int64_t>(bias_row[i]) * n;
    const float* xf = fr.Refresh(x, ldx, k, i);
    out[e] = DotBiasI8(xf, fr.xsum, w + j * k, k, scale[j], zero[j],
                       bias != nullptr ? bias + off : nullptr,
                       bias2 != nullptr ? bias2 + off : nullptr, j);
    if (++j == n) {
      j = 0;
      ++i;
    }
  }
}

}  // namespace

void ToDouble(const float* src, double* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
}

void LinearForward(const double* x, int64_t ldx, const double* w, int64_t ldw,
                   const float* bias, const float* bias2, float* out,
                   int64_t m, int64_t k, int64_t n) {
  // Flat partition over output elements (i, j): chunk boundaries depend only
  // on (m*n, kDotGrain) and each element's accumulation order is fixed, so
  // the schedule is invisible in the result.
  ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
    LinearChunk(x, ldx, w, ldw, bias, bias2, out, k, n, begin, end);
  });
}

void LinearForwardRowBias(const double* x, int64_t ldx, const double* w,
                          int64_t ldw, const float* bias, const float* bias2,
                          const int* bias_row, float* out, int64_t m,
                          int64_t k, int64_t n) {
  ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
    LinearChunkRowBias(x, ldx, w, ldw, bias, bias2, bias_row, out, k, n,
                       begin, end);
  });
}

PackedMatrix PackedMatrix::Pack(const float* w, int64_t rows, int64_t cols,
                                int64_t ldw, Precision precision) {
  PackedMatrix p;
  p.precision = precision;
  p.rows = rows;
  p.cols = cols;
  const size_t numel = static_cast<size_t>(rows * cols);
  switch (precision) {
    case Precision::kDouble: {
      p.d.resize(numel);
      for (int64_t r = 0; r < rows; ++r) {
        ToDouble(w + r * ldw, p.d.data() + r * cols, cols);
      }
      break;
    }
    case Precision::kBf16: {
      p.h.resize(numel);
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
          p.h[static_cast<size_t>(r * cols + c)] = PackBf16(w[r * ldw + c]);
        }
      }
      break;
    }
    case Precision::kInt8: {
      p.q.resize(numel);
      p.scale.resize(static_cast<size_t>(rows));
      p.zero.resize(static_cast<size_t>(rows));
      for (int64_t r = 0; r < rows; ++r) {
        const float* row = w + r * ldw;
        float mn = cols > 0 ? row[0] : 0.0f;
        float mx = mn;
        for (int64_t c = 1; c < cols; ++c) {
          mn = std::min(mn, row[c]);
          mx = std::max(mx, row[c]);
        }
        const double range = static_cast<double>(mx) - static_cast<double>(mn);
        const double amax = std::max(std::fabs(static_cast<double>(mn)),
                                     std::fabs(static_cast<double>(mx)));
        // (Near-)constant rows get scale = |value| so the zero-point lands
        // one step away and reconstructs the value exactly; the relative
        // cutoff also keeps w/scale far from integer overflow.
        const double s = range > amax * 1e-6
                             ? range / 255.0
                             : std::max(amax, 1e-12);
        p.scale[static_cast<size_t>(r)] = static_cast<float>(s);
        // Quantize against the float32 scale actually stored, so the kernel
        // and Dequant reproduce the packer's arithmetic exactly.
        const double sf =
            static_cast<double>(p.scale[static_cast<size_t>(r)]);
        const int32_t z = static_cast<int32_t>(
            std::lround(-128.0 - static_cast<double>(mn) / sf));
        p.zero[static_cast<size_t>(r)] = z;
        for (int64_t c = 0; c < cols; ++c) {
          const long qi =
              std::lround(static_cast<double>(row[c]) / sf) +
              static_cast<long>(z);
          p.q[static_cast<size_t>(r * cols + c)] = static_cast<int8_t>(
              std::clamp<long>(qi, -128, 127));
        }
      }
      break;
    }
  }
  return p;
}

double PackedMatrix::Dequant(int64_t r, int64_t c) const {
  const size_t e = static_cast<size_t>(r * cols + c);
  switch (precision) {
    case Precision::kDouble:
      return d[e];
    case Precision::kBf16:
      return static_cast<double>(UnpackBf16(h[e]));
    case Precision::kInt8:
      return static_cast<double>(scale[static_cast<size_t>(r)]) *
             (static_cast<double>(q[e]) -
              static_cast<double>(zero[static_cast<size_t>(r)]));
  }
  return 0.0;
}

size_t PackedMatrix::PackedBytes() const {
  return d.size() * sizeof(double) + h.size() * sizeof(uint16_t) +
         q.size() * sizeof(int8_t) + scale.size() * sizeof(float) +
         zero.size() * sizeof(int32_t);
}

void GemvForward(const double* x, int64_t ldx, const PackedMatrix& w,
                 const float* bias, const float* bias2, float* out, int64_t m,
                 int64_t n) {
  DEEPST_DCHECK(w.rows == n);
  const int64_t k = w.cols;
  switch (w.precision) {
    case Precision::kDouble:
      LinearForward(x, ldx, w.d.data(), k, bias, bias2, out, m, k, n);
      return;
    case Precision::kBf16:
      ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
        GemvChunkBf16(x, ldx, w.h.data(), bias, bias2, out, k, n, begin, end);
      });
      return;
    case Precision::kInt8:
      ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
        GemvChunkI8(x, ldx, w.q.data(), w.scale.data(), w.zero.data(), bias,
                    bias2, out, k, n, begin, end);
      });
      return;
  }
}

void GemvForwardRowBias(const double* x, int64_t ldx, const PackedMatrix& w,
                        const float* bias, const float* bias2,
                        const int* bias_row, float* out, int64_t m,
                        int64_t n) {
  DEEPST_DCHECK(w.rows == n);
  const int64_t k = w.cols;
  switch (w.precision) {
    case Precision::kDouble:
      LinearForwardRowBias(x, ldx, w.d.data(), k, bias, bias2, bias_row, out,
                           m, k, n);
      return;
    case Precision::kBf16:
      ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
        GemvChunkBf16RowBias(x, ldx, w.h.data(), bias, bias2, bias_row, out,
                             k, n, begin, end);
      });
      return;
    case Precision::kInt8:
      ParallelFor(m * n, kDotGrain, [&](int64_t begin, int64_t end) {
        GemvChunkI8RowBias(x, ldx, w.q.data(), w.scale.data(), w.zero.data(),
                           bias, bias2, bias_row, out, k, n, begin, end);
      });
      return;
  }
}

void GruGates(const Tensor& gi, const Tensor& gh, const Tensor& h_prev,
              Tensor* h_out) {
  const int64_t batch = gi.dim(0);
  const int64_t hd = h_prev.dim(1);
  DEEPST_DCHECK(gi.dim(1) == 3 * hd && gh.dim(1) == 3 * hd);
  DEEPST_DCHECK(h_out->dim(0) == batch && h_out->dim(1) == hd);
  const float* gip = gi.data();
  const float* ghp = gh.data();
  const float* hp = h_prev.data();
  float* op = h_out->data();
  kernels::RowLoop(batch, [gip, ghp, hp, op, hd](int64_t b) {
    const float* gi_r = gip + b * 3 * hd;
    const float* gi_z = gi_r + hd;
    const float* gi_n = gi_r + 2 * hd;
    const float* gh_r = ghp + b * 3 * hd;
    const float* gh_z = gh_r + hd;
    const float* gh_n = gh_r + 2 * hd;
    const float* hrow = hp + b * hd;
    float* orow = op + b * hd;
    for (int64_t j = 0; j < hd; ++j) {
      const float r = 1.0f / (1.0f + std::exp(-(gi_r[j] + gh_r[j])));
      const float z = 1.0f / (1.0f + std::exp(-(gi_z[j] + gh_z[j])));
      const float n = std::tanh(gi_n[j] + r * gh_n[j]);
      orow[j] = (1.0f - z) * n + z * hrow[j];
    }
  });
}

GruStackView GruStackView::Of(const StackedGru& gru, int64_t emb_dim,
                              Precision precision) {
  GruStackView view;
  view.hidden_dim = gru.hidden_dim();
  view.cells.reserve(static_cast<size_t>(gru.num_layers()));
  for (int l = 0; l < gru.num_layers(); ++l) {
    const GruCell& cell = gru.cell(l);
    GruCellView v;
    v.b_ih = &cell.b_ih();
    v.b_hh = &cell.b_hh();
    v.input_dim = cell.input_dim();
    v.hidden_dim = cell.hidden_dim();
    const int64_t h3 = 3 * cell.hidden_dim();
    const float* wih = cell.w_ih().data();
    if (l == 0) {
      // Split input: pack only the per-step embedding columns; the context
      // columns stay exact doubles (folded once per query, see GruCellView).
      const int64_t ctx_dim = cell.input_dim() - emb_dim;
      v.w_ih =
          PackedMatrix::Pack(wih, h3, emb_dim, cell.input_dim(), precision);
      v.w_ih_ctx.resize(static_cast<size_t>(h3 * ctx_dim));
      for (int64_t r = 0; r < h3; ++r) {
        ToDouble(wih + r * cell.input_dim() + emb_dim,
                 v.w_ih_ctx.data() + r * ctx_dim, ctx_dim);
      }
    } else {
      v.w_ih = PackedMatrix::Pack(wih, h3, cell.input_dim(),
                                  cell.input_dim(), precision);
    }
    v.w_hh = PackedMatrix::Pack(cell.w_hh().data(), h3, cell.hidden_dim(),
                                cell.hidden_dim(), precision);
    view.cells.push_back(std::move(v));
  }
  return view;
}

}  // namespace infer
}  // namespace nn
}  // namespace deepst
